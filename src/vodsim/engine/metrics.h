#pragma once

/// \file metrics.h
/// \brief Measurement of one trial, clipped to a warmup-free window.
///
/// The paper's headline metric is bandwidth utilization: megabits actually
/// transmitted divided by the megabits the cluster could have transmitted at
/// full blast over the window. Transmission is recorded as (t0, t1, rate)
/// intervals and clipped to [window_start, window_end], so warmup and
/// horizon edges cannot bias the ratio.

#include <cstdint>
#include <vector>

#include "vodsim/cluster/topology.h"
#include "vodsim/stats/accumulator.h"
#include "vodsim/util/units.h"

namespace vodsim {

class Metrics {
 public:
  /// \param total_bandwidth aggregate cluster capacity (Mb/s).
  Metrics(Seconds window_start, Seconds window_end, Mbps total_bandwidth);

  // --- recording (engine-driven) --------------------------------------
  /// A request transmitted at \p rate during [t0, t1] (clipped to window).
  void record_transmission(Seconds t0, Seconds t1, Mbps rate);

  /// Adds an already window-clipped megabit sum to the transmission meter.
  /// Fast-math batch path: the fluid kernel clips each stream's interval
  /// exactly like record_transmission and sums the batch locally, so this
  /// differs from per-stream recording only in summation grouping (ulps).
  void record_transmitted_sum(Megabits megabits) { transmitted_ += megabits; }

  void record_arrival(Seconds t);
  void record_acceptance(Seconds t, bool via_migration);
  void record_rejection(Seconds t);

  /// \p steps migration steps executed to admit one arrival.
  void record_migration_chain(Seconds t, std::size_t steps);

  /// Playback continuity violation: \p megabits the client was short.
  void record_underflow(Seconds t, Megabits megabits);

  /// A request finished playback inside the window.
  void record_completion(Seconds t);

  /// A stream lost to a server failure (fault-injection runs).
  void record_drop(Seconds t);

  /// A dynamic replication transfer completed, having moved \p megabits
  /// during [t0, t1] (clipped accounting like record_transmission, but kept
  /// separate: replication traffic is overhead, not delivered video).
  void record_replication(Seconds t0, Seconds t1, Mbps rate);

  // --- resilience (fault-injection runs) -------------------------------
  /// A server crashed at \p t.
  void record_server_down(Seconds t);

  /// A server came back at \p t after \p downtime seconds down.
  void record_server_recovery(Seconds t, Seconds downtime);

  /// Attaches the failure-domain tree so capacity loss and glitches are
  /// additionally attributed per rack and per zone. \p server_bandwidth
  /// gives each server's nominal link capacity (indexed by ServerId) for
  /// the per-domain availability denominators. Observe-only: attribution
  /// never changes the cluster-wide meters. The topology must outlive this.
  void set_topology(const Topology* topology,
                    const std::vector<Mbps>& server_bandwidth);

  /// Capacity lost to a fault: \p lost_mbps unusable during [t0, t1]
  /// (clipped to the window). Crashes lose the whole link; brownouts lose
  /// bandwidth * (1 - capacity_factor); partitions lose the whole link
  /// while the server stays up. Feeds availability(). When \p server is a
  /// real id and a topology is attached, the loss is also charged to the
  /// server's rack and zone.
  void record_capacity_loss(Seconds t0, Seconds t1, Mbps lost_mbps,
                            ServerId server = kNoServer);

  /// A stream evicted by brownout load shedding; \p migrated tells whether
  /// it moved to another holder (true) or left the server entirely (false:
  /// parked for retry or dropped).
  void record_shed(Seconds t, bool migrated);

  /// Playback interruption: the client starved for \p seconds of playback
  /// (glitch-seconds, the viewer-facing face of an underflow). \p server
  /// attributes the glitch to a failure domain when a topology is attached.
  void record_glitch(Seconds t, Seconds seconds, ServerId server = kNoServer);

  /// Dedupe variant (FailureConfig::glitch_dedupe_window): accrues
  /// glitch-seconds without counting a new interruption — the stream
  /// already logged one inside the current dedupe window.
  void record_glitch_seconds(Seconds t, Seconds seconds,
                             ServerId server = kNoServer);

  /// Network-partition bookkeeping: a rack (or scripted server set) became
  /// unreachable / healed after \p duration seconds. Infrastructure events,
  /// counted regardless of the window like server downs.
  void record_partition_begin(Seconds t);
  void record_partition_heal(Seconds t, Seconds duration);

  /// Retry-queue bookkeeping.
  void record_retry_enqueued(Seconds t);
  void record_readmission(Seconds t);
  void record_retry_abandoned(Seconds t);

  /// A repair re-replication was planned for a long-down server's video.
  void record_repair(Seconds t);

  /// Folds in the fields a sharded run's per-shard Metrics write — the
  /// transmission meter and the client-side starvation accounting
  /// (underflows, glitches/interruptions). Every other counter (arrivals,
  /// admissions, migrations, faults, retries, replication, capacity loss)
  /// is recorded by the coordinator on the root instance directly and
  /// must NOT be merged. Integer counts add exactly; the FP sums are
  /// regrouped shard-major — the same ulp-scale regrouping the fast-math
  /// metering contract already tolerates. \p transmitted_scale is 1.0
  /// except under the VODSIM_TEST_SHARD_BUG negative test, which biases
  /// the merge to prove the sharded/single differential fires.
  void merge_shard(const Metrics& shard, double transmitted_scale = 1.0);

  /// Attaches the analytic achievability envelope for this trial's
  /// configuration (analysis/bounds.h): the utilization no policy can
  /// exceed and the rejection ratio none can beat. Set once at world
  /// construction; pure annotation — recording is unaffected.
  void set_bounds(double utilization_upper, double rejection_lower);

  // --- results ----------------------------------------------------------
  Seconds window() const { return window_end_ - window_start_; }

  /// Transmitted / maximum transmissible over the window — the paper's
  /// utilization.
  double utilization() const;

  /// Rejected arrivals / all arrivals in the window.
  double rejection_ratio() const;

  /// Accepted arrivals / all arrivals in the window.
  double acceptance_ratio() const;

  /// Migration steps per arrival in the window.
  double migrations_per_arrival() const;

  Megabits transmitted() const { return transmitted_; }
  std::uint64_t arrivals() const { return arrivals_; }
  std::uint64_t accepts() const { return accepts_; }
  std::uint64_t accepts_via_migration() const { return accepts_via_migration_; }
  std::uint64_t rejects() const { return rejects_; }
  std::uint64_t migration_steps() const { return migration_steps_; }
  std::uint64_t completions() const { return completions_; }
  std::uint64_t drops() const { return drops_; }
  std::uint64_t underflow_events() const { return underflow_events_; }
  Megabits underflow_megabits() const { return underflow_megabits_; }
  std::uint64_t replications() const { return replications_; }
  Megabits replication_megabits() const { return replication_megabits_; }

  // --- resilience results ----------------------------------------------
  /// Fraction of cluster capacity-seconds that was actually usable over
  /// the window: 1 - (lost capacity integral) / (total capacity integral).
  /// 1.0 in fault-free runs.
  double availability() const;

  /// Seconds of starved playback per window (summed over streams).
  Seconds glitch_seconds() const { return glitch_seconds_; }

  std::uint64_t server_downs() const { return server_downs_; }
  std::uint64_t server_recoveries() const { return server_recoveries_; }
  std::uint64_t sheds() const { return sheds_; }
  std::uint64_t sheds_migrated() const { return sheds_migrated_; }
  std::uint64_t interruptions() const { return interruptions_; }
  std::uint64_t retry_enqueued() const { return retry_enqueued_; }
  std::uint64_t readmissions() const { return readmissions_; }
  std::uint64_t retry_abandoned() const { return retry_abandoned_; }
  std::uint64_t repairs() const { return repairs_; }

  /// Time-to-recover distribution (per server-down episode, seconds).
  const Accumulator& recovery_time() const { return recovery_time_; }

  // --- failure-domain results (set_topology runs) -----------------------
  /// Racks/zones the attached topology reports (0 when none attached).
  int metric_racks() const { return static_cast<int>(rack_bandwidth_.size()); }
  int metric_zones() const { return static_cast<int>(zone_bandwidth_.size()); }

  /// Per-domain availability: 1 - (domain capacity lost) / (domain
  /// capacity integral). 1.0 for a fault-free domain.
  double rack_availability(int rack) const {
    return 1.0 - rack_capacity_lost_[static_cast<std::size_t>(rack)] /
                     (rack_bandwidth_[static_cast<std::size_t>(rack)] * window());
  }
  double zone_availability(int zone) const {
    return 1.0 - zone_capacity_lost_[static_cast<std::size_t>(zone)] /
                     (zone_bandwidth_[static_cast<std::size_t>(zone)] * window());
  }

  /// Per-domain glitch-seconds (attributed by the glitching stream's
  /// server at record time).
  Seconds rack_glitch_seconds(int rack) const {
    return rack_glitch_seconds_[static_cast<std::size_t>(rack)];
  }
  Seconds zone_glitch_seconds(int zone) const {
    return zone_glitch_seconds_[static_cast<std::size_t>(zone)];
  }

  std::uint64_t partitions() const { return partitions_; }
  std::uint64_t partition_heals() const { return partition_heals_; }

  /// Partition duration distribution (per healed episode, seconds).
  const Accumulator& partition_time() const { return partition_time_; }

  // --- measured-vs-bound gaps ------------------------------------------
  bool has_bounds() const { return has_bounds_; }
  double bound_utilization() const { return bound_utilization_; }
  double bound_rejection() const { return bound_rejection_; }

  /// Headroom to theory: achievable-utilization bound minus measured
  /// (>= ~0 up to statistical noise; the paper's "how close to full
  /// cluster utilization" question, answered against the bound instead of
  /// against 1). 0.0 until set_bounds.
  double utilization_gap() const {
    return has_bounds_ ? bound_utilization_ - utilization() : 0.0;
  }

  /// Measured rejection ratio minus its proven lower bound (>= ~0 up to
  /// statistical noise). 0.0 until set_bounds.
  double rejection_gap() const {
    return has_bounds_ ? rejection_ratio() - bound_rejection_ : 0.0;
  }

 private:
  bool in_window(Seconds t) const { return t >= window_start_ && t < window_end_; }

  Seconds window_start_;
  Seconds window_end_;
  Mbps total_bandwidth_;

  Megabits transmitted_ = 0.0;
  std::uint64_t arrivals_ = 0;
  std::uint64_t accepts_ = 0;
  std::uint64_t accepts_via_migration_ = 0;
  std::uint64_t rejects_ = 0;
  std::uint64_t migration_steps_ = 0;
  std::uint64_t completions_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t underflow_events_ = 0;
  Megabits underflow_megabits_ = 0.0;
  std::uint64_t replications_ = 0;
  Megabits replication_megabits_ = 0.0;

  Megabits capacity_lost_ = 0.0;  ///< Mb·s of capacity unusable in-window
  Seconds glitch_seconds_ = 0.0;
  std::uint64_t server_downs_ = 0;
  std::uint64_t server_recoveries_ = 0;
  std::uint64_t sheds_ = 0;
  std::uint64_t sheds_migrated_ = 0;
  std::uint64_t interruptions_ = 0;
  std::uint64_t retry_enqueued_ = 0;
  std::uint64_t readmissions_ = 0;
  std::uint64_t retry_abandoned_ = 0;
  std::uint64_t repairs_ = 0;
  Accumulator recovery_time_;

  /// Failure-domain attribution (empty until set_topology).
  const Topology* topology_ = nullptr;
  std::vector<Mbps> rack_bandwidth_;
  std::vector<Mbps> zone_bandwidth_;
  std::vector<Megabits> rack_capacity_lost_;
  std::vector<Megabits> zone_capacity_lost_;
  std::vector<Seconds> rack_glitch_seconds_;
  std::vector<Seconds> zone_glitch_seconds_;
  std::uint64_t partitions_ = 0;
  std::uint64_t partition_heals_ = 0;
  Accumulator partition_time_;

  bool has_bounds_ = false;
  double bound_utilization_ = 1.0;
  double bound_rejection_ = 0.0;
};

}  // namespace vodsim
