#pragma once

/// \file policy_matrix.h
/// \brief The paper's Figure 6 policy matrix, P1..P8.
///
/// {Even, Predictive} placement x {no migration, migration} x {0%, 20%}
/// client staging. Migration, where enabled, uses the paper's settings:
/// chain length 1, at most one hop per request over its lifetime.

#include <string>
#include <vector>

#include "vodsim/engine/config.h"

namespace vodsim {

struct PolicySpec {
  std::string label;            ///< "P1".."P8"
  PlacementKind placement = PlacementKind::kEven;
  bool migration = false;
  double staging_fraction = 0.0;

  std::string description() const;
};

/// P1..P8 in the paper's order (Figure 6).
const std::vector<PolicySpec>& figure6_policies();

/// Applies a policy row onto a base configuration (placement kind,
/// migration settings, staging fraction). Everything else in \p base —
/// system, workload, scheduler, receive cap — is preserved.
SimulationConfig apply_policy(SimulationConfig base, const PolicySpec& policy);

}  // namespace vodsim
