#pragma once

/// \file policy_matrix.h
/// \brief The paper's Figure 6 policy matrix, P1..P8.
///
/// {Even, Predictive} placement x {no migration, migration} x {0%, 20%}
/// client staging. Migration, where enabled, uses the paper's settings:
/// chain length 1, at most one hop per request over its lifetime.

#include <string>
#include <vector>

#include "vodsim/engine/config.h"

namespace vodsim {

struct PolicySpec {
  std::string label;            ///< "P1".."P8"
  PlacementKind placement = PlacementKind::kEven;
  bool migration = false;
  double staging_fraction = 0.0;

  std::string description() const;
};

/// P1..P8 in the paper's order (Figure 6).
const std::vector<PolicySpec>& figure6_policies();

/// Applies a policy row onto a base configuration (placement kind,
/// migration settings, staging fraction). Everything else in \p base —
/// system, workload, scheduler, receive cap — is preserved.
SimulationConfig apply_policy(SimulationConfig base, const PolicySpec& policy);

/// One cell of the scheduler x placement x migration-budget tournament:
/// a full cross of the dimensions the bounds (analysis/bounds.h) are blind
/// to. Because the analytic envelope is policy-independent, every cell of a
/// tournament column shares one BoundsReport, and the per-cell gap columns
/// rank the policies by distance from theory.
struct TournamentSpec {
  std::string label;  ///< "<scheduler>/<placement>/m<hops>"
  SchedulerKind scheduler = SchedulerKind::kEftf;
  PlacementKind placement = PlacementKind::kEven;
  int migration_hops = 0;  ///< 0 = migration off; >0 = max hops per request
  double staging_fraction = 0.2;

  std::string description() const;
};

/// Full cross product, schedulers-major (so cells sharing a placement are
/// adjacent and hit the SweepContext placement/bounds caches back-to-back).
std::vector<TournamentSpec> tournament_grid(
    const std::vector<SchedulerKind>& schedulers,
    const std::vector<PlacementKind>& placements,
    const std::vector<int>& migration_budgets, double staging_fraction);

/// Applies a tournament cell onto a base configuration. Admission stays
/// whatever \p base says (buffer-aware admission is NOT toggled per cell —
/// the tournament compares schedulers under identical admission rules, and
/// keeping it off leaves the stronger analytic envelope armed for every
/// cell); chain length tracks the hop budget.
SimulationConfig apply_tournament_spec(SimulationConfig base,
                                       const TournamentSpec& spec);

}  // namespace vodsim
