#include "vodsim/engine/metrics.h"

#include <algorithm>
#include <cassert>

namespace vodsim {

Metrics::Metrics(Seconds window_start, Seconds window_end, Mbps total_bandwidth)
    : window_start_(window_start),
      window_end_(window_end),
      total_bandwidth_(total_bandwidth) {
  assert(window_end > window_start);
  assert(total_bandwidth > 0.0);
}

void Metrics::record_transmission(Seconds t0, Seconds t1, Mbps rate) {
  if (rate <= 0.0) return;
  const Seconds lo = std::max(t0, window_start_);
  const Seconds hi = std::min(t1, window_end_);
  if (hi <= lo) return;
  transmitted_ += rate * (hi - lo);
}

void Metrics::record_arrival(Seconds t) {
  if (in_window(t)) ++arrivals_;
}

void Metrics::record_acceptance(Seconds t, bool via_migration) {
  if (!in_window(t)) return;
  ++accepts_;
  if (via_migration) ++accepts_via_migration_;
}

void Metrics::record_rejection(Seconds t) {
  if (in_window(t)) ++rejects_;
}

void Metrics::record_migration_chain(Seconds t, std::size_t steps) {
  if (in_window(t)) migration_steps_ += steps;
}

void Metrics::record_underflow(Seconds t, Megabits megabits) {
  if (!in_window(t)) return;
  ++underflow_events_;
  underflow_megabits_ += megabits;
}

void Metrics::record_completion(Seconds t) {
  if (in_window(t)) ++completions_;
}

void Metrics::record_drop(Seconds t) {
  if (in_window(t)) ++drops_;
}

void Metrics::record_replication(Seconds t0, Seconds t1, Mbps rate) {
  if (rate <= 0.0) return;
  const Seconds lo = std::max(t0, window_start_);
  const Seconds hi = std::min(t1, window_end_);
  if (hi > lo) replication_megabits_ += rate * (hi - lo);
  // Copies are infrastructure events, not a rate metric: count them even
  // when they complete during warmup (the replicas they created shape the
  // whole measured window).
  ++replications_;
}

void Metrics::record_server_down(Seconds t) {
  // Infrastructure events, like replications: counted regardless of the
  // window (a warmup crash shapes the measured window's whole trajectory).
  (void)t;
  ++server_downs_;
}

void Metrics::record_server_recovery(Seconds t, Seconds downtime) {
  (void)t;
  ++server_recoveries_;
  recovery_time_.add(downtime);
}

void Metrics::set_topology(const Topology* topology,
                           const std::vector<Mbps>& server_bandwidth) {
  topology_ = topology;
  if (topology == nullptr) return;
  rack_bandwidth_.assign(static_cast<std::size_t>(topology->racks()), 0.0);
  zone_bandwidth_.assign(static_cast<std::size_t>(topology->zones()), 0.0);
  rack_capacity_lost_.assign(rack_bandwidth_.size(), 0.0);
  zone_capacity_lost_.assign(zone_bandwidth_.size(), 0.0);
  rack_glitch_seconds_.assign(rack_bandwidth_.size(), 0.0);
  zone_glitch_seconds_.assign(zone_bandwidth_.size(), 0.0);
  for (std::size_t s = 0; s < server_bandwidth.size(); ++s) {
    const auto id = static_cast<ServerId>(s);
    rack_bandwidth_[static_cast<std::size_t>(topology->rack_of(id))] +=
        server_bandwidth[s];
    zone_bandwidth_[static_cast<std::size_t>(topology->zone_of(id))] +=
        server_bandwidth[s];
  }
}

void Metrics::record_capacity_loss(Seconds t0, Seconds t1, Mbps lost_mbps,
                                   ServerId server) {
  if (lost_mbps <= 0.0) return;
  const Seconds lo = std::max(t0, window_start_);
  const Seconds hi = std::min(t1, window_end_);
  if (hi <= lo) return;
  capacity_lost_ += lost_mbps * (hi - lo);
  if (topology_ != nullptr && server != kNoServer) {
    const Megabits loss = lost_mbps * (hi - lo);
    rack_capacity_lost_[static_cast<std::size_t>(topology_->rack_of(server))] +=
        loss;
    zone_capacity_lost_[static_cast<std::size_t>(topology_->zone_of(server))] +=
        loss;
  }
}

void Metrics::record_shed(Seconds t, bool migrated) {
  (void)t;
  ++sheds_;
  if (migrated) ++sheds_migrated_;
}

void Metrics::record_glitch(Seconds t, Seconds seconds, ServerId server) {
  if (!in_window(t)) return;
  ++interruptions_;
  glitch_seconds_ += seconds;
  if (topology_ != nullptr && server != kNoServer) {
    rack_glitch_seconds_[static_cast<std::size_t>(topology_->rack_of(server))] +=
        seconds;
    zone_glitch_seconds_[static_cast<std::size_t>(topology_->zone_of(server))] +=
        seconds;
  }
}

void Metrics::record_glitch_seconds(Seconds t, Seconds seconds, ServerId server) {
  if (!in_window(t)) return;
  glitch_seconds_ += seconds;
  if (topology_ != nullptr && server != kNoServer) {
    rack_glitch_seconds_[static_cast<std::size_t>(topology_->rack_of(server))] +=
        seconds;
    zone_glitch_seconds_[static_cast<std::size_t>(topology_->zone_of(server))] +=
        seconds;
  }
}

void Metrics::record_partition_begin(Seconds t) {
  (void)t;
  ++partitions_;
}

void Metrics::record_partition_heal(Seconds t, Seconds duration) {
  (void)t;
  ++partition_heals_;
  partition_time_.add(duration);
}

void Metrics::merge_shard(const Metrics& shard, double transmitted_scale) {
  transmitted_ += shard.transmitted_ * transmitted_scale;
  underflow_events_ += shard.underflow_events_;
  underflow_megabits_ += shard.underflow_megabits_;
  interruptions_ += shard.interruptions_;
  glitch_seconds_ += shard.glitch_seconds_;
  // Per-domain glitch attribution follows the cluster-wide sum (shards
  // record client starvation; capacity loss stays coordinator-only).
  for (std::size_t r = 0;
       r < rack_glitch_seconds_.size() && r < shard.rack_glitch_seconds_.size();
       ++r) {
    rack_glitch_seconds_[r] += shard.rack_glitch_seconds_[r];
  }
  for (std::size_t z = 0;
       z < zone_glitch_seconds_.size() && z < shard.zone_glitch_seconds_.size();
       ++z) {
    zone_glitch_seconds_[z] += shard.zone_glitch_seconds_[z];
  }
}

void Metrics::record_retry_enqueued(Seconds t) {
  (void)t;
  ++retry_enqueued_;
}

void Metrics::record_readmission(Seconds t) {
  (void)t;
  ++readmissions_;
}

void Metrics::record_retry_abandoned(Seconds t) {
  (void)t;
  ++retry_abandoned_;
}

void Metrics::record_repair(Seconds t) {
  (void)t;
  ++repairs_;
}

void Metrics::set_bounds(double utilization_upper, double rejection_lower) {
  has_bounds_ = true;
  bound_utilization_ = utilization_upper;
  bound_rejection_ = rejection_lower;
}

double Metrics::availability() const {
  return 1.0 - capacity_lost_ / (total_bandwidth_ * window());
}

double Metrics::utilization() const {
  return transmitted_ / (total_bandwidth_ * window());
}

double Metrics::rejection_ratio() const {
  if (arrivals_ == 0) return 0.0;
  return static_cast<double>(rejects_) / static_cast<double>(arrivals_);
}

double Metrics::acceptance_ratio() const {
  if (arrivals_ == 0) return 0.0;
  return static_cast<double>(accepts_) / static_cast<double>(arrivals_);
}

double Metrics::migrations_per_arrival() const {
  if (arrivals_ == 0) return 0.0;
  return static_cast<double>(migration_steps_) / static_cast<double>(arrivals_);
}

}  // namespace vodsim
