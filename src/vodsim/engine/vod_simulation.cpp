#include "vodsim/engine/vod_simulation.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <limits>

#include "vodsim/check/invariant_auditor.h"
#include "vodsim/engine/sweep_context.h"
#include "vodsim/fault/schedule.h"
#include "vodsim/placement/domain_spread.h"
#include "vodsim/placement/partial_predictive.h"
#include "vodsim/sched/intermittent.h"
#include "vodsim/util/env.h"
#include "vodsim/util/log.h"
#include "vodsim/util/thread_pool.h"
#include "vodsim/workload/catalog.h"
#include "vodsim/workload/poisson.h"

namespace vodsim {

namespace detail {

/// One shard of the parallel engine (DESIGN.md §12): a contiguous block of
/// servers [first_server, end_server) with everything their predicted
/// per-stream events (tx-complete, buffer-full, buffer-low) touch — an
/// event queue, a Metrics shard, a scheduler instance, scratch arenas, a
/// tagged trace recorder. Coordinator events (admission, migration,
/// replication, faults, retries, pause/resume, playback end) run serially
/// on the root simulator and may touch any shard's servers; between
/// coordinator events, each shard drains its own queue with no shared
/// mutable state, so the drains parallelize with no locks.
struct EngineShard {
  int index = 0;
  int first_server = 0;
  int end_server = 0;  ///< exclusive
  Simulator sim;
  std::unique_ptr<Metrics> metrics;
  std::unique_ptr<TraceRecorder> trace;
  std::unique_ptr<BandwidthScheduler> scheduler;
  std::uint64_t continuity_violations = 0;
  std::vector<Mbps> rates_scratch;
  AllocationScratch sched_scratch;
  std::vector<Megabits> underflow_scratch;
  std::vector<std::size_t> changed_slots;
  std::vector<Seconds> retime_tx;
  std::vector<Seconds> retime_full;
  std::vector<Seconds> retime_low;
};

}  // namespace detail

namespace {

/// The shard whose queue the calling thread is currently draining, or
/// nullptr on the coordinator (and everywhere in single mode). The engine's
/// context-dependent helpers (note, advance_and_account, recompute_server,
/// ...) consult this to resolve "now", the metrics sink, the scheduler and
/// the scratch arenas — so the same functions serve both modes, and the
/// single-mode path never branches into shard state. thread_local because
/// drains run on pool workers (and concurrent sweep trials may each be
/// draining their own shards on the same pool).
thread_local detail::EngineShard* t_shard = nullptr;

/// RAII current-shard marker for one drain.
struct ScopedShard {
  explicit ScopedShard(detail::EngineShard& shard) { t_shard = &shard; }
  ~ScopedShard() { t_shard = nullptr; }
  ScopedShard(const ScopedShard&) = delete;
  ScopedShard& operator=(const ScopedShard&) = delete;
};

}  // namespace

VodSimulation::VodSimulation(SimulationConfig config) : config_(std::move(config)) {
  build_world();
}

VodSimulation::VodSimulation(SimulationConfig config, const SweepContext* context)
    : config_(std::move(config)), sweep_context_(context) {
  build_world();
}

VodSimulation::VodSimulation(SimulationConfig config, const RequestTrace& trace)
    : config_(std::move(config)) {
  arrivals_ = std::make_unique<TraceArrivalSource>(trace);
  build_world();
}

VodSimulation::~VodSimulation() = default;

void VodSimulation::build_world() {
  config_.validate();

  // Independent deterministic streams for each stochastic component, so
  // e.g. changing the placement policy does not perturb the arrival stream.
  const SeedPlan seeds = SeedPlan::derive(config_.seed);
  rng_ = Rng(seeds.decision);
  interactivity_rng_ = Rng(seeds.interactivity);

  // A sweep context supplies prebuilt shared world state; every lookup may
  // miss (returning nullptr), in which case the plain construction path
  // below runs. Adoption is bit-exact: the context built these objects with
  // the identical code and RNG streams (engine/sweep_context.cpp).
  std::shared_ptr<const PlacementBlueprint> blueprint;
  if (sweep_context_ != nullptr) {
    catalog_ = sweep_context_->find_catalog(config_);
    popularity_ = sweep_context_->find_popularity(config_);
    blueprint = sweep_context_->find_placement(config_);
  }

  if (!catalog_) {
    Rng catalog_rng(seeds.catalog);
    CatalogSpec spec;
    spec.num_videos = config_.system.num_videos;
    spec.min_duration = config_.system.video_min_duration;
    spec.max_duration = config_.system.video_max_duration;
    spec.view_bandwidth = config_.system.view_bandwidth;
    catalog_ =
        std::make_shared<const VideoCatalog>(generate_catalog(spec, catalog_rng));
  }

  if (!popularity_) {
    if (config_.drift.enabled) {
      popularity_ = std::make_shared<const DriftingZipfPopularity>(
          config_.system.num_videos, config_.zipf_theta, config_.drift.period,
          config_.drift.step);
    } else {
      popularity_ = std::make_shared<const StaticZipfPopularity>(
          config_.system.num_videos, config_.zipf_theta);
    }
  }

  servers_ = make_servers(config_.system);
  // The failure-domain tree. Trivial (1 rack, 1 zone) unless
  // config.topology.enabled; every consumer degrades bit-identically on
  // the trivial tree, so topology-free runs keep their goldens.
  topology_ = Topology(config_.topology, config_.system.num_servers);
  if (blueprint) {
    // Replay the recorded placement: add_replica per server in install
    // order reproduces the original free-storage FP subtraction sequence.
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      for (VideoId video : blueprint->server_replicas[s]) {
        servers_[s].add_replica((*catalog_)[video]);
      }
    }
    placement_result_ = blueprint->result;
  } else {
    std::unique_ptr<PlacementPolicy> placement;
    if (config_.placement.kind == PlacementKind::kPartialPredictive) {
      placement = std::make_unique<PartialPredictivePlacement>(
          config_.placement.partial_head_fraction,
          config_.placement.partial_tail_shift);
    } else if (config_.placement.kind == PlacementKind::kDomainSpread) {
      placement = std::make_unique<DomainSpreadPlacement>(topology_);
    } else {
      placement = make_placement(config_.placement.kind);
    }
    Rng placement_rng(seeds.placement);
    // Placement sees the popularity law as of t = 0 — a drifting workload
    // later invalidates a "perfect" prediction, which is exactly what the
    // drift experiment studies.
    placement_result_ = placement->place(*catalog_, popularity_->probabilities(0.0),
                                         config_.system.avg_copies, servers_,
                                         placement_rng);
  }
  directory_ = ReplicaDirectory(catalog_->size(), servers_);

  // Analytic achievability envelope for this world (analysis/bounds.h):
  // pure observation of the t = 0 catalog/placement, no RNG, no mutation —
  // so it cannot perturb results. Sweeps memoize it (the popularity vector
  // is O(catalog) to materialize); a miss recomputes locally.
  std::shared_ptr<const BoundsReport> shared_bounds;
  if (sweep_context_ != nullptr) shared_bounds = sweep_context_->find_bounds(config_);
  if (shared_bounds) {
    bounds_ = *shared_bounds;
  } else {
    bounds_ = compute_bounds(config_, *catalog_, popularity_->probabilities(0.0),
                             directory_, servers_);
  }

  controller_ = std::make_unique<AdmissionController>(config_.admission, directory_);
  if (config_.scheduler == SchedulerKind::kIntermittent) {
    scheduler_ = std::make_unique<IntermittentScheduler>(
        config_.intermittent_safety_cover);
  } else {
    scheduler_ = make_scheduler(config_.scheduler);
  }
  replication_ = std::make_unique<ReplicationManager>(config_.replication);
  replication_->set_topology(&topology_);

  client_profile_.buffer_capacity = config_.staging_capacity();
  client_profile_.receive_bandwidth = config_.client.receive_bandwidth;

  metrics_ = std::make_unique<Metrics>(config_.warmup, config_.duration,
                                       config_.system.total_bandwidth());
  metrics_->set_bounds(bounds_.utilization_upper, bounds_.rejection_lower);
  if (topology_.enabled()) {
    std::vector<Mbps> server_bandwidth;
    server_bandwidth.reserve(servers_.size());
    for (const Server& server : servers_) {
      server_bandwidth.push_back(server.bandwidth());
    }
    metrics_->set_topology(&topology_, server_bandwidth);
  }
  occupancy_.assign(servers_.size(), TimeWeighted(config_.warmup, config_.duration));
  recompute_state_.assign(servers_.size(), ServerRecomputeState{});

  sharded_ = config_.shards > 1;
  // Test-only: deliberately mis-scale the shard-metrics merge so the
  // sharded/single differential harness provably catches a cross-mode
  // aggregation bug (tests/check_fuzz_test.cpp). Same shape as the
  // fast-math seeded bug: biased low, caught by the differential.
  shard_seeded_bug_ = env_long("VODSIM_TEST_SHARD_BUG", 0) != 0;

  // Request storage: one pool per shard plus the coordinator pool, so shard
  // workers stop interleaving their streams' cache lines in one shared
  // StableVector (engine/request_arena.h). Single mode keeps exactly one
  // pool — the old single-arena layout, byte for byte.
  requests_.reset(sharded_ ? static_cast<std::size_t>(config_.shards) + 1 : 1);

  // Pre-size the hot-path buffers so the steady-state event loop never
  // allocates: up to ~3 predicted events per concurrent stream plus
  // playback-end/arrival bookkeeping, and one rate per stream per server.
  // Sharded mode partitions the predicted-event share across the shard
  // queues (build_shards); the root queue keeps the coordinator's share.
  const std::size_t max_streams = static_cast<std::size_t>(
      config_.system.total_bandwidth() / config_.system.view_bandwidth);
  // Coordinator share: playback-end plus (with interactivity) one pending
  // pause/resume per stream; shards hold the three predicted events.
  sim_.reserve_events((sharded_ ? 2 : 4) * max_streams + 64);
  const std::size_t per_server =
      static_cast<std::size_t>(config_.system.server_bandwidth /
                               config_.system.view_bandwidth) + 8;
  rates_scratch_.reserve(per_server);
  sched_scratch_.order.reserve(per_server);
  sched_scratch_.aux.reserve(per_server);
  underflow_scratch_.reserve(per_server);
  changed_slots_.reserve(per_server);
  retime_tx_.reserve(per_server);
  retime_full_.reserve(per_server);
  retime_low_.reserve(per_server);

  // Engine mode (SimulationConfig::fast_math documents the dual-exactness
  // contract). The env overrides mirror VODSIM_PARANOID. Sharded runs
  // default to fast math — their aggregates already live under the
  // differential tolerance, not the hexfloat goldens, so there is nothing
  // exact mode buys them; config.exact_math (or VODSIM_EXACT_MATH) opts
  // back out. Single-queue runs stay exact by default, keeping the 29
  // goldens binding.
  const bool exact_requested =
      config_.exact_math || env_long("VODSIM_EXACT_MATH", 0) != 0;
  fast_math_ = !exact_requested &&
               (config_.fast_math || env_long("VODSIM_FAST_MATH", 0) != 0 ||
                sharded_);
  // Test-only: deliberately mis-aggregate the batch metering so the
  // fast-vs-exact differential harness provably catches a batching bug
  // (tests/check_test.cpp). Biased low, not high, so the invariant
  // auditor's flow-conservation check is not the one that trips first.
  fast_math_seeded_bug_ = env_long("VODSIM_TEST_FAST_MATH_BUG", 0) != 0;

  if (!arrivals_) {
    arrivals_ = std::make_unique<RequestGenerator>(
        PoissonProcess(config_.arrival_rate()), *popularity_, seeds.arrival);
  }

  Rng failure_rng(seeds.failure);
  if (!config_.scripted_faults.empty()) {
    // Hand-written schedule: used verbatim, no failure-RNG draws.
    failure_timeline_ = config_.scripted_faults;
    sort_fault_schedule(failure_timeline_);
  } else {
    failure_timeline_ = generate_fault_schedule(config_.failure, topology_,
                                                config_.duration, failure_rng);
  }
  fault_down_since_.assign(servers_.size(), -1.0);
  brownout_since_.assign(servers_.size(), -1.0);
  partition_since_.assign(servers_.size(), -1.0);
  partition_began_.assign(servers_.size(), -1.0);
  if (config_.failure.retry.enabled) {
    retry_queue_ = std::make_unique<RetryQueue>(config_.failure.retry);
  }

  // The auditor is a pure observer: it reads state after each event and
  // throws AuditFailure on a violated invariant, never mutating anything,
  // so enabling it cannot perturb results (pinned by determinism_test).
  // Sharded runs ignore it (its audits assume the whole cluster quiesces
  // after every event, which only the coordinator queue provides); the
  // single-mode half of the sharded/single differential carries the
  // auditor instead (check/fuzzer.cpp).
  if (!sharded_ && (config_.paranoid || env_long("VODSIM_PARANOID", 0) != 0)) {
    auditor_ = std::make_unique<InvariantAuditor>(*this);
  }

  // Tracing and probes are observers too: they read state, schedule no
  // simulator events, and touch no RNG, so a traced/probed run is
  // bit-identical to a plain one (also pinned by determinism_test).
  // VODSIM_TRACE: a plain number turns every category on (0 = leave off), a
  // name list ("admission,migration") selects categories.
  TraceConfig trace_config = config_.trace;
  const std::string env_trace = env_string("VODSIM_TRACE", "");
  if (!env_trace.empty()) {
    char* end = nullptr;
    const long numeric = std::strtol(env_trace.c_str(), &end, 0);
    if (end != nullptr && *end == '\0') {
      if (numeric != 0) {
        trace_config.enabled = true;
        trace_config.categories = kTraceAllCategories;
      }
    } else {
      trace_config.enabled = true;
      trace_config.categories = parse_trace_categories(env_trace);
    }
  }
  trace_config.capacity = static_cast<std::size_t>(env_long(
      "VODSIM_TRACE_CAPACITY", static_cast<long>(trace_config.capacity)));
  if (trace_config.enabled) {
    trace_ = std::make_unique<TraceRecorder>(trace_config);
    controller_->set_trace(trace_.get());
    scheduler_->set_trace(trace_.get());
  }

  ProbeConfig probe_config = config_.probe;
  const double env_probe = env_double("VODSIM_PROBE", 0.0);
  if (env_probe > 0.0) {
    probe_config.enabled = true;
    probe_config.period = env_probe;
  }
  // Probes sample on the root post-event hook, which in sharded mode fires
  // only on coordinator events and would read shard state mid-window-lag;
  // disabled there (documented in DESIGN.md §12), like the auditor.
  if (!sharded_ && probe_config.enabled) {
    probes_ = std::make_unique<ProbeSet>(probe_config, servers_.size());
  }

  if (auditor_ || probes_) {
    sim_.set_post_event_hook([this](Seconds now) {
      if (probes_) {
        probes_->on_event(now, servers_, sim_.pending_count(),
                          retry_queue_ ? retry_queue_->size() : 0);
      }
      if (auditor_) auditor_->on_event();
    });
  }

  if (sharded_) build_shards(trace_config);
}

void VodSimulation::build_shards(const TraceConfig& trace_config) {
  const int num_servers = config_.system.num_servers;
  const int shards = config_.shards;
  shard_of_server_.assign(static_cast<std::size_t>(num_servers), 0);
  const std::size_t per_server =
      static_cast<std::size_t>(config_.system.server_bandwidth /
                               config_.system.view_bandwidth) + 8;
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int k = 0; k < shards; ++k) {
    auto shard = std::make_unique<detail::EngineShard>();
    shard->index = k;
    // Contiguous near-even blocks: consecutive servers share a shard, so
    // the fault subsystem's correlated (rack/zone) groups of consecutive
    // servers land inside one shard whenever group_size divides the block.
    // With a failure-domain tree and shards <= racks, blocks snap to rack
    // boundaries: each shard owns a whole rack range, so a rack outage or
    // partition perturbs exactly one shard's servers and the shard
    // protocol's coupling set matches the fault-group topology. shards == 1
    // yields [0, N) either way, keeping the single-shard equivalence exact.
    if (topology_.enabled() && shards <= topology_.racks()) {
      shard->first_server = topology_.rack_first(k * topology_.racks() / shards);
      shard->end_server =
          topology_.rack_end((k + 1) * topology_.racks() / shards - 1);
    } else {
      shard->first_server = k * num_servers / shards;
      shard->end_server = (k + 1) * num_servers / shards;
    }
    for (int s = shard->first_server; s < shard->end_server; ++s) {
      shard_of_server_[static_cast<std::size_t>(s)] = k;
    }
    shard->metrics = std::make_unique<Metrics>(
        config_.warmup, config_.duration, config_.system.total_bandwidth());
    if (topology_.enabled()) {
      // Shards attribute their glitches per domain too; merge_shard folds
      // the vectors into the root instance after the run.
      std::vector<Mbps> server_bandwidth;
      server_bandwidth.reserve(servers_.size());
      for (const Server& server : servers_) {
        server_bandwidth.push_back(server.bandwidth());
      }
      shard->metrics->set_topology(&topology_, server_bandwidth);
    }
    // Per-shard scheduler instance: allocate() is const/deterministic, so
    // replicas produce identical rates; owning one per shard keeps its
    // trace emission on the shard's own recorder and off shared state.
    if (config_.scheduler == SchedulerKind::kIntermittent) {
      shard->scheduler = std::make_unique<IntermittentScheduler>(
          config_.intermittent_safety_cover);
    } else {
      shard->scheduler = make_scheduler(config_.scheduler);
    }
    if (trace_config.enabled) {
      shard->trace = std::make_unique<TraceRecorder>(trace_config, k);
      shard->scheduler->set_trace(shard->trace.get());
    }
    // The shard's share of the predicted events (~3 per concurrent stream
    // on its servers) and the per-server scratch arenas.
    const std::size_t block =
        static_cast<std::size_t>(shard->end_server - shard->first_server);
    shard->sim.reserve_events(3 * block * per_server + 64);
    shard->rates_scratch.reserve(per_server);
    shard->sched_scratch.order.reserve(per_server);
    shard->sched_scratch.aux.reserve(per_server);
    shard->underflow_scratch.reserve(per_server);
    shard->changed_slots.reserve(per_server);
    shard->retime_tx.reserve(per_server);
    shard->retime_full.reserve(per_server);
    shard->retime_low.reserve(per_server);
    shards_.push_back(std::move(shard));
  }
}

const Metrics& VodSimulation::run() {
  assert(!ran_ && "VodSimulation::run() may be called only once");
  ran_ = true;

  schedule_next_arrival();
  for (const FaultTransition& event : failure_timeline_) {
    sim_.schedule_at(event.time, [this, event](Seconds) { apply_fault(event); });
  }

  if (sharded_) {
    run_sharded_windows();
  } else {
    sim_.run_until(config_.duration);
  }

  // Flush in-flight transmissions into the measurement window. Sharded
  // runs flush each shard's servers under that shard's context so the
  // tail transmission lands in the shard's own Metrics (merged below).
  if (sharded_) {
    for (auto& shard : shards_) {
      ScopedShard scoped(*shard);
      for (int s = shard->first_server; s < shard->end_server; ++s) {
        for (Request* request : servers_[static_cast<std::size_t>(s)]
                                    .active_requests()) {
          advance_and_account(*request, config_.duration);
        }
      }
    }
    for (Server& server : servers_) {
      occupancy_[static_cast<std::size_t>(server.id())].flush(config_.duration);
    }
  } else {
    for (Server& server : servers_) {
      for (Request* request : server.active_requests()) {
        advance_and_account(*request, config_.duration);
      }
      occupancy_[static_cast<std::size_t>(server.id())].flush(config_.duration);
    }
  }
  // Close still-open fault episodes into the availability integral.
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    const auto id = static_cast<ServerId>(s);
    if (fault_down_since_[s] >= 0.0) {
      metrics_->record_capacity_loss(fault_down_since_[s], config_.duration,
                                     servers_[s].bandwidth(), id);
    }
    if (brownout_since_[s] >= 0.0) {
      metrics_->record_capacity_loss(
          brownout_since_[s], config_.duration,
          servers_[s].bandwidth() * (1.0 - servers_[s].capacity_factor()), id);
    }
    if (partition_since_[s] >= 0.0) {
      metrics_->record_capacity_loss(partition_since_[s], config_.duration,
                                     servers_[s].bandwidth(), id);
    }
  }
  if (probes_) {
    probes_->finalize(config_.duration, servers_, sim_.pending_count(),
                      retry_queue_ ? retry_queue_->size() : 0);
  }
  if (auditor_) auditor_->finalize();

  // Fold the per-shard counters into the published Metrics. Integer counts
  // add exactly; the fluid sums regroup shard-major, which is the sharded
  // determinism contract's accepted FP regrouping (the sharded/single
  // differential bounds it with the PR 6 oracle tolerance).
  for (const auto& shard : shards_) {
    metrics_->merge_shard(*shard->metrics, shard_seeded_bug_ ? 0.999 : 1.0);
  }
  return *metrics_;
}

void VodSimulation::run_sharded_windows() {
  // Lazily spawn the drain workers: construct-only call sites (tests
  // probing configuration, bounds-only runs) never pay for threads.
  if (!shard_pool_) {
    shard_pool_ = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(config_.shard_threads));
  }
  const Seconds horizon = config_.duration;
  while (true) {
    // Conservative lookahead: every pending shard event strictly before the
    // next coordinator event is causally independent of it (shard handlers
    // never touch another shard or schedule coordinator events), so the
    // drains below commute with each other and with the waiting
    // coordinator event. Ties at the window edge go to the coordinator —
    // the one documented (measure-zero) ordering divergence from the
    // single-queue engine (DESIGN.md §12).
    const bool coordinator_has_work =
        sim_.pending_count() > 0 && sim_.peek_time() <= horizon;
    const Seconds window_end = coordinator_has_work ? sim_.peek_time() : horizon;

    int busy = 0;
    detail::EngineShard* last_busy = nullptr;
    for (const auto& shard : shards_) {
      if (shard->sim.pending_count() > 0 &&
          shard->sim.peek_time() < window_end) {
        ++busy;
        last_busy = shard.get();
      }
    }
    if (busy == 1) {
      // Common small-window case: skip the fan-out/join round-trip.
      ScopedShard scoped(*last_busy);
      last_busy->sim.run_before(window_end);
    } else if (busy > 1) {
      // Each shard drains serially on whichever worker picks it up, and the
      // parallel_for join gives every drain a happens-before edge to the
      // coordinator step below — so the result is bit-identical at any
      // thread count, and TSan-clean.
      shard_pool_->parallel_for(
          shards_.size(), [this, window_end](std::size_t i) {
            detail::EngineShard& shard = *shards_[i];
            if (shard.sim.pending_count() == 0 ||
                shard.sim.peek_time() >= window_end) {
              return;
            }
            ScopedShard scoped(shard);
            shard.sim.run_before(window_end);
          });
    }

    if (!coordinator_has_work) break;
    sim_.step();  // exactly one coupling event per window, serially
  }
  // Tail: no coordinator events remain at or before the horizon, so each
  // shard can run inclusively to it (run_until also clamps the shard
  // clock there, matching single mode's end-of-run state).
  shard_pool_->parallel_for(shards_.size(), [this, horizon](std::size_t i) {
    ScopedShard scoped(*shards_[i]);
    shards_[i]->sim.run_until(horizon);
  });
  sim_.run_until(horizon);
}

void VodSimulation::schedule_next_arrival() {
  auto arrival = arrivals_->next();
  if (!arrival || arrival->time > config_.duration) return;
  sim_.schedule_at(arrival->time, [this, a = *arrival](Seconds) {
    handle_arrival(a);
    schedule_next_arrival();
  });
}

void VodSimulation::handle_arrival(const Arrival& arrival) {
  const Seconds now = sim_.now();
  metrics_->record_arrival(now);

  const Video& video = (*catalog_)[arrival.video];
  note(TraceEventType::kArrival, kTraceAdmission, kNoServer, next_request_id_,
       arrival.video);
  const AdmissionDecision decision =
      controller_->decide(now, arrival.video, video.view_bandwidth, servers_, rng_);

  // Pool by destination shard (rejected arrivals stay coordinator-side),
  // so a stream's Request lands in the arena pool of the shard whose
  // worker will mutate it (engine/request_arena.h).
  Request& request =
      requests_.create(request_pool(decision.accepted ? decision.server : kNoServer),
                       next_request_id_++, video, now, client_profile_);

  if (!decision.accepted) {
    note(TraceEventType::kReject, kTraceAdmission, kNoServer, request.id(),
         arrival.video,
         static_cast<double>(directory_.holders(arrival.video).size()));
    request.mark_rejected();
    metrics_->record_rejection(now);
    maybe_start_replication(arrival.video);
    if (retry_queue_ != nullptr) {
      // The viewer retries after a backoff rather than leaving for good; a
      // successful retry starts a fresh stream (new playback window).
      RetryEntry entry;
      entry.request = kNoRetryRequest;
      entry.video = arrival.video;
      entry.view_bandwidth = video.view_bandwidth;
      entry.first_seen = now;
      entry.attempts = 0;
      entry.next_attempt = now + retry_queue_->backoff(0);
      if (retry_queue_->push(entry)) {
        metrics_->record_retry_enqueued(now);
        note(TraceEventType::kRetryEnqueued, kTraceFailure, kNoServer, -1,
             arrival.video, static_cast<double>(retry_queue_->size()));
        arm_retry_tick();
      }
    }
    return;
  }

  note(TraceEventType::kAdmit, kTraceAdmission, decision.server, request.id(),
       arrival.video, static_cast<double>(decision.migrations.size()));
  if (decision.used_migration()) {
    for (const MigrationStep& step : decision.migrations) execute_migration(step);
    metrics_->record_migration_chain(now, decision.migrations.size());
  }
  metrics_->record_acceptance(now, decision.used_migration());

  request.begin_streaming(now, decision.server);
  attach_to(decision.server, request);
  request.playback_end_event =
      sim_.schedule_at(request.playback_end(), [this, &request](Seconds) {
        request.playback_end_event = kInvalidEventId;
        on_playback_end(request);
      });
  recompute_server(decision.server);
  if (config_.interactivity.enabled) schedule_next_pause(request);
}

void VodSimulation::execute_migration(const MigrationStep& step) {
  const Seconds now = sim_.now();
  Request& request = *step.request;
  assert(request.state() == RequestState::kStreaming);
  assert(request.server() == step.from);

  note(TraceEventType::kMigrateBegin, kTraceMigration, step.from, request.id(),
       request.video_id(), static_cast<double>(step.to),
       request.buffer_level());
  advance_and_account(request, now);
  cancel_predicted_events(request);
  detach_from(step.from, request);
  request.begin_migration(now);

  const Seconds latency = config_.admission.migration.switch_latency;
  if (latency <= 0.0) {
    finish_migration(request, step.to);
  } else {
    // Break-before-make: the stream pauses for `latency` and plays from its
    // staging buffer; the destination's slot is held by a reservation so a
    // competing arrival cannot steal it.
    servers_[static_cast<std::size_t>(step.to)].reserve_bandwidth(
        request.view_bandwidth());
    mark_server_dirty(step.to);
    sim_.schedule_in(latency, [this, &request, target = step.to](Seconds) {
      servers_[static_cast<std::size_t>(target)].release_reservation(
          request.view_bandwidth());
      mark_server_dirty(target);
      if (request.state() != RequestState::kMigrating) return;
      if (servers_[static_cast<std::size_t>(target)].serviceable()) {
        finish_migration(request, target);
        return;
      }
      // The destination crashed (or became unreachable) during the switch.
      // The stream never reached
      // its active list, so the crash-recovery sweep could not have seen
      // it; handle it here like any other crash victim — another replica
      // holder, else park for retry, else drop.
      const Seconds now = sim_.now();
      ServerId fallback = kNoServer;
      if (config_.failure.recover_via_migration) {
        for (ServerId candidate : directory_.holders(request.video_id())) {
          if (candidate == target) continue;
          const Server& cs = servers_[static_cast<std::size_t>(candidate)];
          if (!cs.can_admit(request.view_bandwidth())) continue;
          if (fallback == kNoServer ||
              cs.active_count() <
                  servers_[static_cast<std::size_t>(fallback)].active_count()) {
            fallback = candidate;
          }
        }
      }
      if (fallback != kNoServer) {
        note(TraceEventType::kStreamRecovered, kTraceFailure, fallback,
             request.id(), request.video_id());
        finish_migration(request, fallback);
      } else if (!park_for_retry(request)) {
        note(TraceEventType::kStreamDropped, kTraceFailure, target,
             request.id(), request.video_id());
        request.mark_done(now);
        metrics_->record_drop(now);
      }
    });
  }
  recompute_server(step.from);
}

void VodSimulation::finish_migration(Request& request, ServerId target) {
  const Seconds now = sim_.now();
  advance_and_account(request, now);  // drains the buffer over the pause
  request.complete_migration(now, target);
  attach_to(target, request);
  note(TraceEventType::kMigrateEnd, kTraceMigration, target, request.id(),
       request.video_id());
  recompute_server(target);
}

void VodSimulation::on_tx_complete(Request& request) {
  // Shard-local event: fires from the owning shard's drain (or from the
  // root queue in single mode) and touches only the request, its server,
  // and shard-context accounting — never another shard, never the RNG.
  const Seconds now = t_shard != nullptr ? t_shard->sim.now() : sim_.now();
  const ServerId server = request.server();
  assert(server != kNoServer);
  advance_and_account(request, now);
  if (!request.finished()) {
    // Floating-point drift between the predicted completion and the fluid
    // integration: let the reallocation pass reschedule a corrected event.
    recompute_server(server);
    return;
  }
  cancel_predicted_events(request);
  detach_from(server, request);
  request.mark_tx_complete(now);
  note(TraceEventType::kTxComplete, kTraceLifecycle, server, request.id(),
       request.video_id());
  recompute_server(server);
}

void VodSimulation::on_buffer_full(Request& request) {
  // The request is advanced (and its allocation corrected) as part of the
  // server-wide reallocation.
  assert(request.server() != kNoServer);
  note(TraceEventType::kBufferFull, kTraceBuffer, request.server(), request.id(),
       request.video_id(), request.buffer_level());
  recompute_server(request.server());
}

void VodSimulation::on_playback_end(Request& request) {
  const Seconds now = sim_.now();
  switch (request.state()) {
    case RequestState::kTxComplete: {
      // Drain the remaining buffered data through the fluid model so the
      // continuity audit covers the whole playback.
      advance_and_account(request, now);
      request.mark_done(now);
      metrics_->record_completion(now);
      note(TraceEventType::kPlaybackEnd, kTraceLifecycle, kNoServer,
           request.id(), request.video_id());
      break;
    }
    case RequestState::kStreaming: {
      // Viewing ended before the transfer did (possible only after pauses
      // or failures): the client leaves; unsent data is abandoned.
      const ServerId server = request.server();
      advance_and_account(request, now);
      cancel_predicted_events(request);
      detach_from(server, request);
      request.mark_done(now);
      metrics_->record_completion(now);
      note(TraceEventType::kPlaybackEnd, kTraceLifecycle, server, request.id(),
           request.video_id());
      recompute_server(server);
      break;
    }
    case RequestState::kMigrating: {
      advance_and_account(request, now);
      if (retry_queue_ != nullptr && retry_queue_->remove_request(request.id())) {
        // A parked orphan whose playback window closed before any retry
        // succeeded: the viewer is gone and the tail was never delivered —
        // a permanent loss, not a completion.
        note(TraceEventType::kRetryAbandoned, kTraceFailure, kNoServer,
             request.id(), request.video_id());
        metrics_->record_retry_abandoned(now);
        request.mark_done(now);
        metrics_->record_drop(now);
        break;
      }
      request.mark_done(now);
      metrics_->record_completion(now);
      note(TraceEventType::kPlaybackEnd, kTraceLifecycle, kNoServer,
           request.id(), request.video_id());
      break;
    }
    case RequestState::kDone:
      break;  // dropped earlier by failure injection
    case RequestState::kRejected:
      assert(false && "rejected requests have no playback");
      break;
  }
}

void VodSimulation::apply_fault(const FaultTransition& event) {
  const Seconds now = sim_.now();
  const std::size_t s = static_cast<std::size_t>(event.server);
  Server& server = servers_[s];
  switch (event.kind) {
    case FaultTransitionKind::kDown: {
      if (!server.available()) return;  // idempotent: already down
      mark_server_dirty(event.server);
      server.set_available(false);
      if (brownout_since_[s] >= 0.0) {
        // The brownout loss interval ends here; the crash interval (full
        // bandwidth) takes over.
        metrics_->record_capacity_loss(
            brownout_since_[s], now,
            server.bandwidth() * (1.0 - server.capacity_factor()),
            event.server);
        brownout_since_[s] = -1.0;
      }
      if (partition_since_[s] >= 0.0) {
        // Partition loss interval hands over to the crash interval too —
        // never both at once (both charge the full link).
        metrics_->record_capacity_loss(partition_since_[s], now,
                                       server.bandwidth(), event.server);
        partition_since_[s] = -1.0;
      }
      fault_down_since_[s] = now;
      metrics_->record_server_down(now);
      note(TraceEventType::kServerDown, kTraceFailure, event.server);
      recover_streams_of_failed_server(server);
      if (config_.failure.repair.enabled) {
        sim_.schedule_at(now + config_.failure.repair.down_threshold,
                         [this, id = event.server, since = now](Seconds) {
                           check_repair(id, since);
                         });
      }
      break;
    }
    case FaultTransitionKind::kUp: {
      if (server.available()) return;  // idempotent: already up
      mark_server_dirty(event.server);
      server.set_available(true);
      const Seconds down_since = fault_down_since_[s];
      if (down_since >= 0.0) {
        metrics_->record_capacity_loss(down_since, now, server.bandwidth(),
                                       event.server);
        metrics_->record_server_recovery(now, now - down_since);
        fault_down_since_[s] = -1.0;
      }
      if (!server.reachable()) {
        // Repaired into a live partition: the full link stays lost, now
        // charged to the partition interval.
        partition_since_[s] = now;
      } else if (server.capacity_factor() < 1.0) {
        // A brownout that began (or persisted) while down starts costing
        // capacity again now that the server is back in service.
        brownout_since_[s] = now;
      }
      note(TraceEventType::kServerUp, kTraceFailure, event.server);
      process_retries(/*force=*/true);
      break;
    }
    case FaultTransitionKind::kBrownoutBegin: {
      if (server.capacity_factor() == event.capacity_factor) return;
      mark_server_dirty(event.server);
      // A partitioned server's whole link is already charged to the
      // partition interval, so the brownout interval only accrues while
      // serviceable.
      if (server.serviceable()) {
        if (brownout_since_[s] >= 0.0) {
          metrics_->record_capacity_loss(
              brownout_since_[s], now,
              server.bandwidth() * (1.0 - server.capacity_factor()),
              event.server);
        }
        brownout_since_[s] = now;
      }
      server.set_capacity_factor(event.capacity_factor);
      note(TraceEventType::kBrownoutBegin, kTraceFailure, event.server, -1, -1,
           event.capacity_factor);
      if (server.available()) {
        shed_overload(server);
        recompute_server(event.server);
      }
      break;
    }
    case FaultTransitionKind::kBrownoutEnd: {
      if (server.capacity_factor() == 1.0) return;  // idempotent
      mark_server_dirty(event.server);
      if (brownout_since_[s] >= 0.0) {
        metrics_->record_capacity_loss(
            brownout_since_[s], now,
            server.bandwidth() * (1.0 - server.capacity_factor()),
            event.server);
        brownout_since_[s] = -1.0;
      }
      server.set_capacity_factor(1.0);
      note(TraceEventType::kBrownoutEnd, kTraceFailure, event.server);
      if (server.available()) recompute_server(event.server);
      process_retries(/*force=*/true);
      break;
    }
    case FaultTransitionKind::kPartitionBegin: {
      if (!server.reachable()) return;  // idempotent: already partitioned
      mark_server_dirty(event.server);
      server.set_reachable(false);
      partition_began_[s] = now;
      metrics_->record_partition_begin(now);
      note(TraceEventType::kPartitionBegin, kTraceFailure, event.server);
      if (server.available()) {
        // The server is up but the controller lost it: the open brownout
        // interval (partial loss) hands over to the partition interval
        // (full link), and every active stream is cut off from its client
        // — recover elsewhere, park, or drop, exactly like a crash.
        if (brownout_since_[s] >= 0.0) {
          metrics_->record_capacity_loss(
              brownout_since_[s], now,
              server.bandwidth() * (1.0 - server.capacity_factor()),
              event.server);
          brownout_since_[s] = -1.0;
        }
        partition_since_[s] = now;
        recover_streams_of_failed_server(server);
      }
      break;
    }
    case FaultTransitionKind::kPartitionEnd: {
      if (server.reachable()) return;  // idempotent: already healed
      mark_server_dirty(event.server);
      server.set_reachable(true);
      if (partition_since_[s] >= 0.0) {
        metrics_->record_capacity_loss(partition_since_[s], now,
                                       server.bandwidth(), event.server);
        partition_since_[s] = -1.0;
      }
      if (partition_began_[s] >= 0.0) {
        metrics_->record_partition_heal(now, now - partition_began_[s]);
        partition_began_[s] = -1.0;
      }
      // A brownout that persisted through the partition starts costing
      // capacity again now that the controller can use the link.
      if (server.available() && server.capacity_factor() < 1.0) {
        brownout_since_[s] = now;
      }
      note(TraceEventType::kPartitionEnd, kTraceFailure, event.server);
      if (server.available()) recompute_server(event.server);
      process_retries(/*force=*/true);
      break;
    }
  }
}

void VodSimulation::recover_streams_of_failed_server(Server& server) {
  const Seconds now = sim_.now();
  // Copy: we detach as we go.
  std::vector<Request*> victims(server.active_requests().begin(),
                                server.active_requests().end());
  for (Request* victim : victims) {
    Request& request = *victim;
    advance_and_account(request, now);
    cancel_predicted_events(request);
    detach_from(server.id(), request);

    ServerId target = kNoServer;
    if (config_.failure.recover_via_migration) {
      // DRM-based recovery: least-loaded other replica holder with room.
      for (ServerId candidate : directory_.holders(request.video_id())) {
        if (candidate == server.id()) continue;
        const Server& cs = servers_[static_cast<std::size_t>(candidate)];
        if (!cs.can_admit(request.view_bandwidth())) continue;
        if (target == kNoServer ||
            cs.active_count() <
                servers_[static_cast<std::size_t>(target)].active_count()) {
          target = candidate;
        }
      }
    }
    if (target != kNoServer) {
      note(TraceEventType::kStreamRecovered, kTraceFailure, target,
           request.id(), request.video_id());
      request.begin_migration(now);
      finish_migration(request, target);
    } else if (!park_for_retry(request)) {
      note(TraceEventType::kStreamDropped, kTraceFailure, server.id(),
           request.id(), request.video_id());
      request.mark_done(now);  // stream lost
      metrics_->record_drop(now);
    }
  }
}

void VodSimulation::shed_overload(Server& server) {
  const Seconds now = sim_.now();
  // Advance everyone first so the buffer levels compared below are current
  // and detached victims carry no stale fluid state.
  for (Request* request : server.active_requests()) {
    advance_and_account(*request, now);
  }
  // 1e-9 Mb/s tolerance, matching the admission arithmetic: commitments a
  // rounding error over the degraded link are not worth an eviction.
  while (server.slack() < -1e-9 && server.active_count() > 0) {
    // Staging-aware victim choice (the paper's point: client staging
    // absorbs gaps) — the stream with the most staged data rides out the
    // longest interruption, so it goes first.
    Request* victim = nullptr;
    for (Request* request : server.active_requests()) {
      if (victim == nullptr ||
          request->buffer_level() > victim->buffer_level()) {
        victim = request;
      }
    }
    Request& request = *victim;
    const Megabits buffered = request.buffer_level();
    cancel_predicted_events(request);
    detach_from(server.id(), request);

    // Migrate before dropping: least-loaded other replica holder with room.
    ServerId target = kNoServer;
    for (ServerId candidate : directory_.holders(request.video_id())) {
      if (candidate == server.id()) continue;
      const Server& cs = servers_[static_cast<std::size_t>(candidate)];
      if (!cs.can_admit(request.view_bandwidth())) continue;
      if (target == kNoServer ||
          cs.active_count() <
              servers_[static_cast<std::size_t>(target)].active_count()) {
        target = candidate;
      }
    }
    note(TraceEventType::kStreamShed, kTraceFailure, server.id(), request.id(),
         request.video_id(), buffered);
    if (target != kNoServer) {
      metrics_->record_shed(now, /*migrated=*/true);
      request.begin_migration(now);
      finish_migration(request, target);
    } else {
      metrics_->record_shed(now, /*migrated=*/false);
      if (!park_for_retry(request)) {
        note(TraceEventType::kStreamDropped, kTraceFailure, server.id(),
             request.id(), request.video_id());
        request.mark_done(now);
        metrics_->record_drop(now);
      }
    }
  }
}

bool VodSimulation::park_for_retry(Request& request) {
  if (retry_queue_ == nullptr) return false;
  const Seconds now = sim_.now();
  RetryEntry entry;
  entry.request = request.id();
  entry.video = request.video_id();
  entry.view_bandwidth = request.view_bandwidth();
  entry.first_seen = now;
  entry.attempts = 0;
  entry.next_attempt = now;  // eligible immediately (capacity may exist elsewhere)
  if (!retry_queue_->push(entry)) return false;
  // Parked as a migration with unbounded latency: playback keeps draining
  // the staging buffer, so a stream parked too long genuinely glitches.
  // A stream stranded by its migration target crashing mid-switch is
  // already in the migrating state.
  if (request.state() == RequestState::kStreaming) request.begin_migration(now);
  metrics_->record_retry_enqueued(now);
  note(TraceEventType::kRetryEnqueued, kTraceFailure, kNoServer, request.id(),
       request.video_id(), static_cast<double>(retry_queue_->size()));
  arm_retry_tick();
  return true;
}

void VodSimulation::process_retries(bool force) {
  if (retry_queue_ == nullptr || retry_queue_->empty()) return;
  const Seconds now = sim_.now();
  std::vector<RetryEntry> due = retry_queue_->take_due(now, force);
  for (RetryEntry& entry : due) {
    const AdmissionDecision decision = controller_->decide(
        now, entry.video, entry.view_bandwidth, servers_, rng_);
    if (decision.accepted) {
      if (decision.used_migration()) {
        for (const MigrationStep& step : decision.migrations) {
          execute_migration(step);
        }
        metrics_->record_migration_chain(now, decision.migrations.size());
      }
      metrics_->record_readmission(now);
      if (entry.request != kNoRetryRequest) {
        // Re-admit the parked orphan where capacity opened up.
        Request& request = requests_[static_cast<std::size_t>(entry.request)];
        assert(request.state() == RequestState::kMigrating);
        note(TraceEventType::kRetryReadmitted, kTraceFailure, decision.server,
             request.id(), request.video_id(),
             static_cast<double>(entry.attempts));
        finish_migration(request, decision.server);
      } else {
        // A rejected arrival returns: fresh stream, fresh playback window.
        const Video& video = (*catalog_)[entry.video];
        Request& request = requests_.create(request_pool(decision.server),
                                            next_request_id_++, video, now,
                                            client_profile_);
        note(TraceEventType::kRetryReadmitted, kTraceFailure, decision.server,
             request.id(), entry.video, static_cast<double>(entry.attempts));
        request.begin_streaming(now, decision.server);
        attach_to(decision.server, request);
        request.playback_end_event =
            sim_.schedule_at(request.playback_end(), [this, &request](Seconds) {
              request.playback_end_event = kInvalidEventId;
              on_playback_end(request);
            });
        recompute_server(decision.server);
        if (config_.interactivity.enabled) schedule_next_pause(request);
      }
    } else {
      ++entry.attempts;
      if (entry.attempts >= config_.failure.retry.max_attempts) {
        metrics_->record_retry_abandoned(now);
        note(TraceEventType::kRetryAbandoned, kTraceFailure, kNoServer,
             entry.request, entry.video, static_cast<double>(entry.attempts));
        if (entry.request != kNoRetryRequest) {
          Request& request = requests_[static_cast<std::size_t>(entry.request)];
          advance_and_account(request, now);
          request.mark_done(now);
          metrics_->record_drop(now);
        }
      } else {
        entry.next_attempt = now + retry_queue_->backoff(entry.attempts);
        retry_queue_->push(entry);
      }
    }
  }
  arm_retry_tick();
}

void VodSimulation::arm_retry_tick() {
  if (retry_queue_ == nullptr) return;
  const Seconds next = retry_queue_->next_attempt_time();
  if (next == std::numeric_limits<Seconds>::infinity()) {
    sim_.cancel(retry_tick_);
    retry_tick_ = kInvalidEventId;
    return;
  }
  const Seconds at = std::max(next, sim_.now());
  if (!sim_.reschedule_at(at, retry_tick_)) {
    retry_tick_ = sim_.schedule_at(at, [this](Seconds) {
      retry_tick_ = kInvalidEventId;
      process_retries(/*force=*/false);
    });
  }
}

void VodSimulation::check_repair(ServerId server_id, Seconds down_since) {
  const std::size_t s = static_cast<std::size_t>(server_id);
  if (servers_[s].available()) return;
  // Exact compare: a repair-then-recrash starts a new episode (and a new
  // threshold timer); this timer belongs to the old one.
  if (fault_down_since_[s] != down_since) return;
  const Seconds now = sim_.now();
  // Re-replicate the titles this outage left with no available holder.
  for (VideoId video : servers_[s].replicas()) {
    bool reachable = false;
    for (ServerId holder : directory_.holders(video)) {
      if (holder == server_id) continue;
      if (servers_[static_cast<std::size_t>(holder)].serviceable()) {
        reachable = true;
        break;
      }
    }
    if (reachable) continue;
    auto job = replication_->plan_repair(video, *catalog_, servers_, directory_);
    if (!job) continue;
    metrics_->record_repair(now);
    note(TraceEventType::kRepairPlanned, kTraceFailure, job->destination, -1,
         video, static_cast<double>(server_id));
    start_replication_job(*job);
  }
}

void VodSimulation::recompute_server(ServerId server_id) {
  Server& server = servers_[static_cast<std::size_t>(server_id)];
  ServerRecomputeState& state = recompute_state_[static_cast<std::size_t>(server_id)];
  // Executing context: a shard drain recomputes at its own clock with its
  // own scheduler instance and scratch arenas (it only ever reaches its
  // own servers); the coordinator — and all of single mode — uses the
  // root set. Same code, same FP operation order either way.
  detail::EngineShard* const shard = t_shard;
  assert(shard == nullptr ||
         (server_id >= shard->first_server && server_id < shard->end_server));
  const Seconds now = shard != nullptr ? shard->sim.now() : sim_.now();
  // Memo: several events at one timestamp often recompute the same server.
  // A repeat with unchanged inputs is a pure no-op — advance would see dt=0,
  // allocate is deterministic in its inputs (including the intermittent
  // scheduler's hysteresis latch, which is idempotent at fixed cover), and
  // the exact-compare below would reschedule nothing — so skipping it is
  // bit-identical. Exact double compare on purpose: only a repeat at the
  // *same* event timestamp qualifies.
  if (state.clean_time == now && state.clean_epoch == state.epoch) return;

  const std::vector<Request*>& active = server.active_requests();
  note(TraceEventType::kRecompute, kTraceSched, server_id, -1, -1,
       static_cast<double>(active.size()), server.schedulable_bandwidth());
  if (fast_math_) {
    batch_advance_server(server);
  } else {
    // Exact mode: per-stream advancement in active order. The FP operation
    // order here is semantics — pinned by the hexfloat determinism goldens.
    for (Request* request : active) advance_and_account(*request, now);
  }

  BandwidthScheduler& scheduler =
      shard != nullptr ? *shard->scheduler : *scheduler_;
  std::vector<Mbps>& rates =
      shard != nullptr ? shard->rates_scratch : rates_scratch_;
  AllocationScratch& scratch =
      shard != nullptr ? shard->sched_scratch : sched_scratch_;
  scheduler.allocate(now, server.schedulable_bandwidth(), active, rates,
                     scratch, &state.sched_cache);

  // Phase 1: write the new allocations (ascending slot order, as the old
  // fused loop did) and collect the slots whose rate actually moved.
  // Exact comparison on purpose: the common case (rate == view bandwidth,
  // assigned from the same double every recomputation) stays bit-identical,
  // so unchanged requests keep their predicted events.
  std::vector<std::size_t>& changed =
      shard != nullptr ? shard->changed_slots : changed_slots_;
  changed.clear();
  for (std::size_t i = 0; i < active.size(); ++i) {
    Request& request = *active[i];
    if (rates[i] != request.allocation()) {
      note(TraceEventType::kAllocationChange, kTraceAllocation, server_id,
           request.id(), request.video_id(), request.allocation(),
           rates[i]);
      request.set_allocation(now, rates[i]);
      changed.push_back(i);
    }
  }

  // Phase 2: retime the predicted events of every changed slot. Splitting
  // the fused write+retime loop is bit-identical: a retime reads only its
  // own request's state (which phase 1 finalized), and both the slot order
  // and the per-request schedule order (tx → full → low) — hence event-seq
  // consumption — are unchanged. When a mass reallocation moved most of the
  // lane, one vectorized pass computes all three predicted times (+inf =
  // no event) and the scalar mechanics consume them; sparse changes (the
  // single-stream-delta steady state) keep the pure scalar path — filling
  // the whole lane to retime two slots would waste the divisions the batch
  // amortizes.
  if (changed.size() >= 8 && changed.size() * 4 >= active.size()) {
    std::vector<Seconds>& tx = shard != nullptr ? shard->retime_tx : retime_tx_;
    std::vector<Seconds>& full =
        shard != nullptr ? shard->retime_full : retime_full_;
    std::vector<Seconds>& low = shard != nullptr ? shard->retime_low : retime_low_;
    server.lane().fill_predicted_times(now, config_.intermittent_safety_cover,
                                       tx, full, low);
    for (const std::size_t i : changed) {
      Request& request = *active[i];
      if (request.state() != RequestState::kStreaming) {
        cancel_predicted_events(request);  // mirrors reschedule's early-out
      } else {
        apply_predicted_times(request, tx[i], full[i], low[i]);
      }
    }
  } else {
    for (const std::size_t i : changed) {
      reschedule_predicted_events(*active[i]);
    }
  }
  // Record *after* the advances above bumped the epoch: the server is clean
  // as of the state this pass just produced.
  state.clean_time = now;
  state.clean_epoch = state.epoch;
}

void VodSimulation::mark_server_dirty(ServerId server_id) {
  if (server_id == kNoServer) return;
  ++recompute_state_[static_cast<std::size_t>(server_id)].epoch;
}

void VodSimulation::advance_and_account(Request& request, Seconds now) {
  if (now <= request.last_update()) return;
  // Real time elapsed: buffer level and remaining bytes moved, which feeds
  // eligibility and finish-time ordering on the hosting server.
  mark_server_dirty(request.server());
  const Seconds interval_start = request.last_update();
  // A shard drain accounts into its own Metrics shard (merged after the
  // run); the auditor is never active in sharded mode (build_world).
  detail::EngineShard* const shard = t_shard;
  Metrics& metrics = shard != nullptr ? *shard->metrics : *metrics_;
  metrics.record_transmission(interval_start, now, request.allocation());
  if (auditor_) auditor_->on_advance(request, interval_start, now);
  const Megabits underflow = request.advance(now);
  if (underflow > 0.0) {
    ++(shard != nullptr ? shard->continuity_violations : continuity_violations_);
    metrics.record_underflow(now, underflow);
    // Viewer-facing resilience accounting: the megabits short translate to
    // seconds of starved playback at the view rate. One counted
    // interruption per stream per dedupe window: a shed-then-readmitted
    // stream whose retry glitch lands in the same window as its shed
    // glitch reads as one viewer-visible interruption, not two (the
    // glitch-seconds still accrue in full).
    const Seconds dedupe = config_.failure.glitch_dedupe_window;
    const std::int64_t window_idx =
        dedupe > 0.0 ? static_cast<std::int64_t>(now / dedupe) : -1;
    // Attribution uses last_server, not server(): a parked orphan (server()
    // == kNoServer) still charges its glitch to the domain that lost it.
    if (dedupe > 0.0 && request.last_glitch_window == window_idx) {
      metrics.record_glitch_seconds(now, underflow / request.view_bandwidth(),
                                    request.last_server);
    } else {
      metrics.record_glitch(now, underflow / request.view_bandwidth(),
                            request.last_server);
      request.last_glitch_window = window_idx;
    }
    note(TraceEventType::kUnderflow, kTraceBuffer, request.server(),
         request.id(), request.video_id(), underflow);
    VODSIM_DEBUG << "continuity violation: request " << request.id() << " short "
                 << underflow << " Mb over [" << interval_start << ", " << now
                 << "] at rate " << request.allocation() << " (state "
                 << static_cast<int>(request.state()) << ", server "
                 << request.server() << ", urgent "
                 << request.workahead_urgent << ")";
  }
}

void VodSimulation::batch_advance_server(Server& server) {
  detail::EngineShard* const shard = t_shard;
  const Seconds now = shard != nullptr ? shard->sim.now() : sim_.now();
  Metrics& metrics = shard != nullptr ? *shard->metrics : *metrics_;
  std::vector<Megabits>& underflow_scratch =
      shard != nullptr ? shard->underflow_scratch : underflow_scratch_;
  FluidLane& lane = server.lane();
  const std::vector<Request*>& active = server.active_requests();

  if (auditor_) {
    // The auditor observes per-stream intervals (its flow integral sums in
    // active order, matching exact mode); read the start times before the
    // kernel overwrites them. Gating matches advance_and_account's
    // now <= last_update early-return.
    for (Request* request : active) {
      const Seconds start = request->last_update();
      if (now > start) auditor_->on_advance(*request, start, now);
    }
  }

  const FluidLane::BatchResult batch =
      lane.advance_batch(now, config_.warmup, config_.duration, underflow_scratch);
  if (batch.advanced > 0) mark_server_dirty(server.id());

  Megabits metered = batch.transmitted_in_window;
  if (fast_math_seeded_bug_) metered *= 0.999;  // test-only, see build_world
  metrics.record_transmitted_sum(metered);

  if (batch.any_underflow) {
    // Rare path: per-stream accounting identical to advance_and_account's.
    for (Request* request : active) {
      const Megabits underflow = underflow_scratch[request->active_index];
      if (underflow <= 0.0) continue;
      ++(shard != nullptr ? shard->continuity_violations
                          : continuity_violations_);
      metrics.record_underflow(now, underflow);
      // Same per-stream interruption dedupe as advance_and_account: the
      // window key lives on the Request, so both engine modes (and every
      // shard) count identically.
      const Seconds dedupe = config_.failure.glitch_dedupe_window;
      const std::int64_t window_idx =
          dedupe > 0.0 ? static_cast<std::int64_t>(now / dedupe) : -1;
      if (dedupe > 0.0 && request->last_glitch_window == window_idx) {
        metrics.record_glitch_seconds(
            now, underflow / request->view_bandwidth(), request->last_server);
      } else {
        metrics.record_glitch(now, underflow / request->view_bandwidth(),
                              request->last_server);
        request->last_glitch_window = window_idx;
      }
      note(TraceEventType::kUnderflow, kTraceBuffer, request->server(),
           request->id(), request->video_id(), underflow);
      VODSIM_DEBUG << "continuity violation: request " << request->id()
                   << " short " << underflow << " Mb at " << now
                   << " (fast-math batch, server " << server.id() << ")";
    }
  }
}

void VodSimulation::schedule_next_pause(Request& request) {
  const Seconds gap =
      interactivity_rng_.exponential(config_.interactivity.pauses_per_hour /
                                     kSecondsPerHour);
  sim_.schedule_in(gap, [this, &request](Seconds) { on_pause(request); });
}

void VodSimulation::on_pause(Request& request) {
  // The viewer may already be gone (done/dropped) or past the credits.
  if (request.state() == RequestState::kDone ||
      request.state() == RequestState::kRejected) {
    return;
  }
  const Seconds now = sim_.now();
  if (now >= request.playback_end() || request.viewing_paused()) return;

  advance_and_account(request, now);
  request.pause_viewing(now);
  mark_server_dirty(request.server());  // drain stopped; minimum rate may be 0
  ++pauses_started_;
  note(TraceEventType::kPause, kTraceLifecycle, request.server(), request.id(),
       request.video_id(), request.buffer_level());

  // The deadline is frozen until resume; the pending end-of-playback event
  // would fire at the stale time.
  sim_.cancel(request.playback_end_event);
  request.playback_end_event = kInvalidEventId;

  if (request.state() == RequestState::kStreaming) {
    // Drain stopped: buffer-full predictions changed even if the allocation
    // did not, and a full buffer now absorbs nothing (minimum rate 0).
    recompute_server(request.server());
    reschedule_predicted_events(request);
  }

  const Seconds pause = interactivity_rng_.exponential(
      1.0 / config_.interactivity.mean_pause_duration);
  sim_.schedule_in(pause, [this, &request](Seconds) { on_resume(request); });
}

void VodSimulation::on_resume(Request& request) {
  if (request.state() == RequestState::kDone) return;  // dropped mid-pause
  const Seconds now = sim_.now();
  advance_and_account(request, now);
  request.resume_viewing(now);
  mark_server_dirty(request.server());  // drain restarted
  note(TraceEventType::kResume, kTraceLifecycle, request.server(), request.id(),
       request.video_id(), request.buffer_level());

  request.playback_end_event =
      sim_.schedule_at(request.playback_end(), [this, &request](Seconds) {
        request.playback_end_event = kInvalidEventId;
        on_playback_end(request);
      });

  if (request.state() == RequestState::kStreaming) {
    recompute_server(request.server());
    reschedule_predicted_events(request);
  }
  schedule_next_pause(request);
}

void VodSimulation::maybe_start_replication(VideoId video) {
  const Seconds now = sim_.now();
  auto job =
      replication_->on_rejection(video, now, *catalog_, servers_, directory_);
  if (!job) return;
  start_replication_job(*job);
}

void VodSimulation::start_replication_job(const ReplicationJob& planned) {
  const Seconds now = sim_.now();
  Server& destination = servers_[static_cast<std::size_t>(planned.destination)];
  const Mbps rate = config_.replication.transfer_bandwidth;

  // The copy steals link bandwidth from workahead for its whole duration
  // (the "resource intensive" part of dynamic replication) — on both ends
  // for a server-sourced copy, on the destination only when streaming from
  // tertiary storage.
  if (!planned.from_tertiary()) {
    servers_[static_cast<std::size_t>(planned.source)].reserve_bandwidth(rate);
    mark_server_dirty(planned.source);
    recompute_server(planned.source);
  }
  destination.reserve_bandwidth(rate);
  mark_server_dirty(planned.destination);
  replication_->on_job_started();
  note(TraceEventType::kReplicationBegin, kTraceReplication, planned.destination,
       -1, planned.video,
       planned.from_tertiary() ? -2.0 : static_cast<double>(planned.source),
       rate);
  recompute_server(planned.destination);

  sim_.schedule_in(planned.transfer_time, [this, job = planned, rate,
                                           start = now](Seconds) {
    const Seconds end = sim_.now();
    Server& dst = servers_[static_cast<std::size_t>(job.destination)];
    if (!job.from_tertiary()) {
      servers_[static_cast<std::size_t>(job.source)].release_reservation(rate);
      mark_server_dirty(job.source);
      recompute_server(job.source);
    }
    dst.release_reservation(rate);
    mark_server_dirty(job.destination);
    // Storage was verified when the job was planned; nothing else consumes
    // storage mid-run, so this cannot fail.
    const bool added = dst.add_replica((*catalog_)[job.video]);
    if (added) directory_.add_holder(job.video, job.destination);
    metrics_->record_replication(start, end, rate);
    replication_->on_job_finished(job.video);
    note(TraceEventType::kReplicationEnd, kTraceReplication, job.destination,
         -1, job.video);
    recompute_server(job.destination);
  });
}

void VodSimulation::attach_to(ServerId server_id, Request& request) {
  Server& server = servers_[static_cast<std::size_t>(server_id)];
  mark_server_dirty(server_id);
  server.attach(request, /*enforce_capacity=*/!config_.admission.buffer_aware);
  // Executing-context clock: a shard-drain detach (tx-complete) is ahead of
  // the stale coordinator clock, and occupancy integrates real intervals.
  const Seconds now = t_shard != nullptr ? t_shard->sim.now() : sim_.now();
  occupancy_[static_cast<std::size_t>(server_id)].update(
      now, static_cast<double>(server.active_count()));
}

void VodSimulation::detach_from(ServerId server_id, Request& request) {
  Server& server = servers_[static_cast<std::size_t>(server_id)];
  mark_server_dirty(server_id);
  server.detach(request);
  const Seconds now = t_shard != nullptr ? t_shard->sim.now() : sim_.now();
  occupancy_[static_cast<std::size_t>(server_id)].update(
      now, static_cast<double>(server.active_count()));
}

VodSimulation::OccupancySummary VodSimulation::occupancy() const {
  OccupancySummary summary;
  if (occupancy_.empty()) return summary;
  double total = 0.0;
  summary.min_server_mean = occupancy_.front().mean();
  summary.max_server_mean = occupancy_.front().mean();
  for (const TimeWeighted& tw : occupancy_) {
    const double mean = tw.mean();
    total += mean;
    summary.min_server_mean = std::min(summary.min_server_mean, mean);
    summary.max_server_mean = std::max(summary.max_server_mean, mean);
  }
  summary.mean_active = total / static_cast<double>(occupancy_.size());
  if (summary.mean_active > 0.0) {
    summary.imbalance =
        (summary.max_server_mean - summary.min_server_mean) / summary.mean_active;
  }
  return summary;
}

void VodSimulation::cancel_predicted_events(Request& request) {
  // EventIds are queue-local: the handles below always live in the owning
  // shard's queue (root queue in single mode). Every detach/migration path
  // cancels *before* reassigning the server, so the id↔queue pairing
  // cannot dangle across an ownership change.
  Simulator& psim = predicted_sim(request.server());
  psim.cancel(request.tx_complete_event);
  psim.cancel(request.buffer_full_event);
  psim.cancel(request.buffer_low_event);
  request.tx_complete_event = kInvalidEventId;
  request.buffer_full_event = kInvalidEventId;
  request.buffer_low_event = kInvalidEventId;
}

void VodSimulation::reschedule_predicted_events(Request& request) {
  if (request.state() != RequestState::kStreaming) {
    cancel_predicted_events(request);
    return;
  }
  const Seconds now = t_shard != nullptr ? t_shard->sim.now() : sim_.now();
  const Mbps rate = request.allocation();
  constexpr Seconds kNever = std::numeric_limits<Seconds>::infinity();

  // Scalar twin of FluidLane::predicted_event_times: same formulas, same
  // gates, +inf encodes "no event" (see the kernel for why the encoding is
  // unambiguous). The schedule/cancel mechanics live in
  // apply_predicted_times, shared with recompute_server's batched path.
  Seconds tx_at = kNever;
  if (rate > 0.0) tx_at = now + request.remaining() / rate;

  // The buffer fills at (rate - drain); drain is the view bandwidth while
  // playing and 0 while paused.
  Seconds full_at = kNever;
  Seconds low_at = kNever;
  const Mbps surplus = rate - request.drain_rate(now);
  if (surplus > 1e-12 && !request.buffer_full()) {
    const Seconds candidate = now + request.buffer_headroom() / surplus;
    if (candidate < tx_at) full_at = candidate;
  } else if (surplus < -1e-12) {
    // Intermittent scheduling: the stream is draining faster than it
    // receives. Wake the scheduler when the staged data reaches the safety
    // threshold so the stream regains flow before playback starves. A
    // stream already at/below the threshold is known-urgent to the
    // scheduler — waking it again immediately would only churn events.
    const Megabits threshold =
        config_.intermittent_safety_cover * request.view_bandwidth();
    const Megabits level = request.buffer_level();
    if (level > threshold + StagingBuffer::kLevelTolerance) {
      const Seconds candidate = now + (level - threshold) / -surplus;
      if (candidate < tx_at) low_at = candidate;
    }
  }

  apply_predicted_times(request, tx_at, full_at, low_at);
}

void VodSimulation::apply_predicted_times(Request& request, Seconds tx_at,
                                          Seconds full_at, Seconds low_at) {
  // Predictions schedule into the owning shard's queue at the executing
  // context's clock. A coordinator caller targets a shard queue whose own
  // clock lags (it drained strictly below this event's time), so the
  // schedule_at clamp-to-now can never fire backwards; a shard caller is
  // always the owner itself.
  Simulator& psim = predicted_sim(request.server());
  constexpr Seconds kNever = std::numeric_limits<Seconds>::infinity();

  // Each prediction retimes its pending event in place when one is live (the
  // common case — every allocation change moves all of them) and only
  // schedules or cancels on a liveness transition. Sequence-number parity
  // with the cancel+schedule pairs this replaces is load-bearing: exactly
  // one seq is consumed per *kept* prediction, in the same order
  // (transmission-complete, then buffer-full, then buffer-low), so
  // equal-time events tie-break identically and the simulation stays on the
  // seed trajectory bit for bit. Cancels consume no seq, on either path.
  //
  // Transmission-complete liveness comes from the allocation sign, not from
  // tx_at's finiteness: a pathological tiny rate could divide to +inf yet
  // still mean "transmitting" — the sign test matches the scalar gate
  // exactly. The full/low times can only be finite when their gates kept
  // them, so finiteness *is* their liveness.
  if (request.allocation() > 0.0) {
    if (!psim.reschedule_at(tx_at, request.tx_complete_event)) {
      request.tx_complete_event =
          psim.schedule_at(tx_at, [this, &request](Seconds) {
            request.tx_complete_event = kInvalidEventId;
            on_tx_complete(request);
          });
    }
  } else {
    psim.cancel(request.tx_complete_event);
    request.tx_complete_event = kInvalidEventId;
  }

  if (full_at != kNever) {
    if (!psim.reschedule_at(full_at, request.buffer_full_event)) {
      request.buffer_full_event =
          psim.schedule_at(full_at, [this, &request](Seconds) {
            request.buffer_full_event = kInvalidEventId;
            on_buffer_full(request);
          });
    }
  } else {
    psim.cancel(request.buffer_full_event);
    request.buffer_full_event = kInvalidEventId;
  }

  if (low_at != kNever) {
    if (!psim.reschedule_at(low_at, request.buffer_low_event)) {
      request.buffer_low_event =
          psim.schedule_at(low_at, [this, &request](Seconds) {
            request.buffer_low_event = kInvalidEventId;
            if (request.state() == RequestState::kStreaming) {
              note(TraceEventType::kBufferLow, kTraceBuffer, request.server(),
                   request.id(), request.video_id(), request.buffer_level());
              recompute_server(request.server());
            }
          });
    }
  } else {
    psim.cancel(request.buffer_low_event);
    request.buffer_low_event = kInvalidEventId;
  }
}

std::size_t VodSimulation::request_pool(ServerId server) const {
  if (!sharded_ || server == kNoServer) return 0;
  return 1 + static_cast<std::size_t>(
                 shard_of_server_[static_cast<std::size_t>(server)]);
}

Simulator& VodSimulation::predicted_sim(ServerId server) {
  if (!sharded_ || server == kNoServer) return sim_;
  return shards_[static_cast<std::size_t>(
                     shard_of_server_[static_cast<std::size_t>(server)])]
      ->sim;
}

void VodSimulation::note(TraceEventType type, std::uint32_t category,
                         ServerId server, RequestId request, VideoId video,
                         double a, double b) {
  detail::EngineShard* const shard = t_shard;
  TraceRecorder* recorder = shard != nullptr ? shard->trace.get() : trace_.get();
  if (recorder == nullptr || !recorder->wants(category)) return;
  const Seconds now = shard != nullptr ? shard->sim.now() : sim_.now();
  recorder->record(now, type, server, request, video, a, b);
}

std::uint64_t VodSimulation::continuity_violations() const {
  std::uint64_t total = continuity_violations_;
  for (const auto& shard : shards_) total += shard->continuity_violations;
  return total;
}

int VodSimulation::shard_of_server(ServerId server) const {
  if (!sharded_ || server == kNoServer) return 0;
  return shard_of_server_[static_cast<std::size_t>(server)];
}

std::uint64_t VodSimulation::coordinator_events() const {
  return sim_.executed_count();
}

std::uint64_t VodSimulation::shard_events() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->sim.executed_count();
  return total;
}

std::vector<TraceEvent> VodSimulation::merged_trace_events() const {
  std::vector<TraceEvent> out;
  if (trace_) out = trace_->snapshot();
  for (const auto& shard : shards_) {
    if (!shard->trace) continue;
    const std::vector<TraceEvent> events = shard->trace->snapshot();
    out.insert(out.end(), events.begin(), events.end());
  }
  // (time, shard, seq): coordinator (-1) first within a timestamp, then
  // shards in index order, each internally in emission order. A total
  // deterministic order even though per-recorder seqs are independent.
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              if (x.time != y.time) return x.time < y.time;
              if (x.shard != y.shard) return x.shard < y.shard;
              return x.seq < y.seq;
            });
  return out;
}

}  // namespace vodsim
