#include "vodsim/engine/experiment.h"

#include <cassert>
#include <ostream>

#include "vodsim/engine/sweep_context.h"
#include "vodsim/util/csv.h"
#include "vodsim/util/rng.h"

namespace vodsim {

TrialResult TrialResult::from(const VodSimulation& simulation) {
  const Metrics& metrics = simulation.metrics();
  TrialResult result;
  result.utilization = metrics.utilization();
  result.rejection_ratio = metrics.rejection_ratio();
  result.migrations_per_arrival = metrics.migrations_per_arrival();
  result.bound_utilization = metrics.bound_utilization();
  result.bound_rejection = metrics.bound_rejection();
  result.utilization_gap = metrics.utilization_gap();
  result.rejection_gap = metrics.rejection_gap();
  result.arrivals = metrics.arrivals();
  result.accepts = metrics.accepts();
  result.rejects = metrics.rejects();
  result.migration_steps = metrics.migration_steps();
  result.drops = metrics.drops();
  result.underflow_events = metrics.underflow_events();
  result.continuity_violations = simulation.continuity_violations();
  result.availability = metrics.availability();
  result.glitch_seconds = metrics.glitch_seconds();
  result.interruptions = metrics.interruptions();
  result.server_downs = metrics.server_downs();
  result.sheds = metrics.sheds();
  result.sheds_migrated = metrics.sheds_migrated();
  result.retry_enqueued = metrics.retry_enqueued();
  result.readmissions = metrics.readmissions();
  result.retry_abandoned = metrics.retry_abandoned();
  result.repairs = metrics.repairs();
  result.mean_recovery_time = metrics.recovery_time().mean();
  result.partitions = metrics.partitions();
  result.partition_heals = metrics.partition_heals();
  result.mean_partition_time = metrics.partition_time().mean();
  result.rack_availability.reserve(static_cast<std::size_t>(metrics.metric_racks()));
  result.rack_glitch_seconds.reserve(
      static_cast<std::size_t>(metrics.metric_racks()));
  for (int r = 0; r < metrics.metric_racks(); ++r) {
    result.rack_availability.push_back(metrics.rack_availability(r));
    result.rack_glitch_seconds.push_back(metrics.rack_glitch_seconds(r));
  }
  result.zone_availability.reserve(static_cast<std::size_t>(metrics.metric_zones()));
  result.zone_glitch_seconds.reserve(
      static_cast<std::size_t>(metrics.metric_zones()));
  for (int z = 0; z < metrics.metric_zones(); ++z) {
    result.zone_availability.push_back(metrics.zone_availability(z));
    result.zone_glitch_seconds.push_back(metrics.zone_glitch_seconds(z));
  }
  result.coordinator_events = simulation.coordinator_events();
  result.shard_events = simulation.shard_events();
  return result;
}

void ExperimentPoint::add(const TrialResult& trial) {
  utilization.add(trial.utilization);
  rejection_ratio.add(trial.rejection_ratio);
  migrations_per_arrival.add(trial.migrations_per_arrival);
  drops.add(static_cast<double>(trial.drops));
  utilization_gap.add(trial.utilization_gap);
  rejection_gap.add(trial.rejection_gap);
  trials.push_back(trial);
}

void write_sweep_csv(std::ostream& out, const std::vector<std::string>& labels,
                     const std::vector<ExperimentPoint>& points) {
  assert(labels.size() == points.size());
  CsvWriter csv(out);
  csv.write_row({"label", "trial", "utilization", "bound_utilization",
                 "utilization_gap", "rejection_ratio", "bound_rejection",
                 "rejection_gap", "migrations_per_arrival", "arrivals",
                 "accepts", "rejects", "drops", "underflow_events",
                 "availability", "glitch_seconds"});
  for (std::size_t p = 0; p < points.size(); ++p) {
    const std::string& label = p < labels.size() ? labels[p] : "";
    for (std::size_t t = 0; t < points[p].trials.size(); ++t) {
      const TrialResult& trial = points[p].trials[t];
      csv.write_row({label, CsvWriter::field(static_cast<std::uint64_t>(t)),
                     CsvWriter::field(trial.utilization),
                     CsvWriter::field(trial.bound_utilization),
                     CsvWriter::field(trial.utilization_gap),
                     CsvWriter::field(trial.rejection_ratio),
                     CsvWriter::field(trial.bound_rejection),
                     CsvWriter::field(trial.rejection_gap),
                     CsvWriter::field(trial.migrations_per_arrival),
                     CsvWriter::field(trial.arrivals),
                     CsvWriter::field(trial.accepts),
                     CsvWriter::field(trial.rejects),
                     CsvWriter::field(trial.drops),
                     CsvWriter::field(trial.underflow_events),
                     CsvWriter::field(trial.availability),
                     CsvWriter::field(trial.glitch_seconds)});
    }
  }
}

ExperimentRunner::ExperimentRunner(std::size_t threads) : pool_(threads) {}

std::uint64_t ExperimentRunner::derive_seed(std::uint64_t master_seed, int trial) {
  std::uint64_t state = master_seed;
  std::uint64_t seed = 0;
  for (int i = 0; i <= trial; ++i) seed = splitmix64_next(state);
  return seed;
}

ExperimentPoint ExperimentRunner::run_point(const SimulationConfig& config,
                                            int trials, std::uint64_t master_seed) {
  auto points = run_sweep({config}, trials, master_seed);
  return std::move(points.front());
}

std::vector<ExperimentPoint> ExperimentRunner::run_sweep(
    const std::vector<SimulationConfig>& configs, int trials,
    std::uint64_t master_seed) {
  assert(trials >= 1);
  const std::size_t n_configs = configs.size();
  std::vector<std::vector<TrialResult>> results(
      n_configs, std::vector<TrialResult>(static_cast<std::size_t>(trials)));

  // Build the shared immutable world state (catalogs, popularity tables,
  // placement blueprints) once, serially, then hand every cell a const view.
  // Cells sharing a (system, seed) pair skip catalog generation and the
  // placement solve entirely; results stay bit-identical (sweep_context.h).
  SweepContext context;
  context.prepare(configs, trials, master_seed);

  pool_.parallel_for(n_configs * static_cast<std::size_t>(trials),
                     [&](std::size_t task) {
                       const std::size_t c = task / static_cast<std::size_t>(trials);
                       const int t = static_cast<int>(
                           task % static_cast<std::size_t>(trials));
                       SimulationConfig config = configs[c];
                       config.seed = derive_seed(master_seed, t);
                       VodSimulation simulation(std::move(config), &context);
                       simulation.run();
                       results[c][static_cast<std::size_t>(t)] =
                           TrialResult::from(simulation);
                     });

  std::vector<ExperimentPoint> points(n_configs);
  for (std::size_t c = 0; c < n_configs; ++c) {
    for (const TrialResult& trial : results[c]) points[c].add(trial);
  }
  return points;
}

}  // namespace vodsim
