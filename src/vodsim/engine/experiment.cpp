#include "vodsim/engine/experiment.h"

#include <cassert>

#include "vodsim/engine/sweep_context.h"
#include "vodsim/util/rng.h"

namespace vodsim {

TrialResult TrialResult::from(const VodSimulation& simulation) {
  const Metrics& metrics = simulation.metrics();
  TrialResult result;
  result.utilization = metrics.utilization();
  result.rejection_ratio = metrics.rejection_ratio();
  result.migrations_per_arrival = metrics.migrations_per_arrival();
  result.arrivals = metrics.arrivals();
  result.accepts = metrics.accepts();
  result.rejects = metrics.rejects();
  result.migration_steps = metrics.migration_steps();
  result.drops = metrics.drops();
  result.underflow_events = metrics.underflow_events();
  result.continuity_violations = simulation.continuity_violations();
  result.availability = metrics.availability();
  result.glitch_seconds = metrics.glitch_seconds();
  result.interruptions = metrics.interruptions();
  result.server_downs = metrics.server_downs();
  result.sheds = metrics.sheds();
  result.sheds_migrated = metrics.sheds_migrated();
  result.retry_enqueued = metrics.retry_enqueued();
  result.readmissions = metrics.readmissions();
  result.retry_abandoned = metrics.retry_abandoned();
  result.repairs = metrics.repairs();
  result.mean_recovery_time = metrics.recovery_time().mean();
  return result;
}

void ExperimentPoint::add(const TrialResult& trial) {
  utilization.add(trial.utilization);
  rejection_ratio.add(trial.rejection_ratio);
  migrations_per_arrival.add(trial.migrations_per_arrival);
  drops.add(static_cast<double>(trial.drops));
  trials.push_back(trial);
}

ExperimentRunner::ExperimentRunner(std::size_t threads) : pool_(threads) {}

std::uint64_t ExperimentRunner::derive_seed(std::uint64_t master_seed, int trial) {
  std::uint64_t state = master_seed;
  std::uint64_t seed = 0;
  for (int i = 0; i <= trial; ++i) seed = splitmix64_next(state);
  return seed;
}

ExperimentPoint ExperimentRunner::run_point(const SimulationConfig& config,
                                            int trials, std::uint64_t master_seed) {
  auto points = run_sweep({config}, trials, master_seed);
  return std::move(points.front());
}

std::vector<ExperimentPoint> ExperimentRunner::run_sweep(
    const std::vector<SimulationConfig>& configs, int trials,
    std::uint64_t master_seed) {
  assert(trials >= 1);
  const std::size_t n_configs = configs.size();
  std::vector<std::vector<TrialResult>> results(
      n_configs, std::vector<TrialResult>(static_cast<std::size_t>(trials)));

  // Build the shared immutable world state (catalogs, popularity tables,
  // placement blueprints) once, serially, then hand every cell a const view.
  // Cells sharing a (system, seed) pair skip catalog generation and the
  // placement solve entirely; results stay bit-identical (sweep_context.h).
  SweepContext context;
  context.prepare(configs, trials, master_seed);

  pool_.parallel_for(n_configs * static_cast<std::size_t>(trials),
                     [&](std::size_t task) {
                       const std::size_t c = task / static_cast<std::size_t>(trials);
                       const int t = static_cast<int>(
                           task % static_cast<std::size_t>(trials));
                       SimulationConfig config = configs[c];
                       config.seed = derive_seed(master_seed, t);
                       VodSimulation simulation(std::move(config), &context);
                       simulation.run();
                       results[c][static_cast<std::size_t>(t)] =
                           TrialResult::from(simulation);
                     });

  std::vector<ExperimentPoint> points(n_configs);
  for (std::size_t c = 0; c < n_configs; ++c) {
    for (const TrialResult& trial : results[c]) points[c].add(trial);
  }
  return points;
}

}  // namespace vodsim
