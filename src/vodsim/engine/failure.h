#pragma once

/// \file failure.h
/// \brief Server failure timelines for the fault-tolerance extension.
///
/// The paper notes (§3.1) that DRM "can also be used to engineer a limited
/// degree of fault tolerance into the server since the ability to
/// dynamically switch servers for a single stream can help deal with node
/// server failures". Bench E12 exercises that: we pre-generate an
/// alternating up/down timeline per server (exponential TBF, exponential
/// TTR) and the engine migrates or drops the failed server's streams.

#include <vector>

#include "vodsim/cluster/request.h"
#include "vodsim/engine/config.h"
#include "vodsim/util/rng.h"
#include "vodsim/util/units.h"

namespace vodsim {

/// One availability transition.
struct FailureEvent {
  Seconds time = 0.0;
  ServerId server = kNoServer;
  bool up = false;  ///< true: recovery, false: failure
};

/// Generates each server's alternating failure/recovery events up to
/// \p horizon. Events are returned sorted by time; each server's first
/// event is a failure at an Exp(1/MTBF) time from 0. Empty when disabled.
std::vector<FailureEvent> generate_failure_timeline(const FailureConfig& config,
                                                    int num_servers,
                                                    Seconds horizon, Rng& rng);

}  // namespace vodsim
