#pragma once

/// \file vod_simulation.h
/// \brief The full cluster-VoD simulation: one trial, end to end.
///
/// Wires together the DES kernel, the cluster model, a bandwidth scheduler,
/// the admission controller (with DRM), a placement policy, the workload
/// generator, optional failure injection and optional popularity drift.
///
/// Fluid transmission: each streaming request has a piecewise-constant rate;
/// a server's rates are recomputed (EFTF by default) on every event that
/// changes its active set or a client's ability to absorb workahead:
/// arrival, transmission completion, buffer full, migration, failure.
/// Between recomputations, each request carries two *predicted* events —
/// transmission-complete and buffer-full — which are rescheduled only when
/// its allocation actually changes, keeping event churn near-linear in the
/// number of arrivals.

#include <cstdint>
#include <memory>
#include <vector>

#include "vodsim/admission/controller.h"
#include "vodsim/analysis/bounds.h"
#include "vodsim/cluster/request.h"
#include "vodsim/cluster/server.h"
#include "vodsim/cluster/topology.h"
#include "vodsim/cluster/video.h"
#include "vodsim/des/simulator.h"
#include "vodsim/engine/config.h"
#include "vodsim/engine/metrics.h"
#include "vodsim/engine/request_arena.h"
#include "vodsim/fault/retry_queue.h"
#include "vodsim/fault/transition.h"
#include "vodsim/obs/probes.h"
#include "vodsim/obs/trace.h"
#include "vodsim/placement/placement.h"
#include "vodsim/replication/replication.h"
#include "vodsim/sched/finish_order.h"
#include "vodsim/sched/scheduler.h"
#include "vodsim/stats/time_weighted.h"
#include "vodsim/util/rng.h"
#include "vodsim/util/stable_vector.h"
#include "vodsim/workload/drift.h"
#include "vodsim/workload/request_generator.h"
#include "vodsim/workload/trace.h"

namespace vodsim {

class InvariantAuditor;
class SweepContext;
class ThreadPool;

namespace detail {
/// One shard of the parallel engine: a contiguous server block with its own
/// event queue, metrics shard, scheduler instance, trace recorder and
/// scratch arenas. Defined in vod_simulation.cpp (DESIGN.md §12).
struct EngineShard;
}  // namespace detail

class VodSimulation {
 public:
  /// Validates \p config (throws std::invalid_argument) and builds the
  /// static world: catalog, servers, placement, replica directory.
  explicit VodSimulation(SimulationConfig config);

  /// As above, but adopts shared immutable world state (catalog, popularity
  /// model, placement blueprint) from \p context when it has matching
  /// entries, constructing locally otherwise. Results are bit-identical
  /// either way (engine/sweep_context.h). The context must outlive the
  /// simulation; nullptr degrades to plain construction.
  VodSimulation(SimulationConfig config, const SweepContext* context);

  /// As above, but replays \p trace instead of generating arrivals (used
  /// for paired policy comparisons). The trace must outlive the simulation.
  VodSimulation(SimulationConfig config, const RequestTrace& trace);

  ~VodSimulation();
  VodSimulation(const VodSimulation&) = delete;
  VodSimulation& operator=(const VodSimulation&) = delete;

  /// Runs the trial to the configured horizon. Call once.
  const Metrics& run();

  // --- introspection ----------------------------------------------------
  const SimulationConfig& config() const { return config_; }
  const VideoCatalog& catalog() const { return *catalog_; }
  const std::vector<Server>& servers() const { return servers_; }
  const PlacementResult& placement_result() const { return placement_result_; }
  const ReplicaDirectory& directory() const { return directory_; }
  const Metrics& metrics() const { return *metrics_; }

  /// The failure-domain tree (cluster/topology.h). Trivial (1 rack, 1 zone)
  /// unless config.topology.enabled.
  const Topology& topology() const { return topology_; }

  /// Analytic achievability envelope for this configuration, computed from
  /// the realized catalog/placement at world construction (analysis/
  /// bounds.h). Pure annotation: runs are bit-identical with or without
  /// reading it. The invariant auditor checks the run against it.
  const BoundsReport& bounds() const { return bounds_; }

  const Simulator& simulator() const { return sim_; }
  const BandwidthScheduler& scheduler() const { return *scheduler_; }
  const AdmissionController& controller() const { return *controller_; }
  /// The pre-generated fault schedule (empty unless failure injection or
  /// scripted faults are configured). Sorted by (time, server, kind).
  const std::vector<FaultTransition>& failure_timeline() const {
    return failure_timeline_;
  }

  /// The retry queue, or nullptr unless failure.retry.enabled.
  const RetryQueue* retry_queue() const { return retry_queue_.get(); }

  /// Recompute-memo epoch of \p server: bumps whenever the server's
  /// allocation inputs change and never otherwise. The invariant auditor
  /// checks monotonicity; exposed for it and for tests.
  std::uint64_t recompute_epoch(ServerId server) const {
    return recompute_state_[static_cast<std::size_t>(server)].epoch;
  }

  /// The attached auditor, or nullptr unless paranoid mode is on.
  const InvariantAuditor* auditor() const { return auditor_.get(); }

  /// The trace recorder, or nullptr unless tracing is on (config.trace /
  /// VODSIM_TRACE). Observe-only: a traced run is bit-identical to an
  /// untraced one.
  const TraceRecorder* trace() const { return trace_.get(); }

  /// The probe set, or nullptr unless probing is on (config.probe /
  /// VODSIM_PROBE). Observe-only, like the trace recorder.
  const ProbeSet* probes() const { return probes_.get(); }

  /// Every request ever created (terminal states included), in id order;
  /// audit surface for tests. Sharded runs store requests in per-shard
  /// pools (engine/request_arena.h) but iteration order is id order either
  /// way.
  const RequestArena& requests() const { return requests_; }

  /// Resolved engine mode after build_world: fast_math config/env/sharded
  /// default, minus an exact_math opt-out. Exposed for tests pinning the
  /// fast-by-default policy.
  bool fast_math_enabled() const { return fast_math_; }

  /// Playback continuity violations observed (should be 0 except under
  /// failure injection or nonzero switch latency). Sums the per-shard
  /// counters in sharded mode.
  std::uint64_t continuity_violations() const;

  // --- sharded engine introspection (DESIGN.md §12) ---------------------
  /// Configured shard count; 1 = the classic single-queue engine.
  int shard_count() const { return config_.shards; }

  /// Shard owning \p server (0 when shards == 1). Contiguous blocks:
  /// consecutive servers share a shard, aligning with the fault
  /// subsystem's correlated (rack/zone) outage groups.
  int shard_of_server(ServerId server) const;

  /// Events executed on the coordinator queue (arrivals, admission,
  /// migration, replication, faults, retries, pause/resume, playback
  /// end). Valid after run(). In single mode this is every event.
  std::uint64_t coordinator_events() const;

  /// Events executed across all shard queues (the predicted per-stream
  /// events: tx-complete, buffer-full, buffer-low). 0 in single mode.
  /// coordinator_events()/shard_events() is the measured serial/parallel
  /// work split of a sharded run (the Amdahl numbers in BENCH_pr8.json).
  std::uint64_t shard_events() const;

  /// All trace events from every recorder (coordinator + shards), merged
  /// in (time, shard, seq) order — each tagged with its executing domain
  /// (TraceEvent::shard: -1 = coordinator/single engine). Empty when
  /// tracing is off.
  std::vector<TraceEvent> merged_trace_events() const;

  /// Time-weighted per-server stream occupancy over the measurement window.
  struct OccupancySummary {
    double mean_active = 0.0;        ///< mean streams per server
    double min_server_mean = 0.0;    ///< least-loaded server's mean
    double max_server_mean = 0.0;    ///< most-loaded server's mean
    /// (max - min) / cluster mean; 0 = perfectly balanced.
    double imbalance = 0.0;
  };

  /// Valid after run().
  OccupancySummary occupancy() const;

  /// Total viewer pauses started (interactivity extension).
  std::uint64_t pauses_started() const { return pauses_started_; }

 private:
  void build_world();
  void schedule_next_arrival();
  void handle_arrival(const Arrival& arrival);
  void execute_migration(const MigrationStep& step);
  void finish_migration(Request& request, ServerId target);
  void on_tx_complete(Request& request);
  void on_buffer_full(Request& request);
  void on_playback_end(Request& request);
  void apply_fault(const FaultTransition& event);
  void recover_streams_of_failed_server(Server& server);

  /// Brownout graceful degradation: evicts streams (most-buffered first,
  /// migrate before dropping) until the server's commitments fit its
  /// degraded effective bandwidth.
  void shed_overload(Server& server);

  /// Parks an already-detached stream in the retry queue as a migration
  /// with unbounded latency. Returns false (caller must drop) when retry is
  /// disabled or the queue is full.
  bool park_for_retry(Request& request);

  /// Attempts re-admission of due retry entries (all entries when \p force
  /// — used on server-up / brownout-end).
  void process_retries(bool force);

  /// Retimes the single backoff-wakeup event to the queue's earliest
  /// next_attempt (cancels it when the queue is empty).
  void arm_retry_tick();

  /// Repair replication: if \p server is still in the same down episode
  /// (started at \p down_since), re-replicates its unreachable titles.
  void check_repair(ServerId server, Seconds down_since);

  /// Dynamic replication: called on every rejection; may start a transfer.
  void maybe_start_replication(VideoId video);

  /// Reserves link bandwidth on both ends and schedules the transfer
  /// completion for an already-planned replication job.
  void start_replication_job(const ReplicationJob& job);

  /// Client interactivity: Poisson pause/resume per viewing client.
  void schedule_next_pause(Request& request);
  void on_pause(Request& request);
  void on_resume(Request& request);

  /// Advances all active requests on \p server to now, reallocates rates,
  /// and reschedules predicted events for requests whose rate changed.
  /// Memoized per server: a repeat call at the same timestamp with no
  /// intervening input change (see mark_server_dirty) is a no-op.
  void recompute_server(ServerId server);

  /// Records that \p server's allocation inputs changed (active set,
  /// reservations, pause state, or fluid state advanced), invalidating the
  /// recompute memo. Safe to call with kNoServer. Spurious bumps cost one
  /// redundant recompute; a missing bump would skip a needed one — when in
  /// doubt, bump.
  void mark_server_dirty(ServerId server);

  /// Accounts the transmission interval [request.last_update(), now] to the
  /// metrics and integrates the request's fluid state.
  void advance_and_account(Request& request, Seconds now);

  /// Fast-math replacement for recompute_server's per-stream advance loop:
  /// one batched kernel over the server's FluidLane, metering aggregated
  /// per batch. Per-stream trajectories are identical to the exact loop
  /// (shared single-stream formulas); see SimulationConfig::fast_math for
  /// the contract.
  void batch_advance_server(Server& server);

  void cancel_predicted_events(Request& request);
  void reschedule_predicted_events(Request& request);

  /// The mechanics half of reschedule_predicted_events: given the three
  /// predicted times (+inf = no event), cancels/schedules/retimes the
  /// request's handles against its owning queue. Split out so
  /// recompute_server's batched path can compute the times with one
  /// vectorized lane pass (FluidLane::fill_predicted_times) and feed them
  /// here — the schedule/cancel sequence (and thus event-seq consumption)
  /// is identical to the scalar path.
  void apply_predicted_times(Request& request, Seconds tx_at, Seconds full_at,
                             Seconds low_at);

  /// The RequestArena pool a request created for \p server lives in:
  /// pool 0 (coordinator) in single mode or for server-less requests,
  /// 1 + shard index when sharded — each shard's streams get their own
  /// StableVector chunks, ending cross-shard false sharing on Request
  /// cache lines.
  std::size_t request_pool(ServerId server) const;

  /// Trace emission helper. The null check is the entire disabled-tracing
  /// hot path (one load + branch per emission site); the category mask is
  /// only consulted once a recorder is attached. Resolves the executing
  /// context (coordinator vs. shard) for both the timestamp and the
  /// recorder, so shard-drain events land shard-tagged in the shard's own
  /// ring (defined in vod_simulation.cpp).
  void note(TraceEventType type, std::uint32_t category,
            ServerId server = kNoServer, RequestId request = -1,
            VideoId video = -1, double a = 0.0, double b = 0.0);

  /// The queue a request's predicted events (tx-complete, buffer-full,
  /// buffer-low) belong to: the owning shard's simulator when sharded,
  /// the root simulator otherwise. Predicted-event handles are only ever
  /// scheduled/retimed/cancelled against this queue — EventIds are
  /// queue-local, and a request's server never changes while its
  /// predictions are live (every migration/recovery path cancels first).
  Simulator& predicted_sim(ServerId server);

  /// Builds the shard contexts (shards > 1 only); part of build_world.
  void build_shards(const TraceConfig& trace_config);

  /// The sharded replacement for run()'s sim_.run_until(duration): the
  /// conservative-lookahead window loop (DESIGN.md §12).
  void run_sharded_windows();

  /// attach/detach wrappers that keep the occupancy statistics current.
  void attach_to(ServerId server, Request& request);
  void detach_from(ServerId server, Request& request);

  SimulationConfig config_;
  Simulator sim_;
  Rng rng_;                ///< decision randomness (assignment ties etc.)
  Rng interactivity_rng_;  ///< pause/resume timing

  /// Shared with the SweepContext when one was supplied, otherwise locally
  /// constructed (sole owner). Immutable either way.
  std::shared_ptr<const VideoCatalog> catalog_;
  std::vector<Server> servers_;
  Topology topology_;
  PlacementResult placement_result_;
  ReplicaDirectory directory_;
  BoundsReport bounds_;
  std::shared_ptr<const PopularityModel> popularity_;
  /// World-construction cache for sweeps; nullptr outside run_sweep.
  const SweepContext* sweep_context_ = nullptr;
  std::unique_ptr<AdmissionController> controller_;
  std::unique_ptr<BandwidthScheduler> scheduler_;
  std::unique_ptr<ReplicationManager> replication_;
  std::unique_ptr<ArrivalSource> arrivals_;
  std::unique_ptr<Metrics> metrics_;
  ClientProfile client_profile_;
  std::vector<FaultTransition> failure_timeline_;
  /// Present only when failure.retry.enabled.
  std::unique_ptr<RetryQueue> retry_queue_;
  EventId retry_tick_ = kInvalidEventId;
  /// Per server: sim time the current down episode began, -1 when up.
  std::vector<Seconds> fault_down_since_;
  /// Per server: sim time capacity loss accounting for the current brownout
  /// began (only advances while the server is up), -1 when at full factor.
  std::vector<Seconds> brownout_since_;
  /// Per server: sim time capacity loss accounting for the current network
  /// partition began (only advances while the server is up — a down,
  /// partitioned server's loss is charged to the down episode), -1 when
  /// reachable. A partitioned-but-up server loses its whole effective
  /// bandwidth to the cluster: the hardware runs, the controller can't use
  /// it.
  std::vector<Seconds> partition_since_;
  /// Per server: sim time the current partition episode began regardless of
  /// up/down state (feeds the partition-duration distribution), -1 when
  /// reachable.
  std::vector<Seconds> partition_began_;
  std::vector<TimeWeighted> occupancy_;

  RequestArena requests_;
  RequestId next_request_id_ = 0;
  /// Present only in paranoid mode (config.paranoid or VODSIM_PARANOID).
  std::unique_ptr<InvariantAuditor> auditor_;
  /// Present only when tracing is on (config.trace or VODSIM_TRACE).
  std::unique_ptr<TraceRecorder> trace_;
  /// Present only when probing is on (config.probe or VODSIM_PROBE).
  std::unique_ptr<ProbeSet> probes_;
  std::uint64_t continuity_violations_ = 0;
  std::uint64_t pauses_started_ = 0;
  bool ran_ = false;
  /// Resolved engine mode: config.fast_math or VODSIM_FAST_MATH override.
  bool fast_math_ = false;
  /// Test-only backdoor (VODSIM_TEST_FAST_MATH_BUG): biases the fast-math
  /// batch metering low so the differential harness's negative test can
  /// prove a seeded batching bug is caught. Never set outside tests.
  bool fast_math_seeded_bug_ = false;

  /// True when config.shards > 1. The single-shard path takes the exact
  /// code the pre-sharding engine ran — its bit-identity to the hexfloat
  /// goldens holds by construction, not by tolerance.
  bool sharded_ = false;
  /// Test-only backdoor (VODSIM_TEST_SHARD_BUG): biases the shard-metrics
  /// merge low so the sharded/single differential harness's negative test
  /// can prove a seeded cross-mode bug is caught. Never set outside tests.
  bool shard_seeded_bug_ = false;
  /// Shard contexts, in shard-index order (empty when shards == 1). All
  /// cross-shard coupling happens through coordinator events; between
  /// coordinator events each shard's queue drains with no shared mutable
  /// state (see detail::EngineShard in vod_simulation.cpp).
  std::vector<std::unique_ptr<detail::EngineShard>> shards_;
  /// server -> owning shard index (contiguous blocks).
  std::vector<int> shard_of_server_;
  /// Workers for the parallel drain windows; created lazily in run() so
  /// construct-only call sites never spawn threads.
  std::unique_ptr<ThreadPool> shard_pool_;

  /// Scratch buffers for scheduler output and working sets (reused across
  /// events; the steady-state loop performs no per-event heap allocations).
  std::vector<Mbps> rates_scratch_;
  AllocationScratch sched_scratch_;
  /// Per-slot playback underflow from the last fast-math batch (reused;
  /// written wholesale by FluidLane::advance_batch).
  std::vector<Megabits> underflow_scratch_;
  /// Slots whose allocation changed in the current recompute pass; decides
  /// scalar vs. batched predicted-event retiming (reused across events).
  std::vector<std::size_t> changed_slots_;
  /// Predicted-time outputs of FluidLane::fill_predicted_times (reused;
  /// written wholesale per batched retime pass).
  std::vector<Seconds> retime_tx_;
  std::vector<Seconds> retime_full_;
  std::vector<Seconds> retime_low_;

  /// Per-server recompute memo. `epoch` counts input changes; a server is
  /// clean iff it was recomputed at exactly the current simulation time
  /// (exact double compare) and its epoch has not moved since.
  struct ServerRecomputeState {
    std::uint64_t epoch = 1;
    std::uint64_t clean_epoch = 0;  ///< epoch at the last completed recompute
    Seconds clean_time = -1.0;      ///< sim time of the last completed recompute
    /// This server's grant order from its previous allocation pass; the
    /// scheduler repairs it instead of resorting (sched/finish_order.h).
    /// Entries point into requests_, which outlives this state.
    SchedCache sched_cache;
  };
  std::vector<ServerRecomputeState> recompute_state_;
};

}  // namespace vodsim
