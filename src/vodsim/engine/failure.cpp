#include "vodsim/engine/failure.h"

#include <algorithm>

namespace vodsim {

std::vector<FailureEvent> generate_failure_timeline(const FailureConfig& config,
                                                    int num_servers,
                                                    Seconds horizon, Rng& rng) {
  std::vector<FailureEvent> events;
  if (!config.enabled) return events;

  for (int s = 0; s < num_servers; ++s) {
    Seconds t = 0.0;
    bool up = true;
    for (;;) {
      const Seconds gap = up ? rng.exponential(1.0 / config.mean_time_between_failures)
                             : rng.exponential(1.0 / config.mean_time_to_repair);
      t += gap;
      if (t >= horizon) break;
      up = !up;
      events.push_back(FailureEvent{t, static_cast<ServerId>(s), up});
    }
  }
  std::sort(events.begin(), events.end(), [](const FailureEvent& a, const FailureEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.server < b.server;
  });
  return events;
}

}  // namespace vodsim
