#include "vodsim/engine/policy_matrix.h"

namespace vodsim {

std::string PolicySpec::description() const {
  std::string out = to_string(placement);
  out += migration ? " + migration" : " + no-migration";
  out += " + ";
  out += std::to_string(static_cast<int>(staging_fraction * 100.0));
  out += "% buffer";
  return out;
}

const std::vector<PolicySpec>& figure6_policies() {
  static const std::vector<PolicySpec> policies = {
      {"P1", PlacementKind::kEven, false, 0.0},
      {"P2", PlacementKind::kEven, false, 0.2},
      {"P3", PlacementKind::kEven, true, 0.0},
      {"P4", PlacementKind::kEven, true, 0.2},
      {"P5", PlacementKind::kPredictive, false, 0.0},
      {"P6", PlacementKind::kPredictive, false, 0.2},
      {"P7", PlacementKind::kPredictive, true, 0.0},
      {"P8", PlacementKind::kPredictive, true, 0.2},
  };
  return policies;
}

SimulationConfig apply_policy(SimulationConfig base, const PolicySpec& policy) {
  base.placement.kind = policy.placement;
  base.client.staging_fraction = policy.staging_fraction;
  base.admission.migration.enabled = policy.migration;
  if (policy.migration) {
    base.admission.migration.max_chain_length = 1;
    base.admission.migration.max_hops_per_request = 1;
  }
  return base;
}

std::string TournamentSpec::description() const {
  std::string out = to_string(scheduler);
  out += " + ";
  out += to_string(placement);
  out += migration_hops > 0
             ? " + migration(hops=" + std::to_string(migration_hops) + ")"
             : " + no-migration";
  out += " + " + std::to_string(static_cast<int>(staging_fraction * 100.0)) +
         "% buffer";
  return out;
}

std::vector<TournamentSpec> tournament_grid(
    const std::vector<SchedulerKind>& schedulers,
    const std::vector<PlacementKind>& placements,
    const std::vector<int>& migration_budgets, double staging_fraction) {
  std::vector<TournamentSpec> grid;
  grid.reserve(schedulers.size() * placements.size() * migration_budgets.size());
  for (SchedulerKind scheduler : schedulers) {
    for (PlacementKind placement : placements) {
      for (int hops : migration_budgets) {
        TournamentSpec spec;
        spec.scheduler = scheduler;
        spec.placement = placement;
        spec.migration_hops = hops;
        spec.staging_fraction = staging_fraction;
        spec.label = to_string(scheduler) + "/" + to_string(placement) + "/m" +
                     std::to_string(hops);
        grid.push_back(std::move(spec));
      }
    }
  }
  return grid;
}

SimulationConfig apply_tournament_spec(SimulationConfig base,
                                       const TournamentSpec& spec) {
  base.scheduler = spec.scheduler;
  base.placement.kind = spec.placement;
  base.client.staging_fraction = spec.staging_fraction;
  base.admission.migration.enabled = spec.migration_hops > 0;
  if (spec.migration_hops > 0) {
    base.admission.migration.max_chain_length = 1;
    base.admission.migration.max_hops_per_request = spec.migration_hops;
  }
  return base;
}

}  // namespace vodsim
