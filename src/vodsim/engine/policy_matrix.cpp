#include "vodsim/engine/policy_matrix.h"

namespace vodsim {

std::string PolicySpec::description() const {
  std::string out = to_string(placement);
  out += migration ? " + migration" : " + no-migration";
  out += " + ";
  out += std::to_string(static_cast<int>(staging_fraction * 100.0));
  out += "% buffer";
  return out;
}

const std::vector<PolicySpec>& figure6_policies() {
  static const std::vector<PolicySpec> policies = {
      {"P1", PlacementKind::kEven, false, 0.0},
      {"P2", PlacementKind::kEven, false, 0.2},
      {"P3", PlacementKind::kEven, true, 0.0},
      {"P4", PlacementKind::kEven, true, 0.2},
      {"P5", PlacementKind::kPredictive, false, 0.0},
      {"P6", PlacementKind::kPredictive, false, 0.2},
      {"P7", PlacementKind::kPredictive, true, 0.0},
      {"P8", PlacementKind::kPredictive, true, 0.2},
  };
  return policies;
}

SimulationConfig apply_policy(SimulationConfig base, const PolicySpec& policy) {
  base.placement.kind = policy.placement;
  base.client.staging_fraction = policy.staging_fraction;
  base.admission.migration.enabled = policy.migration;
  if (policy.migration) {
    base.admission.migration.max_chain_length = 1;
    base.admission.migration.max_hops_per_request = 1;
  }
  return base;
}

}  // namespace vodsim
