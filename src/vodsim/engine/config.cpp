#include "vodsim/engine/config.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "vodsim/util/rng.h"
#include "vodsim/workload/poisson.h"

namespace vodsim {

SeedPlan SeedPlan::derive(std::uint64_t master_seed) {
  Rng master(master_seed);
  SeedPlan plan;
  plan.catalog = master.fork_seed();
  plan.placement = master.fork_seed();
  plan.arrival = master.fork_seed();
  plan.decision = master.fork_seed();
  plan.failure = master.fork_seed();
  plan.interactivity = master.fork_seed();
  return plan;
}

SystemConfig SystemConfig::small_system() {
  SystemConfig config;
  config.name = "small";
  config.num_servers = 5;
  config.server_bandwidth = 100.0;
  config.server_storage = gigabytes(100);
  config.video_min_duration = minutes(10);
  config.video_max_duration = minutes(30);
  config.num_videos = 300;
  config.avg_copies = 2.2;
  config.view_bandwidth = 3.0;
  return config;
}

SystemConfig SystemConfig::large_system() {
  SystemConfig config;
  config.name = "large";
  config.num_servers = 20;
  config.server_bandwidth = 300.0;
  config.server_storage = gigabytes(150);
  config.video_min_duration = hours(1);
  config.video_max_duration = hours(2);
  config.num_videos = 200;
  config.avg_copies = 2.2;
  config.view_bandwidth = 3.0;
  return config;
}

double SimulationConfig::arrival_rate() const {
  return offered_load_rate(system.total_bandwidth(), system.mean_video_duration(),
                           system.view_bandwidth, load_factor);
}

void SimulationConfig::validate() const {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("SimulationConfig: " + what);
  };
  // NaN slips through every ordered comparison below (NaN <= 0 is false),
  // so finiteness is checked explicitly first. receive_bandwidth is the one
  // field where +infinity is meaningful ("no client-side cap") — it only
  // rejects NaN.
  const auto finite = [&fail](double value, const char* name) {
    if (!std::isfinite(value)) {
      fail(std::string(name) + " must be finite (got NaN or infinity)");
    }
  };
  finite(system.server_bandwidth, "server_bandwidth");
  finite(system.server_storage, "server_storage");
  finite(system.video_min_duration, "video_min_duration");
  finite(system.video_max_duration, "video_max_duration");
  finite(system.avg_copies, "avg_copies");
  finite(system.view_bandwidth, "view_bandwidth");
  finite(client.staging_fraction, "staging_fraction");
  finite(zipf_theta, "zipf_theta");
  finite(load_factor, "load_factor");
  finite(duration, "duration");
  finite(warmup, "warmup");
  finite(intermittent_safety_cover, "intermittent_safety_cover");
  for (double entry : system.bandwidth_profile) {
    finite(entry, "bandwidth_profile entry");
  }
  for (double entry : system.storage_profile) {
    finite(entry, "storage_profile entry");
  }
  if (std::isnan(client.receive_bandwidth)) {
    fail("receive_bandwidth must not be NaN");
  }
  if (system.num_servers < 1) fail("num_servers must be >= 1");
  if (system.server_bandwidth <= 0.0) fail("server_bandwidth must be > 0");
  if (system.server_storage < 0.0) fail("server_storage must be >= 0");
  if (system.video_min_duration <= 0.0) fail("video_min_duration must be > 0");
  if (system.video_max_duration < system.video_min_duration) {
    fail("video_max_duration < video_min_duration");
  }
  if (system.num_videos < 1) fail("num_videos must be >= 1");
  if (system.avg_copies < 1.0) fail("avg_copies must be >= 1");
  if (system.view_bandwidth <= 0.0) fail("view_bandwidth must be > 0");
  if (system.view_bandwidth > system.server_bandwidth) {
    fail("a server cannot sustain even one stream");
  }
  if (!system.bandwidth_profile.empty() &&
      system.bandwidth_profile.size() != static_cast<std::size_t>(system.num_servers)) {
    fail("bandwidth_profile size mismatch");
  }
  if (!system.storage_profile.empty() &&
      system.storage_profile.size() != static_cast<std::size_t>(system.num_servers)) {
    fail("storage_profile size mismatch");
  }
  if (client.staging_fraction < 0.0) fail("staging_fraction must be >= 0");
  if (client.receive_bandwidth < system.view_bandwidth) {
    fail("client receive bandwidth below view bandwidth");
  }
  if (load_factor <= 0.0) fail("load_factor must be > 0");
  if (duration <= 0.0) fail("duration must be > 0");
  if (warmup < 0.0 || warmup >= duration) fail("warmup must be in [0, duration)");
  if (admission.migration.max_chain_length < 0) fail("max_chain_length must be >= 0");
  if (admission.buffer_aware && scheduler != SchedulerKind::kIntermittent) {
    fail("buffer-aware admission requires the intermittent scheduler "
         "(minimum-flow schedulers assume commitments fit the link)");
  }
  if (intermittent_safety_cover < 0.0) fail("intermittent_safety_cover must be >= 0");
  if (admission.migration.switch_latency < 0.0) fail("switch_latency must be >= 0");
  if (failure.enabled) {
    if (failure.mean_time_between_failures <= 0.0) fail("MTBF must be > 0");
    if (failure.mean_time_to_repair <= 0.0) fail("MTTR must be > 0");
    if (failure.min_dwell < 0.0) fail("failure min_dwell must be >= 0");
    if (failure.brownout.enabled) {
      if (failure.brownout.mean_time_between <= 0.0) {
        fail("brownout mean_time_between must be > 0");
      }
      if (failure.brownout.mean_duration <= 0.0) {
        fail("brownout mean_duration must be > 0");
      }
      if (failure.brownout.capacity_factor <= 0.0 ||
          failure.brownout.capacity_factor >= 1.0) {
        fail("brownout capacity_factor must be in (0, 1)");
      }
    }
    if (failure.correlated.enabled) {
      if (failure.correlated.group_size < 1) {
        fail("correlated group_size must be >= 1");
      }
      if (failure.correlated.mean_time_between <= 0.0) {
        fail("correlated mean_time_between must be > 0");
      }
      if (failure.correlated.mean_duration <= 0.0) {
        fail("correlated mean_duration must be > 0");
      }
    }
    if (failure.domains.rack_outage.enabled) {
      if (!topology.enabled) fail("rack outages require topology.enabled");
      if (failure.domains.rack_outage.mean_time_between <= 0.0) {
        fail("rack outage mean_time_between must be > 0");
      }
      if (failure.domains.rack_outage.mean_duration <= 0.0) {
        fail("rack outage mean_duration must be > 0");
      }
    }
    if (failure.domains.zone_brownout.enabled) {
      if (!topology.enabled) fail("zone brownouts require topology.enabled");
      if (failure.domains.zone_brownout.mean_time_between <= 0.0) {
        fail("zone brownout mean_time_between must be > 0");
      }
      if (failure.domains.zone_brownout.mean_duration <= 0.0) {
        fail("zone brownout mean_duration must be > 0");
      }
      if (failure.domains.zone_brownout.capacity_factor <= 0.0 ||
          failure.domains.zone_brownout.capacity_factor >= 1.0) {
        fail("zone brownout capacity_factor must be in (0, 1)");
      }
    }
    if (failure.domains.partition.enabled) {
      if (!topology.enabled) fail("partitions require topology.enabled");
      if (failure.domains.partition.mean_time_between <= 0.0) {
        fail("partition mean_time_between must be > 0");
      }
      if (failure.domains.partition.mean_duration <= 0.0) {
        fail("partition mean_duration must be > 0");
      }
    }
  }
  if (failure.glitch_dedupe_window < 0.0) {
    fail("glitch_dedupe_window must be >= 0");
  }
  if (topology.enabled) {
    if (topology.racks < 1) fail("topology.racks must be >= 1");
    if (topology.racks > system.num_servers) {
      fail("topology.racks must not exceed num_servers (a rack owns >= 1 server)");
    }
    if (topology.zones < 1) fail("topology.zones must be >= 1");
    if (topology.zones > topology.racks) {
      fail("topology.zones must not exceed racks (a zone owns >= 1 rack)");
    }
  }
  if (failure.retry.enabled) {
    if (failure.retry.max_queue < 1) fail("retry max_queue must be >= 1");
    if (failure.retry.max_attempts < 1) fail("retry max_attempts must be >= 1");
    if (failure.retry.backoff_base <= 0.0) fail("retry backoff_base must be > 0");
    if (failure.retry.backoff_cap < failure.retry.backoff_base) {
      fail("retry backoff_cap must be >= backoff_base");
    }
  }
  if (failure.repair.enabled && failure.repair.down_threshold <= 0.0) {
    fail("repair down_threshold must be > 0");
  }
  for (const FaultTransition& t : scripted_faults) {
    if (t.server < 0 || t.server >= static_cast<ServerId>(system.num_servers)) {
      fail("scripted fault names an out-of-range server");
    }
    if (t.time < 0.0) fail("scripted fault time must be >= 0");
    if (t.kind == FaultTransitionKind::kBrownoutBegin &&
        (t.capacity_factor <= 0.0 || t.capacity_factor >= 1.0)) {
      fail("scripted brownout capacity_factor must be in (0, 1)");
    }
  }
  if (drift.enabled && drift.period <= 0.0) fail("drift period must be > 0");
  if (interactivity.enabled) {
    if (interactivity.pauses_per_hour <= 0.0) fail("pauses_per_hour must be > 0");
    if (interactivity.mean_pause_duration <= 0.0) {
      fail("mean_pause_duration must be > 0");
    }
  }
  if (replication.enabled) {
    if (replication.rejection_threshold < 1) fail("rejection_threshold must be >= 1");
    if (replication.window <= 0.0) fail("replication window must be > 0");
    if (replication.transfer_bandwidth <= 0.0) {
      fail("replication transfer_bandwidth must be > 0");
    }
    if (replication.max_concurrent < 1) fail("replication max_concurrent must be >= 1");
  }
  if (trace.enabled && trace.capacity < 1) fail("trace capacity must be >= 1");
  if (probe.enabled && probe.period <= 0.0) fail("probe period must be > 0");
  if (shards < 1) fail("shards must be >= 1");
  if (shards > system.num_servers) {
    fail("shards must not exceed num_servers (a shard owns >= 1 server)");
  }
  if (shard_threads < 0) fail("shard_threads must be >= 0");
  if (fast_math && exact_math) {
    fail("fast_math and exact_math are contradictory; pick one");
  }
}

std::vector<double> normalize_profile(const std::vector<double>& profile,
                                      std::size_t expected_size) {
  if (profile.size() != expected_size) {
    throw std::invalid_argument("heterogeneity profile size mismatch");
  }
  double sum = 0.0;
  for (double x : profile) {
    if (x <= 0.0) throw std::invalid_argument("profile entries must be > 0");
    sum += x;
  }
  const double mean = sum / static_cast<double>(profile.size());
  std::vector<double> normalized(profile.size());
  for (std::size_t i = 0; i < profile.size(); ++i) normalized[i] = profile[i] / mean;
  return normalized;
}

std::vector<Server> make_servers(const SystemConfig& system) {
  const auto n = static_cast<std::size_t>(system.num_servers);
  std::vector<double> bw(n, 1.0);
  std::vector<double> st(n, 1.0);
  if (!system.bandwidth_profile.empty()) {
    bw = normalize_profile(system.bandwidth_profile, n);
  }
  if (!system.storage_profile.empty()) {
    st = normalize_profile(system.storage_profile, n);
  }
  std::vector<Server> servers;
  servers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    servers.emplace_back(static_cast<ServerId>(i), system.server_bandwidth * bw[i],
                         system.server_storage * st[i]);
  }
  return servers;
}

}  // namespace vodsim
