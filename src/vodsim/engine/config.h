#pragma once

/// \file config.h
/// \brief Full configuration of one simulation trial.
///
/// A SimulationConfig bundles the cluster (Figure 3 of the paper), the
/// client staging policy, the placement/admission/scheduling policies, the
/// workload, and the measurement horizon. The two paper systems are
/// available as presets (`SystemConfig::small_system/large_system`).

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "vodsim/admission/controller.h"
#include "vodsim/cluster/server.h"
#include "vodsim/cluster/topology.h"
#include "vodsim/fault/transition.h"
#include "vodsim/obs/probes.h"
#include "vodsim/obs/trace.h"
#include "vodsim/placement/placement.h"
#include "vodsim/replication/replication.h"
#include "vodsim/sched/scheduler.h"
#include "vodsim/util/units.h"

namespace vodsim {

/// The cluster and catalog (paper Figure 3).
struct SystemConfig {
  std::string name = "custom";
  int num_servers = 5;
  Mbps server_bandwidth = 100.0;          ///< per-server link, Mb/s
  Megabits server_storage = gigabytes(100);
  Seconds video_min_duration = minutes(10);
  Seconds video_max_duration = minutes(30);
  std::size_t num_videos = 300;
  double avg_copies = 2.2;
  Mbps view_bandwidth = 3.0;

  /// Optional per-server multipliers for heterogeneity studies (§4.6).
  /// Empty = homogeneous. When set, must have num_servers entries; they are
  /// normalized to mean 1 so aggregate capacity is unchanged.
  std::vector<double> bandwidth_profile;
  std::vector<double> storage_profile;

  /// Paper's "small" system: 5 servers x 100 Mb/s, 10-30 min clips.
  static SystemConfig small_system();

  /// Paper's "large" system: 20 servers x 300 Mb/s, 1-2 h features.
  static SystemConfig large_system();

  /// Server-to-view-bandwidth ratio: concurrent streams per server.
  double svbr() const { return server_bandwidth / view_bandwidth; }

  Mbps total_bandwidth() const {
    return server_bandwidth * static_cast<double>(num_servers);
  }

  Seconds mean_video_duration() const {
    return 0.5 * (video_min_duration + video_max_duration);
  }

  Megabits mean_video_size() const {
    return mean_video_duration() * view_bandwidth;
  }
};

/// Client-side staging policy.
struct ClientPolicy {
  /// Staging buffer as a fraction of the *average* video size (the paper's
  /// "x% buffer"). 0 = continuous transmission.
  double staging_fraction = 0.0;

  /// Client receive cap, Mb/s; infinity = unbounded (Theorem 1 regime).
  /// The paper's staging experiments cap this at 30 Mb/s.
  Mbps receive_bandwidth = std::numeric_limits<double>::infinity();
};

/// Placement policy selection plus its tuning knobs.
struct PlacementConfig {
  PlacementKind kind = PlacementKind::kEven;
  /// PartialPredictive only: see PartialPredictivePlacement.
  double partial_head_fraction = 0.10;
  double partial_tail_shift = 0.05;
};

/// Partial capacity loss: a server's link degrades to `capacity_factor`
/// of nominal for an exponential interval. Degradation triggers
/// staging-aware load shedding (most-buffered streams evicted first,
/// migrated before dropped) rather than a crash.
struct BrownoutConfig {
  bool enabled = false;
  Seconds mean_time_between = hours(50);  ///< per server, between episodes
  Seconds mean_duration = minutes(10);
  double capacity_factor = 0.5;  ///< surviving fraction of bandwidth, (0,1)
};

/// Correlated outages: consecutive groups of `group_size` servers crash
/// and repair together (shared rack / switch / power domain).
struct CorrelatedFailureConfig {
  bool enabled = false;
  int group_size = 2;
  Seconds mean_time_between = hours(500);  ///< per group
  Seconds mean_duration = hours(1);
};

/// Bounded retry queue with deterministic exponential backoff. Orphaned
/// streams (victims of crashes/brownouts with no feasible migration
/// target) and rejected arrivals wait here and are re-admitted when
/// capacity returns instead of being permanently lost.
struct RetryConfig {
  bool enabled = false;
  std::size_t max_queue = 64;   ///< entries beyond this are dropped
  int max_attempts = 6;         ///< abandons after this many failures
  Seconds backoff_base = 5.0;   ///< delay doubles per attempt (ldexp-exact)
  Seconds backoff_cap = 300.0;  ///< backoff ceiling
};

/// Domain-scoped correlated outages: whole racks crash and repair together
/// (shared power/switch), per-rack exponential episode process. Requires
/// topology.enabled; the rack membership comes from the Topology tree
/// rather than the ad-hoc consecutive groups of CorrelatedFailureConfig.
struct RackOutageConfig {
  bool enabled = false;
  Seconds mean_time_between = hours(200);  ///< per rack, between episodes
  Seconds mean_duration = minutes(30);
};

/// Domain-scoped brownouts: a whole zone's servers degrade to
/// `capacity_factor` together (shared uplink congestion). Requires
/// topology.enabled.
struct ZoneBrownoutConfig {
  bool enabled = false;
  Seconds mean_time_between = hours(100);  ///< per zone, between episodes
  Seconds mean_duration = minutes(15);
  double capacity_factor = 0.5;  ///< surviving fraction of bandwidth, (0,1)
};

/// Network partitions: a rack's servers stay *up* but become unreachable
/// from the controller (switch/uplink loss). Unlike a crash, the hardware
/// is healthy — but admission, migration, and replication must treat
/// reachability, not liveness, as the gate: no grants land on a
/// partitioned server and no bits cross the partition. On heal the
/// RetryQueue is force-drained so parked streams re-admit immediately.
/// Requires topology.enabled.
struct PartitionConfig {
  bool enabled = false;
  Seconds mean_time_between = hours(100);  ///< per rack, between episodes
  Seconds mean_duration = minutes(5);
};

/// The topology-scoped fault taxonomy (FailureConfig::domains). All three
/// draw on the failure RNG stream *after* every legacy phase (binary,
/// brownout, correlated), each only when enabled — so enabling topology
/// without domain faults, or neither, leaves legacy schedules
/// bit-identical (fault/schedule.h documents the draw-order contract).
struct DomainFaultConfig {
  RackOutageConfig rack_outage;
  ZoneBrownoutConfig zone_brownout;
  PartitionConfig partition;
};

/// Repair replication: a server down longer than `down_threshold` gets the
/// videos it left with zero available holders re-replicated onto healthy
/// servers via the replication/ machinery (bypassing the rejection
/// trigger, respecting caps and storage).
struct RepairConfig {
  bool enabled = false;
  Seconds down_threshold = hours(1);
};

/// Server failure injection (fault-tolerance extension, §3.1 remark).
/// `enabled` gates the whole taxonomy: binary crash/repair is always
/// generated when on; brownouts/correlated/retry/repair are opt-in
/// extensions that draw *after* the binary phase on the failure stream,
/// so legacy crash-only schedules stay bit-identical.
struct FailureConfig {
  bool enabled = false;
  Seconds mean_time_between_failures = hours(200);  ///< per server
  Seconds mean_time_to_repair = hours(2);
  /// Recover the failed server's streams by migrating them to other
  /// replica holders (DRM-based fault tolerance) instead of dropping them.
  bool recover_via_migration = true;
  /// Flap guard: minimum dwell in either state. Draws shorter than this
  /// are stretched to it (0 = off, preserving legacy schedules exactly).
  Seconds min_dwell = 0.0;
  BrownoutConfig brownout;
  CorrelatedFailureConfig correlated;
  DomainFaultConfig domains;
  RetryConfig retry;
  RepairConfig repair;

  /// Resilience-accounting interruption dedupe: a stream that glitches
  /// more than once inside one window of this length counts as *one*
  /// interruption (its starved seconds still all accrue to
  /// glitch_seconds). Without it, a shed-then-readmitted stream whose
  /// retry fires inside the same window double-counts the same
  /// viewer-facing gap (one glitch at shed, another at readmission).
  /// 0 disables dedupe. Engine-mode neutral: the window key lives on the
  /// Request, so exact/fast/sharded runs count identically.
  Seconds glitch_dedupe_window = 1.0;
};

/// Client VCR interactivity (pause/resume — §6 future-work extension).
/// Pauses arrive per viewing client as a Poisson process; each pause lasts
/// an exponential time. While paused, playback stops consuming, the
/// playback deadline shifts right, and transmission keeps filling the
/// staging buffer (a paused client with a *full* buffer absorbs nothing and
/// its minimum-flow share becomes slack). Theorem 1's optimality proof
/// assumes no pauses; the interactivity bench measures how EFTF degrades.
struct InteractivityConfig {
  bool enabled = false;
  double pauses_per_hour = 2.0;        ///< rate per actively viewing client
  Seconds mean_pause_duration = 120.0; ///< exponential mean
};

/// Popularity drift (obliviousness extension, §1/§6).
struct DriftConfig {
  bool enabled = false;
  Seconds period = hours(100);  ///< epoch length
  std::size_t step = 10;        ///< rank rotation per epoch
};

/// Everything one trial needs.
struct SimulationConfig {
  SystemConfig system;
  ClientPolicy client;

  /// Failure-domain tree (cluster/topology.h): server → rack → zone.
  /// Disabled (the default) is the trivial one-rack tree; every
  /// topology-aware feature (failure.domains, domain_spread placement,
  /// rack-aligned shards, per-domain metrics) degrades to its legacy
  /// behavior bit-for-bit.
  TopologyConfig topology;

  PlacementConfig placement;
  AdmissionConfig admission;
  SchedulerKind scheduler = SchedulerKind::kEftf;

  /// IntermittentScheduler only: seconds of staged playback below which a
  /// stream is urgent (fed before any workahead).
  Seconds intermittent_safety_cover = 10.0;
  FailureConfig failure;

  /// Hand-written fault schedule for tests and what-if studies. When
  /// non-empty it is used verbatim (sorted by time) instead of generating
  /// one from `failure` — no failure-RNG draws happen at all. Entries must
  /// name valid servers; `failure.enabled` need not be set. The
  /// degradation/retry/repair machinery still follows `failure.*` knobs.
  std::vector<FaultTransition> scripted_faults;

  DriftConfig drift;
  ReplicationConfig replication;
  InteractivityConfig interactivity;

  /// Zipf skew theta; 1 = uniform, 0 = Zipf, negative = extreme skew.
  double zipf_theta = 0.271;

  /// Offered load as a fraction of aggregate capacity (paper: 1.0).
  double load_factor = 1.0;

  Seconds duration = hours(1000);
  Seconds warmup = hours(20);
  std::uint64_t seed = 1;

  /// Opt-in fluid fast path. When set, each recompute advances all of a
  /// server's streams in one batched loop over the server's FluidLane
  /// (struct-of-arrays, cluster/fluid_lane.h) and meters the transmitted
  /// megabits as one per-batch sum instead of one call per stream.
  /// Per-stream trajectories run the identical single-stream formulas, so
  /// every discrete outcome (admissions, migrations, completions,
  /// underflow counts) matches the default mode exactly; only the metering
  /// summation is regrouped, which moves fluid aggregates (transmitted,
  /// utilization) at ulp scale.
  ///
  /// Dual-exactness contract: the default (exact) mode is pinned
  /// bit-for-bit by the hexfloat determinism goldens; fast mode promises
  /// reproducibility (same config + build ⇒ same bits) plus agreement with
  /// exact mode within the reference-oracle tolerance — check/fuzzer.h
  /// runs every scenario through both modes and diffs them. The
  /// VODSIM_FAST_MATH environment variable (nonzero) forces it on.
  ///
  /// Defaults: single-queue runs (shards == 1) are exact unless this flag
  /// (or the env var) opts in. Sharded runs (shards > 1) default to fast
  /// math — their aggregates already live under the differential tolerance
  /// rather than the hexfloat goldens, so exact mode buys them nothing;
  /// set exact_math to opt back out.
  bool fast_math = false;

  /// Opt sharded runs out of the fast-math default (and rejects a
  /// contradictory fast_math=true via validate()). The VODSIM_EXACT_MATH
  /// environment variable (nonzero) forces it on. At shards == 1 this is a
  /// no-op: single-queue runs are exact by default.
  bool exact_math = false;

  /// Shard count for the parallel sharded engine (DESIGN.md §12). 1 (the
  /// default) runs the classic single-queue engine — that path is pinned
  /// bit-for-bit by the hexfloat determinism goldens. shards > 1 splits
  /// the cluster into contiguous server blocks, each with its own event
  /// queue, Metrics shard, scheduler instance, and scratch arenas; the
  /// coordinator executes every coupling event (arrivals, admission,
  /// migration, replication, faults, retry, pause/resume, playback end)
  /// serially in global time order, and between coupling events the
  /// shards drain their predicted per-stream events (tx-complete,
  /// buffer-full, buffer-low) in parallel under a conservative-lookahead
  /// window. Sharded mode has its own determinism contract: a fixed
  /// shard count is bit-reproducible at any worker-thread count; counts
  /// match single-engine runs exactly and fluid aggregates agree within
  /// the oracle tolerance (enforced by check/fuzzer.h differentially).
  /// Must satisfy 1 <= shards <= system.num_servers.
  int shards = 1;

  /// Worker threads for the sharded drain windows; 0 = hardware
  /// concurrency. Ignored when shards == 1. Any value produces identical
  /// bits for a fixed shard count (each shard drains serially; merges
  /// happen in shard-index order).
  int shard_threads = 0;

  /// Attach the runtime invariant auditor (check/invariant_auditor.h) to
  /// this trial: every executed event is followed by a full physical-state
  /// audit (minimum flow, capacity, buffer bounds, epoch monotonicity) and
  /// the run ends with a bits-conservation reconciliation. Off by default —
  /// the audit pass costs O(active streams) per event. The VODSIM_PARANOID
  /// environment variable (nonzero) forces it on regardless of this flag.
  /// The auditor observes only; results are bit-identical either way.
  bool paranoid = false;

  /// Structured tracing (obs/trace.h): a ring buffer of typed events the
  /// engine, schedulers and admission controller emit. Observe-only and
  /// bit-identical (pinned by determinism_test); the disabled path costs a
  /// null-pointer branch per emission site. The VODSIM_TRACE environment
  /// variable forces it on: a plain number enables all categories, a
  /// comma-separated list ("admission,migration,...") selects some.
  TraceConfig trace;

  /// Periodic cluster probes (obs/probes.h): per-server committed
  /// bandwidth / active streams / staging fill plus queue depth, sampled on
  /// a fixed grid without scheduling simulator events. VODSIM_PROBE=<period
  /// seconds> forces it on. Observe-only, like tracing.
  ProbeConfig probe;

  /// Staging buffer capacity in megabits for this config.
  Megabits staging_capacity() const {
    return client.staging_fraction * system.mean_video_size();
  }

  /// Poisson arrival rate implied by the load factor.
  double arrival_rate() const;

  /// Throws std::invalid_argument on inconsistent parameters.
  void validate() const;
};

/// Per-component RNG seeds derived from a trial's master seed, in the
/// engine's canonical fork order. Factored out of VodSimulation::build_world
/// so the reference oracle (check/reference_oracle.h) can reproduce the
/// exact same streams without duplicating the order-sensitive sequence.
struct SeedPlan {
  std::uint64_t catalog = 0;
  std::uint64_t placement = 0;
  std::uint64_t arrival = 0;
  std::uint64_t decision = 0;
  std::uint64_t failure = 0;
  std::uint64_t interactivity = 0;

  static SeedPlan derive(std::uint64_t master_seed);
};

/// Builds the server vector, applying (normalized) heterogeneity profiles.
std::vector<Server> make_servers(const SystemConfig& system);

/// Normalizes \p profile to mean 1 (used by make_servers; exposed for
/// tests). Throws if any entry is <= 0 or the size mismatches.
std::vector<double> normalize_profile(const std::vector<double>& profile,
                                      std::size_t expected_size);

}  // namespace vodsim
