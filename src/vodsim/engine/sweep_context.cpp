#include "vodsim/engine/sweep_context.h"

#include <cstdio>

#include "vodsim/engine/experiment.h"
#include "vodsim/placement/domain_spread.h"
#include "vodsim/placement/partial_predictive.h"
#include "vodsim/util/rng.h"
#include "vodsim/workload/catalog.h"

namespace vodsim {

namespace {

// Key fragments. Doubles are rendered with "%a" (exact hex-float), so two
// configs share a cache entry only when the inputs are bit-identical —
// collisions across distinct values are impossible by construction.
void append_f(std::string& key, double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a|", value);
  key += buf;
}

void append_u(std::string& key, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu|",
                static_cast<unsigned long long>(value));
  key += buf;
}

void append_profile(std::string& key, const std::vector<double>& profile) {
  append_u(key, profile.size());
  for (double entry : profile) append_f(key, entry);
}

}  // namespace

std::string SweepContext::catalog_key(const SimulationConfig& config) {
  const SeedPlan seeds = SeedPlan::derive(config.seed);
  std::string key;
  append_u(key, config.system.num_videos);
  append_f(key, config.system.video_min_duration);
  append_f(key, config.system.video_max_duration);
  append_f(key, config.system.view_bandwidth);
  append_u(key, seeds.catalog);
  return key;
}

std::string SweepContext::popularity_key(const SimulationConfig& config) {
  // Popularity models hold no RNG and are pure in these fields (drift.h).
  std::string key;
  append_u(key, config.system.num_videos);
  append_f(key, config.zipf_theta);
  append_u(key, config.drift.enabled ? 1 : 0);
  if (config.drift.enabled) {
    append_f(key, config.drift.period);
    append_u(key, config.drift.step);
  }
  return key;
}

std::string SweepContext::placement_key(const SimulationConfig& config) {
  // Placement consumes the catalog, the t=0 popularity law, the (fresh)
  // server vector, the policy + knobs, the copy budget, and its own RNG
  // stream — all of which must appear in the key.
  const SeedPlan seeds = SeedPlan::derive(config.seed);
  std::string key = catalog_key(config);
  key += popularity_key(config);
  append_u(key, static_cast<std::uint64_t>(config.placement.kind));
  if (config.placement.kind == PlacementKind::kPartialPredictive) {
    append_f(key, config.placement.partial_head_fraction);
    append_f(key, config.placement.partial_tail_shift);
  }
  if (config.placement.kind == PlacementKind::kDomainSpread) {
    // The install depends on the failure-domain tree shape.
    append_u(key, config.topology.enabled ? 1 : 0);
    append_u(key, static_cast<std::uint64_t>(config.topology.racks));
    append_u(key, static_cast<std::uint64_t>(config.topology.zones));
  }
  append_f(key, config.system.avg_copies);
  append_u(key, static_cast<std::uint64_t>(config.system.num_servers));
  append_f(key, config.system.server_bandwidth);
  append_f(key, config.system.server_storage);
  append_profile(key, config.system.bandwidth_profile);
  append_profile(key, config.system.storage_profile);
  append_u(key, seeds.placement);
  return key;
}

std::string SweepContext::bounds_key(const SimulationConfig& config) {
  // Bounds are a pure function of the placement inputs (world shape) plus
  // the load factor and the regime gates (analysis/bounds.h). Scheduler
  // and migration policy deliberately do not appear: bounds are
  // policy-independent, which is what lets a whole tournament column share
  // one report.
  std::string key = placement_key(config);
  append_f(key, config.load_factor);
  append_f(key, config.client.staging_fraction);
  append_u(key, config.admission.buffer_aware ? 1 : 0);
  append_u(key, config.failure.retry.enabled ? 1 : 0);
  append_u(key, config.replication.enabled ? 1 : 0);
  append_u(key, config.failure.repair.enabled ? 1 : 0);
  return key;
}

void SweepContext::prepare(const std::vector<SimulationConfig>& configs,
                           int trials, std::uint64_t master_seed) {
  for (const SimulationConfig& base : configs) {
    for (int trial = 0; trial < trials; ++trial) {
      SimulationConfig config = base;
      config.seed = ExperimentRunner::derive_seed(master_seed, trial);
      const SeedPlan seeds = SeedPlan::derive(config.seed);

      auto [cat_it, cat_fresh] = catalogs_.try_emplace(catalog_key(config));
      if (cat_fresh) {
        Rng catalog_rng(seeds.catalog);
        CatalogSpec spec;
        spec.num_videos = config.system.num_videos;
        spec.min_duration = config.system.video_min_duration;
        spec.max_duration = config.system.video_max_duration;
        spec.view_bandwidth = config.system.view_bandwidth;
        cat_it->second =
            std::make_shared<const VideoCatalog>(generate_catalog(spec, catalog_rng));
      }

      auto [pop_it, pop_fresh] = popularity_.try_emplace(popularity_key(config));
      if (pop_fresh) {
        if (config.drift.enabled) {
          pop_it->second = std::make_shared<const DriftingZipfPopularity>(
              config.system.num_videos, config.zipf_theta, config.drift.period,
              config.drift.step);
        } else {
          pop_it->second = std::make_shared<const StaticZipfPopularity>(
              config.system.num_videos, config.zipf_theta);
        }
      }

      auto [place_it, place_fresh] =
          placements_.try_emplace(placement_key(config));
      if (place_fresh) {
        // Run the placement exactly as VodSimulation::build_world would —
        // same policy construction, same RNG stream, same fresh servers —
        // and record the install order for bit-exact replay.
        std::unique_ptr<PlacementPolicy> placement;
        if (config.placement.kind == PlacementKind::kPartialPredictive) {
          placement = std::make_unique<PartialPredictivePlacement>(
              config.placement.partial_head_fraction,
              config.placement.partial_tail_shift);
        } else if (config.placement.kind == PlacementKind::kDomainSpread) {
          placement = std::make_unique<DomainSpreadPlacement>(
              Topology(config.topology, config.system.num_servers));
        } else {
          placement = make_placement(config.placement.kind);
        }
        Rng placement_rng(seeds.placement);
        std::vector<Server> servers = make_servers(config.system);
        auto blueprint = std::make_shared<PlacementBlueprint>();
        blueprint->result = placement->place(
            *cat_it->second, pop_it->second->probabilities(0.0),
            config.system.avg_copies, servers, placement_rng);
        blueprint->server_replicas.reserve(servers.size());
        for (const Server& server : servers) {
          blueprint->server_replicas.push_back(server.replicas());
        }
        place_it->second = std::move(blueprint);
      }

      auto [bounds_it, bounds_fresh] = bounds_.try_emplace(bounds_key(config));
      if (bounds_fresh) {
        // Reconstruct the placed world from the blueprint (the placement
        // may have been cached by an earlier config, so the scratch servers
        // from the fresh branch are not necessarily in scope) and compute
        // the placement-aware bounds exactly as build_world would.
        std::vector<Server> bound_servers = make_servers(config.system);
        const PlacementBlueprint& blueprint = *place_it->second;
        for (std::size_t s = 0; s < bound_servers.size(); ++s) {
          for (VideoId video : blueprint.server_replicas[s]) {
            bound_servers[s].add_replica((*cat_it->second)[video]);
          }
        }
        const ReplicaDirectory directory(cat_it->second->size(), bound_servers);
        bounds_it->second = std::make_shared<const BoundsReport>(
            compute_bounds(config, *cat_it->second,
                           pop_it->second->probabilities(0.0), directory,
                           bound_servers));
      }
    }
  }
}

std::shared_ptr<const VideoCatalog> SweepContext::find_catalog(
    const SimulationConfig& config) const {
  auto it = catalogs_.find(catalog_key(config));
  return it == catalogs_.end() ? nullptr : it->second;
}

std::shared_ptr<const PopularityModel> SweepContext::find_popularity(
    const SimulationConfig& config) const {
  auto it = popularity_.find(popularity_key(config));
  return it == popularity_.end() ? nullptr : it->second;
}

std::shared_ptr<const PlacementBlueprint> SweepContext::find_placement(
    const SimulationConfig& config) const {
  auto it = placements_.find(placement_key(config));
  return it == placements_.end() ? nullptr : it->second;
}

std::shared_ptr<const BoundsReport> SweepContext::find_bounds(
    const SimulationConfig& config) const {
  auto it = bounds_.find(bounds_key(config));
  return it == bounds_.end() ? nullptr : it->second;
}

}  // namespace vodsim
