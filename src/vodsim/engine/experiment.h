#pragma once

/// \file experiment.h
/// \brief Multi-trial experiment runner.
///
/// Paper methodology (§4.1): every data point is the average of several
/// independent trials. The runner derives trial seeds from a master seed so
/// that trial k sees the *same* arrival stream under every configuration in
/// a sweep (paired comparison — variance reduction for policy contrasts),
/// and fans trials out across a thread pool.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "vodsim/engine/config.h"
#include "vodsim/engine/vod_simulation.h"
#include "vodsim/stats/accumulator.h"
#include "vodsim/util/thread_pool.h"

namespace vodsim {

/// Scalar outcomes of one trial.
struct TrialResult {
  double utilization = 0.0;
  double rejection_ratio = 0.0;
  double migrations_per_arrival = 0.0;

  // Measured-vs-bound gap block (analysis/bounds.h): the achievability
  // envelope of the trial's world and the measured distance from it.
  double bound_utilization = 1.0;  ///< utilization no policy can exceed
  double bound_rejection = 0.0;    ///< rejection ratio no policy can beat
  double utilization_gap = 0.0;    ///< bound_utilization - utilization
  double rejection_gap = 0.0;      ///< rejection_ratio - bound_rejection

  std::uint64_t arrivals = 0;
  std::uint64_t accepts = 0;
  std::uint64_t rejects = 0;
  std::uint64_t migration_steps = 0;
  std::uint64_t drops = 0;
  std::uint64_t underflow_events = 0;
  std::uint64_t continuity_violations = 0;

  // Resilience block (all zero / 1.0 in fault-free runs).
  double availability = 1.0;
  Seconds glitch_seconds = 0.0;
  std::uint64_t interruptions = 0;
  std::uint64_t server_downs = 0;
  std::uint64_t sheds = 0;
  std::uint64_t sheds_migrated = 0;
  std::uint64_t retry_enqueued = 0;
  std::uint64_t readmissions = 0;
  std::uint64_t retry_abandoned = 0;
  std::uint64_t repairs = 0;
  double mean_recovery_time = 0.0;  ///< mean seconds down per episode

  // Failure-domain block (empty / zero unless config.topology.enabled).
  // Per-domain vectors are indexed by rack/zone id; availability is the
  // bandwidth-weighted fraction of the window the domain's servers were
  // serviceable, glitch seconds are attributed to the victim's domain.
  std::uint64_t partitions = 0;       ///< partition episodes begun
  std::uint64_t partition_heals = 0;  ///< partition episodes healed
  double mean_partition_time = 0.0;   ///< mean seconds per healed episode
  std::vector<double> rack_availability;
  std::vector<double> zone_availability;
  std::vector<double> rack_glitch_seconds;
  std::vector<double> zone_glitch_seconds;

  // Sharded-engine block (DESIGN.md §12; shard_events is 0 when shards=1).
  // coordinator / (coordinator + shard) is the run's measured serial
  // fraction — the Amdahl ceiling for parallel speedup on this workload.
  std::uint64_t coordinator_events = 0;  ///< events on the coordinator queue
  std::uint64_t shard_events = 0;        ///< events drained by all shards

  static TrialResult from(const VodSimulation& simulation);
};

/// Aggregation of the trials behind one data point.
struct ExperimentPoint {
  Accumulator utilization;
  Accumulator rejection_ratio;
  Accumulator migrations_per_arrival;
  Accumulator drops;
  Accumulator utilization_gap;  ///< headroom to the achievable bound
  Accumulator rejection_gap;    ///< excess over the rejection lower bound
  std::vector<TrialResult> trials;

  void add(const TrialResult& trial);
};

/// Writes one CSV row per (point, trial) with the measured scalars AND the
/// bound/gap columns, so every sweep artifact reports its distance from
/// theory. \p labels names each point (same length as \p points); header
/// included. Columns: label, trial, utilization, bound_utilization,
/// utilization_gap, rejection_ratio, bound_rejection, rejection_gap,
/// migrations_per_arrival, arrivals, accepts, rejects, drops,
/// underflow_events, availability, glitch_seconds.
void write_sweep_csv(std::ostream& out, const std::vector<std::string>& labels,
                     const std::vector<ExperimentPoint>& points);

class ExperimentRunner {
 public:
  /// \param threads worker threads (0 = hardware concurrency).
  explicit ExperimentRunner(std::size_t threads = 0);

  /// Runs \p trials independent trials of \p config and aggregates them.
  /// Trial k uses seed derive_seed(master_seed, k) regardless of config, so
  /// points produced with the same master seed are paired.
  ExperimentPoint run_point(const SimulationConfig& config, int trials,
                            std::uint64_t master_seed = 42);

  /// Runs every config x trial combination across the pool.
  std::vector<ExperimentPoint> run_sweep(const std::vector<SimulationConfig>& configs,
                                         int trials, std::uint64_t master_seed = 42);

  /// Deterministic per-trial seed derivation (exposed for tests).
  static std::uint64_t derive_seed(std::uint64_t master_seed, int trial);

 private:
  ThreadPool pool_;
};

}  // namespace vodsim
