#pragma once

/// \file experiment.h
/// \brief Multi-trial experiment runner.
///
/// Paper methodology (§4.1): every data point is the average of several
/// independent trials. The runner derives trial seeds from a master seed so
/// that trial k sees the *same* arrival stream under every configuration in
/// a sweep (paired comparison — variance reduction for policy contrasts),
/// and fans trials out across a thread pool.

#include <cstdint>
#include <vector>

#include "vodsim/engine/config.h"
#include "vodsim/engine/vod_simulation.h"
#include "vodsim/stats/accumulator.h"
#include "vodsim/util/thread_pool.h"

namespace vodsim {

/// Scalar outcomes of one trial.
struct TrialResult {
  double utilization = 0.0;
  double rejection_ratio = 0.0;
  double migrations_per_arrival = 0.0;
  std::uint64_t arrivals = 0;
  std::uint64_t accepts = 0;
  std::uint64_t rejects = 0;
  std::uint64_t migration_steps = 0;
  std::uint64_t drops = 0;
  std::uint64_t underflow_events = 0;
  std::uint64_t continuity_violations = 0;

  // Resilience block (all zero / 1.0 in fault-free runs).
  double availability = 1.0;
  Seconds glitch_seconds = 0.0;
  std::uint64_t interruptions = 0;
  std::uint64_t server_downs = 0;
  std::uint64_t sheds = 0;
  std::uint64_t sheds_migrated = 0;
  std::uint64_t retry_enqueued = 0;
  std::uint64_t readmissions = 0;
  std::uint64_t retry_abandoned = 0;
  std::uint64_t repairs = 0;
  double mean_recovery_time = 0.0;  ///< mean seconds down per episode

  static TrialResult from(const VodSimulation& simulation);
};

/// Aggregation of the trials behind one data point.
struct ExperimentPoint {
  Accumulator utilization;
  Accumulator rejection_ratio;
  Accumulator migrations_per_arrival;
  Accumulator drops;
  std::vector<TrialResult> trials;

  void add(const TrialResult& trial);
};

class ExperimentRunner {
 public:
  /// \param threads worker threads (0 = hardware concurrency).
  explicit ExperimentRunner(std::size_t threads = 0);

  /// Runs \p trials independent trials of \p config and aggregates them.
  /// Trial k uses seed derive_seed(master_seed, k) regardless of config, so
  /// points produced with the same master seed are paired.
  ExperimentPoint run_point(const SimulationConfig& config, int trials,
                            std::uint64_t master_seed = 42);

  /// Runs every config x trial combination across the pool.
  std::vector<ExperimentPoint> run_sweep(const std::vector<SimulationConfig>& configs,
                                         int trials, std::uint64_t master_seed = 42);

  /// Deterministic per-trial seed derivation (exposed for tests).
  static std::uint64_t derive_seed(std::uint64_t master_seed, int trial);

 private:
  ThreadPool pool_;
};

}  // namespace vodsim
