#pragma once

/// \file sweep_context.h
/// \brief Shared immutable world-construction state for experiment sweeps.
///
/// A sweep runs (configs x trials) independent VodSimulation cells, and most
/// of them rebuild identical static worlds: the catalog depends only on a
/// handful of system fields plus the trial's catalog seed, the popularity
/// model is a pure function of (n, theta, drift), and the placement is a
/// deterministic function of (system, placement policy, catalog, seed).
/// Rebuilding these per cell is pure waste — the Zipf CDF alone is O(n) of
/// pow() calls, and placement re-sorts the catalog per cell.
///
/// SweepContext memoizes all three behind value-derived keys. `prepare` runs
/// *serially* before the pool fans out and constructs one instance per
/// distinct key; during the run, lookups are const, lock-free, and
/// shared_ptr-copy cheap. A VodSimulation handed a context adopts the shared
/// objects instead of building its own.
///
/// Bit-exactness contract: a trial run with a context is bit-identical to
/// one without. This holds because
///   - keys capture *every* input of the memoized computation (numeric
///     fields are stringified with "%a" so distinct doubles never collide);
///   - catalogs/popularity models are immutable after construction and hold
///     no RNG state, so sharing them across threads is safe;
///   - placement mutates servers, so it cannot be shared directly. Instead
///     `prepare` runs the placement once on a scratch server vector and
///     records a PlacementBlueprint: the PlacementResult plus each server's
///     replica list *in install order*. Replay calls Server::add_replica in
///     that recorded order, so per-server free-storage accounting performs
///     the identical FP subtraction sequence as the original run.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "vodsim/analysis/bounds.h"
#include "vodsim/cluster/video.h"
#include "vodsim/engine/config.h"
#include "vodsim/placement/placement.h"
#include "vodsim/workload/drift.h"

namespace vodsim {

/// A placement decision, replayable onto a fresh server vector.
struct PlacementBlueprint {
  PlacementResult result;
  /// server_replicas[s] = the VideoIds installed on server s, in the order
  /// PlacementPolicy::place called add_replica for them.
  std::vector<std::vector<VideoId>> server_replicas;
};

class SweepContext {
 public:
  SweepContext() = default;
  SweepContext(const SweepContext&) = delete;
  SweepContext& operator=(const SweepContext&) = delete;

  /// Builds every catalog / popularity model / placement blueprint the
  /// sweep will need. Call once, from one thread, before running trials.
  /// Trial k of any config uses seed derive(master_seed, k) — the same
  /// derivation ExperimentRunner applies — so lookups during the run hit.
  void prepare(const std::vector<SimulationConfig>& configs, int trials,
               std::uint64_t master_seed);

  /// Lookups keyed by the fully-derived per-trial config (config.seed must
  /// already be the trial seed). Return nullptr on a miss — the caller
  /// falls back to local construction, so a miss is slow, never wrong.
  std::shared_ptr<const VideoCatalog> find_catalog(
      const SimulationConfig& config) const;
  std::shared_ptr<const PopularityModel> find_popularity(
      const SimulationConfig& config) const;
  std::shared_ptr<const PlacementBlueprint> find_placement(
      const SimulationConfig& config) const;

  /// Achievability bounds for the cell's world (analysis/bounds.h) — a pure
  /// function of the placement inputs plus load factor and the regime
  /// gates, so cells differing only in scheduler/migration policy share one
  /// report. Materializing the popularity vector is O(catalog), which is
  /// exactly the per-cell cost this cache exists to kill.
  std::shared_ptr<const BoundsReport> find_bounds(
      const SimulationConfig& config) const;

  // Cache sizes, for tests and sweep diagnostics.
  std::size_t catalog_count() const { return catalogs_.size(); }
  std::size_t popularity_count() const { return popularity_.size(); }
  std::size_t placement_count() const { return placements_.size(); }
  std::size_t bounds_count() const { return bounds_.size(); }

 private:
  static std::string catalog_key(const SimulationConfig& config);
  static std::string popularity_key(const SimulationConfig& config);
  static std::string placement_key(const SimulationConfig& config);
  static std::string bounds_key(const SimulationConfig& config);

  std::unordered_map<std::string, std::shared_ptr<const VideoCatalog>> catalogs_;
  std::unordered_map<std::string, std::shared_ptr<const PopularityModel>>
      popularity_;
  std::unordered_map<std::string, std::shared_ptr<const PlacementBlueprint>>
      placements_;
  std::unordered_map<std::string, std::shared_ptr<const BoundsReport>> bounds_;
};

}  // namespace vodsim
