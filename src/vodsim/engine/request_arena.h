#pragma once

/// \file request_arena.h
/// \brief Sharded stable-address storage for Request objects.
///
/// PR 8 sharded the event queues, metrics, scheduler replicas and scratch
/// arenas, but every Request still lived in one StableVector: shard workers
/// mutating their own streams' predicted-event handles and fluid scalars
/// were writing into 256-element chunks interleaved across shards — one
/// shared cache line per ~4 requests of false sharing. The arena fixes
/// that by giving each shard its own StableVector pool (plus pool 0 for
/// coordinator-owned requests: rejected arrivals, and everything in
/// single-queue mode), while keeping the two contracts the engine relies
/// on:
///
///   - **Stable addresses.** Events capture `Request&`; a request never
///     moves after creation. StableVector guarantees this per pool, and a
///     request never changes pools — a stream migrated across shards stays
///     in its birth pool (migration is a coordinator-side event; the
///     rare cross-shard migrant costs the old sharing pattern, the common
///     shard-local stream costs nothing).
///   - **Dense id lookup and id-order iteration.** Request ids are handed
///     out sequentially at creation, so a flat pointer index maps id →
///     request in O(1) (the retry queue re-admits by id) and iteration in
///     id order matches the single-arena StableVector's creation order —
///     the auditor's and tests' traversal order is unchanged.
///
/// All creation happens on the coordinator (arrivals and retry
/// re-admissions are serial events), so the pools need no synchronization;
/// shard workers only dereference pointers to requests they own.

#include <cassert>
#include <cstddef>
#include <memory>
#include <vector>

#include "vodsim/cluster/request.h"
#include "vodsim/util/stable_vector.h"

namespace vodsim {

class RequestArena {
 public:
  RequestArena() { reset(1); }

  /// Drops every request and reconfigures the pool count (build_world:
  /// one pool per shard plus the coordinator pool; exactly one pool in
  /// single-queue mode, which makes the arena byte-for-byte the old single
  /// StableVector layout). Pools are held by unique_ptr — StableVector is
  /// pinned-address and therefore immovable.
  void reset(std::size_t pools) {
    pools_.clear();
    if (pools == 0) pools = 1;
    pools_.reserve(pools);
    for (std::size_t i = 0; i < pools; ++i) {
      pools_.push_back(std::make_unique<StableVector<Request>>());
    }
    by_id_.clear();
  }

  std::size_t pool_count() const { return pools_.size(); }

  /// Creates a request in \p pool. The caller allocates ids sequentially
  /// (asserted), which keeps the id → pointer index dense.
  template <typename... Args>
  Request& create(std::size_t pool, Args&&... args) {
    assert(pool < pools_.size());
    Request& request = pools_[pool]->emplace_back(std::forward<Args>(args)...);
    assert(request.id() == static_cast<RequestId>(by_id_.size()) &&
           "request ids must be allocated sequentially");
    by_id_.push_back(&request);
    return request;
  }

  std::size_t size() const { return by_id_.size(); }
  bool empty() const { return by_id_.empty(); }

  Request& operator[](std::size_t id) {
    assert(id < by_id_.size());
    return *by_id_[id];
  }
  const Request& operator[](std::size_t id) const {
    assert(id < by_id_.size());
    return *by_id_[id];
  }

  /// Id-order (== creation-order) iteration, same order the single arena
  /// produced. Dereferences to Request&, so existing range-for call sites
  /// (auditor, tests) compile unchanged.
  class const_iterator {
   public:
    explicit const_iterator(const Request* const* slot) : slot_(slot) {}
    const Request& operator*() const { return **slot_; }
    const Request* operator->() const { return *slot_; }
    const_iterator& operator++() {
      ++slot_;
      return *this;
    }
    bool operator==(const const_iterator& other) const {
      return slot_ == other.slot_;
    }
    bool operator!=(const const_iterator& other) const {
      return slot_ != other.slot_;
    }

   private:
    const Request* const* slot_;
  };

  const_iterator begin() const { return const_iterator(by_id_.data()); }
  const_iterator end() const {
    return const_iterator(by_id_.data() + by_id_.size());
  }

 private:
  std::vector<std::unique_ptr<StableVector<Request>>> pools_;
  std::vector<Request*> by_id_;
};

}  // namespace vodsim
