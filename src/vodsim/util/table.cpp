#include "vodsim/util/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace vodsim {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  aligns_.assign(headers_.size(), Align::kRight);
  if (!aligns_.empty()) aligns_[0] = Align::kLeft;
}

void TablePrinter::set_align(std::size_t column, Align align) {
  assert(column < aligns_.size());
  aligns_[column] = align;
}

void TablePrinter::add_row(std::vector<std::string> row) {
  assert(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = widths[c] - row[c].size();
      out << ' ';
      if (aligns_[c] == Align::kRight) out << std::string(pad, ' ');
      out << row[c];
      if (aligns_[c] == Align::kLeft) out << std::string(pad, ' ');
      out << " |";
    }
    out << '\n';
  };

  print_row(headers_);
  out << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace vodsim
