#pragma once

/// \file stable_vector.h
/// \brief Append-only container with stable element addresses.
///
/// The engine hands out `Request&` references that are captured by pending
/// event callbacks, so request storage must never relocate. std::deque
/// satisfies that but allocates a node every ~512 bytes — with a ~176-byte
/// Request that is one heap allocation per couple of arrivals, i.e. a
/// steady-state allocation in the event loop. StableVector keeps the
/// stable-address guarantee while allocating in large fixed chunks, making
/// appends allocation-free outside chunk boundaries.
///
/// Append-only on purpose: erasing would invalidate the "audit surface"
/// indices and is not something the engine ever needs.

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace vodsim {

template <typename T, std::size_t ChunkSize = 256>
class StableVector {
  static_assert(ChunkSize > 0);

 public:
  StableVector() = default;
  StableVector(const StableVector&) = delete;
  StableVector& operator=(const StableVector&) = delete;

  ~StableVector() { clear(); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == chunks_.size() * ChunkSize) {
      chunks_.push_back(std::make_unique<Chunk>());
    }
    T* slot = element_ptr(size_);
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  T& operator[](std::size_t index) { return *element_ptr(index); }
  const T& operator[](std::size_t index) const { return *element_ptr(index); }

  T& back() { return *element_ptr(size_ - 1); }
  const T& back() const { return *element_ptr(size_ - 1); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    for (std::size_t i = size_; i > 0; --i) element_ptr(i - 1)->~T();
    size_ = 0;
    chunks_.clear();
  }

  /// Forward iteration, const and mutable (enough for range-for audits).
  template <bool Const>
  class Iterator {
   public:
    using Container = std::conditional_t<Const, const StableVector, StableVector>;
    using value_type = T;
    using reference = std::conditional_t<Const, const T&, T&>;
    using pointer = std::conditional_t<Const, const T*, T*>;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    Iterator() = default;
    Iterator(Container* container, std::size_t index)
        : container_(container), index_(index) {}

    reference operator*() const { return (*container_)[index_]; }
    pointer operator->() const { return &(*container_)[index_]; }
    Iterator& operator++() {
      ++index_;
      return *this;
    }
    Iterator operator++(int) {
      Iterator copy = *this;
      ++index_;
      return copy;
    }
    bool operator==(const Iterator& other) const { return index_ == other.index_; }
    bool operator!=(const Iterator& other) const { return index_ != other.index_; }

   private:
    Container* container_ = nullptr;
    std::size_t index_ = 0;
  };

  using iterator = Iterator<false>;
  using const_iterator = Iterator<true>;

  iterator begin() { return {this, 0}; }
  iterator end() { return {this, size_}; }
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size_}; }

 private:
  struct Chunk {
    alignas(T) std::byte storage[ChunkSize * sizeof(T)];
  };

  T* element_ptr(std::size_t index) const {
    Chunk& chunk = *chunks_[index / ChunkSize];
    return std::launder(
        reinterpret_cast<T*>(chunk.storage + (index % ChunkSize) * sizeof(T)));
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::size_t size_ = 0;
};

}  // namespace vodsim
