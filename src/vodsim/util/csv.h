#pragma once

/// \file csv.h
/// \brief Small CSV writer/reader used for traces and bench output.
///
/// The format is deliberately simple: comma separator, quoting with `"` only
/// when a field contains a comma, quote or newline; embedded quotes are
/// doubled (RFC 4180 subset). Numeric fields round-trip at full double
/// precision.

#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace vodsim {

/// Streams rows of string/numeric fields as CSV to any std::ostream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Writes one row; fields are escaped as needed.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with enough digits to round-trip.
  /// Non-finite values are normalized to "inf" / "-inf" / "nan" regardless
  /// of the platform's printf spelling (pandas and spreadsheets read those).
  static std::string field(double value);
  static std::string field(std::uint64_t value);
  static std::string field(std::int64_t value);

 private:
  std::ostream& out_;
};

/// Parses one CSV line into fields (inverse of CsvWriter::write_row).
/// Returns false on malformed quoting: an unterminated quote, a quote
/// opening mid-field (`ab"c`), or text after a closing quote (`"ab"c`).
/// A field whose quotes close before the line ends cannot contain an
/// embedded newline — use read_csv_record for that.
bool parse_csv_line(const std::string& line, std::vector<std::string>& fields);

/// Reads one CSV *record* from \p in — possibly spanning several physical
/// lines when a quoted field embeds newlines — into fields. Returns false
/// at end of input or on malformed quoting (including EOF inside a quoted
/// field). Together with CsvWriter this round-trips any string, embedded
/// commas/quotes/newlines included.
bool read_csv_record(std::istream& in, std::vector<std::string>& fields);

}  // namespace vodsim
