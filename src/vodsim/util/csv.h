#pragma once

/// \file csv.h
/// \brief Small CSV writer/reader used for traces and bench output.
///
/// The format is deliberately simple: comma separator, quoting with `"` only
/// when a field contains a comma, quote or newline; embedded quotes are
/// doubled (RFC 4180 subset). Numeric fields round-trip at full double
/// precision.

#include <ostream>
#include <string>
#include <vector>

namespace vodsim {

/// Streams rows of string/numeric fields as CSV to any std::ostream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Writes one row; fields are escaped as needed.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with enough digits to round-trip.
  static std::string field(double value);
  static std::string field(std::uint64_t value);
  static std::string field(std::int64_t value);

 private:
  std::ostream& out_;
};

/// Parses one CSV line into fields (inverse of CsvWriter::write_row).
/// Returns false on malformed quoting.
bool parse_csv_line(const std::string& line, std::vector<std::string>& fields);

}  // namespace vodsim
