#pragma once

/// \file env.h
/// \brief Environment-variable helpers for bench scaling.
///
/// Figure/table benches default to a reduced grid sized for CI; setting
/// REPRO_FULL=1 restores paper-scale runs (5 trials x 1000 simulated hours).
/// REPRO_TRIALS and REPRO_HOURS override the individual knobs.

#include <cstdint>
#include <string>

namespace vodsim {

/// Returns the env var's value or \p fallback if unset/empty.
std::string env_string(const char* name, const std::string& fallback);

/// Returns the env var parsed as long, or \p fallback on unset/parse error.
long env_long(const char* name, long fallback);

/// Returns the env var parsed as double, or \p fallback.
double env_double(const char* name, double fallback);

/// True when REPRO_FULL is set to a non-zero/"true" value.
bool repro_full();

/// Bench-scale parameters derived from the environment.
struct BenchScale {
  int trials;          ///< trials per data point
  double sim_hours;    ///< simulated hours per trial
  double warmup_hours; ///< discarded prefix per trial
};

/// Returns the paper-scale (REPRO_FULL=1) or reduced-scale defaults, with
/// REPRO_TRIALS / REPRO_HOURS / REPRO_WARMUP_HOURS overrides applied.
BenchScale bench_scale();

}  // namespace vodsim
