#include "vodsim/util/rng.h"

#include <cassert>
#include <cmath>

namespace vodsim {

std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64_next(sm);
  // A theoretically possible all-zero state would make the generator stick
  // at zero forever; splitmix64 cannot emit four zero words in a row from
  // any seed, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  assert(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  // uniform() can return exactly 0; 1 - uniform() is in (0, 1].
  return -std::log(1.0 - uniform()) / rate;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point slop: fall through to last
}

std::uint64_t Rng::fork_seed() {
  // Mix two outputs through splitmix64 so child streams do not share the
  // parent's linear structure.
  std::uint64_t s = next_u64() ^ 0xd1b54a32d192ed03ULL;
  (void)splitmix64_next(s);
  return splitmix64_next(s);
}

}  // namespace vodsim
