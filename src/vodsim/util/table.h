#pragma once

/// \file table.h
/// \brief ASCII table printer for bench/example output.
///
/// Every figure/table bench prints its series through this so the output is
/// uniform and easy to diff against EXPERIMENTS.md.

#include <ostream>
#include <string>
#include <vector>

namespace vodsim {

/// Column alignment for TablePrinter.
enum class Align { kLeft, kRight };

/// Collects rows and prints a box-drawn ASCII table with padded columns.
class TablePrinter {
 public:
  /// \param headers column titles; column count is fixed by this.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Sets alignment for one column (default: left for col 0, right others).
  void set_align(std::size_t column, Align align);

  /// Appends one row; must have exactly as many fields as headers.
  void add_row(std::vector<std::string> row);

  /// Convenience numeric formatting helpers.
  static std::string num(double value, int precision = 4);
  static std::string pct(double fraction, int precision = 1);

  /// Writes the table. A separator line is drawn under the header.
  void print(std::ostream& out) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vodsim
