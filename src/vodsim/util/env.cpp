#include "vodsim/util/env.h"

#include <cstdlib>
#include <cstring>

namespace vodsim {

std::string env_string(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return value;
}

long env_long(const char* name, long fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0') return fallback;
  return parsed;
}

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0') return fallback;
  return parsed;
}

bool repro_full() {
  const std::string v = env_string("REPRO_FULL", "0");
  return v != "0" && v != "false" && v != "FALSE" && v != "no";
}

BenchScale bench_scale() {
  BenchScale scale{};
  if (repro_full()) {
    scale.trials = 5;
    scale.sim_hours = 1000.0;
    scale.warmup_hours = 20.0;
  } else {
    scale.trials = 3;
    scale.sim_hours = 60.0;
    scale.warmup_hours = 5.0;
  }
  scale.trials = static_cast<int>(env_long("REPRO_TRIALS", scale.trials));
  scale.sim_hours = env_double("REPRO_HOURS", scale.sim_hours);
  scale.warmup_hours = env_double("REPRO_WARMUP_HOURS", scale.warmup_hours);
  return scale;
}

}  // namespace vodsim
