#pragma once

/// \file rng.h
/// \brief Deterministic pseudo-random number generation.
///
/// vodsim uses xoshiro256++ seeded through splitmix64. Every simulation
/// trial owns its own generator, so trials are reproducible from a single
/// 64-bit seed and independent trials can run on different threads without
/// synchronization.

#include <array>
#include <cstdint>
#include <vector>

namespace vodsim {

/// Advances a splitmix64 state and returns the next output.
///
/// Used to expand a single 64-bit seed into the 256-bit xoshiro state and to
/// derive independent per-trial seeds from an experiment master seed.
std::uint64_t splitmix64_next(std::uint64_t& state);

/// xoshiro256++ generator (Blackman & Vigna). Fast, 256-bit state, passes
/// BigCrush; more than adequate for discrete-event simulation.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from \p seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit output.
  std::uint64_t next_u64();

  /// UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Exponentially distributed variate with the given rate (mean 1/rate).
  /// Requires rate > 0.
  double exponential(double rate);

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to weights[i]. O(n); for hot paths use workload::DiscreteSampler.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of [first, last) index range applied to \p items.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Derives a child seed; child streams are statistically independent of
  /// the parent stream and of each other.
  std::uint64_t fork_seed();

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace vodsim
