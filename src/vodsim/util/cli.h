#pragma once

/// \file cli.h
/// \brief Tiny command-line flag parser for examples and benches.
///
/// Supports `--name value`, `--name=value` and boolean `--name`. Unknown
/// flags are an error so typos surface immediately. Not a general-purpose
/// argv library — just enough for the example binaries.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace vodsim {

/// Declarative flag set; define flags, then parse argv.
class CliParser {
 public:
  /// \param program_name used in the usage message.
  /// \param description one-line summary printed by `--help`.
  CliParser(std::string program_name, std::string description);

  /// Registers a flag with a default value and help text.
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Registers a boolean flag (default false).
  void add_bool_flag(const std::string& name, const std::string& help);

  /// Parses argv. Returns false (after printing usage) on `--help` or on a
  /// malformed/unknown flag; callers should then exit.
  bool parse(int argc, const char* const* argv);

  /// Accessors; flag must have been registered.
  std::string get_string(const std::string& name) const;
  long get_long(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Prints the usage/help text.
  void print_usage(std::ostream& out) const;

  /// Error text from the last failed parse() (empty on `--help`).
  const std::string& error() const { return error_; }

 private:
  struct Flag {
    std::string default_value;
    std::string help;
    bool is_bool = false;
  };

  std::string program_name_;
  std::string description_;
  std::vector<std::string> order_;
  std::map<std::string, Flag> flags_;
  std::map<std::string, std::string> values_;
  std::string error_;
};

}  // namespace vodsim
