#pragma once

/// \file thread_pool.h
/// \brief Fixed-size thread pool for running independent simulation trials.
///
/// Experiments fan out (trial, data-point) pairs across a pool; each trial
/// owns its RNG and simulator, so there is no shared mutable state beyond
/// the result slots the caller provides. On a single-core host the pool
/// degrades gracefully to near-serial execution.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vodsim {

class ThreadPool {
 public:
  /// Spawns \p num_threads workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its completion/exception.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, count) across the pool and blocks until all
  /// complete. Rethrows the first task exception encountered.
  ///
  /// Safe to call from inside a pool task (e.g. a sweep trial that runs a
  /// sharded simulation, which fans its shard drains out through a pool):
  /// a nested call detects that it is executing on a pool worker and runs
  /// caller-only — no helper tasks are submitted, the calling strand
  /// drains every index itself. Submitting helpers from a worker can
  /// deadlock a fixed-size pool: when every worker blocks joining helper
  /// tasks that sit behind the very tasks occupying the workers, nobody
  /// ever frees up to run them. Semantics (index coverage, exception
  /// policy) are identical either way; only the parallelism degrades.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// True when the calling thread is one of this process's pool workers
  /// (any pool — the flag is per-thread, not per-pool). Exposed so callers
  /// that would *rather* restructure than serialize can fail loudly.
  static bool on_pool_worker();

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace vodsim
