#include "vodsim/util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace vodsim {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

void log_message(LogLevel level, const std::string& message) {
  if (!log_enabled(level)) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[vodsim %-5s] %s\n", level_name(level), message.c_str());
}

}  // namespace vodsim
