#include "vodsim/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <limits>

namespace vodsim {

namespace {
// Set for the lifetime of every worker thread (workers die with their
// pool, so no unwinding needed). parallel_for consults it to decide
// whether submitting helper drains is safe — see the header comment.
thread_local bool t_on_pool_worker = false;
}  // namespace

bool ThreadPool::on_pool_worker() { return t_on_pool_worker; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;

  // One shared atomic cursor instead of one queue node + packaged_task +
  // future per index: each strand grabs a chunk of indices per fetch_add
  // and runs them locally, so queue/mutex traffic is O(strands), not
  // O(count). Chunks keep the cursor cold for large counts while staying
  // small enough (>= 8 grabs per strand) that uneven task durations still
  // load-balance.
  // Nested call from a pool worker: run caller-only (strands == 1, no
  // helper submissions). See the header for the deadlock this prevents.
  const std::size_t strands =
      t_on_pool_worker ? 1 : std::min(workers_.size() + 1, count);
  const std::size_t chunk = std::max<std::size_t>(1, count / (8 * strands));
  std::atomic<std::size_t> next{0};

  // Exception policy (pinned by thread_pool_test): every index runs even
  // when some throw, and the exception from the *lowest* failing index is
  // rethrown — a deterministic choice, unlike completion order.
  std::mutex error_mutex;
  std::size_t first_error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr first_error;

  auto drain = [&] {
    for (;;) {
      const std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) return;
      const std::size_t end = std::min(count, begin + chunk);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (i < first_error_index) {
            first_error_index = i;
            first_error = std::current_exception();
          }
        }
      }
    }
  };

  // The calling thread participates: on a single-core host (or a pool busy
  // with other submissions) the loop still makes progress, and a
  // parallel_for issued from inside a pool task cannot deadlock waiting for
  // workers it is itself occupying.
  std::vector<std::future<void>> helpers;
  helpers.reserve(strands - 1);
  for (std::size_t s = 1; s < strands; ++s) helpers.push_back(submit(drain));
  drain();
  // Helper futures cannot throw (drain catches); get() is pure completion
  // sync, so no strand outlives `fn` or the error slots.
  for (auto& helper : helpers) helper.get();
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  t_on_pool_worker = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace vodsim
