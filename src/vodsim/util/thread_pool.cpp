#include "vodsim/util/thread_pool.h"

#include <algorithm>

namespace vodsim {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  // get() rethrows; let the first exception propagate after all tasks have
  // been waited on so no task outlives `fn`.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace vodsim
