#pragma once

/// \file units.h
/// \brief Scalar unit conventions used throughout vodsim.
///
/// The simulator uses a small, consistent set of scalar units rather than a
/// heavyweight dimensional-analysis library:
///   - time:      seconds (double)
///   - bandwidth: megabits per second, Mb/s (double)
///   - data:      megabits, Mb (double)
///
/// Megabits are decimal (1 Mb = 10^6 bits; 1 GB = 8000 Mb), matching the
/// networking conventions of the paper (videos are viewed at 3 Mb/s, server
/// links are 100/300 Mb/s, disks are 100/150 GB).

namespace vodsim {

/// Simulation time in seconds.
using Seconds = double;

/// Bandwidth in megabits per second.
using Mbps = double;

/// Data volume in megabits.
using Megabits = double;

inline constexpr Seconds kSecondsPerMinute = 60.0;
inline constexpr Seconds kSecondsPerHour = 3600.0;

/// Fluid-clock synchronization tolerance (seconds): the widest gap allowed
/// between a request's last fluid update and "now" when mutating rate or
/// playback state (Request::set_allocation / pause_viewing /
/// resume_viewing), and the slack the invariant auditor grants before
/// declaring fluid state ahead of the simulation clock. One named constant
/// so the SoA fast path and the auditor enforce the same bound — neither
/// can silently widen it.
inline constexpr Seconds kTimeSyncTolerance = 1e-9;

/// Converts minutes to seconds.
constexpr Seconds minutes(double m) { return m * kSecondsPerMinute; }

/// Converts hours to seconds.
constexpr Seconds hours(double h) { return h * kSecondsPerHour; }

/// Converts decimal gigabytes to megabits (1 GB = 8000 Mb).
constexpr Megabits gigabytes(double gb) { return gb * 8000.0; }

/// Converts megabits to decimal gigabytes.
constexpr double to_gigabytes(Megabits mb) { return mb / 8000.0; }

}  // namespace vodsim
