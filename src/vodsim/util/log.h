#pragma once

/// \file log.h
/// \brief Minimal leveled logger.
///
/// Simulation hot paths never log; logging exists for benches, examples and
/// debugging. The logger writes to stderr and is globally configured — no
/// per-component hierarchy, which would be overkill for a simulator.

#include <sstream>
#include <string>

namespace vodsim {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);

/// Returns the current global minimum level.
LogLevel log_level();

/// Returns true if a message at \p level would be emitted.
bool log_enabled(LogLevel level);

/// Emits a single log line (thread-safe).
void log_message(LogLevel level, const std::string& message);

namespace detail {

/// Stream-style log statement builder; emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace vodsim

#define VODSIM_LOG(level)                      \
  if (!::vodsim::log_enabled(level)) {         \
  } else                                       \
    ::vodsim::detail::LogLine(level)

#define VODSIM_DEBUG VODSIM_LOG(::vodsim::LogLevel::kDebug)
#define VODSIM_INFO VODSIM_LOG(::vodsim::LogLevel::kInfo)
#define VODSIM_WARN VODSIM_LOG(::vodsim::LogLevel::kWarn)
#define VODSIM_ERROR VODSIM_LOG(::vodsim::LogLevel::kError)
