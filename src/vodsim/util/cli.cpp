#include "vodsim/util/cli.h"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace vodsim {

CliParser::CliParser(std::string program_name, std::string description)
    : program_name_(std::move(program_name)), description_(std::move(description)) {}

void CliParser::add_flag(const std::string& name, const std::string& default_value,
                         const std::string& help) {
  if (flags_.emplace(name, Flag{default_value, help, false}).second) {
    order_.push_back(name);
  }
}

void CliParser::add_bool_flag(const std::string& name, const std::string& help) {
  if (flags_.emplace(name, Flag{"false", help, true}).second) {
    order_.push_back(name);
  }
}

bool CliParser::parse(int argc, const char* const* argv) {
  values_.clear();
  error_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      error_ = "unexpected positional argument: " + arg;
      print_usage(std::cerr);
      return false;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      error_ = "unknown flag: --" + name;
      print_usage(std::cerr);
      return false;
    }
    if (it->second.is_bool && !has_value) {
      value = "true";
    } else if (!has_value) {
      if (i + 1 >= argc) {
        error_ = "flag --" + name + " requires a value";
        print_usage(std::cerr);
        return false;
      }
      value = argv[++i];
    }
    values_[name] = value;
  }
  return true;
}

std::string CliParser::get_string(const std::string& name) const {
  const auto value = values_.find(name);
  if (value != values_.end()) return value->second;
  const auto flag = flags_.find(name);
  if (flag == flags_.end()) throw std::logic_error("unregistered flag: " + name);
  return flag->second.default_value;
}

long CliParser::get_long(const std::string& name) const {
  return std::strtol(get_string(name).c_str(), nullptr, 10);
}

double CliParser::get_double(const std::string& name) const {
  return std::strtod(get_string(name).c_str(), nullptr);
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = get_string(name);
  return v == "true" || v == "1" || v == "yes";
}

void CliParser::print_usage(std::ostream& out) const {
  out << program_name_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& flag = flags_.at(name);
    out << "  --" << name;
    if (!flag.is_bool) out << " <value>";
    out << "  (default: " << flag.default_value << ")\n      " << flag.help << "\n";
  }
  out << "  --help\n      Show this message.\n";
}

}  // namespace vodsim
