#include "vodsim/util/csv.h"

#include <charconv>
#include <cstdio>

namespace vodsim {

namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string escape(const std::string& field) {
  if (!needs_quoting(field)) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::field(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string CsvWriter::field(std::uint64_t value) { return std::to_string(value); }

std::string CsvWriter::field(std::int64_t value) { return std::to_string(value); }

bool parse_csv_line(const std::string& line, std::vector<std::string>& fields) {
  fields.clear();
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      if (!current.empty()) return false;  // quote must open a field
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // tolerate CRLF line endings
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes) return false;
  fields.push_back(std::move(current));
  return true;
}

}  // namespace vodsim
