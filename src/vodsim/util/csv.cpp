#include "vodsim/util/csv.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace vodsim {

namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string escape(const std::string& field) {
  if (!needs_quoting(field)) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

enum class ParseResult {
  kOk,
  kMalformed,
  /// The text ended inside a quoted field — for a single line that is an
  /// error, for a record it means "feed me the next physical line".
  kUnterminatedQuote,
};

ParseResult parse_fields(const std::string& text, std::vector<std::string>& fields) {
  fields.clear();
  std::string current;
  bool in_quotes = false;
  bool closed_quote = false;  // current field's quoting just closed
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
          closed_quote = true;
        }
      } else {
        current.push_back(c);
      }
    } else if (closed_quote && c != ',' && c != '\r') {
      return ParseResult::kMalformed;  // e.g. `"ab"c` — text after the quote
    } else if (c == '"') {
      if (!current.empty()) return ParseResult::kMalformed;  // `ab"c`
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
      closed_quote = false;
    } else if (c == '\r') {
      // tolerate CRLF line endings
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes) return ParseResult::kUnterminatedQuote;
  fields.push_back(std::move(current));
  return ParseResult::kOk;
}

}  // namespace

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::field(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0.0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string CsvWriter::field(std::uint64_t value) { return std::to_string(value); }

std::string CsvWriter::field(std::int64_t value) { return std::to_string(value); }

bool parse_csv_line(const std::string& line, std::vector<std::string>& fields) {
  return parse_fields(line, fields) == ParseResult::kOk;
}

bool read_csv_record(std::istream& in, std::vector<std::string>& fields) {
  fields.clear();
  std::string record;
  if (!std::getline(in, record)) return false;
  ParseResult result = parse_fields(record, fields);
  while (result == ParseResult::kUnterminatedQuote) {
    std::string next;
    if (!std::getline(in, next)) return false;  // EOF inside a quoted field
    record.push_back('\n');
    record += next;
    result = parse_fields(record, fields);
  }
  return result == ParseResult::kOk;
}

}  // namespace vodsim
