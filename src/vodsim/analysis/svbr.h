#pragma once

/// \file svbr.h
/// \brief Analytical utilization vs. server-to-view-bandwidth ratio.
///
/// The server-to-view bandwidth ratio (SVBR, paper §3.2) is the number of
/// concurrent streams one server sustains. For a one-server system with
/// continuous transmission the expected utilization at a given offered load
/// follows directly from Erlang-B; this module packages that expression.
/// The paper's observation — "values of the SVBR consistent with current
/// technology make it difficult for a system to perform poorly" — is the
/// statement that this curve approaches 1 as SVBR grows at fixed offered
/// load.

namespace vodsim {

/// Expected bandwidth utilization of a single server that can carry
/// \p svbr concurrent streams under Poisson offered load
/// \p load_factor x capacity (1.0 = the paper's 100% stress load).
/// Utilization = carried erlangs / svbr.
double analytical_utilization(int svbr, double load_factor = 1.0);

/// Expected rejection (blocking) probability in the same model.
double analytical_rejection(int svbr, double load_factor = 1.0);

}  // namespace vodsim
