#include "vodsim/analysis/svbr.h"

#include <cassert>

#include "vodsim/analysis/erlang.h"

namespace vodsim {

double analytical_utilization(int svbr, double load_factor) {
  assert(svbr >= 1);
  assert(load_factor >= 0.0);
  const double offered = load_factor * static_cast<double>(svbr);
  return erlang_b_carried(svbr, offered) / static_cast<double>(svbr);
}

double analytical_rejection(int svbr, double load_factor) {
  assert(svbr >= 1);
  const double offered = load_factor * static_cast<double>(svbr);
  return erlang_b_blocking(svbr, offered);
}

}  // namespace vodsim
