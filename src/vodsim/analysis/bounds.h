#pragma once

/// \file bounds.h
/// \brief Closed-form achievability bounds for one simulation configuration.
///
/// Every sweep cell reports its distance from what is *provably achievable*
/// (Viennot et al., "Scalable Distributed Video-on-Demand: Theoretical
/// Bounds and Practical Algorithms" frames the same setting). Two bound
/// families, from weakest assumptions to strongest:
///
///  1. **Fluid work conservation** (unconditional). The cluster's aggregate
///     link is C Mb/s; over any long window it cannot deliver more than C·W
///     megabits, so utilization <= min(1, offered_work / C). Dually, when
///     the offered work rate lambda·E[size] exceeds C, *some* arrival mass
///     must be rejected; the most favorable policy keeps the smallest
///     objects, so the rejection lower bound is 1 minus the largest arrival
///     mass whose work fits in C (a fractional knapsack over the realized
///     catalog, or a closed-form quadratic for the uniform-duration config).
///     Placement refinements (valid while the replica set is static):
///     titles with zero replicas force their whole popularity mass to
///     reject, and a server that is the *only* holder of a title set whose
///     offered work exceeds its link must shed the excess.
///
///  2. **Erlang-B admission** (continuous-transmission regime only). With
///     zero client staging and minimum-flow admission, every accepted
///     stream occupies exactly view_bandwidth for its full duration — an
///     M/G/c/c loss system. Pooling all servers into c = sum_s
///     floor(bw_s / view_bw) channels relaxes every placement constraint,
///     so B(c, lambda·E[duration]) lower-bounds expected blocking and the
///     pooled carried load upper-bounds expected utilization for the
///     duration-blind admission policies this repo implements. (A
///     clairvoyant policy that rejects long titles on purpose could beat
///     the Erlang terms; none of ours looks at durations. Client staging
///     invalidates the regime by *design* — semi-continuous transmission
///     shortens holding times below playback duration, which is the
///     paper's whole point — so the Erlang terms switch off whenever
///     staging_fraction > 0 or admission is buffer-aware.)
///
/// Every oracle is a pure deterministic function of the configuration (and
/// optionally the realized catalog/placement); nothing here touches RNG or
/// mutable engine state, so attaching bounds to a run is observe-only.
///
/// Because the bounds are *proven*, they double as a differential-testing
/// layer: a measured run that beats a bound by more than statistical slack
/// is a simulator bug. audit_bounds() packages that check; the invariant
/// auditor calls it at end of run and the fuzzer corpus keeps it armed.

#include <string>
#include <vector>

#include "vodsim/engine/config.h"
#include "vodsim/engine/metrics.h"

namespace vodsim {

/// Closed-form achievability envelope for one configuration.
struct BoundsReport {
  // --- digested inputs -------------------------------------------------
  Mbps total_bandwidth = 0.0;   ///< nominal aggregate link C
  int pooled_channels = 0;      ///< sum_s floor(bw_s / view_bw)
  double arrival_rate = 0.0;    ///< lambda, arrivals / s
  double offered_erlangs = 0.0; ///< lambda * E[duration]
  Mbps offered_work = 0.0;      ///< lambda * E[size], Mb/s
  Seconds mean_duration = 0.0;  ///< E[duration] (popularity-weighted)
  Seconds max_duration = 0.0;   ///< largest title duration
  Megabits max_size = 0.0;      ///< largest title size

  // --- validity gates ---------------------------------------------------
  /// Erlang terms apply: no client staging, no buffer-aware admission.
  bool erlang_regime = false;
  /// Placement terms apply: the replica set is static for the whole run
  /// (no drift re-ranking, no dynamic replication, no repair replication).
  bool placement_terms_valid = false;
  /// The popularity weights baked into the catalog-weighted terms stay
  /// correct for the whole run (false under popularity drift). When false
  /// the statistical audit checks are skipped; the sure checks
  /// (utilization <= 1, <= availability) always run.
  bool statistically_sound = true;
  /// Computed from the realized catalog/placement (vs. config-only).
  bool placement_aware = false;

  // --- oracles ----------------------------------------------------------
  /// Expected utilization no policy can exceed (min over active families).
  double utilization_upper = 1.0;
  /// Expected rejection ratio no policy can beat (max over families).
  double rejection_lower = 0.0;

  // --- per-family decomposition (for reporting; already folded above) ---
  double rejection_lower_fluid = 0.0;     ///< work-conservation knapsack
  double rejection_lower_erlang = 0.0;    ///< B(pooled_channels, a); 0 off-regime
  double rejection_lower_placement = 0.0; ///< zero-copy + exclusive-holder
  double unreachable_mass = 0.0;          ///< popularity on zero-replica titles
};

/// Config-only bounds: catalog statistics are taken from the uniform
/// duration law in \p config (closed forms), placement terms are zero.
/// Pure; may construct a scratch server vector for heterogeneity profiles.
BoundsReport compute_bounds(const SimulationConfig& config);

/// Placement-aware bounds from the realized world: the actual catalog
/// sizes, the popularity law at t = 0 (\p popularity, one probability per
/// VideoId), the replica directory and the (post-placement) servers.
BoundsReport compute_bounds(const SimulationConfig& config,
                            const VideoCatalog& catalog,
                            const std::vector<double>& popularity,
                            const ReplicaDirectory& directory,
                            const std::vector<Server>& servers);

/// "Measured never beats a proven bound." Returns "" when \p metrics is
/// consistent with \p bounds, otherwise a description of the violation.
///
/// Sure checks (always): utilization <= 1 and utilization <= availability.
/// Statistical checks (when bounds.statistically_sound): measured
/// utilization/rejection may not beat the bound by more than a slack
/// covering finite-window noise (6 sigma on the arrival count), the
/// warmup/fill-up transient (~mean_duration / window) and window-edge
/// spill (~max_duration / window). On tiny fuzz worlds the slack is
/// near-vacuous by construction — the bounds are expectations — while at
/// sweep scale (thousands of arrivals, long windows) it tightens to a few
/// percent, which is what makes the check a real bug detector.
std::string audit_bounds(const BoundsReport& bounds, const Metrics& metrics);

namespace bounds_detail {

/// sum_s floor(effective channels per server), with an epsilon guard so
/// e.g. 100/3 -> 33 channels is not lost to float rounding.
int pooled_channels(const std::vector<Server>& servers, Mbps view_bandwidth);

/// Fractional-knapsack core of the fluid rejection bound: the largest
/// total mass keepable from items (mass_i, size_i) — work rate of a kept
/// item is rate * mass_i * size_i — subject to total work <= capacity.
/// Items are divisible (an adversary can keep part of a title's mass), so
/// the result is >= any 0/1 selection; tests/bounds_test.cpp checks both
/// directions against exhaustive enumeration.
/// \param items (mass, per-arrival size in Mb) pairs; masses sum to <= 1.
/// \param rate arrival rate lambda (1/s).
/// \param capacity work budget (Mb/s).
double max_kept_mass(std::vector<std::pair<double, double>> items, double rate,
                     double capacity);

/// Closed form of max_kept_mass for sizes uniform on [min_size, max_size]
/// with popularity-independent mass: the kept fraction u solves
/// lambda * integral_{smin}^{s*} s ds / (smax - smin) = capacity.
double uniform_kept_fraction(Megabits min_size, Megabits max_size, double rate,
                             double capacity);

}  // namespace bounds_detail

}  // namespace vodsim
