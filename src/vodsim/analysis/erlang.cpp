#include "vodsim/analysis/erlang.h"

#include <cassert>

namespace vodsim {

double erlang_b_blocking(int channels, double offered_erlangs) {
  assert(channels >= 0);
  assert(offered_erlangs >= 0.0);
  if (offered_erlangs == 0.0) return channels == 0 ? 1.0 : 0.0;
  double b = 1.0;  // B(0, a) = 1
  for (int k = 1; k <= channels; ++k) {
    b = offered_erlangs * b / (static_cast<double>(k) + offered_erlangs * b);
  }
  return b;
}

double erlang_b_carried(int channels, double offered_erlangs) {
  return offered_erlangs * (1.0 - erlang_b_blocking(channels, offered_erlangs));
}

}  // namespace vodsim
