#pragma once

/// \file erlang.h
/// \brief Erlang-B loss formula.
///
/// A single video server without staging or migration is exactly an
/// M/G/c/c loss system: c = floor(server bandwidth / view bandwidth)
/// concurrent streams, Poisson arrivals, arbitrary (here uniform) service
/// times — Erlang-B blocking is insensitive to the service distribution.
/// The paper's full version uses this analytical utilization-vs-SVBR curve
/// to validate the simulator; bench E9 reproduces that cross-check.

#include <cstdint>

namespace vodsim {

/// Blocking probability B(c, a): c servers (channels), offered load a
/// erlangs. Computed by the numerically stable forward recursion
/// B_k = a B_{k-1} / (k + a B_{k-1}). Requires c >= 0, a >= 0.
double erlang_b_blocking(int channels, double offered_erlangs);

/// Carried load a (1 - B(c, a)) in erlangs.
double erlang_b_carried(int channels, double offered_erlangs);

}  // namespace vodsim
