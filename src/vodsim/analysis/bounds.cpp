#include "vodsim/analysis/bounds.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <utility>

#include "vodsim/analysis/erlang.h"

namespace vodsim {

namespace {

double clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

/// Folds the Erlang-B family into a report whose fluid terms are final.
/// The regime needs every accepted stream to hold exactly one channel for
/// its full playback: zero staging (semi-continuous transmission shortens
/// holding times — the paper's thesis — which breaks M/G/c/c), no
/// buffer-aware over-commit, and no retry queue (retrials re-admit
/// rejected arrivals, so carried load can exceed the loss-system value).
void fold_erlang(const SimulationConfig& config, BoundsReport& bounds) {
  bounds.erlang_regime = config.staging_capacity() == 0.0 &&
                         !config.admission.buffer_aware &&
                         !config.failure.retry.enabled;
  if (!bounds.erlang_regime) return;
  bounds.rejection_lower_erlang =
      erlang_b_blocking(bounds.pooled_channels, bounds.offered_erlangs);
  bounds.rejection_lower =
      std::max(bounds.rejection_lower, bounds.rejection_lower_erlang);
  if (bounds.total_bandwidth > 0.0) {
    const double carried =
        erlang_b_carried(bounds.pooled_channels, bounds.offered_erlangs);
    bounds.utilization_upper =
        std::min(bounds.utilization_upper,
                 carried * config.system.view_bandwidth / bounds.total_bandwidth);
  }
}

bool static_replica_set(const SimulationConfig& config) {
  // Drift re-ranks popularity after placement; dynamic replication and
  // repair replication add holders mid-run. Any of them invalidates bounds
  // derived from the t = 0 replica directory.
  return !config.drift.enabled && !config.replication.enabled &&
         !config.failure.repair.enabled;
}

}  // namespace

namespace bounds_detail {

int pooled_channels(const std::vector<Server>& servers, Mbps view_bandwidth) {
  if (view_bandwidth <= 0.0) return 0;
  int channels = 0;
  for (const Server& server : servers) {
    // Nominal link: faults only shrink capacity, which keeps every bound
    // derived from the nominal channel count valid.
    channels += static_cast<int>(
        std::floor(server.bandwidth() / view_bandwidth + 1e-9));
  }
  return channels;
}

double max_kept_mass(std::vector<std::pair<double, double>> items, double rate,
                     double capacity) {
  double total_mass = 0.0;
  for (const auto& [mass, size] : items) total_mass += mass;
  if (rate <= 0.0 || capacity <= 0.0) {
    return capacity <= 0.0 && rate > 0.0 ? 0.0 : total_mass;
  }
  // Cheapest work per unit mass first: exchange argument — swapping any
  // kept item for a smaller one frees work without losing mass, so the
  // size-ascending prefix (fractional at the boundary) is optimal.
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  double kept = 0.0;
  double work = 0.0;
  for (const auto& [mass, size] : items) {
    const double item_work = rate * mass * size;
    if (work + item_work <= capacity) {
      kept += mass;
      work += item_work;
    } else {
      if (item_work > 0.0) kept += mass * (capacity - work) / item_work;
      return kept;
    }
  }
  return kept;
}

double uniform_kept_fraction(Megabits min_size, Megabits max_size, double rate,
                             double capacity) {
  if (rate <= 0.0) return 1.0;
  const double offered = rate * 0.5 * (min_size + max_size);
  if (offered <= capacity) return 1.0;
  const double spread = max_size - min_size;
  if (spread <= 0.0) {
    return min_size > 0.0 ? clamp01(capacity / (rate * min_size)) : 1.0;
  }
  // Keep every arrival of size <= s*; the kept work rate is
  // rate * (s*^2 - smin^2) / (2 * spread) = capacity.
  const double boundary =
      std::sqrt(min_size * min_size + 2.0 * capacity * spread / rate);
  return clamp01((boundary - min_size) / spread);
}

}  // namespace bounds_detail

BoundsReport compute_bounds(const SimulationConfig& config) {
  const SystemConfig& sys = config.system;
  BoundsReport bounds;
  bounds.total_bandwidth = sys.total_bandwidth();
  bounds.pooled_channels =
      bounds_detail::pooled_channels(make_servers(sys), sys.view_bandwidth);
  bounds.arrival_rate = config.arrival_rate();
  bounds.mean_duration = sys.mean_video_duration();
  bounds.max_duration = sys.video_max_duration;
  bounds.max_size = sys.video_max_duration * sys.view_bandwidth;
  bounds.offered_erlangs = bounds.arrival_rate * bounds.mean_duration;
  bounds.offered_work = bounds.arrival_rate * sys.mean_video_size();
  bounds.statistically_sound = !config.drift.enabled;
  bounds.placement_terms_valid = static_replica_set(config);

  // Sizes are uniform on [dmin, dmax] * view_bw independently of rank, so
  // the arrival-size law is uniform and the knapsack has a closed form.
  const double kept = bounds_detail::uniform_kept_fraction(
      sys.video_min_duration * sys.view_bandwidth, bounds.max_size,
      bounds.arrival_rate, bounds.total_bandwidth);
  bounds.rejection_lower_fluid = clamp01(1.0 - kept);
  bounds.rejection_lower = bounds.rejection_lower_fluid;
  bounds.utilization_upper =
      bounds.total_bandwidth > 0.0
          ? std::min(1.0, bounds.offered_work / bounds.total_bandwidth)
          : 1.0;
  fold_erlang(config, bounds);
  return bounds;
}

BoundsReport compute_bounds(const SimulationConfig& config,
                            const VideoCatalog& catalog,
                            const std::vector<double>& popularity,
                            const ReplicaDirectory& directory,
                            const std::vector<Server>& servers) {
  assert(popularity.size() == catalog.size());
  assert(directory.num_videos() == catalog.size());
  BoundsReport bounds;
  bounds.placement_aware = true;
  bounds.total_bandwidth = config.system.total_bandwidth();
  bounds.pooled_channels =
      bounds_detail::pooled_channels(servers, config.system.view_bandwidth);
  bounds.arrival_rate = config.arrival_rate();
  bounds.statistically_sound = !config.drift.enabled;
  bounds.placement_terms_valid = static_replica_set(config);

  const std::size_t n = std::min(popularity.size(), catalog.size());
  std::vector<std::pair<double, double>> reachable_items;
  reachable_items.reserve(n);
  double mean_duration = 0.0;
  double offered_size = 0.0;      // E[size], Mb per arrival
  double reachable_size = 0.0;    // E[size * 1(title has a replica)]
  double unreachable_mass = 0.0;  // P(title has no replica)
  for (std::size_t v = 0; v < n; ++v) {
    const Video& video = catalog[static_cast<VideoId>(v)];
    bounds.max_duration = std::max(bounds.max_duration, video.duration);
    bounds.max_size = std::max(bounds.max_size, video.size());
    const double mass = popularity[v];
    if (mass <= 0.0) continue;
    mean_duration += mass * video.duration;
    offered_size += mass * video.size();
    // Without a static replica set, replication may make any title
    // reachable later, so only the aggregate-capacity knapsack applies.
    const bool reachable = !bounds.placement_terms_valid ||
                           !directory.holders(static_cast<VideoId>(v)).empty();
    if (reachable) {
      reachable_items.emplace_back(mass, video.size());
      reachable_size += mass * video.size();
    } else {
      unreachable_mass += mass;
    }
  }
  bounds.mean_duration = mean_duration;
  bounds.offered_erlangs = bounds.arrival_rate * mean_duration;
  bounds.offered_work = bounds.arrival_rate * offered_size;
  bounds.unreachable_mass = unreachable_mass;

  // Fluid knapsack over the reachable titles: unreachable mass is simply
  // never keepable, so 1 - kept already folds it in.
  const double kept = bounds_detail::max_kept_mass(
      std::move(reachable_items), bounds.arrival_rate, bounds.total_bandwidth);
  bounds.rejection_lower_fluid = clamp01(1.0 - kept);

  // Exclusive-holder excess: all work for titles held *only* by server s
  // must flow through s's link. The excess work rate beyond the link,
  // divided by the largest such title's size, is a count of arrivals per
  // second that must be rejected — disjoint across servers (a title is
  // exclusive to at most one) and disjoint from the zero-replica mass.
  double placement_lower = unreachable_mass;
  if (bounds.placement_terms_valid && bounds.arrival_rate > 0.0) {
    std::vector<double> exclusive_work(servers.size(), 0.0);
    std::vector<double> exclusive_max_size(servers.size(), 0.0);
    for (std::size_t v = 0; v < n; ++v) {
      if (popularity[v] <= 0.0) continue;
      const std::vector<ServerId>& holders =
          directory.holders(static_cast<VideoId>(v));
      if (holders.size() != 1) continue;
      const auto s = static_cast<std::size_t>(holders.front());
      const Video& video = catalog[static_cast<VideoId>(v)];
      exclusive_work[s] += bounds.arrival_rate * popularity[v] * video.size();
      exclusive_max_size[s] = std::max(exclusive_max_size[s], video.size());
    }
    for (std::size_t s = 0; s < servers.size(); ++s) {
      const double excess = exclusive_work[s] - servers[s].bandwidth();
      if (excess > 0.0 && exclusive_max_size[s] > 0.0) {
        placement_lower +=
            excess / (bounds.arrival_rate * exclusive_max_size[s]);
      }
    }
  }
  bounds.rejection_lower_placement =
      bounds.placement_terms_valid ? clamp01(placement_lower) : 0.0;

  bounds.rejection_lower =
      std::max(bounds.rejection_lower_fluid, bounds.rejection_lower_placement);
  const double usable_work = bounds.placement_terms_valid
                                 ? bounds.arrival_rate * reachable_size
                                 : bounds.offered_work;
  bounds.utilization_upper =
      bounds.total_bandwidth > 0.0
          ? std::min(1.0, usable_work / bounds.total_bandwidth)
          : 1.0;
  fold_erlang(config, bounds);
  return bounds;
}

std::string audit_bounds(const BoundsReport& bounds, const Metrics& metrics) {
  std::ostringstream why;
  const double utilization = metrics.utilization();
  if (utilization > 1.0 + 1e-9) {
    why << "utilization " << utilization << " exceeds 1";
    return why.str();
  }
  const double availability = metrics.availability();
  if (utilization > availability + 1e-6) {
    why << "utilization " << utilization << " exceeds availability "
        << availability << " (delivered more than the surviving capacity)";
    return why.str();
  }

  // The remaining checks compare a finite-window measurement against an
  // expectation bound, so they need statistical room: 6 sigma on the
  // arrival count, the warmup/fill-up transient (the loss system mixes in
  // about one holding time), and window-edge spill. Tiny fuzz worlds make
  // the slack vacuous by construction; sweep-scale runs tighten it to a
  // few percent — which is where this becomes a real bug detector.
  if (!bounds.statistically_sound) return "";
  const double arrivals = static_cast<double>(metrics.arrivals());
  const Seconds window = metrics.window();
  if (arrivals < 1.0 || window <= 0.0) return "";

  // Streams aborted by faults (drops, abandoned retries) consumed less
  // than their full work, so work conservation only bounds the mass that
  // was *fully served*: fold them into the rejected side.
  const double not_served =
      static_cast<double>(metrics.rejects() + metrics.drops() +
                          metrics.retry_abandoned()) /
      arrivals;
  const double transient = std::min(1.0, 3.0 * bounds.mean_duration / window);
  const double rejection_slack = 6.0 * std::sqrt(0.25 / arrivals) +
                                 bounds.rejection_lower * transient + 1e-9;
  if (not_served < bounds.rejection_lower - rejection_slack) {
    why << "rejected+dropped fraction " << not_served
        << " beats the proven lower bound " << bounds.rejection_lower
        << " by more than the statistical slack " << rejection_slack << " ("
        << metrics.arrivals() << " arrivals, window " << window << " s)";
    return why.str();
  }

  const double capacity_seconds = bounds.total_bandwidth * window;
  if (capacity_seconds > 0.0 && bounds.max_size > 0.0) {
    const double utilization_slack =
        (6.0 * std::sqrt(arrivals) +
         2.0 * arrivals * bounds.max_duration / window) *
            bounds.max_size / capacity_seconds +
        1e-9;
    if (utilization > bounds.utilization_upper + utilization_slack) {
      why << "utilization " << utilization
          << " beats the proven upper bound " << bounds.utilization_upper
          << " by more than the statistical slack " << utilization_slack
          << " (" << metrics.arrivals() << " arrivals, window " << window
          << " s)";
      return why.str();
    }
  }
  return "";
}

}  // namespace vodsim
