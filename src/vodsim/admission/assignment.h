#pragma once

/// \file assignment.h
/// \brief Choosing which replica-holding server gets a new request.
///
/// The paper assigns each request to the replica holder with the fewest
/// current requests (least-loaded). The other strategies exist for the
/// ablation bench (E11): how sensitive is the system to this choice?

#include <string>
#include <vector>

#include "vodsim/cluster/server.h"
#include "vodsim/util/rng.h"

namespace vodsim {

enum class AssignmentKind {
  kLeastLoaded,  ///< fewest active requests (paper's rule)
  kRandom,       ///< uniform among feasible holders
  kFirstFit,     ///< lowest server id among feasible holders
  kMostLoaded,   ///< most active requests (pack-tight strawman)
};

/// Parses "least-loaded" | "random" | "first-fit" | "most-loaded".
AssignmentKind assignment_kind_from_string(const std::string& name);
std::string to_string(AssignmentKind kind);

/// Picks a destination among \p candidates (server ids that hold a replica
/// AND can admit the stream — the caller pre-filters). Returns kNoServer if
/// candidates is empty. \p rng used only by kRandom.
ServerId pick_server(AssignmentKind kind, const std::vector<ServerId>& candidates,
                     const std::vector<Server>& servers, Rng& rng);

}  // namespace vodsim
