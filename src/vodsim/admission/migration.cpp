#include "vodsim/admission/migration.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace vodsim {

VictimStrategy victim_strategy_from_string(const std::string& name) {
  if (name == "first-fit") return VictimStrategy::kFirstFit;
  if (name == "least-remaining") return VictimStrategy::kLeastRemaining;
  if (name == "most-remaining") return VictimStrategy::kMostRemaining;
  if (name == "most-buffered") return VictimStrategy::kMostBuffered;
  throw std::invalid_argument("unknown victim strategy: " + name);
}

std::string to_string(VictimStrategy strategy) {
  switch (strategy) {
    case VictimStrategy::kFirstFit:
      return "first-fit";
    case VictimStrategy::kLeastRemaining:
      return "least-remaining";
    case VictimStrategy::kMostRemaining:
      return "most-remaining";
    case VictimStrategy::kMostBuffered:
      return "most-buffered";
  }
  return "?";
}

namespace {

/// Search context shared across the DFS. The vectors live in the caller's
/// MigrationSearchScratch so repeated searches reuse their capacity.
struct SearchContext {
  const MigrationConfig& config;
  const std::vector<Server>& servers;
  const std::vector<std::vector<ServerId>>& holders_of;
  /// Hypothetical committed-bandwidth deltas from steps already in the plan.
  std::vector<Mbps>& delta;
  /// Requests already chosen as victims (a request moves at most once per
  /// plan).
  std::vector<const Request*>& used;
  /// Per-depth candidate victim lists (pre-sized to max_chain_length so
  /// references stay valid across recursion).
  std::vector<std::vector<Request*>>& victims;
  /// Remaining (victim, target) pairs this search may still examine.
  int budget = 0;
};

bool hypothetically_admits(const SearchContext& ctx, ServerId server, Mbps rate) {
  const Server& s = ctx.servers[static_cast<std::size_t>(server)];
  if (!s.serviceable()) return false;
  return s.committed_bandwidth() + s.reserved_bandwidth() +
             ctx.delta[static_cast<std::size_t>(server)] + rate <=
         s.effective_bandwidth() + 1e-9;
}

bool victim_eligible(const SearchContext& ctx, const Request& request) {
  if (request.state() != RequestState::kStreaming) return false;
  if (ctx.config.max_hops_per_request >= 0 &&
      request.hops() >= ctx.config.max_hops_per_request) {
    return false;
  }
  if (ctx.config.switch_latency > 0.0 &&
      request.buffer_cover() <
          ctx.config.switch_latency) {
    return false;
  }
  return std::find(ctx.used.begin(), ctx.used.end(), &request) == ctx.used.end();
}

const std::vector<Request*>& ordered_victims(const SearchContext& ctx,
                                             const Server& server, int depth) {
  std::vector<Request*>& victims = ctx.victims[static_cast<std::size_t>(depth)];
  victims.clear();
  for (Request* request : server.active_requests()) {
    if (victim_eligible(ctx, *request)) victims.push_back(request);
  }
  auto by = [&](auto key) {
    std::stable_sort(victims.begin(), victims.end(),
                     [&](Request* a, Request* b) { return key(*a) < key(*b); });
  };
  switch (ctx.config.victim) {
    case VictimStrategy::kFirstFit:
      break;  // active order
    case VictimStrategy::kLeastRemaining:
      by([](const Request& r) { return r.remaining(); });
      break;
    case VictimStrategy::kMostRemaining:
      by([](const Request& r) { return -r.remaining(); });
      break;
    case VictimStrategy::kMostBuffered:
      by([](const Request& r) { return -r.buffer_level(); });
      break;
  }
  return victims;
}

/// Tries to free \p rate Mb/s on \p server by migrating one of its active
/// requests away (possibly recursively freeing room on the target).
/// Appends steps to \p plan in execution order. \p depth counts migrations
/// already in the plan.
bool free_room(SearchContext& ctx, ServerId server, Mbps rate,
               std::vector<MigrationStep>& plan, int depth) {
  if (depth >= ctx.config.max_chain_length) return false;
  const Server& s = ctx.servers[static_cast<std::size_t>(server)];

  for (Request* victim : ordered_victims(ctx, s, depth)) {
    // Candidate targets: other holders of the victim's video.
    for (ServerId target : ctx.holders_of[static_cast<std::size_t>(victim->video_id())]) {
      if (target == server) continue;
      if (--ctx.budget < 0) return false;
      const std::size_t plan_before = plan.size();
      const std::size_t used_before = ctx.used.size();
      // Claim the victim BEFORE recursing: the recursion may revisit this
      // server (migration cycles are legal) and must not pick the same
      // request twice — a plan may move each request at most once.
      ctx.used.push_back(victim);
      if (hypothetically_admits(ctx, target, victim->view_bandwidth())) {
        // Direct move.
      } else if (!free_room(ctx, target, victim->view_bandwidth(), plan, depth + 1)) {
        ctx.used.resize(used_before);
        continue;
      }
      // Commit this step on top of whatever the recursion freed.
      plan.push_back(MigrationStep{victim, server, target});
      ctx.delta[static_cast<std::size_t>(server)] -= victim->view_bandwidth();
      ctx.delta[static_cast<std::size_t>(target)] += victim->view_bandwidth();
      if (hypothetically_admits(ctx, server, rate)) return true;
      // Not enough (can only happen with heterogeneous view rates); undo
      // this step and everything the recursion added for it. The loop
      // covers our own step too — it is plan.back() at this point.
      for (std::size_t i = plan_before; i < plan.size(); ++i) {
        ctx.delta[static_cast<std::size_t>(plan[i].from)] +=
            plan[i].request->view_bandwidth();
        ctx.delta[static_cast<std::size_t>(plan[i].to)] -=
            plan[i].request->view_bandwidth();
      }
      plan.resize(plan_before);
      ctx.used.resize(used_before);
    }
  }
  return false;
}

}  // namespace

std::optional<MigrationPlan> find_migration_plan(
    VideoId video, Mbps view_bandwidth, const MigrationConfig& config,
    const std::vector<Server>& servers,
    const std::vector<std::vector<ServerId>>& holders_of,
    MigrationSearchScratch& scratch) {
  scratch.nodes_explored = 0;
  if (!config.enabled || config.max_chain_length <= 0) return std::nullopt;

  // Try holders in least-loaded order: the cheapest slot to free.
  std::vector<ServerId>& holders = scratch.holders;
  holders = holders_of[static_cast<std::size_t>(video)];
  std::stable_sort(holders.begin(), holders.end(), [&](ServerId a, ServerId b) {
    return servers[static_cast<std::size_t>(a)].active_count() <
           servers[static_cast<std::size_t>(b)].active_count();
  });

  if (scratch.victims.size() < static_cast<std::size_t>(config.max_chain_length)) {
    scratch.victims.resize(static_cast<std::size_t>(config.max_chain_length));
  }
  for (ServerId holder : holders) {
    if (!servers[static_cast<std::size_t>(holder)].serviceable()) continue;
    scratch.delta.assign(servers.size(), 0.0);
    scratch.used.clear();
    scratch.steps.clear();
    SearchContext ctx{config,       servers,      holders_of,
                      scratch.delta, scratch.used, scratch.victims,
                      config.max_search_nodes};
    const bool found = free_room(ctx, holder, view_bandwidth, scratch.steps, 0);
    scratch.nodes_explored += config.max_search_nodes - std::max(ctx.budget, 0);
    if (found) {
      // Copy (not move) the steps so the scratch keeps its capacity.
      return MigrationPlan{scratch.steps, holder};
    }
  }
  return std::nullopt;
}

std::optional<MigrationPlan> find_migration_plan(
    VideoId video, Mbps view_bandwidth, const MigrationConfig& config,
    const std::vector<Server>& servers,
    const std::vector<std::vector<ServerId>>& holders_of) {
  MigrationSearchScratch scratch;
  return find_migration_plan(video, view_bandwidth, config, servers, holders_of,
                             scratch);
}

}  // namespace vodsim
