#include "vodsim/admission/controller.h"

#include <cassert>

namespace vodsim {

ReplicaDirectory::ReplicaDirectory(std::size_t num_videos,
                                   const std::vector<Server>& servers) {
  holders_.assign(num_videos, {});
  for (const Server& server : servers) {
    for (VideoId video : server.replicas()) {
      holders_[static_cast<std::size_t>(video)].push_back(server.id());
    }
  }
  for (const auto& list : holders_) {
    if (list.empty()) ++orphans_;
  }
}

void ReplicaDirectory::add_holder(VideoId video, ServerId server) {
  auto& list = holders_[static_cast<std::size_t>(video)];
  for (ServerId existing : list) {
    if (existing == server) return;
  }
  if (list.empty() && orphans_ > 0) --orphans_;
  list.push_back(server);
}

AdmissionController::AdmissionController(AdmissionConfig config,
                                         const ReplicaDirectory& directory)
    : config_(config), directory_(directory) {}

bool AdmissionController::feasible(const Server& server,
                                   Mbps view_bandwidth) const {
  if (!config_.buffer_aware) return server.can_admit(view_bandwidth);
  if (!server.serviceable()) return false;
  // Near-term need: streams coasting on more than `horizon` seconds of
  // staged data are ignored (buffer levels are as of each stream's last
  // fluid update — a slightly stale but cheap estimate).
  Mbps need = view_bandwidth + server.reserved_bandwidth();
  for (const Request* request : server.active_requests()) {
    if (request->buffer_cover() <
        config_.buffer_aware_horizon) {
      need += request->view_bandwidth();
    }
  }
  return need <= server.effective_bandwidth() + 1e-9;
}

AdmissionDecision AdmissionController::decide(Seconds now, VideoId video,
                                              Mbps view_bandwidth,
                                              const std::vector<Server>& servers,
                                              Rng& rng) const {
  AdmissionDecision decision;

  // Step 1: direct assignment to a feasible replica holder.
  std::vector<ServerId>& candidates = candidates_scratch_;
  candidates.clear();
  for (ServerId holder : directory_.holders(video)) {
    if (feasible(servers[static_cast<std::size_t>(holder)], view_bandwidth)) {
      candidates.push_back(holder);
    }
  }
  if (!candidates.empty()) {
    decision.accepted = true;
    decision.server = pick_server(config_.assignment, candidates, servers, rng);
    return decision;
  }

  // Step 2: all holders full — try dynamic request migration.
  auto plan = find_migration_plan(video, view_bandwidth, config_.migration, servers,
                                  directory_.all(), search_scratch_);
  if (trace_ != nullptr && trace_->wants(kTraceMigration) &&
      config_.migration.enabled) {
    trace_->record(now, TraceEventType::kMigrationSearch, kNoServer, -1, video,
                   static_cast<double>(search_scratch_.nodes_explored),
                   plan ? static_cast<double>(plan->steps.size()) : -1.0);
  }
  if (plan) {
    decision.accepted = true;
    decision.server = plan->admit_on;
    decision.migrations = std::move(plan->steps);
    return decision;
  }

  // Step 3: reject.
  return decision;
}

}  // namespace vodsim
