#include "vodsim/admission/assignment.h"

#include <cassert>
#include <stdexcept>

namespace vodsim {

AssignmentKind assignment_kind_from_string(const std::string& name) {
  if (name == "least-loaded") return AssignmentKind::kLeastLoaded;
  if (name == "random") return AssignmentKind::kRandom;
  if (name == "first-fit") return AssignmentKind::kFirstFit;
  if (name == "most-loaded") return AssignmentKind::kMostLoaded;
  throw std::invalid_argument("unknown assignment policy: " + name);
}

std::string to_string(AssignmentKind kind) {
  switch (kind) {
    case AssignmentKind::kLeastLoaded:
      return "least-loaded";
    case AssignmentKind::kRandom:
      return "random";
    case AssignmentKind::kFirstFit:
      return "first-fit";
    case AssignmentKind::kMostLoaded:
      return "most-loaded";
  }
  return "?";
}

ServerId pick_server(AssignmentKind kind, const std::vector<ServerId>& candidates,
                     const std::vector<Server>& servers, Rng& rng) {
  if (candidates.empty()) return kNoServer;
  switch (kind) {
    case AssignmentKind::kFirstFit: {
      ServerId best = candidates[0];
      for (ServerId s : candidates) best = std::min(best, s);
      return best;
    }
    case AssignmentKind::kRandom:
      return candidates[rng.uniform_int(candidates.size())];
    case AssignmentKind::kLeastLoaded: {
      ServerId best = kNoServer;
      std::size_t best_load = 0;
      for (ServerId s : candidates) {
        const std::size_t load = servers[static_cast<std::size_t>(s)].active_count();
        if (best == kNoServer || load < best_load ||
            (load == best_load && s < best)) {
          best = s;
          best_load = load;
        }
      }
      return best;
    }
    case AssignmentKind::kMostLoaded: {
      ServerId best = kNoServer;
      std::size_t best_load = 0;
      for (ServerId s : candidates) {
        const std::size_t load = servers[static_cast<std::size_t>(s)].active_count();
        if (best == kNoServer || load > best_load ||
            (load == best_load && s < best)) {
          best = s;
          best_load = load;
        }
      }
      return best;
    }
  }
  assert(false);
  return kNoServer;
}

}  // namespace vodsim
