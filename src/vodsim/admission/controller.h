#pragma once

/// \file controller.h
/// \brief The distribution controller's admission decision (paper §2, §3).
///
/// On each arrival the controller either (a) assigns the request to a
/// replica-holding server with bandwidth headroom, (b) frees such a server
/// via dynamic request migration, or (c) rejects the request. The decision
/// is pure — the engine executes it — so it is unit-testable without the
/// event loop.
///
/// Sharded engine (DESIGN.md §12): admission reads — and migration writes —
/// any server in the cluster, so arrival/admission events always execute on
/// the serial coordinator queue, never inside a shard drain. The controller
/// itself needs no changes for sharding; only its call sites are pinned.

#include <vector>

#include "vodsim/admission/assignment.h"
#include "vodsim/admission/migration.h"
#include "vodsim/cluster/server.h"
#include "vodsim/cluster/video.h"
#include "vodsim/obs/trace.h"

namespace vodsim {

/// VideoId -> servers holding a replica. Built once after placement (the
/// replica set is static; the paper performs no dynamic replication).
class ReplicaDirectory {
 public:
  ReplicaDirectory() = default;
  ReplicaDirectory(std::size_t num_videos, const std::vector<Server>& servers);

  const std::vector<ServerId>& holders(VideoId video) const {
    return holders_[static_cast<std::size_t>(video)];
  }
  const std::vector<std::vector<ServerId>>& all() const { return holders_; }
  std::size_t num_videos() const { return holders_.size(); }

  /// Videos with no replica anywhere (placement shortfall).
  std::size_t orphan_count() const { return orphans_; }

  /// Registers a replica created after placement (dynamic replication).
  /// No-op if the holder is already registered.
  void add_holder(VideoId video, ServerId server);

 private:
  std::vector<std::vector<ServerId>> holders_;
  std::size_t orphans_ = 0;
};

struct AdmissionConfig {
  AssignmentKind assignment = AssignmentKind::kLeastLoaded;
  MigrationConfig migration;

  /// Buffer-aware admission (intermittent-transmission extension): a server
  /// is considered feasible when the streams that will actually need flow
  /// soon — those whose staged data covers less than `buffer_aware_horizon`
  /// seconds of playback — fit in the link, ignoring streams coasting on
  /// fat buffers. More aggressive than the paper's minimum-flow rule; may
  /// over-commit and cause continuity violations in a drain crunch (the
  /// engine counts them). Requires SchedulerKind::kIntermittent.
  bool buffer_aware = false;
  Seconds buffer_aware_horizon = 30.0;
};

/// The controller's verdict for one arrival.
struct AdmissionDecision {
  bool accepted = false;
  ServerId server = kNoServer;
  /// Migrations to execute (in order) before attaching the newcomer.
  std::vector<MigrationStep> migrations;

  bool used_migration() const { return !migrations.empty(); }
};

class AdmissionController {
 public:
  /// \param directory must outlive the controller.
  AdmissionController(AdmissionConfig config, const ReplicaDirectory& directory);

  /// Decides the fate of an arrival for \p video at \p view_bandwidth, at
  /// simulation time \p now (used only for trace attribution — the decision
  /// itself is time-invariant). Does not mutate any server; the engine
  /// applies the decision. Runs on every arrival, so its working buffers
  /// are reused across calls (the mutable scratch below) — a controller
  /// serves exactly one simulation and is not safe to share across threads.
  AdmissionDecision decide(Seconds now, VideoId video, Mbps view_bandwidth,
                           const std::vector<Server>& servers, Rng& rng) const;

  const AdmissionConfig& config() const { return config_; }

  /// Attaches a trace recorder (observe-only; null detaches). The
  /// controller emits migration-search telemetry under kTraceMigration.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// The admission feasibility predicate (Server::can_admit under the
  /// paper's minimum-flow rule; the near-term-need test when buffer-aware).
  bool feasible(const Server& server, Mbps view_bandwidth) const;

 private:
  AdmissionConfig config_;
  const ReplicaDirectory& directory_;
  TraceRecorder* trace_ = nullptr;
  /// Reused across decide() calls; after warmup the admission hot path
  /// performs no heap allocations.
  mutable std::vector<ServerId> candidates_scratch_;
  mutable MigrationSearchScratch search_scratch_;
};

}  // namespace vodsim
