#pragma once

/// \file migration.h
/// \brief Dynamic request migration (DRM, paper §3.1).
///
/// When every server holding a replica of an incoming request's video is
/// full, DRM looks for an *active* request on such a server that can itself
/// move to a different holder of *its* video with headroom — freeing a slot
/// for the newcomer. The paper caps the migration chain length at 1 (one
/// migration per arrival) and studies hops-per-request of 1 vs unlimited;
/// both are knobs here, and chains longer than 1 are supported via
/// depth-limited search for the ablation bench.

#include <optional>
#include <string>
#include <vector>

#include "vodsim/cluster/request.h"
#include "vodsim/cluster/server.h"
#include "vodsim/util/rng.h"
#include "vodsim/util/units.h"

namespace vodsim {

/// Which active request to move off a full server first.
enum class VictimStrategy {
  kFirstFit,        ///< first eligible in active order (cheapest)
  kLeastRemaining,  ///< closest to finishing (frees the slot soonest anyway)
  kMostRemaining,   ///< farthest from finishing
  kMostBuffered,    ///< largest staged reserve (most jitter headroom)
};

VictimStrategy victim_strategy_from_string(const std::string& name);
std::string to_string(VictimStrategy strategy);

struct MigrationConfig {
  bool enabled = false;

  /// Maximum number of requests migrated to admit one arrival ("migration
  /// chain length"); the paper uses 1 everywhere.
  int max_chain_length = 1;

  /// Maximum times any one request may migrate during its lifetime
  /// ("hops per request"); -1 = unlimited.
  int max_hops_per_request = 1;

  VictimStrategy victim = VictimStrategy::kFirstFit;

  /// Upper bound on (victim, target) pairs examined per admission attempt.
  /// Chains longer than 1 explore a tree whose fan-out is the per-server
  /// active count times the replica degree; the budget keeps worst-case
  /// admission latency bounded (a real controller would, too). Chain-1
  /// searches rarely hit the default.
  int max_search_nodes = 1024;

  /// Stream pause while switching servers. A victim is only eligible if its
  /// staged data covers the pause (otherwise the viewer would see jitter —
  /// exactly why DRM needs client staging). 0 = instantaneous switch.
  Seconds switch_latency = 0.0;
};

/// One migration step: move \p request from \p from to \p to.
struct MigrationStep {
  Request* request = nullptr;
  ServerId from = kNoServer;
  ServerId to = kNoServer;
};

/// A feasible admission-with-migration plan: execute `steps` in order (each
/// step's destination has headroom once earlier steps have run), then admit
/// the newcomer on `admit_on`.
struct MigrationPlan {
  std::vector<MigrationStep> steps;
  ServerId admit_on = kNoServer;
};

/// Reusable working buffers for find_migration_plan. The search runs on
/// every congested arrival, so the admission hot path holds one scratch and
/// threads it through; after warmup a search performs no heap allocations
/// (except copying the steps of a *successful* plan into the result).
/// Single-threaded use only.
struct MigrationSearchScratch {
  std::vector<ServerId> holders;            ///< sorted holder working copy
  std::vector<Mbps> delta;                  ///< hypothetical bandwidth deltas
  std::vector<const Request*> used;         ///< victims already in the plan
  std::vector<MigrationStep> steps;         ///< plan under construction
  std::vector<std::vector<Request*>> victims;  ///< one candidate list per depth

  /// (victim, target) pairs examined by the most recent search — an
  /// observability output (the admission controller traces it), reset on
  /// every find_migration_plan call.
  int nodes_explored = 0;
};

/// Searches for a plan to admit a request for \p video of rate
/// \p view_bandwidth. Preconditions: no holder of \p video can currently
/// admit it directly (the controller checks that first).
///
/// \param holders_of maps VideoId -> server ids holding a replica.
/// Returns nullopt when no chain within the configured length exists.
std::optional<MigrationPlan> find_migration_plan(
    VideoId video, Mbps view_bandwidth, const MigrationConfig& config,
    const std::vector<Server>& servers,
    const std::vector<std::vector<ServerId>>& holders_of,
    MigrationSearchScratch& scratch);

/// Convenience overload with a throwaway scratch (tests, one-shot callers).
std::optional<MigrationPlan> find_migration_plan(
    VideoId video, Mbps view_bandwidth, const MigrationConfig& config,
    const std::vector<Server>& servers,
    const std::vector<std::vector<ServerId>>& holders_of);

}  // namespace vodsim
