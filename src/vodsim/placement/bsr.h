#pragma once

/// \file bsr.h
/// \brief Bandwidth-to-space-ratio placement (Dan & Sitaram, SIGMOD '95).
///
/// A published comparator referenced by the paper ([10]): copy counts follow
/// predicted popularity (as in Predictive), but each replica is placed on
/// the server whose *remaining* bandwidth-to-space ratio best matches the
/// video's own demanded-bandwidth-to-size ratio, instead of a random server.
/// This keeps hot (high-BSR) titles on servers with bandwidth to spare and
/// packs cold bulk onto storage-rich ones.

#include "vodsim/placement/placement.h"

namespace vodsim {

class BsrPlacement final : public PlacementPolicy {
 public:
  PlacementResult place(const VideoCatalog& catalog,
                        const std::vector<double>& popularity, double avg_copies,
                        std::vector<Server>& servers, Rng& rng) const override;

  std::string name() const override { return "bsr"; }
};

}  // namespace vodsim
