#pragma once

/// \file even.h
/// \brief Even allocation: identical copy counts, popularity-oblivious.

#include "vodsim/placement/placement.h"

namespace vodsim {

/// Every video gets floor(avg_copies) copies; the fractional surplus is
/// handed to uniformly random videos ("rounding done at random", §3.2).
class EvenPlacement final : public PlacementPolicy {
 public:
  PlacementResult place(const VideoCatalog& catalog,
                        const std::vector<double>& popularity, double avg_copies,
                        std::vector<Server>& servers, Rng& rng) const override;

  std::string name() const override { return "even"; }
};

}  // namespace vodsim
