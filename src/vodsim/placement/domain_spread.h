#pragma once

/// \file domain_spread.h
/// \brief Failure-domain anti-affinity placement.
///
/// Even allocation's copy counts (same storage budget, popularity-oblivious)
/// but with a topology-aware installer: each copy of a video goes to the
/// candidate server whose zone — then rack — holds the fewest copies of that
/// video so far, so a whole-rack outage or partition can never take out
/// every replica of a title that had copies to spread. With a trivial
/// topology (1 rack, 1 zone) the domain keys tie everywhere and the
/// installer degrades to least-loaded random placement.

#include "vodsim/cluster/topology.h"
#include "vodsim/placement/placement.h"

namespace vodsim {

class DomainSpreadPlacement final : public PlacementPolicy {
 public:
  /// \param topology the failure-domain tree to spread across (copied; a
  /// trivial tree makes this an even-like policy).
  explicit DomainSpreadPlacement(Topology topology)
      : topology_(std::move(topology)) {}

  PlacementResult place(const VideoCatalog& catalog,
                        const std::vector<double>& popularity, double avg_copies,
                        std::vector<Server>& servers, Rng& rng) const override;

  std::string name() const override { return "domain_spread"; }

  const Topology& topology() const { return topology_; }

 private:
  Topology topology_;
};

}  // namespace vodsim
