#pragma once

/// \file predictive.h
/// \brief Predictive allocation: copies proportional to known popularity.

#include "vodsim/placement/placement.h"

namespace vodsim {

/// Assumes perfect knowledge of relative popularity (the paper's idealized
/// upper bound): copy counts proportional to request probability, with at
/// least one copy of every title.
class PredictivePlacement final : public PlacementPolicy {
 public:
  PlacementResult place(const VideoCatalog& catalog,
                        const std::vector<double>& popularity, double avg_copies,
                        std::vector<Server>& servers, Rng& rng) const override;

  std::string name() const override { return "predictive"; }
};

}  // namespace vodsim
