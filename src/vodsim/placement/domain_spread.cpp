#include "vodsim/placement/domain_spread.h"

#include <algorithm>
#include <numeric>

namespace vodsim {

PlacementResult DomainSpreadPlacement::place(
    const VideoCatalog& catalog, const std::vector<double>& /*popularity*/,
    double avg_copies, std::vector<Server>& servers, Rng& rng) const {
  const std::size_t n = catalog.size();
  // Copy counts are Even's, draw for draw (same budget, same surplus
  // shuffle), so even-vs-domain_spread comparisons hold replication degree
  // fixed and differ only in where the copies land.
  const int budget = placement_detail::copy_budget(n, avg_copies);
  const int base = budget / static_cast<int>(n);
  const int surplus = budget - base * static_cast<int>(n);

  std::vector<int> copies(n, base);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  for (int i = 0; i < surplus; ++i) {
    ++copies[order[static_cast<std::size_t>(i) % n]];
  }

  // Anti-affinity installer. Most-copies-first like install_replicas, so
  // heavily replicated titles still find distinct servers with space.
  PlacementResult result;
  result.copies.assign(n, 0);
  std::vector<std::size_t> video_order(n);
  std::iota(video_order.begin(), video_order.end(), 0);
  std::sort(video_order.begin(), video_order.end(),
            [&](std::size_t a, std::size_t b) { return copies[a] > copies[b]; });

  std::vector<std::size_t> server_order(servers.size());
  std::iota(server_order.begin(), server_order.end(), 0);
  std::vector<int> rack_copies(static_cast<std::size_t>(topology_.racks()));
  std::vector<int> zone_copies(static_cast<std::size_t>(topology_.zones()));

  for (std::size_t v : video_order) {
    const Video& video = catalog[static_cast<VideoId>(v)];
    const int wanted = std::min<int>(copies[v], static_cast<int>(servers.size()));
    // Shuffled candidate order randomizes every remaining tie (same-domain,
    // same-load candidates), like install_replicas' random server choice.
    rng.shuffle(server_order);
    std::fill(rack_copies.begin(), rack_copies.end(), 0);
    std::fill(zone_copies.begin(), zone_copies.end(), 0);

    int placed = 0;
    while (placed < wanted) {
      std::size_t best = servers.size();
      int best_zone = 0;
      int best_rack = 0;
      std::size_t best_load = 0;
      for (std::size_t s : server_order) {
        const Server& candidate = servers[s];
        if (candidate.holds(video.id)) continue;
        if (candidate.storage_free() + 1e-9 < video.size()) continue;
        const auto id = static_cast<ServerId>(candidate.id());
        const int zc = zone_copies[static_cast<std::size_t>(topology_.zone_of(id))];
        const int rc = rack_copies[static_cast<std::size_t>(topology_.rack_of(id))];
        const std::size_t load = candidate.replicas().size();
        const bool better =
            best == servers.size() ||
            (zc != best_zone ? zc < best_zone
                             : rc != best_rack ? rc < best_rack
                                               : load < best_load);
        if (better) {
          best = s;
          best_zone = zc;
          best_rack = rc;
          best_load = load;
        }
      }
      if (best == servers.size()) break;  // storage exhausted for this title
      if (!servers[best].add_replica(video)) break;
      const auto id = static_cast<ServerId>(servers[best].id());
      ++zone_copies[static_cast<std::size_t>(topology_.zone_of(id))];
      ++rack_copies[static_cast<std::size_t>(topology_.rack_of(id))];
      ++placed;
    }
    result.copies[v] = placed;
    result.placed_total += placed;
    result.shortfall += copies[v] - placed;
  }
  return result;
}

}  // namespace vodsim
