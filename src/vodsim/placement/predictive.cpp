#include "vodsim/placement/predictive.h"

#include <algorithm>
#include <cassert>

namespace vodsim {

PlacementResult PredictivePlacement::place(const VideoCatalog& catalog,
                                           const std::vector<double>& popularity,
                                           double avg_copies,
                                           std::vector<Server>& servers,
                                           Rng& rng) const {
  assert(popularity.size() == catalog.size());
  const int budget = placement_detail::copy_budget(catalog.size(), avg_copies);
  // A video cannot usefully have more copies than servers; the cap's
  // overflow is redistributed so the whole budget is still spent.
  const std::vector<int> copies = placement_detail::proportional_copies(
      popularity, budget, static_cast<int>(servers.size()));
  return placement_detail::install_replicas(catalog, copies, servers, rng);
}

}  // namespace vodsim
