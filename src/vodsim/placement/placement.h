#pragma once

/// \file placement.h
/// \brief Static video placement: how many copies of each title, and where.
///
/// Placement runs once, before any request arrives (paper §4.1). The copy
/// budget is `round(num_videos * avg_copies)` for every policy, so policies
/// are compared at equal storage cost. Copies of one video always land on
/// distinct servers with sufficient free storage.
///
/// Policies:
///   - Even: the same number of copies per video, fractional surplus given
///     to randomly chosen videos. Completely popularity-oblivious.
///   - Predictive: copy counts proportional to (perfectly known) popularity,
///     at least one copy each.
///   - PartialPredictive: even base, but the fractional surplus goes to the
///     predicted-most-popular titles instead of random ones — "a few extra
///     copies of the most popular videos" (§4.4).
///   - Bsr: bandwidth-to-space-ratio matching (Dan & Sitaram), a published
///     baseline: predictive copy counts, servers chosen to match each
///     video's bandwidth/space ratio to the device's remaining ratio.

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "vodsim/cluster/server.h"
#include "vodsim/cluster/video.h"
#include "vodsim/util/rng.h"

namespace vodsim {

/// Outcome of a placement run.
struct PlacementResult {
  /// Copy count actually placed for each video (>= 1 unless storage ran out).
  std::vector<int> copies;
  /// Total replicas placed.
  int placed_total = 0;
  /// Copies that could not be placed due to storage exhaustion.
  int shortfall = 0;

  int copies_of(VideoId video) const { return copies[static_cast<std::size_t>(video)]; }
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Computes copy counts and installs replicas onto \p servers.
  /// \param popularity per-video request probabilities (policies that are
  ///        popularity-oblivious ignore it).
  /// \param avg_copies mean copies per video (the storage budget).
  virtual PlacementResult place(const VideoCatalog& catalog,
                                const std::vector<double>& popularity,
                                double avg_copies, std::vector<Server>& servers,
                                Rng& rng) const = 0;

  virtual std::string name() const = 0;
};

enum class PlacementKind {
  kEven,
  kPredictive,
  kPartialPredictive,
  kBsr,
  /// Even copy counts, failure-domain anti-affinity install
  /// (placement/domain_spread.h). The factory builds it with a trivial
  /// topology; construct DomainSpreadPlacement directly to supply the real
  /// tree (the engine does).
  kDomainSpread,
};

/// Factory. PartialPredictive uses its default top-fraction; construct
/// PartialPredictivePlacement directly to tune it.
std::unique_ptr<PlacementPolicy> make_placement(PlacementKind kind);

/// Parses "even" | "predictive" | "partial" | "bsr" | "domain_spread".
PlacementKind placement_kind_from_string(const std::string& name);
std::string to_string(PlacementKind kind);

namespace placement_detail {

/// Total replica budget for a catalog at a given average copy count.
int copy_budget(std::size_t num_videos, double avg_copies);

/// Places `copies[i]` replicas of each video onto distinct random servers
/// with free storage. Returns the realized PlacementResult (shortfall > 0
/// when storage ran out). Placement order is most-copies-first so that
/// heavily replicated titles are not starved by earlier placements.
PlacementResult install_replicas(const VideoCatalog& catalog,
                                 const std::vector<int>& copies,
                                 std::vector<Server>& servers, Rng& rng);

/// Largest-remainder apportionment of \p budget copies proportional to
/// \p weights, with a minimum of one copy per video and at most
/// \p max_copies per video (copies clipped by the cap are redistributed
/// D'Hondt-style to uncapped videos, so the whole budget is spent whenever
/// budget <= n * max_copies). Requires budget >= weights.size().
std::vector<int> proportional_copies(const std::vector<double>& weights, int budget,
                                     int max_copies = std::numeric_limits<int>::max());

}  // namespace placement_detail

}  // namespace vodsim
