#include "vodsim/placement/even.h"

#include <numeric>

namespace vodsim {

PlacementResult EvenPlacement::place(const VideoCatalog& catalog,
                                     const std::vector<double>& /*popularity*/,
                                     double avg_copies, std::vector<Server>& servers,
                                     Rng& rng) const {
  const std::size_t n = catalog.size();
  const int budget = placement_detail::copy_budget(n, avg_copies);
  const int base = budget / static_cast<int>(n);
  int surplus = budget - base * static_cast<int>(n);

  std::vector<int> copies(n, base);
  // Hand the surplus copies to distinct random videos.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  for (int i = 0; i < surplus; ++i) {
    ++copies[order[static_cast<std::size_t>(i) % n]];
  }
  return placement_detail::install_replicas(catalog, copies, servers, rng);
}

}  // namespace vodsim
