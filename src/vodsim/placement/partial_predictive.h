#pragma once

/// \file partial_predictive.h
/// \brief Mildly skewed allocation: even base + extras on the popular head.
///
/// Models the practical middle ground of §4.4: you can identify *which*
/// titles are likely popular without knowing *how* popular. Same storage
/// budget as Even; only the destination of the fractional surplus differs
/// (predicted-most-popular instead of random), optionally boosted by
/// shifting a small fraction of the budget from the tail to the head.

#include "vodsim/placement/placement.h"

namespace vodsim {

class PartialPredictivePlacement final : public PlacementPolicy {
 public:
  /// \param head_fraction fraction of the catalog treated as "the popular
  ///        head" that receives the surplus copies (default 10%).
  /// \param tail_shift fraction of the total budget moved from the least
  ///        popular titles (never below 1 copy) to the head (default 5%).
  explicit PartialPredictivePlacement(double head_fraction = 0.10,
                                      double tail_shift = 0.05);

  PlacementResult place(const VideoCatalog& catalog,
                        const std::vector<double>& popularity, double avg_copies,
                        std::vector<Server>& servers, Rng& rng) const override;

  std::string name() const override { return "partial"; }

 private:
  double head_fraction_;
  double tail_shift_;
};

}  // namespace vodsim
