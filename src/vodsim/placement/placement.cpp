#include "vodsim/placement/placement.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "vodsim/placement/bsr.h"
#include "vodsim/placement/domain_spread.h"
#include "vodsim/placement/even.h"
#include "vodsim/placement/partial_predictive.h"
#include "vodsim/placement/predictive.h"

namespace vodsim {

std::unique_ptr<PlacementPolicy> make_placement(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kEven:
      return std::make_unique<EvenPlacement>();
    case PlacementKind::kPredictive:
      return std::make_unique<PredictivePlacement>();
    case PlacementKind::kPartialPredictive:
      return std::make_unique<PartialPredictivePlacement>();
    case PlacementKind::kBsr:
      return std::make_unique<BsrPlacement>();
    case PlacementKind::kDomainSpread:
      return std::make_unique<DomainSpreadPlacement>(Topology{});
  }
  throw std::invalid_argument("unknown PlacementKind");
}

PlacementKind placement_kind_from_string(const std::string& name) {
  if (name == "even") return PlacementKind::kEven;
  if (name == "predictive") return PlacementKind::kPredictive;
  if (name == "partial") return PlacementKind::kPartialPredictive;
  if (name == "bsr") return PlacementKind::kBsr;
  if (name == "domain_spread") return PlacementKind::kDomainSpread;
  throw std::invalid_argument("unknown placement: " + name);
}

std::string to_string(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kEven:
      return "even";
    case PlacementKind::kPredictive:
      return "predictive";
    case PlacementKind::kPartialPredictive:
      return "partial";
    case PlacementKind::kBsr:
      return "bsr";
    case PlacementKind::kDomainSpread:
      return "domain_spread";
  }
  return "?";
}

namespace placement_detail {

int copy_budget(std::size_t num_videos, double avg_copies) {
  assert(avg_copies >= 1.0);
  return static_cast<int>(
      std::llround(static_cast<double>(num_videos) * avg_copies));
}

PlacementResult install_replicas(const VideoCatalog& catalog,
                                 const std::vector<int>& copies,
                                 std::vector<Server>& servers, Rng& rng) {
  assert(copies.size() == catalog.size());
  PlacementResult result;
  result.copies.assign(catalog.size(), 0);

  // Place heavily replicated videos first so they can still find enough
  // distinct servers with space.
  std::vector<std::size_t> order(catalog.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return copies[a] > copies[b]; });

  std::vector<std::size_t> server_order(servers.size());
  std::iota(server_order.begin(), server_order.end(), 0);

  for (std::size_t v : order) {
    const Video& video = catalog[static_cast<VideoId>(v)];
    const int wanted = std::min<int>(copies[v], static_cast<int>(servers.size()));
    rng.shuffle(server_order);
    int placed = 0;
    for (std::size_t s : server_order) {
      if (placed >= wanted) break;
      if (servers[s].add_replica(video)) ++placed;
    }
    result.copies[v] = placed;
    result.placed_total += placed;
    result.shortfall += copies[v] - placed;
  }
  return result;
}

std::vector<int> proportional_copies(const std::vector<double>& weights, int budget,
                                     int max_copies) {
  const std::size_t n = weights.size();
  assert(budget >= static_cast<int>(n));
  assert(max_copies >= 1);
  const double total_weight = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total_weight > 0.0);

  // Largest-remainder apportionment with a floor of one copy. First give
  // everyone one copy; apportion the rest proportionally.
  std::vector<int> copies(n, 1);
  int remaining = budget - static_cast<int>(n);

  std::vector<double> quota(n);
  std::vector<int> floors(n);
  int floor_sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    quota[i] = weights[i] / total_weight * static_cast<double>(remaining);
    floors[i] = static_cast<int>(std::floor(quota[i]));
    floor_sum += floors[i];
    copies[i] += floors[i];
  }
  int leftovers = remaining - floor_sum;

  std::vector<std::size_t> by_remainder(n);
  std::iota(by_remainder.begin(), by_remainder.end(), 0);
  std::sort(by_remainder.begin(), by_remainder.end(), [&](std::size_t a, std::size_t b) {
    const double ra = quota[a] - std::floor(quota[a]);
    const double rb = quota[b] - std::floor(quota[b]);
    if (ra != rb) return ra > rb;
    return a < b;
  });
  for (int i = 0; i < leftovers; ++i) {
    ++copies[by_remainder[static_cast<std::size_t>(i)]];
  }

  // Clip at the cap and redistribute the overflow D'Hondt-style: each freed
  // copy goes to the uncapped video with the highest weight-per-copy, so
  // proportionality is preserved as closely as the cap allows.
  long overflow = 0;
  for (int& c : copies) {
    if (c > max_copies) {
      overflow += c - max_copies;
      c = max_copies;
    }
  }
  while (overflow > 0) {
    double best_score = -1.0;
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (copies[i] >= max_copies) continue;
      const double score = weights[i] / static_cast<double>(copies[i]);
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    if (best == n) break;  // everything capped: budget > n * max_copies
    ++copies[best];
    --overflow;
  }
  return copies;
}

}  // namespace placement_detail

}  // namespace vodsim
