#include "vodsim/placement/partial_predictive.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace vodsim {

PartialPredictivePlacement::PartialPredictivePlacement(double head_fraction,
                                                       double tail_shift)
    : head_fraction_(head_fraction), tail_shift_(tail_shift) {
  assert(head_fraction > 0.0 && head_fraction <= 1.0);
  assert(tail_shift >= 0.0 && tail_shift < 1.0);
}

PlacementResult PartialPredictivePlacement::place(
    const VideoCatalog& catalog, const std::vector<double>& popularity,
    double avg_copies, std::vector<Server>& servers, Rng& rng) const {
  assert(popularity.size() == catalog.size());
  const std::size_t n = catalog.size();
  const int budget = placement_detail::copy_budget(n, avg_copies);
  const int base = budget / static_cast<int>(n);
  int surplus = budget - base * static_cast<int>(n);

  // Rank videos by predicted popularity (descending).
  std::vector<std::size_t> rank(n);
  std::iota(rank.begin(), rank.end(), 0);
  std::sort(rank.begin(), rank.end(), [&](std::size_t a, std::size_t b) {
    if (popularity[a] != popularity[b]) return popularity[a] > popularity[b];
    return a < b;
  });

  std::vector<int> copies(n, base);

  // Shift a small slice of the budget from the tail (down to 1 copy) toward
  // the head.
  int shift = static_cast<int>(std::floor(tail_shift_ * static_cast<double>(budget)));
  for (std::size_t i = n; i-- > 0 && shift > 0;) {
    const std::size_t v = rank[i];
    if (copies[v] > 1) {
      --copies[v];
      --shift;
      ++surplus;
    }
  }

  // All surplus copies go to the predicted head, round-robin.
  const auto head =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(
                                   head_fraction_ * static_cast<double>(n))));
  const int max_copies = static_cast<int>(servers.size());
  std::size_t cursor = 0;
  while (surplus > 0) {
    const std::size_t v = rank[cursor % head];
    if (copies[v] < max_copies) {
      ++copies[v];
      --surplus;
    }
    ++cursor;
    if (cursor > head * static_cast<std::size_t>(max_copies) + n) break;  // saturated
  }

  return placement_detail::install_replicas(catalog, copies, servers, rng);
}

}  // namespace vodsim
