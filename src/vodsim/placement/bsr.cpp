#include "vodsim/placement/bsr.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace vodsim {

PlacementResult BsrPlacement::place(const VideoCatalog& catalog,
                                    const std::vector<double>& popularity,
                                    double avg_copies, std::vector<Server>& servers,
                                    Rng& rng) const {
  assert(popularity.size() == catalog.size());
  const std::size_t n = catalog.size();
  const int budget = placement_detail::copy_budget(n, avg_copies);
  const std::vector<int> copies = placement_detail::proportional_copies(
      popularity, budget, static_cast<int>(servers.size()));

  // Expected long-run bandwidth demand per copy of video v, in arbitrary
  // units (popularity x size is proportional to demanded Mb/s when the
  // arrival rate is fixed). Spread across its copies.
  std::vector<double> demand_per_copy(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    const double demand = popularity[v] * catalog[static_cast<VideoId>(v)].size();
    demand_per_copy[v] = demand / static_cast<double>(std::max(copies[v], 1));
  }
  // Normalize demand so the totals match aggregate server bandwidth: then a
  // server's "remaining bandwidth" budget is comparable to video demand.
  double total_demand = 0.0;
  double total_bandwidth = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    total_demand += demand_per_copy[v] * static_cast<double>(copies[v]);
  }
  for (const Server& s : servers) total_bandwidth += s.bandwidth();
  const double scale = total_demand > 0.0 ? total_bandwidth / total_demand : 1.0;
  for (double& d : demand_per_copy) d *= scale;

  PlacementResult result;
  result.copies.assign(n, 0);

  std::vector<double> bandwidth_left(servers.size());
  for (std::size_t s = 0; s < servers.size(); ++s) {
    bandwidth_left[s] = servers[s].bandwidth();
  }

  // Hot titles first: they are the hardest to fit ratio-wise.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return demand_per_copy[a] > demand_per_copy[b];
  });

  for (std::size_t v : order) {
    const Video& video = catalog[static_cast<VideoId>(v)];
    const double video_bsr = demand_per_copy[v] / std::max(video.size(), 1.0);
    int placed = 0;
    for (int c = 0; c < copies[v]; ++c) {
      // Pick the feasible server whose remaining BSR is closest to the
      // video's; random tie-break via a tiny jitter.
      double best_score = std::numeric_limits<double>::infinity();
      std::size_t best = servers.size();
      for (std::size_t s = 0; s < servers.size(); ++s) {
        if (servers[s].holds(video.id)) continue;
        if (video.size() > servers[s].storage_free()) continue;
        const double space_left = std::max(servers[s].storage_free(), 1.0);
        const double server_bsr = std::max(bandwidth_left[s], 0.0) / space_left;
        const double score =
            std::fabs(std::log((server_bsr + 1e-12) / (video_bsr + 1e-12))) +
            rng.uniform() * 1e-9;
        if (score < best_score) {
          best_score = score;
          best = s;
        }
      }
      if (best == servers.size()) break;  // nowhere to put it
      const bool ok = servers[best].add_replica(video);
      assert(ok);
      (void)ok;
      bandwidth_left[best] -= demand_per_copy[v];
      ++placed;
    }
    result.copies[v] = placed;
    result.placed_total += placed;
    result.shortfall += copies[v] - placed;
  }
  return result;
}

}  // namespace vodsim
