#pragma once

/// \file accumulator.h
/// \brief Online mean/variance accumulation and multi-trial summaries.
///
/// Every figure data point in the paper is the mean of 5 independent trials;
/// we report mean ± a Student-t 95% confidence half-width over trials.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace vodsim {

/// Welford online accumulator: numerically stable mean/variance in one pass.
class Accumulator {
 public:
  void add(double value);

  /// Merges another accumulator (Chan et al. parallel combination).
  void merge(const Accumulator& other);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }

  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Half-width of the two-sided confidence interval at the given level
  /// using the Student-t distribution with count-1 degrees of freedom.
  /// Returns 0 for fewer than two samples. \p level in (0, 1), e.g. 0.95.
  double ci_half_width(double level = 0.95) const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Value ± 95% CI formatted for tables, e.g. "0.8732 ±0.0051".
std::string format_mean_ci(const Accumulator& acc, int precision = 4);

}  // namespace vodsim
