#include "vodsim/stats/batch_means.h"

#include <cassert>

namespace vodsim {

BatchMeans::BatchMeans(std::size_t batch_size, std::size_t warmup_observations)
    : batch_size_(batch_size), warmup_remaining_(warmup_observations) {
  assert(batch_size >= 1);
}

void BatchMeans::add(double value) {
  ++observations_;
  if (warmup_remaining_ > 0) {
    --warmup_remaining_;
    return;
  }
  current_sum_ += value;
  if (++current_count_ == batch_size_) {
    const double batch_mean = current_sum_ / static_cast<double>(batch_size_);
    batches_.add(batch_mean);
    batch_values_.push_back(batch_mean);
    current_sum_ = 0.0;
    current_count_ = 0;
  }
}

double BatchMeans::batch_lag1_autocorrelation() const {
  const std::size_t n = batch_values_.size();
  if (n < 3) return 0.0;
  const double mean = batches_.mean();
  double numerator = 0.0;
  double denominator = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double di = batch_values_[i] - mean;
    denominator += di * di;
    if (i + 1 < n) numerator += di * (batch_values_[i + 1] - mean);
  }
  if (denominator <= 0.0) return 0.0;
  return numerator / denominator;
}

}  // namespace vodsim
