#pragma once

/// \file time_weighted.h
/// \brief Time-weighted average of a piecewise-constant signal.
///
/// Tracks quantities like "number of active streams on a server" whose mean
/// must be weighted by how long each value was held, optionally restricted
/// to a measurement window [window_start, window_end].

#include "vodsim/util/units.h"

namespace vodsim {

class TimeWeighted {
 public:
  /// \param window_start samples before this time are ignored.
  /// \param window_end samples after this time are ignored (inf = open).
  explicit TimeWeighted(Seconds window_start = 0.0,
                        Seconds window_end = 1e300);

  /// Records that the signal held \p value from the previous update time to
  /// \p now, then switches to tracking the next segment. The first call
  /// establishes the starting time; pass the initial value with it.
  void update(Seconds now, double value);

  /// Closes the current segment at \p now without changing the value.
  void flush(Seconds now);

  /// Time-weighted mean over the observed, window-clipped duration.
  double mean() const;

  /// Total window-clipped observation time.
  Seconds observed() const { return observed_; }

  double current_value() const { return value_; }

 private:
  void accumulate(Seconds from, Seconds to);

  Seconds window_start_;
  Seconds window_end_;
  Seconds last_time_ = 0.0;
  double value_ = 0.0;
  bool started_ = false;
  double weighted_sum_ = 0.0;
  Seconds observed_ = 0.0;
};

}  // namespace vodsim
