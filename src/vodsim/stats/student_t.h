#pragma once

/// \file student_t.h
/// \brief Student-t quantiles for confidence intervals.

namespace vodsim {

/// Quantile (inverse CDF) of the Student-t distribution with \p dof degrees
/// of freedom at probability \p p in (0, 1). Accurate to ~1e-8 via
/// Cornish-Fisher-free root refinement of the incomplete-beta CDF.
/// dof >= 1 required.
double student_t_quantile(int dof, double p);

/// CDF of the Student-t distribution.
double student_t_cdf(int dof, double x);

/// Regularized incomplete beta function I_x(a, b) (continued fraction,
/// Lentz's algorithm). Exposed for tests.
double incomplete_beta(double a, double b, double x);

}  // namespace vodsim
