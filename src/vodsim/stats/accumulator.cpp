#include "vodsim/stats/accumulator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "vodsim/stats/student_t.h"

namespace vodsim {

void Accumulator::add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::ci_half_width(double level) const {
  if (count_ < 2) return 0.0;
  const double t = student_t_quantile(static_cast<int>(count_ - 1),
                                      0.5 + level / 2.0);
  return t * stddev() / std::sqrt(static_cast<double>(count_));
}

std::string format_mean_ci(const Accumulator& acc, int precision) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f ±%.*f", precision, acc.mean(), precision,
                acc.ci_half_width());
  return buf;
}

}  // namespace vodsim
