#include "vodsim/stats/student_t.h"

#include <cassert>
#include <cmath>

namespace vodsim {

namespace {

/// Continued-fraction core of the incomplete beta (Numerical-Recipes-style
/// modified Lentz iteration).
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  assert(a > 0.0 && b > 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double student_t_cdf(int dof, double x) {
  assert(dof >= 1);
  const double v = static_cast<double>(dof);
  const double ib = incomplete_beta(v / 2.0, 0.5, v / (v + x * x));
  return x >= 0.0 ? 1.0 - 0.5 * ib : 0.5 * ib;
}

double student_t_quantile(int dof, double p) {
  assert(dof >= 1);
  assert(p > 0.0 && p < 1.0);
  if (p == 0.5) return 0.0;
  // Bisection on the CDF: monotone, so robust; plenty fast for CI use.
  double lo = -1.0;
  double hi = 1.0;
  while (student_t_cdf(dof, lo) > p) lo *= 2.0;
  while (student_t_cdf(dof, hi) < p) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (hi - lo < 1e-12 * std::max(1.0, std::fabs(mid))) break;
    if (student_t_cdf(dof, mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace vodsim
