#include "vodsim/stats/time_weighted.h"

#include <algorithm>

namespace vodsim {

TimeWeighted::TimeWeighted(Seconds window_start, Seconds window_end)
    : window_start_(window_start), window_end_(window_end) {}

void TimeWeighted::accumulate(Seconds from, Seconds to) {
  const Seconds lo = std::max(from, window_start_);
  const Seconds hi = std::min(to, window_end_);
  if (hi <= lo) return;
  weighted_sum_ += value_ * (hi - lo);
  observed_ += hi - lo;
}

void TimeWeighted::update(Seconds now, double value) {
  if (started_) {
    accumulate(last_time_, now);
  } else {
    started_ = true;
  }
  last_time_ = now;
  value_ = value;
}

void TimeWeighted::flush(Seconds now) {
  if (!started_) {
    started_ = true;
    last_time_ = now;
    return;
  }
  accumulate(last_time_, now);
  last_time_ = now;
}

double TimeWeighted::mean() const {
  if (observed_ <= 0.0) return 0.0;
  return weighted_sum_ / observed_;
}

}  // namespace vodsim
