#pragma once

/// \file histogram.h
/// \brief Fixed-bin histogram with overflow/underflow tracking.
///
/// Used to study distributions of per-request quantities (buffer occupancy
/// at migration time, transmission speed-up factors, migration counts).

#include <cstdint>
#include <string>
#include <vector>

namespace vodsim {

class Histogram {
 public:
  /// \param lo lower edge of first bin, \param hi upper edge of last bin,
  /// \param bins number of equal-width bins (>= 1). Requires lo < hi.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value, std::uint64_t weight = 1);

  std::uint64_t total_count() const { return total_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_[i]; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  /// Approximate quantile from bin midpoints; q in [0, 1].
  double quantile(double q) const;

  /// Multi-line ASCII rendering (one row per non-empty bin).
  std::string to_string(std::size_t max_bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace vodsim
