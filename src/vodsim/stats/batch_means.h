#pragma once

/// \file batch_means.h
/// \brief Batch-means output analysis for single long runs.
///
/// The paper averages 5 independent replications; an alternative standard
/// technique for steady-state DES output is the method of batch means: one
/// long run is cut into k contiguous batches, and the batch averages — far
/// less autocorrelated than raw observations — feed a Student-t confidence
/// interval. Useful when replication is expensive (e.g., REPRO_FULL runs)
/// or when studying one seed's trajectory.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "vodsim/stats/accumulator.h"

namespace vodsim {

class BatchMeans {
 public:
  /// \param batch_size observations per batch (>= 1).
  /// \param warmup_observations dropped before batching begins.
  explicit BatchMeans(std::size_t batch_size, std::size_t warmup_observations = 0);

  /// Feeds one observation.
  void add(double value);

  /// Number of *complete* batches so far.
  std::size_t batch_count() const { return batches_.count(); }

  /// Observations consumed (including warmup and the partial tail batch).
  std::uint64_t observations() const { return observations_; }

  /// Mean over complete batches (== mean of the batched observations).
  double mean() const { return batches_.mean(); }

  /// Student-t CI half-width over batch means. Requires >= 2 batches.
  double ci_half_width(double level = 0.95) const {
    return batches_.ci_half_width(level);
  }

  /// Lag-1 autocorrelation of the batch means — the standard diagnostic:
  /// near zero means the batches are long enough to treat as independent;
  /// large positive values mean the CI is optimistic and the batch size
  /// should grow. Returns 0 with fewer than 3 batches.
  double batch_lag1_autocorrelation() const;

  /// Underlying accumulator over batch means.
  const Accumulator& batches() const { return batches_; }

 private:
  std::size_t batch_size_;
  std::size_t warmup_remaining_;
  std::uint64_t observations_ = 0;
  double current_sum_ = 0.0;
  std::size_t current_count_ = 0;
  Accumulator batches_;
  std::vector<double> batch_values_;  // kept for the autocorrelation diagnostic
};

}  // namespace vodsim
