#include "vodsim/stats/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace vodsim {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)) {
  assert(lo < hi);
  assert(bins >= 1);
  counts_.assign(bins, 0);
}

void Histogram::add(double value, std::uint64_t weight) {
  total_ += weight;
  if (value < lo_) {
    underflow_ += weight;
    return;
  }
  if (value >= hi_) {
    // The top edge itself belongs to the last bin, everything above
    // overflows.
    if (value == hi_) {
      counts_.back() += weight;
    } else {
      overflow_ += weight;
    }
    return;
  }
  auto index = static_cast<std::size_t>((value - lo_) / width_);
  index = std::min(index, counts_.size() - 1);
  counts_[index] += weight;
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

double Histogram::quantile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cumulative = static_cast<double>(underflow_);
  if (cumulative >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += static_cast<double>(counts_[i]);
    if (cumulative >= target) return 0.5 * (bin_lo(i) + bin_hi(i));
  }
  return hi_;
}

std::string Histogram::to_string(std::size_t max_bar_width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar = static_cast<std::size_t>(
        std::llround(static_cast<double>(counts_[i]) /
                     static_cast<double>(peak) * static_cast<double>(max_bar_width)));
    std::snprintf(line, sizeof(line), "[%10.3f, %10.3f) %10llu %s\n", bin_lo(i),
                  bin_hi(i), static_cast<unsigned long long>(counts_[i]),
                  std::string(std::max<std::size_t>(bar, 1), '#').c_str());
    out += line;
  }
  if (underflow_ != 0) {
    std::snprintf(line, sizeof(line), "underflow: %llu\n",
                  static_cast<unsigned long long>(underflow_));
    out += line;
  }
  if (overflow_ != 0) {
    std::snprintf(line, sizeof(line), "overflow: %llu\n",
                  static_cast<unsigned long long>(overflow_));
    out += line;
  }
  return out;
}

}  // namespace vodsim
