#pragma once

/// \file invariant_auditor.h
/// \brief Runtime verification of the fluid model's physical invariants.
///
/// The paper's results rest on properties the engine is supposed to
/// maintain by construction: minimum-flow schedulers never starve a stream,
/// a server never transmits beyond its link, staging buffers stay within
/// [0, capacity], admission never over-commits a server (outside the
/// buffer-aware extension), and every megabit the metrics count was
/// actually delivered to some client. The auditor re-derives each of these
/// from raw cluster state after *every* executed event, independently of
/// the bookkeeping being audited — the same role the paper's Erlang-B
/// cross-check (E9) plays for rejection ratios.
///
/// Enabled via SimulationConfig::paranoid or the VODSIM_PARANOID
/// environment variable. The auditor only reads; a run with it attached is
/// bit-identical to one without (pinned by determinism_test). On a violated
/// invariant it throws AuditFailure with full context — simulation time,
/// event count, the server/request involved and the offending values.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "vodsim/util/units.h"

namespace vodsim {

class Request;
class Server;
class VodSimulation;

/// A physical invariant of the fluid model was violated. Deliberately not
/// std::runtime_error: an audit failure is a logic bug in the engine (or
/// the auditor), never an environmental condition.
class AuditFailure : public std::logic_error {
 public:
  explicit AuditFailure(const std::string& what) : std::logic_error(what) {}
};

class InvariantAuditor {
 public:
  /// \param simulation must outlive the auditor. The world must already be
  ///        built (servers sized); the auditor snapshots per-server epochs.
  explicit InvariantAuditor(const VodSimulation& simulation);

  /// Validates the full cluster state; the engine calls this after every
  /// executed event. Throws AuditFailure on the first violation.
  void on_event();

  /// Observes one integrated transmission interval: \p request transmitted
  /// at its current allocation over [t0, t1]. The engine calls this from
  /// advance_and_account, *before* the fluid state is advanced. Accumulates
  /// the independently-integrated delivery for finalize()'s reconciliation.
  void on_advance(const Request& request, Seconds t0, Seconds t1);

  /// End-of-run reconciliation (engine calls it after the final flush):
  /// the flow integral observed via on_advance must match the sum of
  /// per-request delivered() bits, metered transmission cannot exceed the
  /// physical flow, and utilization cannot exceed 1.
  void finalize() const;

  std::uint64_t events_audited() const { return events_audited_; }
  std::uint64_t checks_run() const { return checks_run_; }

  /// What the active policies promise about a server's state; selects which
  /// invariants apply.
  struct ServerExpectations {
    /// The scheduler guarantees every active request its minimum rate.
    bool minimum_flow = true;
    /// Admission keeps nominal commitments within the link (false only
    /// under buffer-aware admission, which over-commits by design).
    bool enforce_capacity = true;
  };

  // --- individual checks ------------------------------------------------
  // Exposed so tests can probe them against fabricated states (proving the
  // auditor is not vacuous); the engine only calls them through on_event().

  /// Validates one server: commitment bookkeeping vs. the active set, link
  /// capacity, reservation sanity, availability, and every active request
  /// via check_request (plus the minimum-flow bound when promised).
  static void check_server(const Server& server,
                           const ServerExpectations& expect);

  /// Validates one active request against its hosting server: lifecycle
  /// state, back-pointer and active-list index, allocation within
  /// [0, receive cap], buffer level within [0, capacity], remaining >= 0.
  static void check_request(const Request& request, const Server& server,
                            std::size_t index_on_server);

  /// Absolute tolerance on bandwidth sums (Mb/s) and buffer levels (Mb):
  /// generous against accumulated float error, far below one stream's rate.
  static constexpr double kTolerance = 1e-6;

 private:
  const VodSimulation& sim_;
  std::uint64_t events_audited_ = 0;
  mutable std::uint64_t checks_run_ = 0;
  Seconds last_event_time_ = 0.0;
  std::vector<std::uint64_t> last_epochs_;
  /// Per-server reachability as of the last audited event. on_advance runs
  /// *before* the current event mutates state, so an interval's flow is
  /// judged against the reachability that held while it was streaming —
  /// this is how "no bits cross a partition" is enforced without racing the
  /// partition-begin event that sheds the victims.
  std::vector<std::uint8_t> last_reachable_;
  /// Integral of allocation * dt over every advanced interval (megabits) —
  /// the auditor's own account of delivered flow.
  double observed_flow_ = 0.0;
  std::uint64_t intervals_observed_ = 0;
};

}  // namespace vodsim
