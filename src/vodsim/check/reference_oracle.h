#pragma once

/// \file reference_oracle.h
/// \brief Naive reference simulator for differential testing of the engine.
///
/// The production engine earns its speed from machinery that is easy to get
/// subtly wrong: a slab event queue with lazy cancellation, a dirty-epoch
/// recompute memo, reused scratch buffers. The oracle re-implements the same
/// fluid semantics with none of it — an outer fixed timestep for periodic
/// self-checks, and within each step a brute-force rescan of every pending
/// transition (no event queue, no memo, fresh scheduler scratch per
/// reallocation). On small scenarios the two must agree: event counts
/// exactly, fluid integrals to float accumulation error.
///
/// Faithfulness requires mirroring *where* the engine observes state, not
/// just what it computes. Admission and victim selection read fluid state
/// that is advanced lazily per server, so the oracle advances lazily at the
/// same call sites. Likewise, predicted transition times (tx-complete,
/// buffer-full, buffer-low) are computed once per allocation change and
/// frozen until the next one — that caching is engine *semantics*, not an
/// optimization: re-deriving the times from advanced state gives answers
/// off by float ulps, and discrete decisions downstream (victim sorts over
/// exactly-tied buffer levels, the intermittent urgency latch at its
/// threshold) amplify an ulp into materially different runs. The oracle
/// therefore caches the same times at the same instants, but still scans
/// them brute-force instead of keeping a queue. Two features are excluded
/// (`oracle_supports`): interactivity, whose RNG draw order depends on
/// event interleaving the oracle does not reproduce, and buffer-aware
/// admission, whose feasibility test reads stale buffer levels that only
/// the engine's exact advance pattern produces.

#include <cstdint>
#include <string>

#include "vodsim/engine/config.h"
#include "vodsim/workload/trace.h"

namespace vodsim {

class VodSimulation;

/// Outcomes of one oracle run, aligned with the engine's Metrics plus the
/// engine-level continuity counter.
struct OracleResult {
  std::uint64_t arrivals = 0;
  std::uint64_t accepts = 0;
  std::uint64_t rejects = 0;
  std::uint64_t migration_steps = 0;
  std::uint64_t completions = 0;
  std::uint64_t drops = 0;
  std::uint64_t underflow_events = 0;
  std::uint64_t replications = 0;
  std::uint64_t continuity_violations = 0;
  double utilization = 0.0;
  double rejection_ratio = 0.0;
  Megabits transmitted = 0.0;
  Megabits underflow_megabits = 0.0;
};

/// True when the oracle can faithfully replay \p config (see file comment
/// for the exclusions).
bool oracle_supports(const SimulationConfig& config);

/// The arrival trace the engine would generate for \p config — same seed
/// derivation (SeedPlan), recorded up to config.duration. Feed the same
/// trace to both the engine (trace constructor) and run_reference so the
/// two see identical workloads.
RequestTrace engine_trace(const SimulationConfig& config);

/// Runs the naive reference simulation of \p config over \p trace.
/// \param max_step outer fixed-timestep granularity (seconds); transitions
///        within a step are still resolved exactly, the grid only paces the
///        oracle's own sanity sweeps.
/// Throws std::invalid_argument when !oracle_supports(config), and
/// std::logic_error if the oracle's internal sanity sweep fails.
OracleResult run_reference(const SimulationConfig& config,
                           const RequestTrace& trace, Seconds max_step = 1.0);

/// Compares a finished engine run against an oracle run of the same config
/// and trace. Returns an empty string on agreement, otherwise a diagnostic
/// naming every mismatched quantity. Counts must match exactly; fluid
/// integrals (utilization, transmitted megabits) to accumulation tolerance.
std::string compare_against_engine(const VodSimulation& engine,
                                   const OracleResult& oracle);

}  // namespace vodsim
