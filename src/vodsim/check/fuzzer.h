#pragma once

/// \file fuzzer.h
/// \brief Randomized differential testing of the simulation engine.
///
/// The fuzzer samples small randomized SimulationConfigs across the whole
/// feature cross-product — schedulers × placement × migration × failures ×
/// replication × drift × interactivity × heterogeneity — and runs each one
/// through two independent harnesses:
///
///   1. the engine with the invariant auditor attached (every scenario), and
///   2. the naive reference oracle (scenarios within `oracle_supports`),
///      diffing end-of-run counters and fluid integrals.
///
/// On a failure, `shrink_scenario` greedily minimizes the configuration —
/// disabling features, halving sizes — while the failure reproduces, and
/// `to_gtest_case` renders the survivor as a ready-to-paste regression test.
///
/// Scenarios are deliberately tiny (a few servers, minutes of simulated
/// time): the oracle is quadratic-ish by design, and small worlds shrink
/// better. Coverage comes from the count of scenarios, not their size.

#include <cstdint>
#include <string>
#include <vector>

#include "vodsim/engine/config.h"
#include "vodsim/util/rng.h"

namespace vodsim {

/// Outcome of one fuzz scenario.
struct FuzzResult {
  bool passed = true;
  /// True when the scenario was also cross-checked against the reference
  /// oracle (i.e. oracle_supports() held), not just audited.
  bool oracle_checked = false;
  /// True when the scenario was additionally re-run under fast_math and
  /// differentially compared against the exact engine (every passing
  /// scenario — both modes carry the auditor).
  bool fast_checked = false;
  /// True when the scenario was additionally re-run on the sharded engine
  /// (config.shards when drawn > 1, else one shard per server) and
  /// differentially compared against the single-queue run (every passing
  /// scenario; the single-mode leg carries the auditor).
  bool shard_checked = false;
  /// Empty when passed; otherwise the auditor's message, the oracle diff,
  /// the fast-vs-exact diff, or the shard-vs-single diff.
  std::string failure;
};

/// Samples one randomized tiny scenario. Always returns a configuration
/// that passes SimulationConfig::validate(). Consumes a deterministic
/// number of draws per call, so a fixed \p rng seed yields a fixed
/// scenario sequence.
SimulationConfig random_scenario(Rng& rng);

/// Samples one randomized scenario with the fault subsystem forced on:
/// crashes plus at least one partial-fault feature (brownout or retry),
/// with correlated groups and repair re-replication mixed in. The chaos
/// smoke in CI runs these under sanitizers with the auditor attached.
SimulationConfig random_fault_scenario(Rng& rng);

/// Hand-written pathological scenarios seeding every fuzz run: threshold
/// chattering under intermittent scheduling, reschedule-heavy tiny-buffer
/// churn, deep migration chains, failure/repair churn with replication,
/// buffer-aware overcommit, brownout shed churn, crash/retry storms on a
/// single-copy catalog, and correlated group failures with repair.
std::vector<SimulationConfig> pathology_corpus();

/// Runs \p config through the engine with the auditor forced on, and — when
/// the oracle supports it — diffs the run against the reference oracle.
/// Every scenario (chaos configs included) is then re-run with
/// `fast_math = true` on the same arrival trace and diffed against the
/// exact run via compare_fast_vs_exact — the dual-exactness contract's
/// enforcement point — and finally re-run on the *sharded* engine
/// (config.shards when > 1, else one shard per server so every
/// cross-server interaction crosses a shard boundary) and diffed against
/// the single-queue run with the same discipline: discrete counters exact,
/// fluid integrals within the oracle tolerance. Exceptions (AuditFailure
/// included) are captured into the result, never propagated.
FuzzResult run_scenario(const SimulationConfig& config);

class VodSimulation;

/// Diffs a fast-math run against the exact run of the same configuration
/// and arrival trace, with the reference oracle's tolerance discipline:
/// discrete counters (arrivals, accepts, rejects, migrations, completions,
/// drops, underflow events, replications, continuity violations, pauses)
/// must match exactly — fast mode shares the per-stream formulas, so
/// trajectories and every discrete decision coincide — while fluid
/// integrals (transmitted, utilization, rejection ratio, underflow
/// megabits) may differ within 1e-9 relative (metering summation order).
/// Returns an empty string on agreement, a diff description otherwise.
std::string compare_fast_vs_exact(const VodSimulation& exact,
                                  const VodSimulation& fast);

/// Greedily minimizes a failing \p config: repeatedly applies shrinking
/// transforms (disable a feature, halve a size, drop a policy back to its
/// default) and keeps each one that still fails, until a fixpoint. Returns
/// \p config unchanged if it does not fail in the first place.
SimulationConfig shrink_scenario(SimulationConfig config);

/// Re-clamps every server-indexed knob to the current num_servers: the
/// shard count, the correlated group size, and the topology tree (racks <=
/// num_servers, zones <= racks). The shrinker's num_servers-halving
/// transform calls this so a shrunk reproducer never references servers
/// beyond the cluster it declares — without the clamp a halved chaos
/// scenario could emit correlated groups or rack spans past server_count.
/// Exposed so the clamp itself is regression-testable.
void clamp_to_servers(SimulationConfig& config);

/// Renders \p config as a complete gtest TEST(FuzzRegression, <name>) case
/// that rebuilds the exact configuration (every field, %.17g doubles) and
/// asserts run_scenario passes. Paste into tests/check_fuzz_test.cpp.
std::string to_gtest_case(const SimulationConfig& config,
                          const std::string& name);

}  // namespace vodsim
