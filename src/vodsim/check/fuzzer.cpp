#include "vodsim/check/fuzzer.h"

#include <cmath>
#include <functional>
#include <iomanip>
#include <limits>
#include <sstream>

#include "vodsim/check/reference_oracle.h"
#include "vodsim/engine/vod_simulation.h"

namespace vodsim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

const char* qualified(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kEftf: return "vodsim::SchedulerKind::kEftf";
    case SchedulerKind::kContinuous: return "vodsim::SchedulerKind::kContinuous";
    case SchedulerKind::kProportional: return "vodsim::SchedulerKind::kProportional";
    case SchedulerKind::kLftf: return "vodsim::SchedulerKind::kLftf";
    case SchedulerKind::kIntermittent: return "vodsim::SchedulerKind::kIntermittent";
  }
  return "vodsim::SchedulerKind::kEftf";
}

const char* qualified(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kEven: return "vodsim::PlacementKind::kEven";
    case PlacementKind::kPredictive: return "vodsim::PlacementKind::kPredictive";
    case PlacementKind::kPartialPredictive:
      return "vodsim::PlacementKind::kPartialPredictive";
    case PlacementKind::kBsr: return "vodsim::PlacementKind::kBsr";
    case PlacementKind::kDomainSpread:
      return "vodsim::PlacementKind::kDomainSpread";
  }
  return "vodsim::PlacementKind::kEven";
}

const char* qualified(AssignmentKind kind) {
  switch (kind) {
    case AssignmentKind::kLeastLoaded:
      return "vodsim::AssignmentKind::kLeastLoaded";
    case AssignmentKind::kRandom: return "vodsim::AssignmentKind::kRandom";
    case AssignmentKind::kFirstFit: return "vodsim::AssignmentKind::kFirstFit";
    case AssignmentKind::kMostLoaded:
      return "vodsim::AssignmentKind::kMostLoaded";
  }
  return "vodsim::AssignmentKind::kLeastLoaded";
}

const char* qualified(FaultTransitionKind kind) {
  switch (kind) {
    case FaultTransitionKind::kDown: return "vodsim::FaultTransitionKind::kDown";
    case FaultTransitionKind::kUp: return "vodsim::FaultTransitionKind::kUp";
    case FaultTransitionKind::kBrownoutBegin:
      return "vodsim::FaultTransitionKind::kBrownoutBegin";
    case FaultTransitionKind::kBrownoutEnd:
      return "vodsim::FaultTransitionKind::kBrownoutEnd";
    case FaultTransitionKind::kPartitionBegin:
      return "vodsim::FaultTransitionKind::kPartitionBegin";
    case FaultTransitionKind::kPartitionEnd:
      return "vodsim::FaultTransitionKind::kPartitionEnd";
  }
  return "vodsim::FaultTransitionKind::kDown";
}

const char* qualified(VictimStrategy strategy) {
  switch (strategy) {
    case VictimStrategy::kFirstFit: return "vodsim::VictimStrategy::kFirstFit";
    case VictimStrategy::kLeastRemaining:
      return "vodsim::VictimStrategy::kLeastRemaining";
    case VictimStrategy::kMostRemaining:
      return "vodsim::VictimStrategy::kMostRemaining";
    case VictimStrategy::kMostBuffered:
      return "vodsim::VictimStrategy::kMostBuffered";
  }
  return "vodsim::VictimStrategy::kFirstFit";
}

/// Round-trippable double literal for generated code.
std::string literal(double value) {
  if (std::isinf(value)) {
    return value > 0 ? "std::numeric_limits<double>::infinity()"
                     : "-std::numeric_limits<double>::infinity()";
  }
  std::ostringstream oss;
  oss << std::setprecision(17) << value;
  std::string text = oss.str();
  // Bare integers would otherwise assign e.g. int-literal 600 to a double
  // field — harmless, but ".0" makes the generated case read as intended.
  if (text.find_first_of(".eE") == std::string::npos) text += ".0";
  return text;
}

std::string profile_literal(const std::vector<double>& profile) {
  std::string out = "{";
  for (std::size_t i = 0; i < profile.size(); ++i) {
    if (i) out += ", ";
    out += literal(profile[i]);
  }
  return out + "}";
}

}  // namespace

SimulationConfig random_scenario(Rng& rng) {
  SimulationConfig config;
  config.system.name = "fuzz";

  // World: 2-4 servers, 3-8 concurrent streams each, 1-5 minute clips.
  config.system.num_servers = 2 + static_cast<int>(rng.uniform_int(3));
  config.system.view_bandwidth = rng.uniform(1.5, 3.0);
  const double streams_per_server = rng.uniform(3.0, 8.0);
  config.system.server_bandwidth =
      config.system.view_bandwidth * streams_per_server;
  config.system.video_min_duration = rng.uniform(60.0, 120.0);
  config.system.video_max_duration =
      config.system.video_min_duration + rng.uniform(0.0, 180.0);
  config.system.num_videos = 8 + static_cast<std::size_t>(rng.uniform_int(25));
  config.system.avg_copies = rng.uniform(1.0, 2.5);

  // Storage sized relative to the catalog: usually roomy, sometimes tight
  // enough that placement falls short (orphans and replication pressure).
  const Megabits mean_size = config.system.mean_video_size();
  const double titles_per_server =
      config.system.avg_copies * static_cast<double>(config.system.num_videos) /
      config.system.num_servers;
  const double storage_factor = rng.uniform() < 0.2 ? 0.6 : 1.5;
  config.system.server_storage = storage_factor * titles_per_server * mean_size;

  if (rng.uniform() < 0.25) {
    config.system.bandwidth_profile.resize(
        static_cast<std::size_t>(config.system.num_servers));
    for (double& entry : config.system.bandwidth_profile) {
      entry = rng.uniform(0.5, 2.0);
    }
  }
  if (rng.uniform() < 0.15) {
    config.system.storage_profile.resize(
        static_cast<std::size_t>(config.system.num_servers));
    for (double& entry : config.system.storage_profile) {
      entry = rng.uniform(0.5, 2.0);
    }
  }

  // Client staging: none / sliver / paper-scale / full video.
  constexpr double kStagingOptions[] = {0.0, 0.02, 0.2, 1.0};
  config.client.staging_fraction = kStagingOptions[rng.uniform_int(4)];
  switch (rng.uniform_int(4)) {
    case 0: config.client.receive_bandwidth = config.system.view_bandwidth; break;
    case 1: config.client.receive_bandwidth = 2.0 * config.system.view_bandwidth; break;
    case 2: config.client.receive_bandwidth = 10.0 * config.system.view_bandwidth; break;
    default: config.client.receive_bandwidth = kInf; break;
  }

  // Failure-domain topology: a quarter of the scenarios build a rack/zone
  // tree. Domain faults (below) and domain_spread placement ride on it;
  // all topology-enabled scenarios are auditor-only (outside
  // oracle_supports), so the probability stays low enough that the oracle
  // still covers the majority of the batch.
  if (rng.uniform() < 0.25) {
    config.topology.enabled = true;
    config.topology.racks = 1 + static_cast<int>(rng.uniform_int(
        static_cast<std::uint64_t>(config.system.num_servers)));
    config.topology.zones = 1 + static_cast<int>(rng.uniform_int(
        static_cast<std::uint64_t>(config.topology.racks)));
  }

  constexpr PlacementKind kPlacements[] = {
      PlacementKind::kEven, PlacementKind::kPredictive,
      PlacementKind::kPartialPredictive, PlacementKind::kBsr};
  config.placement.kind = kPlacements[rng.uniform_int(4)];
  if (config.topology.enabled && rng.uniform() < 0.4) {
    config.placement.kind = PlacementKind::kDomainSpread;
  }

  constexpr AssignmentKind kAssignments[] = {
      AssignmentKind::kLeastLoaded, AssignmentKind::kRandom,
      AssignmentKind::kFirstFit, AssignmentKind::kMostLoaded};
  config.admission.assignment = kAssignments[rng.uniform_int(4)];

  if (rng.uniform() < 0.6) {
    config.admission.migration.enabled = true;
    config.admission.migration.max_chain_length =
        1 + static_cast<int>(rng.uniform_int(3));
    config.admission.migration.max_hops_per_request =
        rng.uniform() < 0.5 ? 1 : -1;
    constexpr VictimStrategy kVictims[] = {
        VictimStrategy::kFirstFit, VictimStrategy::kLeastRemaining,
        VictimStrategy::kMostRemaining, VictimStrategy::kMostBuffered};
    config.admission.migration.victim = kVictims[rng.uniform_int(4)];
    // A victim is eligible only if its staged data covers the pause, so a
    // positive latency is interesting only alongside staging.
    if (config.client.staging_fraction > 0.0 && rng.uniform() < 0.3) {
      config.admission.migration.switch_latency = rng.uniform(0.5, 5.0);
    }
  }

  constexpr SchedulerKind kSchedulers[] = {
      SchedulerKind::kEftf, SchedulerKind::kContinuous,
      SchedulerKind::kProportional, SchedulerKind::kLftf,
      SchedulerKind::kIntermittent};
  config.scheduler = kSchedulers[rng.uniform_int(5)];
  if (config.scheduler == SchedulerKind::kIntermittent) {
    config.intermittent_safety_cover = rng.uniform(1.0, 20.0);
    config.admission.buffer_aware = rng.uniform() < 0.4;
  }

  if (rng.uniform() < 0.3) {
    config.failure.enabled = true;
    config.failure.mean_time_between_failures = rng.uniform(150.0, 900.0);
    config.failure.mean_time_to_repair = rng.uniform(20.0, 200.0);
    config.failure.recover_via_migration = rng.uniform() < 0.5;
    if (rng.uniform() < 0.3) config.failure.min_dwell = rng.uniform(1.0, 10.0);
    if (rng.uniform() < 0.4) {
      config.failure.brownout.enabled = true;
      config.failure.brownout.mean_time_between = rng.uniform(120.0, 600.0);
      config.failure.brownout.mean_duration = rng.uniform(30.0, 180.0);
      config.failure.brownout.capacity_factor = rng.uniform(0.2, 0.9);
    }
    if (rng.uniform() < 0.25) {
      config.failure.correlated.enabled = true;
      config.failure.correlated.group_size =
          2 + static_cast<int>(rng.uniform_int(2));
      config.failure.correlated.mean_time_between = rng.uniform(300.0, 900.0);
      config.failure.correlated.mean_duration = rng.uniform(30.0, 120.0);
    }
    if (rng.uniform() < 0.4) {
      config.failure.retry.enabled = true;
      config.failure.retry.max_queue =
          4 + static_cast<int>(rng.uniform_int(28));
      config.failure.retry.max_attempts =
          1 + static_cast<int>(rng.uniform_int(5));
      config.failure.retry.backoff_base = rng.uniform(1.0, 10.0);
      config.failure.retry.backoff_cap =
          config.failure.retry.backoff_base * rng.uniform(1.0, 8.0);
    }
    if (rng.uniform() < 0.25) {
      config.failure.repair.enabled = true;
      config.failure.repair.down_threshold = rng.uniform(30.0, 120.0);
    }
    // Domain-scoped faults need the topology tree drawn above.
    if (config.topology.enabled) {
      if (rng.uniform() < 0.35) {
        config.failure.domains.rack_outage.enabled = true;
        config.failure.domains.rack_outage.mean_time_between =
            rng.uniform(200.0, 900.0);
        config.failure.domains.rack_outage.mean_duration =
            rng.uniform(20.0, 120.0);
      }
      if (rng.uniform() < 0.3) {
        config.failure.domains.zone_brownout.enabled = true;
        config.failure.domains.zone_brownout.mean_time_between =
            rng.uniform(150.0, 600.0);
        config.failure.domains.zone_brownout.mean_duration =
            rng.uniform(20.0, 120.0);
        config.failure.domains.zone_brownout.capacity_factor =
            rng.uniform(0.2, 0.9);
      }
      if (rng.uniform() < 0.35) {
        config.failure.domains.partition.enabled = true;
        config.failure.domains.partition.mean_time_between =
            rng.uniform(150.0, 600.0);
        config.failure.domains.partition.mean_duration = rng.uniform(10.0, 60.0);
      }
    }
    // Glitch dedupe: mostly the 1 s default, sometimes disabled, sometimes
    // a wide window — the fast/sharded differentials must agree under all.
    if (rng.uniform() < 0.25) {
      config.failure.glitch_dedupe_window =
          rng.uniform() < 0.5 ? 0.0 : rng.uniform(0.5, 5.0);
    }
  }
  if (rng.uniform() < 0.3) {
    config.replication.enabled = true;
    config.replication.rejection_threshold =
        1 + static_cast<int>(rng.uniform_int(3));
    config.replication.window = rng.uniform(60.0, 600.0);
    config.replication.transfer_bandwidth = rng.uniform(4.0, 12.0);
    config.replication.max_concurrent = 1 + static_cast<int>(rng.uniform_int(2));
    config.replication.allow_tertiary_source = rng.uniform() < 0.5;
  }
  if (rng.uniform() < 0.25) {
    config.drift.enabled = true;
    config.drift.period = rng.uniform(100.0, 600.0);
    config.drift.step = 1 + static_cast<std::size_t>(rng.uniform_int(5));
  }
  // Interactivity scenarios are auditor-only (outside oracle_supports).
  if (rng.uniform() < 0.25) {
    config.interactivity.enabled = true;
    config.interactivity.pauses_per_hour = rng.uniform(20.0, 120.0);
    config.interactivity.mean_pause_duration = rng.uniform(5.0, 60.0);
  }

  config.zipf_theta = rng.uniform(-1.5, 1.0);
  config.load_factor = rng.uniform(0.5, 1.4);
  config.duration = rng.uniform(120.0, 600.0);
  config.warmup = rng.uniform() < 0.5 ? 0.0 : 0.1 * config.duration;

  // Sharded-engine coverage: roughly half the scenarios carry an explicit
  // shard count (and worker count) for the sharded differential leg; the
  // rest fall back to run_scenario's one-shard-per-server default. All
  // three draws happen unconditionally so the per-call draw count stays
  // fixed (the fixed-seed scenario-sequence property).
  const bool draw_sharded = rng.uniform() < 0.5;
  const int drawn_shards =
      1 + static_cast<int>(rng.uniform_int(
              static_cast<std::uint64_t>(config.system.num_servers)));
  const int drawn_threads = 1 + static_cast<int>(rng.uniform_int(4));
  if (draw_sharded) {
    config.shards = drawn_shards;
    config.shard_threads = drawn_threads;
  }

  config.seed = rng.next_u64();
  return config;
}

SimulationConfig random_fault_scenario(Rng& rng) {
  SimulationConfig config = random_scenario(rng);
  config.system.name = "chaos";

  // Crashes are always on and frequent relative to the (short) horizon, so
  // every scenario actually exercises the fault path instead of merely
  // arming it.
  config.failure.enabled = true;
  config.failure.mean_time_between_failures = rng.uniform(90.0, 400.0);
  config.failure.mean_time_to_repair = rng.uniform(20.0, 120.0);
  config.failure.recover_via_migration = rng.uniform() < 0.5;
  config.failure.min_dwell = rng.uniform() < 0.5 ? rng.uniform(1.0, 10.0) : 0.0;

  config.failure.brownout.enabled = rng.uniform() < 0.7;
  config.failure.brownout.mean_time_between = rng.uniform(90.0, 400.0);
  config.failure.brownout.mean_duration = rng.uniform(20.0, 120.0);
  config.failure.brownout.capacity_factor = rng.uniform(0.2, 0.9);

  config.failure.retry.enabled = rng.uniform() < 0.7;
  config.failure.retry.max_queue = 4 + static_cast<int>(rng.uniform_int(28));
  config.failure.retry.max_attempts = 1 + static_cast<int>(rng.uniform_int(5));
  config.failure.retry.backoff_base = rng.uniform(1.0, 10.0);
  config.failure.retry.backoff_cap =
      config.failure.retry.backoff_base * rng.uniform(1.0, 8.0);

  config.failure.correlated.enabled = rng.uniform() < 0.35;
  config.failure.correlated.group_size = 2 + static_cast<int>(rng.uniform_int(2));
  config.failure.correlated.mean_time_between = rng.uniform(200.0, 600.0);
  config.failure.correlated.mean_duration = rng.uniform(20.0, 90.0);

  config.failure.repair.enabled = rng.uniform() < 0.35;
  config.failure.repair.down_threshold = rng.uniform(20.0, 90.0);

  // Guarantee at least one partial-fault feature beyond plain crashes.
  if (!config.failure.brownout.enabled && !config.failure.retry.enabled) {
    config.failure.brownout.enabled = true;
  }

  // Domain-scoped chaos: half the chaos scenarios (re)build a topology and
  // arm at least one domain fault class, so rack outages, zone brownouts,
  // and partitions all flow through the sanitizer smoke and the fast/
  // sharded differentials routinely, not only when random_scenario happened
  // to draw them.
  if (rng.uniform() < 0.5) {
    config.topology.enabled = true;
    config.topology.racks = 1 + static_cast<int>(rng.uniform_int(
        static_cast<std::uint64_t>(config.system.num_servers)));
    config.topology.zones = 1 + static_cast<int>(rng.uniform_int(
        static_cast<std::uint64_t>(config.topology.racks)));
    config.failure.domains.rack_outage.enabled = rng.uniform() < 0.6;
    config.failure.domains.rack_outage.mean_time_between =
        rng.uniform(150.0, 500.0);
    config.failure.domains.rack_outage.mean_duration = rng.uniform(20.0, 90.0);
    config.failure.domains.zone_brownout.enabled = rng.uniform() < 0.4;
    config.failure.domains.zone_brownout.mean_time_between =
        rng.uniform(120.0, 400.0);
    config.failure.domains.zone_brownout.mean_duration = rng.uniform(20.0, 90.0);
    config.failure.domains.zone_brownout.capacity_factor = rng.uniform(0.2, 0.9);
    config.failure.domains.partition.enabled = rng.uniform() < 0.6;
    config.failure.domains.partition.mean_time_between =
        rng.uniform(120.0, 400.0);
    config.failure.domains.partition.mean_duration = rng.uniform(10.0, 60.0);
    if (!config.failure.domains.rack_outage.enabled &&
        !config.failure.domains.partition.enabled) {
      config.failure.domains.partition.enabled = true;
    }
  }
  return config;
}

std::vector<SimulationConfig> pathology_corpus() {
  std::vector<SimulationConfig> corpus;

  // Shared tiny-world base.
  SimulationConfig base;
  base.system.name = "pathology";
  base.system.num_servers = 3;
  base.system.server_bandwidth = 15.0;
  base.system.server_storage = gigabytes(2);
  base.system.video_min_duration = 90.0;
  base.system.video_max_duration = 240.0;
  base.system.num_videos = 20;
  base.system.avg_copies = 1.8;
  base.system.view_bandwidth = 3.0;
  base.client.receive_bandwidth = 30.0;
  base.duration = 600.0;
  base.warmup = 0.0;
  base.load_factor = 1.2;

  // 1. Threshold chattering: intermittent scheduling with a hair-trigger
  // safety cover and sliver buffers — streams hover at the urgency
  // threshold, stressing the hysteresis latch and buffer-low predictions.
  {
    SimulationConfig config = base;
    config.scheduler = SchedulerKind::kIntermittent;
    config.intermittent_safety_cover = 2.0;
    config.client.staging_fraction = 0.02;
    config.seed = 101;
    corpus.push_back(config);
  }

  // 2. Reschedule-heavy churn: tiny buffers fill in seconds at a 10x
  // receive cap, so buffer-full/tx-complete predictions reschedule
  // constantly — the slab queue's lazy cancellation under maximum stress.
  {
    SimulationConfig config = base;
    config.client.staging_fraction = 0.02;
    config.load_factor = 0.8;
    config.seed = 102;
    corpus.push_back(config);
  }

  // 3. Deep migration chains: overloaded cluster, chain length 3, unlimited
  // hops — multi-step displacement plans with reservations in flight.
  {
    SimulationConfig config = base;
    config.client.staging_fraction = 0.2;
    config.admission.migration.enabled = true;
    config.admission.migration.max_chain_length = 3;
    config.admission.migration.max_hops_per_request = -1;
    config.admission.migration.switch_latency = 1.0;
    config.load_factor = 1.4;
    config.seed = 103;
    corpus.push_back(config);
  }

  // 4. Failure/repair churn with replication: servers flap every few
  // minutes while rejection-triggered copies hold reservations — recovery
  // migration racing replication bandwidth on both ends.
  {
    SimulationConfig config = base;
    config.client.staging_fraction = 0.2;
    config.admission.migration.enabled = true;
    config.failure.enabled = true;
    config.failure.mean_time_between_failures = 180.0;
    config.failure.mean_time_to_repair = 45.0;
    config.replication.enabled = true;
    config.replication.rejection_threshold = 1;
    config.replication.window = 300.0;
    config.replication.transfer_bandwidth = 6.0;
    config.seed = 104;
    corpus.push_back(config);
  }

  // 5. Buffer-aware overcommit: nominal commitments deliberately exceed the
  // link; the intermittent scheduler rations actual flow. Auditor-only
  // (outside oracle_supports), exercising the relaxed capacity expectation.
  {
    SimulationConfig config = base;
    config.scheduler = SchedulerKind::kIntermittent;
    config.intermittent_safety_cover = 10.0;
    config.admission.buffer_aware = true;
    config.client.staging_fraction = 1.0;
    config.load_factor = 1.4;
    config.seed = 105;
    corpus.push_back(config);
  }

  // 6. Brownout shed churn: deep, frequent brownouts on an overloaded
  // cluster with staging and migration — every brownout-begin triggers
  // most-buffered shedding with migrate-before-drop, and every brownout-end
  // re-admits from the retry queue. Found by shrinking a chaos scenario
  // that tripped the commitment-vs-effective-link audit.
  {
    SimulationConfig config = base;
    config.client.staging_fraction = 0.2;
    config.admission.migration.enabled = true;
    config.failure.enabled = true;
    config.failure.mean_time_between_failures = hours(100);  // crashes rare
    config.failure.mean_time_to_repair = 60.0;
    config.failure.brownout.enabled = true;
    config.failure.brownout.mean_time_between = 90.0;
    config.failure.brownout.mean_duration = 45.0;
    config.failure.brownout.capacity_factor = 0.3;
    config.failure.retry.enabled = true;
    config.failure.retry.max_queue = 8;
    config.failure.retry.backoff_base = 2.0;
    config.failure.retry.backoff_cap = 16.0;
    config.load_factor = 1.4;
    config.seed = 106;
    corpus.push_back(config);
  }

  // 7. Crash/retry storm on a single-copy catalog: no second replica means
  // every crash orphans streams that cannot migrate — they park in a small
  // retry queue whose backoff collides with the next crash. Exercises
  // queue-full drops, retry abandonment at max attempts, and parked
  // requests reaching playback end. Shrunk from a chaos run that hit the
  // parked-orphan completion path.
  {
    SimulationConfig config = base;
    config.system.avg_copies = 1.0;
    config.client.staging_fraction = 0.2;
    config.failure.enabled = true;
    config.failure.mean_time_between_failures = 120.0;
    config.failure.mean_time_to_repair = 40.0;
    config.failure.min_dwell = 2.0;
    config.failure.retry.enabled = true;
    config.failure.retry.max_queue = 4;
    config.failure.retry.max_attempts = 3;
    config.failure.retry.backoff_base = 5.0;
    config.failure.retry.backoff_cap = 20.0;
    config.seed = 107;
    corpus.push_back(config);
  }

  // 8. Correlated group failures with repair re-replication: whole groups
  // crash together, the repair policy re-replicates long-down servers'
  // single-copy titles, and replication reservations race the group's
  // repair events. Shrunk from a chaos run that raced a repair copy
  // against the destination's own crash.
  {
    SimulationConfig config = base;
    config.system.avg_copies = 1.2;
    config.client.staging_fraction = 0.2;
    config.admission.migration.enabled = true;
    config.failure.enabled = true;
    config.failure.mean_time_between_failures = 200.0;
    config.failure.mean_time_to_repair = 80.0;
    config.failure.correlated.enabled = true;
    config.failure.correlated.group_size = 2;
    config.failure.correlated.mean_time_between = 150.0;
    config.failure.correlated.mean_duration = 60.0;
    config.failure.repair.enabled = true;
    config.failure.repair.down_threshold = 30.0;
    config.replication.enabled = true;
    config.replication.rejection_threshold = 2;
    config.replication.window = 300.0;
    config.replication.transfer_bandwidth = 6.0;
    config.seed = 108;
    corpus.push_back(config);
  }

  // 9. Erlang saturation: zero staging, plain admission, load well past
  // capacity — the continuous-transmission regime where the pooled
  // Erlang-B terms (analysis/bounds.h) are armed and *tight*. The run must
  // reject heavily yet never beat the blocking lower bound.
  {
    SimulationConfig config = base;
    config.client.staging_fraction = 0.0;
    config.load_factor = 1.6;
    config.seed = 109;
    corpus.push_back(config);
  }

  // 10. Fluid overload: huge staging buffers at 2.5x offered load. Deep
  // workahead decouples transmission from playback, so utilization pins to
  // 1 while the knapsack rejection bound demands most mass be shed — the
  // regime where measured rejection sits closest to the fluid lower bound.
  {
    SimulationConfig config = base;
    config.client.staging_fraction = 1.0;
    config.load_factor = 2.5;
    config.seed = 110;
    corpus.push_back(config);
  }

  // 11. Placement starvation: single-copy catalog under extreme skew — the
  // hottest title's exclusive holder is the whole cluster's bottleneck, so
  // the exclusive-holder excess term dominates the rejection bound while
  // the aggregate link sits half idle.
  {
    SimulationConfig config = base;
    config.system.avg_copies = 1.0;
    config.zipf_theta = -1.5;
    config.client.staging_fraction = 0.2;
    config.load_factor = 1.2;
    config.seed = 111;
    corpus.push_back(config);
  }

  // 12. Cross-shard migration chains: four servers sharded one-per-server,
  // so every displacement hop of a depth-3 chain — and every
  // break-before-make reservation — spans shard boundaries, with shard
  // queues holding live predictions for streams the coordinator is moving
  // between them. Shrunk from a drawn-shards random scenario while
  // hardening the ownership-transfer cancel ordering.
  {
    SimulationConfig config = base;
    config.system.num_servers = 4;
    config.client.staging_fraction = 0.2;
    config.admission.migration.enabled = true;
    config.admission.migration.max_chain_length = 3;
    config.admission.migration.max_hops_per_request = -1;
    config.admission.migration.switch_latency = 1.0;
    config.load_factor = 1.4;
    config.shards = 4;
    config.shard_threads = 2;
    config.seed = 112;
    corpus.push_back(config);
  }

  // 13. Correlated whole-shard outage: group_size 2 on four servers
  // sharded in blocks of two, so a correlated failure takes down an entire
  // shard at once — its queue holds nothing but predictions for dead
  // streams, and recovery migrates every victim into the other shard while
  // repair re-replication runs across the boundary.
  {
    SimulationConfig config = base;
    config.system.num_servers = 4;
    config.system.avg_copies = 1.2;
    config.client.staging_fraction = 0.2;
    config.admission.migration.enabled = true;
    config.failure.enabled = true;
    config.failure.mean_time_between_failures = 200.0;
    config.failure.mean_time_to_repair = 80.0;
    config.failure.correlated.enabled = true;
    config.failure.correlated.group_size = 2;
    config.failure.correlated.mean_time_between = 150.0;
    config.failure.correlated.mean_duration = 60.0;
    config.failure.repair.enabled = true;
    config.failure.repair.down_threshold = 30.0;
    config.failure.retry.enabled = true;
    config.failure.retry.max_queue = 8;
    config.failure.retry.backoff_base = 2.0;
    config.failure.retry.backoff_cap = 16.0;
    config.shards = 2;
    config.shard_threads = 2;
    config.seed = 113;
    corpus.push_back(config);
  }

  // 14. Rack partition storm: four servers in two racks, partitions every
  // couple of minutes with retry parking and migration recovery — every
  // partition-begin sheds a whole rack's streams without marking a single
  // server down, and every heal force-drains the retry queue into servers
  // whose capacity the outage never touched. Shrunk from a domain-chaos
  // run that granted onto an unreachable server before admission gated on
  // serviceable().
  {
    SimulationConfig config = base;
    config.system.num_servers = 4;
    config.topology.enabled = true;
    config.topology.racks = 2;
    config.topology.zones = 2;
    config.client.staging_fraction = 0.2;
    config.admission.migration.enabled = true;
    config.failure.enabled = true;
    config.failure.mean_time_between_failures = hours(100);  // crashes rare
    config.failure.mean_time_to_repair = 60.0;
    config.failure.domains.partition.enabled = true;
    config.failure.domains.partition.mean_time_between = 120.0;
    config.failure.domains.partition.mean_duration = 30.0;
    config.failure.retry.enabled = true;
    config.failure.retry.max_queue = 8;
    config.failure.retry.max_attempts = 4;
    config.failure.retry.backoff_base = 2.0;
    config.failure.retry.backoff_cap = 16.0;
    config.seed = 114;
    corpus.push_back(config);
  }

  // 15. Rack outage vs. domain-spread repair: a near-single-copy catalog
  // placed with rack anti-affinity, whole racks crashing together, and
  // repair re-replication racing the outage — destinations must be chosen
  // among *serviceable* survivors, preferring under-represented domains.
  // Shrunk from a domain-chaos run where a repair copy targeted a server
  // inside the rack that was about to fail again.
  {
    SimulationConfig config = base;
    config.system.num_servers = 4;
    config.system.avg_copies = 1.2;
    config.topology.enabled = true;
    config.topology.racks = 2;
    config.topology.zones = 2;
    config.placement.kind = PlacementKind::kDomainSpread;
    config.client.staging_fraction = 0.2;
    config.admission.migration.enabled = true;
    config.failure.enabled = true;
    config.failure.mean_time_between_failures = hours(100);
    config.failure.mean_time_to_repair = 60.0;
    config.failure.domains.rack_outage.enabled = true;
    config.failure.domains.rack_outage.mean_time_between = 180.0;
    config.failure.domains.rack_outage.mean_duration = 60.0;
    config.failure.repair.enabled = true;
    config.failure.repair.down_threshold = 25.0;
    config.replication.enabled = true;
    config.replication.rejection_threshold = 2;
    config.replication.window = 300.0;
    config.replication.transfer_bandwidth = 6.0;
    config.seed = 115;
    corpus.push_back(config);
  }

  // 16. Overlapping domain faults on rack-aligned shards: zone brownouts,
  // rack partitions, *and* binary crashes interleave on a sharded engine
  // whose shard boundaries coincide with the racks — the capacity-loss
  // interval handoffs (down <-> brownout <-> partition are mutually
  // exclusive per server) and the glitch-dedupe window all under the
  // sharded/single and fast/exact differentials at once. Shrunk from a
  // domain-chaos run that double-charged capacity loss when a partition
  // began during a zone brownout.
  {
    SimulationConfig config = base;
    config.system.num_servers = 4;
    config.topology.enabled = true;
    config.topology.racks = 2;
    config.topology.zones = 2;
    config.client.staging_fraction = 0.2;
    config.failure.enabled = true;
    config.failure.mean_time_between_failures = 240.0;
    config.failure.mean_time_to_repair = 50.0;
    config.failure.domains.zone_brownout.enabled = true;
    config.failure.domains.zone_brownout.mean_time_between = 150.0;
    config.failure.domains.zone_brownout.mean_duration = 50.0;
    config.failure.domains.zone_brownout.capacity_factor = 0.4;
    config.failure.domains.partition.enabled = true;
    config.failure.domains.partition.mean_time_between = 150.0;
    config.failure.domains.partition.mean_duration = 25.0;
    config.failure.retry.enabled = true;
    config.failure.retry.max_queue = 8;
    config.failure.retry.backoff_base = 2.0;
    config.failure.retry.backoff_cap = 16.0;
    config.failure.glitch_dedupe_window = 2.0;
    config.load_factor = 1.3;
    config.shards = 2;
    config.shard_threads = 2;
    config.seed = 116;
    corpus.push_back(config);
  }

  return corpus;
}

namespace {

/// Shared diff core for the cross-mode differentials (fast-vs-exact and
/// sharded-vs-single): discrete counters must match exactly, fluid
/// integrals within the reference oracle's relative tolerance.
std::string diff_runs(const VodSimulation& a, const VodSimulation& b,
                      const char* a_label, const char* b_label) {
  std::ostringstream oss;
  auto count = [&](const char* name, std::uint64_t a_value,
                   std::uint64_t b_value) {
    if (a_value != b_value) {
      oss << name << ": " << a_label << " " << a_value << " vs " << b_label
          << " " << b_value << "; ";
    }
  };
  auto fluid = [&](const char* name, double a_value, double b_value) {
    const double tolerance =
        1e-9 + 1e-9 * std::max(std::abs(a_value), std::abs(b_value));
    if (std::abs(a_value - b_value) > tolerance) {
      oss.precision(17);
      oss << name << ": " << a_label << " " << a_value << " vs " << b_label
          << " " << b_value << "; ";
    }
  };

  const Metrics& am = a.metrics();
  const Metrics& bm = b.metrics();
  count("arrivals", am.arrivals(), bm.arrivals());
  count("accepts", am.accepts(), bm.accepts());
  count("accepts_via_migration", am.accepts_via_migration(),
        bm.accepts_via_migration());
  count("rejects", am.rejects(), bm.rejects());
  count("migration_steps", am.migration_steps(), bm.migration_steps());
  count("completions", am.completions(), bm.completions());
  count("drops", am.drops(), bm.drops());
  count("underflow_events", am.underflow_events(), bm.underflow_events());
  count("replications", am.replications(), bm.replications());
  count("server_downs", am.server_downs(), bm.server_downs());
  count("server_recoveries", am.server_recoveries(), bm.server_recoveries());
  count("sheds", am.sheds(), bm.sheds());
  count("interruptions", am.interruptions(), bm.interruptions());
  count("retry_enqueued", am.retry_enqueued(), bm.retry_enqueued());
  count("readmissions", am.readmissions(), bm.readmissions());
  count("retry_abandoned", am.retry_abandoned(), bm.retry_abandoned());
  count("repairs", am.repairs(), bm.repairs());
  count("continuity_violations", a.continuity_violations(),
        b.continuity_violations());
  fluid("utilization", am.utilization(), bm.utilization());
  fluid("rejection_ratio", am.rejection_ratio(), bm.rejection_ratio());
  fluid("transmitted", am.transmitted(), bm.transmitted());
  fluid("underflow_megabits", am.underflow_megabits(), bm.underflow_megabits());
  fluid("replication_megabits", am.replication_megabits(),
        bm.replication_megabits());
  fluid("glitch_seconds", am.glitch_seconds(), bm.glitch_seconds());
  fluid("availability", am.availability(), bm.availability());
  return oss.str();
}

}  // namespace

FuzzResult run_scenario(const SimulationConfig& config) {
  FuzzResult result;
  SimulationConfig audited = config;
  audited.paranoid = true;
  audited.fast_math = false;
  // The baseline/auditor leg is always the single-queue engine (the auditor
  // requires whole-cluster quiescence after every event); drawn shard
  // counts apply to the sharded differential leg below.
  audited.shards = 1;
  try {
    const RequestTrace trace = engine_trace(audited);
    VodSimulation engine(audited, trace);
    engine.run();
    if (oracle_supports(audited)) {
      result.oracle_checked = true;
      const OracleResult oracle = run_reference(audited, trace);
      const std::string diff = compare_against_engine(engine, oracle);
      if (!diff.empty()) {
        result.passed = false;
        result.failure = "oracle mismatch: " + diff;
      }
    }
    if (result.passed) {
      // Dual-exactness enforcement: re-run the identical arrival trace in
      // fast_math mode (auditor still attached) and diff it against the
      // exact run. Every scenario goes through this — chaos fault configs
      // included — so the batched kernel is exercised across the whole
      // feature cross-product, not just the oracle's supported subset.
      SimulationConfig fast_config = audited;
      fast_config.fast_math = true;
      VodSimulation fast_engine(fast_config, trace);
      fast_engine.run();
      result.fast_checked = true;
      const std::string diff = compare_fast_vs_exact(engine, fast_engine);
      if (!diff.empty()) {
        result.passed = false;
        result.failure = "fast/exact mismatch: " + diff;
      }
    }
    if (result.passed) {
      // Sharded/single differential: re-run the identical arrival trace on
      // the sharded engine and diff against the audited single-queue run.
      // A scenario that drew a shard count uses it; otherwise one shard
      // per server, the maximally hostile partition (every migration,
      // recovery, and replication crosses a shard boundary). Two drain
      // workers exercise the parallel window path even on small worlds —
      // the thread count cannot change results, only interleaving. Sharded
      // runs default to fast math (build_world), so this leg is also the
      // sharded+fast differential the production default now takes.
      SimulationConfig shard_config = audited;
      shard_config.paranoid = false;  // ignored when sharded; explicit
      shard_config.shards =
          config.shards > 1 ? config.shards : config.system.num_servers;
      if (shard_config.shard_threads <= 0) shard_config.shard_threads = 2;
      VodSimulation shard_engine(shard_config, trace);
      shard_engine.run();
      result.shard_checked = true;
      const std::string diff =
          diff_runs(engine, shard_engine, "single", "sharded");
      if (!diff.empty()) {
        result.passed = false;
        result.failure = "shard/single mismatch: " + diff;
      }
      if (result.passed && config.seed % 4 == 0) {
        // Exact-math opt-out coverage: a quarter of the scenarios re-run
        // the sharded leg with exact_math set, keeping the sharded+exact
        // combination (no longer the default) under the differential too.
        SimulationConfig exact_shard_config = shard_config;
        exact_shard_config.exact_math = true;
        VodSimulation exact_shard_engine(exact_shard_config, trace);
        exact_shard_engine.run();
        const std::string exact_diff =
            diff_runs(engine, exact_shard_engine, "single", "sharded-exact");
        if (!exact_diff.empty()) {
          result.passed = false;
          result.failure = "shard/single mismatch (exact opt-out): " + exact_diff;
        }
      }
    }
  } catch (const std::exception& error) {
    result.passed = false;
    result.failure = error.what();
  }
  return result;
}

std::string compare_fast_vs_exact(const VodSimulation& exact,
                                  const VodSimulation& fast) {
  // Same tolerance discipline as compare_against_engine: fast mode regroups
  // the metering summation, so fluid aggregates may drift at ulp scale but
  // never past the oracle's relative bound.
  return diff_runs(exact, fast, "exact", "fast");
}

void clamp_to_servers(SimulationConfig& config) {
  if (config.shards > config.system.num_servers) {
    config.shards = config.system.num_servers;
  }
  if (config.failure.correlated.group_size > config.system.num_servers) {
    config.failure.correlated.group_size = config.system.num_servers;
  }
  if (config.topology.racks > config.system.num_servers) {
    config.topology.racks = config.system.num_servers;
  }
  if (config.topology.zones > config.topology.racks) {
    config.topology.zones = config.topology.racks;
  }
}

SimulationConfig shrink_scenario(SimulationConfig config) {
  if (run_scenario(config).passed) return config;

  using Transform = std::function<void(SimulationConfig&)>;
  // Ordered roughly by how much each removes: whole features first, then
  // policy simplifications, then size halvings.
  const std::vector<Transform> transforms = {
      [](SimulationConfig& c) { c.interactivity.enabled = false; },
      [](SimulationConfig& c) { c.failure.enabled = false; },
      [](SimulationConfig& c) { c.scripted_faults.clear(); },
      [](SimulationConfig& c) { c.failure.brownout.enabled = false; },
      [](SimulationConfig& c) { c.failure.retry.enabled = false; },
      [](SimulationConfig& c) { c.failure.repair.enabled = false; },
      [](SimulationConfig& c) { c.failure.correlated.enabled = false; },
      [](SimulationConfig& c) { c.failure.domains.partition.enabled = false; },
      [](SimulationConfig& c) { c.failure.domains.rack_outage.enabled = false; },
      [](SimulationConfig& c) {
        c.failure.domains.zone_brownout.enabled = false;
      },
      [](SimulationConfig& c) {
        // Dropping the topology drops everything that rides on it; the
        // domain faults would otherwise fail validation for the wrong
        // reason, and domain_spread would degrade silently.
        c.topology.enabled = false;
        c.topology.racks = 1;
        c.topology.zones = 1;
        c.failure.domains.rack_outage.enabled = false;
        c.failure.domains.zone_brownout.enabled = false;
        c.failure.domains.partition.enabled = false;
        if (c.placement.kind == PlacementKind::kDomainSpread) {
          c.placement.kind = PlacementKind::kEven;
        }
      },
      [](SimulationConfig& c) {
        if (c.topology.racks > 1) c.topology.racks = (c.topology.racks + 1) / 2;
        if (c.topology.zones > c.topology.racks) {
          c.topology.zones = c.topology.racks;
        }
      },
      [](SimulationConfig& c) {
        if (c.topology.zones > 1) c.topology.zones = (c.topology.zones + 1) / 2;
      },
      [](SimulationConfig& c) { c.failure.glitch_dedupe_window = 0.0; },
      [](SimulationConfig& c) { c.failure.min_dwell = 0.0; },
      [](SimulationConfig& c) { c.replication.enabled = false; },
      [](SimulationConfig& c) { c.drift.enabled = false; },
      [](SimulationConfig& c) { c.admission.migration.enabled = false; },
      [](SimulationConfig& c) { c.admission.migration.switch_latency = 0.0; },
      [](SimulationConfig& c) { c.admission.migration.max_chain_length = 1; },
      [](SimulationConfig& c) {
        c.scheduler = SchedulerKind::kEftf;
        c.admission.buffer_aware = false;
      },
      [](SimulationConfig& c) { c.admission.buffer_aware = false; },
      [](SimulationConfig& c) { c.client.staging_fraction = 0.0; },
      [](SimulationConfig& c) { c.client.receive_bandwidth = kInf; },
      [](SimulationConfig& c) {
        c.system.bandwidth_profile.clear();
        c.system.storage_profile.clear();
      },
      [](SimulationConfig& c) {
        c.placement.kind = PlacementKind::kEven;
        c.admission.assignment = AssignmentKind::kLeastLoaded;
      },
      [](SimulationConfig& c) {
        c.admission.migration.victim = VictimStrategy::kFirstFit;
      },
      [](SimulationConfig& c) { c.zipf_theta = 0.271; },
      [](SimulationConfig& c) { c.system.avg_copies = 1.0; },
      [](SimulationConfig& c) { c.warmup = 0.0; },
      // Shard knobs. shards = 1 does NOT bypass the sharded differential
      // (run_scenario then derives one shard per server) — it tests
      // whether the drawn count mattered; halving probes the boundary
      // density; one drain worker removes pool scheduling from the repro.
      [](SimulationConfig& c) { c.shards = 1; },
      [](SimulationConfig& c) {
        if (c.shards > 2) c.shards = (c.shards + 1) / 2;
      },
      [](SimulationConfig& c) { c.shard_threads = 1; },
      [](SimulationConfig& c) {
        c.duration = 0.5 * c.duration;
        if (c.warmup >= c.duration) c.warmup = 0.0;
      },
      [](SimulationConfig& c) {
        if (c.system.num_servers > 1) {
          c.system.num_servers = (c.system.num_servers + 1) / 2;
          c.system.bandwidth_profile.clear();
          c.system.storage_profile.clear();
          // Every server-indexed knob must keep referencing real servers:
          // shards (a shard owns >= 1 server), correlated group size, and
          // the topology tree all re-clamp together.
          clamp_to_servers(c);
        }
      },
      [](SimulationConfig& c) {
        if (c.system.num_videos > 2) {
          c.system.num_videos = (c.system.num_videos + 1) / 2;
        }
      },
      [](SimulationConfig& c) {
        if (c.load_factor > 0.3) c.load_factor *= 0.5;
      },
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (const Transform& transform : transforms) {
      SimulationConfig candidate = config;
      transform(candidate);
      // Idempotence check via the printed form — a transform that is
      // already applied must not count as progress, or the loop never ends.
      if (to_gtest_case(candidate, "s") == to_gtest_case(config, "s")) continue;
      try {
        candidate.validate();
      } catch (const std::invalid_argument&) {
        // A shrink that produces an invalid config would "fail" for the
        // wrong reason; skip it rather than chase a fake reproducer.
        continue;
      }
      if (!run_scenario(candidate).passed) {
        config = candidate;
        changed = true;
      }
    }
  }
  return config;
}

std::string to_gtest_case(const SimulationConfig& config,
                          const std::string& name) {
  std::ostringstream out;
  out << "TEST(FuzzRegression, " << name << ") {\n";
  out << "  vodsim::SimulationConfig config;\n";
  out << "  config.system.name = \"fuzz\";\n";
  out << "  config.system.num_servers = " << config.system.num_servers << ";\n";
  out << "  config.system.server_bandwidth = "
      << literal(config.system.server_bandwidth) << ";\n";
  out << "  config.system.server_storage = "
      << literal(config.system.server_storage) << ";\n";
  out << "  config.system.video_min_duration = "
      << literal(config.system.video_min_duration) << ";\n";
  out << "  config.system.video_max_duration = "
      << literal(config.system.video_max_duration) << ";\n";
  out << "  config.system.num_videos = " << config.system.num_videos << ";\n";
  out << "  config.system.avg_copies = " << literal(config.system.avg_copies)
      << ";\n";
  out << "  config.system.view_bandwidth = "
      << literal(config.system.view_bandwidth) << ";\n";
  if (!config.system.bandwidth_profile.empty()) {
    out << "  config.system.bandwidth_profile = "
        << profile_literal(config.system.bandwidth_profile) << ";\n";
  }
  if (!config.system.storage_profile.empty()) {
    out << "  config.system.storage_profile = "
        << profile_literal(config.system.storage_profile) << ";\n";
  }
  out << "  config.topology.enabled = "
      << (config.topology.enabled ? "true" : "false") << ";\n";
  out << "  config.topology.racks = " << config.topology.racks << ";\n";
  out << "  config.topology.zones = " << config.topology.zones << ";\n";
  out << "  config.client.staging_fraction = "
      << literal(config.client.staging_fraction) << ";\n";
  out << "  config.client.receive_bandwidth = "
      << literal(config.client.receive_bandwidth) << ";\n";
  out << "  config.placement.kind = " << qualified(config.placement.kind)
      << ";\n";
  out << "  config.placement.partial_head_fraction = "
      << literal(config.placement.partial_head_fraction) << ";\n";
  out << "  config.placement.partial_tail_shift = "
      << literal(config.placement.partial_tail_shift) << ";\n";
  out << "  config.admission.assignment = "
      << qualified(config.admission.assignment) << ";\n";
  const MigrationConfig& migration = config.admission.migration;
  out << "  config.admission.migration.enabled = "
      << (migration.enabled ? "true" : "false") << ";\n";
  out << "  config.admission.migration.max_chain_length = "
      << migration.max_chain_length << ";\n";
  out << "  config.admission.migration.max_hops_per_request = "
      << migration.max_hops_per_request << ";\n";
  out << "  config.admission.migration.victim = " << qualified(migration.victim)
      << ";\n";
  out << "  config.admission.migration.max_search_nodes = "
      << migration.max_search_nodes << ";\n";
  out << "  config.admission.migration.switch_latency = "
      << literal(migration.switch_latency) << ";\n";
  out << "  config.admission.buffer_aware = "
      << (config.admission.buffer_aware ? "true" : "false") << ";\n";
  out << "  config.admission.buffer_aware_horizon = "
      << literal(config.admission.buffer_aware_horizon) << ";\n";
  out << "  config.scheduler = " << qualified(config.scheduler) << ";\n";
  out << "  config.intermittent_safety_cover = "
      << literal(config.intermittent_safety_cover) << ";\n";
  out << "  config.failure.enabled = "
      << (config.failure.enabled ? "true" : "false") << ";\n";
  out << "  config.failure.mean_time_between_failures = "
      << literal(config.failure.mean_time_between_failures) << ";\n";
  out << "  config.failure.mean_time_to_repair = "
      << literal(config.failure.mean_time_to_repair) << ";\n";
  out << "  config.failure.recover_via_migration = "
      << (config.failure.recover_via_migration ? "true" : "false") << ";\n";
  out << "  config.failure.min_dwell = " << literal(config.failure.min_dwell)
      << ";\n";
  const BrownoutConfig& brownout = config.failure.brownout;
  out << "  config.failure.brownout.enabled = "
      << (brownout.enabled ? "true" : "false") << ";\n";
  out << "  config.failure.brownout.mean_time_between = "
      << literal(brownout.mean_time_between) << ";\n";
  out << "  config.failure.brownout.mean_duration = "
      << literal(brownout.mean_duration) << ";\n";
  out << "  config.failure.brownout.capacity_factor = "
      << literal(brownout.capacity_factor) << ";\n";
  const CorrelatedFailureConfig& correlated = config.failure.correlated;
  out << "  config.failure.correlated.enabled = "
      << (correlated.enabled ? "true" : "false") << ";\n";
  out << "  config.failure.correlated.group_size = " << correlated.group_size
      << ";\n";
  out << "  config.failure.correlated.mean_time_between = "
      << literal(correlated.mean_time_between) << ";\n";
  out << "  config.failure.correlated.mean_duration = "
      << literal(correlated.mean_duration) << ";\n";
  const RetryConfig& retry = config.failure.retry;
  out << "  config.failure.retry.enabled = " << (retry.enabled ? "true" : "false")
      << ";\n";
  out << "  config.failure.retry.max_queue = " << retry.max_queue << ";\n";
  out << "  config.failure.retry.max_attempts = " << retry.max_attempts << ";\n";
  out << "  config.failure.retry.backoff_base = " << literal(retry.backoff_base)
      << ";\n";
  out << "  config.failure.retry.backoff_cap = " << literal(retry.backoff_cap)
      << ";\n";
  out << "  config.failure.repair.enabled = "
      << (config.failure.repair.enabled ? "true" : "false") << ";\n";
  out << "  config.failure.repair.down_threshold = "
      << literal(config.failure.repair.down_threshold) << ";\n";
  const RackOutageConfig& rack_outage = config.failure.domains.rack_outage;
  out << "  config.failure.domains.rack_outage.enabled = "
      << (rack_outage.enabled ? "true" : "false") << ";\n";
  out << "  config.failure.domains.rack_outage.mean_time_between = "
      << literal(rack_outage.mean_time_between) << ";\n";
  out << "  config.failure.domains.rack_outage.mean_duration = "
      << literal(rack_outage.mean_duration) << ";\n";
  const ZoneBrownoutConfig& zone_brownout = config.failure.domains.zone_brownout;
  out << "  config.failure.domains.zone_brownout.enabled = "
      << (zone_brownout.enabled ? "true" : "false") << ";\n";
  out << "  config.failure.domains.zone_brownout.mean_time_between = "
      << literal(zone_brownout.mean_time_between) << ";\n";
  out << "  config.failure.domains.zone_brownout.mean_duration = "
      << literal(zone_brownout.mean_duration) << ";\n";
  out << "  config.failure.domains.zone_brownout.capacity_factor = "
      << literal(zone_brownout.capacity_factor) << ";\n";
  const PartitionConfig& partition = config.failure.domains.partition;
  out << "  config.failure.domains.partition.enabled = "
      << (partition.enabled ? "true" : "false") << ";\n";
  out << "  config.failure.domains.partition.mean_time_between = "
      << literal(partition.mean_time_between) << ";\n";
  out << "  config.failure.domains.partition.mean_duration = "
      << literal(partition.mean_duration) << ";\n";
  out << "  config.failure.glitch_dedupe_window = "
      << literal(config.failure.glitch_dedupe_window) << ";\n";
  for (const FaultTransition& fault : config.scripted_faults) {
    out << "  config.scripted_faults.push_back({" << literal(fault.time) << ", "
        << fault.server << ", " << qualified(fault.kind) << ", "
        << literal(fault.capacity_factor) << "});\n";
  }
  out << "  config.drift.enabled = " << (config.drift.enabled ? "true" : "false")
      << ";\n";
  out << "  config.drift.period = " << literal(config.drift.period) << ";\n";
  out << "  config.drift.step = " << config.drift.step << ";\n";
  out << "  config.replication.enabled = "
      << (config.replication.enabled ? "true" : "false") << ";\n";
  out << "  config.replication.rejection_threshold = "
      << config.replication.rejection_threshold << ";\n";
  out << "  config.replication.window = " << literal(config.replication.window)
      << ";\n";
  out << "  config.replication.transfer_bandwidth = "
      << literal(config.replication.transfer_bandwidth) << ";\n";
  out << "  config.replication.max_concurrent = "
      << config.replication.max_concurrent << ";\n";
  out << "  config.replication.max_total = " << config.replication.max_total
      << ";\n";
  out << "  config.replication.allow_tertiary_source = "
      << (config.replication.allow_tertiary_source ? "true" : "false") << ";\n";
  out << "  config.interactivity.enabled = "
      << (config.interactivity.enabled ? "true" : "false") << ";\n";
  out << "  config.interactivity.pauses_per_hour = "
      << literal(config.interactivity.pauses_per_hour) << ";\n";
  out << "  config.interactivity.mean_pause_duration = "
      << literal(config.interactivity.mean_pause_duration) << ";\n";
  out << "  config.zipf_theta = " << literal(config.zipf_theta) << ";\n";
  out << "  config.load_factor = " << literal(config.load_factor) << ";\n";
  out << "  config.duration = " << literal(config.duration) << ";\n";
  out << "  config.warmup = " << literal(config.warmup) << ";\n";
  out << "  config.shards = " << config.shards << ";\n";
  out << "  config.shard_threads = " << config.shard_threads << ";\n";
  out << "  config.seed = " << config.seed << "ULL;\n";
  out << "  const vodsim::FuzzResult result = vodsim::run_scenario(config);\n";
  out << "  EXPECT_TRUE(result.passed) << result.failure;\n";
  out << "}\n";
  return out.str();
}

}  // namespace vodsim
