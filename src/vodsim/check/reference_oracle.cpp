#include "vodsim/check/reference_oracle.h"

#include <cassert>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "vodsim/admission/controller.h"
#include "vodsim/cluster/request.h"
#include "vodsim/cluster/server.h"
#include "vodsim/engine/metrics.h"
#include "vodsim/engine/vod_simulation.h"
#include "vodsim/sched/intermittent.h"
#include "vodsim/sched/scheduler.h"
#include "vodsim/util/rng.h"
#include "vodsim/workload/drift.h"
#include "vodsim/workload/poisson.h"
#include "vodsim/workload/request_generator.h"

namespace vodsim {

namespace {

constexpr Seconds kInfinity = std::numeric_limits<Seconds>::infinity();

/// The whole oracle. Deliberately naive: state transitions are found by
/// rescanning every live request from first principles on every iteration.
/// Handler bodies mirror VodSimulation's handlers statement by statement
/// (minus event-queue bookkeeping) so that both simulators advance and
/// reallocate at the same logical instants — the engine's lazily-advanced
/// fluid state is part of its observable semantics (admission and victim
/// selection read it), not an implementation detail the oracle may ignore.
class Oracle {
 public:
  Oracle(const SimulationConfig& config, const RequestTrace& trace,
         Seconds max_step)
      : config_(config),
        trace_(trace),
        step_(max_step > 0.0 ? max_step : 1.0),
        duration_(config.duration),
        rng_(SeedPlan::derive(config.seed).decision),
        metrics_(config.warmup, config.duration, config.system.total_bandwidth()) {
    // Borrow the engine's own world construction instead of re-deriving it:
    // a throwaway VodSimulation builds catalog, placement, replica
    // directory and failure timeline exactly as a real run would, and the
    // oracle copies the result. Equality of the static world is then by
    // construction, not by a parallel implementation that could drift.
    VodSimulation world(config);
    catalog_ = world.catalog();
    servers_ = world.servers();
    directory_ = world.directory();
    failures_ = world.failure_timeline();

    controller_ = std::make_unique<AdmissionController>(config.admission, directory_);
    if (config.scheduler == SchedulerKind::kIntermittent) {
      scheduler_ =
          std::make_unique<IntermittentScheduler>(config.intermittent_safety_cover);
    } else {
      scheduler_ = make_scheduler(config.scheduler);
    }
    replication_ = std::make_unique<ReplicationManager>(config.replication);
    profile_.buffer_capacity = config.staging_capacity();
    profile_.receive_bandwidth = config.client.receive_bandwidth;
  }

  OracleResult run() {
    Seconds grid = 0.0;
    // Backstop against an oracle/engine bug degenerating into a livelock of
    // immediate re-fires; real tiny scenarios need a few thousand steps.
    constexpr std::uint64_t kMaxIterations = 20'000'000;
    for (std::uint64_t iteration = 0;; ++iteration) {
      if (iteration >= kMaxIterations) {
        throw std::logic_error("oracle: iteration limit hit (livelock?)");
      }
      const Breakpoint bp = next_breakpoint();
      const Seconds next_grid = std::min(grid + step_, duration_);
      if (bp.kind != Breakpoint::kNone && bp.time <= duration_ &&
          bp.time <= next_grid) {
        now_ = std::max(now_, bp.time);
        dispatch(bp);
        continue;
      }
      now_ = next_grid;
      grid = next_grid;
      sanity_sweep();
      if (grid >= duration_) break;
    }

    // Mirror the engine's end-of-run flush: in-flight transmissions are
    // accounted up to the horizon, in server order.
    for (Server& server : servers_) {
      for (Request* request : server.active_requests()) {
        advance_request(*request, duration_);
      }
    }

    OracleResult result;
    result.arrivals = metrics_.arrivals();
    result.accepts = metrics_.accepts();
    result.rejects = metrics_.rejects();
    result.migration_steps = metrics_.migration_steps();
    result.completions = metrics_.completions();
    result.drops = metrics_.drops();
    result.underflow_events = metrics_.underflow_events();
    result.replications = metrics_.replications();
    result.continuity_violations = continuity_violations_;
    result.utilization = metrics_.utilization();
    result.rejection_ratio = metrics_.rejection_ratio();
    result.transmitted = metrics_.transmitted();
    result.underflow_megabits = metrics_.underflow_megabits();
    return result;
  }

 private:
  struct Timer {
    enum Kind { kMigrationRelease, kReplicationDone };
    Kind kind = kMigrationRelease;
    Seconds time = 0.0;
    Request* request = nullptr;   // kMigrationRelease
    ServerId target = kNoServer;  // kMigrationRelease
    ReplicationJob job;           // kReplicationDone
    Mbps rate = 0.0;              // kReplicationDone
    Seconds start = 0.0;          // kReplicationDone
  };

  struct Breakpoint {
    enum Kind {
      kNone,
      kArrival,
      kFailure,
      kTimer,
      kPlaybackEnd,
      kTxComplete,
      kBufferFull,
      kBufferLow,
    };
    Kind kind = kNone;
    Seconds time = kInfinity;
    Request* request = nullptr;
    std::size_t timer_index = 0;
  };

  /// Cached predicted transition times for one request. The engine computes
  /// these once per allocation change and never again until the next change;
  /// the times are therefore part of the observable semantics (they decide
  /// when reallocations run, which decides what admission and the
  /// intermittent urgency latch observe), not an implementation detail. The
  /// oracle mirrors the caching — recomputed at exactly the engine's
  /// reschedule sites, cleared at its cancel sites — but keeps no event
  /// queue: every iteration still brute-force scans all cached values.
  struct Pred {
    Seconds tx_at = kInfinity;
    Seconds full_at = kInfinity;
    Seconds low_at = kInfinity;
  };

  Server& server(ServerId id) { return servers_[static_cast<std::size_t>(id)]; }

  Pred& pred(const Request& request) {
    // Oracle request ids are dense from zero, so the id doubles as an index.
    return preds_[static_cast<std::size_t>(request.id())];
  }

  /// Earliest pending transition, rescanned from raw state. Exact ties keep
  /// the first candidate in scan order (arrivals, failures, timers,
  /// playback ends, per-server predictions) — ties between continuously
  /// distributed times have measure zero.
  Breakpoint next_breakpoint() {
    Breakpoint best;
    auto consider = [&best](Seconds time, Breakpoint::Kind kind, Request* request,
                            std::size_t timer_index) {
      if (time < best.time) best = Breakpoint{kind, time, request, timer_index};
    };

    if (trace_index_ < trace_.size()) {
      const Arrival& arrival = trace_[trace_index_];
      // The engine stops its arrival chain at the first arrival past the
      // horizon; the trace is time-sorted, so everything after is too.
      if (arrival.time <= duration_) {
        consider(arrival.time, Breakpoint::kArrival, nullptr, 0);
      }
    }
    if (failure_index_ < failures_.size()) {
      consider(failures_[failure_index_].time, Breakpoint::kFailure, nullptr, 0);
    }
    for (std::size_t i = 0; i < timers_.size(); ++i) {
      consider(timers_[i].time, Breakpoint::kTimer, nullptr, i);
    }
    for (Request& request : requests_) {
      const RequestState state = request.state();
      if (state == RequestState::kStreaming || state == RequestState::kMigrating ||
          state == RequestState::kTxComplete) {
        consider(request.playback_end(), Breakpoint::kPlaybackEnd, &request, 0);
      }
    }
    // Predicted transitions: cached times, bit-identical to the engine's
    // pending events because they were computed from the same state at the
    // same allocation-change instants (see Pred). Deriving them fresh from
    // advanced fluid state here would be off by float ulps — harmless for
    // the times themselves, but fatal for discrete decisions downstream
    // (the intermittent urgency latch compares buffer levels that sit
    // *exactly at* the urgency threshold, where an ulp flips the feed
    // order and the runs diverge materially).
    for (Server& s : servers_) {
      for (Request* rp : s.active_requests()) {
        const Pred& p = pred(*rp);
        consider(p.tx_at, Breakpoint::kTxComplete, rp, 0);
        consider(p.full_at, Breakpoint::kBufferFull, rp, 0);
        consider(p.low_at, Breakpoint::kBufferLow, rp, 0);
      }
    }
    return best;
  }

  void dispatch(const Breakpoint& bp) {
    switch (bp.kind) {
      case Breakpoint::kArrival:
        handle_arrival(trace_[trace_index_++]);
        break;
      case Breakpoint::kFailure:
        apply_failure(failures_[failure_index_++]);
        break;
      case Breakpoint::kTimer: {
        const Timer timer = timers_[bp.timer_index];
        timers_.erase(timers_.begin() +
                      static_cast<std::ptrdiff_t>(bp.timer_index));
        fire_timer(timer);
        break;
      }
      case Breakpoint::kPlaybackEnd:
        on_playback_end(*bp.request);
        break;
      // Predicted events are one-shot: the engine clears the event handle
      // before running the handler, and only a later allocation change
      // re-arms it. Mirror by clearing the cached time first.
      case Breakpoint::kTxComplete:
        pred(*bp.request).tx_at = kInfinity;
        on_tx_complete(*bp.request);
        break;
      case Breakpoint::kBufferFull:
        pred(*bp.request).full_at = kInfinity;
        recompute(bp.request->server());
        break;
      case Breakpoint::kBufferLow:
        pred(*bp.request).low_at = kInfinity;
        recompute(bp.request->server());
        break;
      case Breakpoint::kNone:
        break;
    }
  }

  // --- handler mirrors (one per VodSimulation handler) -------------------

  void handle_arrival(const Arrival& arrival) {
    metrics_.record_arrival(now_);
    const Video& video = catalog_[arrival.video];
    const AdmissionDecision decision =
        controller_->decide(now_, arrival.video, video.view_bandwidth, servers_,
                            rng_);

    requests_.emplace_back(next_request_id_++, video, now_, profile_);
    preds_.emplace_back();
    Request& request = requests_.back();

    if (!decision.accepted) {
      request.mark_rejected();
      metrics_.record_rejection(now_);
      maybe_start_replication(arrival.video);
      return;
    }

    if (decision.used_migration()) {
      for (const MigrationStep& step : decision.migrations) execute_migration(step);
      metrics_.record_migration_chain(now_, decision.migrations.size());
    }
    metrics_.record_acceptance(now_, decision.used_migration());

    request.begin_streaming(now_, decision.server);
    attach(decision.server, request);
    recompute(decision.server);
  }

  void execute_migration(const MigrationStep& step) {
    Request& request = *step.request;
    advance_request(request, now_);
    cancel_predicted(request);
    server(step.from).detach(request);
    request.begin_migration(now_);

    const Seconds latency = config_.admission.migration.switch_latency;
    if (latency <= 0.0) {
      finish_migration(request, step.to);
    } else {
      server(step.to).reserve_bandwidth(request.view_bandwidth());
      Timer timer;
      timer.kind = Timer::kMigrationRelease;
      timer.time = now_ + latency;
      timer.request = &request;
      timer.target = step.to;
      timers_.push_back(timer);
    }
    recompute(step.from);
  }

  void finish_migration(Request& request, ServerId target) {
    advance_request(request, now_);
    request.complete_migration(now_, target);
    attach(target, request);
    recompute(target);
  }

  void on_tx_complete(Request& request) {
    const ServerId host = request.server();
    advance_request(request, now_);
    if (!request.finished()) {
      recompute(host);
      return;
    }
    cancel_predicted(request);
    server(host).detach(request);
    request.mark_tx_complete(now_);
    recompute(host);
  }

  void on_playback_end(Request& request) {
    switch (request.state()) {
      case RequestState::kTxComplete:
        advance_request(request, now_);
        request.mark_done(now_);
        metrics_.record_completion(now_);
        break;
      case RequestState::kStreaming: {
        const ServerId host = request.server();
        advance_request(request, now_);
        cancel_predicted(request);
        server(host).detach(request);
        request.mark_done(now_);
        metrics_.record_completion(now_);
        recompute(host);
        break;
      }
      case RequestState::kMigrating:
        advance_request(request, now_);
        request.mark_done(now_);
        metrics_.record_completion(now_);
        break;
      case RequestState::kDone:
      case RequestState::kRejected:
        break;
    }
  }

  void apply_failure(const FaultTransition& event) {
    Server& failed = server(event.server);
    // Brownout kinds are outside the oracle's scope (oracle_supports
    // excludes them); only binary transitions can appear here.
    if (event.kind == FaultTransitionKind::kUp) {
      if (failed.available()) return;  // idempotent, mirroring the engine
      failed.set_available(true);
      return;
    }
    assert(event.kind == FaultTransitionKind::kDown);
    if (!failed.available()) return;
    failed.set_available(false);

    std::vector<Request*> victims(failed.active_requests().begin(),
                                  failed.active_requests().end());
    for (Request* victim : victims) {
      Request& request = *victim;
      advance_request(request, now_);
      cancel_predicted(request);
      failed.detach(request);

      ServerId target = kNoServer;
      if (config_.failure.recover_via_migration) {
        for (ServerId candidate : directory_.holders(request.video_id())) {
          if (candidate == failed.id()) continue;
          const Server& cs = server(candidate);
          if (!cs.can_admit(request.view_bandwidth())) continue;
          if (target == kNoServer ||
              cs.active_count() < server(target).active_count()) {
            target = candidate;
          }
        }
      }
      if (target == kNoServer) {
        request.mark_done(now_);
        metrics_.record_drop(now_);
      } else {
        request.begin_migration(now_);
        finish_migration(request, target);
      }
    }
  }

  void maybe_start_replication(VideoId video) {
    auto job = replication_->on_rejection(video, now_, catalog_, servers_, directory_);
    if (!job) return;

    const Mbps rate = config_.replication.transfer_bandwidth;
    if (!job->from_tertiary()) {
      server(job->source).reserve_bandwidth(rate);
      recompute(job->source);
    }
    server(job->destination).reserve_bandwidth(rate);
    replication_->on_job_started();
    recompute(job->destination);

    Timer timer;
    timer.kind = Timer::kReplicationDone;
    timer.time = now_ + job->transfer_time;
    timer.job = *job;
    timer.rate = rate;
    timer.start = now_;
    timers_.push_back(timer);
  }

  void fire_timer(const Timer& timer) {
    switch (timer.kind) {
      case Timer::kMigrationRelease: {
        server(timer.target).release_reservation(timer.request->view_bandwidth());
        if (timer.request->state() == RequestState::kMigrating) {
          finish_migration(*timer.request, timer.target);
        }
        break;
      }
      case Timer::kReplicationDone: {
        Server& destination = server(timer.job.destination);
        if (!timer.job.from_tertiary()) {
          server(timer.job.source).release_reservation(timer.rate);
          recompute(timer.job.source);
        }
        destination.release_reservation(timer.rate);
        const bool added = destination.add_replica(catalog_[timer.job.video]);
        if (added) directory_.add_holder(timer.job.video, timer.job.destination);
        metrics_.record_replication(timer.start, now_, timer.rate);
        replication_->on_job_finished(timer.job.video);
        recompute(timer.job.destination);
        break;
      }
    }
  }

  // --- fluid plumbing ----------------------------------------------------

  void attach(ServerId host, Request& request) {
    server(host).attach(request, /*enforce_capacity=*/!config_.admission.buffer_aware);
  }

  void advance_request(Request& request, Seconds now) {
    if (now <= request.last_update()) return;
    metrics_.record_transmission(request.last_update(), now, request.allocation());
    const Megabits underflow = request.advance(now);
    if (underflow > 0.0) {
      ++continuity_violations_;
      metrics_.record_underflow(now, underflow);
    }
  }

  void recompute(ServerId host) {
    Server& s = server(host);
    const std::vector<Request*>& active = s.active_requests();
    for (Request* request : active) advance_request(*request, now_);

    // Fresh vector + throwaway scratch every pass: the brute-force path.
    std::vector<Mbps> rates;
    scheduler_->allocate(now_, s.schedulable_bandwidth(), active, rates);
    for (std::size_t i = 0; i < active.size(); ++i) {
      // Same exact-compare as the engine, so set_allocation happens at the
      // same instants (it matters: set_allocation asserts freshness), and
      // unchanged requests keep their cached predictions.
      if (rates[i] != active[i]->allocation()) {
        active[i]->set_allocation(now_, rates[i]);
        reschedule_predicted(*active[i]);
      }
    }
  }

  /// Mirror of the engine's reschedule_predicted_events: same formulas, same
  /// gates, evaluated at the same instant (the request was just advanced to
  /// now_, so last_update == now_).
  void reschedule_predicted(Request& request) {
    Pred& p = pred(request);
    p = Pred{};
    if (request.state() != RequestState::kStreaming) return;
    const Mbps rate = request.allocation();

    Seconds tx_at = kInfinity;
    if (rate > 0.0) {
      tx_at = now_ + request.remaining() / rate;
      p.tx_at = tx_at;
    }

    const Mbps surplus = rate - request.drain_rate(now_);
    if (surplus > 1e-12 && !request.buffer_full()) {
      const Seconds full_at = now_ + request.buffer_headroom() / surplus;
      if (full_at < tx_at) p.full_at = full_at;
    } else if (surplus < -1e-12) {
      const Megabits threshold =
          config_.intermittent_safety_cover * request.view_bandwidth();
      const Megabits level = request.buffer_level();
      if (level > threshold + StagingBuffer::kLevelTolerance) {
        const Seconds low_at = now_ + (level - threshold) / -surplus;
        if (low_at < tx_at) p.low_at = low_at;
      }
    }
  }

  void cancel_predicted(Request& request) { pred(request) = Pred{}; }

  /// The fixed-timestep part of the contract: once per grid step, verify
  /// server-level physics from scratch. These are the oracle's own books —
  /// failing here means the oracle (or a shared component) is broken, so
  /// throw std::logic_error rather than reporting an engine mismatch.
  void sanity_sweep() const {
    for (const Server& s : servers_) {
      Mbps allocated = 0.0;
      for (const Request* request : s.active_requests()) {
        allocated += request->allocation();
        if (request->buffer_level() < -1e-6 ||
            request->buffer_level() > request->buffer_capacity() + 1e-6) {
          std::ostringstream oss;
          oss << "oracle self-check: buffer out of bounds on request "
              << request->id();
          throw std::logic_error(oss.str());
        }
      }
      if (allocated > s.bandwidth() + 1e-6) {
        std::ostringstream oss;
        oss << "oracle self-check: server " << s.id() << " allocates " << allocated
            << " Mb/s over a " << s.bandwidth() << " Mb/s link";
        throw std::logic_error(oss.str());
      }
    }
  }

  const SimulationConfig& config_;
  const RequestTrace& trace_;
  Seconds step_;
  Seconds duration_;
  Rng rng_;
  Metrics metrics_;

  VideoCatalog catalog_;
  std::vector<Server> servers_;
  ReplicaDirectory directory_;
  std::unique_ptr<AdmissionController> controller_;
  std::unique_ptr<BandwidthScheduler> scheduler_;
  std::unique_ptr<ReplicationManager> replication_;
  ClientProfile profile_;
  std::vector<FaultTransition> failures_;

  std::deque<Request> requests_;  // stable addresses, like the engine's arena
  std::deque<Pred> preds_;        // parallel to requests_, indexed by id
  std::vector<Timer> timers_;
  RequestId next_request_id_ = 0;
  std::size_t trace_index_ = 0;
  std::size_t failure_index_ = 0;
  std::uint64_t continuity_violations_ = 0;
  Seconds now_ = 0.0;
};

}  // namespace

bool oracle_supports(const SimulationConfig& config) {
  // Interactivity: pause/resume RNG draws interleave with the event order,
  // which the oracle does not replicate draw for draw. Buffer-aware
  // admission: feasibility reads per-stream staged cover at whatever
  // staleness the engine's lazy advancement left it — a quantity defined by
  // the engine's exact recompute pattern, not by the fluid model. Everything
  // else reproduces the engine bit for bit.
  // Fault-taxonomy extensions (brownout shedding, retry re-admission,
  // repair replication, scripted schedules) drive engine-private state the
  // oracle does not model; binary crash/repair stays in scope.
  // Failure-domain topology: domain fault schedules, the partition
  // transition class, and domain_spread's topology-aware install are all
  // engine-side — any topology-enabled config is auditor/differential-only.
  return !config.interactivity.enabled && !config.admission.buffer_aware &&
         !config.failure.brownout.enabled && !config.failure.retry.enabled &&
         !config.failure.repair.enabled && config.scripted_faults.empty() &&
         !config.topology.enabled;
}

RequestTrace engine_trace(const SimulationConfig& config) {
  const SeedPlan seeds = SeedPlan::derive(config.seed);
  std::unique_ptr<PopularityModel> popularity;
  if (config.drift.enabled) {
    popularity = std::make_unique<DriftingZipfPopularity>(
        config.system.num_videos, config.zipf_theta, config.drift.period,
        config.drift.step);
  } else {
    popularity = std::make_unique<StaticZipfPopularity>(config.system.num_videos,
                                                        config.zipf_theta);
  }
  RequestGenerator generator(PoissonProcess(config.arrival_rate()), *popularity,
                             seeds.arrival);
  return RequestTrace::record_until(generator, config.duration);
}

OracleResult run_reference(const SimulationConfig& config,
                           const RequestTrace& trace, Seconds max_step) {
  if (!oracle_supports(config)) {
    throw std::invalid_argument(
        "run_reference: config uses features outside the oracle's scope");
  }
  Oracle oracle(config, trace, max_step);
  return oracle.run();
}

std::string compare_against_engine(const VodSimulation& engine,
                                   const OracleResult& oracle) {
  std::ostringstream oss;
  auto count = [&oss](const char* name, std::uint64_t engine_value,
                      std::uint64_t oracle_value) {
    if (engine_value != oracle_value) {
      oss << name << ": engine " << engine_value << " vs oracle " << oracle_value
          << "; ";
    }
  };
  auto fluid = [&oss](const char* name, double engine_value, double oracle_value) {
    const double tolerance =
        1e-9 + 1e-9 * std::max(std::abs(engine_value), std::abs(oracle_value));
    if (std::abs(engine_value - oracle_value) > tolerance) {
      oss.precision(17);
      oss << name << ": engine " << engine_value << " vs oracle " << oracle_value
          << "; ";
    }
  };

  const Metrics& metrics = engine.metrics();
  count("arrivals", metrics.arrivals(), oracle.arrivals);
  count("accepts", metrics.accepts(), oracle.accepts);
  count("rejects", metrics.rejects(), oracle.rejects);
  count("migration_steps", metrics.migration_steps(), oracle.migration_steps);
  count("completions", metrics.completions(), oracle.completions);
  count("drops", metrics.drops(), oracle.drops);
  count("underflow_events", metrics.underflow_events(), oracle.underflow_events);
  count("replications", metrics.replications(), oracle.replications);
  count("continuity_violations", engine.continuity_violations(),
        oracle.continuity_violations);
  fluid("utilization", metrics.utilization(), oracle.utilization);
  fluid("rejection_ratio", metrics.rejection_ratio(), oracle.rejection_ratio);
  fluid("transmitted", metrics.transmitted(), oracle.transmitted);
  fluid("underflow_megabits", metrics.underflow_megabits(),
        oracle.underflow_megabits);
  return oss.str();
}

}  // namespace vodsim
