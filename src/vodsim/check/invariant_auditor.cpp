#include "vodsim/check/invariant_auditor.h"

#include <cmath>
#include <sstream>

#include "vodsim/cluster/request.h"
#include "vodsim/cluster/server.h"
#include "vodsim/engine/vod_simulation.h"

namespace vodsim {

namespace {

/// Narrow failure helper: everything the operator needs to reproduce and
/// localize the violation goes into the message (the throw site is cold).
[[noreturn]] void fail(const std::string& invariant, const std::ostringstream& detail) {
  throw AuditFailure("invariant violated: " + invariant + " — " + detail.str());
}

}  // namespace

InvariantAuditor::InvariantAuditor(const VodSimulation& simulation)
    : sim_(simulation) {
  last_epochs_.assign(sim_.servers().size(), 0);
  last_reachable_.assign(sim_.servers().size(), 1);
}

void InvariantAuditor::check_request(const Request& request, const Server& server,
                                     std::size_t index_on_server) {
  std::ostringstream d;
  d << "request " << request.id() << " on server " << server.id();
  if (request.state() != RequestState::kStreaming) {
    d << ": state " << static_cast<int>(request.state());
    fail("active requests are streaming", d);
  }
  if (request.server() != server.id()) {
    d << ": back-pointer " << request.server();
    fail("active request points at its server", d);
  }
  if (request.active_index != index_on_server) {
    d << ": active_index " << request.active_index << " != " << index_on_server;
    fail("active_index matches list position", d);
  }
  if (request.allocation() < -kTolerance) {
    d << ": allocation " << request.allocation();
    fail("allocation is nonnegative", d);
  }
  if (request.allocation() > request.receive_bandwidth() + kTolerance) {
    d << ": allocation " << request.allocation() << " > receive cap "
      << request.receive_bandwidth();
    fail("allocation respects the client receive cap", d);
  }
  if (request.buffer_level() < -kTolerance ||
      request.buffer_level() > request.buffer_capacity() + kTolerance) {
    d << ": buffer level " << request.buffer_level() << " capacity "
      << request.buffer_capacity();
    fail("staging buffer level within [0, capacity]", d);
  }
  if (request.remaining() < 0.0) {
    d << ": remaining " << request.remaining();
    fail("remaining data is nonnegative", d);
  }
}

void InvariantAuditor::check_server(const Server& server,
                                    const ServerExpectations& expect) {
  const std::vector<Request*>& active = server.active_requests();

  if (server.reserved_bandwidth() < -kTolerance) {
    std::ostringstream d;
    d << "server " << server.id() << ": reserved " << server.reserved_bandwidth();
    fail("reservations are nonnegative", d);
  }
  if (!server.available() && !active.empty()) {
    std::ostringstream d;
    d << "server " << server.id() << ": " << active.size() << " active streams";
    fail("failed servers host no streams", d);
  }
  // A partitioned server is up but unreachable: the partition-begin event
  // must have shed every stream (recover / park / drop), and no admission
  // or migration path may grant onto it while serviceable() is false.
  if (!server.reachable() && !active.empty()) {
    std::ostringstream d;
    d << "server " << server.id() << ": " << active.size()
      << " active streams while partitioned";
    fail("unreachable servers host no streams", d);
  }
  if (!server.reachable() && server.committed_bandwidth() > kTolerance) {
    std::ostringstream d;
    d << "server " << server.id() << ": committed "
      << server.committed_bandwidth() << " Mb/s while partitioned";
    fail("no grants on an unreachable server", d);
  }

  Mbps allocated = 0.0;
  Mbps committed = 0.0;
  for (std::size_t i = 0; i < active.size(); ++i) {
    const Request& request = *active[i];
    check_request(request, server, i);
    allocated += request.allocation();
    committed += request.view_bandwidth();
    if (expect.minimum_flow &&
        request.allocation() < request.minimum_rate() - kTolerance) {
      std::ostringstream d;
      d << "request " << request.id() << " on server " << server.id()
        << ": allocation " << request.allocation() << " < minimum "
        << request.minimum_rate();
      fail("minimum-flow guarantee", d);
    }
  }

  if (std::abs(server.committed_bandwidth() - committed) > kTolerance) {
    std::ostringstream d;
    d << "server " << server.id() << ": committed_bandwidth "
      << server.committed_bandwidth() << " vs active sum " << committed;
    fail("commitment bookkeeping matches the active set", d);
  }
  if (server.capacity_factor() <= 0.0 || server.capacity_factor() > 1.0) {
    std::ostringstream d;
    d << "server " << server.id() << ": capacity_factor "
      << server.capacity_factor();
    fail("brownout capacity factor stays in (0, 1]", d);
  }
  // Both capacity bounds use the *effective* (brownout-degraded) link:
  // the brownout-begin event sheds overload and recomputes within the same
  // event, so post-event state already fits the degraded capacity.
  if (expect.enforce_capacity &&
      server.committed_bandwidth() > server.effective_bandwidth() + kTolerance) {
    std::ostringstream d;
    d << "server " << server.id() << ": committed " << server.committed_bandwidth()
      << " > effective link " << server.effective_bandwidth();
    fail("admission never over-commits a server", d);
  }
  // Allocations must fit the physical link. Not schedulable_bandwidth():
  // a fresh migration reservation constrains only *future* allocations —
  // existing workahead keeps flowing until the next recompute touches the
  // server — so the reservation-adjusted bound would false-positive.
  if (allocated > server.effective_bandwidth() + kTolerance) {
    std::ostringstream d;
    d << "server " << server.id() << ": allocated " << allocated << " > link "
      << server.effective_bandwidth();
    fail("allocations fit the link", d);
  }
}

void InvariantAuditor::on_event() {
  const Seconds now = sim_.simulator().now();
  if (now + 1e-9 < last_event_time_) {
    std::ostringstream d;
    d << "now " << now << " after event at " << last_event_time_;
    fail("simulation time is monotone", d);
  }
  last_event_time_ = now;

  ServerExpectations expect;
  expect.minimum_flow = sim_.scheduler().minimum_flow();
  expect.enforce_capacity = !sim_.controller().config().buffer_aware;

  const std::vector<Server>& servers = sim_.servers();
  for (std::size_t i = 0; i < servers.size(); ++i) {
    const Server& server = servers[i];
    const std::uint64_t epoch = sim_.recompute_epoch(server.id());
    if (epoch < last_epochs_[i]) {
      std::ostringstream d;
      d << "server " << server.id() << ": epoch " << epoch << " after "
        << last_epochs_[i];
      fail("recompute epochs only move forward", d);
    }
    last_epochs_[i] = epoch;

    check_server(server, expect);
    for (const Request* request : server.active_requests()) {
      // Same named bound the mutators assert (util/units.h): the SoA fast
      // path cannot widen the fluid-clock tolerance without failing here.
      if (request->last_update() > now + kTimeSyncTolerance) {
        std::ostringstream d;
        d << "request " << request->id() << " updated at "
          << request->last_update() << ", now " << now;
        fail("fluid state never runs ahead of the clock", d);
      }
    }
    checks_run_ += 1 + server.active_requests().size();
    last_reachable_[i] = server.reachable() ? 1 : 0;
  }
  ++events_audited_;
}

void InvariantAuditor::on_advance(const Request& request, Seconds t0, Seconds t1) {
  if (t1 < t0 - 1e-12) {
    std::ostringstream d;
    d << "request " << request.id() << ": [" << t0 << ", " << t1 << "]";
    fail("transmission intervals run forward", d);
  }
  // No bits cross a partition: the interval streamed under the reachability
  // recorded at the last audited event (zero-length intervals never get
  // here; advance_and_account early-returns when now <= last_update).
  const auto server_index = static_cast<std::size_t>(request.server());
  if (t1 > t0 && server_index < last_reachable_.size() &&
      last_reachable_[server_index] == 0 &&
      request.allocation() * (t1 - t0) > kTolerance) {
    std::ostringstream d;
    d << "request " << request.id() << " on server " << request.server()
      << ": " << request.allocation() * (t1 - t0) << " Mb over [" << t0 << ", "
      << t1 << "] while partitioned";
    fail("no bits flow across a partition", d);
  }
  observed_flow_ += request.allocation() * (t1 - t0);
  ++intervals_observed_;
}

void InvariantAuditor::finalize() const {
  double delivered = 0.0;
  std::size_t request_count = 0;
  for (const Request& request : sim_.requests()) {
    delivered += request.delivered();
    ++request_count;

    if (request.state() == RequestState::kStreaming) {
      // Cut off by the horizon mid-stream: it must still be exactly where
      // its server's active list says it is.
      const auto server_index = static_cast<std::size_t>(request.server());
      if (server_index >= sim_.servers().size()) {
        std::ostringstream d;
        d << "request " << request.id() << ": server " << request.server();
        fail("streaming requests name a real server", d);
      }
      const Server& server = sim_.servers()[server_index];
      const std::vector<Request*>& active = server.active_requests();
      if (request.active_index >= active.size() ||
          active[request.active_index] != &request) {
        std::ostringstream d;
        d << "request " << request.id() << " missing from server "
          << server.id() << "'s active list";
        fail("streaming requests sit on their server's active list", d);
      }
    }
  }

  // Bits conservation: the flow integral the auditor accumulated on its own
  // must equal the per-request delivery ledger. Slop covers the per-
  // completion clamp (a predicted completion firing a float-ulp late
  // over-integrates by ~rate * ulp) plus relative accumulation error.
  const double slop =
      kTolerance * (1.0 + static_cast<double>(request_count)) + 1e-9 * observed_flow_;
  if (std::abs(observed_flow_ - delivered) > slop) {
    std::ostringstream d;
    d << "flow integral " << observed_flow_ << " Mb vs delivered " << delivered
      << " Mb over " << request_count << " requests";
    fail("transmitted bits reconcile with request sizes", d);
  }
  // The metrics meter the same intervals clipped to the window, so it can
  // only see less than the physical flow.
  if (sim_.metrics().transmitted() > observed_flow_ + slop) {
    std::ostringstream d;
    d << "metered " << sim_.metrics().transmitted() << " Mb vs physical flow "
      << observed_flow_ << " Mb";
    fail("metered transmission never exceeds physical flow", d);
  }
  if (sim_.metrics().utilization() > 1.0 + 1e-9) {
    std::ostringstream d;
    d << "utilization " << sim_.metrics().utilization();
    fail("utilization cannot exceed 1", d);
  }
  // "Measured never beats a proven bound": the analytic achievability
  // envelope (analysis/bounds.h) is a differential oracle — a run whose
  // utilization exceeds the achievable bound, or whose rejected+dropped
  // fraction beats the rejection lower bound by more than statistical
  // slack, has a simulator bug somewhere (metering, admission, or the
  // bound math itself). audit_bounds sizes the slack from the window and
  // arrival count, so tiny fuzz worlds stay noise-tolerant while
  // sweep-scale runs are checked tightly.
  const std::string bound_violation = audit_bounds(sim_.bounds(), sim_.metrics());
  if (!bound_violation.empty()) {
    std::ostringstream d;
    d << bound_violation;
    fail("measured results never beat the analytic bounds", d);
  }
}

}  // namespace vodsim
