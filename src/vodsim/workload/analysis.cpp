#include "vodsim/workload/analysis.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace vodsim {

double WorkloadProfile::head_share(std::size_t k) const {
  if (total == 0) return 0.0;
  k = std::min(k, by_popularity.size());
  std::uint64_t head = 0;
  for (std::size_t i = 0; i < k; ++i) {
    head += counts[static_cast<std::size_t>(by_popularity[i])];
  }
  return static_cast<double>(head) / static_cast<double>(total);
}

WorkloadProfile profile_trace(const RequestTrace& trace, std::size_t num_videos) {
  WorkloadProfile profile;
  profile.counts.assign(num_videos, 0);
  for (const Arrival& arrival : trace.arrivals()) {
    const auto index = static_cast<std::size_t>(arrival.video);
    assert(index < num_videos && "trace references a video outside the catalog");
    ++profile.counts[index];
    ++profile.total;
  }
  profile.shares.assign(num_videos, 0.0);
  if (profile.total > 0) {
    for (std::size_t i = 0; i < num_videos; ++i) {
      profile.shares[i] = static_cast<double>(profile.counts[i]) /
                          static_cast<double>(profile.total);
    }
  }
  profile.by_popularity.resize(num_videos);
  std::iota(profile.by_popularity.begin(), profile.by_popularity.end(), 0);
  std::sort(profile.by_popularity.begin(), profile.by_popularity.end(),
            [&](VideoId a, VideoId b) {
              const auto ca = profile.counts[static_cast<std::size_t>(a)];
              const auto cb = profile.counts[static_cast<std::size_t>(b)];
              if (ca != cb) return ca > cb;
              return a < b;
            });
  return profile;
}

double estimate_zipf_theta(const WorkloadProfile& profile) {
  // Regress log(count) on log(rank) over nonzero ranks.
  double sum_x = 0.0;
  double sum_y = 0.0;
  double sum_xx = 0.0;
  double sum_xy = 0.0;
  std::size_t n = 0;
  for (std::size_t rank = 0; rank < profile.by_popularity.size(); ++rank) {
    const auto count =
        profile.counts[static_cast<std::size_t>(profile.by_popularity[rank])];
    if (count == 0) break;  // rank order: zeros are all at the tail
    const double x = std::log(static_cast<double>(rank + 1));
    const double y = std::log(static_cast<double>(count));
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_xy += x * y;
    ++n;
  }
  if (n < 2) return 1.0;
  const double denom = static_cast<double>(n) * sum_xx - sum_x * sum_x;
  if (denom <= 0.0) return 1.0;
  const double slope =
      (static_cast<double>(n) * sum_xy - sum_x * sum_y) / denom;
  // slope = -(1 - theta)  =>  theta = 1 + slope.
  return 1.0 + slope;
}

double estimate_zipf_theta(ArrivalSource& source, std::size_t n,
                           std::size_t num_videos) {
  const RequestTrace trace = RequestTrace::record(source, n);
  return estimate_zipf_theta(profile_trace(trace, num_videos));
}

}  // namespace vodsim
