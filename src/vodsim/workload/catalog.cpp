#include "vodsim/workload/catalog.h"

#include <cassert>

namespace vodsim {

VideoCatalog generate_catalog(const CatalogSpec& spec, Rng& rng) {
  assert(spec.num_videos >= 1);
  assert(spec.min_duration > 0.0);
  assert(spec.min_duration <= spec.max_duration);
  assert(spec.view_bandwidth > 0.0);

  std::vector<Video> videos;
  videos.reserve(spec.num_videos);
  for (std::size_t i = 0; i < spec.num_videos; ++i) {
    Video video;
    video.id = static_cast<VideoId>(i);
    video.duration = rng.uniform(spec.min_duration, spec.max_duration);
    video.view_bandwidth = spec.view_bandwidth;
    videos.push_back(video);
  }
  return VideoCatalog(std::move(videos));
}

}  // namespace vodsim
