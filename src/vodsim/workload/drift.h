#pragma once

/// \file drift.h
/// \brief Popularity models: which video does the next request ask for?
///
/// The base model is the static Zipf-like law of the paper. The drifting
/// model rotates which titles occupy the popular ranks on a fixed epoch,
/// supporting the paper's claim that even allocation is oblivious to demand
/// shifts (a predictive placement computed at t=0 decays as demand drifts;
/// an even placement does not care).

#include <memory>
#include <vector>

#include "vodsim/cluster/video.h"
#include "vodsim/util/rng.h"
#include "vodsim/util/units.h"
#include "vodsim/workload/zipf.h"

namespace vodsim {

/// Maps simulation time to a probability distribution over video ids.
class PopularityModel {
 public:
  virtual ~PopularityModel() = default;

  /// Draws the video id requested at time \p now.
  virtual VideoId sample(Seconds now, Rng& rng) const = 0;

  /// Probability vector over video ids at time \p now (sums to 1).
  virtual std::vector<double> probabilities(Seconds now) const = 0;

  virtual std::size_t catalog_size() const = 0;
};

/// Static Zipf: video id i permanently holds popularity rank i.
class StaticZipfPopularity final : public PopularityModel {
 public:
  StaticZipfPopularity(std::size_t num_videos, double theta);

  VideoId sample(Seconds now, Rng& rng) const override;
  std::vector<double> probabilities(Seconds now) const override;
  std::size_t catalog_size() const override { return zipf_.size(); }

  const ZipfDistribution& zipf() const { return zipf_; }

 private:
  ZipfDistribution zipf_;
};

/// Rotating Zipf: at epoch e (epoch length `period`), popularity rank r is
/// held by video (r + e * step) mod N. With step > 0 the popular head of
/// the catalog moves over time while the shape of the law is unchanged.
class DriftingZipfPopularity final : public PopularityModel {
 public:
  /// \param period epoch length in seconds (> 0).
  /// \param step how many positions the ranking rotates per epoch (>= 0;
  ///        0 degenerates to the static model).
  DriftingZipfPopularity(std::size_t num_videos, double theta, Seconds period,
                         std::size_t step);

  VideoId sample(Seconds now, Rng& rng) const override;
  std::vector<double> probabilities(Seconds now) const override;
  std::size_t catalog_size() const override { return zipf_.size(); }

  /// Video holding rank \p rank at time \p now.
  VideoId video_at_rank(Seconds now, std::size_t rank) const;

  /// Epoch index at time \p now.
  std::size_t epoch(Seconds now) const;

 private:
  ZipfDistribution zipf_;
  Seconds period_;
  std::size_t step_;
};

}  // namespace vodsim
