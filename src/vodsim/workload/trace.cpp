#include "vodsim/workload/trace.h"

#include <cassert>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "vodsim/util/csv.h"

namespace vodsim {

RequestTrace::RequestTrace(std::vector<Arrival> arrivals)
    : arrivals_(std::move(arrivals)) {
  for (std::size_t i = 1; i < arrivals_.size(); ++i) {
    assert(arrivals_[i].time >= arrivals_[i - 1].time);
  }
}

void RequestTrace::append(Arrival arrival) {
  assert(arrivals_.empty() || arrival.time >= arrivals_.back().time);
  arrivals_.push_back(arrival);
}

void RequestTrace::save(std::ostream& out) const {
  CsvWriter writer(out);
  writer.write_row({"time_s", "video_id"});
  for (const Arrival& arrival : arrivals_) {
    writer.write_row({CsvWriter::field(arrival.time),
                      CsvWriter::field(static_cast<std::int64_t>(arrival.video))});
  }
}

RequestTrace RequestTrace::load(std::istream& in) {
  std::string line;
  std::vector<std::string> fields;
  if (!std::getline(in, line)) throw std::runtime_error("trace: empty input");
  if (!parse_csv_line(line, fields) || fields.size() != 2 || fields[0] != "time_s" ||
      fields[1] != "video_id") {
    throw std::runtime_error("trace: bad header, expected time_s,video_id");
  }
  RequestTrace trace;
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (!parse_csv_line(line, fields) || fields.size() != 2) {
      throw std::runtime_error("trace: malformed line " + std::to_string(line_number));
    }
    Arrival arrival;
    try {
      arrival.time = std::stod(fields[0]);
      arrival.video = static_cast<VideoId>(std::stol(fields[1]));
    } catch (const std::exception&) {
      throw std::runtime_error("trace: unparsable line " + std::to_string(line_number));
    }
    if (!trace.empty() && arrival.time < trace.arrivals_.back().time) {
      throw std::runtime_error("trace: time goes backwards at line " +
                               std::to_string(line_number));
    }
    trace.arrivals_.push_back(arrival);
  }
  return trace;
}

RequestTrace RequestTrace::record(ArrivalSource& source, std::size_t count) {
  RequestTrace trace;
  for (std::size_t i = 0; i < count; ++i) {
    auto arrival = source.next();
    if (!arrival) break;
    trace.append(*arrival);
  }
  return trace;
}

RequestTrace RequestTrace::record_until(ArrivalSource& source, Seconds horizon) {
  RequestTrace trace;
  for (;;) {
    auto arrival = source.next();
    if (!arrival || arrival->time > horizon) break;
    trace.append(*arrival);
  }
  return trace;
}

std::optional<Arrival> TraceArrivalSource::next() {
  if (index_ >= trace_.size()) return std::nullopt;
  return trace_[index_++];
}

}  // namespace vodsim
