#pragma once

/// \file analysis.h
/// \brief Workload analysis: estimate popularity structure from traces.
///
/// Real deployments do not know theta; they have request logs. This module
/// turns a trace into (a) empirical per-video request shares — the input a
/// predictive/partial-predictive placement actually consumes — and (b) a
/// fitted Zipf skew parameter, using the paper's parameterization
/// p_i ∝ i^-(1-theta). The fit is a least-squares regression of
/// log(frequency) on log(rank), which is the standard estimator for
/// Zipf-like laws and is exact in expectation for data drawn from one.

#include <cstdint>
#include <vector>

#include "vodsim/cluster/video.h"
#include "vodsim/workload/trace.h"

namespace vodsim {

/// Per-video request statistics extracted from a trace.
struct WorkloadProfile {
  /// Requests per video id (index = VideoId), length = catalog size.
  std::vector<std::uint64_t> counts;
  /// Empirical request probabilities (same indexing; sums to 1 when the
  /// trace is non-empty).
  std::vector<double> shares;
  /// Video ids sorted by decreasing popularity (rank order).
  std::vector<VideoId> by_popularity;
  std::uint64_t total = 0;

  /// Fraction of requests hitting the top k videos.
  double head_share(std::size_t k) const;
};

/// Tabulates a trace. \p num_videos must cover every id in the trace.
WorkloadProfile profile_trace(const RequestTrace& trace, std::size_t num_videos);

/// Least-squares fit of the paper's Zipf parameterization to observed
/// counts: regress log(count_rank) on log(rank) over ranks with nonzero
/// counts; the slope is -(1 - theta), so theta = 1 + slope. Requires at
/// least two distinct nonzero ranks; returns the uniform value 1.0 when the
/// data cannot identify a slope.
double estimate_zipf_theta(const WorkloadProfile& profile);

/// Convenience: record `n` arrivals from a source and fit theta.
double estimate_zipf_theta(ArrivalSource& source, std::size_t n,
                           std::size_t num_videos);

}  // namespace vodsim
