#include "vodsim/workload/poisson.h"

#include <cassert>

namespace vodsim {

PoissonProcess::PoissonProcess(double rate) : rate_(rate) { assert(rate > 0.0); }

Seconds PoissonProcess::next_gap(Rng& rng) const { return rng.exponential(rate_); }

double offered_load_rate(Mbps total_bandwidth, Seconds mean_video_seconds,
                         Mbps view_bandwidth, double load_factor) {
  assert(total_bandwidth > 0.0);
  assert(mean_video_seconds > 0.0);
  assert(view_bandwidth > 0.0);
  const Megabits mean_size = mean_video_seconds * view_bandwidth;
  return load_factor * total_bandwidth / mean_size;
}

}  // namespace vodsim
