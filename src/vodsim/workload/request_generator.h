#pragma once

/// \file request_generator.h
/// \brief Arrival sources: Poisson + popularity online generation.

#include <memory>
#include <optional>

#include "vodsim/cluster/video.h"
#include "vodsim/util/rng.h"
#include "vodsim/util/units.h"
#include "vodsim/workload/drift.h"
#include "vodsim/workload/poisson.h"

namespace vodsim {

/// One request arrival.
struct Arrival {
  Seconds time = 0.0;
  VideoId video = -1;
};

/// Abstract stream of arrivals, consumed in time order by the engine.
class ArrivalSource {
 public:
  virtual ~ArrivalSource() = default;

  /// Returns the next arrival, or nullopt when the source is exhausted
  /// (online generators never exhaust; the engine stops at the horizon).
  virtual std::optional<Arrival> next() = 0;
};

/// Online generator: Poisson interarrivals, video drawn from a popularity
/// model at the arrival instant.
class RequestGenerator final : public ArrivalSource {
 public:
  /// \param process arrival process (copied).
  /// \param popularity model; must outlive the generator.
  /// \param seed private RNG seed for this arrival stream.
  RequestGenerator(PoissonProcess process, const PopularityModel& popularity,
                   std::uint64_t seed);

  std::optional<Arrival> next() override;

  Seconds clock() const { return clock_; }

 private:
  PoissonProcess process_;
  const PopularityModel& popularity_;
  Rng rng_;
  Seconds clock_ = 0.0;
};

}  // namespace vodsim
