#include "vodsim/workload/request_generator.h"

namespace vodsim {

RequestGenerator::RequestGenerator(PoissonProcess process,
                                   const PopularityModel& popularity,
                                   std::uint64_t seed)
    : process_(process), popularity_(popularity), rng_(seed) {}

std::optional<Arrival> RequestGenerator::next() {
  clock_ += process_.next_gap(rng_);
  return Arrival{clock_, popularity_.sample(clock_, rng_)};
}

}  // namespace vodsim
