#pragma once

/// \file catalog.h
/// \brief Video catalog generation.
///
/// The paper draws each video's length uniformly at random from a range
/// (10-30 min for the small system, 1-2 h for the large one); all videos
/// play at the same view bandwidth (3 Mb/s).

#include "vodsim/cluster/video.h"
#include "vodsim/util/rng.h"
#include "vodsim/util/units.h"

namespace vodsim {

/// Parameters for catalog generation.
struct CatalogSpec {
  std::size_t num_videos = 100;
  Seconds min_duration = minutes(10);
  Seconds max_duration = minutes(30);
  Mbps view_bandwidth = 3.0;
};

/// Generates a catalog with uniformly distributed durations. Video ids are
/// dense 0..n-1 and — by convention throughout vodsim — id order is base
/// popularity-rank order (video 0 is the a-priori most popular title).
VideoCatalog generate_catalog(const CatalogSpec& spec, Rng& rng);

}  // namespace vodsim
