#include "vodsim/workload/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace vodsim {

ZipfDistribution::ZipfDistribution(std::size_t n, double theta) : theta_(theta) {
  assert(n >= 1);
  pmf_.resize(n);
  const double exponent = 1.0 - theta;
  double norm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    pmf_[i] = std::pow(static_cast<double>(i + 1), -exponent);
    norm += pmf_[i];
  }
  cdf_.resize(n);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    pmf_[i] /= norm;
    cumulative += pmf_[i];
    cdf_[i] = cumulative;
  }
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

double ZipfDistribution::head_mass(std::size_t k) const {
  k = std::min(k, pmf_.size());
  if (k == 0) return 0.0;
  return cdf_[k - 1];
}

}  // namespace vodsim
