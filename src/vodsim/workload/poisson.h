#pragma once

/// \file poisson.h
/// \brief Homogeneous Poisson arrival process.
///
/// The paper's request arrivals are Poisson with the rate chosen so the
/// *offered* load equals 100% of aggregate server bandwidth:
///
///     lambda = (sum of server bandwidth) / (E[video length] * b_view)

#include "vodsim/util/rng.h"
#include "vodsim/util/units.h"

namespace vodsim {

class PoissonProcess {
 public:
  /// \param rate arrivals per second (> 0).
  explicit PoissonProcess(double rate);

  double rate() const { return rate_; }

  /// Draws the next interarrival gap (exponential with mean 1/rate).
  Seconds next_gap(Rng& rng) const;

 private:
  double rate_;
};

/// Arrival rate that makes the offered load \p load_factor x the aggregate
/// service capacity. \p total_bandwidth in Mb/s, \p mean_video_seconds the
/// expected video duration, \p view_bandwidth the playback rate in Mb/s.
double offered_load_rate(Mbps total_bandwidth, Seconds mean_video_seconds,
                         Mbps view_bandwidth, double load_factor = 1.0);

}  // namespace vodsim
