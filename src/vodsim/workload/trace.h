#pragma once

/// \file trace.h
/// \brief Request traces: record an arrival stream, replay it later.
///
/// Traces make cross-policy comparisons paired (identical arrivals under
/// every policy) and let users feed real-world logs into the simulator.
/// Format: a CSV with header `time_s,video_id`.

#include <iosfwd>
#include <string>
#include <vector>

#include "vodsim/workload/request_generator.h"

namespace vodsim {

/// In-memory trace, non-decreasing in time.
class RequestTrace {
 public:
  RequestTrace() = default;
  explicit RequestTrace(std::vector<Arrival> arrivals);

  std::size_t size() const { return arrivals_.size(); }
  bool empty() const { return arrivals_.empty(); }
  const Arrival& operator[](std::size_t i) const { return arrivals_[i]; }
  const std::vector<Arrival>& arrivals() const { return arrivals_; }

  void append(Arrival arrival);

  /// Serializes as CSV (`time_s,video_id` header + one row per arrival).
  void save(std::ostream& out) const;

  /// Parses a CSV trace. Throws std::runtime_error on malformed input or
  /// time going backwards.
  static RequestTrace load(std::istream& in);

  /// Records \p count arrivals from a generator.
  static RequestTrace record(ArrivalSource& source, std::size_t count);

  /// Records arrivals up to time \p horizon.
  static RequestTrace record_until(ArrivalSource& source, Seconds horizon);

 private:
  std::vector<Arrival> arrivals_;
};

/// Replays a trace as an ArrivalSource.
class TraceArrivalSource final : public ArrivalSource {
 public:
  /// \param trace must outlive the source.
  explicit TraceArrivalSource(const RequestTrace& trace) : trace_(trace) {}

  std::optional<Arrival> next() override;

 private:
  const RequestTrace& trace_;
  std::size_t index_ = 0;
};

}  // namespace vodsim
