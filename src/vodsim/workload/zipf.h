#pragma once

/// \file zipf.h
/// \brief Zipf-like popularity distribution, paper parameterization.
///
/// The paper (following Dan & Sitaram) draws video popularity from a
/// Zipf-like law over N items with skew parameter theta:
///
///     p_i = c / i^(1 - theta),   c = 1 / sum_{i=1..N} i^-(1 - theta)
///
/// theta = 1 is the uniform distribution; theta = 0 is the classical Zipf
/// (exponent 1); negative theta is *more* skewed than Zipf (the paper sweeps
/// theta from -1.5 to 1). Larger N also increases effective skew at fixed
/// theta.

#include <cstddef>
#include <vector>

#include "vodsim/util/rng.h"

namespace vodsim {

class ZipfDistribution {
 public:
  /// \param n number of items (>= 1); item ranks are 1..n, indices 0..n-1.
  /// \param theta skew; 1 = uniform, 0 = Zipf, < 0 = super-Zipf skew.
  ZipfDistribution(std::size_t n, double theta);

  std::size_t size() const { return pmf_.size(); }
  double theta() const { return theta_; }

  /// Probability of the item with rank index \p i (0-based; rank i+1).
  double pmf(std::size_t i) const { return pmf_[i]; }

  /// Full probability vector (rank order, most popular first).
  const std::vector<double>& probabilities() const { return pmf_; }

  /// Samples a 0-based rank index: O(log n) via CDF binary search.
  std::size_t sample(Rng& rng) const;

  /// Fraction of probability mass on the top \p k items.
  double head_mass(std::size_t k) const;

 private:
  double theta_;
  std::vector<double> pmf_;
  std::vector<double> cdf_;
};

}  // namespace vodsim
