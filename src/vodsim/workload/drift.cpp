#include "vodsim/workload/drift.h"

#include <cassert>
#include <cmath>

namespace vodsim {

StaticZipfPopularity::StaticZipfPopularity(std::size_t num_videos, double theta)
    : zipf_(num_videos, theta) {}

VideoId StaticZipfPopularity::sample(Seconds /*now*/, Rng& rng) const {
  return static_cast<VideoId>(zipf_.sample(rng));
}

std::vector<double> StaticZipfPopularity::probabilities(Seconds /*now*/) const {
  return zipf_.probabilities();
}

DriftingZipfPopularity::DriftingZipfPopularity(std::size_t num_videos, double theta,
                                               Seconds period, std::size_t step)
    : zipf_(num_videos, theta), period_(period), step_(step) {
  assert(period > 0.0);
}

std::size_t DriftingZipfPopularity::epoch(Seconds now) const {
  if (now <= 0.0) return 0;
  return static_cast<std::size_t>(std::floor(now / period_));
}

VideoId DriftingZipfPopularity::video_at_rank(Seconds now, std::size_t rank) const {
  const std::size_t n = zipf_.size();
  const std::size_t shift = (epoch(now) * step_) % n;
  return static_cast<VideoId>((rank + shift) % n);
}

VideoId DriftingZipfPopularity::sample(Seconds now, Rng& rng) const {
  return video_at_rank(now, zipf_.sample(rng));
}

std::vector<double> DriftingZipfPopularity::probabilities(Seconds now) const {
  std::vector<double> probs(zipf_.size(), 0.0);
  for (std::size_t rank = 0; rank < zipf_.size(); ++rank) {
    probs[static_cast<std::size_t>(video_at_rank(now, rank))] = zipf_.pmf(rank);
  }
  return probs;
}

}  // namespace vodsim
