#include "vodsim/replication/replication.h"

#include <algorithm>
#include <cassert>

namespace vodsim {

ReplicationManager::ReplicationManager(ReplicationConfig config)
    : config_(config) {
  assert(config_.rejection_threshold >= 1);
  assert(config_.window > 0.0);
  assert(config_.transfer_bandwidth > 0.0);
  assert(config_.max_concurrent >= 1);
}

int ReplicationManager::prune_and_count(VideoId video, Seconds now) {
  while (!recent_.empty() && recent_.front().time < now - config_.window) {
    recent_.pop_front();
  }
  int count = 0;
  for (const Rejection& rejection : recent_) {
    if (rejection.video == video) ++count;
  }
  return count;
}

std::optional<ReplicationJob> ReplicationManager::on_rejection(
    VideoId video, Seconds now, const VideoCatalog& catalog,
    const std::vector<Server>& servers, const ReplicaDirectory& directory) {
  if (!config_.enabled) return std::nullopt;

  recent_.push_back(Rejection{now, video});
  const int count = prune_and_count(video, now);

  if (count < config_.rejection_threshold) return std::nullopt;
  return plan_copy(video, catalog, servers, directory);
}

std::optional<ReplicationJob> ReplicationManager::plan_repair(
    VideoId video, const VideoCatalog& catalog,
    const std::vector<Server>& servers, const ReplicaDirectory& directory) {
  return plan_copy(video, catalog, servers, directory);
}

std::optional<ReplicationJob> ReplicationManager::plan_copy(
    VideoId video, const VideoCatalog& catalog,
    const std::vector<Server>& servers, const ReplicaDirectory& directory) {
  if (in_flight_ >= config_.max_concurrent) return std::nullopt;
  if (config_.max_total >= 0 && total_started_ >= config_.max_total) {
    return std::nullopt;
  }
  if (std::find(copying_.begin(), copying_.end(), video) != copying_.end()) {
    return std::nullopt;  // copy already in flight for this title
  }

  const Video& object = catalog[video];

  // Source: the holder with the most slack (available, and able to spare
  // the transfer bandwidth without displacing committed streams). If none
  // qualifies — typical, since the title is hot exactly because its holders
  // are saturated — fall back to tertiary storage when permitted.
  ServerId source = kNoServer;
  for (ServerId holder : directory.holders(video)) {
    const Server& s = servers[static_cast<std::size_t>(holder)];
    if (!s.serviceable()) continue;
    if (s.slack() < config_.transfer_bandwidth) continue;
    if (source == kNoServer ||
        s.slack() > servers[static_cast<std::size_t>(source)].slack()) {
      source = holder;
    }
  }
  if (source == kNoServer && !config_.allow_tertiary_source) return std::nullopt;

  // Destination: best non-holder with storage for the object. Without a
  // topology the sole criterion is slack; with one, domain spread comes
  // first — fewest existing *serviceable* copies in the candidate's zone,
  // then rack, then slack — so a repair copy lands in a surviving domain
  // instead of refilling the damaged one.
  const bool spread = topology_ != nullptr && topology_->enabled();
  ServerId destination = kNoServer;
  int dest_zone_copies = 0;
  int dest_rack_copies = 0;
  for (const Server& s : servers) {
    if (!s.serviceable() || s.holds(video)) continue;
    if (s.storage_free() < object.size()) continue;
    if (s.slack() < config_.transfer_bandwidth) continue;
    int zone_copies = 0;
    int rack_copies = 0;
    if (spread) {
      for (ServerId holder : directory.holders(video)) {
        const Server& h = servers[static_cast<std::size_t>(holder)];
        if (!h.serviceable()) continue;
        if (topology_->zone_of(holder) == topology_->zone_of(s.id())) {
          ++zone_copies;
        }
        if (topology_->rack_of(holder) == topology_->rack_of(s.id())) {
          ++rack_copies;
        }
      }
    }
    bool better;
    if (destination == kNoServer) {
      better = true;
    } else if (spread && zone_copies != dest_zone_copies) {
      better = zone_copies < dest_zone_copies;
    } else if (spread && rack_copies != dest_rack_copies) {
      better = rack_copies < dest_rack_copies;
    } else {
      better = s.slack() > servers[static_cast<std::size_t>(destination)].slack();
    }
    if (better) {
      destination = s.id();
      dest_zone_copies = zone_copies;
      dest_rack_copies = rack_copies;
    }
  }
  if (destination == kNoServer) return std::nullopt;

  ReplicationJob job;
  job.video = video;
  job.source = source;
  job.destination = destination;
  job.transfer_time = object.size() / config_.transfer_bandwidth;
  copying_.push_back(video);
  return job;
}

void ReplicationManager::on_job_started() {
  ++in_flight_;
  ++total_started_;
}

void ReplicationManager::on_job_finished(VideoId video) {
  assert(in_flight_ > 0);
  --in_flight_;
  // The title is no longer "copying": it gained a replica, and a future
  // trigger may legitimately copy it again elsewhere.
  const auto it = std::find(copying_.begin(), copying_.end(), video);
  if (it != copying_.end()) copying_.erase(it);
}

}  // namespace vodsim
