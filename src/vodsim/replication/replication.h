#pragma once

/// \file replication.h
/// \brief Dynamic replication: the resource-intensive alternative to DRM.
///
/// Paper §3.1: when every holder of a requested video is full, "more
/// resource intensive solutions perform dynamic replication of the
/// requested object on another server where resources can be made
/// available" (cf. Dan/Kienzle/Sitaram [9] and Chou/Golubchik/Lui [7]).
/// vodsim implements it as a comparator to DRM:
///
///   - a per-video rejection counter with a sliding window triggers
///     replication of persistently hot titles;
///   - the copy streams from an existing holder to a server that has the
///     storage and does not yet hold the title, consuming a configurable
///     amount of link bandwidth on BOTH ends for size/rate seconds (this is
///     the "resource intensive" part — replication competes with viewers);
///   - on completion the replica directory gains a holder and future
///     arrivals can be admitted there.
///
/// The decision logic lives here (pure, unit-testable); the engine owns the
/// clock and executes the transfers.
///
/// Sharded engine (DESIGN.md §12): a replication transfer consumes link
/// bandwidth on two servers that may live in different shards, so
/// replication start/complete events execute on the serial coordinator
/// queue; shards only ever see the resulting bandwidth changes through
/// their own servers' recompute.

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "vodsim/admission/controller.h"
#include "vodsim/cluster/server.h"
#include "vodsim/cluster/topology.h"
#include "vodsim/cluster/video.h"
#include "vodsim/util/units.h"

namespace vodsim {

struct ReplicationConfig {
  bool enabled = false;

  /// A video is replicated after this many rejections inside `window`.
  int rejection_threshold = 3;

  /// Sliding window for the rejection counter.
  Seconds window = 600.0;

  /// Link bandwidth consumed on the source AND destination server while the
  /// copy is in flight. Higher = faster copies but more viewer impact.
  Mbps transfer_bandwidth = 30.0;

  /// Cluster-wide cap on in-flight copies.
  int max_concurrent = 2;

  /// Optional cap on total replicas created during a run (-1 = unlimited).
  int max_total = -1;

  /// When no on-line holder has the slack to source the copy (the common
  /// case — a title is being replicated precisely because its holders are
  /// saturated), stream it from the cluster's tertiary storage instead
  /// (paper §2: the architecture includes tertiary storage holding the full
  /// catalog). A tertiary-sourced copy consumes link bandwidth only at the
  /// destination.
  bool allow_tertiary_source = true;
};

/// A planned copy of `video` from `source` to `destination`.
/// source == kNoServer means the copy streams from tertiary storage.
struct ReplicationJob {
  VideoId video = -1;
  ServerId source = kNoServer;
  ServerId destination = kNoServer;
  Seconds transfer_time = 0.0;

  bool from_tertiary() const { return source == kNoServer; }
};

/// Tracks rejection history and decides when/where to replicate.
class ReplicationManager {
 public:
  explicit ReplicationManager(ReplicationConfig config);

  const ReplicationConfig& config() const { return config_; }

  /// Makes destination selection failure-domain aware: among candidates,
  /// prefer servers in zones (then racks) holding the fewest existing
  /// copies of the title, so repair re-replication rebuilds spread rather
  /// than piling copies back into the surviving half of a damaged rack.
  /// With a null or disabled topology the legacy best-slack rule applies
  /// unchanged (bit-identical selection). Non-owning; must outlive this.
  void set_topology(const Topology* topology) { topology_ = topology; }

  /// Records a rejection of \p video at time \p now and, if the trigger
  /// fires and resources exist, returns the job to start. The caller must
  /// then invoke on_job_started() (reserving link bandwidth itself).
  ///
  /// Source selection: the holder with the most bandwidth slack (the copy
  /// steals the least from viewers). Destination: the non-holder with
  /// enough free storage, preferring the most bandwidth slack.
  std::optional<ReplicationJob> on_rejection(
      VideoId video, Seconds now, const VideoCatalog& catalog,
      const std::vector<Server>& servers, const ReplicaDirectory& directory);

  /// Plans a repair copy of \p video — a long-down server's title the fault
  /// subsystem found with no available holder. Bypasses the rejection
  /// trigger and the `enabled` flag (repair is driven by the failure
  /// config), but honors the concurrency/total caps and the per-title
  /// in-flight dedup. Source selection works like on_rejection; with no
  /// available holder the copy necessarily streams from tertiary storage,
  /// so allow_tertiary_source=false makes repair a no-op.
  std::optional<ReplicationJob> plan_repair(VideoId video,
                                            const VideoCatalog& catalog,
                                            const std::vector<Server>& servers,
                                            const ReplicaDirectory& directory);

  /// Bookkeeping for the concurrency cap and the per-title in-flight set.
  void on_job_started();
  void on_job_finished(VideoId video);

  int in_flight() const { return in_flight_; }
  int total_started() const { return total_started_; }

 private:
  /// Drops window-expired rejections and returns the live count for video.
  int prune_and_count(VideoId video, Seconds now);

  /// Shared cap/dedup checks + source/destination selection; marks the
  /// title in-flight when a job is planned.
  std::optional<ReplicationJob> plan_copy(VideoId video,
                                          const VideoCatalog& catalog,
                                          const std::vector<Server>& servers,
                                          const ReplicaDirectory& directory);

  ReplicationConfig config_;
  const Topology* topology_ = nullptr;
  struct Rejection {
    Seconds time;
    VideoId video;
  };
  std::deque<Rejection> recent_;
  /// Videos already being copied (suppress duplicate jobs).
  std::vector<VideoId> copying_;
  int in_flight_ = 0;
  int total_started_ = 0;
};

}  // namespace vodsim
