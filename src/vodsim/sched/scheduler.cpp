#include "vodsim/sched/scheduler.h"

#include <cassert>
#include <stdexcept>

#include "vodsim/sched/continuous.h"
#include "vodsim/sched/eftf.h"
#include "vodsim/sched/intermittent.h"
#include "vodsim/sched/lftf.h"
#include "vodsim/sched/proportional.h"

namespace vodsim {

std::unique_ptr<BandwidthScheduler> make_scheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kEftf:
      return std::make_unique<EftfScheduler>();
    case SchedulerKind::kContinuous:
      return std::make_unique<ContinuousScheduler>();
    case SchedulerKind::kProportional:
      return std::make_unique<ProportionalShareScheduler>();
    case SchedulerKind::kLftf:
      return std::make_unique<LftfScheduler>();
    case SchedulerKind::kIntermittent:
      return std::make_unique<IntermittentScheduler>();
  }
  throw std::invalid_argument("unknown SchedulerKind");
}

SchedulerKind scheduler_kind_from_string(const std::string& name) {
  if (name == "eftf") return SchedulerKind::kEftf;
  if (name == "continuous") return SchedulerKind::kContinuous;
  if (name == "proportional") return SchedulerKind::kProportional;
  if (name == "lftf") return SchedulerKind::kLftf;
  if (name == "intermittent") return SchedulerKind::kIntermittent;
  throw std::invalid_argument("unknown scheduler: " + name);
}

std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kEftf:
      return "eftf";
    case SchedulerKind::kContinuous:
      return "continuous";
    case SchedulerKind::kProportional:
      return "proportional";
    case SchedulerKind::kLftf:
      return "lftf";
    case SchedulerKind::kIntermittent:
      return "intermittent";
  }
  return "?";
}

namespace sched_detail {

// Declared in scheduler.h: shared with finish_order.cpp's batched sort-key
// fill. The doc comment lives on the declaration.
const FluidLane* lane_view(const std::vector<Request*>& active) {
  if (active.empty()) return nullptr;
  const FluidLane* lane = active.front()->lane();
  if (lane == nullptr || lane->size() != active.size() ||
      active.front()->active_index != 0 || active.back()->lane() != lane ||
      active.back()->active_index != active.size() - 1) {
    return nullptr;
  }
#ifndef NDEBUG
  for (std::size_t i = 0; i < active.size(); ++i) {
    assert(active[i]->lane() == lane && active[i]->active_index == i &&
           "lane-backed candidate vector out of slot order");
  }
#endif
  return lane;
}

Mbps assign_minimum_flow(Mbps capacity, const std::vector<Request*>& active,
                         std::vector<Mbps>& rates) {
  Mbps committed = 0.0;
  if (const FluidLane* lane = lane_view(active)) {
    committed = lane->sum_minimum_rates(rates);
  } else {
    rates.assign(active.size(), 0.0);
    for (std::size_t i = 0; i < active.size(); ++i) {
      // minimum_rate() is the view bandwidth except for a paused client
      // whose staging disk is full — it cannot absorb anything, so its
      // share of the link becomes slack for the others until it resumes.
      rates[i] = active[i]->minimum_rate();
      committed += rates[i];
    }
  }
  assert(committed <= capacity + 1e-6 && "admission over-committed the server");
  return capacity > committed ? capacity - committed : 0.0;
}

bool workahead_eligible(const Request& request) {
  return !request.buffer_full() &&
         request.receive_bandwidth() > request.view_bandwidth() &&
         !request.finished();
}

void eligible_indices(const std::vector<Request*>& active,
                      std::vector<std::size_t>& out) {
  out.clear();
  if (const FluidLane* lane = lane_view(active)) {
    lane->eligible_slots(out);
    return;
  }
  for (std::size_t i = 0; i < active.size(); ++i) {
    if (workahead_eligible(*active[i])) out.push_back(i);
  }
}

void distribute_greedy(Mbps slack, const std::vector<std::size_t>& order,
                       const std::vector<Request*>& active,
                       std::vector<Mbps>& rates) {
  for (std::size_t index : order) {
    if (slack <= 0.0) break;
    const Request& request = *active[index];
    const Mbps room = request.receive_bandwidth() - rates[index];
    if (room <= 0.0) continue;
    const Mbps grant = std::min(slack, room);
    rates[index] += grant;
    slack -= grant;
  }
}

}  // namespace sched_detail

}  // namespace vodsim
