#include "vodsim/sched/intermittent.h"

#include <algorithm>
#include <cassert>

#include "vodsim/sched/finish_order.h"

namespace vodsim {

IntermittentScheduler::IntermittentScheduler(Seconds safety_cover)
    : safety_cover_(safety_cover) {
  assert(safety_cover >= 0.0);
}

namespace {

/// Smoothing horizon for the absorption cap (seconds).
constexpr Seconds kAbsorptionHorizon = 10.0;

/// Tolerance on staged-cover comparisons (seconds); must be at least the
/// engine's buffer-level tolerance expressed in playback time.
constexpr Seconds kCoverTolerance = 1e-6;

/// Highest rate the client can usefully absorb over the smoothing horizon:
/// its drain rate plus enough to fill the remaining headroom in
/// kAbsorptionHorizon seconds. Without this cap a near-full viewing buffer
/// would flip between "full -> 0 Mb/s" and "hairline below full -> receive
/// cap" every few nanoseconds of simulated time (fluid-model chattering);
/// with it, the grant converges smoothly to the drain rate as the buffer
/// fills, and buffer-full predictions stay at least ~kAbsorptionHorizon
/// apart.
Mbps absorption_cap(const Request& request, Seconds now) {
  return request.drain_rate(now) +
         request.buffer_headroom() / kAbsorptionHorizon;
}

}  // namespace

void IntermittentScheduler::allocate(Seconds now, Mbps capacity,
                                     const std::vector<Request*>& active,
                                     std::vector<Mbps>& rates,
                                     AllocationScratch& scratch,
                                     SchedCache* cache) const {
  rates.assign(active.size(), 0.0);
  Mbps left = capacity;

  // Phase 1 — safety. A fluid model chatters if an urgent stream is fed
  // exactly its drain rate (its level pins to the threshold and membership
  // flips every epsilon), so urgency is handled with two stabilizing rules:
  //   - when the link can cover every urgent stream's drain, urgent streams
  //     are additionally *boosted* toward their receive caps (most-starved
  //     first) so they refill well clear of the threshold;
  //   - in a crunch (over-committed link), the shortfall is shared
  //     proportionally — membership stays stable while everyone drains.
  std::vector<std::size_t>& urgent = scratch.aux;
  urgent.clear();
  Mbps urgent_drain = 0.0;
  for (std::size_t i = 0; i < active.size(); ++i) {
    Request& request = *active[i];
    const Mbps drain = request.drain_rate(now);
    if (drain <= 0.0) continue;  // paused or past the end: nothing to protect
    // Hysteresis: latch urgency below the safety threshold, release only
    // after recovering to twice the threshold. A knife-edge membership test
    // would chatter (fed -> above threshold -> starved -> below -> ...).
    const Seconds cover =
        request.buffer_cover();
    // The engine's buffer-low wake-up fires when cover *reaches* the
    // threshold (and then stops waking, trusting the scheduler), so the
    // latch must engage at equality too — hence the tolerance.
    const bool was_urgent = request.workahead_urgent;
    if (cover <= safety_cover_ + kCoverTolerance) {
      request.workahead_urgent = true;
    } else if (cover >= 2.0 * safety_cover_) {
      request.workahead_urgent = false;
    }
    if (request.workahead_urgent != was_urgent && trace_ != nullptr &&
        trace_->wants(kTraceSched)) {
      trace_->record(now,
                     request.workahead_urgent ? TraceEventType::kUrgentOn
                                              : TraceEventType::kUrgentOff,
                     request.server(), request.id(), request.video_id(), cover);
    }
    if (request.workahead_urgent) {
      urgent.push_back(i);
      urgent_drain += drain;
    }
  }

  if (urgent_drain > left) {
    // Crunch: continuity is already at risk; ration proportionally.
    for (std::size_t index : urgent) {
      const Request& request = *active[index];
      rates[index] = left * request.drain_rate(now) / urgent_drain;
    }
    return;
  }

  std::sort(urgent.begin(), urgent.end(), [&](std::size_t a, std::size_t b) {
    const Megabits la = active[a]->buffer_level();
    const Megabits lb = active[b]->buffer_level();
    if (la != lb) return la < lb;
    return active[a]->id() < active[b]->id();
  });
  for (std::size_t index : urgent) {
    const Request& request = *active[index];
    rates[index] = request.drain_rate(now);
    left -= rates[index];
  }
  // Refill boost, most-starved first.
  for (std::size_t index : urgent) {
    if (left <= 0.0) break;
    const Request& request = *active[index];
    if (request.buffer_full()) continue;
    const Mbps cap = std::min(request.receive_bandwidth(),
                              absorption_cap(request, now));
    const Mbps grant = std::min(left, cap - rates[index]);
    if (grant <= 0.0) continue;
    rates[index] += grant;
    left -= grant;
  }

  // Phase 2 — greedy workahead, earliest projected finish first, bounded by
  // what each client can absorb.
  if (left <= 0.0) return;
  std::vector<std::size_t>& order = scratch.order;
  order.clear();
  for (std::size_t i = 0; i < active.size(); ++i) {
    const Request& request = *active[i];
    if (request.buffer_full()) continue;
    if (rates[i] >= request.receive_bandwidth()) continue;
    order.push_back(i);
  }
  // Cache-seeded repair of the previous workahead order (phase 1's urgent
  // sort keys on buffer level, which reshuffles every pass over a small set
  // — not worth caching; this one is the per-event O(n log n) resort).
  // scratch.aux (the urgent list) is dead by now and is clobbered here.
  sched_detail::sort_by_projected_finish(now, /*earliest_first=*/true, active,
                                         scratch, cache);
  for (std::size_t index : order) {
    if (left <= 0.0) break;
    const Request& request = *active[index];
    const Mbps cap = std::min(request.receive_bandwidth(),
                              absorption_cap(request, now));
    const Mbps grant = std::min(left, cap - rates[index]);
    if (grant <= 0.0) continue;
    rates[index] += grant;
    left -= grant;
  }
}

}  // namespace vodsim
