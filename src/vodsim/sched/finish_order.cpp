#include "vodsim/sched/finish_order.h"

#include <algorithm>
#include <cstdint>

#include "vodsim/sched/scheduler.h"

namespace vodsim {
namespace sched_detail {
namespace {

/// Adaptive insertion sort for a nearly-sorted permutation: O(n) when the
/// seed is already in order, O(n + inversions) when a few entries moved.
/// A scrambled seed (mass arrival, load spike) would degenerate to O(n^2),
/// so a shift budget bails out to std::sort — the array is a permutation at
/// every step, and the unique total order makes the fallback produce the
/// same result it would have reached.
template <typename Before>
void insertion_sort_guarded(std::vector<std::size_t>& order, Before before) {
  const std::size_t n = order.size();
  std::size_t budget = 4 * n;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t value = order[i];
    std::size_t j = i;
    while (j > 0 && before(value, order[j - 1])) {
      order[j] = order[j - 1];
      --j;
      if (--budget == 0) {
        order[j] = value;  // restore the permutation before bailing
        std::sort(order.begin(), order.end(), before);
        return;
      }
    }
    order[j] = value;
  }
}

}  // namespace

void sort_by_projected_finish(Seconds now, bool earliest_first,
                              const std::vector<Request*>& active,
                              AllocationScratch& scratch, SchedCache* cache) {
  std::vector<std::size_t>& order = scratch.order;

  // Fresh keys, exactly one projected_finish evaluation per candidate.
  // projected_finish is pure in (request state, now), so the precomputed
  // value is bit-identical to what an in-comparator call would produce —
  // this hoists ~2 divisions per comparison out of the sort. Persisting
  // keys across passes instead would drift in ulps; see the header.
  //
  // When the candidate vector is the server's lane-backed active list and
  // the candidate set covers most of it, one vectorized lane pass fills
  // every slot instead (identical formula per slot — bit-identical keys;
  // writing non-candidate slots is safe because the comparator only ever
  // reads candidate indices). Sparse candidate sets (an intermittent-
  // scheduler urgent pass over a few starved streams) keep the per-
  // candidate loop: filling all n slots to sort k << n would waste the
  // divisions the batch exists to amortize.
  std::vector<Seconds>& keys = scratch.keys;
  keys.resize(active.size());
  const FluidLane* const lane = lane_view(active);
  if (lane != nullptr && 2 * order.size() >= active.size()) {
    lane->fill_projected_finish(now, keys);
  } else {
    for (const std::size_t index : order) {
      keys[index] = active[index]->projected_finish(now);
    }
  }

  const auto before = [&](std::size_t a, std::size_t b) {
    if (keys[a] != keys[b]) {
      return earliest_first ? keys[a] < keys[b] : keys[a] > keys[b];
    }
    return active[a]->id() < active[b]->id();  // unique, deterministic
  };

  bool seeded = false;
  if (cache != nullptr && !cache->grant_order.empty() && order.size() > 1) {
    // Validate the remembered order against the *current* candidate set by
    // membership, not by re-deriving eligibility: the caller's candidate
    // predicate (which may depend on rates already granted this pass) stays
    // in one place, and stale pointers — detached, migrated, finished or
    // newly-ineligible requests — drop out on the pointer identity check.
    std::vector<std::uint8_t>& in_candidates = scratch.in_candidates;
    in_candidates.assign(active.size(), 0);
    for (const std::size_t index : order) in_candidates[index] = 1;

    std::vector<std::size_t>& seed = scratch.aux;
    seed.clear();
    for (Request* request : cache->grant_order) {
      const std::size_t index = request->active_index;
      if (index < active.size() && active[index] == request &&
          in_candidates[index] != 0) {
        seed.push_back(index);
        in_candidates[index] = 0;  // consumed; leftovers appended below
      }
    }
    if (!seed.empty()) {
      for (const std::size_t index : order) {
        if (in_candidates[index] != 0) seed.push_back(index);
      }
      order.swap(seed);
      insertion_sort_guarded(order, before);
      seeded = true;
    }
  }
  if (!seeded) {
    std::sort(order.begin(), order.end(), before);
  }

  if (cache != nullptr) {
    cache->grant_order.clear();
    cache->grant_order.reserve(order.size());
    for (const std::size_t index : order) {
      cache->grant_order.push_back(active[index]);
    }
  }
}

}  // namespace sched_detail
}  // namespace vodsim
