#pragma once

/// \file scheduler.h
/// \brief Minimum-flow bandwidth allocation (paper §3.3).
///
/// A minimum-flow scheduler always gives every unfinished request at least
/// its view bandwidth; what distinguishes members of the family is how they
/// spend the remaining slack on workahead into client staging buffers:
///
///   - EFTF (the paper's): earliest projected finishing time first —
///     optimal among minimum-flow schedulers when client receive bandwidth
///     is unbounded (Theorem 1).
///   - Continuous: no workahead at all (the classical continuous-
///     transmission baseline; equivalent to 0% staging).
///   - ProportionalShare: slack split evenly (water-filling) across
///     eligible requests.
///   - LFTF: latest projected finishing time first — the adversarial
///     mirror image of EFTF, used to bound how much the ordering matters.
///
/// A request is eligible for workahead iff its staging buffer has headroom
/// and its client can receive faster than the view bandwidth.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vodsim/cluster/request.h"
#include "vodsim/obs/trace.h"
#include "vodsim/util/units.h"

namespace vodsim {

/// Reusable working buffers for BandwidthScheduler::allocate. The engine
/// reallocates on every event, so the scheduler must not construct fresh
/// vectors per call: the caller owns one AllocationScratch and threads it
/// through, and after a brief warmup every allocate() reuses its capacity —
/// the steady-state hot path performs no heap allocations.
struct AllocationScratch {
  std::vector<std::size_t> order;  ///< workahead candidates, in grant order
  std::vector<std::size_t> aux;    ///< second working set (water-filling pool,
                                   ///< urgent list, ...)
  std::vector<Seconds> keys;       ///< projected-finish keys, by active index
  std::vector<std::uint8_t> in_candidates;  ///< membership flags for seeding
                                            ///< from a SchedCache
};

/// Persistent per-server ordering state (sched/finish_order.h). Passing one
/// lets the finish-time schedulers repair the previous grant order instead
/// of resorting from scratch; a null cache always takes the full-sort path.
/// Either way the result is bit-identical.
struct SchedCache;

/// Strategy interface: computes per-request rates for one server.
class BandwidthScheduler {
 public:
  virtual ~BandwidthScheduler() = default;

  /// Computes allocations for \p active (the server's unfinished requests,
  /// all advanced to \p now) under total link \p capacity. Writes one rate
  /// per request into \p rates (resized to active.size()); \p scratch holds
  /// reusable working buffers (contents are clobbered). \p cache, when
  /// non-null, is the calling server's persistent ordering state: the
  /// finish-time schedulers seed their grant order from it and write the new
  /// order back, turning the per-event resort into a nearly-sorted repair.
  /// One cache per server — sharing a cache across servers is harmless
  /// (entries validate against the active vector) but wastes the hint.
  /// Schedulers without a sorted grant order ignore it.
  ///
  /// Postconditions (enforced by all implementations, checked in tests):
  ///   rates[i] >= active[i]->view_bandwidth()   (minimum flow)
  ///   rates[i] <= active[i]->receive_bandwidth()
  ///   sum(rates) <= capacity (+ tolerance)
  /// And: results are bit-identical with cache == nullptr, a cold cache, or
  /// any warm cache (pinned by sched_test and the determinism goldens).
  virtual void allocate(Seconds now, Mbps capacity,
                        const std::vector<Request*>& active,
                        std::vector<Mbps>& rates, AllocationScratch& scratch,
                        SchedCache* cache) const = 0;

  /// Cache-less overload: the full-sort path, for callers without a
  /// persistent per-server ordering (tests, the reference oracle).
  /// (Derived classes re-export this via `using BandwidthScheduler::allocate`.)
  void allocate(Seconds now, Mbps capacity, const std::vector<Request*>& active,
                std::vector<Mbps>& rates, AllocationScratch& scratch) const {
    allocate(now, capacity, active, rates, scratch, nullptr);
  }

  /// Convenience overload with a throwaway scratch, for tests and one-shot
  /// callers. Hot paths must hold a persistent AllocationScratch instead.
  void allocate(Seconds now, Mbps capacity, const std::vector<Request*>& active,
                std::vector<Mbps>& rates) const {
    AllocationScratch scratch;
    allocate(now, capacity, active, rates, scratch, nullptr);
  }

  virtual std::string name() const = 0;

  /// True for members of the minimum-flow family (§3.3): every unfinished
  /// request is guaranteed at least its minimum rate in every allocation.
  /// The intermittent scheduler returns false — deliberate starvation is
  /// its defining feature — which tells the invariant auditor not to assert
  /// the per-request lower bound.
  virtual bool minimum_flow() const { return true; }

  /// Attaches a trace recorder (observe-only; null detaches). Schedulers
  /// emit pathology signals under kTraceSched — today the intermittent
  /// scheduler's urgency-latch transitions.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

 protected:
  TraceRecorder* trace_ = nullptr;
};

/// Scheduler registry keys (used by engine::Config and the CLI).
enum class SchedulerKind { kEftf, kContinuous, kProportional, kLftf, kIntermittent };

/// Factory. Throws std::invalid_argument on an unknown kind. The
/// intermittent scheduler is built with its default safety cover; construct
/// IntermittentScheduler directly to tune it.
std::unique_ptr<BandwidthScheduler> make_scheduler(SchedulerKind kind);

/// Parses "eftf" | "continuous" | "proportional" | "lftf" | "intermittent".
SchedulerKind scheduler_kind_from_string(const std::string& name);
std::string to_string(SchedulerKind kind);

namespace sched_detail {

/// The FluidLane backing \p active when the vector is exactly the owning
/// server's active list (slot i == index i) — the engine always passes
/// `server.active_requests()`, for which this holds by construction.
/// Hand-built candidate vectors (reference oracle, microbenchmarks) have
/// unattached requests or broken endpoint correspondence and get nullptr;
/// callers fall back to the per-request path. Reading predicates off the
/// lane arrays evaluates the same fields the Request accessors would
/// return, so the two paths are bit-identical — the determinism goldens
/// pin it. Shared by scheduler.cpp's hot loops and finish_order.cpp's
/// batched sort-key fill.
const FluidLane* lane_view(const std::vector<Request*>& active);

/// Gives every request its view bandwidth; returns the remaining slack.
/// Asserts the minimum-flow commitments fit in capacity.
Mbps assign_minimum_flow(Mbps capacity, const std::vector<Request*>& active,
                         std::vector<Mbps>& rates);

/// True if \p request can absorb workahead (buffer headroom + receive cap).
bool workahead_eligible(const Request& request);

/// Fills \p out with the indices of workahead-eligible requests (cleared
/// first; capacity is reused across calls — no allocation after warmup).
void eligible_indices(const std::vector<Request*>& active,
                      std::vector<std::size_t>& out);

/// Greedy slack distribution over \p order (a permutation of eligible
/// indices): each request in turn gets min(slack, receive_cap - rate).
void distribute_greedy(Mbps slack, const std::vector<std::size_t>& order,
                       const std::vector<Request*>& active,
                       std::vector<Mbps>& rates);

}  // namespace sched_detail

}  // namespace vodsim
