#pragma once

/// \file intermittent.h
/// \brief Intermittent transmission: streams may be starved while their
/// staging buffers carry playback (paper §3.3's broader class).
///
/// The paper restricts itself to minimum-flow schedulers because "the
/// decision procedure for the optimal intermittent algorithm is impractical
/// to apply in real time". This is a *practical heuristic* member of the
/// intermittent class, used by the E16 ablation to quantify what minimum
/// flow leaves on the table — and what it protects against:
///
///   phase 1 (safety): every request whose staged data covers less than
///     `safety_cover` seconds of playback gets its drain rate first;
///   phase 2 (greedy EFTF): the rest of the link goes earliest-projected-
///     finish-first to any request with buffer headroom, up to its receive
///     cap. Requests with comfortable buffers may receive nothing at all.
///
/// Unlike the minimum-flow family this scheduler tolerates a server whose
/// nominal commitments exceed its link (buffer-aware admission): in a
/// crunch, phase 1 is clipped and playback continuity violations become
/// possible — the engine counts them.

#include "vodsim/sched/scheduler.h"

namespace vodsim {

class IntermittentScheduler final : public BandwidthScheduler {
 public:
  /// \param safety_cover seconds of staged playback below which a request
  ///        is considered urgent and fed before any workahead.
  explicit IntermittentScheduler(Seconds safety_cover = 10.0);

  using BandwidthScheduler::allocate;
  void allocate(Seconds now, Mbps capacity, const std::vector<Request*>& active,
                std::vector<Mbps>& rates, AllocationScratch& scratch,
                SchedCache* cache) const override;

  std::string name() const override { return "intermittent"; }

  bool minimum_flow() const override { return false; }

  Seconds safety_cover() const { return safety_cover_; }

 private:
  Seconds safety_cover_;
};

}  // namespace vodsim
