#include "vodsim/sched/proportional.h"

#include <algorithm>

namespace vodsim {

void ProportionalShareScheduler::allocate(Seconds /*now*/, Mbps capacity,
                                          const std::vector<Request*>& active,
                                          std::vector<Mbps>& rates,
                                          AllocationScratch& scratch,
                                          SchedCache* /*cache*/) const {
  // Water-filling iterates the eligible pool in active order and splits
  // evenly — there is no sorted grant order to make incremental, so the
  // cache is ignored (its FP operation order is pinned by the active vector
  // alone).
  Mbps slack = sched_detail::assign_minimum_flow(capacity, active, rates);
  if (slack <= 0.0) return;

  std::vector<std::size_t>& eligible = scratch.order;
  std::vector<std::size_t>& still_open = scratch.aux;
  sched_detail::eligible_indices(active, eligible);
  // Water-filling: split slack evenly; capped requests leave the pool and
  // their surplus is redistributed in the next round.
  while (slack > 1e-9 && !eligible.empty()) {
    const Mbps share = slack / static_cast<double>(eligible.size());
    bool any_capped = false;
    still_open.clear();
    for (std::size_t index : eligible) {
      const Request& request = *active[index];
      const Mbps room = request.receive_bandwidth() - rates[index];
      const Mbps grant = std::min(share, room);
      rates[index] += grant;
      slack -= grant;
      if (grant < share - 1e-12) {
        any_capped = true;  // hit the receive cap; drops out of the pool
      } else {
        still_open.push_back(index);
      }
    }
    if (!any_capped) break;  // everyone took a full share: slack is exhausted
    eligible.swap(still_open);
  }
}

}  // namespace vodsim
