#pragma once

/// \file continuous.h
/// \brief Classical continuous transmission: every stream at exactly b_view.
///
/// Equivalent to EFTF with 0% staging buffers; kept as an explicit scheduler
/// so the no-workahead baseline does not depend on buffer configuration.

#include "vodsim/sched/scheduler.h"

namespace vodsim {

class ContinuousScheduler final : public BandwidthScheduler {
 public:
  using BandwidthScheduler::allocate;
  void allocate(Seconds now, Mbps capacity, const std::vector<Request*>& active,
                std::vector<Mbps>& rates, AllocationScratch& scratch,
                SchedCache* cache) const override;

  std::string name() const override { return "continuous"; }
};

}  // namespace vodsim
