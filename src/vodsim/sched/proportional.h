#pragma once

/// \file proportional.h
/// \brief Proportional-share workahead: slack water-filled evenly.
///
/// Fair but finish-time-agnostic: a natural strawman between Continuous and
/// EFTF. Requests near their receive cap return their surplus to the pool
/// (water-filling), so no slack is wasted while any client can absorb it.

#include "vodsim/sched/scheduler.h"

namespace vodsim {

class ProportionalShareScheduler final : public BandwidthScheduler {
 public:
  using BandwidthScheduler::allocate;
  void allocate(Seconds now, Mbps capacity, const std::vector<Request*>& active,
                std::vector<Mbps>& rates, AllocationScratch& scratch,
                SchedCache* cache) const override;

  std::string name() const override { return "proportional"; }
};

}  // namespace vodsim
