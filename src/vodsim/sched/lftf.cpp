#include "vodsim/sched/lftf.h"

#include "vodsim/sched/finish_order.h"

namespace vodsim {

void LftfScheduler::allocate(Seconds now, Mbps capacity,
                             const std::vector<Request*>& active,
                             std::vector<Mbps>& rates,
                             AllocationScratch& scratch,
                             SchedCache* cache) const {
  const Mbps slack = sched_detail::assign_minimum_flow(capacity, active, rates);
  if (slack <= 0.0) return;  // saturated: skip eligibility and the sort
  sched_detail::eligible_indices(active, scratch.order);
  sched_detail::sort_by_projected_finish(now, /*earliest_first=*/false, active,
                                         scratch, cache);
  sched_detail::distribute_greedy(slack, scratch.order, active, rates);
}

}  // namespace vodsim
