#include "vodsim/sched/lftf.h"

#include <algorithm>

namespace vodsim {

void LftfScheduler::allocate(Seconds now, Mbps capacity,
                             const std::vector<Request*>& active,
                             std::vector<Mbps>& rates,
                             AllocationScratch& scratch) const {
  const Mbps slack = sched_detail::assign_minimum_flow(capacity, active, rates);
  if (slack <= 0.0) return;  // saturated: skip eligibility and the sort
  std::vector<std::size_t>& order = scratch.order;
  sched_detail::eligible_indices(active, order);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const Seconds fa = active[a]->projected_finish(now);
    const Seconds fb = active[b]->projected_finish(now);
    if (fa != fb) return fa > fb;
    return active[a]->id() < active[b]->id();
  });
  sched_detail::distribute_greedy(slack, order, active, rates);
}

}  // namespace vodsim
