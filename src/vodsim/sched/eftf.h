#pragma once

/// \file eftf.h
/// \brief Earliest Finishing Time First — the paper's workahead scheduler.

#include "vodsim/sched/scheduler.h"

namespace vodsim {

/// Figure 2 of the paper: after granting every unfinished request its view
/// bandwidth, repeatedly pick the request with the earliest projected
/// finishing time whose client buffer has space and give it as much of the
/// remaining slack as its client can receive. Since all videos share one
/// view bandwidth, "earliest projected finish" is simply "least remaining
/// data", so one ascending sort suffices.
class EftfScheduler final : public BandwidthScheduler {
 public:
  using BandwidthScheduler::allocate;
  void allocate(Seconds now, Mbps capacity, const std::vector<Request*>& active,
                std::vector<Mbps>& rates, AllocationScratch& scratch,
                SchedCache* cache) const override;

  std::string name() const override { return "eftf"; }
};

}  // namespace vodsim
