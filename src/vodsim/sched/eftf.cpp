#include "vodsim/sched/eftf.h"

#include "vodsim/sched/finish_order.h"

namespace vodsim {

void EftfScheduler::allocate(Seconds now, Mbps capacity,
                             const std::vector<Request*>& active,
                             std::vector<Mbps>& rates,
                             AllocationScratch& scratch,
                             SchedCache* cache) const {
  const Mbps slack = sched_detail::assign_minimum_flow(capacity, active, rates);
  // Zero slack — the common case at saturation, where the paper's
  // interesting data points live — skips eligibility and the sort entirely.
  if (slack <= 0.0) return;
  sched_detail::eligible_indices(active, scratch.order);
  sched_detail::sort_by_projected_finish(now, /*earliest_first=*/true, active,
                                         scratch, cache);
  sched_detail::distribute_greedy(slack, scratch.order, active, rates);
}

}  // namespace vodsim
