#include "vodsim/sched/continuous.h"

namespace vodsim {

void ContinuousScheduler::allocate(Seconds /*now*/, Mbps capacity,
                                   const std::vector<Request*>& active,
                                   std::vector<Mbps>& rates,
                                   AllocationScratch& /*scratch*/,
                                   SchedCache* /*cache*/) const {
  // No workahead, no grant order, nothing to cache.
  (void)sched_detail::assign_minimum_flow(capacity, active, rates);
}

}  // namespace vodsim
