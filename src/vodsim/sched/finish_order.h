#pragma once

/// \file finish_order.h
/// \brief Persistent per-server finish-time ordering for incremental
/// scheduler recomputes.
///
/// The finish-time schedulers (EFTF, LFTF, the intermittent scheduler's
/// workahead phase) re-derive the same grant order on almost every
/// recompute: between two allocation passes, one request arrives or departs
/// and everyone else keeps their relative position. A SchedCache remembers
/// the previous grant order so the next pass starts from a nearly-sorted
/// permutation and repairs it with an adaptive insertion pass — O(n +
/// inversions) instead of a full O(n log n) resort per event.
///
/// Bit-exactness contract. The comparator's key — projected_finish(now) —
/// is recomputed *fresh* on every pass and evaluated exactly once per
/// candidate: caching key values across passes would let them drift in ulps
/// from a from-scratch computation, which the determinism goldens forbid.
/// What persists is only the previous *permutation*. Because the order is
/// total and unique (ties broken on request id), every correct sorting
/// procedure produces the same permutation for the same keys: seeding from
/// the cache can change how many comparisons run, never their outcome, so
/// the grant order — and with it every downstream FP operation — is
/// byte-identical to the full-resort path.
///
/// Lifetime. A SchedCache belongs to one server (the engine keeps one per
/// ServerRecomputeState) and stores raw Request pointers; the owner must
/// guarantee requests outlive the cache (the engine's request arena is
/// stable for the whole run). Entries are validated lazily against the
/// current candidate set — detached, finished, migrated or newly-ineligible
/// requests simply drop out — so no invalidation hooks are needed anywhere
/// in the engine.

#include <vector>

#include "vodsim/cluster/request.h"
#include "vodsim/util/units.h"

namespace vodsim {

struct AllocationScratch;

/// Persistent ordering state for one server. Default-constructed = cold
/// (first pass falls back to a full sort, then the cache is warm).
struct SchedCache {
  /// The grant order produced by the previous allocation pass, most
  /// urgent first (earliest projected finish for EFTF; latest for LFTF).
  std::vector<Request*> grant_order;

  void clear() { grant_order.clear(); }
};

namespace sched_detail {

/// Sorts scratch.order — a candidate index set into \p active, prepared by
/// the caller — by (projected_finish(now), id), ascending when
/// \p earliest_first and descending otherwise. Keys are computed once per
/// candidate into scratch.keys and compared by value.
///
/// With a warm \p cache, the previous grant order seeds the permutation
/// (validated entry by entry against the current candidate set) and an
/// adaptive insertion pass repairs it; a cold or null cache takes the full
/// std::sort path. Both paths produce the identical unique permutation.
/// On return the cache (when non-null) holds the new grant order.
///
/// Clobbers scratch.aux, scratch.keys and scratch.in_candidates.
void sort_by_projected_finish(Seconds now, bool earliest_first,
                              const std::vector<Request*>& active,
                              AllocationScratch& scratch, SchedCache* cache);

}  // namespace sched_detail

}  // namespace vodsim
