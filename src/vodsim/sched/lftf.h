#pragma once

/// \file lftf.h
/// \brief Latest Finishing Time First — adversarial mirror of EFTF.
///
/// Spends slack on the streams farthest from finishing. Under Theorem 1's
/// assumptions this is the worst ordering within the minimum-flow family;
/// it exists to quantify (bench E10) how much EFTF's ordering contributes.

#include "vodsim/sched/scheduler.h"

namespace vodsim {

class LftfScheduler final : public BandwidthScheduler {
 public:
  using BandwidthScheduler::allocate;
  void allocate(Seconds now, Mbps capacity, const std::vector<Request*>& active,
                std::vector<Mbps>& rates, AllocationScratch& scratch,
                SchedCache* cache) const override;

  std::string name() const override { return "lftf"; }
};

}  // namespace vodsim
