#pragma once

/// \file topology.h
/// \brief Failure-domain topology: the server → rack → zone tree.
///
/// Real clusters fail along physical topology — a rack loses power, a
/// zone's uplink browns out, a switch partitions a rack away from the
/// controller. The Topology gives every layer that needs domain awareness
/// (fault schedule generation, domain-spread placement, repair
/// re-replication, shard layout, per-domain metrics) one shared, immutable
/// answer to "which rack/zone is server s in?".
///
/// Mapping is deterministic and contiguous: rack r covers servers
/// [r*N/racks, (r+1)*N/racks) and zone z covers racks [z*R/zones,
/// (z+1)*R/zones) — the same near-even block formula the sharded engine
/// uses for its server blocks, so a rack-aligned shard layout falls out
/// naturally (engine/vod_simulation.cpp build_shards). A
/// default-constructed (or disabled) Topology is the trivial one-rack,
/// one-zone tree; every consumer treats it as "no topology".

#include <vector>

#include "vodsim/cluster/request.h"

namespace vodsim {

/// Configuration of the failure-domain tree (SimulationConfig::topology).
struct TopologyConfig {
  bool enabled = false;
  int racks = 1;  ///< must satisfy 1 <= racks <= num_servers
  int zones = 1;  ///< must satisfy 1 <= zones <= racks
};

class Topology {
 public:
  /// Trivial topology: one rack, one zone, zero servers. enabled() is false.
  Topology() = default;

  /// Builds the tree for \p num_servers servers. A disabled config yields
  /// the trivial single-rack, single-zone tree over the same servers.
  Topology(const TopologyConfig& config, int num_servers);

  bool enabled() const { return enabled_; }
  int num_servers() const { return num_servers_; }
  int racks() const { return racks_; }
  int zones() const { return zones_; }

  int rack_of(ServerId server) const {
    return rack_of_server_[static_cast<std::size_t>(server)];
  }
  int zone_of(ServerId server) const { return zone_of_rack(rack_of(server)); }
  int zone_of_rack(int rack) const {
    return zone_of_rack_[static_cast<std::size_t>(rack)];
  }

  /// First server of \p rack (racks cover contiguous server blocks).
  ServerId rack_first(int rack) const {
    return rack_first_[static_cast<std::size_t>(rack)];
  }
  /// One past the last server of \p rack.
  ServerId rack_end(int rack) const {
    return rack_first_[static_cast<std::size_t>(rack) + 1];
  }
  int rack_size(int rack) const { return rack_end(rack) - rack_first(rack); }

  /// Dense per-server rack ids (size num_servers); handy for bulk wiring
  /// (Metrics::set_topology) without per-server virtual calls.
  const std::vector<int>& rack_of_server() const { return rack_of_server_; }

 private:
  bool enabled_ = false;
  int num_servers_ = 0;
  int racks_ = 1;
  int zones_ = 1;
  std::vector<int> rack_of_server_;
  std::vector<int> zone_of_rack_;
  std::vector<ServerId> rack_first_;  ///< size racks+1, rack_first_[racks]=N
};

}  // namespace vodsim
