#include "vodsim/cluster/fluid_lane.h"

#include "vodsim/cluster/request.h"

namespace vodsim {

namespace {

/// The vectorized heart of FluidLane::advance_batch: per-stream state
/// updates only, no reductions (see the caller for why the metering sum is
/// a separate pass). A free function because GCC honours __restrict on
/// function parameters but not on locals initialised from member loads —
/// without it, ten pointers need more runtime alias checks than the
/// vectorizer will version (--param vect-max-version-for-alias-checks).
/// __restrict is sound: every pointer addresses a distinct vector (nine
/// member arrays plus the engine-owned scratch), so no two can overlap.
/// noinline keeps the restrict qualifiers from being dropped when the body
/// is folded into the caller; one call per batch is noise next to the loop.
///
/// target_clones emits an SSE2 baseline plus an AVX2 clone picked at load
/// time, doubling the vector width on hosts that have it. Safe for both
/// reproducibility and bit-identity: dispatch is fixed per machine, per-lane
/// vaddpd/vmulpd/vmaxpd semantics equal their scalar counterparts, and this
/// TU is built with -ffp-contract=off (see src/CMakeLists.txt) so the AVX2
/// clone cannot fuse multiply-adds into FMAs that round differently from
/// the scalar path.
#if defined(__x86_64__) && defined(__has_attribute)
#if __has_attribute(target_clones)
#define VODSIM_BATCH_KERNEL_CLONES \
  __attribute__((target_clones("default", "avx2")))
#endif
#endif
#ifndef VODSIM_BATCH_KERNEL_CLONES
#define VODSIM_BATCH_KERNEL_CLONES
#endif
VODSIM_BATCH_KERNEL_CLONES
__attribute__((noinline)) void advance_states(
    std::size_t n, Seconds now, Seconds* __restrict last_update,
    Megabits* __restrict remaining, Megabits* __restrict buffer_level,
    const Megabits* __restrict buffer_capacity,
    const Mbps* __restrict allocation, const Mbps* __restrict view_bandwidth,
    const Seconds* __restrict arrival, const Seconds* __restrict playback_end,
    const double* __restrict playing, Megabits* __restrict underflow_out) {
  for (std::size_t i = 0; i < n; ++i) {
    const Seconds start = last_update[i];
    const Seconds dt = now - start;

    const Megabits inflow = allocation[i] * std::max(0.0, dt);
    remaining[i] = std::max(0.0, remaining[i] - inflow);

    const Seconds play_span =
        std::min(now, playback_end[i]) - std::max(start, arrival[i]);
    const Megabits outflow =
        view_bandwidth[i] * std::max(0.0, play_span) * playing[i];

    const Megabits level = buffer_level[i] + (inflow - outflow);
    const Megabits raw_underflow = std::max(0.0, 0.0 - level);
    buffer_level[i] = std::min(std::max(level, 0.0), buffer_capacity[i]);
    underflow_out[i] =
        raw_underflow > StagingBuffer::kLevelTolerance ? raw_underflow : 0.0;

    last_update[i] = now;
  }
}

}  // namespace

void FluidLane::reserve(std::size_t n) {
  remaining_.reserve(n);
  allocation_.reserve(n);
  last_update_.reserve(n);
  buffer_level_.reserve(n);
  buffer_capacity_.reserve(n);
  view_bandwidth_.reserve(n);
  receive_bandwidth_.reserve(n);
  arrival_.reserve(n);
  playback_end_.reserve(n);
  playing_.reserve(n);
}

void FluidLane::append(const Request& request) {
  remaining_.push_back(request.remaining());
  allocation_.push_back(request.allocation());
  last_update_.push_back(request.last_update());
  buffer_level_.push_back(request.buffer_level());
  buffer_capacity_.push_back(request.buffer_capacity());
  view_bandwidth_.push_back(request.view_bandwidth());
  receive_bandwidth_.push_back(request.receive_bandwidth());
  arrival_.push_back(request.arrival());
  playback_end_.push_back(request.playback_end());
  playing_.push_back(request.viewing_paused() ? 0.0 : 1.0);
}

void FluidLane::swap_remove(std::size_t index) {
  const std::size_t last = size() - 1;
  remaining_[index] = remaining_[last];
  allocation_[index] = allocation_[last];
  last_update_[index] = last_update_[last];
  buffer_level_[index] = buffer_level_[last];
  buffer_capacity_[index] = buffer_capacity_[last];
  view_bandwidth_[index] = view_bandwidth_[last];
  receive_bandwidth_[index] = receive_bandwidth_[last];
  arrival_[index] = arrival_[last];
  playback_end_[index] = playback_end_[last];
  playing_[index] = playing_[last];
  remaining_.pop_back();
  allocation_.pop_back();
  last_update_.pop_back();
  buffer_level_.pop_back();
  buffer_capacity_.pop_back();
  view_bandwidth_.pop_back();
  receive_bandwidth_.pop_back();
  arrival_.pop_back();
  playback_end_.pop_back();
  playing_.pop_back();
}

FluidLane::BatchResult FluidLane::advance_batch(
    Seconds now, Seconds window_start, Seconds window_end,
    std::vector<Megabits>& underflow_scratch) {
  const std::size_t n = size();
  // resize, not assign: advance_states stores every slot unconditionally,
  // so pre-zeroing would be a wasted O(n) pass.
  underflow_scratch.resize(n);

  BatchResult result;
  // Metering upper clip is batch-constant; the lower clip depends on each
  // stream's last update. Gating matches Metrics::record_transmission
  // exactly (rate <= 0 and empty clipped intervals contribute nothing).
  const Seconds meter_hi = std::min(now, window_end);

  const Seconds* const last_update = last_update_.data();
  const Mbps* const allocation = allocation_.data();
  const Megabits* const underflow_out = underflow_scratch.data();

  // Branchless re-expression of fluid_detail::advance_stream, bit-identical
  // per stream so the branchy skips become unconditional arithmetic and the
  // state loop vectorizes ("not vectorized: control flow in loop"
  // otherwise):
  //   - No state array ever holds -0.0 (levels/remaining come from
  //     max(0.0, x), which yields +0.0; rates and times are nonnegative
  //     inputs), so the identities x + 0.0 == x, x - 0.0 == x,
  //     x * 0.0 == +0.0 and x * 1.0 == x hold *bitwise* everywhere below.
  //   - std::max(a, b) is (a < b) ? b : a; each call's argument order is
  //     chosen so the branch it replaces selects the same operand. The
  //     negated level is written 0.0 - level, not -level (unary FP negate
  //     defeats GCC's if-conversion); inside max(0.0, .) the two are
  //     bit-equivalent, including at level == +0.0.
  //   - A dt <= 0 stream therefore contributes +0.0 to every accumulator
  //     and rewrites its own state with the same bits, matching the scalar
  //     path's early-out exactly.
  //   - The playback gate `if (!paused)` becomes a multiply by the 1.0/0.0
  //     playing mask; the baseline build has no FMA, so no contraction can
  //     fuse these multiplies differently from the scalar path.
  //
  // The kernel runs in three passes because GCC refuses to vectorize a loop
  // carrying FP sum/max reductions without value-changing reassociation:
  // a light scalar pass does the metering sum and advanced count (reading
  // only last_update/allocation, both still pre-update), the heavy
  // per-stream state arithmetic runs reduction-free and vectorized in
  // advance_states, and a final scan folds the scratch into any_underflow.
  // The split changes no operation or order: the metering terms are summed
  // in slot order either way, and the passes touch disjoint values.
  Megabits transmitted = 0.0;
  std::size_t advanced = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Seconds start = last_update[i];
    advanced += static_cast<std::size_t>(now - start > 0.0);
    transmitted +=
        allocation[i] * std::max(0.0, meter_hi - std::max(start, window_start));
  }

  advance_states(n, now, last_update_.data(), remaining_.data(),
                 buffer_level_.data(), buffer_capacity_.data(),
                 allocation_.data(), view_bandwidth_.data(), arrival_.data(),
                 playback_end_.data(), playing_.data(),
                 underflow_scratch.data());

  Megabits max_underflow = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    max_underflow = std::max(max_underflow, underflow_out[i]);
  }
  result.transmitted_in_window = transmitted;
  result.advanced = advanced;
  result.any_underflow = max_underflow > 0.0;
  return result;
}

Mbps FluidLane::sum_minimum_rates(std::vector<Mbps>& rates) const {
  const std::size_t n = size();
  rates.assign(n, 0.0);
  Mbps committed = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // Request::minimum_rate: 0 only for a paused client whose staging disk
    // is full (within StagingBuffer::kLevelTolerance), else the view rate.
    const bool full =
        buffer_level_[i] >= buffer_capacity_[i] - StagingBuffer::kLevelTolerance;
    const Mbps rate = (playing_[i] == 0.0 && full) ? 0.0 : view_bandwidth_[i];
    rates[i] = rate;
    committed += rate;
  }
  return committed;
}

void FluidLane::eligible_slots(std::vector<std::size_t>& out) const {
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    // sched_detail::workahead_eligible: room in the staging buffer, a
    // receive link faster than playback, and data left to send.
    const bool full =
        buffer_level_[i] >= buffer_capacity_[i] - StagingBuffer::kLevelTolerance;
    if (!full && receive_bandwidth_[i] > view_bandwidth_[i] &&
        remaining_[i] > Request::kRemainingTolerance) {
      out.push_back(i);
    }
  }
}

}  // namespace vodsim
