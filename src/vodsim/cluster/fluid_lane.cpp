#include "vodsim/cluster/fluid_lane.h"

#include <cassert>
#include <limits>

#include "vodsim/cluster/request.h"

namespace vodsim {

namespace {

/// Shared attribute set for the batch kernels. Free functions because GCC
/// honours __restrict on function parameters but not on locals initialised
/// from member loads — without it, the pointer count needs more runtime
/// alias checks than the vectorizer will version
/// (--param vect-max-version-for-alias-checks). __restrict is sound: every
/// pointer addresses a distinct arena array (or the engine-owned scratch),
/// so no two can overlap. noinline keeps the restrict qualifiers from being
/// dropped when a body is folded into its caller; one call per batch is
/// noise next to the loop.
///
/// target_clones emits an SSE2 baseline plus AVX2 and AVX-512F clones
/// picked at load time, doubling (and doubling again) the vector width on
/// hosts that have them. Safe for both reproducibility and bit-identity:
/// dispatch is fixed per machine, per-lane vaddpd/vmulpd/vmaxpd/vdivpd
/// semantics equal their scalar counterparts at any width, and this TU is
/// built with -ffp-contract=off (see src/CMakeLists.txt) so no clone can
/// fuse multiply-adds into FMAs that round differently from the scalar
/// path.
#if defined(__x86_64__) && defined(__has_attribute)
#if __has_attribute(target_clones)
#define VODSIM_BATCH_KERNEL_CLONES \
  __attribute__((target_clones("default", "avx2", "avx512f")))
#endif
#endif
#ifndef VODSIM_BATCH_KERNEL_CLONES
#define VODSIM_BATCH_KERNEL_CLONES
#endif

/// The lane arena guarantees 64-byte alignment for every array it owns
/// (FluidLane::grow); telling the vectorizer saves the peel/remainder
/// scalar loops. Alignment hints change codegen only, never FP results.
inline double* assume_lane_aligned(double* p) {
  return static_cast<double*>(__builtin_assume_aligned(p, 64));
}
inline const double* assume_lane_aligned(const double* p) {
  return static_cast<const double*>(__builtin_assume_aligned(p, 64));
}

/// The vectorized heart of FluidLane::advance_batch: per-stream state
/// updates only, no reductions (see the caller for why the metering sum is
/// a separate pass). underflow_out is the engine's std::vector scratch and
/// carries no alignment guarantee.
VODSIM_BATCH_KERNEL_CLONES
__attribute__((noinline)) void advance_states(
    std::size_t n, Seconds now, Seconds* __restrict last_update,
    Megabits* __restrict remaining, Megabits* __restrict buffer_level,
    const Megabits* __restrict buffer_capacity,
    const Mbps* __restrict allocation, const Mbps* __restrict view_bandwidth,
    const Seconds* __restrict arrival, const Seconds* __restrict playback_end,
    const double* __restrict playing, Megabits* __restrict underflow_out) {
  last_update = assume_lane_aligned(last_update);
  remaining = assume_lane_aligned(remaining);
  buffer_level = assume_lane_aligned(buffer_level);
  buffer_capacity = assume_lane_aligned(buffer_capacity);
  allocation = assume_lane_aligned(allocation);
  view_bandwidth = assume_lane_aligned(view_bandwidth);
  arrival = assume_lane_aligned(arrival);
  playback_end = assume_lane_aligned(playback_end);
  playing = assume_lane_aligned(playing);
  for (std::size_t i = 0; i < n; ++i) {
    const Seconds start = last_update[i];
    const Seconds dt = now - start;

    const Megabits inflow = allocation[i] * std::max(0.0, dt);
    remaining[i] = std::max(0.0, remaining[i] - inflow);

    const Seconds play_span =
        std::min(now, playback_end[i]) - std::max(start, arrival[i]);
    const Megabits outflow =
        view_bandwidth[i] * std::max(0.0, play_span) * playing[i];

    const Megabits level = buffer_level[i] + (inflow - outflow);
    const Megabits raw_underflow = std::max(0.0, 0.0 - level);
    buffer_level[i] = std::min(std::max(level, 0.0), buffer_capacity[i]);
    underflow_out[i] =
        raw_underflow > StagingBuffer::kLevelTolerance ? raw_underflow : 0.0;

    last_update[i] = now;
  }
}

/// Batched EFTF/LFTF sort keys: Request::projected_finish — exactly
/// now + remaining / view_bandwidth per slot, so each precomputed key is
/// bit-identical to what the per-candidate scalar loop would produce.
VODSIM_BATCH_KERNEL_CLONES
__attribute__((noinline)) void projected_finish_keys(
    std::size_t n, Seconds now, const Megabits* __restrict remaining,
    const Mbps* __restrict view_bandwidth, Seconds* __restrict keys) {
  remaining = assume_lane_aligned(remaining);
  view_bandwidth = assume_lane_aligned(view_bandwidth);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = now + remaining[i] / view_bandwidth[i];
  }
}

/// Batched predicted-event retiming: the arithmetic of the engine's
/// reschedule_predicted_events for every slot, with rejected predictions
/// encoded as +inf (see fill_predicted_times in the header for why the
/// sentinel is unambiguous). Bit-identity with the scalar path, term by
/// term:
///   - tx_at = now + remaining / rate for rate > 0 — same division; a
///     rate <= 0 slot writes +inf, and the consumer re-derives liveness
///     from the allocation sign, never from this array.
///   - drain_rate(now) returns view_bandwidth when playing and inside
///     [arrival, playback_end), else 0. Here that branch becomes
///     view_bandwidth · in_window_mask · playing: x·1.0 == x and
///     x·0.0 == +0.0 bitwise (view bandwidths are nonnegative, never -0),
///     and surplus = rate - 0.0 == rate bitwise, so surplus matches the
///     scalar value exactly in every case.
///   - full_at = now + buffer_headroom / surplus with headroom's
///     `capacity > level ? capacity - level : 0` ternary verbatim; kept
///     only under the scalar gate (surplus > 1e-12, not buffer_full,
///     full_at < tx_at). An unkept slot's division may produce inf/NaN —
///     discarded by the same gate the scalar path short-circuits on.
///   - low_at = now + (level - threshold) / (0.0 - surplus); for any slot
///     the gate keeps, surplus < -1e-12 is strictly negative, where
///     0.0 - surplus is bit-equal to the scalar path's -surplus (they can
///     differ only at surplus == ±0, which the gate excludes). Written
///     without unary negate because that defeats GCC's if-conversion.
///   - The buffer-low branch is only reachable with surplus < -1e-12,
///     which excludes the buffer-full branch's surplus > 1e-12, so
///     evaluating both gates unconditionally preserves the if/else-if.
VODSIM_BATCH_KERNEL_CLONES
__attribute__((noinline)) void predicted_event_times(
    std::size_t n, Seconds now, double safety_cover,
    const Megabits* __restrict remaining, const Mbps* __restrict allocation,
    const Megabits* __restrict buffer_level,
    const Megabits* __restrict buffer_capacity,
    const Mbps* __restrict view_bandwidth, const Seconds* __restrict arrival,
    const Seconds* __restrict playback_end, const double* __restrict playing,
    Seconds* __restrict tx_out, Seconds* __restrict full_out,
    Seconds* __restrict low_out) {
  remaining = assume_lane_aligned(remaining);
  allocation = assume_lane_aligned(allocation);
  buffer_level = assume_lane_aligned(buffer_level);
  buffer_capacity = assume_lane_aligned(buffer_capacity);
  view_bandwidth = assume_lane_aligned(view_bandwidth);
  arrival = assume_lane_aligned(arrival);
  playback_end = assume_lane_aligned(playback_end);
  playing = assume_lane_aligned(playing);
  constexpr Seconds kNever = std::numeric_limits<Seconds>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    const Mbps rate = allocation[i];
    const Seconds tx_at = rate > 0.0 ? now + remaining[i] / rate : kNever;
    tx_out[i] = tx_at;

    const double in_window =
        (now >= arrival[i]) && (now < playback_end[i]) ? 1.0 : 0.0;
    const Mbps drain = view_bandwidth[i] * in_window * playing[i];
    const Mbps surplus = rate - drain;

    const Megabits level = buffer_level[i];
    const Megabits capacity = buffer_capacity[i];
    const bool full = level >= capacity - StagingBuffer::kLevelTolerance;
    const Megabits headroom = capacity > level ? capacity - level : 0.0;
    const Seconds full_at = now + headroom / surplus;
    full_out[i] =
        (surplus > 1e-12 && !full && full_at < tx_at) ? full_at : kNever;

    const Megabits threshold = safety_cover * view_bandwidth[i];
    const Seconds low_at = now + (level - threshold) / (0.0 - surplus);
    low_out[i] = (surplus < -1e-12 &&
                  level > threshold + StagingBuffer::kLevelTolerance &&
                  low_at < tx_at)
                     ? low_at
                     : kNever;
  }
}

}  // namespace

FluidLane& FluidLane::operator=(const FluidLane& other) {
  if (this == &other) return *this;
  size_ = 0;  // nothing to preserve; grow copies only size_ slots
  if (other.size_ > capacity_) grow(other.size_);
  const double* const src[kArrays] = {
      other.last_update_, other.remaining_,      other.buffer_level_,
      other.allocation_,  other.buffer_capacity_, other.view_bandwidth_,
      other.arrival_,     other.playback_end_,    other.playing_,
      other.receive_bandwidth_};
  double* const dst[kArrays] = {
      last_update_, remaining_,      buffer_level_, allocation_,
      buffer_capacity_, view_bandwidth_, arrival_,  playback_end_,
      playing_,     receive_bandwidth_};
  for (std::size_t k = 0; k < kArrays; ++k) {
    if (other.size_ > 0) std::copy(src[k], src[k] + other.size_, dst[k]);
  }
  size_ = other.size_;
  return *this;
}

void FluidLane::grow(std::size_t min_capacity) {
  std::size_t cap = std::max<std::size_t>(capacity_ * 2, 64);
  while (cap < min_capacity) cap *= 2;
  // Stride in whole cache lines: every array starts 64-byte aligned.
  cap = (cap + 7) & ~static_cast<std::size_t>(7);

  double* const raw = static_cast<double*>(::operator new[](
      kArrays * cap * sizeof(double), std::align_val_t{64}));
  std::unique_ptr<double[], AlignedFree> fresh(raw);

  double* const old_views[kArrays] = {
      last_update_, remaining_,    buffer_level_,   allocation_,
      buffer_capacity_, view_bandwidth_, arrival_,  playback_end_,
      playing_,     receive_bandwidth_};
  double* views[kArrays];
  for (std::size_t k = 0; k < kArrays; ++k) {
    views[k] = raw + k * cap;
    if (size_ > 0) std::copy(old_views[k], old_views[k] + size_, views[k]);
  }

  storage_ = std::move(fresh);
  capacity_ = cap;
  last_update_ = views[0];
  remaining_ = views[1];
  buffer_level_ = views[2];
  allocation_ = views[3];
  buffer_capacity_ = views[4];
  view_bandwidth_ = views[5];
  arrival_ = views[6];
  playback_end_ = views[7];
  playing_ = views[8];
  receive_bandwidth_ = views[9];
}

void FluidLane::reserve(std::size_t n) {
  if (n > capacity_) grow(n);
}

void FluidLane::append(const Request& request) {
  if (size_ == capacity_) grow(size_ + 1);
  const std::size_t i = size_;
  last_update_[i] = request.last_update();
  remaining_[i] = request.remaining();
  buffer_level_[i] = request.buffer_level();
  allocation_[i] = request.allocation();
  buffer_capacity_[i] = request.buffer_capacity();
  view_bandwidth_[i] = request.view_bandwidth();
  arrival_[i] = request.arrival();
  playback_end_[i] = request.playback_end();
  playing_[i] = request.viewing_paused() ? 0.0 : 1.0;
  receive_bandwidth_[i] = request.receive_bandwidth();
  ++size_;
}

void FluidLane::swap_remove(std::size_t index) {
  assert(index < size_);
  const std::size_t last = size_ - 1;
  last_update_[index] = last_update_[last];
  remaining_[index] = remaining_[last];
  buffer_level_[index] = buffer_level_[last];
  allocation_[index] = allocation_[last];
  buffer_capacity_[index] = buffer_capacity_[last];
  view_bandwidth_[index] = view_bandwidth_[last];
  arrival_[index] = arrival_[last];
  playback_end_[index] = playback_end_[last];
  playing_[index] = playing_[last];
  receive_bandwidth_[index] = receive_bandwidth_[last];
  --size_;
}

FluidLane::BatchResult FluidLane::advance_batch(
    Seconds now, Seconds window_start, Seconds window_end,
    std::vector<Megabits>& underflow_scratch) {
  const std::size_t n = size_;
  // resize, not assign: advance_states stores every slot unconditionally,
  // so pre-zeroing would be a wasted O(n) pass.
  underflow_scratch.resize(n);

  BatchResult result;
  // Metering upper clip is batch-constant; the lower clip depends on each
  // stream's last update. Gating matches Metrics::record_transmission
  // exactly (rate <= 0 and empty clipped intervals contribute nothing).
  const Seconds meter_hi = std::min(now, window_end);

  const Seconds* const last_update = last_update_;
  const Mbps* const allocation = allocation_;
  const Megabits* const underflow_out = underflow_scratch.data();

  // Branchless re-expression of fluid_detail::advance_stream, bit-identical
  // per stream so the branchy skips become unconditional arithmetic and the
  // state loop vectorizes ("not vectorized: control flow in loop"
  // otherwise):
  //   - No state array ever holds -0.0 (levels/remaining come from
  //     max(0.0, x), which yields +0.0; rates and times are nonnegative
  //     inputs), so the identities x + 0.0 == x, x - 0.0 == x,
  //     x * 0.0 == +0.0 and x * 1.0 == x hold *bitwise* everywhere below.
  //   - std::max(a, b) is (a < b) ? b : a; each call's argument order is
  //     chosen so the branch it replaces selects the same operand. The
  //     negated level is written 0.0 - level, not -level (unary FP negate
  //     defeats GCC's if-conversion); inside max(0.0, .) the two are
  //     bit-equivalent, including at level == +0.0.
  //   - A dt <= 0 stream therefore contributes +0.0 to every accumulator
  //     and rewrites its own state with the same bits, matching the scalar
  //     path's early-out exactly.
  //   - The playback gate `if (!paused)` becomes a multiply by the 1.0/0.0
  //     playing mask; the baseline build has no FMA, so no contraction can
  //     fuse these multiplies differently from the scalar path.
  //
  // The kernel runs in three passes because GCC refuses to vectorize a loop
  // carrying FP sum/max reductions without value-changing reassociation:
  // a light scalar pass does the metering sum and advanced count (reading
  // only last_update/allocation, both still pre-update), the heavy
  // per-stream state arithmetic runs reduction-free and vectorized in
  // advance_states, and a final scan folds the scratch into any_underflow.
  // The split changes no operation or order: the metering terms are summed
  // in slot order either way, and the passes touch disjoint values.
  Megabits transmitted = 0.0;
  std::size_t advanced = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Seconds start = last_update[i];
    advanced += static_cast<std::size_t>(now - start > 0.0);
    transmitted +=
        allocation[i] * std::max(0.0, meter_hi - std::max(start, window_start));
  }

  advance_states(n, now, last_update_, remaining_, buffer_level_,
                 buffer_capacity_, allocation_, view_bandwidth_, arrival_,
                 playback_end_, playing_, underflow_scratch.data());

  Megabits max_underflow = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    max_underflow = std::max(max_underflow, underflow_out[i]);
  }
  result.transmitted_in_window = transmitted;
  result.advanced = advanced;
  result.any_underflow = max_underflow > 0.0;
  return result;
}

Mbps FluidLane::sum_minimum_rates(std::vector<Mbps>& rates) const {
  const std::size_t n = size_;
  rates.assign(n, 0.0);
  Mbps committed = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // Request::minimum_rate: 0 only for a paused client whose staging disk
    // is full (within StagingBuffer::kLevelTolerance), else the view rate.
    const bool full =
        buffer_level_[i] >= buffer_capacity_[i] - StagingBuffer::kLevelTolerance;
    const Mbps rate = (playing_[i] == 0.0 && full) ? 0.0 : view_bandwidth_[i];
    rates[i] = rate;
    committed += rate;
  }
  return committed;
}

void FluidLane::eligible_slots(std::vector<std::size_t>& out) const {
  const std::size_t n = size_;
  for (std::size_t i = 0; i < n; ++i) {
    // sched_detail::workahead_eligible: room in the staging buffer, a
    // receive link faster than playback, and data left to send.
    const bool full =
        buffer_level_[i] >= buffer_capacity_[i] - StagingBuffer::kLevelTolerance;
    if (!full && receive_bandwidth_[i] > view_bandwidth_[i] &&
        remaining_[i] > Request::kRemainingTolerance) {
      out.push_back(i);
    }
  }
}

void FluidLane::fill_projected_finish(Seconds now,
                                      std::vector<Seconds>& keys) const {
  keys.resize(size_);
  projected_finish_keys(size_, now, remaining_, view_bandwidth_, keys.data());
}

void FluidLane::fill_predicted_times(Seconds now, double safety_cover,
                                     std::vector<Seconds>& tx_at,
                                     std::vector<Seconds>& full_at,
                                     std::vector<Seconds>& low_at) const {
  const std::size_t n = size_;
  tx_at.resize(n);
  full_at.resize(n);
  low_at.resize(n);
  predicted_event_times(n, now, safety_cover, remaining_, allocation_,
                        buffer_level_, buffer_capacity_, view_bandwidth_,
                        arrival_, playback_end_, playing_, tx_at.data(),
                        full_at.data(), low_at.data());
}

}  // namespace vodsim
