#pragma once

/// \file client.h
/// \brief Client-side staging model.
///
/// Each request is associated with one client. The client plays the video at
/// `b_view` starting the instant the request is admitted, and owns a staging
/// buffer (disk) of fixed capacity into which the server may transmit ahead
/// of the playback point. A client can receive at most `receive_bandwidth`
/// (30 Mb/s in the paper's staging experiments; unbounded = infinity).

#include <limits>

#include "vodsim/util/units.h"

namespace vodsim {

/// Per-client parameters shared by all requests in an experiment.
struct ClientProfile {
  /// Staging buffer capacity in megabits. The paper expresses this as a
  /// percentage of the average video size; engine::Config does the
  /// conversion. 0 disables staging (pure continuous transmission).
  Megabits buffer_capacity = 0.0;

  /// Maximum rate at which this client can receive data. Infinity models
  /// the unbounded case of Theorem 1.
  Mbps receive_bandwidth = std::numeric_limits<double>::infinity();
};

/// Fluid staging-buffer state: level rises at (inflow - drain) while
/// playback is active. Separated from Request so the fill/drain arithmetic
/// is unit-testable in isolation.
class StagingBuffer {
 public:
  StagingBuffer() = default;
  explicit StagingBuffer(Megabits capacity) : capacity_(capacity) {}

  Megabits capacity() const { return capacity_; }
  Megabits level() const { return level_; }

  /// True when no further workahead fits (within fluid-model tolerance).
  bool full() const { return level_ >= capacity_ - kLevelTolerance; }

  /// Megabits of additional workahead the buffer can hold.
  Megabits headroom() const { return capacity_ > level_ ? capacity_ - level_ : 0.0; }

  /// Applies \p inflow megabits received and \p outflow megabits consumed
  /// by playback over an interval. Returns the number of megabits by which
  /// the level would have gone negative (playback continuity violation;
  /// 0 in normal minimum-flow operation). The level is clamped to
  /// [0, capacity]; overshoot beyond capacity (possible only through
  /// floating-point slop, since buffer-full events stop workahead) is
  /// clamped silently within tolerance. Delegates to the shared
  /// single-stream kernel (cluster/fluid_lane.h), so the scalar and SoA
  /// paths run the same arithmetic.
  Megabits apply(Megabits inflow, Megabits outflow);

  /// Overwrites the level directly: lane synchronization (a request
  /// detaching from a server copies its SoA slot back here) and the shared
  /// kernel's scalar path. \p level must already be clamped to
  /// [0, capacity] — this is a plain store, not an apply().
  void set_level(Megabits level) {
    level_ = level;
  }

  /// Seconds of playback the current level covers at \p view_bandwidth.
  Seconds playback_cover(Mbps view_bandwidth) const;

  /// Fluid-model tolerance on buffer levels (megabits); about 1e-6 s of a
  /// 3 Mb/s stream.
  static constexpr Megabits kLevelTolerance = 1e-6;

 private:
  Megabits capacity_ = 0.0;
  Megabits level_ = 0.0;
};

}  // namespace vodsim
