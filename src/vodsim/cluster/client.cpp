#include "vodsim/cluster/client.h"

#include <algorithm>
#include <cassert>

#include "vodsim/cluster/fluid_lane.h"

namespace vodsim {

Megabits StagingBuffer::apply(Megabits inflow, Megabits outflow) {
  assert(inflow >= 0.0);
  assert(outflow >= 0.0);
  return fluid_detail::apply_buffer(level_, capacity_, inflow, outflow);
}

Seconds StagingBuffer::playback_cover(Mbps view_bandwidth) const {
  assert(view_bandwidth > 0.0);
  return level_ / view_bandwidth;
}

}  // namespace vodsim
