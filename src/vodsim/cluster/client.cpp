#include "vodsim/cluster/client.h"

#include <algorithm>
#include <cassert>

namespace vodsim {

Megabits StagingBuffer::apply(Megabits inflow, Megabits outflow) {
  assert(inflow >= 0.0);
  assert(outflow >= 0.0);
  level_ += inflow - outflow;
  Megabits underflow = 0.0;
  if (level_ < 0.0) {
    underflow = -level_;
    level_ = 0.0;
  }
  if (level_ > capacity_) {
    // Allocation logic never intentionally overfills; anything here is
    // floating-point slop from event-time rounding.
    level_ = capacity_;
  }
  return underflow > kLevelTolerance ? underflow : 0.0;
}

Seconds StagingBuffer::playback_cover(Mbps view_bandwidth) const {
  assert(view_bandwidth > 0.0);
  return level_ / view_bandwidth;
}

}  // namespace vodsim
