#include "vodsim/cluster/request.h"

#include <algorithm>
#include <cassert>

namespace vodsim {

Request::Request(RequestId id, const Video& video, Seconds arrival,
                 const ClientProfile& client)
    : id_(id),
      video_id_(video.id),
      arrival_(arrival),
      playback_end_(arrival + video.duration),
      view_bandwidth_(video.view_bandwidth),
      receive_bandwidth_(client.receive_bandwidth),
      total_size_(video.size()),
      remaining_(video.size()),
      last_update_(arrival),
      buffer_(client.buffer_capacity) {}

Seconds Request::projected_finish(Seconds now) const {
  return now + remaining_ / view_bandwidth_;
}

Megabits Request::advance(Seconds now) {
  assert(now >= last_update_ - 1e-9);
  const Seconds dt = now - last_update_;
  if (dt <= 0.0) {
    last_update_ = now;
    return 0.0;
  }

  const Megabits inflow = allocation_ * dt;
  remaining_ = std::max(0.0, remaining_ - inflow);

  // Playback consumes view_bandwidth over the part of [last_update, now]
  // that overlaps [arrival, playback_end] — unless paused. The engine
  // advances exactly at pause/resume instants, so the paused flag is
  // constant across any integrated interval.
  Megabits outflow = 0.0;
  if (!viewing_paused_) {
    const Seconds play_lo = std::max(last_update_, arrival_);
    const Seconds play_hi = std::min(now, playback_end_);
    if (play_hi > play_lo) outflow = view_bandwidth_ * (play_hi - play_lo);
  }

  last_update_ = now;
  return buffer_.apply(inflow, outflow);
}

Mbps Request::drain_rate(Seconds now) const {
  if (viewing_paused_) return 0.0;
  return (now >= arrival_ && now < playback_end_) ? view_bandwidth_ : 0.0;
}

Mbps Request::minimum_rate() const {
  if (viewing_paused_ && buffer_.full()) return 0.0;
  return view_bandwidth_;
}

void Request::pause_viewing(Seconds now) {
  assert(!viewing_paused_);
  assert(std::abs(now - last_update_) < 1e-9 && "advance() before pause");
  viewing_paused_ = true;
  pause_started_ = now;
  ++pause_count_;
}

void Request::resume_viewing(Seconds now) {
  assert(viewing_paused_);
  assert(std::abs(now - last_update_) < 1e-9 && "advance() before resume");
  viewing_paused_ = false;
  playback_end_ += now - pause_started_;
}

void Request::set_allocation(Seconds now, Mbps rate) {
  assert(std::abs(now - last_update_) < 1e-9 && "advance() before set_allocation()");
  assert(rate >= -1e-12);
  assert(rate <= receive_bandwidth_ + 1e-9);
  (void)now;
  allocation_ = std::max(rate, 0.0);
}

void Request::begin_streaming(Seconds now, ServerId server) {
  assert(state_ == RequestState::kStreaming || state_ == RequestState::kMigrating);
  state_ = RequestState::kStreaming;
  server_ = server;
  last_update_ = std::max(last_update_, now);
}

void Request::begin_migration(Seconds now) {
  assert(state_ == RequestState::kStreaming);
  (void)now;
  state_ = RequestState::kMigrating;
  server_ = kNoServer;
  allocation_ = 0.0;
  ++hops_;
}

void Request::complete_migration(Seconds now, ServerId new_server) {
  assert(state_ == RequestState::kMigrating);
  state_ = RequestState::kStreaming;
  server_ = new_server;
  last_update_ = std::max(last_update_, now);
}

void Request::mark_tx_complete(Seconds now) {
  assert(state_ == RequestState::kStreaming);
  (void)now;
  assert(finished());
  state_ = RequestState::kTxComplete;
  server_ = kNoServer;
  allocation_ = 0.0;
  remaining_ = 0.0;
}

void Request::mark_done(Seconds now) {
  (void)now;
  assert(state_ == RequestState::kTxComplete || state_ == RequestState::kStreaming ||
         state_ == RequestState::kMigrating);
  state_ = RequestState::kDone;
  server_ = kNoServer;
  allocation_ = 0.0;
}

void Request::mark_rejected() {
  assert(state_ == RequestState::kStreaming && server_ == kNoServer);
  state_ = RequestState::kRejected;
}

}  // namespace vodsim
