#include "vodsim/cluster/request.h"

#include <algorithm>
#include <cassert>

namespace vodsim {

Request::Request(RequestId id, const Video& video, Seconds arrival,
                 const ClientProfile& client)
    : id_(id),
      video_id_(video.id),
      arrival_(arrival),
      playback_end_(arrival + video.duration),
      view_bandwidth_(video.view_bandwidth),
      receive_bandwidth_(client.receive_bandwidth),
      total_size_(video.size()),
      remaining_(video.size()),
      last_update_(arrival),
      buffer_(client.buffer_capacity) {}

Seconds Request::projected_finish(Seconds now) const {
  return now + remaining() / view_bandwidth_;
}

Megabits Request::advance(Seconds now) {
  assert(now >= last_update() - kTimeSyncTolerance);
  if (lane_ != nullptr) {
    return lane_->advance_one(active_index, now);
  }
  // Detached path: same single-stream formulas (fluid_detail) on the home
  // scalars; the buffer keeps draining while a stream migrates or coasts
  // after transmission completes.
  Megabits level = buffer_.level();
  const Megabits underflow = fluid_detail::advance_stream(
      now, last_update_, remaining_, level, buffer_.capacity(), allocation_,
      viewing_paused_, arrival_, playback_end_, view_bandwidth_);
  buffer_.set_level(level);
  return underflow;
}

Mbps Request::drain_rate(Seconds now) const {
  if (viewing_paused_) return 0.0;
  return (now >= arrival_ && now < playback_end_) ? view_bandwidth_ : 0.0;
}

Mbps Request::minimum_rate() const {
  if (viewing_paused_ && buffer_full()) return 0.0;
  return view_bandwidth_;
}

void Request::pause_viewing(Seconds now) {
  assert(!viewing_paused_);
  assert(std::abs(now - last_update()) < kTimeSyncTolerance &&
         "advance() before pause");
  viewing_paused_ = true;
  pause_started_ = now;
  ++pause_count_;
  if (lane_ != nullptr) lane_->set_paused(active_index, true);
}

void Request::resume_viewing(Seconds now) {
  assert(viewing_paused_);
  assert(std::abs(now - last_update()) < kTimeSyncTolerance &&
         "advance() before resume");
  viewing_paused_ = false;
  playback_end_ += now - pause_started_;
  if (lane_ != nullptr) {
    lane_->set_paused(active_index, false);
    lane_->set_playback_end(active_index, playback_end_);
  }
}

void Request::set_allocation(Seconds now, Mbps rate) {
  assert(std::abs(now - last_update()) < kTimeSyncTolerance &&
         "advance() before set_allocation()");
  assert(rate >= -1e-12);
  assert(rate <= receive_bandwidth_ + 1e-9);
  (void)now;
  allocation_ = std::max(rate, 0.0);
  if (lane_ != nullptr) lane_->set_allocation(active_index, allocation_);
}

void Request::begin_streaming(Seconds now, ServerId server) {
  assert(state_ == RequestState::kStreaming || state_ == RequestState::kMigrating);
  assert(lane_ == nullptr && "attach_lane follows begin_streaming");
  state_ = RequestState::kStreaming;
  server_ = server;
  last_server = server;
  last_update_ = std::max(last_update_, now);
}

void Request::begin_migration(Seconds now) {
  assert(state_ == RequestState::kStreaming);
  assert(lane_ == nullptr && "detach before begin_migration");
  (void)now;
  state_ = RequestState::kMigrating;
  server_ = kNoServer;
  allocation_ = 0.0;
  ++hops_;
}

void Request::complete_migration(Seconds now, ServerId new_server) {
  assert(state_ == RequestState::kMigrating);
  state_ = RequestState::kStreaming;
  server_ = new_server;
  last_server = new_server;
  last_update_ = std::max(last_update_, now);
}

void Request::mark_tx_complete(Seconds now) {
  assert(state_ == RequestState::kStreaming);
  assert(lane_ == nullptr && "detach before mark_tx_complete");
  (void)now;
  assert(finished());
  state_ = RequestState::kTxComplete;
  server_ = kNoServer;
  allocation_ = 0.0;
  remaining_ = 0.0;
}

void Request::mark_done(Seconds now) {
  (void)now;
  assert(state_ == RequestState::kTxComplete || state_ == RequestState::kStreaming ||
         state_ == RequestState::kMigrating);
  state_ = RequestState::kDone;
  server_ = kNoServer;
  allocation_ = 0.0;
}

void Request::mark_rejected() {
  assert(state_ == RequestState::kStreaming && server_ == kNoServer);
  state_ = RequestState::kRejected;
}

void Request::attach_lane(FluidLane* lane) {
  assert(lane_ == nullptr);
  assert(lane != nullptr);
  assert(lane->size() == active_index + 1 && "append precedes attach_lane");
  lane_ = lane;
}

void Request::detach_lane() {
  assert(lane_ != nullptr);
  remaining_ = lane_->remaining(active_index);
  last_update_ = lane_->last_update(active_index);
  buffer_.set_level(lane_->buffer_level(active_index));
  lane_ = nullptr;
}

}  // namespace vodsim
