#include "vodsim/cluster/video.h"

#include <cassert>

namespace vodsim {

VideoCatalog::VideoCatalog(std::vector<Video> videos) : videos_(std::move(videos)) {
  double total_duration = 0.0;
  double total_size = 0.0;
  for (std::size_t i = 0; i < videos_.size(); ++i) {
    assert(videos_[i].id == static_cast<VideoId>(i) && "catalog ids must be dense");
    total_duration += videos_[i].duration;
    total_size += videos_[i].size();
  }
  if (!videos_.empty()) {
    mean_duration_ = total_duration / static_cast<double>(videos_.size());
    mean_size_ = total_size / static_cast<double>(videos_.size());
  }
}

}  // namespace vodsim
