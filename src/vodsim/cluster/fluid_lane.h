#pragma once

/// \file fluid_lane.h
/// \brief Struct-of-arrays fluid stream state: one lane per server.
///
/// Each server owns a FluidLane holding the fluid-model state of its active
/// streams in parallel arrays indexed by `Request::active_index`. The lane
/// is maintained by Server::attach/detach in lock-step with the active
/// list: attach appends a slot (copying the request's home scalars) and
/// binds the request to the lane; detach copies the hot fields back and
/// mirrors the active list's swap-with-last, so slot order always equals
/// active order.
///
/// Authority model (see DESIGN.md §10):
///   - While a request is attached, the lane slot is authoritative for the
///     hot fields the fluid kernel mutates — remaining data, staging-buffer
///     level, last-update time. Request accessors read through the lane.
///   - Rarely-mutated fields (allocation, paused flag, playback end) stay
///     home-authoritative on the Request and are written through to the
///     lane, so the kernel reads them from contiguous storage while
///     ordinary reads stay branch-free.
///   - While detached (migrating, draining after TxComplete), the home
///     scalars are authoritative and the scalar path integrates them.
///
/// Storage (PR 9): all arrays live in ONE 64-byte-aligned arena, laid out
/// hot-to-cold at a shared stride so every array starts on a cache-line
/// boundary. The batch kernels get aligned, peel-free vector loads; the
/// exact-mode scalar walk touches a compact block of lines instead of ten
/// scattered heap allocations (the "gather tax" the PR 6 SoA split paid).
/// The hot block leads with the three kernel-mutated arrays (last-update,
/// remaining, buffer level), then the six kernel-read parameters; the cold
/// tail holds the receive bandwidth, read only by workahead eligibility.
///
/// Both engine modes use the lane. Exact mode advances streams one at a
/// time in active order through `advance_one`, which calls the identical
/// single-stream formulas as the original Request::advance — so the 29
/// hexfloat determinism goldens pin the lane plumbing itself. Fast-math
/// mode calls `advance_batch`, which runs the same per-stream arithmetic
/// in one vectorizable loop and aggregates the transmission metering into
/// a per-batch sum (the only numeric divergence between modes: summation
/// grouping of the metering, at ulp scale).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "vodsim/cluster/client.h"
#include "vodsim/util/units.h"

namespace vodsim {

class Request;

/// Single-stream fluid formulas, defined exactly once. The scalar path
/// (Request::advance, StagingBuffer::apply) and the exact-mode lane path
/// call these directly; the fast-math batch kernel (fluid_lane.cpp) is a
/// branchless re-expression of the same operations, proven bit-identical
/// per stream (the argument is spelled out at the kernel), so restructuring
/// storage cannot change a single floating-point result per stream.
namespace fluid_detail {

/// StagingBuffer::apply's arithmetic on raw level storage: applies inflow
/// and playback outflow, clamps the level into [0, capacity], and returns
/// the megabits by which playback would have underrun (0 within tolerance).
inline Megabits apply_buffer(Megabits& level, Megabits capacity,
                             Megabits inflow, Megabits outflow) {
  level += inflow - outflow;
  Megabits underflow = 0.0;
  if (level < 0.0) {
    underflow = -level;
    level = 0.0;
  }
  if (level > capacity) {
    // Allocation logic never intentionally overfills; anything here is
    // floating-point slop from event-time rounding.
    level = capacity;
  }
  return underflow > StagingBuffer::kLevelTolerance ? underflow : 0.0;
}

/// One stream's fluid step from `last_update` to `now`: the exact
/// arithmetic of Request::advance + StagingBuffer::apply on caller-supplied
/// storage. Returns megabits of playback underflow over the interval.
inline Megabits advance_stream(Seconds now, Seconds& last_update,
                               Megabits& remaining, Megabits& buffer_level,
                               Megabits buffer_capacity, Mbps allocation,
                               bool paused, Seconds arrival,
                               Seconds playback_end, Mbps view_bandwidth) {
  const Seconds dt = now - last_update;
  if (dt <= 0.0) {
    last_update = now;
    return 0.0;
  }

  const Megabits inflow = allocation * dt;
  remaining = std::max(0.0, remaining - inflow);

  // Playback consumes view_bandwidth over the part of [last_update, now]
  // that overlaps [arrival, playback_end] — unless paused. The engine
  // advances exactly at pause/resume instants, so the paused flag is
  // constant across any integrated interval.
  Megabits outflow = 0.0;
  if (!paused) {
    const Seconds play_lo = std::max(last_update, arrival);
    const Seconds play_hi = std::min(now, playback_end);
    if (play_hi > play_lo) outflow = view_bandwidth * (play_hi - play_lo);
  }

  last_update = now;
  return apply_buffer(buffer_level, buffer_capacity, inflow, outflow);
}

}  // namespace fluid_detail

/// Per-server struct-of-arrays fluid state. Slot i belongs to the request
/// with active_index == i on the owning server.
class FluidLane {
 public:
  FluidLane() = default;
  FluidLane(FluidLane&&) = default;
  FluidLane& operator=(FluidLane&&) = default;
  // Deep copies of the arena: Server is copied by the reference oracle,
  // which clones the engine's freshly built world (lanes empty or not, the
  // copy is an independent arena — no aliasing).
  FluidLane(const FluidLane& other) { *this = other; }
  FluidLane& operator=(const FluidLane& other);

  std::size_t size() const { return size_; }

  void reserve(std::size_t n);

  /// Appends \p request's fluid state as the last slot. Reads the home-
  /// authoritative scalars; call before binding the request to this lane.
  void append(const Request& request);

  /// Removes slot \p index by swap-with-last, mirroring Server::detach's
  /// active-list swap so slot order keeps tracking active order.
  void swap_remove(std::size_t index);

  // --- per-slot access (slot = Request::active_index) -------------------
  Megabits remaining(std::size_t i) const { return remaining_[i]; }
  Mbps allocation(std::size_t i) const { return allocation_[i]; }
  Seconds last_update(std::size_t i) const { return last_update_[i]; }
  Megabits buffer_level(std::size_t i) const { return buffer_level_[i]; }
  Mbps receive_bandwidth(std::size_t i) const { return receive_bandwidth_[i]; }

  // Write-through sinks for the home-authoritative fields (Request-driven).
  void set_allocation(std::size_t i, Mbps rate) { allocation_[i] = rate; }
  void set_paused(std::size_t i, bool paused) {
    playing_[i] = paused ? 0.0 : 1.0;
  }
  void set_playback_end(std::size_t i, Seconds end) { playback_end_[i] = end; }

  /// Exact-mode advancement of one slot: identical formulas, per-stream
  /// call order preserved by the caller. Returns playback underflow (Mb).
  Megabits advance_one(std::size_t i, Seconds now) {
    return fluid_detail::advance_stream(
        now, last_update_[i], remaining_[i], buffer_level_[i],
        buffer_capacity_[i], allocation_[i], playing_[i] == 0.0, arrival_[i],
        playback_end_[i], view_bandwidth_[i]);
  }

  /// Aggregate outcome of one fast-math batch.
  struct BatchResult {
    /// Σ allocation · dt over the batch, clipped per stream to the
    /// metering window — the batch equivalent of one
    /// Metrics::record_transmission call per stream, summed locally.
    Megabits transmitted_in_window = 0.0;
    std::size_t advanced = 0;  ///< streams with dt > 0
    bool any_underflow = false;
  };

  /// Fast-math kernel: advances every slot to \p now in one branchless,
  /// vectorizable loop free of per-stream call order. Per-stream state
  /// updates are bit-identical to advance_one (see the kernel for the
  /// proof sketch), so trajectories — and therefore all discrete outcomes —
  /// match exact mode; only the metering summation is regrouped.
  /// \p underflow_scratch is resized to size() and receives
  /// each slot's playback underflow (0 for almost every stream — the
  /// engine walks it only when the result says any_underflow).
  BatchResult advance_batch(Seconds now, Seconds window_start,
                            Seconds window_end,
                            std::vector<Megabits>& underflow_scratch);

  // --- scheduler-facing batch passes ------------------------------------
  // The allocation hot loops (sched/scheduler.cpp, sched/finish_order.cpp)
  // and the engine's predicted-event retiming evaluate per-stream formulas
  // on every recompute; walking the arrays beats chasing Request pointers.
  // Every pass below is an exact replica of the corresponding Request
  // formula on the same authoritative values, so using them changes no
  // result bit in either engine mode — the determinism goldens pin that.

  /// Fills \p rates with each slot's minimum rate (Request::minimum_rate
  /// semantics: the view bandwidth, or 0 for a paused client with a full
  /// staging buffer) and returns their sum in slot order.
  Mbps sum_minimum_rates(std::vector<Mbps>& rates) const;

  /// Appends to \p out the slots that can absorb workahead
  /// (sched_detail::workahead_eligible semantics), in slot order.
  void eligible_slots(std::vector<std::size_t>& out) const;

  /// Writes every slot's EFTF/LFTF sort key — Request::projected_finish
  /// exactly: now + remaining / view_bandwidth — into keys[0..size()).
  /// \p keys is resized to size(). One vectorized pass replaces the
  /// per-candidate virtual-free but division-heavy scalar loop in
  /// sort_by_projected_finish.
  void fill_projected_finish(Seconds now, std::vector<Seconds>& keys) const;

  /// Batched predicted-event retiming: computes, for every slot, the three
  /// times the engine's reschedule_predicted_events derives per stream —
  /// transmission complete, buffer full, buffer low — with op-for-op
  /// identical arithmetic (the kernel spells out the argument). A
  /// prediction whose scalar-path gate would reject it is written as +inf,
  /// which is unambiguous: the scalar gates themselves can never keep a
  /// +inf buffer-full/low time (the `t < tx_at` comparison fails on inf),
  /// and transmission-complete liveness is re-derived by the consumer from
  /// the allocation sign, not from the array. \p safety_cover is
  /// SimulationConfig::intermittent_safety_cover. All three outputs are
  /// resized to size().
  void fill_predicted_times(Seconds now, double safety_cover,
                            std::vector<Seconds>& tx_at,
                            std::vector<Seconds>& full_at,
                            std::vector<Seconds>& low_at) const;

 private:
  /// Number of parallel arrays in the arena (hot-to-cold order below).
  static constexpr std::size_t kArrays = 10;

  /// Grows the arena to hold at least \p min_capacity slots per array and
  /// rebinds the named views. Stride is rounded to 8 doubles so every
  /// array keeps 64-byte alignment.
  void grow(std::size_t min_capacity);

  struct AlignedFree {
    void operator()(double* p) const {
      ::operator delete[](p, std::align_val_t{64});
    }
  };

  std::size_t size_ = 0;
  std::size_t capacity_ = 0;  ///< slots per array == arena stride in doubles
  std::unique_ptr<double[], AlignedFree> storage_;

  // Named views into storage_ at offsets k * capacity_, in arena order.
  // Hot, kernel-mutated:
  double* last_update_ = nullptr;
  double* remaining_ = nullptr;
  double* buffer_level_ = nullptr;
  // Hot, kernel-read:
  double* allocation_ = nullptr;
  double* buffer_capacity_ = nullptr;
  double* view_bandwidth_ = nullptr;
  double* arrival_ = nullptr;
  double* playback_end_ = nullptr;
  /// Playback-drain mask: 1.0 while viewing, 0.0 while paused. Stored as a
  /// double so the batch kernel applies it as a multiply (x·1.0 and x·0.0
  /// are bit-exact stand-ins for the scalar path's `if (!paused)`) and the
  /// loop stays free of mixed-width loads that block vectorization.
  double* playing_ = nullptr;
  // Cold tail: read only by workahead eligibility, never by the kernels.
  double* receive_bandwidth_ = nullptr;
};

}  // namespace vodsim
