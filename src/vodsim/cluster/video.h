#pragma once

/// \file video.h
/// \brief Video objects and the catalog of titles offered by the cluster.

#include <cstdint>
#include <vector>

#include "vodsim/util/units.h"

namespace vodsim {

using VideoId = std::int32_t;

/// A single title. Videos play at a constant `view_bandwidth`, so the stored
/// size is duration x view bandwidth (the paper's CBR model).
struct Video {
  VideoId id = -1;
  Seconds duration = 0.0;        ///< playback length, seconds
  Mbps view_bandwidth = 3.0;     ///< playback (and minimum-flow) rate

  /// Total object size in megabits.
  Megabits size() const { return duration * view_bandwidth; }
};

/// Immutable list of titles, indexed by VideoId (ids are dense 0..n-1).
class VideoCatalog {
 public:
  VideoCatalog() = default;
  explicit VideoCatalog(std::vector<Video> videos);

  std::size_t size() const { return videos_.size(); }
  bool empty() const { return videos_.empty(); }
  const Video& operator[](VideoId id) const { return videos_[static_cast<std::size_t>(id)]; }
  const std::vector<Video>& videos() const { return videos_; }

  /// Mean object duration across the catalog (seconds).
  Seconds mean_duration() const { return mean_duration_; }

  /// Mean object size across the catalog (megabits).
  Megabits mean_size() const { return mean_size_; }

 private:
  std::vector<Video> videos_;
  Seconds mean_duration_ = 0.0;
  Megabits mean_size_ = 0.0;
};

}  // namespace vodsim
