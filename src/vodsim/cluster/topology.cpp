#include "vodsim/cluster/topology.h"

#include <cassert>

namespace vodsim {

Topology::Topology(const TopologyConfig& config, int num_servers)
    : enabled_(config.enabled),
      num_servers_(num_servers),
      racks_(config.enabled ? config.racks : 1),
      zones_(config.enabled ? config.zones : 1) {
  assert(num_servers >= 0);
  assert(racks_ >= 1 && zones_ >= 1 && zones_ <= racks_);
  rack_of_server_.resize(static_cast<std::size_t>(num_servers));
  for (int s = 0; s < num_servers; ++s) {
    // Same contiguous near-even block formula as the shard layout: integer
    // arithmetic, no rounding surprises, blocks differ by at most one.
    rack_of_server_[static_cast<std::size_t>(s)] =
        static_cast<int>(static_cast<long long>(s) * racks_ / num_servers);
  }
  rack_first_.assign(static_cast<std::size_t>(racks_) + 1, num_servers);
  for (int r = 0; r < racks_; ++r) {
    // Exact inverse of rack_of: the smallest s with s*racks/num_servers == r
    // is ceil(r*num_servers/racks). Floor division would hand the boundary
    // server of a non-divisible split to the wrong rack's episode range.
    rack_first_[static_cast<std::size_t>(r)] = static_cast<ServerId>(
        (static_cast<long long>(r) * num_servers + racks_ - 1) / racks_);
  }
  zone_of_rack_.resize(static_cast<std::size_t>(racks_));
  for (int r = 0; r < racks_; ++r) {
    zone_of_rack_[static_cast<std::size_t>(r)] =
        static_cast<int>(static_cast<long long>(r) * zones_ / racks_);
  }
}

}  // namespace vodsim
