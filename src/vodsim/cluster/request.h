#pragma once

/// \file request.h
/// \brief Request lifecycle and per-request fluid transmission state.
///
/// A request is one client viewing one video. Its life:
///
///   arrival -> (admitted | rejected)
///   admitted: Streaming on some server, possibly migrated between servers,
///             until all data is transmitted (TxComplete), then playback
///             drains the staging buffer until the video ends (Done).
///
/// Playback starts the instant the request is admitted and consumes
/// view_bandwidth until `playback_end`. Transmission rate is piecewise
/// constant between simulation events; `advance()` integrates the fluid
/// state up to the current time.

#include <cstdint>

#include "vodsim/cluster/client.h"
#include "vodsim/cluster/fluid_lane.h"
#include "vodsim/cluster/video.h"
#include "vodsim/des/event_queue.h"
#include "vodsim/util/units.h"

namespace vodsim {

using RequestId = std::int64_t;
using ServerId = std::int32_t;

inline constexpr ServerId kNoServer = -1;

enum class RequestState {
  kStreaming,   ///< unfinished: holds server bandwidth (minimum-flow)
  kMigrating,   ///< between servers; receives nothing, buffer drains
  kTxComplete,  ///< all data at client; playback continues from buffer
  kDone,        ///< playback finished
  kRejected,    ///< admission failed
};

class Request {
 public:
  Request(RequestId id, const Video& video, Seconds arrival,
          const ClientProfile& client);

  // --- identity / immutable parameters -------------------------------
  RequestId id() const { return id_; }
  VideoId video_id() const { return video_id_; }
  Seconds arrival() const { return arrival_; }
  Seconds playback_end() const { return playback_end_; }
  Mbps view_bandwidth() const { return view_bandwidth_; }
  Mbps receive_bandwidth() const { return receive_bandwidth_; }
  Megabits total_size() const { return total_size_; }

  // --- dynamic state --------------------------------------------------
  // While attached to a server, the hot fluid fields (remaining data,
  // staging level, last-update time) live in the server's FluidLane at
  // slot `active_index` and the accessors read through; detached requests
  // own their state inline (cluster/fluid_lane.h documents the authority
  // model). allocation and the pause/playback fields stay home-
  // authoritative with write-through, so those reads are branch-free.
  RequestState state() const { return state_; }
  ServerId server() const { return server_; }
  Megabits remaining() const {
    return lane_ != nullptr ? lane_->remaining(active_index) : remaining_;
  }
  Mbps allocation() const { return allocation_; }
  Seconds last_update() const {
    return lane_ != nullptr ? lane_->last_update(active_index) : last_update_;
  }
  int hops() const { return hops_; }
  bool viewing_paused() const { return viewing_paused_; }
  int pause_count() const { return pause_count_; }

  // --- staging-buffer view ---------------------------------------------
  // Scalar accessors rather than a StagingBuffer reference: the level may
  // live in the lane, so there is no single object to hand out. Arithmetic
  // is identical to StagingBuffer's (full/headroom/playback_cover).
  Megabits buffer_level() const {
    return lane_ != nullptr ? lane_->buffer_level(active_index) : buffer_.level();
  }
  Megabits buffer_capacity() const { return buffer_.capacity(); }

  /// True when no further workahead fits (within fluid-model tolerance).
  bool buffer_full() const {
    return buffer_level() >= buffer_.capacity() - StagingBuffer::kLevelTolerance;
  }

  /// Megabits of additional workahead the staging buffer can hold.
  Megabits buffer_headroom() const {
    const Megabits level = buffer_level();
    return buffer_.capacity() > level ? buffer_.capacity() - level : 0.0;
  }

  /// Seconds of playback the staged data covers at this request's view rate.
  Seconds buffer_cover() const { return buffer_level() / view_bandwidth_; }

  /// Rate at which the client consumes data right now (0 while paused or
  /// after the video ends).
  Mbps drain_rate(Seconds now) const;

  /// Least rate this request can usefully absorb. Normally the view
  /// bandwidth (the minimum-flow guarantee); 0 when the client is paused
  /// with a full staging buffer — its disk cannot take another bit, so
  /// forcing flow at it would only be discarded.
  Mbps minimum_rate() const;

  /// Time at which the transmission would finish if sent at exactly
  /// view_bandwidth from \p now on — EFTF's ordering key. Smaller remaining
  /// data = earlier projected finish.
  Seconds projected_finish(Seconds now) const;

  /// True if all data has been transmitted.
  bool finished() const { return remaining() <= kRemainingTolerance; }

  /// Megabits delivered to the client so far (audit surface: the invariant
  /// auditor reconciles the sum of these against the integrated fluid flow).
  Megabits delivered() const { return total_size_ - remaining(); }

  /// Integrates the fluid state from last_update() to \p now at the current
  /// allocation: decreases remaining data, fills/drains the staging buffer
  /// against playback. Returns megabits of playback underflow in the
  /// interval (0 in normal operation). Idempotent for now == last_update().
  Megabits advance(Seconds now);

  /// Sets the transmission rate going forward from \p now. Caller must have
  /// advanced the request to \p now first. Rate must respect the client cap.
  void set_allocation(Seconds now, Mbps rate);

  // --- interactivity (engine-driven) ----------------------------------
  /// Pauses playback at \p now (caller must advance() first). The playback
  /// deadline freezes; it is extended by the pause length at resume.
  void pause_viewing(Seconds now);

  /// Resumes playback; shifts playback_end by the pause duration.
  void resume_viewing(Seconds now);

  // --- lifecycle transitions (engine-driven) --------------------------
  void begin_streaming(Seconds now, ServerId server);
  void begin_migration(Seconds now);
  void complete_migration(Seconds now, ServerId new_server);
  void mark_tx_complete(Seconds now);
  void mark_done(Seconds now);
  void mark_rejected();

  // --- SoA lane binding (Server::attach/detach only) -------------------
  /// Binds this request to \p lane at slot `active_index`. The caller has
  /// already appended the home scalars to the lane (FluidLane::append).
  void attach_lane(FluidLane* lane);

  /// Copies the lane-authoritative fields back into the home scalars and
  /// unbinds. Call before the lane slot is recycled (swap_remove).
  void detach_lane();

  /// The owning server's lane while attached (slot = active_index), null
  /// otherwise. Lets the scheduler hot loops detect that a candidate vector
  /// is lane-backed and read the SoA arrays directly.
  const FluidLane* lane() const { return lane_; }

  // --- predicted-event bookkeeping ------------------------------------
  // The engine stores handles to this request's pending predicted events so
  // it can reschedule only when the allocation actually changes.
  EventId tx_complete_event = kInvalidEventId;
  EventId buffer_full_event = kInvalidEventId;
  EventId playback_end_event = kInvalidEventId;
  /// Fires when a deliberately starved stream (intermittent scheduling)
  /// drains to the safety threshold and needs flow again.
  EventId buffer_low_event = kInvalidEventId;

  /// Index of this request within its server's active list (engine-managed;
  /// enables O(1) removal).
  std::size_t active_index = 0;

  /// Hysteresis latch for the intermittent scheduler: set when staged cover
  /// falls below the safety threshold, cleared only once it recovers past
  /// twice the threshold. Without the latch, a stream hovering exactly at
  /// the threshold flips between fed and starved every fluid instant
  /// (scheduler-managed, like active_index).
  bool workahead_urgent = false;

  /// Interruption-dedupe key (FailureConfig::glitch_dedupe_window): index
  /// of the last dedupe window in which this stream logged a counted
  /// interruption, -1 = never (engine-managed, like active_index). Lives
  /// on the request so single/sharded/fast-math modes dedupe identically.
  std::int64_t last_glitch_window = -1;

  /// Last server that hosted this stream. Unlike server(), it survives
  /// parking and mid-migration (where server_ resets to kNoServer), so
  /// glitches of a parked orphan still attribute to the failure domain
  /// that orphaned it. Maintained by begin_streaming/complete_migration.
  ServerId last_server = kNoServer;

  /// Fluid-model tolerance on remaining data (megabits).
  static constexpr Megabits kRemainingTolerance = 1e-6;

 private:
  RequestId id_;
  VideoId video_id_;
  Seconds arrival_;
  Seconds playback_end_;
  Mbps view_bandwidth_;
  Mbps receive_bandwidth_;
  Megabits total_size_;

  RequestState state_ = RequestState::kStreaming;
  ServerId server_ = kNoServer;
  Megabits remaining_;
  Mbps allocation_ = 0.0;
  Seconds last_update_;
  StagingBuffer buffer_;
  /// The owning server's fluid lane while attached, nullptr otherwise.
  FluidLane* lane_ = nullptr;
  int hops_ = 0;
  bool viewing_paused_ = false;
  Seconds pause_started_ = 0.0;
  int pause_count_ = 0;
};

}  // namespace vodsim
