#pragma once

/// \file server.h
/// \brief A data source in the cluster: link bandwidth + disk storage +
/// replica set + the active requests it is currently streaming.
///
/// Servers are independent (non-shared storage, §2 of the paper); a request
/// can only be served by a server that holds a replica of its video, and it
/// consumes that server's link bandwidth while unfinished.

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "vodsim/cluster/fluid_lane.h"
#include "vodsim/cluster/request.h"
#include "vodsim/cluster/video.h"
#include "vodsim/util/units.h"

namespace vodsim {

class Server {
 public:
  /// \param id dense index within the cluster.
  /// \param bandwidth link capacity, Mb/s.
  /// \param storage disk capacity, megabits.
  Server(ServerId id, Mbps bandwidth, Megabits storage);

  ServerId id() const { return id_; }
  Mbps bandwidth() const { return bandwidth_; }

  /// Link capacity currently usable: nominal bandwidth scaled by the
  /// brownout capacity factor. Exactly equal to bandwidth() when healthy
  /// (factor 1.0 — multiplying by 1.0 is bit-exact in IEEE arithmetic).
  Mbps effective_bandwidth() const { return bandwidth_ * capacity_factor_; }
  Megabits storage_capacity() const { return storage_capacity_; }
  Megabits storage_used() const { return storage_used_; }
  Megabits storage_free() const { return storage_capacity_ - storage_used_; }

  // --- replica management (placement time) ----------------------------
  /// Adds a replica if storage allows; returns false when it does not fit
  /// or is already present.
  bool add_replica(const Video& video);
  bool holds(VideoId video) const;
  const std::vector<VideoId>& replicas() const { return replicas_; }

  // --- admission arithmetic (minimum-flow decision procedure) ---------
  /// Sum of view bandwidths of unfinished requests assigned here.
  Mbps committed_bandwidth() const { return committed_; }

  /// Bandwidth held for in-flight migrations (reserved at detach from the
  /// source, converted to a commitment when the stream attaches here).
  Mbps reserved_bandwidth() const { return reserved_; }
  void reserve_bandwidth(Mbps amount);
  void release_reservation(Mbps amount);

  /// Capacity usable by the bandwidth scheduler right now. Clamped at
  /// zero because a brownout can shrink the link below outstanding
  /// migration reservations. std::max(x, 0.0) returns x bit-exactly for
  /// the legacy (factor-1.0, reserved <= bandwidth) regime.
  Mbps schedulable_bandwidth() const {
    return std::max(effective_bandwidth() - reserved_, 0.0);
  }

  /// Unused capacity under the minimum-flow commitment. Negative while a
  /// brownout leaves the server over-committed (the shedding loop drains
  /// it back to non-negative).
  Mbps slack() const { return effective_bandwidth() - committed_ - reserved_; }

  /// True iff an additional stream at \p view_bandwidth fits: the paper's
  /// admission rule `sum(b_view) + b_view <= capacity`.
  bool can_admit(Mbps view_bandwidth) const;

  /// Number of unfinished requests streaming from this server.
  std::size_t active_count() const { return active_.size(); }
  const std::vector<Request*>& active_requests() const { return active_; }

  /// Struct-of-arrays fluid state of the active streams, maintained by
  /// attach/detach in lock-step with the active list: slot i holds the
  /// fluid fields of active_requests()[i]. Both engine modes advance
  /// streams through the lane (cluster/fluid_lane.h).
  FluidLane& lane() { return lane_; }
  const FluidLane& lane() const { return lane_; }

  // --- active-set maintenance (engine-driven) --------------------------
  /// Attaches an unfinished request; maintains Request::active_index.
  /// \param enforce_capacity when false (buffer-aware admission), nominal
  ///        commitments may exceed the link; the intermittent scheduler is
  ///        then responsible for rationing actual flow.
  void attach(Request& request, bool enforce_capacity = true);

  /// Detaches a request in O(1) via swap-with-last.
  void detach(Request& request);

  // --- availability (failure injection) --------------------------------
  bool available() const { return available_; }
  void set_available(bool available) { available_ = available; }

  /// Network reachability from the controller (partition injection,
  /// cluster/topology.h). A partitioned server is up — its hardware and
  /// link are healthy — but the controller cannot place, migrate, or
  /// deliver anything through it. Defaults true; only kPartitionBegin/
  /// kPartitionEnd transitions flip it, so topology-free runs never
  /// branch differently.
  bool reachable() const { return reachable_; }
  void set_reachable(bool reachable) { reachable_ = reachable; }

  /// The one predicate every placement/admission/migration/replication
  /// decision must gate on: the server is up *and* the controller can
  /// reach it. Liveness alone is not enough under partitions.
  bool serviceable() const { return available_ && reachable_; }

  /// Brownout state: fraction of nominal bandwidth currently usable.
  /// 1.0 = healthy. Set by the engine when executing fault transitions.
  double capacity_factor() const { return capacity_factor_; }
  void set_capacity_factor(double factor) {
    assert(factor > 0.0 && factor <= 1.0);
    capacity_factor_ = factor;
  }

  // --- diagnostics ------------------------------------------------------
  std::uint64_t total_attached() const { return total_attached_; }

 private:
  ServerId id_;
  Mbps bandwidth_;
  Megabits storage_capacity_;
  Megabits storage_used_ = 0.0;
  Mbps committed_ = 0.0;
  Mbps reserved_ = 0.0;
  bool available_ = true;
  bool reachable_ = true;
  double capacity_factor_ = 1.0;
  std::vector<VideoId> replicas_;
  std::vector<bool> replica_bitmap_;
  std::vector<Request*> active_;
  FluidLane lane_;
  std::uint64_t total_attached_ = 0;
};

}  // namespace vodsim
