#include "vodsim/cluster/server.h"

#include <algorithm>
#include <cassert>

namespace vodsim {

namespace {
// Bandwidth comparisons tolerate fluid-model rounding: one part in 1e9 of a
// megabit per second.
constexpr Mbps kBandwidthTolerance = 1e-9;
}  // namespace

Server::Server(ServerId id, Mbps bandwidth, Megabits storage)
    : id_(id), bandwidth_(bandwidth), storage_capacity_(storage) {
  assert(bandwidth > 0.0);
  assert(storage >= 0.0);
}

bool Server::add_replica(const Video& video) {
  if (holds(video.id)) return false;
  if (video.size() > storage_free() + kBandwidthTolerance) return false;
  if (replica_bitmap_.size() <= static_cast<std::size_t>(video.id)) {
    replica_bitmap_.resize(static_cast<std::size_t>(video.id) + 1, false);
  }
  replica_bitmap_[static_cast<std::size_t>(video.id)] = true;
  replicas_.push_back(video.id);
  storage_used_ += video.size();
  return true;
}

bool Server::holds(VideoId video) const {
  const auto index = static_cast<std::size_t>(video);
  return index < replica_bitmap_.size() && replica_bitmap_[index];
}

bool Server::can_admit(Mbps view_bandwidth) const {
  return serviceable() && committed_ + reserved_ + view_bandwidth <=
                              effective_bandwidth() + kBandwidthTolerance;
}

void Server::reserve_bandwidth(Mbps amount) {
  assert(amount >= 0.0);
  assert(committed_ + reserved_ + amount <=
         effective_bandwidth() + kBandwidthTolerance);
  reserved_ += amount;
}

void Server::release_reservation(Mbps amount) {
  assert(amount >= 0.0);
  reserved_ -= amount;
  if (reserved_ < 0.0) reserved_ = 0.0;  // fp slop
}

void Server::attach(Request& request, bool enforce_capacity) {
  assert(!enforce_capacity || can_admit(request.view_bandwidth()));
  (void)enforce_capacity;
  if (active_.capacity() == active_.size()) {
    // Reserve for as many streams as the link can carry at this view rate
    // (plus slack for buffer-aware over-commitment), so steady-state
    // attach/detach churn never reallocates.
    const double fit = bandwidth_ / std::max(request.view_bandwidth(), 1e-9);
    const std::size_t want = std::max(
        {active_.size() * 2, static_cast<std::size_t>(fit) + 8, std::size_t{16}});
    active_.reserve(want);
    lane_.reserve(want);
  }
  request.active_index = active_.size();
  active_.push_back(&request);
  lane_.append(request);
  request.attach_lane(&lane_);
  committed_ += request.view_bandwidth();
  ++total_attached_;
}

void Server::detach(Request& request) {
  const std::size_t index = request.active_index;
  assert(index < active_.size());
  assert(active_[index] == &request);
  // Copy the lane-authoritative fields home before the slot is recycled,
  // then mirror the active-list swap in the lane so the swapped request's
  // slot keeps matching its (updated) active_index.
  request.detach_lane();
  lane_.swap_remove(index);
  active_[index] = active_.back();
  active_[index]->active_index = index;
  active_.pop_back();
  committed_ -= request.view_bandwidth();
  if (committed_ < 0.0) committed_ = 0.0;  // fp slop after many detaches
}

}  // namespace vodsim
