#pragma once

/// \file exporters.h
/// \brief Post-run serialization of traces and probe series.
///
/// Three formats, each aimed at a different consumer:
///   - Chrome trace JSON (`chrome://tracing` / Perfetto): migrations and
///     replication transfers as async begin/end spans, everything else as
///     instant events on per-server tracks, probe series as counter tracks.
///   - JSONL: one self-describing JSON object per line, schema
///     `vodsim-trace-v1` (first line is a metadata record) — the format the
///     golden-trace tests and tools/validate_trace.py check.
///   - CSV: the probe time series in long format (one row per server per
///     grid instant, aggregate rows with server = -1), pandas-friendly.
///
/// Exporters read the recorder/probes only; they can be called at any time
/// (normally after run()).

#include <ostream>

#include "vodsim/obs/probes.h"
#include "vodsim/obs/trace.h"

namespace vodsim {

/// Writes the Chrome tracing "JSON object format". \p probes may be null;
/// \p num_servers names the per-server threads up front (pass 0 to skip
/// thread metadata).
void write_chrome_trace(std::ostream& out, const TraceRecorder& trace,
                        const ProbeSet* probes, std::size_t num_servers);

/// Writes schema `vodsim-trace-v1` JSONL: a metadata first line, then one
/// event object per line with keys seq,t,type,cat,server,request,video,a,b.
void write_trace_jsonl(std::ostream& out, const TraceRecorder& trace);

/// Writes the probe series as CSV with a fixed header:
/// time,server,committed_mbps,reserved_mbps,active_streams,mean_buffer_fill,
/// pending_events.
void write_probe_csv(std::ostream& out, const ProbeSet& probes);

}  // namespace vodsim
