#include "vodsim/obs/exporters.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <utility>

#include "vodsim/util/csv.h"

namespace vodsim {

namespace {

/// JSON number with round-trip precision; non-finite values (which JSON
/// cannot represent) degrade to null.
std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// Simulation seconds -> Chrome trace microseconds.
std::string chrome_ts(Seconds t) { return json_number(t * 1e6); }

/// Track (tid) an event renders on: its server's track, or the cluster-wide
/// track (one past the last server) when no server applies.
long chrome_tid(const TraceEvent& event, std::size_t num_servers) {
  return event.server == kNoServer ? static_cast<long>(num_servers)
                                   : static_cast<long>(event.server);
}

void write_event_args(std::ostream& out, const TraceEvent& event) {
  out << "{\"request\":" << event.request << ",\"video\":" << event.video
      << ",\"a\":" << json_number(event.a) << ",\"b\":" << json_number(event.b)
      << "}";
}

}  // namespace

void write_chrome_trace(std::ostream& out, const TraceRecorder& trace,
                        const ProbeSet* probes, std::size_t num_servers) {
  out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
      << "\"schema\":\"vodsim-chrome-trace-v1\",\"emitted\":" << trace.emitted()
      << ",\"dropped\":" << trace.dropped() << "},\"traceEvents\":[\n";

  bool first = true;
  auto sep = [&]() -> std::ostream& {
    if (!first) out << ",\n";
    first = false;
    return out;
  };

  // Metadata: name the process and one track per server plus the cluster
  // track so chrome://tracing shows meaningful labels.
  sep() << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
           "\"args\":{\"name\":\"vodsim cluster\"}}";
  for (std::size_t s = 0; s < num_servers; ++s) {
    sep() << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << s
          << ",\"args\":{\"name\":\"server " << s << "\"}}";
  }
  sep() << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
        << num_servers << ",\"args\":{\"name\":\"cluster\"}}";

  // Async spans must balance per (cat, id): a begin may be missing (fault
  // recovery and retry re-admission re-home streams without a preceding
  // migrate_begin; ring truncation can drop one), and an end may never come
  // (a switch in flight at the horizon). Track open spans — an unmatched
  // end degrades to an instant, and dangling begins are closed at the tail.
  std::map<std::pair<bool, RequestId>, int> open_spans;
  Seconds last_time = 0.0;

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& event = trace[i];
    const char* name = to_string(event.type);
    const char* cat = to_string(trace_event_category(event.type));
    if (event.time > last_time) last_time = event.time;
    switch (event.type) {
      case TraceEventType::kMigrateBegin:
      case TraceEventType::kReplicationBegin: {
        const bool migration = event.type == TraceEventType::kMigrateBegin;
        const RequestId id =
            migration ? event.request : static_cast<RequestId>(event.video);
        ++open_spans[{migration, id}];
        sep() << "{\"name\":\"" << (migration ? "migration" : "replication")
              << "\",\"cat\":\"" << cat << "\",\"ph\":\"b\",\"id\":" << id
              << ",\"ts\":" << chrome_ts(event.time)
              << ",\"pid\":0,\"tid\":" << chrome_tid(event, num_servers)
              << ",\"args\":";
        write_event_args(out, event);
        out << "}";
        break;
      }
      case TraceEventType::kMigrateEnd:
      case TraceEventType::kReplicationEnd: {
        const bool migration = event.type == TraceEventType::kMigrateEnd;
        const RequestId id =
            migration ? event.request : static_cast<RequestId>(event.video);
        int& open = open_spans[{migration, id}];
        if (open <= 0) {
          // No begin on record: render as an instant under the event's own
          // name instead of unbalancing the track.
          sep() << "{\"name\":\"" << name << "\",\"cat\":\"" << cat
                << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << chrome_ts(event.time)
                << ",\"pid\":0,\"tid\":" << chrome_tid(event, num_servers)
                << ",\"args\":";
          write_event_args(out, event);
          out << "}";
          break;
        }
        --open;
        sep() << "{\"name\":\"" << (migration ? "migration" : "replication")
              << "\",\"cat\":\"" << cat << "\",\"ph\":\"e\",\"id\":" << id
              << ",\"ts\":" << chrome_ts(event.time)
              << ",\"pid\":0,\"tid\":" << chrome_tid(event, num_servers)
              << ",\"args\":";
        write_event_args(out, event);
        out << "}";
        break;
      }
      default: {
        sep() << "{\"name\":\"" << name << "\",\"cat\":\"" << cat
              << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << chrome_ts(event.time)
              << ",\"pid\":0,\"tid\":" << chrome_tid(event, num_servers)
              << ",\"args\":";
        write_event_args(out, event);
        out << "}";
        break;
      }
    }
  }

  // Close spans still open (e.g. a migration switch cut off by the horizon)
  // so every (cat, id) pair balances.
  for (const auto& [key, open] : open_spans) {
    const auto& [migration, id] = key;
    for (int k = 0; k < open; ++k) {
      sep() << "{\"name\":\"" << (migration ? "migration" : "replication")
            << "\",\"cat\":\"" << (migration ? "migration" : "replication")
            << "\",\"ph\":\"e\",\"id\":" << id
            << ",\"ts\":" << chrome_ts(last_time) << ",\"pid\":0,\"tid\":"
            << num_servers << ",\"args\":{\"request\":" << id
            << ",\"video\":-1,\"a\":0,\"b\":0}}";
    }
  }

  if (probes != nullptr) {
    for (const ProbeRow& row : probes->rows()) {
      const bool aggregate = row.server == kNoServer;
      sep() << "{\"name\":\""
            << (aggregate ? std::string("cluster")
                          : "server " + std::to_string(row.server))
            << "\",\"cat\":\"probe\",\"ph\":\"C\",\"ts\":" << chrome_ts(row.time)
            << ",\"pid\":0,\"tid\":0,\"args\":{\"committed_mbps\":"
            << json_number(row.committed_mbps) << ",\"active_streams\":"
            << json_number(row.active_streams);
      if (aggregate) {
        out << ",\"pending_events\":" << json_number(row.pending_events);
      }
      out << "}}";
    }
  }

  out << "\n]}\n";
}

void write_trace_jsonl(std::ostream& out, const TraceRecorder& trace) {
  out << "{\"schema\":\"vodsim-trace-v1\",\"events\":" << trace.size()
      << ",\"emitted\":" << trace.emitted() << ",\"dropped\":" << trace.dropped()
      << ",\"categories\":" << trace.categories() << "}\n";
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& event = trace[i];
    out << "{\"seq\":" << event.seq << ",\"t\":" << json_number(event.time)
        << ",\"type\":\"" << to_string(event.type) << "\",\"cat\":\""
        << to_string(trace_event_category(event.type)) << "\",\"server\":"
        << event.server << ",\"request\":" << event.request << ",\"video\":"
        << event.video << ",\"a\":" << json_number(event.a) << ",\"b\":"
        << json_number(event.b) << "}\n";
  }
}

void write_probe_csv(std::ostream& out, const ProbeSet& probes) {
  CsvWriter writer(out);
  writer.write_row({"time", "server", "committed_mbps", "reserved_mbps",
                    "active_streams", "mean_buffer_fill", "pending_events",
                    "capacity_factor", "retry_queue", "reachable"});
  for (const ProbeRow& row : probes.rows()) {
    writer.write_row({CsvWriter::field(row.time),
                      CsvWriter::field(static_cast<std::int64_t>(row.server)),
                      CsvWriter::field(row.committed_mbps),
                      CsvWriter::field(row.reserved_mbps),
                      CsvWriter::field(row.active_streams),
                      CsvWriter::field(row.mean_buffer_fill),
                      CsvWriter::field(row.pending_events),
                      CsvWriter::field(row.capacity_factor),
                      CsvWriter::field(row.retry_queue),
                      CsvWriter::field(row.reachable)});
  }
}

}  // namespace vodsim
