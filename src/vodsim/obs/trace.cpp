#include "vodsim/obs/trace.h"

#include <cassert>
#include <cstdlib>
#include <stdexcept>

namespace vodsim {

TraceCategory trace_event_category(TraceEventType type) {
  switch (type) {
    case TraceEventType::kArrival:
    case TraceEventType::kAdmit:
    case TraceEventType::kReject:
      return kTraceAdmission;
    case TraceEventType::kMigrateBegin:
    case TraceEventType::kMigrateEnd:
    case TraceEventType::kMigrationSearch:
      return kTraceMigration;
    case TraceEventType::kRecompute:
    case TraceEventType::kUrgentOn:
    case TraceEventType::kUrgentOff:
      return kTraceSched;
    case TraceEventType::kAllocationChange:
      return kTraceAllocation;
    case TraceEventType::kServerDown:
    case TraceEventType::kServerUp:
    case TraceEventType::kStreamDropped:
    case TraceEventType::kStreamRecovered:
    case TraceEventType::kBrownoutBegin:
    case TraceEventType::kBrownoutEnd:
    case TraceEventType::kStreamShed:
    case TraceEventType::kRetryEnqueued:
    case TraceEventType::kRetryReadmitted:
    case TraceEventType::kRetryAbandoned:
    case TraceEventType::kRepairPlanned:
    case TraceEventType::kPartitionBegin:
    case TraceEventType::kPartitionEnd:
      return kTraceFailure;
    case TraceEventType::kReplicationBegin:
    case TraceEventType::kReplicationEnd:
      return kTraceReplication;
    case TraceEventType::kBufferFull:
    case TraceEventType::kBufferLow:
    case TraceEventType::kUnderflow:
      return kTraceBuffer;
    case TraceEventType::kTxComplete:
    case TraceEventType::kPlaybackEnd:
    case TraceEventType::kPause:
    case TraceEventType::kResume:
      return kTraceLifecycle;
  }
  assert(false && "unhandled TraceEventType");
  return kTraceLifecycle;
}

const char* to_string(TraceEventType type) {
  switch (type) {
    case TraceEventType::kArrival: return "arrival";
    case TraceEventType::kAdmit: return "admit";
    case TraceEventType::kReject: return "reject";
    case TraceEventType::kMigrateBegin: return "migrate_begin";
    case TraceEventType::kMigrateEnd: return "migrate_end";
    case TraceEventType::kMigrationSearch: return "migration_search";
    case TraceEventType::kRecompute: return "recompute";
    case TraceEventType::kUrgentOn: return "urgent_on";
    case TraceEventType::kUrgentOff: return "urgent_off";
    case TraceEventType::kAllocationChange: return "allocation_change";
    case TraceEventType::kServerDown: return "server_down";
    case TraceEventType::kServerUp: return "server_up";
    case TraceEventType::kStreamDropped: return "stream_dropped";
    case TraceEventType::kStreamRecovered: return "stream_recovered";
    case TraceEventType::kBrownoutBegin: return "brownout_begin";
    case TraceEventType::kBrownoutEnd: return "brownout_end";
    case TraceEventType::kStreamShed: return "stream_shed";
    case TraceEventType::kRetryEnqueued: return "retry_enqueued";
    case TraceEventType::kRetryReadmitted: return "retry_readmit";
    case TraceEventType::kRetryAbandoned: return "retry_abandoned";
    case TraceEventType::kRepairPlanned: return "repair_planned";
    case TraceEventType::kPartitionBegin: return "partition_begin";
    case TraceEventType::kPartitionEnd: return "partition_end";
    case TraceEventType::kReplicationBegin: return "replication_begin";
    case TraceEventType::kReplicationEnd: return "replication_end";
    case TraceEventType::kBufferFull: return "buffer_full";
    case TraceEventType::kBufferLow: return "buffer_low";
    case TraceEventType::kUnderflow: return "underflow";
    case TraceEventType::kTxComplete: return "tx_complete";
    case TraceEventType::kPlaybackEnd: return "playback_end";
    case TraceEventType::kPause: return "pause";
    case TraceEventType::kResume: return "resume";
  }
  return "unknown";
}

const char* to_string(TraceCategory category) {
  switch (category) {
    case kTraceAdmission: return "admission";
    case kTraceMigration: return "migration";
    case kTraceSched: return "sched";
    case kTraceAllocation: return "allocation";
    case kTraceFailure: return "failure";
    case kTraceReplication: return "replication";
    case kTraceBuffer: return "buffer";
    case kTraceLifecycle: return "lifecycle";
  }
  return "unknown";
}

std::uint32_t parse_trace_categories(const std::string& spec) {
  if (spec.empty()) return kTraceAllCategories;

  // Numeric bitmask ("1", "0xff", "255").
  {
    char* end = nullptr;
    const unsigned long value = std::strtoul(spec.c_str(), &end, 0);
    if (end != nullptr && *end == '\0') {
      return value != 0 ? static_cast<std::uint32_t>(value) & kTraceAllCategories
                        : 0u;
    }
  }

  std::uint32_t mask = 0;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string name =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (name == "all") mask |= kTraceAllCategories;
    else if (name == "admission") mask |= kTraceAdmission;
    else if (name == "migration") mask |= kTraceMigration;
    else if (name == "sched") mask |= kTraceSched;
    else if (name == "allocation") mask |= kTraceAllocation;
    else if (name == "failure") mask |= kTraceFailure;
    else if (name == "replication") mask |= kTraceReplication;
    else if (name == "buffer") mask |= kTraceBuffer;
    else if (name == "lifecycle") mask |= kTraceLifecycle;
    else if (!name.empty()) {
      throw std::invalid_argument("unknown trace category: " + name);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return mask;
}

TraceRecorder::TraceRecorder(const TraceConfig& config, std::int32_t shard)
    : mask_(config.categories & kTraceAllCategories),
      shard_(shard),
      capacity_(config.capacity > 0 ? config.capacity : 1) {
  // reserve, not resize: the slab is addressable without touching (and with
  // a default 1M-event ring, zero-filling) 48 MB up front. Slots are
  // push_back-initialized on first use, then overwritten in place forever.
  ring_.reserve(capacity_);
}

void TraceRecorder::record(Seconds time, TraceEventType type, ServerId server,
                           RequestId request, VideoId video, double a, double b) {
  if (ring_.size() < capacity_) {
    ring_.push_back(TraceEvent{next_seq_++, time, type, server, request, video,
                               a, b, shard_});
    return;
  }
  TraceEvent& slot = ring_[start_];  // overwrite the oldest
  start_ = (start_ + 1) % capacity_;
  slot.seq = next_seq_++;
  slot.time = time;
  slot.type = type;
  slot.server = server;
  slot.request = request;
  slot.video = video;
  slot.a = a;
  slot.b = b;
  slot.shard = shard_;
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.push_back((*this)[i]);
  return out;
}

}  // namespace vodsim
