#include "vodsim/obs/probes.h"

#include <cassert>

namespace vodsim {

ProbeSet::ProbeSet(const ProbeConfig& config, std::size_t num_servers)
    : period_(config.period),
      next_(config.period),  // t = 0 is the empty cluster; skip it
      fill_hist_(0.0, 1.0, 20) {
  assert(period_ > 0.0);
  committed_.assign(num_servers, TimeWeighted());
}

void ProbeSet::on_event(Seconds now, const std::vector<Server>& servers,
                        std::size_t pending_events, std::size_t retry_depth) {
  while (next_ <= now) {
    sample(next_, servers, pending_events, retry_depth);
    next_ += period_;
  }
}

void ProbeSet::finalize(Seconds horizon, const std::vector<Server>& servers,
                        std::size_t pending_events, std::size_t retry_depth) {
  while (next_ <= horizon) {
    sample(next_, servers, pending_events, retry_depth);
    next_ += period_;
  }
  for (TimeWeighted& tw : committed_) tw.flush(horizon);
}

void ProbeSet::sample(Seconds grid_time, const std::vector<Server>& servers,
                      std::size_t pending_events, std::size_t retry_depth) {
  ++samples_;
  double total_committed = 0.0;
  double total_reserved = 0.0;
  double total_active = 0.0;
  double total_factor = 0.0;
  double total_fill = 0.0;
  double total_reachable = 0.0;
  std::uint64_t total_streams = 0;

  for (const Server& server : servers) {
    ProbeRow row;
    row.time = grid_time;
    row.server = server.id();
    row.committed_mbps = server.committed_bandwidth();
    row.reserved_mbps = server.reserved_bandwidth();
    row.active_streams = static_cast<double>(server.active_count());
    row.capacity_factor = server.capacity_factor();
    row.reachable = server.reachable() ? 1.0 : 0.0;

    double fill_sum = 0.0;
    std::uint64_t with_buffer = 0;
    for (const Request* request : server.active_requests()) {
      const Megabits capacity = request->buffer_capacity();
      if (capacity <= 0.0) continue;
      const double fill = request->buffer_level() / capacity;
      fill_hist_.add(fill);
      fill_sum += fill;
      ++with_buffer;
    }
    row.mean_buffer_fill =
        with_buffer > 0 ? fill_sum / static_cast<double>(with_buffer) : 0.0;
    rows_.push_back(row);

    committed_[static_cast<std::size_t>(server.id())].update(
        grid_time, row.committed_mbps);

    total_committed += row.committed_mbps;
    total_reserved += row.reserved_mbps;
    total_active += row.active_streams;
    total_factor += row.capacity_factor;
    total_fill += fill_sum;
    total_reachable += row.reachable;
    total_streams += with_buffer;
  }

  ProbeRow aggregate;
  aggregate.time = grid_time;
  aggregate.server = kNoServer;
  aggregate.committed_mbps = total_committed;
  aggregate.reserved_mbps = total_reserved;
  aggregate.active_streams = total_active;
  aggregate.mean_buffer_fill =
      total_streams > 0 ? total_fill / static_cast<double>(total_streams) : 0.0;
  aggregate.pending_events = static_cast<double>(pending_events);
  aggregate.capacity_factor =
      servers.empty() ? 1.0 : total_factor / static_cast<double>(servers.size());
  aggregate.retry_queue = static_cast<double>(retry_depth);
  aggregate.reachable = servers.empty()
                            ? 1.0
                            : total_reachable / static_cast<double>(servers.size());
  rows_.push_back(aggregate);
}

}  // namespace vodsim
