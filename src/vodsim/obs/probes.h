#pragma once

/// \file probes.h
/// \brief Periodic time-series probes over the running cluster.
///
/// A ProbeSet samples the cluster on a fixed time grid: per-server committed
/// bandwidth, reservations, active stream count and mean staging-buffer fill,
/// plus a cluster aggregate row carrying the event-queue depth. Sampling is
/// driven by the engine's post-event hook — no events are scheduled in the
/// simulator, so enabling probes cannot perturb event order or results
/// (pinned by determinism_test). Each grid instant is sampled at the first
/// event boundary at or after it; the row keeps the grid timestamp.
///
/// On top of the raw rows, the probe maintains the repo's standard stats
/// machinery: a TimeWeighted mean of committed bandwidth per server (sampled
/// signal) and a Histogram of per-stream staging fill fractions, so tests
/// and reports can assert against summaries without replaying the series.

#include <cstdint>
#include <vector>

#include "vodsim/cluster/server.h"
#include "vodsim/stats/histogram.h"
#include "vodsim/stats/time_weighted.h"
#include "vodsim/util/units.h"

namespace vodsim {

/// Probe knobs carried by SimulationConfig. The VODSIM_PROBE environment
/// variable (a period in seconds, nonzero) forces probing on.
struct ProbeConfig {
  bool enabled = false;
  Seconds period = 60.0;  ///< sampling grid spacing, simulated seconds
};

/// One sample row. `server == kNoServer` marks the cluster-aggregate row.
struct ProbeRow {
  Seconds time = 0.0;
  ServerId server = kNoServer;
  double committed_mbps = 0.0;
  double reserved_mbps = 0.0;
  double active_streams = 0.0;
  double mean_buffer_fill = 0.0;  ///< mean staging fill fraction (0 when no
                                  ///< active streams or no staging buffer)
  double pending_events = 0.0;    ///< DES queue depth (aggregate row only)
  double capacity_factor = 1.0;   ///< brownout state (aggregate: mean)
  double retry_queue = 0.0;       ///< retry-queue depth (aggregate row only)
  double reachable = 1.0;         ///< 1 = controller can reach the server
                                  ///< (aggregate: fraction reachable)
};

class ProbeSet {
 public:
  ProbeSet(const ProbeConfig& config, std::size_t num_servers);

  /// Engine post-event hook: emits one sample block per grid instant in
  /// (last_event, now]. Cheap when no grid point was crossed (one compare).
  /// \p retry_depth is the fault retry-queue size (0 when retry disabled).
  void on_event(Seconds now, const std::vector<Server>& servers,
                std::size_t pending_events, std::size_t retry_depth = 0);

  /// Emits the grid instants between the last event and the horizon, then
  /// closes the time-weighted summaries. Call once, at end of run.
  void finalize(Seconds horizon, const std::vector<Server>& servers,
                std::size_t pending_events, std::size_t retry_depth = 0);

  Seconds period() const { return period_; }
  const std::vector<ProbeRow>& rows() const { return rows_; }

  /// Time-weighted mean committed bandwidth of \p server over the sampled
  /// series.
  const TimeWeighted& committed(std::size_t server) const {
    return committed_[server];
  }
  std::size_t num_servers() const { return committed_.size(); }

  /// Distribution of per-stream staging fill fractions across all samples.
  const Histogram& fill_histogram() const { return fill_hist_; }

  /// Grid instants sampled so far.
  std::uint64_t samples() const { return samples_; }

 private:
  void sample(Seconds grid_time, const std::vector<Server>& servers,
              std::size_t pending_events, std::size_t retry_depth);

  Seconds period_;
  Seconds next_ = 0.0;
  std::uint64_t samples_ = 0;
  std::vector<ProbeRow> rows_;
  std::vector<TimeWeighted> committed_;
  Histogram fill_hist_;
};

}  // namespace vodsim
