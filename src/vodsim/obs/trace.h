#pragma once

/// \file trace.h
/// \brief Structured runtime tracing: a preallocated ring buffer of typed
/// trace events with category bitmask filtering.
///
/// The engine (and the admission/scheduling layers it drives) emit events
/// through a nullable TraceRecorder pointer: when tracing is disabled the
/// pointer is null and every emission site costs one load-and-branch; when
/// enabled, recording an event is a couple of stores into a preallocated
/// slab — no allocation, no I/O, no formatting. Exporting (Chrome trace,
/// JSONL, CSV — see exporters.h) happens after the run.
///
/// Like the paranoid invariant auditor, the recorder is *observe-only*: it
/// reads simulation state and never mutates it, so a traced run is
/// bit-identical to an untraced one (pinned by determinism_test).
///
/// The buffer has flight-recorder semantics: when full, the oldest events
/// are overwritten and `dropped()` counts what was lost, so a long run keeps
/// the most recent window instead of failing or allocating.

#include <cstdint>
#include <string>
#include <vector>

#include "vodsim/cluster/request.h"
#include "vodsim/cluster/video.h"
#include "vodsim/util/units.h"

namespace vodsim {

/// Event categories, usable as a bitmask filter (TraceConfig::categories).
enum TraceCategory : std::uint32_t {
  kTraceAdmission = 1u << 0,  ///< arrival, accept, reject
  kTraceMigration = 1u << 1,  ///< DRM steps, chains, plan search
  kTraceSched = 1u << 2,      ///< server recomputes, urgency latch flips
  kTraceAllocation = 1u << 3, ///< per-request rate changes
  kTraceFailure = 1u << 4,    ///< server down/up, stream drops/recoveries
  kTraceReplication = 1u << 5,///< dynamic replication transfers
  kTraceBuffer = 1u << 6,     ///< buffer full/low wake-ups, underflow
  kTraceLifecycle = 1u << 7,  ///< tx complete, playback end, pause/resume
};

inline constexpr std::uint32_t kTraceAllCategories = 0xffu;

/// What happened. Each type belongs to exactly one category
/// (trace_event_category()); the payload fields `a`/`b` are type-specific
/// (see trace.cpp's serialization table and DESIGN.md §7).
enum class TraceEventType : std::uint8_t {
  // kTraceAdmission
  kArrival,          ///< request, video
  kAdmit,            ///< request, video, server; a = migration steps used
  kReject,           ///< request, video; a = replica holders of the video
  // kTraceMigration
  kMigrateBegin,     ///< request, video, server = from; a = to, b = buffered Mb
  kMigrateEnd,       ///< request, video, server = to
  kMigrationSearch,  ///< video; a = search nodes explored, b = plan length (-1 = none)
  // kTraceSched
  kRecompute,        ///< server; a = active streams, b = schedulable Mb/s
  kUrgentOn,         ///< request; a = staged playback cover, seconds
  kUrgentOff,        ///< request; a = staged playback cover, seconds
  // kTraceAllocation
  kAllocationChange, ///< request, server; a = old rate, b = new rate (Mb/s)
  // kTraceFailure
  kServerDown,       ///< server
  kServerUp,         ///< server
  kStreamDropped,    ///< request, video, server (no replica holder had room)
  kStreamRecovered,  ///< request, video, server = new home
  kBrownoutBegin,    ///< server; a = capacity factor
  kBrownoutEnd,      ///< server
  kStreamShed,       ///< request, video, server = old home; a = buffered Mb
  kRetryEnqueued,    ///< request (-1 = rejected arrival), video; a = queue depth
  kRetryReadmitted,  ///< request, video, server = new home; a = attempts used
  kRetryAbandoned,   ///< request (-1 = rejected arrival), video; a = attempts used
  kRepairPlanned,    ///< video, server = destination; a = long-down server
  kPartitionBegin,   ///< server (up but unreachable from the controller)
  kPartitionEnd,     ///< server (reachable again)
  // kTraceReplication
  kReplicationBegin, ///< video, server = destination; a = source (-2 = tertiary), b = rate
  kReplicationEnd,   ///< video, server = destination
  // kTraceBuffer
  kBufferFull,       ///< request, server; a = buffer level, Mb
  kBufferLow,        ///< request, server; a = buffer level, Mb
  kUnderflow,        ///< request, server; a = megabits short
  // kTraceLifecycle
  kTxComplete,       ///< request, video, server
  kPlaybackEnd,      ///< request, video
  kPause,            ///< request; a = buffer level, Mb
  kResume,           ///< request; a = buffer level, Mb
};

/// Category of an event type (fixed mapping).
TraceCategory trace_event_category(TraceEventType type);

/// Stable lowercase name, e.g. "admit", "migrate_begin" (JSONL `type` key).
const char* to_string(TraceEventType type);

/// Category name: "admission", "migration", ... (JSONL `cat` key).
const char* to_string(TraceCategory category);

/// Parses a comma-separated category list ("admission,migration"), "all",
/// or a numeric bitmask. Throws std::invalid_argument on unknown names.
std::uint32_t parse_trace_categories(const std::string& spec);

/// One recorded event. Plain data, fixed size; `request`/`video`/`server`
/// are -1 when not applicable.
struct TraceEvent {
  std::uint64_t seq = 0;  ///< global emission index (monotone, gap-free
                          ///< across drops — seq of the first retained event
                          ///< equals dropped())
  Seconds time = 0.0;
  TraceEventType type = TraceEventType::kArrival;
  ServerId server = kNoServer;
  RequestId request = -1;
  VideoId video = -1;
  double a = 0.0;
  double b = 0.0;
  /// Executing domain that emitted the event: -1 = the coordinator (or
  /// the whole single-queue engine), >= 0 = that shard's drain. Stamped
  /// by the recorder (each shard owns a tagged recorder); `seq` is
  /// per-recorder in sharded runs. See VodSimulation::merged_trace_events.
  std::int32_t shard = -1;
};

/// Tracing knobs carried by SimulationConfig. The VODSIM_TRACE environment
/// variable (a category spec, or any nonzero number for all categories)
/// forces tracing on regardless of the flag.
struct TraceConfig {
  bool enabled = false;
  std::uint32_t categories = kTraceAllCategories;
  /// Ring capacity in events (~48 B each). The default holds the full
  /// event stream of several simulated hours of the paper's small system.
  std::size_t capacity = 1u << 20;
};

class TraceRecorder {
 public:
  /// \param shard the domain tag stamped on every recorded event: -1 for
  /// the coordinator/single-engine recorder, the shard index for a
  /// shard's own recorder.
  explicit TraceRecorder(const TraceConfig& config, std::int32_t shard = -1);

  /// True when \p category is enabled — emission sites check this before
  /// assembling a payload.
  bool wants(std::uint32_t category) const { return (mask_ & category) != 0; }
  std::uint32_t categories() const { return mask_; }

  /// Appends an event (overwrites the oldest when full). The caller has
  /// already checked wants(); record() does not re-filter.
  void record(Seconds time, TraceEventType type, ServerId server = kNoServer,
              RequestId request = -1, VideoId video = -1, double a = 0.0,
              double b = 0.0);

  /// Events currently retained, oldest first.
  std::size_t size() const { return ring_.size(); }
  bool empty() const { return ring_.empty(); }
  std::size_t capacity() const { return capacity_; }

  /// i-th retained event, oldest first (0 <= i < size()).
  const TraceEvent& operator[](std::size_t i) const {
    return ring_[(start_ + i) % ring_.size()];
  }

  /// Events emitted in total (retained + dropped).
  std::uint64_t emitted() const { return next_seq_; }

  /// Events overwritten by ring wrap-around.
  std::uint64_t dropped() const { return next_seq_ - ring_.size(); }

  /// Copies the retained events, oldest first (test/export convenience).
  std::vector<TraceEvent> snapshot() const;

 private:
  std::uint32_t mask_;
  std::int32_t shard_;
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;  ///< reserved to capacity_, filled on use
  std::size_t start_ = 0;         ///< index of the oldest retained event
  std::uint64_t next_seq_ = 0;
};

}  // namespace vodsim
