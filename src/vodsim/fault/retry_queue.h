#pragma once

/// \file retry_queue.h
/// \brief Bounded FIFO retry queue with deterministic exponential backoff.
///
/// Holds work the cluster could not serve *right now* — streams orphaned by
/// a crash or shed in a brownout with no feasible migration target, and
/// (optionally) rejected arrivals — so capacity returning can re-admit it
/// instead of the legacy permanently-dropped outcome. Backoff is exact
/// powers of two via std::ldexp (no libm pow, which is not bit-reproducible
/// across platforms), capped; entries exceeding max_attempts or overflowing
/// the bounded queue are abandoned and counted.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "vodsim/cluster/request.h"
#include "vodsim/cluster/video.h"
#include "vodsim/engine/config.h"
#include "vodsim/util/units.h"

namespace vodsim {

/// One queued re-admission candidate.
struct RetryEntry {
  /// Parked orphan stream to resume, or kNoRetryRequest for a rejected
  /// arrival that would start a fresh stream on success.
  RequestId request = -1;
  VideoId video = -1;
  Mbps view_bandwidth = 0.0;
  Seconds first_seen = 0.0;    ///< when the entry entered the queue
  int attempts = 0;            ///< failed re-admission attempts so far
  Seconds next_attempt = 0.0;  ///< earliest time the next attempt may run
};

inline constexpr RequestId kNoRetryRequest = -1;

/// Deterministic bounded retry queue. Pure container: the engine decides
/// when to call take_due and what to do with the entries.
class RetryQueue {
 public:
  explicit RetryQueue(const RetryConfig& config) : config_(config) {}

  /// Enqueues; returns false (and counts an overflow) when full.
  bool push(RetryEntry entry);

  /// Removes and returns entries whose next_attempt has arrived (all
  /// entries when \p force — used on server-up / brownout-end, where
  /// capacity just returned and waiting out the backoff would be silly).
  /// FIFO order is preserved.
  std::vector<RetryEntry> take_due(Seconds now, bool force);

  /// Drops the entry for \p request if present (the parked stream's
  /// playback window closed). Returns true when something was removed.
  bool remove_request(RequestId request);

  /// Backoff delay after \p attempts failures: min(cap, base * 2^attempts).
  Seconds backoff(int attempts) const;

  /// Earliest next_attempt over queued entries; +infinity when empty.
  Seconds next_attempt_time() const;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  std::uint64_t overflow_count() const { return overflow_count_; }
  const RetryConfig& config() const { return config_; }

 private:
  RetryConfig config_;
  std::deque<RetryEntry> entries_;
  std::uint64_t overflow_count_ = 0;
};

}  // namespace vodsim
