#include "vodsim/fault/schedule.h"

#include <algorithm>

namespace vodsim {

const char* to_string(FaultTransitionKind kind) {
  switch (kind) {
    case FaultTransitionKind::kDown: return "down";
    case FaultTransitionKind::kUp: return "up";
    case FaultTransitionKind::kBrownoutBegin: return "brownout_begin";
    case FaultTransitionKind::kBrownoutEnd: return "brownout_end";
    case FaultTransitionKind::kPartitionBegin: return "partition_begin";
    case FaultTransitionKind::kPartitionEnd: return "partition_end";
  }
  return "?";
}

void sort_fault_schedule(std::vector<FaultTransition>& schedule) {
  std::sort(schedule.begin(), schedule.end(),
            [](const FaultTransition& a, const FaultTransition& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.server != b.server) return a.server < b.server;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
}

namespace {

/// Phase 1: per-server alternating crash/repair, draw-for-draw identical to
/// the legacy generate_failure_timeline when min_dwell == 0 (the guard
/// rewrites a gap only after the draw, never skips or adds one).
void generate_binary(const FailureConfig& config, int num_servers,
                     Seconds horizon, Rng& rng,
                     std::vector<FaultTransition>& out) {
  for (int s = 0; s < num_servers; ++s) {
    Seconds t = 0.0;
    bool up = true;
    for (;;) {
      Seconds gap = up ? rng.exponential(1.0 / config.mean_time_between_failures)
                       : rng.exponential(1.0 / config.mean_time_to_repair);
      if (config.min_dwell > 0.0 && gap < config.min_dwell) {
        gap = config.min_dwell;  // flap guard: stretch, never redraw
      }
      t += gap;
      if (t >= horizon) break;
      up = !up;
      out.push_back(FaultTransition{
          t, static_cast<ServerId>(s),
          up ? FaultTransitionKind::kUp : FaultTransitionKind::kDown, 1.0});
    }
  }
}

/// Phase 2: per-server brownout episodes. Episodes never overlap on one
/// server: the next inter-episode gap starts at the previous episode's end.
void generate_brownouts(const FailureConfig& config, int num_servers,
                        Seconds horizon, Rng& rng,
                        std::vector<FaultTransition>& out) {
  const BrownoutConfig& b = config.brownout;
  for (int s = 0; s < num_servers; ++s) {
    Seconds t = 0.0;
    for (;;) {
      Seconds gap = rng.exponential(1.0 / b.mean_time_between);
      if (config.min_dwell > 0.0 && gap < config.min_dwell) gap = config.min_dwell;
      const Seconds begin = t + gap;
      if (begin >= horizon) break;
      Seconds duration = rng.exponential(1.0 / b.mean_duration);
      if (config.min_dwell > 0.0 && duration < config.min_dwell) {
        duration = config.min_dwell;
      }
      const Seconds end = begin + duration;
      out.push_back(FaultTransition{begin, static_cast<ServerId>(s),
                                    FaultTransitionKind::kBrownoutBegin,
                                    b.capacity_factor});
      if (end < horizon) {
        out.push_back(FaultTransition{end, static_cast<ServerId>(s),
                                      FaultTransitionKind::kBrownoutEnd, 1.0});
      }
      t = end;
    }
  }
}

/// Phase 3: correlated outages over consecutive server groups. Each group
/// draws its own episode sequence; every member gets the same down/up pair
/// (same times), modelling a shared rack or switch.
void generate_correlated(const FailureConfig& config, int num_servers,
                         Seconds horizon, Rng& rng,
                         std::vector<FaultTransition>& out) {
  const CorrelatedFailureConfig& c = config.correlated;
  const int group_size = std::min(c.group_size, num_servers);
  for (int first = 0; first < num_servers; first += group_size) {
    const int last = std::min(first + group_size, num_servers);
    Seconds t = 0.0;
    for (;;) {
      Seconds gap = rng.exponential(1.0 / c.mean_time_between);
      if (config.min_dwell > 0.0 && gap < config.min_dwell) gap = config.min_dwell;
      const Seconds begin = t + gap;
      if (begin >= horizon) break;
      Seconds duration = rng.exponential(1.0 / c.mean_duration);
      if (config.min_dwell > 0.0 && duration < config.min_dwell) {
        duration = config.min_dwell;
      }
      const Seconds end = begin + duration;
      for (int s = first; s < last; ++s) {
        out.push_back(FaultTransition{begin, static_cast<ServerId>(s),
                                      FaultTransitionKind::kDown, 1.0});
        if (end < horizon) {
          out.push_back(FaultTransition{end, static_cast<ServerId>(s),
                                        FaultTransitionKind::kUp, 1.0});
        }
      }
      t = end;
    }
  }
}

/// Draws one per-domain episode sequence (gap → duration, min_dwell
/// stretches applied to both, same as every other phase) and emits a
/// begin/end transition pair for each member of [first, last).
void generate_domain_episodes(const FailureConfig& config, Seconds horizon,
                              Rng& rng, ServerId first, ServerId last,
                              Seconds mean_time_between, Seconds mean_duration,
                              FaultTransitionKind begin_kind,
                              FaultTransitionKind end_kind, double begin_factor,
                              std::vector<FaultTransition>& out) {
  Seconds t = 0.0;
  for (;;) {
    Seconds gap = rng.exponential(1.0 / mean_time_between);
    if (config.min_dwell > 0.0 && gap < config.min_dwell) gap = config.min_dwell;
    const Seconds begin = t + gap;
    if (begin >= horizon) break;
    Seconds duration = rng.exponential(1.0 / mean_duration);
    if (config.min_dwell > 0.0 && duration < config.min_dwell) {
      duration = config.min_dwell;
    }
    const Seconds end = begin + duration;
    for (ServerId s = first; s < last; ++s) {
      out.push_back(FaultTransition{begin, s, begin_kind, begin_factor});
      if (end < horizon) {
        out.push_back(FaultTransition{end, s, end_kind, 1.0});
      }
    }
    t = end;
  }
}

/// Phase 4: whole-rack outages — every member of a rack crashes and repairs
/// together, one episode process per rack.
void generate_rack_outages(const FailureConfig& config, const Topology& topology,
                           Seconds horizon, Rng& rng,
                           std::vector<FaultTransition>& out) {
  const RackOutageConfig& r = config.domains.rack_outage;
  for (int rack = 0; rack < topology.racks(); ++rack) {
    generate_domain_episodes(config, horizon, rng, topology.rack_first(rack),
                             topology.rack_end(rack), r.mean_time_between,
                             r.mean_duration, FaultTransitionKind::kDown,
                             FaultTransitionKind::kUp, 1.0, out);
  }
}

/// Phase 5: zone-wide brownouts — every server in a zone degrades to the
/// zone capacity factor together, one episode process per zone.
void generate_zone_brownouts(const FailureConfig& config,
                             const Topology& topology, Seconds horizon, Rng& rng,
                             std::vector<FaultTransition>& out) {
  const ZoneBrownoutConfig& z = config.domains.zone_brownout;
  for (int zone = 0; zone < topology.zones(); ++zone) {
    // A zone covers a contiguous rack range, hence a contiguous server
    // range: [first server of its first rack, end of its last rack).
    ServerId first = static_cast<ServerId>(topology.num_servers());
    ServerId last = 0;
    for (int rack = 0; rack < topology.racks(); ++rack) {
      if (topology.zone_of_rack(rack) != zone) continue;
      first = std::min(first, topology.rack_first(rack));
      last = std::max(last, topology.rack_end(rack));
    }
    if (first >= last) continue;
    generate_domain_episodes(config, horizon, rng, first, last,
                             z.mean_time_between, z.mean_duration,
                             FaultTransitionKind::kBrownoutBegin,
                             FaultTransitionKind::kBrownoutEnd,
                             z.capacity_factor, out);
  }
}

/// Phase 6: per-rack network partitions — every member of a rack becomes
/// unreachable together (shared uplink), one episode process per rack.
void generate_partitions(const FailureConfig& config, const Topology& topology,
                         Seconds horizon, Rng& rng,
                         std::vector<FaultTransition>& out) {
  const PartitionConfig& p = config.domains.partition;
  for (int rack = 0; rack < topology.racks(); ++rack) {
    generate_domain_episodes(config, horizon, rng, topology.rack_first(rack),
                             topology.rack_end(rack), p.mean_time_between,
                             p.mean_duration, FaultTransitionKind::kPartitionBegin,
                             FaultTransitionKind::kPartitionEnd, 1.0, out);
  }
}

}  // namespace

std::vector<FaultTransition> generate_fault_schedule(const FailureConfig& config,
                                                     int num_servers,
                                                     Seconds horizon, Rng& rng) {
  // Legacy entry point: trivial (disabled) topology, so the domain phases
  // never draw and the schedule is exactly the pre-topology one.
  return generate_fault_schedule(config, Topology(TopologyConfig{}, num_servers),
                                 horizon, rng);
}

std::vector<FaultTransition> generate_fault_schedule(const FailureConfig& config,
                                                     const Topology& topology,
                                                     Seconds horizon, Rng& rng) {
  std::vector<FaultTransition> schedule;
  if (!config.enabled) return schedule;
  const int num_servers = topology.num_servers();

  generate_binary(config, num_servers, horizon, rng, schedule);
  if (config.brownout.enabled) {
    generate_brownouts(config, num_servers, horizon, rng, schedule);
  }
  if (config.correlated.enabled) {
    generate_correlated(config, num_servers, horizon, rng, schedule);
  }
  // Domain phases (4-6): draw only when their sub-config is enabled
  // (validate() requires topology.enabled for each), and strictly after
  // every legacy phase — topology-free configs consume the identical RNG
  // prefix they always did.
  if (config.domains.rack_outage.enabled) {
    generate_rack_outages(config, topology, horizon, rng, schedule);
  }
  if (config.domains.zone_brownout.enabled) {
    generate_zone_brownouts(config, topology, horizon, rng, schedule);
  }
  if (config.domains.partition.enabled) {
    generate_partitions(config, topology, horizon, rng, schedule);
  }

  // (time, server) ties are measure-zero within the binary phase, so this
  // order reduces to the legacy (time, server) sort on crash-only configs.
  sort_fault_schedule(schedule);
  return schedule;
}

}  // namespace vodsim
