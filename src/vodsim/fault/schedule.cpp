#include "vodsim/fault/schedule.h"

#include <algorithm>

namespace vodsim {

const char* to_string(FaultTransitionKind kind) {
  switch (kind) {
    case FaultTransitionKind::kDown: return "down";
    case FaultTransitionKind::kUp: return "up";
    case FaultTransitionKind::kBrownoutBegin: return "brownout_begin";
    case FaultTransitionKind::kBrownoutEnd: return "brownout_end";
  }
  return "?";
}

void sort_fault_schedule(std::vector<FaultTransition>& schedule) {
  std::sort(schedule.begin(), schedule.end(),
            [](const FaultTransition& a, const FaultTransition& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.server != b.server) return a.server < b.server;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
}

namespace {

/// Phase 1: per-server alternating crash/repair, draw-for-draw identical to
/// the legacy generate_failure_timeline when min_dwell == 0 (the guard
/// rewrites a gap only after the draw, never skips or adds one).
void generate_binary(const FailureConfig& config, int num_servers,
                     Seconds horizon, Rng& rng,
                     std::vector<FaultTransition>& out) {
  for (int s = 0; s < num_servers; ++s) {
    Seconds t = 0.0;
    bool up = true;
    for (;;) {
      Seconds gap = up ? rng.exponential(1.0 / config.mean_time_between_failures)
                       : rng.exponential(1.0 / config.mean_time_to_repair);
      if (config.min_dwell > 0.0 && gap < config.min_dwell) {
        gap = config.min_dwell;  // flap guard: stretch, never redraw
      }
      t += gap;
      if (t >= horizon) break;
      up = !up;
      out.push_back(FaultTransition{
          t, static_cast<ServerId>(s),
          up ? FaultTransitionKind::kUp : FaultTransitionKind::kDown, 1.0});
    }
  }
}

/// Phase 2: per-server brownout episodes. Episodes never overlap on one
/// server: the next inter-episode gap starts at the previous episode's end.
void generate_brownouts(const FailureConfig& config, int num_servers,
                        Seconds horizon, Rng& rng,
                        std::vector<FaultTransition>& out) {
  const BrownoutConfig& b = config.brownout;
  for (int s = 0; s < num_servers; ++s) {
    Seconds t = 0.0;
    for (;;) {
      Seconds gap = rng.exponential(1.0 / b.mean_time_between);
      if (config.min_dwell > 0.0 && gap < config.min_dwell) gap = config.min_dwell;
      const Seconds begin = t + gap;
      if (begin >= horizon) break;
      Seconds duration = rng.exponential(1.0 / b.mean_duration);
      if (config.min_dwell > 0.0 && duration < config.min_dwell) {
        duration = config.min_dwell;
      }
      const Seconds end = begin + duration;
      out.push_back(FaultTransition{begin, static_cast<ServerId>(s),
                                    FaultTransitionKind::kBrownoutBegin,
                                    b.capacity_factor});
      if (end < horizon) {
        out.push_back(FaultTransition{end, static_cast<ServerId>(s),
                                      FaultTransitionKind::kBrownoutEnd, 1.0});
      }
      t = end;
    }
  }
}

/// Phase 3: correlated outages over consecutive server groups. Each group
/// draws its own episode sequence; every member gets the same down/up pair
/// (same times), modelling a shared rack or switch.
void generate_correlated(const FailureConfig& config, int num_servers,
                         Seconds horizon, Rng& rng,
                         std::vector<FaultTransition>& out) {
  const CorrelatedFailureConfig& c = config.correlated;
  const int group_size = std::min(c.group_size, num_servers);
  for (int first = 0; first < num_servers; first += group_size) {
    const int last = std::min(first + group_size, num_servers);
    Seconds t = 0.0;
    for (;;) {
      Seconds gap = rng.exponential(1.0 / c.mean_time_between);
      if (config.min_dwell > 0.0 && gap < config.min_dwell) gap = config.min_dwell;
      const Seconds begin = t + gap;
      if (begin >= horizon) break;
      Seconds duration = rng.exponential(1.0 / c.mean_duration);
      if (config.min_dwell > 0.0 && duration < config.min_dwell) {
        duration = config.min_dwell;
      }
      const Seconds end = begin + duration;
      for (int s = first; s < last; ++s) {
        out.push_back(FaultTransition{begin, static_cast<ServerId>(s),
                                      FaultTransitionKind::kDown, 1.0});
        if (end < horizon) {
          out.push_back(FaultTransition{end, static_cast<ServerId>(s),
                                        FaultTransitionKind::kUp, 1.0});
        }
      }
      t = end;
    }
  }
}

}  // namespace

std::vector<FaultTransition> generate_fault_schedule(const FailureConfig& config,
                                                     int num_servers,
                                                     Seconds horizon, Rng& rng) {
  std::vector<FaultTransition> schedule;
  if (!config.enabled) return schedule;

  generate_binary(config, num_servers, horizon, rng, schedule);
  if (config.brownout.enabled) {
    generate_brownouts(config, num_servers, horizon, rng, schedule);
  }
  if (config.correlated.enabled) {
    generate_correlated(config, num_servers, horizon, rng, schedule);
  }

  // (time, server) ties are measure-zero within the binary phase, so this
  // order reduces to the legacy (time, server) sort on crash-only configs.
  sort_fault_schedule(schedule);
  return schedule;
}

}  // namespace vodsim
