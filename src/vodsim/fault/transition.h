#pragma once

/// \file transition.h
/// \brief The atom of the fault model: one server changing health state.
///
/// Lives in its own header (rather than schedule.h) so engine/config.h can
/// carry a scripted fault list without pulling in the schedule generator.

#include "vodsim/cluster/request.h"
#include "vodsim/util/units.h"

namespace vodsim {

/// What happens to a server at a scheduled fault time.
///
/// New kinds append at the end: sort_fault_schedule tie-breaks equal
/// (time, server) pairs by the enum's integer value, so appending keeps
/// every legacy schedule's order bit-identical.
enum class FaultTransitionKind {
  kDown,            ///< Total crash: server unavailable, streams orphaned.
  kUp,              ///< Repair complete: server available at full capacity.
  kBrownoutBegin,   ///< Link degrades to `capacity_factor` of nominal.
  kBrownoutEnd,     ///< Link restored to full capacity.
  kPartitionBegin,  ///< Network partition: server up but unreachable from
                    ///< the controller — no admission, migration,
                    ///< replication, or delivery may touch it.
  kPartitionEnd,    ///< Partition heals: server reachable again.
};

/// One scheduled health transition. Schedules are sorted by
/// (time, server, kind) and are deterministic functions of the failure RNG
/// stream, so the whole fault story of a run is fixed before the first event.
struct FaultTransition {
  Seconds time = 0.0;
  ServerId server = kNoServer;
  FaultTransitionKind kind = FaultTransitionKind::kDown;
  /// Fraction of nominal bandwidth that survives. Only meaningful for
  /// kBrownoutBegin; must be in (0, 1).
  double capacity_factor = 1.0;
};

const char* to_string(FaultTransitionKind kind);

}  // namespace vodsim
