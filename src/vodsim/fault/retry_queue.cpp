#include "vodsim/fault/retry_queue.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vodsim {

bool RetryQueue::push(RetryEntry entry) {
  if (entries_.size() >= config_.max_queue) {
    ++overflow_count_;
    return false;
  }
  entries_.push_back(entry);
  return true;
}

std::vector<RetryEntry> RetryQueue::take_due(Seconds now, bool force) {
  std::vector<RetryEntry> due;
  std::size_t kept = 0;
  for (RetryEntry& entry : entries_) {
    if (force || entry.next_attempt <= now) {
      due.push_back(entry);
    } else {
      entries_[kept++] = entry;
    }
  }
  entries_.resize(kept);
  return due;
}

bool RetryQueue::remove_request(RequestId request) {
  if (request == kNoRetryRequest) return false;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->request == request) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

Seconds RetryQueue::backoff(int attempts) const {
  // ldexp is exact (scales the exponent), so backoff sequences are
  // bit-reproducible; pow(2, n) need not be.
  const Seconds raw = std::ldexp(config_.backoff_base, attempts);
  return std::min(config_.backoff_cap, raw);
}

Seconds RetryQueue::next_attempt_time() const {
  Seconds earliest = std::numeric_limits<double>::infinity();
  for (const RetryEntry& entry : entries_) {
    earliest = std::min(earliest, entry.next_attempt);
  }
  return earliest;
}

}  // namespace vodsim
