#pragma once

/// \file schedule.h
/// \brief Deterministic pre-generated fault schedules.
///
/// Replaces the binary up/down timeline of engine/failure.h with a taxonomy
/// of faults the paper's §3.1 fault-tolerance remark motivates: crash/repair
/// (bit-compatible with the legacy generator), brownouts (partial capacity
/// loss), correlated group outages, and flap guards (minimum dwell times).
/// The whole schedule is a pure function of (config, num_servers, horizon,
/// failure RNG), generated before the first simulation event, so fault
/// behaviour is reproducible and diffable across policies.
///
/// Draw-order contract (load-bearing for the hexfloat goldens): phase 1
/// draws exactly the legacy generator's sequence — per server, alternating
/// Exp(1/MTBF) / Exp(1/MTTR) gaps until the horizon. Brownout and
/// correlated draws happen only when their sub-configs are enabled, and
/// only *after* all phase-1 draws, so a crash-only config consumes the
/// identical RNG prefix it always did. The topology-scoped phases (rack
/// outages, zone brownouts, rack partitions — FailureConfig::domains) draw
/// after all three legacy phases, each only when enabled, extending the
/// same contract.
///
/// Sharded engine (DESIGN.md §12): fault transitions shed, migrate, or
/// re-park streams across arbitrary servers, so every transition executes
/// on the serial coordinator queue. The schedule being pre-generated means
/// sharding changes nothing about when faults fire — only which queue runs
/// the handler.

#include <vector>

#include "vodsim/engine/config.h"
#include "vodsim/fault/transition.h"
#include "vodsim/util/rng.h"
#include "vodsim/util/units.h"

namespace vodsim {

/// Generates the full fault schedule up to \p horizon, sorted by
/// (time, server, kind). Empty when `config.enabled` is false. This legacy
/// entry point delegates to the topology overload with the trivial
/// single-rack tree, so no domain phase ever draws.
std::vector<FaultTransition> generate_fault_schedule(const FailureConfig& config,
                                                     int num_servers,
                                                     Seconds horizon, Rng& rng);

/// As above, with a failure-domain tree: the domain phases (rack outages,
/// zone brownouts, rack partitions) scope their episodes to \p topology's
/// racks and zones. With a disabled topology (or no domain sub-config
/// enabled) the output is bit-identical to the legacy overload.
std::vector<FaultTransition> generate_fault_schedule(const FailureConfig& config,
                                                     const Topology& topology,
                                                     Seconds horizon, Rng& rng);

/// Sorts \p schedule into the canonical (time, server, kind) order used by
/// the engine. Scripted schedules go through this before execution.
void sort_fault_schedule(std::vector<FaultTransition>& schedule);

}  // namespace vodsim
