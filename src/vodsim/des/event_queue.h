#pragma once

/// \file event_queue.h
/// \brief Time-ordered event queue with O(log n) schedule and O(1) cancel.
///
/// Cancellation is lazy: a cancelled entry stays in the heap and is skipped
/// on pop. The fluid transmission model reschedules per-request predicted
/// events (transmission-complete, buffer-full) whenever a server's
/// allocation changes, so cheap cancellation is essential.
///
/// Ordering is deterministic: equal-time events fire in schedule order
/// (stable tie-break on a monotonically increasing sequence number), which
/// keeps whole simulations reproducible from a seed.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "vodsim/util/units.h"

namespace vodsim {

/// Opaque handle to a scheduled event; 0 is never a valid id.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

/// Callback invoked when an event fires. Receives the firing time.
using EventFn = std::function<void(Seconds)>;

class EventQueue {
 public:
  EventQueue() = default;

  /// Schedules \p fn at absolute time \p time. Returns a handle usable with
  /// cancel(). Times may be scheduled in any order, including in the past
  /// relative to other pending events (the caller — Simulator — enforces
  /// causality with respect to the clock).
  EventId schedule(Seconds time, EventFn fn);

  /// Cancels a pending event; no-op if the event already fired or was
  /// cancelled (including kInvalidEventId).
  void cancel(EventId id);

  /// True if no live (non-cancelled) events remain.
  bool empty() const { return handlers_.empty(); }

  /// Number of live events.
  std::size_t size() const { return handlers_.size(); }

  /// Time of the earliest live event. Requires !empty().
  Seconds peek_time();

  /// Removes and returns the earliest live event (handler + time).
  /// Requires !empty().
  std::pair<Seconds, EventFn> pop();

  /// Total events ever scheduled (diagnostic).
  std::uint64_t scheduled_count() const { return next_id_ - 1; }

 private:
  struct Entry {
    Seconds time;
    EventId id;
    /// Min-heap: earliest time first; equal times in schedule (id) order.
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  /// Drops cancelled entries from the heap top.
  void skip_dead();

  /// Rebuilds the heap without dead entries when cancellations dominate;
  /// keeps memory proportional to the number of *live* events even under
  /// heavy reschedule churn.
  void maybe_compact();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_map<EventId, EventFn> handlers_;
  EventId next_id_ = 1;
};

}  // namespace vodsim
