#pragma once

/// \file event_queue.h
/// \brief Time-ordered event queue: O(log n) schedule/pop, O(1) cancel,
/// zero steady-state heap allocations.
///
/// Handlers live in a generation-tagged slab: an EventId encodes a slot
/// index plus the slot's generation at schedule time, so schedule, cancel
/// and the liveness check on pop are all array indexing — no hash map, no
/// per-event node allocation. A slot's generation is bumped every time it is
/// freed, which makes stale handles (double cancel, cancel after fire)
/// harmless no-ops.
///
/// Cancellation is lazy: a cancelled entry stays in the heap and is skipped
/// on pop. The fluid transmission model reschedules per-request predicted
/// events (transmission-complete, buffer-full) whenever a server's
/// allocation changes, so cheap cancellation is essential. Dead entries are
/// compacted in place (no allocation) when they outnumber live ones; the
/// trigger is a cheap size comparison on the schedule path, keeping cancel
/// strictly O(1).
///
/// Ordering is deterministic: equal-time events fire in schedule order
/// (stable tie-break on a monotonically increasing sequence number), which
/// keeps whole simulations reproducible from a seed.

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "vodsim/des/event_callback.h"
#include "vodsim/util/units.h"

namespace vodsim {

/// Opaque handle to a scheduled event; 0 is never a valid id.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

/// Callback invoked when an event fires. Receives the firing time.
using EventFn = EventCallback;

class EventQueue {
 public:
  EventQueue() = default;

  /// Schedules \p fn at absolute time \p time. Returns a handle usable with
  /// cancel(). Times may be scheduled in any order, including in the past
  /// relative to other pending events (the caller — Simulator — enforces
  /// causality with respect to the clock).
  EventId schedule(Seconds time, EventFn fn) {
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& entry = slots_[slot];
    assert(!entry.live);
    entry.fn = std::move(fn);
    entry.live = true;
    ++scheduled_;
    ++live_;
    heap_.push_back(HeapEntry{time, scheduled_, slot, entry.generation});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    // Compaction rides the schedule path (an O(1) size test), never the
    // O(1)-contract cancel path.
    if (heap_.size() >= kCompactMinEntries && heap_.size() > 2 * live_) compact();
    return make_id(slot, entry.generation);
  }

  /// Cancels a pending event in O(1); no-op if the event already fired or
  /// was cancelled (including kInvalidEventId and stale ids — the slot
  /// generation no longer matches).
  void cancel(EventId id) {
    if (id == kInvalidEventId) return;
    const std::uint32_t slot = id_slot(id);
    if (slot >= slots_.size()) return;
    Slot& entry = slots_[slot];
    if (!entry.live || entry.generation != id_generation(id)) return;
    release(slot);
  }

  /// True if no live (non-cancelled) events remain.
  bool empty() const { return live_ == 0; }

  /// Number of live events.
  std::size_t size() const { return live_; }

  /// Time of the earliest live event. Requires !empty().
  Seconds peek_time() {
    skip_dead();
    assert(!heap_.empty());
    return heap_.front().time;
  }

  /// Removes and returns the earliest live event (handler + time).
  /// Requires !empty().
  std::pair<Seconds, EventFn> pop() {
    skip_dead();
    assert(!heap_.empty());
    const HeapEntry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    Slot& entry = slots_[top.slot];
    assert(entry.live && entry.generation == top.generation);
    EventFn fn = std::move(entry.fn);
    release(top.slot);
    return {top.time, std::move(fn)};
  }

  /// Pre-sizes the slab and heap for \p events concurrently pending events,
  /// so the warmup phase does not grow them incrementally.
  void reserve(std::size_t events) {
    heap_.reserve(events);
    slots_.reserve(events);
    free_slots_.reserve(events);
  }

  /// Total events ever scheduled (diagnostic).
  std::uint64_t scheduled_count() const { return scheduled_; }

  /// Heap entries currently held, live or dead (diagnostic; lets tests pin
  /// the compaction behavior).
  std::size_t heap_entries() const { return heap_.size(); }

 private:
  struct HeapEntry {
    Seconds time;
    std::uint64_t seq;  ///< global schedule order: the equal-time tie-break
    std::uint32_t slot;
    std::uint32_t generation;
  };

  /// Min-heap comparator: true when \p a fires after \p b.
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  struct Slot {
    EventFn fn;
    std::uint32_t generation = 0;
    bool live = false;
  };

  /// Dead entries (heap size beyond this) are only worth sweeping once the
  /// heap is non-trivial.
  static constexpr std::size_t kCompactMinEntries = 1024;

  static EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) |
           (static_cast<EventId>(slot) + 1);
  }
  static std::uint32_t id_slot(EventId id) {
    return static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  }
  static std::uint32_t id_generation(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  bool is_live(const HeapEntry& entry) const {
    const Slot& slot = slots_[entry.slot];
    return slot.live && slot.generation == entry.generation;
  }

  /// Frees a slot: destroys the handler, bumps the generation (invalidating
  /// outstanding ids), and recycles the index.
  void release(std::uint32_t slot) {
    Slot& entry = slots_[slot];
    entry.fn.reset();
    entry.live = false;
    ++entry.generation;
    free_slots_.push_back(slot);
    --live_;
  }

  /// Drops cancelled entries from the heap top.
  void skip_dead() {
    while (!heap_.empty() && !is_live(heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
    }
  }

  /// Rebuilds the heap in place without dead entries when cancellations
  /// dominate; keeps memory proportional to the number of *live* events
  /// even under heavy reschedule churn, without allocating.
  void compact();

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  std::uint64_t scheduled_ = 0;
};

}  // namespace vodsim
