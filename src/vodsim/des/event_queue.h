#pragma once

/// \file event_queue.h
/// \brief Time-ordered event queue: O(log n) schedule/pop/cancel/retime,
/// zero steady-state heap allocations.
///
/// Handlers live in a generation-tagged slab: an EventId encodes a slot
/// index plus the slot's generation at schedule time, so schedule, cancel
/// and reschedule validation are all array indexing — no hash map, no
/// per-event node allocation. A slot's generation is bumped every time it is
/// freed, which makes stale handles (double cancel, cancel after fire)
/// harmless no-ops.
///
/// Every live slot tracks its heap position (the heap is hand-sifted rather
/// than run through std::push_heap/pop_heap precisely so moves can maintain
/// that index). The index buys two things:
///   - reschedule() retimes an event in place — rewrite the entry's
///     (time, seq) key, one O(log n) sift, no slot churn — which is what
///     makes per-rate-change predicted-event retiming cheaper than the
///     cancel+insert pair it replaces;
///   - cancel() removes its entry eagerly (move the last entry into the
///     hole, sift). The heap therefore only ever holds live entries: pop
///     never skips dead ones, no compaction pass is needed, memory is
///     proportional to pending events, and position maintenance during
///     sifts is a single unconditional store.
///
/// Ordering is deterministic: equal-time events fire in schedule order
/// (stable tie-break on a monotonically increasing sequence number), which
/// keeps whole simulations reproducible from a seed.

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "vodsim/des/event_callback.h"
#include "vodsim/util/units.h"

namespace vodsim {

/// Opaque handle to a scheduled event; 0 is never a valid id.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

/// Callback invoked when an event fires. Receives the firing time.
using EventFn = EventCallback;

class EventQueue {
 public:
  EventQueue() = default;

  /// Schedules \p fn at absolute time \p time. Returns a handle usable with
  /// cancel(). Times may be scheduled in any order, including in the past
  /// relative to other pending events (the caller — Simulator — enforces
  /// causality with respect to the clock).
  EventId schedule(Seconds time, EventFn fn) {
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& entry = slots_[slot];
    assert(!entry.live);
    entry.fn = std::move(fn);
    entry.live = true;
    ++scheduled_;
    heap_.push_back(HeapEntry{time, scheduled_, slot, entry.generation});
    sift_up(heap_.size() - 1);
    return make_id(slot, entry.generation);
  }

  /// Retimes a pending event in place: one O(log n) sift, no slot churn.
  /// The handle stays valid and the handler is untouched.
  ///
  /// Consumes one sequence number, so the retimed event ties with
  /// equal-time events exactly as if it had been cancelled and freshly
  /// scheduled — pop order is uniquely (time, seq)-determined, which is what
  /// the determinism contract pins; the heap's internal layout is free to
  /// differ. Returns false (and does nothing) for dead or stale ids; the
  /// caller schedules a fresh event instead.
  bool reschedule(EventId id, Seconds time) {
    if (id == kInvalidEventId) return false;
    const std::uint32_t slot = id_slot(id);
    if (slot >= slots_.size()) return false;
    Slot& entry = slots_[slot];
    if (!entry.live || entry.generation != id_generation(id)) return false;
    const std::size_t pos = entry.heap_pos;
    assert(pos < heap_.size() && heap_[pos].slot == slot &&
           heap_[pos].generation == entry.generation);
    heap_[pos].time = time;
    heap_[pos].seq = ++scheduled_;
    // An earlier time moves up; a later time — or the same time, now losing
    // the seq tie-break — moves down. Try up first; if it did not move,
    // settle downward.
    if (sift_up(pos) == pos) sift_down(pos);
    return true;
  }

  /// Cancels a pending event in O(log n), removing its heap entry in place;
  /// no-op if the event already fired or was cancelled (including
  /// kInvalidEventId and stale ids — the slot generation no longer matches).
  void cancel(EventId id) {
    if (id == kInvalidEventId) return;
    const std::uint32_t slot = id_slot(id);
    if (slot >= slots_.size()) return;
    Slot& entry = slots_[slot];
    if (!entry.live || entry.generation != id_generation(id)) return;
    remove_at(entry.heap_pos);
    release(slot);
  }

  /// True if no pending events remain.
  bool empty() const { return heap_.empty(); }

  /// Number of pending events.
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Requires !empty().
  Seconds peek_time() const {
    assert(!heap_.empty());
    return heap_.front().time;
  }

  /// Removes and returns the earliest pending event (handler + time).
  /// Requires !empty().
  std::pair<Seconds, EventFn> pop() {
    assert(!heap_.empty());
    const HeapEntry top = heap_.front();
    remove_at(0);
    Slot& entry = slots_[top.slot];
    assert(entry.live && entry.generation == top.generation);
    EventFn fn = std::move(entry.fn);
    release(top.slot);
    return {top.time, std::move(fn)};
  }

  /// Pre-sizes the slab and heap for \p events concurrently pending events,
  /// so the warmup phase does not grow them incrementally.
  void reserve(std::size_t events) {
    heap_.reserve(events);
    slots_.reserve(events);
    free_slots_.reserve(events);
  }

  /// Total events ever scheduled (diagnostic).
  std::uint64_t scheduled_count() const { return scheduled_; }

  /// Heap entries currently held (diagnostic). Eager removal keeps this
  /// identical to size(); tests pin that no dead ballast accumulates.
  std::size_t heap_entries() const { return heap_.size(); }

 private:
  struct HeapEntry {
    Seconds time;
    std::uint64_t seq;  ///< global schedule order: the equal-time tie-break
    std::uint32_t slot;
    std::uint32_t generation;  ///< redundant with slot (asserts only)
  };

  /// Min-heap comparator: true when \p a fires after \p b.
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  struct Slot {
    EventFn fn;
    std::uint32_t generation = 0;
    std::uint32_t heap_pos = 0;  ///< current heap index; valid while live
    bool live = false;
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) |
           (static_cast<EventId>(slot) + 1);
  }
  static std::uint32_t id_slot(EventId id) {
    return static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  }
  static std::uint32_t id_generation(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  /// Frees a slot: destroys the handler, bumps the generation (invalidating
  /// outstanding ids), and recycles the index.
  void release(std::uint32_t slot) {
    Slot& entry = slots_[slot];
    entry.fn.reset();
    entry.live = false;
    ++entry.generation;
    free_slots_.push_back(slot);
  }

  /// Writes \p pos into the owning slot's position index. Unconditional:
  /// eager removal guarantees every heap entry is live and owns its slot.
  void set_pos(const HeapEntry& entry, std::size_t pos) {
    assert(slots_[entry.slot].live &&
           slots_[entry.slot].generation == entry.generation);
    slots_[entry.slot].heap_pos = static_cast<std::uint32_t>(pos);
  }

  /// Moves heap_[i] toward the root while it fires before its parent,
  /// maintaining position indices. Returns the final index.
  std::size_t sift_up(std::size_t i) {
    HeapEntry entry = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!Later{}(heap_[parent], entry)) break;
      heap_[i] = heap_[parent];
      set_pos(heap_[i], i);
      i = parent;
    }
    heap_[i] = std::move(entry);
    set_pos(heap_[i], i);
    return i;
  }

  /// Moves heap_[i] toward the leaves while a child fires before it,
  /// maintaining position indices.
  void sift_down(std::size_t i) {
    HeapEntry entry = heap_[i];
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && Later{}(heap_[child], heap_[child + 1])) ++child;
      if (!Later{}(entry, heap_[child])) break;
      heap_[i] = heap_[child];
      set_pos(heap_[i], i);
      i = child;
    }
    heap_[i] = std::move(entry);
    set_pos(heap_[i], i);
  }

  /// Removes the entry at \p pos: the last entry fills the hole and sifts
  /// to its place (either direction — the hole's parent/children bear no
  /// relation to the tail entry's key).
  void remove_at(std::size_t pos) {
    assert(pos < heap_.size());
    const std::size_t last = heap_.size() - 1;
    if (pos != last) {
      heap_[pos] = heap_[last];
      heap_.pop_back();
      if (sift_up(pos) == pos) sift_down(pos);
    } else {
      heap_.pop_back();
    }
  }

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t scheduled_ = 0;
};

}  // namespace vodsim
