#pragma once

/// \file simulator.h
/// \brief Discrete-event simulator: clock + event queue + run loop.
///
/// Handlers may schedule and cancel further events (reentrancy is the normal
/// mode of operation). Time never goes backwards: scheduling before now()
/// clamps to now(), so a handler can safely request "immediately after this
/// event" follow-ups.

#include <cstdint>
#include <functional>
#include <utility>

#include "vodsim/des/event_queue.h"
#include "vodsim/util/units.h"

namespace vodsim {

class Simulator {
 public:
  Simulator() = default;

  /// Current simulation time (seconds). Starts at 0.
  Seconds now() const { return now_; }

  /// Schedules \p fn at absolute time max(time, now()).
  EventId schedule_at(Seconds time, EventFn fn);

  /// Schedules \p fn at now() + max(delay, 0).
  EventId schedule_in(Seconds delay, EventFn fn);

  /// Cancels a pending event (no-op on invalid/fired handles).
  void cancel(EventId id);

  /// Retimes a pending event to absolute time max(time, now()) in place —
  /// same clock clamp as schedule_at, same handle, same handler. Returns
  /// false (no-op) on invalid/fired handles; the caller schedules afresh.
  bool reschedule_at(Seconds time, EventId id);

  /// Fires the earliest pending event. Returns false if none remain.
  bool step();

  /// Runs events with time <= horizon, then advances the clock exactly to
  /// horizon (even if the queue empties earlier).
  void run_until(Seconds horizon);

  /// Runs events with time strictly < horizon and stops; the clock is left
  /// at the last executed event (NOT clamped to horizon). This is the
  /// drain primitive of the sharded engine's conservative-lookahead
  /// windows: a shard may execute everything before the next coupling
  /// event at `horizon`, but must not consume the clock up to it —
  /// events scheduled *at* horizon by the coordinator still belong to
  /// the next window. Returns the number of events executed.
  std::uint64_t run_before(Seconds horizon);

  /// Runs until the queue is empty.
  void run();

  /// Number of events executed so far (diagnostic/bench metric).
  std::uint64_t executed_count() const { return executed_; }

  /// Live pending events.
  std::size_t pending_count() const { return queue_.size(); }

  /// Earliest pending event time; call only when pending_count() > 0.
  /// The sharded run loop peeks every shard queue to size each
  /// conservative-lookahead window before dispatching the drains.
  Seconds peek_time() const { return queue_.peek_time(); }

  /// Pre-sizes the event queue for \p events concurrently pending events.
  void reserve_events(std::size_t events) { queue_.reserve(events); }

  /// Observer invoked after every executed event, with the event's time.
  /// At most one hook; empty (the default) disables it, leaving one branch
  /// on the hot path. Used by the paranoid-mode invariant auditor.
  using PostEventHook = std::function<void(Seconds)>;
  void set_post_event_hook(PostEventHook hook) {
    post_event_hook_ = std::move(hook);
  }

 private:
  EventQueue queue_;
  Seconds now_ = 0.0;
  std::uint64_t executed_ = 0;
  PostEventHook post_event_hook_;
};

}  // namespace vodsim
