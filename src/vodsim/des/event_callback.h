#pragma once

/// \file event_callback.h
/// \brief Small-buffer-optimized, move-only event callback.
///
/// `std::function` heap-allocates any callable larger than its tiny internal
/// buffer, which put an `operator new` on the simulator's hottest path:
/// every predicted-event (re)schedule. EventCallback stores callables up to
/// kInlineSize bytes inline — sized to fit every closure the engine
/// schedules, including the largest (`[this, job, rate, start]` in the
/// replication path, 48 bytes) — and falls back to a single heap allocation
/// only for oversized callables, so growing a closure can never silently
/// break compilation, only performance.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "vodsim/util/units.h"

namespace vodsim {

class EventCallback {
 public:
  /// Inline storage, in bytes. Large enough for every engine closure; a
  /// callable above this size is heap-allocated (correct but slow — keep
  /// hot-path captures small).
  static constexpr std::size_t kInlineSize = 48;

  EventCallback() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, EventCallback> &&
                std::is_invocable_r_v<void, D&, Seconds>>>
  EventCallback(F&& fn) {  // NOLINT(google-explicit-constructor): callable wrapper
    if constexpr (stored_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      ops_ = &kHeapOps<D>;
    }
  }

  EventCallback(EventCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { reset(); }

  /// Destroys the held callable (no-op when empty).
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Invokes the held callable. Requires *this to be non-empty.
  void operator()(Seconds time) { ops_->invoke(storage_, time); }

 private:
  struct Ops {
    void (*invoke)(void* storage, Seconds time);
    /// Move-constructs into \p dst from \p src and destroys \p src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename D>
  static constexpr bool stored_inline =
      sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static D* inline_object(void* storage) {
    return std::launder(reinterpret_cast<D*>(storage));
  }

  template <typename D>
  static D* heap_object(void* storage) {
    return *std::launder(reinterpret_cast<D**>(storage));
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* storage, Seconds time) { (*inline_object<D>(storage))(time); },
      [](void* dst, void* src) {
        D* object = inline_object<D>(src);
        ::new (dst) D(std::move(*object));
        object->~D();
      },
      [](void* storage) { inline_object<D>(storage)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* storage, Seconds time) { (*heap_object<D>(storage))(time); },
      [](void* dst, void* src) {
        ::new (dst) D*(heap_object<D>(src));  // steal the pointer
      },
      [](void* storage) { delete heap_object<D>(storage); },
  };

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
};

}  // namespace vodsim
