#include "vodsim/des/simulator.h"

#include <algorithm>
#include <cassert>

namespace vodsim {

EventId Simulator::schedule_at(Seconds time, EventFn fn) {
  return queue_.schedule(std::max(time, now_), std::move(fn));
}

EventId Simulator::schedule_in(Seconds delay, EventFn fn) {
  return schedule_at(now_ + std::max(delay, 0.0), std::move(fn));
}

void Simulator::cancel(EventId id) { queue_.cancel(id); }

bool Simulator::reschedule_at(Seconds time, EventId id) {
  return queue_.reschedule(id, std::max(time, now_));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [time, fn] = queue_.pop();
  assert(time >= now_);
  now_ = time;
  ++executed_;
  fn(time);
  if (post_event_hook_) post_event_hook_(time);
  return true;
}

void Simulator::run_until(Seconds horizon) {
  while (!queue_.empty() && queue_.peek_time() <= horizon) {
    step();
  }
  now_ = std::max(now_, horizon);
}

std::uint64_t Simulator::run_before(Seconds horizon) {
  std::uint64_t executed = 0;
  while (!queue_.empty() && queue_.peek_time() < horizon) {
    step();
    ++executed;
  }
  return executed;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace vodsim
