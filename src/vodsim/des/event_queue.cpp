#include "vodsim/des/event_queue.h"

#include <algorithm>

namespace vodsim {

void EventQueue::compact() {
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const HeapEntry& entry) {
                               return !is_live(entry);
                             }),
              heap_.end());
  // O(n) heapify of the surviving entries; order among equal keys is
  // irrelevant to the heap invariant and pop still tie-breaks on seq.
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

}  // namespace vodsim
