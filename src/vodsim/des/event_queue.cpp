#include "vodsim/des/event_queue.h"

#include <cassert>
#include <utility>

namespace vodsim {

EventId EventQueue::schedule(Seconds time, EventFn fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{time, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

void EventQueue::cancel(EventId id) {
  if (id == kInvalidEventId) return;
  handlers_.erase(id);
  maybe_compact();
}

void EventQueue::maybe_compact() {
  // Dead entries sink into the heap and would otherwise accumulate without
  // bound when far-future events are cancelled and rescheduled repeatedly.
  if (heap_.size() < 1024 || heap_.size() < handlers_.size() * 2) return;
  std::vector<Entry> live;
  live.reserve(handlers_.size());
  while (!heap_.empty()) {
    const Entry entry = heap_.top();
    heap_.pop();
    if (handlers_.find(entry.id) != handlers_.end()) live.push_back(entry);
  }
  // O(n) heapify instead of n pushes.
  heap_ = decltype(heap_)(std::greater<Entry>(), std::move(live));
}

void EventQueue::skip_dead() {
  while (!heap_.empty() && handlers_.find(heap_.top().id) == handlers_.end()) {
    heap_.pop();
  }
}

Seconds EventQueue::peek_time() {
  skip_dead();
  assert(!heap_.empty());
  return heap_.top().time;
}

std::pair<Seconds, EventFn> EventQueue::pop() {
  skip_dead();
  assert(!heap_.empty());
  const Entry entry = heap_.top();
  heap_.pop();
  auto it = handlers_.find(entry.id);
  assert(it != handlers_.end());
  EventFn fn = std::move(it->second);
  handlers_.erase(it);
  return {entry.time, std::move(fn)};
}

}  // namespace vodsim
