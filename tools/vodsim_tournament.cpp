/// \file vodsim_tournament.cpp
/// \brief Scheduler x placement x migration-budget tournament vs the bounds.
///
/// Runs the full policy cross — {eftf, continuous, proportional, lftf,
/// intermittent} x {even, bsr, predictive, partial} x migration budgets —
/// at one or more catalog sizes, and reports every cell's distance from the
/// analytic achievability envelope (analysis/bounds.h). Because the bounds
/// are policy-independent, all cells of a catalog column share one
/// BoundsReport (SweepContext memoizes it), and the gap columns are a
/// like-for-like ranking: a cell with a smaller gap extracts more of what
/// the world mathematically allows.
///
/// Storage is auto-scaled to the catalog (1.5x the replica budget) so the
/// 10^4-title column is placement-constrained by bandwidth, not disk.
///
/// Examples:
///   vodsim_tournament                          # full M3 grid, ~minutes
///   vodsim_tournament --smoke                  # seconds, for CI
///   vodsim_tournament --catalog 1000 --markdown-out m3.md --csv-out m3.csv

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "vodsim/engine/experiment.h"
#include "vodsim/engine/policy_matrix.h"
#include "vodsim/util/cli.h"
#include "vodsim/util/table.h"

namespace {

using namespace vodsim;

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::string short_number(double value) {
  std::ostringstream out;
  out.precision(4);
  out << value;
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vodsim;
  CliParser cli("vodsim_tournament",
                "policy tournament scored against the analytic bounds");
  cli.add_flag("catalog", "100,1000,10000", "catalog sizes, comma-separated");
  cli.add_flag("schedulers", "eftf,continuous,proportional,lftf,intermittent",
               "schedulers to enter, comma-separated");
  cli.add_flag("placements", "even,bsr,predictive,partial",
               "placements to enter, comma-separated");
  cli.add_flag("budgets", "0,1",
               "migration hop budgets, comma-separated (0 = off)");
  cli.add_flag("staging", "0.2", "client staging buffer fraction");
  cli.add_flag("load", "1.0", "offered load as a fraction of capacity");
  cli.add_flag("hours", "30", "simulated hours per trial");
  cli.add_flag("warmup-hours", "3", "discarded warmup");
  cli.add_flag("trials", "3", "independent trials per cell");
  cli.add_flag("seed", "42", "master seed");
  cli.add_flag("servers", "5", "number of servers");
  cli.add_flag("bandwidth", "100", "per-server bandwidth, Mb/s");
  cli.add_flag("copies", "2.2", "average replicas per title");
  cli.add_bool_flag("smoke", "tiny instance for CI: 60 titles, 2 h, 1 trial");
  cli.add_flag("csv-out", "", "write per-trial rows (bound/gap columns) here");
  cli.add_flag("markdown-out", "", "write the M3 gap tables (markdown) here");
  if (!cli.parse(argc, argv)) return cli.error().empty() ? 0 : 2;

  const bool smoke = cli.get_bool("smoke");
  std::vector<std::size_t> catalog_sizes;
  for (const std::string& item : split_list(cli.get_string("catalog"))) {
    catalog_sizes.push_back(static_cast<std::size_t>(std::stoul(item)));
  }
  std::vector<SchedulerKind> schedulers;
  for (const std::string& item : split_list(cli.get_string("schedulers"))) {
    schedulers.push_back(scheduler_kind_from_string(item));
  }
  std::vector<PlacementKind> placements;
  for (const std::string& item : split_list(cli.get_string("placements"))) {
    placements.push_back(placement_kind_from_string(item));
  }
  std::vector<int> budgets;
  for (const std::string& item : split_list(cli.get_string("budgets"))) {
    budgets.push_back(static_cast<int>(std::stol(item)));
  }
  double hours_per_trial = cli.get_double("hours");
  double warmup_hours = cli.get_double("warmup-hours");
  int trials = static_cast<int>(cli.get_long("trials"));
  if (smoke) {
    catalog_sizes = {60};
    hours_per_trial = 2.0;
    warmup_hours = 0.5;
    trials = 1;
  }

  const std::vector<TournamentSpec> grid = tournament_grid(
      schedulers, placements, budgets, cli.get_double("staging"));
  if (grid.empty() || catalog_sizes.empty()) {
    std::cerr << "empty tournament: need >= 1 scheduler, placement, budget, "
                 "catalog size\n";
    return 2;
  }

  SimulationConfig base;
  base.system = SystemConfig::small_system();
  base.system.num_servers = static_cast<int>(cli.get_long("servers"));
  base.system.server_bandwidth = cli.get_double("bandwidth");
  base.system.avg_copies = cli.get_double("copies");
  base.load_factor = cli.get_double("load");
  base.duration = hours(hours_per_trial);
  base.warmup = hours(warmup_hours);
  base.fast_math = true;  // batched fluid advance; counts identical to exact

  ExperimentRunner runner;
  std::ostringstream markdown;
  markdown << "## M3 — policy tournament vs analytic bounds\n\n"
           << "Gap-to-bound per cell (means over " << trials << " trial(s), "
           << hours_per_trial << " h each, load " << base.load_factor
           << ", staging " << cli.get_double("staging")
           << "). `util gap` = achievable UB - measured utilization; "
              "`rej gap` = measured rejection - LB. Smaller is better; "
              "negative is impossible (enforced by the invariant auditor).\n";

  std::vector<std::string> all_labels;
  std::vector<ExperimentPoint> all_points;

  for (std::size_t catalog_size : catalog_sizes) {
    SimulationConfig sized = base;
    sized.system.name = "tournament-n" + std::to_string(catalog_size);
    sized.system.num_videos = catalog_size;
    // Auto-scale disk to the replica budget so placement is never
    // storage-starved: 1.5x (catalog mass x avg copies) / servers.
    const Seconds mean_duration = 0.5 * (sized.system.video_min_duration +
                                         sized.system.video_max_duration);
    const double mean_size = mean_duration * sized.system.view_bandwidth;
    sized.system.server_storage =
        1.5 * static_cast<double>(catalog_size) * sized.system.avg_copies *
        mean_size / static_cast<double>(sized.system.num_servers);

    std::vector<SimulationConfig> configs;
    std::vector<std::string> labels;
    configs.reserve(grid.size());
    for (const TournamentSpec& spec : grid) {
      configs.push_back(apply_tournament_spec(sized, spec));
      labels.push_back("n=" + std::to_string(catalog_size) + "/" + spec.label);
    }
    const std::vector<ExperimentPoint> points =
        runner.run_sweep(configs, trials,
                         static_cast<std::uint64_t>(cli.get_long("seed")));

    std::cout << "\n=== catalog " << catalog_size << " titles, "
              << grid.size() << " cells x " << trials << " trial(s) ===\n";
    TablePrinter table({"cell", "util", "UB", "util gap", "rej", "LB",
                        "rej gap", "migr/arr"});
    markdown << "\n### Catalog " << catalog_size << " titles\n\n"
             << "| cell | util | UB | util gap | rej | LB | rej gap | "
                "migr/arr |\n"
             << "|---|---|---|---|---|---|---|---|\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
      const ExperimentPoint& point = points[i];
      Accumulator ub, lb;
      for (const TrialResult& trial : point.trials) {
        ub.add(trial.bound_utilization);
        lb.add(trial.bound_rejection);
      }
      const std::vector<std::string> row = {
          grid[i].label,
          short_number(point.utilization.mean()),
          short_number(ub.mean()),
          short_number(point.utilization_gap.mean()),
          short_number(point.rejection_ratio.mean()),
          short_number(lb.mean()),
          short_number(point.rejection_gap.mean()),
          short_number(point.migrations_per_arrival.mean())};
      table.add_row(row);
      markdown << "| " << row[0];
      for (std::size_t c = 1; c < row.size(); ++c) markdown << " | " << row[c];
      markdown << " |\n";
    }
    table.print(std::cout);

    all_labels.insert(all_labels.end(), labels.begin(), labels.end());
    all_points.insert(all_points.end(), points.begin(), points.end());
  }

  // Sanity summary: the auditor enforces this per run in paranoid builds,
  // but the tournament prints it unconditionally as a differential check.
  double worst_util_gap = 0.0;
  double worst_rej_gap = 0.0;
  for (const ExperimentPoint& point : all_points) {
    for (const TrialResult& trial : point.trials) {
      worst_util_gap = std::min(worst_util_gap, trial.utilization_gap);
      worst_rej_gap = std::min(worst_rej_gap, trial.rejection_gap);
    }
  }
  std::cout << "\nworst utilization gap " << worst_util_gap
            << ", worst rejection gap " << worst_rej_gap
            << " (>= -statistical slack expected; a large negative value "
               "means a bound, or the simulator, is broken)\n";
  // Hard gate, deliberately far outside Poisson slack for even the smoke
  // window (single trial, short run: a few percent). The per-run auditor
  // applies the tight, window-aware slack; this catches gross breakage —
  // a measured point beating a proven bound by 10+ points — in any build.
  constexpr double kGrossViolation = -0.10;
  if (worst_util_gap < kGrossViolation || worst_rej_gap < kGrossViolation) {
    std::cerr << "FAIL: measured results beat an analytic bound by more than "
              << -kGrossViolation * 100.0
              << "% -- the simulator or a bound is broken\n";
    return 1;
  }

  const std::string csv_out = cli.get_string("csv-out");
  if (!csv_out.empty()) {
    std::ofstream out(csv_out);
    if (!out) {
      std::cerr << "cannot write " << csv_out << "\n";
      return 1;
    }
    write_sweep_csv(out, all_labels, all_points);
    std::cout << "wrote per-trial CSV to " << csv_out << "\n";
  }
  const std::string markdown_out = cli.get_string("markdown-out");
  if (!markdown_out.empty()) {
    std::ofstream out(markdown_out);
    if (!out) {
      std::cerr << "cannot write " << markdown_out << "\n";
      return 1;
    }
    out << markdown.str();
    std::cout << "wrote markdown gap tables to " << markdown_out << "\n";
  }
  return 0;
}
