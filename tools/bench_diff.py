#!/usr/bin/env python3
"""Compare two google-benchmark JSON outputs benchmark-by-benchmark.

Usage:
  bench_micro --benchmark_out=before.json --benchmark_out_format=json ...
  bench_micro --benchmark_out=after.json  --benchmark_out_format=json ...
  python3 tools/bench_diff.py before.json after.json [--markdown]
                              [--threshold PCT] [--filter REGEX]

--filter restricts the comparison to benchmark names matching REGEX
(re.search semantics, same spirit as --benchmark_filter). Useful for
diffing one kernel family across PR baselines whose full suites diverge —
e.g. `--filter 'BM_Fluid'` against BENCH_pr6.json, where only the fluid
kernel rows are comparable.

Speedup is reported so that > 1.0 always means "after is better": for
throughput counters (items_per_second) it is after/before, for wall time it
is before/after. Benchmarks present on only one side are listed separately
(renames and new benchmarks are expected across PRs, not an error).

Exit code: 0 normally. With --threshold, exit 1 when any benchmark present
on both sides regressed by more than PCT percent (CI uses this as a
*non-blocking* signal: the step runs with continue-on-error, the summary is
the product).

Stdlib only; no third-party imports.
"""

import argparse
import json
import math
import re
import sys


def load_benchmarks(path):
    """name -> record, aggregates (median/mean/stddev rows) preferred over
    raw repetition rows when present.

    Accepts two shapes: native google-benchmark JSON ("benchmarks" is a
    list of records), and the repo's per-PR snapshot files
    (bench/BENCH_prN.json, where "benchmarks" is a dict of hand-measured
    rows carrying "exact"/"fast" numbers and a human unit string). Snapshot
    rows expand to one synthetic record per mode — "NAME[exact]",
    "NAME[fast]" — classified as throughput when the unit mentions "/sec",
    time-per-op otherwise, so snapshots from different PRs diff with the
    same speedup orientation as live runs."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    raw = data.get("benchmarks", [])
    if isinstance(raw, dict):
        out = {}
        for name, row in raw.items():
            if not isinstance(row, dict):
                continue
            throughput = "/sec" in str(row.get("unit", ""))
            for mode in ("exact", "fast"):
                value = row.get(mode)
                if not isinstance(value, (int, float)) or not value:
                    continue
                key = "items_per_second" if throughput else "real_time"
                out["%s[%s]" % (name, mode)] = {key: float(value)}
        return out
    out = {}
    for record in raw:
        if record.get("run_type") == "aggregate" and record.get("aggregate_name") != "median":
            continue
        # Tolerate rows with no name at all (e.g. malformed or future
        # google-benchmark context records) instead of raising KeyError.
        name = record.get("run_name") or record.get("name")
        if not name:
            continue
        # Later rows win: for repeated runs the median aggregate comes last.
        out[name] = record
    return out


def speedup(before, after):
    """(speedup, metric_label, before_value, after_value) for one pair."""
    b_items = before.get("items_per_second")
    a_items = after.get("items_per_second")
    if b_items and a_items:
        return a_items / b_items, "items/s", b_items, a_items
    b_time = before.get("real_time")
    a_time = after.get("real_time")
    if b_time and a_time:
        return b_time / a_time, "time/op", b_time, a_time
    return None, "n/a", None, None


def fmt(value, unit):
    if value is None:
        return "-"
    if unit == "items/s":
        for scale, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
            if value >= scale:
                return "%.3f%s/s" % (value / scale, suffix)
        return "%.1f/s" % value
    return "%.4g" % value


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("before", help="baseline benchmark JSON")
    parser.add_argument("after", help="candidate benchmark JSON")
    parser.add_argument("--markdown", action="store_true",
                        help="emit a GitHub-flavored markdown table")
    parser.add_argument("--threshold", type=float, default=None, metavar="PCT",
                        help="exit 1 if any common benchmark regressed > PCT%%")
    parser.add_argument("--filter", default=None, metavar="REGEX",
                        help="only compare benchmarks matching REGEX "
                             "(re.search)")
    args = parser.parse_args(argv)

    before = load_benchmarks(args.before)
    after = load_benchmarks(args.after)
    if args.filter is not None:
        pattern = re.compile(args.filter)
        before = {n: r for n, r in before.items() if pattern.search(n)}
        after = {n: r for n, r in after.items() if pattern.search(n)}
    common = [name for name in after if name in before]
    only_before = sorted(name for name in before if name not in after)
    only_after = sorted(name for name in after if name not in before)

    rows = []
    ratios = []
    for name in common:
        ratio, unit, b_value, a_value = speedup(before[name], after[name])
        rows.append((name, unit, b_value, a_value, ratio))
        if ratio is not None:
            ratios.append(ratio)

    if args.markdown:
        print("| benchmark | metric | before | after | speedup |")
        print("|---|---|---:|---:|---:|")
        for name, unit, b_value, a_value, ratio in rows:
            print("| %s | %s | %s | %s | %s |" %
                  (name, unit, fmt(b_value, unit), fmt(a_value, unit),
                   "-" if ratio is None else "%.2fx" % ratio))
    else:
        width = max((len(r[0]) for r in rows), default=20)
        print("%-*s  %8s  %14s  %14s  %8s" %
              (width, "benchmark", "metric", "before", "after", "speedup"))
        for name, unit, b_value, a_value, ratio in rows:
            print("%-*s  %8s  %14s  %14s  %8s" %
                  (width, name, unit, fmt(b_value, unit), fmt(a_value, unit),
                   "-" if ratio is None else "%.2fx" % ratio))

    if ratios:
        geo = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        print()
        print("geometric-mean speedup over %d common benchmarks: %.2fx"
              % (len(ratios), geo))
    if only_before:
        print("only in %s: %s" % (args.before, ", ".join(only_before)))
    if only_after:
        print("only in %s: %s" % (args.after, ", ".join(only_after)))

    if args.threshold is not None:
        floor = 1.0 - args.threshold / 100.0
        regressed = [(name, ratio) for name, _, _, _, ratio in rows
                     if ratio is not None and ratio < floor]
        if regressed:
            print()
            for name, ratio in regressed:
                print("REGRESSION: %s at %.2fx (< %.2fx)" % (name, ratio, floor))
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
