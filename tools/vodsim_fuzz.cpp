/// \file vodsim_fuzz.cpp
/// \brief Scenario fuzzer driver: randomized differential testing of the
/// engine against the invariant auditor and the reference oracle.
///
/// Runs the hand-written pathology corpus first, then `--scenarios` random
/// configurations drawn from `--seed`. Every scenario runs through the
/// engine with the auditor forced on; scenarios inside the oracle's scope
/// are additionally diffed against the naive reference simulator. On the
/// first failure the configuration is shrunk to a minimal reproducer and
/// printed as a ready-to-paste gtest case, and the process exits nonzero.
///
/// Usage:
///   vodsim_fuzz [--scenarios 500] [--seed 42] [--chaos]
///
/// With `--chaos`, random scenarios come from random_fault_scenario():
/// failure injection is always on, with brownouts / retry / correlated
/// outages / repair mixed in. CI's chaos-smoke job runs this mode under
/// ASan/UBSan with the auditor and tracing forced on.

#include <cstdio>

#include "vodsim/check/fuzzer.h"
#include "vodsim/util/cli.h"
#include "vodsim/util/rng.h"

namespace {

/// Shrinks, renders, and reports one failing configuration. Returns the
/// process exit code (always 1).
int report_failure(const vodsim::SimulationConfig& config,
                   const vodsim::FuzzResult& result, const char* origin) {
  using namespace vodsim;
  std::fprintf(stderr, "FAIL [%s] seed=%llu: %s\n", origin,
               static_cast<unsigned long long>(config.seed),
               result.failure.c_str());
  std::fprintf(stderr, "shrinking...\n");
  const SimulationConfig minimal = shrink_scenario(config);
  const FuzzResult shrunk = run_scenario(minimal);
  std::fprintf(stderr, "minimal reproducer fails with: %s\n",
               shrunk.failure.c_str());
  std::fprintf(stderr,
               "\n// Paste into tests/check_fuzz_test.cpp:\n%s\n",
               to_gtest_case(minimal, "ShrunkReproducer").c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vodsim;
  CliParser cli("vodsim_fuzz", "differential scenario fuzzer for the engine");
  cli.add_flag("scenarios", "500", "number of random scenarios after the corpus");
  cli.add_flag("seed", "42", "RNG seed for scenario generation");
  cli.add_flag("chaos", "0", "draw fault-enabled scenarios (random_fault_scenario)");
  if (!cli.parse(argc, argv)) return cli.error().empty() ? 0 : 2;

  const long scenarios = cli.get_long("scenarios");
  const bool chaos = cli.get_long("chaos") != 0;
  std::uint64_t oracle_checked = 0;
  std::uint64_t shard_checked = 0;

  const std::vector<SimulationConfig> corpus = pathology_corpus();
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const FuzzResult result = run_scenario(corpus[i]);
    if (result.oracle_checked) ++oracle_checked;
    if (result.shard_checked) ++shard_checked;
    if (!result.passed) return report_failure(corpus[i], result, "corpus");
  }
  std::printf("corpus: %zu scenarios ok\n", corpus.size());

  Rng rng(static_cast<std::uint64_t>(cli.get_long("seed")));
  for (long i = 0; i < scenarios; ++i) {
    const SimulationConfig config =
        chaos ? random_fault_scenario(rng) : random_scenario(rng);
    const FuzzResult result = run_scenario(config);
    if (result.oracle_checked) ++oracle_checked;
    if (result.shard_checked) ++shard_checked;
    if (!result.passed) {
      return report_failure(config, result, chaos ? "chaos" : "random");
    }
    if ((i + 1) % 100 == 0) {
      std::printf("%ld/%ld scenarios ok (%llu oracle-checked)\n", i + 1,
                  scenarios, static_cast<unsigned long long>(oracle_checked));
    }
  }
  std::printf(
      "done: %zu corpus + %ld random scenarios passed, %llu oracle-checked, "
      "%llu shard-checked\n",
      corpus.size(), scenarios, static_cast<unsigned long long>(oracle_checked),
      static_cast<unsigned long long>(shard_checked));
  return 0;
}
