#!/usr/bin/env python3
"""Schema-validate vodsim observability artifacts.

Usage:
    validate_trace.py [--chrome trace.json] [--jsonl trace.jsonl]
                      [--probes probes.csv]

Checks (stdlib only, so CI needs nothing beyond python3):
  * Chrome trace: valid JSON object with a `traceEvents` list; every event
    has `ph`/`name`/`ts`; async begin ("b") and end ("e") events pair up per
    (cat, id); counter ("C") events carry numeric args.
  * JSONL trace: first line declares schema vodsim-trace-v1 and an event
    count matching the remaining lines; events carry the full key set, a
    known `type`, non-decreasing `t` and strictly increasing `seq`.
  * Probe CSV: exact expected header, every field parses as a float (the
    exporter normalizes non-finite values to inf/-inf/nan, which float()
    accepts), and timestamps are non-decreasing.

Exits non-zero with a message on the first violation.
"""

import argparse
import csv
import json
import sys

PROBE_HEADER = [
    "time",
    "server",
    "committed_mbps",
    "reserved_mbps",
    "active_streams",
    "mean_buffer_fill",
    "pending_events",
    "capacity_factor",
    "retry_queue",
    "reachable",
]

JSONL_EVENT_KEYS = {"seq", "t", "type", "cat", "server", "request", "video", "a", "b"}

# Every event name the recorder can emit (obs/trace.cpp's to_string table).
# An unknown `type` means the exporter and this validator have diverged.
KNOWN_EVENT_TYPES = {
    "arrival", "admit", "reject",
    "migrate_begin", "migrate_end", "migration_search",
    "recompute", "urgent_on", "urgent_off",
    "allocation_change",
    "server_down", "server_up", "stream_dropped", "stream_recovered",
    "brownout_begin", "brownout_end", "stream_shed",
    "retry_enqueued", "retry_readmit", "retry_abandoned", "repair_planned",
    "partition_begin", "partition_end",
    "replication_begin", "replication_end",
    "buffer_full", "buffer_low", "underflow",
    "tx_complete", "playback_end", "pause", "resume",
}


def fail(message):
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def validate_chrome(path):
    with open(path) as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: expected an object with a traceEvents list")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents must be a non-empty list")
    open_spans = {}
    counters = 0
    for index, event in enumerate(events):
        for key in ("ph", "name"):
            if key not in event:
                fail(f"{path}: event {index} missing '{key}'")
        ph = event["ph"]
        if ph != "M" and "ts" not in event:
            fail(f"{path}: event {index} ({ph}) missing 'ts'")
        if ph in ("b", "e"):
            span_key = (event.get("cat"), event.get("id"))
            if ph == "b":
                open_spans[span_key] = open_spans.get(span_key, 0) + 1
            else:
                if open_spans.get(span_key, 0) <= 0:
                    fail(f"{path}: event {index} ends span {span_key} "
                         "that was never begun")
                open_spans[span_key] -= 1
        elif ph == "C":
            counters += 1
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                fail(f"{path}: counter event {index} has no args")
            for name, value in args.items():
                if value is not None and not isinstance(value, (int, float)):
                    fail(f"{path}: counter event {index} arg '{name}' "
                         "is not numeric")
    dangling = {key: n for key, n in open_spans.items() if n != 0}
    if dangling:
        fail(f"{path}: unbalanced async spans: {dangling}")
    print(f"validate_trace: {path}: {len(events)} events ok "
          f"({counters} counter samples)")


def validate_jsonl(path):
    with open(path) as handle:
        lines = [line for line in handle if line.strip()]
    if not lines:
        fail(f"{path}: empty file")
    header = json.loads(lines[0])
    if header.get("schema") != "vodsim-trace-v1":
        fail(f"{path}: first line must declare schema vodsim-trace-v1, "
             f"got {header.get('schema')!r}")
    declared = header.get("events")
    if declared != len(lines) - 1:
        fail(f"{path}: header declares {declared} events, "
             f"file has {len(lines) - 1}")
    last_t = float("-inf")
    last_seq = -1
    for number, line in enumerate(lines[1:], start=2):
        event = json.loads(line)
        missing = JSONL_EVENT_KEYS - event.keys()
        if missing:
            fail(f"{path}:{number}: missing keys {sorted(missing)}")
        if event["type"] not in KNOWN_EVENT_TYPES:
            fail(f"{path}:{number}: unknown event type {event['type']!r}")
        if event["t"] < last_t:
            fail(f"{path}:{number}: time went backwards "
                 f"({event['t']} < {last_t})")
        if event["seq"] <= last_seq:
            fail(f"{path}:{number}: seq not strictly increasing")
        last_t = event["t"]
        last_seq = event["seq"]
    print(f"validate_trace: {path}: {len(lines) - 1} events ok")


def validate_probes(path):
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            fail(f"{path}: empty file")
        if header != PROBE_HEADER:
            fail(f"{path}: header {header} != {PROBE_HEADER}")
        rows = 0
        last_time = float("-inf")
        for number, row in enumerate(reader, start=2):
            if len(row) != len(PROBE_HEADER):
                fail(f"{path}:{number}: expected {len(PROBE_HEADER)} fields, "
                     f"got {len(row)}")
            try:
                values = [float(field) for field in row]
            except ValueError as error:
                fail(f"{path}:{number}: non-numeric field: {error}")
            if values[0] < last_time:
                fail(f"{path}:{number}: time went backwards")
            last_time = values[0]
            rows += 1
    if rows == 0:
        fail(f"{path}: no probe rows")
    print(f"validate_trace: {path}: {rows} probe rows ok")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--chrome", help="Chrome tracing JSON file")
    parser.add_argument("--jsonl", help="vodsim-trace-v1 JSONL file")
    parser.add_argument("--probes", help="probe time series CSV file")
    args = parser.parse_args()
    if not (args.chrome or args.jsonl or args.probes):
        parser.error("nothing to validate; pass --chrome/--jsonl/--probes")
    if args.chrome:
        validate_chrome(args.chrome)
    if args.jsonl:
        validate_jsonl(args.jsonl)
    if args.probes:
        validate_probes(args.probes)
    print("validate_trace: all artifacts ok")


if __name__ == "__main__":
    main()
