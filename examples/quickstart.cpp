/// \file quickstart.cpp
/// \brief Minimal vodsim walkthrough: configure the paper's small system,
/// run one trial, and print the headline metrics.
///
/// Usage:
///   quickstart [--theta 0.271] [--hours 60] [--staging 0.2]
///              [--migration true] [--seed 1]
///              [--trace-out trace.json] [--probe-out probes.csv]
///
/// `--trace-out trace.json` records every admission/migration/stream event
/// and writes a Chrome tracing file — open chrome://tracing (or
/// https://ui.perfetto.dev) and load it to scrub through the run.

#include <fstream>
#include <iostream>

#include "vodsim/engine/vod_simulation.h"
#include "vodsim/obs/exporters.h"
#include "vodsim/util/cli.h"
#include "vodsim/util/table.h"

int main(int argc, char** argv) {
  vodsim::CliParser cli("quickstart",
                        "one trial of the small cluster-VoD system");
  cli.add_flag("theta", "0.271", "Zipf skew (1 = uniform, <0 = extreme)");
  cli.add_flag("hours", "60", "simulated hours");
  cli.add_flag("staging", "0.2", "client staging buffer as a fraction of the "
                                 "average video size");
  cli.add_flag("migration", "true", "enable dynamic request migration");
  cli.add_flag("fast-math", "false",
               "batched SoA fluid advance (counts identical to exact mode, "
               "fluid aggregates within 1e-9)");
  cli.add_flag("seed", "1", "RNG seed");
  cli.add_flag("trace-out", "", "write a chrome://tracing JSON trace here");
  cli.add_flag("probe-out", "", "write the probe time series CSV here");
  if (!cli.parse(argc, argv)) return cli.error().empty() ? 0 : 2;

  // 1. Describe the cluster: the paper's small system (5 servers x
  //    100 Mb/s, 10-30 minute clips at 3 Mb/s).
  vodsim::SimulationConfig config;
  config.system = vodsim::SystemConfig::small_system();

  // 2. Client-side staging enables semi-continuous transmission.
  config.client.staging_fraction = cli.get_double("staging");
  config.client.receive_bandwidth = 30.0;  // Mb/s, as in the paper

  // 3. Policies: even placement, least-loaded assignment, and (optionally)
  //    dynamic request migration with the paper's limits.
  config.placement.kind = vodsim::PlacementKind::kEven;
  config.admission.migration.enabled = cli.get_bool("migration");
  config.admission.migration.max_chain_length = 1;
  config.admission.migration.max_hops_per_request = 1;

  // 4. Workload: Poisson arrivals at 100% offered load, Zipf popularity.
  config.zipf_theta = cli.get_double("theta");
  config.duration = vodsim::hours(cli.get_double("hours"));
  config.warmup = vodsim::hours(cli.get_double("hours") / 12.0);
  config.seed = static_cast<std::uint64_t>(cli.get_long("seed"));
  config.fast_math = cli.get_bool("fast-math");

  // Optional observability: tracing observes only, so these artifacts come
  // from the exact run reported below.
  const std::string trace_out = cli.get_string("trace-out");
  const std::string probe_out = cli.get_string("probe-out");
  config.trace.enabled = !trace_out.empty();
  config.probe.enabled = !probe_out.empty();

  // 5. Run.
  vodsim::VodSimulation simulation(config);
  const vodsim::Metrics& metrics = simulation.run();

  std::cout << "vodsim quickstart — " << config.system.name << " system, theta="
            << config.zipf_theta << ", staging="
            << config.client.staging_fraction * 100.0 << "%, migration="
            << (config.admission.migration.enabled ? "on" : "off") << "\n\n";

  vodsim::TablePrinter table({"metric", "value"});
  table.add_row({"bandwidth utilization", vodsim::TablePrinter::num(metrics.utilization())});
  table.add_row({"rejection ratio", vodsim::TablePrinter::num(metrics.rejection_ratio())});
  table.add_row({"arrivals (window)", std::to_string(metrics.arrivals())});
  table.add_row({"accepted", std::to_string(metrics.accepts())});
  table.add_row({"  via migration", std::to_string(metrics.accepts_via_migration())});
  table.add_row({"rejected", std::to_string(metrics.rejects())});
  table.add_row({"migration steps", std::to_string(metrics.migration_steps())});
  table.add_row({"completed playbacks", std::to_string(metrics.completions())});
  table.add_row({"continuity violations",
                 std::to_string(simulation.continuity_violations())});
  table.print(std::cout);

  std::cout << "\nReplica placement: " << simulation.placement_result().placed_total
            << " copies of " << simulation.catalog().size() << " videos across "
            << simulation.servers().size() << " servers (shortfall "
            << simulation.placement_result().shortfall << ")\n";

  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    vodsim::write_chrome_trace(out, *simulation.trace(), simulation.probes(),
                               simulation.servers().size());
    std::cout << "\nwrote Chrome trace to " << trace_out
              << " — load it in chrome://tracing\n";
  }
  if (!probe_out.empty()) {
    std::ofstream out(probe_out);
    vodsim::write_probe_csv(out, *simulation.probes());
    std::cout << "wrote probe series to " << probe_out << "\n";
  }
  return 0;
}
