/// \file movie_service.cpp
/// \brief Capacity planning for a feature-film service (the paper's large
/// system): how much load can the cluster take while keeping the rejection
/// ratio under an SLO, with and without semi-continuous transmission?
///
/// This is the workload the paper's introduction motivates: a video-on-
/// demand operator serving 1-2 hour movies to the desktop. The example
/// sweeps the offered load and reports the highest load meeting the SLO.
///
/// Usage:
///   movie_service [--slo 0.02] [--hours 60] [--theta 0.271] [--trials 2]

#include <iostream>

#include "vodsim/engine/experiment.h"
#include "vodsim/util/cli.h"
#include "vodsim/util/table.h"

int main(int argc, char** argv) {
  vodsim::CliParser cli("movie_service",
                        "capacity planning for a feature-film VoD cluster");
  cli.add_flag("slo", "0.02", "maximum acceptable rejection ratio");
  cli.add_flag("hours", "60", "simulated hours per trial");
  cli.add_flag("theta", "0.271", "Zipf skew of movie popularity");
  cli.add_flag("trials", "2", "trials per load level");
  if (!cli.parse(argc, argv)) return cli.error().empty() ? 0 : 2;

  const double slo = cli.get_double("slo");
  const int trials = static_cast<int>(cli.get_long("trials"));

  auto base = [&](bool semi_continuous) {
    vodsim::SimulationConfig config;
    config.system = vodsim::SystemConfig::large_system();
    config.zipf_theta = cli.get_double("theta");
    config.duration = vodsim::hours(cli.get_double("hours"));
    config.warmup = config.duration / 12.0;
    if (semi_continuous) {
      config.client.staging_fraction = 0.2;
      config.client.receive_bandwidth = 30.0;
      config.admission.migration.enabled = true;
      config.admission.migration.max_hops_per_request = 1;
    }
    return config;
  };

  const std::vector<double> loads = {0.80, 0.85, 0.90, 0.95, 1.00, 1.05, 1.10};

  std::cout << "movie_service — paper's large system, rejection SLO "
            << vodsim::TablePrinter::pct(slo) << "\n\n";

  for (bool semi : {false, true}) {
    std::vector<vodsim::SimulationConfig> configs;
    for (double load : loads) {
      auto config = base(semi);
      config.load_factor = load;
      configs.push_back(config);
    }
    vodsim::ExperimentRunner runner;
    const auto points = runner.run_sweep(configs, trials);

    vodsim::TablePrinter table({"offered load", "utilization", "rejection",
                                "meets SLO"});
    double best_load = 0.0;
    for (std::size_t i = 0; i < loads.size(); ++i) {
      const bool ok = points[i].rejection_ratio.mean() <= slo;
      if (ok) best_load = loads[i];
      table.add_row({vodsim::TablePrinter::pct(loads[i], 0),
                     vodsim::format_mean_ci(points[i].utilization),
                     vodsim::format_mean_ci(points[i].rejection_ratio),
                     ok ? "yes" : "no"});
    }
    std::cout << "-- " << (semi ? "semi-continuous (20% staging + DRM)"
                                : "continuous transmission (baseline)")
              << " --\n";
    table.print(std::cout);
    std::cout << "  highest load meeting the SLO: "
              << vodsim::TablePrinter::pct(best_load, 0) << "\n\n";
  }
  std::cout << "Semi-continuous transmission lets the same hardware carry a "
               "higher offered load at the same rejection SLO.\n";
  return 0;
}
