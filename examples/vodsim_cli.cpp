/// \file vodsim_cli.cpp
/// \brief Full command-line front-end: every engine knob on flags.
///
/// Runs one or more trials of an arbitrary configuration and prints a
/// complete metrics report. Useful for exploring the design space without
/// writing code, and as a reference for what the library exposes.
///
/// Examples:
///   vodsim_cli --system large --theta 0 --staging 0.2 --migration true
///   vodsim_cli --servers 8 --bandwidth 200 --videos 400 --scheduler lftf
///   vodsim_cli --system small --buffer-aware true --scheduler intermittent

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "vodsim/engine/experiment.h"
#include "vodsim/engine/vod_simulation.h"
#include "vodsim/obs/exporters.h"
#include "vodsim/util/cli.h"
#include "vodsim/util/table.h"

namespace {

/// Mirrors VodSimulation::build_world's engine-mode resolution (flags, env
/// overrides, sharded fast-by-default) so the banner reports the mode the
/// engine will actually run, not just the flag values.
bool resolved_fast_math(const vodsim::SimulationConfig& config) {
  const auto env_set = [](const char* name) {
    const char* const value = std::getenv(name);
    return value != nullptr && std::strtol(value, nullptr, 10) != 0;
  };
  const bool exact_requested =
      config.exact_math || env_set("VODSIM_EXACT_MATH");
  return !exact_requested && (config.fast_math ||
                              env_set("VODSIM_FAST_MATH") || config.shards > 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vodsim;
  CliParser cli("vodsim_cli", "cluster-VoD simulator, all knobs exposed");
  // System.
  cli.add_flag("system", "small", "preset: small | large | custom");
  cli.add_flag("servers", "5", "custom: number of servers");
  cli.add_flag("bandwidth", "100", "custom: per-server bandwidth, Mb/s");
  cli.add_flag("storage-gb", "100", "custom: per-server disk, GB");
  cli.add_flag("videos", "300", "custom: catalog size");
  cli.add_flag("min-minutes", "10", "custom: shortest video, minutes");
  cli.add_flag("max-minutes", "30", "custom: longest video, minutes");
  cli.add_flag("copies", "2.2", "average replicas per video");
  cli.add_flag("view-bw", "3", "playback rate, Mb/s");
  // Client.
  cli.add_flag("staging", "0.2", "client staging buffer (fraction of avg video)");
  cli.add_flag("receive-bw", "30", "client receive cap, Mb/s (0 = unlimited)");
  // Policies.
  cli.add_flag("placement", "even",
               "even | partial | predictive | bsr | domain_spread");
  cli.add_flag("assignment", "least-loaded",
               "least-loaded | random | first-fit | most-loaded");
  cli.add_flag("scheduler", "eftf",
               "eftf | continuous | proportional | lftf | intermittent");
  cli.add_flag("migration", "true", "dynamic request migration on/off");
  cli.add_flag("chain", "1", "migration chain length");
  cli.add_flag("hops", "1", "max hops per request (-1 = unlimited)");
  cli.add_flag("victim", "first-fit",
               "first-fit | least-remaining | most-remaining | most-buffered");
  cli.add_flag("switch-latency", "0", "migration stream pause, seconds");
  cli.add_flag("buffer-aware", "false",
               "aggressive admission (needs --scheduler intermittent)");
  // Extensions.
  cli.add_flag("replication", "false", "dynamic replication on rejection bursts");
  cli.add_flag("pauses-per-hour", "0", "viewer pause rate (0 = off)");
  cli.add_flag("mean-pause", "120", "mean pause length, seconds");
  cli.add_flag("mtbf-hours", "0", "server MTBF in hours (0 = no failures)");
  cli.add_flag("mttr-hours", "1", "server MTTR in hours");
  cli.add_flag("min-dwell", "0", "flap guard: min seconds between fault flips");
  cli.add_flag("brownout-hours", "0",
               "mean hours between partial capacity losses (0 = off)");
  cli.add_flag("brownout-minutes", "10", "mean brownout length, minutes");
  cli.add_flag("brownout-factor", "0.5", "surviving capacity fraction, (0,1)");
  cli.add_flag("correlated-group", "0",
               "servers per correlated failure group (0 = off)");
  cli.add_flag("correlated-hours", "500", "mean hours between group outages");
  cli.add_flag("retry", "false", "retry queue: re-admit sheds/orphans/rejects");
  cli.add_flag("retry-queue", "64", "retry queue capacity");
  cli.add_flag("retry-attempts", "6", "retry attempts before abandoning");
  cli.add_flag("retry-backoff", "5", "base retry backoff, seconds (doubles)");
  cli.add_flag("repair-hours", "0",
               "re-replicate servers down longer than this (0 = off)");
  // Failure-domain topology (server -> rack -> zone tree).
  cli.add_flag("racks", "0", "failure-domain racks (0 = no topology)");
  cli.add_flag("zones", "1", "failure-domain zones (needs --racks)");
  cli.add_flag("rack-outage-hours", "0",
               "mean hours between whole-rack outages, per rack (0 = off)");
  cli.add_flag("rack-outage-minutes", "30", "mean rack outage length, minutes");
  cli.add_flag("zone-brownout-hours", "0",
               "mean hours between zone-wide brownouts, per zone (0 = off)");
  cli.add_flag("zone-brownout-minutes", "15",
               "mean zone brownout length, minutes");
  cli.add_flag("zone-brownout-factor", "0.5",
               "surviving capacity fraction during a zone brownout, (0,1)");
  cli.add_flag("partition-hours", "0",
               "mean hours between rack network partitions, per rack (0 = "
               "off; servers stay up but unreachable)");
  cli.add_flag("partition-minutes", "5", "mean partition length, minutes");
  cli.add_flag("glitch-dedupe", "1",
               "per-stream glitch dedupe window, seconds (0 = count every "
               "underflow as its own interruption)");
  cli.add_flag("drift-hours", "0", "popularity drift period (0 = static)");
  // Workload.
  cli.add_flag("theta", "0.271", "Zipf skew (1 uniform .. -1.5 extreme)");
  cli.add_flag("load", "1.0", "offered load as a fraction of capacity");
  cli.add_flag("hours", "60", "simulated hours");
  cli.add_flag("warmup-hours", "5", "discarded warmup");
  cli.add_flag("trials", "1", "independent trials (mean ± 95% CI if > 1)");
  cli.add_flag("seed", "42", "master seed");
  cli.add_flag("fast-math", "false",
               "batched SoA fluid advance (reproducible; fluid aggregates "
               "within 1e-9 of exact mode, counts identical); the default "
               "when --shards > 1");
  cli.add_flag("exact-math", "false",
               "opt sharded runs out of the fast-math default (no-op at "
               "--shards 1, where exact is already the default)");
  cli.add_flag("shards", "1",
               "server-group shards draining predicted events in parallel "
               "(1 = classic single-queue engine; fixed shard count is "
               "bit-reproducible at any thread count)");
  cli.add_flag("shard-threads", "0",
               "drain worker threads for --shards > 1 (0 = all cores; "
               "thread count never changes results)");
  // Observability (re-runs trial 0 with tracing attached; observe-only, so
  // the traced run is bit-identical to the reported one).
  cli.add_flag("trace-out", "", "write a chrome://tracing JSON trace here");
  cli.add_flag("trace-jsonl", "", "write a vodsim-trace-v1 JSONL trace here");
  cli.add_flag("trace-categories", "all",
               "categories to record: all, or e.g. admission,migration");
  cli.add_flag("probe-out", "", "write the probe time series CSV here");
  cli.add_flag("probe-period", "60", "probe sampling period, seconds");
  cli.add_flag("csv-out", "", "write per-trial results (incl. bound/gap columns) here");
  if (!cli.parse(argc, argv)) return cli.error().empty() ? 0 : 2;

  SimulationConfig config;
  const std::string system = cli.get_string("system");
  if (system == "small") {
    config.system = SystemConfig::small_system();
  } else if (system == "large") {
    config.system = SystemConfig::large_system();
  } else {
    config.system.name = "custom";
    config.system.num_servers = static_cast<int>(cli.get_long("servers"));
    config.system.server_bandwidth = cli.get_double("bandwidth");
    config.system.server_storage = gigabytes(cli.get_double("storage-gb"));
    config.system.num_videos = static_cast<std::size_t>(cli.get_long("videos"));
    config.system.video_min_duration = minutes(cli.get_double("min-minutes"));
    config.system.video_max_duration = minutes(cli.get_double("max-minutes"));
  }
  config.system.avg_copies = cli.get_double("copies");
  config.system.view_bandwidth = cli.get_double("view-bw");

  config.client.staging_fraction = cli.get_double("staging");
  const double receive = cli.get_double("receive-bw");
  config.client.receive_bandwidth =
      receive > 0.0 ? receive : std::numeric_limits<double>::infinity();

  config.placement.kind = placement_kind_from_string(cli.get_string("placement"));
  config.admission.assignment =
      assignment_kind_from_string(cli.get_string("assignment"));
  config.scheduler = scheduler_kind_from_string(cli.get_string("scheduler"));
  config.admission.migration.enabled = cli.get_bool("migration");
  config.admission.migration.max_chain_length = static_cast<int>(cli.get_long("chain"));
  config.admission.migration.max_hops_per_request =
      static_cast<int>(cli.get_long("hops"));
  config.admission.migration.victim =
      victim_strategy_from_string(cli.get_string("victim"));
  config.admission.migration.switch_latency = cli.get_double("switch-latency");
  config.admission.buffer_aware = cli.get_bool("buffer-aware");

  config.replication.enabled = cli.get_bool("replication");
  if (cli.get_double("pauses-per-hour") > 0.0) {
    config.interactivity.enabled = true;
    config.interactivity.pauses_per_hour = cli.get_double("pauses-per-hour");
    config.interactivity.mean_pause_duration = cli.get_double("mean-pause");
  }
  if (cli.get_double("mtbf-hours") > 0.0) {
    config.failure.enabled = true;
    config.failure.mean_time_between_failures = hours(cli.get_double("mtbf-hours"));
    config.failure.mean_time_to_repair = hours(cli.get_double("mttr-hours"));
    config.failure.min_dwell = cli.get_double("min-dwell");
    if (cli.get_double("brownout-hours") > 0.0) {
      config.failure.brownout.enabled = true;
      config.failure.brownout.mean_time_between =
          hours(cli.get_double("brownout-hours"));
      config.failure.brownout.mean_duration =
          minutes(cli.get_double("brownout-minutes"));
      config.failure.brownout.capacity_factor = cli.get_double("brownout-factor");
    }
    if (cli.get_long("correlated-group") > 0) {
      config.failure.correlated.enabled = true;
      config.failure.correlated.group_size =
          static_cast<int>(cli.get_long("correlated-group"));
      config.failure.correlated.mean_time_between =
          hours(cli.get_double("correlated-hours"));
    }
  }
  if (cli.get_bool("retry")) {
    config.failure.retry.enabled = true;
    config.failure.retry.max_queue =
        static_cast<std::size_t>(cli.get_long("retry-queue"));
    config.failure.retry.max_attempts =
        static_cast<int>(cli.get_long("retry-attempts"));
    config.failure.retry.backoff_base = cli.get_double("retry-backoff");
    config.failure.retry.backoff_cap =
        std::max(config.failure.retry.backoff_cap,
                 config.failure.retry.backoff_base);
  }
  if (cli.get_double("repair-hours") > 0.0) {
    config.failure.repair.enabled = true;
    config.failure.repair.down_threshold = hours(cli.get_double("repair-hours"));
  }
  if (cli.get_long("racks") > 0) {
    config.topology.enabled = true;
    config.topology.racks = static_cast<int>(cli.get_long("racks"));
    config.topology.zones = static_cast<int>(cli.get_long("zones"));
    const bool domain_faults = cli.get_double("rack-outage-hours") > 0.0 ||
                               cli.get_double("zone-brownout-hours") > 0.0 ||
                               cli.get_double("partition-hours") > 0.0;
    if (domain_faults && !config.failure.enabled) {
      // Domain faults ride on the fault subsystem; arm it with per-server
      // crashes pushed past any realistic horizon so only the requested
      // domain episodes fire.
      config.failure.enabled = true;
      config.failure.mean_time_between_failures = hours(1e9);
    }
    if (cli.get_double("rack-outage-hours") > 0.0) {
      config.failure.domains.rack_outage.enabled = true;
      config.failure.domains.rack_outage.mean_time_between =
          hours(cli.get_double("rack-outage-hours"));
      config.failure.domains.rack_outage.mean_duration =
          minutes(cli.get_double("rack-outage-minutes"));
    }
    if (cli.get_double("zone-brownout-hours") > 0.0) {
      config.failure.domains.zone_brownout.enabled = true;
      config.failure.domains.zone_brownout.mean_time_between =
          hours(cli.get_double("zone-brownout-hours"));
      config.failure.domains.zone_brownout.mean_duration =
          minutes(cli.get_double("zone-brownout-minutes"));
      config.failure.domains.zone_brownout.capacity_factor =
          cli.get_double("zone-brownout-factor");
    }
    if (cli.get_double("partition-hours") > 0.0) {
      config.failure.domains.partition.enabled = true;
      config.failure.domains.partition.mean_time_between =
          hours(cli.get_double("partition-hours"));
      config.failure.domains.partition.mean_duration =
          minutes(cli.get_double("partition-minutes"));
    }
  }
  config.failure.glitch_dedupe_window = cli.get_double("glitch-dedupe");
  if (cli.get_double("drift-hours") > 0.0) {
    config.drift.enabled = true;
    config.drift.period = hours(cli.get_double("drift-hours"));
    config.drift.step = std::max<std::size_t>(1, config.system.num_videos / 10);
  }

  config.zipf_theta = cli.get_double("theta");
  config.load_factor = cli.get_double("load");
  config.duration = hours(cli.get_double("hours"));
  config.warmup = hours(cli.get_double("warmup-hours"));
  config.seed = static_cast<std::uint64_t>(cli.get_long("seed"));
  config.fast_math = cli.get_bool("fast-math");
  config.exact_math = cli.get_bool("exact-math");
  config.shards = static_cast<int>(cli.get_long("shards"));
  config.shard_threads = static_cast<int>(cli.get_long("shard-threads"));

  try {
    config.validate();
  } catch (const std::exception& error) {
    std::cerr << "invalid configuration: " << error.what() << "\n";
    return 2;
  }

  const int trials = static_cast<int>(cli.get_long("trials"));
  ExperimentRunner runner;
  const ExperimentPoint point = runner.run_point(config, trials, config.seed);

  std::cout << "vodsim_cli — " << config.system.name << " system, "
            << config.system.num_servers << " servers x "
            << config.system.server_bandwidth << " Mb/s, theta "
            << config.zipf_theta << ", " << trials << " trial(s) x "
            << cli.get_double("hours") << " h"
            << (resolved_fast_math(config) ? " [fast-math]" : "");
  if (config.shards > 1) std::cout << " [shards=" << config.shards << "]";
  std::cout << "\n\n";

  // Analytic achievability envelope (analysis/bounds.h): bounds are computed
  // per trial world (catalog/placement vary with the trial seed), so report
  // their mean alongside the measured means and the gap accumulators.
  Accumulator bound_utilization;
  Accumulator bound_rejection;
  for (const TrialResult& trial : point.trials) {
    bound_utilization.add(trial.bound_utilization);
    bound_rejection.add(trial.bound_rejection);
  }

  TablePrinter table({"metric", "value"});
  table.add_row({"utilization", format_mean_ci(point.utilization)});
  table.add_row({"utilization bound (UB)", format_mean_ci(bound_utilization)});
  table.add_row({"utilization gap", format_mean_ci(point.utilization_gap)});
  table.add_row({"rejection ratio", format_mean_ci(point.rejection_ratio)});
  table.add_row({"rejection bound (LB)", format_mean_ci(bound_rejection)});
  table.add_row({"rejection gap", format_mean_ci(point.rejection_gap)});
  table.add_row(
      {"migrations per arrival", format_mean_ci(point.migrations_per_arrival)});
  std::uint64_t underflows = 0;
  std::uint64_t drops = 0;
  std::uint64_t arrivals = 0;
  for (const TrialResult& trial : point.trials) {
    underflows += trial.underflow_events;
    drops += trial.drops;
    arrivals += trial.arrivals;
  }
  table.add_row({"arrivals (all trials)", std::to_string(arrivals)});
  table.add_row({"dropped streams", std::to_string(drops)});
  table.add_row({"continuity violations", std::to_string(underflows)});

  // Resilience block: only interesting when some fault machinery is on.
  if (config.failure.enabled || !config.scripted_faults.empty() ||
      config.failure.retry.enabled) {
    Accumulator availability;
    double glitch_seconds = 0.0;
    std::uint64_t downs = 0, sheds = 0, enqueued = 0, readmitted = 0,
                  abandoned = 0, repairs = 0;
    Accumulator recovery;
    for (const TrialResult& trial : point.trials) {
      availability.add(trial.availability);
      glitch_seconds += trial.glitch_seconds;
      downs += trial.server_downs;
      sheds += trial.sheds;
      enqueued += trial.retry_enqueued;
      readmitted += trial.readmissions;
      abandoned += trial.retry_abandoned;
      repairs += trial.repairs;
      if (trial.server_downs > 0) recovery.add(trial.mean_recovery_time);
    }
    table.add_row({"availability", format_mean_ci(availability)});
    table.add_row({"glitch seconds (all trials)", std::to_string(glitch_seconds)});
    table.add_row({"server down episodes", std::to_string(downs)});
    table.add_row({"streams shed (brownouts)", std::to_string(sheds)});
    table.add_row({"retry enqueued", std::to_string(enqueued)});
    table.add_row({"retry readmitted", std::to_string(readmitted)});
    table.add_row({"retry abandoned", std::to_string(abandoned)});
    table.add_row({"repair replications", std::to_string(repairs)});
    if (recovery.count() > 0) {
      table.add_row({"mean recovery time (s)", format_mean_ci(recovery)});
    }

    // Failure-domain block: per-rack/zone availability and glitch budget,
    // plus the partition episode counters. Trials share a topology shape,
    // so per-domain values aggregate across trials index by index.
    if (config.topology.enabled) {
      std::uint64_t partitions = 0, heals = 0;
      Accumulator partition_time;
      for (const TrialResult& trial : point.trials) {
        partitions += trial.partitions;
        heals += trial.partition_heals;
        if (trial.partition_heals > 0) partition_time.add(trial.mean_partition_time);
      }
      table.add_row({"partition episodes", std::to_string(partitions)});
      table.add_row({"partition heals", std::to_string(heals)});
      if (partition_time.count() > 0) {
        table.add_row(
            {"mean partition time (s)", format_mean_ci(partition_time)});
      }
      const std::size_t racks =
          point.trials.empty() ? 0 : point.trials.front().rack_availability.size();
      for (std::size_t r = 0; r < racks; ++r) {
        Accumulator avail;
        double glitch = 0.0;
        for (const TrialResult& trial : point.trials) {
          if (r < trial.rack_availability.size()) {
            avail.add(trial.rack_availability[r]);
            glitch += trial.rack_glitch_seconds[r];
          }
        }
        char label[48];
        std::snprintf(label, sizeof(label), "rack %zu availability", r);
        table.add_row({label, format_mean_ci(avail)});
        std::snprintf(label, sizeof(label), "rack %zu glitch seconds", r);
        table.add_row({label, std::to_string(glitch)});
      }
      const std::size_t zones =
          point.trials.empty() ? 0 : point.trials.front().zone_availability.size();
      // A single zone repeats the whole-cluster row; only print a real split.
      for (std::size_t z = 0; zones > 1 && z < zones; ++z) {
        Accumulator avail;
        for (const TrialResult& trial : point.trials) {
          if (z < trial.zone_availability.size()) {
            avail.add(trial.zone_availability[z]);
          }
        }
        char label[48];
        std::snprintf(label, sizeof(label), "zone %zu availability", z);
        table.add_row({label, format_mean_ci(avail)});
      }
    }
  }

  // Sharded-engine block: the coordinator/shard event split measures the
  // run's serial fraction — the Amdahl ceiling for this exact workload.
  if (config.shards > 1) {
    std::uint64_t coordinator = 0, sharded = 0;
    for (const TrialResult& trial : point.trials) {
      coordinator += trial.coordinator_events;
      sharded += trial.shard_events;
    }
    const std::uint64_t total = coordinator + sharded;
    table.add_row({"coordinator events", std::to_string(coordinator)});
    table.add_row({"shard events", std::to_string(sharded)});
    char frac[32];
    std::snprintf(frac, sizeof(frac), "%.4f",
                  total > 0 ? static_cast<double>(coordinator) /
                                  static_cast<double>(total)
                            : 1.0);
    table.add_row({"serial fraction (Amdahl)", frac});
  }
  table.print(std::cout);

  const std::string csv_out = cli.get_string("csv-out");
  if (!csv_out.empty()) {
    std::ofstream out(csv_out);
    if (!out) {
      std::cerr << "cannot write " << csv_out << "\n";
    } else {
      write_sweep_csv(out, {config.system.name}, {point});
      std::cout << "\nwrote per-trial CSV (with bound/gap columns) to "
                << csv_out << "\n";
    }
  }

  // Observability artifacts: re-run trial 0 with the recorder/probes
  // attached. Tracing is observe-only, so this run is bit-identical to the
  // trial reported above.
  const std::string trace_out = cli.get_string("trace-out");
  const std::string trace_jsonl = cli.get_string("trace-jsonl");
  const std::string probe_out = cli.get_string("probe-out");
  if (!trace_out.empty() || !trace_jsonl.empty() || !probe_out.empty()) {
    SimulationConfig traced = config;
    traced.seed = ExperimentRunner::derive_seed(config.seed, 0);
    traced.trace.enabled = !trace_out.empty() || !trace_jsonl.empty();
    traced.trace.categories =
        parse_trace_categories(cli.get_string("trace-categories"));
    traced.probe.enabled = !probe_out.empty();
    traced.probe.period = cli.get_double("probe-period");

    VodSimulation simulation(traced);
    simulation.run();

    auto open = [](const std::string& path) {
      std::ofstream out(path);
      if (!out) std::cerr << "cannot write " << path << "\n";
      return out;
    };
    std::cout << "\n";
    if (!trace_out.empty()) {
      if (auto out = open(trace_out)) {
        write_chrome_trace(out, *simulation.trace(), simulation.probes(),
                           simulation.servers().size());
        std::cout << "wrote Chrome trace (load in chrome://tracing) to "
                  << trace_out << "\n";
      }
    }
    if (!trace_jsonl.empty()) {
      if (auto out = open(trace_jsonl)) {
        write_trace_jsonl(out, *simulation.trace());
        std::cout << "wrote JSONL trace to " << trace_jsonl << "\n";
      }
    }
    if (!probe_out.empty()) {
      if (simulation.probes() == nullptr) {
        // Sharded runs drain per-stream events in parallel shard queues, so
        // the engine has no global event boundary to sample on and leaves
        // probes detached (vod_simulation.cpp build_world).
        std::cout << "note: probes are unavailable with --shards > 1; "
                     "no probe CSV written\n";
      } else if (auto out = open(probe_out)) {
        write_probe_csv(out, *simulation.probes());
        std::cout << "wrote probe series to " << probe_out << "\n";
      }
    }
    if (simulation.trace() != nullptr && simulation.trace()->dropped() > 0) {
      std::cout << "note: ring dropped " << simulation.trace()->dropped()
                << " events; raise VODSIM_TRACE_CAPACITY or narrow "
                   "--trace-categories\n";
    }
  }
  return 0;
}
