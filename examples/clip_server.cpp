/// \file clip_server.cpp
/// \brief A short-clip service (the paper's small system) under shifting
/// demand, exercising traces for paired what-if analysis.
///
/// Scenario: an intranet clip server (training videos, news clips) where
/// what is popular changes every few hours. The example records ONE arrival
/// trace and replays it under four configurations, so differences are
/// attributable to policy alone — the workflow a capacity engineer would
/// use with production logs. It also demonstrates saving/loading traces.
///
/// Usage:
///   clip_server [--hours 40] [--theta 0.0] [--drift-hours 4]
///               [--save-trace /tmp/clips.csv]

#include <fstream>
#include <iostream>

#include "vodsim/engine/vod_simulation.h"
#include "vodsim/util/cli.h"
#include "vodsim/util/table.h"
#include "vodsim/workload/trace.h"

int main(int argc, char** argv) {
  using namespace vodsim;
  CliParser cli("clip_server", "short-clip service under demand drift");
  cli.add_flag("hours", "40", "simulated hours");
  cli.add_flag("theta", "0.0", "Zipf skew of clip popularity");
  cli.add_flag("drift-hours", "4", "how often the popular head rotates");
  cli.add_flag("save-trace", "", "optional path to save the arrival trace CSV");
  if (!cli.parse(argc, argv)) return cli.error().empty() ? 0 : 2;

  SimulationConfig base;
  base.system = SystemConfig::small_system();
  base.zipf_theta = cli.get_double("theta");
  base.duration = hours(cli.get_double("hours"));
  base.warmup = base.duration / 10.0;
  base.client.receive_bandwidth = 30.0;
  base.drift.enabled = true;
  base.drift.period = hours(cli.get_double("drift-hours"));
  base.drift.step = base.system.num_videos / 10;

  // Record one drifting arrival stream; every configuration replays it.
  DriftingZipfPopularity popularity(base.system.num_videos, base.zipf_theta,
                                    base.drift.period, base.drift.step);
  RequestGenerator generator(PoissonProcess(base.arrival_rate()), popularity,
                             /*seed=*/2024);
  const RequestTrace trace = RequestTrace::record_until(generator, base.duration);
  std::cout << "recorded " << trace.size() << " arrivals over "
            << cli.get_double("hours") << " h (drift every "
            << cli.get_double("drift-hours") << " h)\n";

  const std::string trace_path = cli.get_string("save-trace");
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    trace.save(out);
    std::cout << "trace saved to " << trace_path << "\n";
  }
  std::cout << "\n";

  struct Scenario {
    std::string label;
    bool staging;
    bool migration;
  };
  const std::vector<Scenario> scenarios = {
      {"continuous, no DRM", false, false},
      {"20% staging only", true, false},
      {"DRM only", false, true},
      {"20% staging + DRM", true, true},
  };

  TablePrinter table({"configuration", "utilization", "rejection", "migr steps"});
  for (const Scenario& scenario : scenarios) {
    SimulationConfig config = base;
    config.client.staging_fraction = scenario.staging ? 0.2 : 0.0;
    config.admission.migration.enabled = scenario.migration;
    config.admission.migration.max_hops_per_request = 1;
    VodSimulation simulation(config, trace);
    const Metrics& metrics = simulation.run();
    table.add_row({scenario.label, TablePrinter::num(metrics.utilization()),
                   TablePrinter::num(metrics.rejection_ratio()),
                   std::to_string(metrics.migration_steps())});
  }
  table.print(std::cout);
  std::cout << "\nSame arrivals in every row (trace replay): the deltas are "
               "pure policy effects. Even placement needs no popularity "
               "forecast despite the drifting demand.\n";
  return 0;
}
