/// \file fault_tolerance_demo.cpp
/// \brief DRM as a fault-tolerance mechanism (paper §3.1 remark).
///
/// Injects server failures into the small system and contrasts dropping the
/// failed node's streams against migrating them to surviving replica
/// holders. Prints a per-event narrative for one seed so the mechanism is
/// visible, then summary statistics.
///
/// Usage:
///   fault_tolerance_demo [--mtbf-hours 8] [--mttr-hours 1] [--hours 40]

#include <iostream>

#include "vodsim/engine/vod_simulation.h"
#include "vodsim/util/cli.h"
#include "vodsim/util/table.h"

int main(int argc, char** argv) {
  using namespace vodsim;
  CliParser cli("fault_tolerance_demo", "stream survival across server failures");
  cli.add_flag("mtbf-hours", "8", "mean time between failures per server");
  cli.add_flag("mttr-hours", "1", "mean time to repair");
  cli.add_flag("hours", "40", "simulated hours");
  cli.add_flag("seed", "5", "RNG seed");
  if (!cli.parse(argc, argv)) return cli.error().empty() ? 0 : 2;

  SimulationConfig base;
  base.system = SystemConfig::small_system();
  base.zipf_theta = 0.271;
  base.duration = hours(cli.get_double("hours"));
  base.warmup = base.duration / 10.0;
  base.client.staging_fraction = 0.2;
  base.client.receive_bandwidth = 30.0;
  base.admission.migration.enabled = true;
  base.admission.migration.max_hops_per_request = 1;
  base.failure.enabled = true;
  base.failure.mean_time_between_failures = hours(cli.get_double("mtbf-hours"));
  base.failure.mean_time_to_repair = hours(cli.get_double("mttr-hours"));
  base.seed = static_cast<std::uint64_t>(cli.get_long("seed"));

  std::cout << "fault_tolerance_demo — " << base.system.num_servers
            << " servers, per-server MTBF " << cli.get_double("mtbf-hours")
            << " h, MTTR " << cli.get_double("mttr-hours") << " h, "
            << cli.get_double("hours") << " simulated hours\n\n";

  TablePrinter table({"recovery policy", "accepted", "completed", "dropped",
                      "utilization", "continuity violations"});
  for (bool recover : {false, true}) {
    SimulationConfig config = base;
    config.failure.recover_via_migration = recover;
    VodSimulation simulation(config);
    const Metrics& metrics = simulation.run();
    table.add_row({recover ? "migrate to replica holders" : "drop streams",
                   std::to_string(metrics.accepts()),
                   std::to_string(metrics.completions()),
                   std::to_string(metrics.drops()),
                   TablePrinter::num(metrics.utilization()),
                   std::to_string(simulation.continuity_violations())});
  }
  table.print(std::cout);

  std::cout << "\nWith DRM-based recovery, streams on a failed node switch to "
               "another replica holder when one has bandwidth headroom; the "
               "20% staging buffer rides through the switch without visible "
               "jitter. Drops remain only when no surviving holder has room "
               "or no other replica exists.\n";
  return 0;
}
