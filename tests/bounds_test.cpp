/// \file bounds_test.cpp
/// \brief Brute-force validation of the analytic bounds (analysis/bounds.h).
///
/// Every oracle is checked against exhaustive enumeration on instances small
/// enough to enumerate (<= 4 servers, <= 6 titles, <= 8 streams): the Erlang
/// recursion against the direct factorial sum, the fractional knapsack
/// against all (subset, boundary item) bases, the closed-form uniform kept
/// fraction against a discretized knapsack, and the placement-aware
/// rejection bound against a 4^8 stream-assignment search. The audit is
/// exercised in both directions: consistent runs pass, fabricated
/// impossible measurements are flagged.

#include "vodsim/analysis/bounds.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "vodsim/admission/controller.h"
#include "vodsim/analysis/erlang.h"
#include "vodsim/cluster/server.h"
#include "vodsim/cluster/video.h"
#include "vodsim/engine/experiment.h"
#include "vodsim/engine/sweep_context.h"
#include "vodsim/engine/vod_simulation.h"
#include "vodsim/util/rng.h"

namespace vodsim {
namespace {

using bounds_detail::max_kept_mass;
using bounds_detail::pooled_channels;
using bounds_detail::uniform_kept_fraction;

TEST(BoundsErlang, RecursionMatchesDirectFactorialSum) {
  for (int c = 1; c <= 10; ++c) {
    for (double a : {0.25, 1.0, 3.0, 7.5, 20.0}) {
      // B(c, a) = (a^c / c!) / sum_{k=0..c} a^k / k!, computed directly.
      double term = 1.0;  // a^k / k! at k = 0
      double sum = 1.0;
      for (int k = 1; k <= c; ++k) {
        term *= a / k;
        sum += term;
      }
      const double direct = term / sum;
      EXPECT_NEAR(erlang_b_blocking(c, a), direct, 1e-12)
          << "c=" << c << " a=" << a;
    }
  }
}

// The fractional-knapsack optimum keeps a set of whole items plus at most
// one fractional item. Enumerating every (subset, boundary item) base is
// therefore a complete search — independent of the exchange argument the
// implementation relies on.
double enumerate_kept_mass(const std::vector<std::pair<double, double>>& items,
                           double rate, double capacity) {
  const std::size_t n = items.size();
  double best = 0.0;
  for (std::size_t subset = 0; subset < (1u << n); ++subset) {
    double mass = 0.0;
    double work = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (subset & (1u << i)) {
        mass += items[i].first;
        work += rate * items[i].first * items[i].second;
      }
    }
    if (work > capacity + 1e-12) continue;
    best = std::max(best, mass);
    for (std::size_t j = 0; j < n; ++j) {
      if (subset & (1u << j)) continue;
      const double item_work = rate * items[j].first * items[j].second;
      if (item_work <= 0.0) continue;
      const double fraction = std::min(1.0, (capacity - work) / item_work);
      best = std::max(best, mass + fraction * items[j].first);
    }
  }
  return best;
}

TEST(BoundsKnapsack, MatchesExhaustiveEnumerationOnRandomInstances) {
  Rng rng(7);
  for (int instance = 0; instance < 300; ++instance) {
    const std::size_t n = 1 + rng.uniform_int(6);
    std::vector<std::pair<double, double>> items;
    double total_mass = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double mass = rng.uniform(0.01, 1.0);
      items.emplace_back(mass, rng.uniform(1.0, 50.0));
      total_mass += mass;
    }
    for (auto& [mass, size] : items) mass /= total_mass;  // masses sum to 1
    const double rate = rng.uniform(0.05, 2.0);
    // Sweep capacity from starved to saturated relative to offered work.
    double offered = 0.0;
    for (const auto& [mass, size] : items) offered += rate * mass * size;
    const double capacity = offered * rng.uniform(0.0, 1.3);

    const double fast = max_kept_mass(items, rate, capacity);
    const double enumerated = enumerate_kept_mass(items, rate, capacity);
    EXPECT_NEAR(fast, enumerated, 1e-9) << "instance " << instance;
    EXPECT_GE(fast, -1e-12);
    EXPECT_LE(fast, 1.0 + 1e-12);
  }
}

TEST(BoundsKnapsack, DominatesEveryIntegralSelection) {
  const std::vector<std::pair<double, double>> items = {
      {0.25, 10.0}, {0.25, 20.0}, {0.25, 30.0}, {0.25, 40.0}};
  const double rate = 1.0;
  const double capacity = 12.0;
  const double fractional = max_kept_mass(items, rate, capacity);
  for (std::size_t subset = 0; subset < (1u << items.size()); ++subset) {
    double mass = 0.0;
    double work = 0.0;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (subset & (1u << i)) {
        mass += items[i].first;
        work += rate * items[i].first * items[i].second;
      }
    }
    if (work <= capacity) EXPECT_GE(fractional + 1e-12, mass);
  }
}

TEST(BoundsKnapsack, EdgeCases) {
  // No capacity with positive rate: nothing is keepable.
  EXPECT_EQ(max_kept_mass({{0.5, 10.0}, {0.5, 20.0}}, 1.0, 0.0), 0.0);
  // No arrivals: everything is (vacuously) keepable.
  EXPECT_EQ(max_kept_mass({{0.5, 10.0}, {0.5, 20.0}}, 0.0, 5.0), 1.0);
  // Abundant capacity keeps all mass.
  EXPECT_NEAR(max_kept_mass({{0.4, 10.0}, {0.6, 20.0}}, 1.0, 1e6), 1.0, 1e-12);
}

TEST(BoundsUniform, ClosedFormMatchesDiscretizedKnapsack) {
  // Uniform sizes on [smin, smax], equal mass: discretize into 4000
  // equal-mass atoms at bucket midpoints and run the generic knapsack.
  const double smin = 600.0, smax = 5400.0;
  for (double rate : {0.01, 0.05, 0.2}) {
    for (double capacity : {10.0, 100.0, 300.0, 1000.0}) {
      const int atoms = 4000;
      std::vector<std::pair<double, double>> items;
      items.reserve(atoms);
      for (int i = 0; i < atoms; ++i) {
        const double size = smin + (smax - smin) * (i + 0.5) / atoms;
        items.emplace_back(1.0 / atoms, size);
      }
      const double discrete = max_kept_mass(items, rate, capacity);
      const double closed = uniform_kept_fraction(smin, smax, rate, capacity);
      EXPECT_NEAR(closed, discrete, 2e-3)
          << "rate=" << rate << " capacity=" << capacity;
    }
  }
}

TEST(BoundsUniform, DegenerateSpreadAndUnderload) {
  // Identical sizes: kept fraction is a pure capacity ratio.
  EXPECT_NEAR(uniform_kept_fraction(100.0, 100.0, 1.0, 50.0), 0.5, 1e-12);
  // Offered work below capacity: everything is kept.
  EXPECT_EQ(uniform_kept_fraction(10.0, 20.0, 0.1, 100.0), 1.0);
  EXPECT_EQ(uniform_kept_fraction(10.0, 20.0, 0.0, 0.0), 1.0);
}

TEST(BoundsChannels, PooledChannelsFloorsPerServer) {
  std::vector<Server> servers;
  servers.emplace_back(0, 100.0, 1e9);  // 33 channels at 3 Mb/s
  servers.emplace_back(1, 99.0, 1e9);   // exactly 33
  servers.emplace_back(2, 2.9, 1e9);    // 0
  servers.emplace_back(3, 3.0, 1e9);    // 1 (epsilon guard)
  EXPECT_EQ(pooled_channels(servers, 3.0), 33 + 33 + 0 + 1);
  EXPECT_EQ(pooled_channels(servers, 0.0), 0);
}

// --- tiny-instance brute force: streams -> servers -----------------------
//
// A static snapshot with <= 8 unit-rate streams, <= 6 titles, <= 4 servers:
// enumerate every assignment of each stream to {reject, server 0..S-1},
// admissible iff the server holds the stream's title and no server exceeds
// its channel count. The best assignment serves the most streams, so
// 1 - best/streams is the true optimal rejection fraction. Mapping the
// snapshot to the fluid bound (uniform sizes s, lambda chosen so that
// lambda * mass_t * size = count_t * view_bw), every capacity is an integer
// number of channels, so the fractional transportation optimum is integral
// and the enumerated value is exact — the oracle must never exceed it, and
// on single-holder instances it must *match* it.
struct TinyInstance {
  std::vector<int> stream_titles;          // one entry per stream
  std::vector<std::vector<int>> holders;   // holders[title] = server ids
  std::vector<int> channels;               // channels[server]
};

double enumerate_optimal_rejection(const TinyInstance& tiny) {
  const std::size_t streams = tiny.stream_titles.size();
  const std::size_t options = tiny.channels.size() + 1;  // + reject
  std::size_t best = 0;
  std::vector<std::size_t> choice(streams, 0);
  std::size_t combos = 1;
  for (std::size_t i = 0; i < streams; ++i) combos *= options;
  for (std::size_t code = 0; code < combos; ++code) {
    std::size_t rest = code;
    std::vector<int> load(tiny.channels.size(), 0);
    std::size_t served = 0;
    bool ok = true;
    for (std::size_t i = 0; i < streams && ok; ++i) {
      const std::size_t pick = rest % options;
      rest /= options;
      if (pick == 0) continue;  // rejected
      const int server = static_cast<int>(pick - 1);
      const std::vector<int>& holds = tiny.holders[
          static_cast<std::size_t>(tiny.stream_titles[i])];
      if (std::find(holds.begin(), holds.end(), server) == holds.end()) {
        ok = false;
        break;
      }
      if (++load[static_cast<std::size_t>(server)] >
          tiny.channels[static_cast<std::size_t>(server)]) {
        ok = false;
        break;
      }
      ++served;
    }
    if (ok) best = std::max(best, served);
  }
  return 1.0 - static_cast<double>(best) / static_cast<double>(streams);
}

// Builds the realized world for a tiny instance and runs the placement-
// aware oracle on it. All titles share one size; stream counts become
// popularity masses; lambda is scaled so offered work matches the snapshot.
BoundsReport tiny_bounds(const TinyInstance& tiny) {
  const double view_bw = 3.0;
  const double size = 600.0 * view_bw;  // 10-minute titles
  const std::size_t num_titles = tiny.holders.size();
  const std::size_t streams = tiny.stream_titles.size();

  std::vector<Video> videos;
  for (std::size_t t = 0; t < num_titles; ++t) {
    videos.push_back({static_cast<VideoId>(t), 600.0, view_bw});
  }
  VideoCatalog catalog(std::move(videos));

  std::vector<double> popularity(num_titles, 0.0);
  for (int title : tiny.stream_titles) {
    popularity[static_cast<std::size_t>(title)] +=
        1.0 / static_cast<double>(streams);
  }

  std::vector<Server> servers;
  double total_bw = 0.0;
  for (std::size_t s = 0; s < tiny.channels.size(); ++s) {
    const double bw = view_bw * tiny.channels[s];
    servers.emplace_back(static_cast<ServerId>(s), bw, 1e9);
    total_bw += bw;
  }
  for (std::size_t t = 0; t < num_titles; ++t) {
    for (int s : tiny.holders[t]) {
      servers[static_cast<std::size_t>(s)].add_replica(
          catalog[static_cast<VideoId>(t)]);
    }
  }
  const ReplicaDirectory directory(num_titles, servers);

  SimulationConfig config;
  config.system.name = "tiny";
  config.system.num_servers = static_cast<int>(tiny.channels.size());
  config.system.server_bandwidth =
      total_bw / static_cast<double>(tiny.channels.size());
  config.system.view_bandwidth = view_bw;
  config.system.num_videos = num_titles;
  // The engine calibrates lambda from the *config's* duration law, so it
  // must match the realized catalog exactly (all titles 600 s).
  config.system.video_min_duration = 600.0;
  config.system.video_max_duration = 600.0;
  // lambda * E[size] = streams * view_bw  <=>  offered work equals the
  // aggregate rate of all snapshot streams playing at once.
  config.load_factor = static_cast<double>(streams) * view_bw / total_bw;
  // Keep the Erlang family out of the comparison: it bounds the *expected*
  // blocking of the Poisson loss system, which a static snapshot that
  // happens to fit can legitimately undercut. Staging > 0 gates it off,
  // leaving exactly the fluid + placement families the enumeration solves.
  config.client.staging_fraction = 0.2;
  return compute_bounds(config, catalog, popularity, directory, servers);
}

TEST(BoundsTinyInstance, OracleMatchesEnumerationWhenHoldersAreExclusive) {
  // Every title on exactly one server: the transportation problem
  // decouples per server and the placement term is exact.
  const std::vector<TinyInstance> instances = {
      // 2 servers x 1 channel, 4 streams on 2 titles: each server must
      // shed 1 of its 2 streams -> optimum rejection 1/2.
      {{0, 0, 1, 1}, {{0}, {1}}, {1, 1}},
      // Hot title on a 2-channel server, cold title with its own server:
      // 5 streams on title 0 (cap 2) + 1 on title 1 (cap 1) -> reject 3/6.
      {{0, 0, 0, 0, 0, 1}, {{0}, {1}}, {2, 1}},
      // 3 servers, 3 titles, balanced: everything fits -> reject 0.
      {{0, 1, 2, 0, 1, 2}, {{0}, {1}, {2}}, {2, 2, 2}},
      // 4 servers, 4 titles, one starved server.
      {{0, 1, 2, 3, 3, 3}, {{0}, {1}, {2}, {3}}, {1, 1, 1, 1}},
      // Zero-replica title: its whole mass must reject.
      {{0, 0, 1, 1}, {{0}, {}}, {2, 2}},
  };
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const double enumerated = enumerate_optimal_rejection(instances[i]);
    const BoundsReport bounds = tiny_bounds(instances[i]);
    EXPECT_NEAR(bounds.rejection_lower, enumerated, 1e-9) << "instance " << i;
  }
}

TEST(BoundsTinyInstance, OracleNeverExceedsEnumeratedOptimum) {
  // Replicated titles: routing freedom can only help the adversary, so the
  // oracle must stay a *lower* bound on the enumerated optimum.
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    TinyInstance tiny;
    const std::size_t num_servers = 2 + rng.uniform_int(3);   // 2..4
    const std::size_t num_titles = 1 + rng.uniform_int(6);    // 1..6
    const std::size_t streams = 1 + rng.uniform_int(8);       // 1..8
    for (std::size_t s = 0; s < num_servers; ++s) {
      tiny.channels.push_back(1 + static_cast<int>(rng.uniform_int(2)));
    }
    tiny.holders.resize(num_titles);
    for (std::size_t t = 0; t < num_titles; ++t) {
      for (std::size_t s = 0; s < num_servers; ++s) {
        if (rng.uniform() < 0.5) {
          tiny.holders[t].push_back(static_cast<int>(s));
        }
      }
    }
    for (std::size_t i = 0; i < streams; ++i) {
      tiny.stream_titles.push_back(
          static_cast<int>(rng.uniform_int(num_titles)));
    }
    const double enumerated = enumerate_optimal_rejection(tiny);
    const BoundsReport bounds = tiny_bounds(tiny);
    EXPECT_LE(bounds.rejection_lower, enumerated + 1e-9)
        << "trial " << trial << ": a bound that exceeds the enumerated "
        << "optimum is not a bound";
  }
}

// --- regime gates ---------------------------------------------------------

TEST(BoundsGates, ErlangRegimeRequiresZeroStagingAndPlainAdmission) {
  SimulationConfig config;
  config.system = SystemConfig::small_system();
  config.client.staging_fraction = 0.0;
  EXPECT_TRUE(compute_bounds(config).erlang_regime);

  SimulationConfig staged = config;
  staged.client.staging_fraction = 0.2;
  EXPECT_FALSE(compute_bounds(staged).erlang_regime);

  SimulationConfig retrying = config;
  retrying.failure.retry.enabled = true;
  EXPECT_FALSE(compute_bounds(retrying).erlang_regime);

  SimulationConfig aggressive = config;
  aggressive.scheduler = SchedulerKind::kIntermittent;
  aggressive.admission.buffer_aware = true;
  EXPECT_FALSE(compute_bounds(aggressive).erlang_regime);
}

TEST(BoundsGates, PlacementTermsSwitchOffUnderDynamicReplicaSets) {
  SimulationConfig config;
  config.system = SystemConfig::small_system();
  EXPECT_TRUE(compute_bounds(config).placement_terms_valid);
  SimulationConfig drifting = config;
  drifting.drift.enabled = true;
  drifting.drift.period = hours(1);
  const BoundsReport drift_bounds = compute_bounds(drifting);
  EXPECT_FALSE(drift_bounds.placement_terms_valid);
  EXPECT_FALSE(drift_bounds.statistically_sound);
  SimulationConfig replicating = config;
  replicating.replication.enabled = true;
  EXPECT_FALSE(compute_bounds(replicating).placement_terms_valid);
  SimulationConfig repairing = config;
  repairing.failure.repair.enabled = true;
  EXPECT_FALSE(compute_bounds(repairing).placement_terms_valid);
}

TEST(BoundsMonotonicity, RejectionGrowsAndUtilizationSaturatesWithLoad) {
  SimulationConfig config;
  config.system = SystemConfig::small_system();
  config.client.staging_fraction = 0.0;
  double last_rejection = -1.0;
  double last_upper = -1.0;
  for (double load : {0.25, 0.5, 0.9, 1.0, 1.5, 2.5, 4.0}) {
    config.load_factor = load;
    const BoundsReport bounds = compute_bounds(config);
    EXPECT_GE(bounds.rejection_lower, last_rejection - 1e-12) << load;
    EXPECT_GE(bounds.utilization_upper, last_upper - 1e-12) << load;
    EXPECT_GE(bounds.rejection_lower, 0.0);
    EXPECT_LE(bounds.rejection_lower, 1.0);
    EXPECT_GE(bounds.utilization_upper, 0.0);
    EXPECT_LE(bounds.utilization_upper, 1.0);
    last_rejection = bounds.rejection_lower;
    last_upper = bounds.utilization_upper;
  }
  // Deep overload: most mass must reject.
  config.load_factor = 50.0;
  EXPECT_GT(compute_bounds(config).rejection_lower, 0.7);
}

// --- the audit, in both directions ----------------------------------------

TEST(BoundsAudit, CleanMetricsPass) {
  BoundsReport bounds;
  bounds.total_bandwidth = 500.0;
  bounds.rejection_lower = 0.1;
  bounds.utilization_upper = 0.9;
  bounds.mean_duration = 1200.0;
  bounds.max_duration = 1800.0;
  bounds.max_size = 5400.0;
  Metrics metrics(0.0, 100000.0, 500.0);
  for (int i = 0; i < 1000; ++i) {
    metrics.record_arrival(50.0 * i);
    if (i % 5 == 0) metrics.record_rejection(50.0 * i);  // 20% >= LB
  }
  metrics.record_transmission(0.0, 100000.0, 400.0);  // utilization 0.8 < UB
  EXPECT_EQ(audit_bounds(bounds, metrics), "");
}

TEST(BoundsAudit, FlagsRejectionBelowTheProvenLowerBound) {
  BoundsReport bounds;
  bounds.total_bandwidth = 500.0;
  bounds.rejection_lower = 0.5;   // half the mass provably cannot fit...
  bounds.mean_duration = 100.0;   // short holding time: tiny transient
  bounds.max_duration = 100.0;
  bounds.max_size = 300.0;
  Metrics metrics(0.0, 1e6, 500.0);
  for (int i = 0; i < 20000; ++i) metrics.record_arrival(10.0 * i);
  // ...yet the run claims to have served everything.
  const std::string why = audit_bounds(bounds, metrics);
  ASSERT_NE(why, "");
  EXPECT_NE(why.find("beats the proven lower bound"), std::string::npos);
}

TEST(BoundsAudit, FlagsUtilizationAboveTheProvenUpperBound) {
  BoundsReport bounds;
  bounds.total_bandwidth = 500.0;
  bounds.utilization_upper = 0.3;
  bounds.rejection_lower = 0.0;
  bounds.mean_duration = 100.0;
  bounds.max_duration = 100.0;
  bounds.max_size = 300.0;  // small objects: tight utilization slack
  Metrics metrics(0.0, 1e6, 500.0);
  for (int i = 0; i < 1000; ++i) metrics.record_arrival(1000.0 * i);
  metrics.record_transmission(0.0, 1e6, 450.0);  // utilization 0.9 >> 0.3
  const std::string why = audit_bounds(bounds, metrics);
  ASSERT_NE(why, "");
  EXPECT_NE(why.find("beats the proven upper bound"), std::string::npos);
}

TEST(BoundsAudit, FlagsUtilizationAboveAvailability) {
  BoundsReport bounds;  // sure check: no statistical terms involved
  Metrics metrics(0.0, 1000.0, 100.0);
  metrics.record_capacity_loss(0.0, 1000.0, 50.0);  // availability 0.5
  metrics.record_transmission(0.0, 1000.0, 90.0);   // utilization 0.9
  const std::string why = audit_bounds(bounds, metrics);
  ASSERT_NE(why, "");
  EXPECT_NE(why.find("exceeds availability"), std::string::npos);
}

TEST(BoundsAudit, StatisticalChecksSkipUnsoundOrEmptyWindows) {
  BoundsReport bounds;
  bounds.rejection_lower = 0.9;
  bounds.statistically_sound = false;  // e.g. popularity drift
  Metrics metrics(0.0, 1000.0, 100.0);
  for (int i = 0; i < 100; ++i) metrics.record_arrival(10.0 * i);
  EXPECT_EQ(audit_bounds(bounds, metrics), "");
  bounds.statistically_sound = true;
  Metrics idle(0.0, 1000.0, 100.0);  // zero arrivals: nothing to test
  EXPECT_EQ(audit_bounds(bounds, idle), "");
}

// --- end to end: real runs respect their own bounds -----------------------

TEST(BoundsEndToEnd, SimulationsNeverBeatTheirBounds) {
  for (double staging : {0.0, 0.2}) {
    for (double load : {0.8, 1.5}) {
      SimulationConfig config;
      config.system = SystemConfig::small_system();
      config.system.num_videos = 50;
      config.client.staging_fraction = staging;
      config.load_factor = load;
      config.duration = hours(3);
      config.warmup = hours(0.5);
      config.seed = 17;
      VodSimulation simulation(config);
      simulation.run();
      EXPECT_TRUE(simulation.metrics().has_bounds());
      EXPECT_EQ(audit_bounds(simulation.bounds(), simulation.metrics()), "")
          << "staging " << staging << " load " << load;
    }
  }
}

TEST(BoundsEndToEnd, SweepContextSharesOneReportAcrossSchedulers) {
  SimulationConfig base;
  base.system = SystemConfig::small_system();
  base.system.num_videos = 40;
  base.duration = hours(1);
  base.warmup = 0.0;
  std::vector<SimulationConfig> configs;
  for (SchedulerKind kind :
       {SchedulerKind::kEftf, SchedulerKind::kLftf, SchedulerKind::kContinuous}) {
    SimulationConfig config = base;
    config.scheduler = kind;
    configs.push_back(config);
  }
  SweepContext context;
  context.prepare(configs, 1, 42);
  // Bounds are policy-independent: three scheduler columns, one report.
  EXPECT_EQ(context.bounds_count(), 1u);
  for (const SimulationConfig& config : configs) {
    SimulationConfig trial = config;
    trial.seed = ExperimentRunner::derive_seed(42, 0);
    EXPECT_NE(context.find_bounds(trial), nullptr);
  }
  // A different load factor is a different envelope.
  SimulationConfig loaded = base;
  loaded.load_factor = 2.0;
  context.prepare({loaded}, 1, 42);
  EXPECT_EQ(context.bounds_count(), 2u);
}

TEST(BoundsEndToEnd, GapColumnsReachTrialResults) {
  SimulationConfig config;
  config.system = SystemConfig::small_system();
  config.system.num_videos = 40;
  config.load_factor = 1.5;
  config.duration = hours(2);
  config.warmup = hours(0.5);
  ExperimentRunner runner;
  const ExperimentPoint point = runner.run_point(config, 2, 42);
  ASSERT_EQ(point.trials.size(), 2u);
  for (const TrialResult& trial : point.trials) {
    EXPECT_GT(trial.bound_utilization, 0.0);
    EXPECT_LE(trial.bound_utilization, 1.0);
    EXPECT_NEAR(trial.utilization_gap,
                trial.bound_utilization - trial.utilization, 1e-12);
    EXPECT_NEAR(trial.rejection_gap,
                trial.rejection_ratio - trial.bound_rejection, 1e-12);
  }
  EXPECT_EQ(point.utilization_gap.count(), 2u);
  EXPECT_EQ(point.rejection_gap.count(), 2u);
}

}  // namespace
}  // namespace vodsim
