// Fault-injection subsystem tests: schedule generation (binary alternation,
// flap guard, brownout pairing, correlated groups), the bounded retry queue,
// config validation of the fault knobs, idempotent duplicate transitions,
// crash-recovery outcomes (migrate / drop / park), brownout shedding under
// the paranoid auditor, and the retry re-admission acceptance contract:
// readmissions > 0 and strictly fewer permanent drops than retry-disabled.

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <set>
#include <stdexcept>
#include <vector>

#include "vodsim/engine/vod_simulation.h"
#include "vodsim/fault/retry_queue.h"
#include "vodsim/fault/schedule.h"

namespace vodsim {
namespace {

FailureConfig crash_config(Seconds mtbf, Seconds mttr) {
  FailureConfig config;
  config.enabled = true;
  config.mean_time_between_failures = mtbf;
  config.mean_time_to_repair = mttr;
  return config;
}

/// Events of one server in schedule order.
std::vector<FaultTransition> events_of(const std::vector<FaultTransition>& schedule,
                                       ServerId server) {
  std::vector<FaultTransition> out;
  for (const FaultTransition& event : schedule) {
    if (event.server == server) out.push_back(event);
  }
  return out;
}

std::size_t count_events(const TraceRecorder& trace, TraceEventType type,
                         ServerId server = kNoServer) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& event = trace[i];
    if (event.type == type && (server == kNoServer || event.server == server)) {
      ++count;
    }
  }
  return count;
}

// ------------------------------------------------------------ fault schedule

TEST(FaultSchedule, DisabledConfigYieldsEmptySchedule) {
  FailureConfig config;  // enabled = false
  Rng rng(1);
  EXPECT_TRUE(generate_fault_schedule(config, 4, hours(100), rng).empty());
}

TEST(FaultSchedule, BinaryEventsAlternatePerServerAndSortGlobally) {
  const FailureConfig config = crash_config(300.0, 100.0);
  Rng rng(7);
  const std::vector<FaultTransition> schedule =
      generate_fault_schedule(config, 3, hours(10), rng);
  ASSERT_FALSE(schedule.empty());

  // Global order: nondecreasing time, (server, kind) tiebreak.
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_LE(schedule[i - 1].time, schedule[i].time);
  }

  for (ServerId server = 0; server < 3; ++server) {
    const std::vector<FaultTransition> events = events_of(schedule, server);
    ASSERT_FALSE(events.empty()) << "server " << server << " never failed";
    bool expect_down = true;
    Seconds last = 0.0;
    for (const FaultTransition& event : events) {
      EXPECT_EQ(event.kind, expect_down ? FaultTransitionKind::kDown
                                        : FaultTransitionKind::kUp);
      EXPECT_GT(event.time, last);
      EXPECT_LT(event.time, hours(10));
      last = event.time;
      expect_down = !expect_down;
    }
  }
}

TEST(FaultSchedule, FlapGuardEnforcesMinimumDwell) {
  FailureConfig config = crash_config(1.0, 1.0);  // pathological flapping
  config.min_dwell = 50.0;
  Rng rng(3);
  const std::vector<FaultTransition> schedule =
      generate_fault_schedule(config, 2, 2000.0, rng);
  ASSERT_FALSE(schedule.empty());
  for (ServerId server = 0; server < 2; ++server) {
    Seconds last = 0.0;
    for (const FaultTransition& event : events_of(schedule, server)) {
      EXPECT_GE(event.time - last, 50.0 - 1e-9);
      last = event.time;
    }
  }
}

TEST(FaultSchedule, BrownoutsPairUpAndCarryTheFactor) {
  FailureConfig config = crash_config(hours(1e6), hours(1));  // no crashes
  config.brownout.enabled = true;
  config.brownout.mean_time_between = 200.0;
  config.brownout.mean_duration = 100.0;
  config.brownout.capacity_factor = 0.4;
  Rng rng(11);
  const std::vector<FaultTransition> schedule =
      generate_fault_schedule(config, 2, hours(5), rng);
  ASSERT_FALSE(schedule.empty());

  for (ServerId server = 0; server < 2; ++server) {
    bool expect_begin = true;
    for (const FaultTransition& event : events_of(schedule, server)) {
      if (expect_begin) {
        EXPECT_EQ(event.kind, FaultTransitionKind::kBrownoutBegin);
        EXPECT_DOUBLE_EQ(event.capacity_factor, 0.4);
      } else {
        EXPECT_EQ(event.kind, FaultTransitionKind::kBrownoutEnd);
      }
      expect_begin = !expect_begin;
    }
  }
}

TEST(FaultSchedule, CorrelatedGroupsCrashAndRepairTogether) {
  FailureConfig config = crash_config(hours(1e6), hours(1));  // no solo crashes
  config.correlated.enabled = true;
  config.correlated.group_size = 2;
  config.correlated.mean_time_between = 300.0;
  config.correlated.mean_duration = 100.0;
  Rng rng(13);
  const std::vector<FaultTransition> schedule =
      generate_fault_schedule(config, 4, hours(5), rng);
  ASSERT_FALSE(schedule.empty());

  // Every outage timestamp hits a whole group: {0,1} or {2,3}.
  std::map<Seconds, std::set<ServerId>> downs;
  for (const FaultTransition& event : schedule) {
    if (event.kind == FaultTransitionKind::kDown) {
      downs[event.time].insert(event.server);
    }
  }
  ASSERT_FALSE(downs.empty());
  for (const auto& [time, members] : downs) {
    EXPECT_EQ(members.size(), 2u) << "partial group outage at t=" << time;
    const std::set<ServerId> low = {0, 1}, high = {2, 3};
    EXPECT_TRUE(members == low || members == high);
  }
}

// --------------------------------------------------------------- retry queue

RetryConfig retry_config(std::size_t max_queue, int max_attempts = 6,
                         Seconds base = 5.0, Seconds cap = 300.0) {
  RetryConfig config;
  config.enabled = true;
  config.max_queue = max_queue;
  config.max_attempts = max_attempts;
  config.backoff_base = base;
  config.backoff_cap = cap;
  return config;
}

TEST(RetryQueueTest, BoundedPushCountsOverflow) {
  RetryQueue queue(retry_config(2));
  EXPECT_TRUE(queue.push({1, 0, 3.0, 0.0, 0, 0.0}));
  EXPECT_TRUE(queue.push({2, 0, 3.0, 0.0, 0, 0.0}));
  EXPECT_FALSE(queue.push({3, 0, 3.0, 0.0, 0, 0.0}));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.overflow_count(), 1u);
}

TEST(RetryQueueTest, BackoffDoublesExactlyAndSaturatesAtCap) {
  RetryQueue queue(retry_config(4, 6, 5.0, 35.0));
  EXPECT_DOUBLE_EQ(queue.backoff(0), 5.0);
  EXPECT_DOUBLE_EQ(queue.backoff(1), 10.0);
  EXPECT_DOUBLE_EQ(queue.backoff(2), 20.0);
  EXPECT_DOUBLE_EQ(queue.backoff(3), 35.0);   // min(35, 40)
  EXPECT_DOUBLE_EQ(queue.backoff(20), 35.0);  // deep saturation, no overflow
}

TEST(RetryQueueTest, TakeDueKeepsFifoOrderAndForceDrainsEverything) {
  RetryQueue queue(retry_config(8));
  queue.push({1, 0, 3.0, 0.0, 0, 10.0});
  queue.push({2, 0, 3.0, 0.0, 0, 5.0});
  queue.push({3, 0, 3.0, 0.0, 0, 20.0});
  EXPECT_DOUBLE_EQ(queue.next_attempt_time(), 5.0);

  const std::vector<RetryEntry> due = queue.take_due(12.0, /*force=*/false);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].request, 1);  // FIFO (push order), not next_attempt order
  EXPECT_EQ(due[1].request, 2);
  EXPECT_DOUBLE_EQ(queue.next_attempt_time(), 20.0);

  const std::vector<RetryEntry> rest = queue.take_due(0.0, /*force=*/true);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].request, 3);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.next_attempt_time(), std::numeric_limits<double>::infinity());
}

TEST(RetryQueueTest, RemoveRequestDropsTheParkedEntryOnly) {
  RetryQueue queue(retry_config(8));
  queue.push({7, 0, 3.0, 0.0, 0, 0.0});
  queue.push({kNoRetryRequest, 1, 3.0, 0.0, 0, 0.0});
  EXPECT_TRUE(queue.remove_request(7));
  EXPECT_FALSE(queue.remove_request(7));
  EXPECT_EQ(queue.size(), 1u);
}

// --------------------------------------------------------- config validation

SimulationConfig tiny_valid_config() {
  SimulationConfig config;
  config.system.num_servers = 3;
  config.system.num_videos = 10;
  config.duration = 100.0;
  config.warmup = 0.0;
  return config;
}

void expect_invalid(void (*mutate)(SimulationConfig&)) {
  SimulationConfig config = tiny_valid_config();
  mutate(config);
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(FaultConfigValidation, RejectsBadBrownoutKnobs) {
  expect_invalid([](SimulationConfig& c) {
    c.failure.enabled = true;
    c.failure.brownout.enabled = true;
    c.failure.brownout.capacity_factor = 0.0;
  });
  expect_invalid([](SimulationConfig& c) {
    c.failure.enabled = true;
    c.failure.brownout.enabled = true;
    c.failure.brownout.capacity_factor = 1.0;  // must be a *partial* loss
  });
  expect_invalid([](SimulationConfig& c) {
    c.failure.enabled = true;
    c.failure.brownout.enabled = true;
    c.failure.brownout.mean_time_between = 0.0;
  });
  expect_invalid([](SimulationConfig& c) {
    c.failure.enabled = true;
    c.failure.brownout.enabled = true;
    c.failure.brownout.mean_duration = -1.0;
  });
}

TEST(FaultConfigValidation, RejectsBadCorrelatedAndDwellKnobs) {
  expect_invalid([](SimulationConfig& c) {
    c.failure.enabled = true;
    c.failure.correlated.enabled = true;
    c.failure.correlated.group_size = 0;
  });
  expect_invalid([](SimulationConfig& c) {
    c.failure.enabled = true;
    c.failure.correlated.enabled = true;
    c.failure.correlated.mean_duration = 0.0;
  });
  expect_invalid([](SimulationConfig& c) {
    c.failure.enabled = true;
    c.failure.min_dwell = -1.0;
  });
}

TEST(FaultConfigValidation, RejectsBadRetryAndRepairKnobs) {
  // Retry/repair knobs are validated whenever the sub-feature is on, even
  // without random failure injection (they also serve scripted faults).
  expect_invalid([](SimulationConfig& c) {
    c.failure.retry.enabled = true;
    c.failure.retry.max_queue = 0;
  });
  expect_invalid([](SimulationConfig& c) {
    c.failure.retry.enabled = true;
    c.failure.retry.max_attempts = 0;
  });
  expect_invalid([](SimulationConfig& c) {
    c.failure.retry.enabled = true;
    c.failure.retry.backoff_base = 0.0;
  });
  expect_invalid([](SimulationConfig& c) {
    c.failure.retry.enabled = true;
    c.failure.retry.backoff_base = 10.0;
    c.failure.retry.backoff_cap = 5.0;
  });
  expect_invalid([](SimulationConfig& c) {
    c.failure.repair.enabled = true;
    c.failure.repair.down_threshold = 0.0;
  });
}

TEST(FaultConfigValidation, RejectsBadScriptedFaults) {
  expect_invalid([](SimulationConfig& c) {
    c.scripted_faults.push_back({10.0, 99, FaultTransitionKind::kDown, 1.0});
  });
  expect_invalid([](SimulationConfig& c) {
    c.scripted_faults.push_back({-1.0, 0, FaultTransitionKind::kDown, 1.0});
  });
  expect_invalid([](SimulationConfig& c) {
    c.scripted_faults.push_back(
        {10.0, 0, FaultTransitionKind::kBrownoutBegin, 1.5});
  });
}

// -------------------------------------------------------- engine transitions

/// Small loaded world for scripted-fault engine tests. Long videos keep
/// streams alive across the scripted fault window.
SimulationConfig scripted_world(double avg_copies) {
  SimulationConfig config;
  config.system.name = "fault-test";
  config.system.num_servers = 3;
  config.system.server_bandwidth = 15.0;
  config.system.server_storage = gigabytes(5);
  config.system.video_min_duration = 600.0;
  config.system.video_max_duration = 900.0;
  config.system.num_videos = 12;
  config.system.avg_copies = avg_copies;
  config.system.view_bandwidth = 3.0;
  config.client.staging_fraction = 0.2;
  config.client.receive_bandwidth = 30.0;
  config.load_factor = 1.0;
  config.duration = 1200.0;
  config.warmup = 0.0;
  config.seed = 5;
  config.paranoid = true;
  config.trace.enabled = true;
  return config;
}

TEST(FaultTransitions, DuplicateDownAndUpAreIdempotent) {
  SimulationConfig config = scripted_world(2.0);
  config.scripted_faults = {
      {200.0, 0, FaultTransitionKind::kDown, 1.0},
      {250.0, 0, FaultTransitionKind::kDown, 1.0},  // duplicate down
      {500.0, 0, FaultTransitionKind::kUp, 1.0},
      {550.0, 0, FaultTransitionKind::kUp, 1.0},  // duplicate up
  };
  VodSimulation simulation(config);
  const Metrics& metrics = simulation.run();

  // Duplicates are absorbed: one observable down episode, one recovery.
  EXPECT_EQ(metrics.server_downs(), 1u);
  EXPECT_EQ(metrics.server_recoveries(), 1u);
  const TraceRecorder* trace = simulation.trace();
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(count_events(*trace, TraceEventType::kServerDown, 0), 1u);
  EXPECT_EQ(count_events(*trace, TraceEventType::kServerUp, 0), 1u);
  EXPECT_TRUE(simulation.servers()[0].available());
  EXPECT_LT(metrics.availability(), 1.0);
}

TEST(FaultRecovery, MigratesOrphansToReplicaHolders) {
  SimulationConfig config = scripted_world(2.5);
  config.load_factor = 0.7;  // leave headroom on the survivors
  config.failure.recover_via_migration = true;
  config.scripted_faults = {
      {300.0, 0, FaultTransitionKind::kDown, 1.0},
      {800.0, 0, FaultTransitionKind::kUp, 1.0},
  };
  VodSimulation simulation(config);
  const Metrics& metrics = simulation.run();

  const TraceRecorder* trace = simulation.trace();
  ASSERT_NE(trace, nullptr);
  const std::size_t recovered =
      count_events(*trace, TraceEventType::kStreamRecovered);
  const std::size_t dropped = count_events(*trace, TraceEventType::kStreamDropped);
  EXPECT_GT(recovered, 0u);
  // Every victim is accounted exactly once: recovered or dropped.
  EXPECT_EQ(dropped, metrics.drops());
  // Replicas plus headroom: recovery dominates.
  EXPECT_GE(recovered, dropped);
}

TEST(FaultRecovery, DropsOrphansWhenMigrationDisabled) {
  SimulationConfig config = scripted_world(2.5);
  config.failure.recover_via_migration = false;
  config.scripted_faults = {
      {300.0, 0, FaultTransitionKind::kDown, 1.0},
      {800.0, 0, FaultTransitionKind::kUp, 1.0},
  };
  VodSimulation simulation(config);
  const Metrics& metrics = simulation.run();

  const TraceRecorder* trace = simulation.trace();
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(count_events(*trace, TraceEventType::kStreamRecovered), 0u);
  EXPECT_GT(metrics.drops(), 0u);
  EXPECT_EQ(count_events(*trace, TraceEventType::kStreamDropped), metrics.drops());
}

TEST(FaultRecovery, ParksSingleCopyOrphansForRetryAndReadmitsOnRepair) {
  SimulationConfig config = scripted_world(1.0);  // no second replica anywhere
  config.failure.recover_via_migration = true;    // nothing to migrate *to*
  config.failure.retry.enabled = true;
  config.failure.retry.max_queue = 32;
  config.failure.retry.backoff_base = 30.0;
  config.failure.retry.backoff_cap = 120.0;
  config.scripted_faults = {
      {300.0, 0, FaultTransitionKind::kDown, 1.0},
      {500.0, 0, FaultTransitionKind::kUp, 1.0},
  };
  VodSimulation simulation(config);
  const Metrics& metrics = simulation.run();

  // Orphans had no feasible migration target, so they parked...
  EXPECT_GT(metrics.retry_enqueued(), 0u);
  // ...and the server-up force-retry re-admitted at least one of them.
  EXPECT_GT(metrics.readmissions(), 0u);
  const TraceRecorder* trace = simulation.trace();
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(count_events(*trace, TraceEventType::kRetryReadmitted),
            metrics.readmissions());
}

TEST(Brownout, ShedsOverloadAndRecoversUnderParanoidAudit) {
  SimulationConfig config = scripted_world(2.5);
  config.load_factor = 1.2;  // keep server 0 committed well above 30%
  config.scripted_faults = {
      {200.0, 0, FaultTransitionKind::kBrownoutBegin, 0.3},
      {700.0, 0, FaultTransitionKind::kBrownoutEnd, 1.0},
  };
  VodSimulation simulation(config);  // paranoid: every event audited
  const Metrics& metrics = simulation.run();

  EXPECT_GT(metrics.sheds(), 0u);
  EXPECT_LT(metrics.availability(), 1.0);
  EXPECT_DOUBLE_EQ(simulation.servers()[0].capacity_factor(), 1.0);
  const TraceRecorder* trace = simulation.trace();
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(count_events(*trace, TraceEventType::kStreamShed), metrics.sheds());
  EXPECT_EQ(count_events(*trace, TraceEventType::kBrownoutBegin, 0), 1u);
  EXPECT_EQ(count_events(*trace, TraceEventType::kBrownoutEnd, 0), 1u);
}

// ----------------------------------------------------- acceptance: retry wins

// The PR's acceptance contract: under a brownout, retry re-admission must
// actually help — readmissions happen, and strictly fewer streams are
// permanently lost than with retry disabled, on the same seed.
TEST(RetryAcceptance, BrownoutWithRetryBeatsRetryDisabled) {
  SimulationConfig config = scripted_world(1.0);  // sheds cannot migrate
  config.load_factor = 1.2;
  config.scripted_faults = {
      {100.0, 0, FaultTransitionKind::kBrownoutBegin, 0.3},
      {300.0, 0, FaultTransitionKind::kBrownoutEnd, 1.0},
      {100.0, 1, FaultTransitionKind::kBrownoutBegin, 0.3},
      {300.0, 1, FaultTransitionKind::kBrownoutEnd, 1.0},
  };

  SimulationConfig with_retry = config;
  with_retry.failure.retry.enabled = true;
  with_retry.failure.retry.max_queue = 64;
  with_retry.failure.retry.backoff_base = 10.0;
  with_retry.failure.retry.backoff_cap = 60.0;

  VodSimulation retry_on(with_retry);
  const Metrics& metrics_on = retry_on.run();
  VodSimulation retry_off(config);
  const Metrics& metrics_off = retry_off.run();

  EXPECT_GT(metrics_on.readmissions(), 0u);
  EXPECT_GT(metrics_off.drops(), 0u);
  EXPECT_LT(metrics_on.drops(), metrics_off.drops());
}

// ------------------------------------------------- flapping-domain retries

// A rack that flaps down/up (and partitions/heals) faster than any backoff
// can drain is the retry queue's worst case: every heal force-drains the
// queue, every new outage re-parks the survivors. The accounting must stay
// exact — no parked stream leaks (every kMigrating request at the end is
// still queued), no entry exceeds max_attempts, and every parked orphan is
// eventually readmitted, abandoned, or still waiting.
TEST(RetryAcceptance, FlappingRackKeepsRetryAccountingExact) {
  SimulationConfig config = scripted_world(1.0);  // victims cannot migrate
  config.system.num_servers = 4;
  config.topology.enabled = true;
  config.topology.racks = 2;
  config.topology.zones = 2;
  config.load_factor = 1.3;
  config.failure.retry.enabled = true;
  config.failure.retry.max_queue = 64;
  config.failure.retry.max_attempts = 3;
  config.failure.retry.backoff_base = 5.0;
  config.failure.retry.backoff_cap = 40.0;
  // Rack 0 flaps: crash/repair cycles interleaved with partition episodes,
  // each dwell far shorter than a queued entry's worst-case backoff.
  for (int cycle = 0; cycle < 6; ++cycle) {
    const Seconds base = 200.0 + 120.0 * cycle;
    for (ServerId s = 0; s < 2; ++s) {
      config.scripted_faults.push_back({base, s, FaultTransitionKind::kDown, 1.0});
      config.scripted_faults.push_back({base + 40.0, s, FaultTransitionKind::kUp, 1.0});
      config.scripted_faults.push_back(
          {base + 60.0, s, FaultTransitionKind::kPartitionBegin, 1.0});
      config.scripted_faults.push_back(
          {base + 90.0, s, FaultTransitionKind::kPartitionEnd, 1.0});
    }
  }
  VodSimulation simulation(config);  // paranoid via scripted_world
  const Metrics& metrics = simulation.run();

  EXPECT_GT(metrics.retry_enqueued(), 0u);
  EXPECT_GT(metrics.readmissions(), 0u);

  const TraceRecorder* trace = simulation.trace();
  ASSERT_NE(trace, nullptr);
  // Attempts accounting: an abandoned entry used exactly max_attempts.
  for (const TraceEvent& event : trace->snapshot()) {
    if (event.type == TraceEventType::kRetryAbandoned) {
      EXPECT_EQ(event.a, static_cast<double>(config.failure.retry.max_attempts));
    }
  }
  // No leaked kMigrating streams: every request still parked at the end is
  // backed by a live retry-queue entry.
  std::size_t migrating = 0;
  for (const Request& request : simulation.requests()) {
    if (request.state() == RequestState::kMigrating) ++migrating;
  }
  ASSERT_NE(simulation.retry_queue(), nullptr);
  EXPECT_LE(migrating, simulation.retry_queue()->size());
  // Per-orphan conservation: every stream that was ever parked ends the run
  // readmitted (streaming/finished), abandoned (kDone via the drop path),
  // or still legitimately queued (kMigrating, bounded by the queue above).
  std::set<RequestId> parked;
  for (const TraceEvent& event : trace->snapshot()) {
    if (event.type == TraceEventType::kRetryEnqueued && event.request >= 0) {
      parked.insert(event.request);
    }
  }
  EXPECT_FALSE(parked.empty());
  for (RequestId id : parked) {
    const Request& request =
        simulation.requests()[static_cast<std::size_t>(id)];
    const RequestState state = request.state();
    EXPECT_TRUE(state == RequestState::kMigrating ||
                state == RequestState::kStreaming ||
                state == RequestState::kTxComplete ||
                state == RequestState::kDone)
        << "parked request " << id << " leaked in state "
        << static_cast<int>(state);
  }
}

// --------------------------------------------------- glitch dedupe window

// Interruption dedupe must change only the *count*, never the starved
// seconds: a stream glitching twice inside one window is one viewer-facing
// interruption with its full glitch-seconds. Window 0 disables dedupe, and
// a run-length window collapses each stream to at most one interruption.
TEST(GlitchDedupe, WindowDedupesCountsButNeverSeconds) {
  SimulationConfig config = scripted_world(1.0);
  config.load_factor = 1.2;
  config.client.staging_fraction = 0.02;  // ~12 s cover: every park glitches
  config.failure.retry.enabled = true;
  config.failure.retry.max_queue = 64;
  config.failure.retry.backoff_base = 5.0;
  config.failure.retry.backoff_cap = 20.0;
  // Repeated short outages: re-admitted streams re-glitch near their shed.
  for (int cycle = 0; cycle < 4; ++cycle) {
    const Seconds base = 150.0 + 200.0 * cycle;
    config.scripted_faults.push_back({base, 0, FaultTransitionKind::kDown, 1.0});
    config.scripted_faults.push_back(
        {base + 60.0, 0, FaultTransitionKind::kUp, 1.0});
  }

  auto run_with_window = [&](Seconds window) {
    SimulationConfig c = config;
    c.failure.glitch_dedupe_window = window;
    VodSimulation simulation(c);
    const Metrics& metrics = simulation.run();
    std::set<RequestId> glitched;
    for (const TraceEvent& event : simulation.trace()->snapshot()) {
      if (event.type == TraceEventType::kUnderflow) glitched.insert(event.request);
    }
    struct Out {
      std::uint64_t interruptions;
      Seconds glitch_seconds;
      std::size_t glitched_streams;
    };
    return Out{metrics.interruptions(), metrics.glitch_seconds(),
               glitched.size()};
  };

  const auto off = run_with_window(0.0);
  const auto window1 = run_with_window(1.0);
  const auto whole_run = run_with_window(1e9);

  ASSERT_GT(off.interruptions, 0u);
  // Seconds are dedupe-invariant.
  EXPECT_DOUBLE_EQ(off.glitch_seconds, window1.glitch_seconds);
  EXPECT_DOUBLE_EQ(off.glitch_seconds, whole_run.glitch_seconds);
  // Counts only ever shrink as the window grows.
  EXPECT_GE(off.interruptions, window1.interruptions);
  EXPECT_GE(window1.interruptions, whole_run.interruptions);
  // A run-length window counts each glitching stream exactly once.
  EXPECT_EQ(whole_run.interruptions, whole_run.glitched_streams);
  // And without dedupe, some stream glitched more than once, so dedupe
  // actually removed double counting in this scenario.
  EXPECT_GT(off.interruptions, whole_run.interruptions);
}

}  // namespace
}  // namespace vodsim
