// Tests for workload analysis: trace profiling and Zipf-theta estimation.

#include <gtest/gtest.h>

#include <cmath>

#include "vodsim/workload/analysis.h"
#include "vodsim/workload/drift.h"
#include "vodsim/workload/poisson.h"
#include "vodsim/workload/request_generator.h"

namespace vodsim {
namespace {

RequestTrace synthetic_trace(std::size_t num_videos, double theta,
                             std::size_t n, std::uint64_t seed) {
  StaticZipfPopularity popularity(num_videos, theta);
  RequestGenerator generator(PoissonProcess(1.0), popularity, seed);
  return RequestTrace::record(generator, n);
}

TEST(WorkloadProfile, CountsAndShares) {
  RequestTrace trace;
  trace.append({1.0, 0});
  trace.append({2.0, 0});
  trace.append({3.0, 2});
  const WorkloadProfile profile = profile_trace(trace, 4);
  EXPECT_EQ(profile.total, 3u);
  EXPECT_EQ(profile.counts[0], 2u);
  EXPECT_EQ(profile.counts[1], 0u);
  EXPECT_EQ(profile.counts[2], 1u);
  EXPECT_DOUBLE_EQ(profile.shares[0], 2.0 / 3.0);
  EXPECT_EQ(profile.by_popularity[0], 0);
  EXPECT_EQ(profile.by_popularity[1], 2);
}

TEST(WorkloadProfile, HeadShare) {
  RequestTrace trace;
  for (int i = 0; i < 8; ++i) trace.append({static_cast<double>(i), 0});
  for (int i = 8; i < 10; ++i) trace.append({static_cast<double>(i), 1});
  const WorkloadProfile profile = profile_trace(trace, 3);
  EXPECT_DOUBLE_EQ(profile.head_share(1), 0.8);
  EXPECT_DOUBLE_EQ(profile.head_share(2), 1.0);
  EXPECT_DOUBLE_EQ(profile.head_share(99), 1.0);  // clamps
}

TEST(WorkloadProfile, EmptyTraceSafe) {
  const WorkloadProfile profile = profile_trace(RequestTrace{}, 5);
  EXPECT_EQ(profile.total, 0u);
  EXPECT_DOUBLE_EQ(profile.head_share(3), 0.0);
  EXPECT_DOUBLE_EQ(estimate_zipf_theta(profile), 1.0);  // unidentifiable
}

class ThetaRecovery : public ::testing::TestWithParam<double> {};

TEST_P(ThetaRecovery, EstimateMatchesGeneratingTheta) {
  const double theta = GetParam();
  const RequestTrace trace = synthetic_trace(200, theta, 100000, 7);
  const double estimate = estimate_zipf_theta(profile_trace(trace, 200));
  // Log-log regression over 200 ranks with 100k samples: the head is
  // measured precisely; the sparse tail biases the fit slightly upward for
  // very skewed laws, so allow a modest tolerance.
  EXPECT_NEAR(estimate, theta, 0.15) << "theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ThetaRecovery,
                         ::testing::Values(-1.0, -0.5, 0.0, 0.271, 0.5),
                         [](const ::testing::TestParamInfo<double>& info) {
                           const int milli =
                               static_cast<int>(std::lround(info.param * 100));
                           return std::string(milli < 0 ? "m" : "p") +
                                  std::to_string(std::abs(milli));
                         });

TEST(ThetaEstimate, UniformLooksUniform) {
  const RequestTrace trace = synthetic_trace(100, 1.0, 50000, 9);
  const double estimate = estimate_zipf_theta(profile_trace(trace, 100));
  // theta = 1 means a flat law; sampling noise imposes a tiny artificial
  // slope, so the estimate lands just below 1.
  EXPECT_GT(estimate, 0.9);
  EXPECT_LE(estimate, 1.05);
}

TEST(ThetaEstimate, OrdersSkews) {
  // More skewed data must yield a smaller estimated theta.
  const double mild = estimate_zipf_theta(
      profile_trace(synthetic_trace(150, 0.7, 40000, 11), 150));
  const double strong = estimate_zipf_theta(
      profile_trace(synthetic_trace(150, -0.7, 40000, 11), 150));
  EXPECT_LT(strong, mild);
}

TEST(ThetaEstimate, SourceConvenienceOverload) {
  StaticZipfPopularity popularity(100, 0.271);
  RequestGenerator generator(PoissonProcess(1.0), popularity, 13);
  const double estimate = estimate_zipf_theta(generator, 50000, 100);
  EXPECT_NEAR(estimate, 0.271, 0.2);
}

}  // namespace
}  // namespace vodsim
