// The check subsystem's own tests: the invariant auditor must reject
// fabricated broken states (it is not vacuous), full engine runs under
// paranoid mode must pass it, and the reference oracle must agree with the
// engine on configurations inside its scope.

#include <gtest/gtest.h>

#include <stdexcept>

#include "vodsim/check/fuzzer.h"
#include "vodsim/check/invariant_auditor.h"
#include "vodsim/check/reference_oracle.h"
#include "vodsim/cluster/request.h"
#include "vodsim/cluster/server.h"
#include "vodsim/cluster/video.h"
#include "vodsim/engine/policy_matrix.h"
#include "vodsim/engine/vod_simulation.h"
#include "vodsim/util/env.h"

namespace vodsim {
namespace {

// --- auditor negatives on fabricated states ------------------------------
// Each test builds a tiny broken world by hand and expects the specific
// static check to throw. Positive control first: a healthy state passes.

Video test_video() {
  Video video;
  video.id = 0;
  video.duration = 100.0;
  video.view_bandwidth = 3.0;
  return video;
}

ClientProfile test_client() {
  ClientProfile client;
  client.buffer_capacity = 10.0;
  client.receive_bandwidth = 30.0;
  return client;
}

TEST(InvariantAuditorChecks, HealthyServerPasses) {
  Server server(0, /*bandwidth=*/10.0, /*storage=*/1000.0);
  Request request(0, test_video(), /*arrival=*/0.0, test_client());
  request.begin_streaming(0.0, server.id());
  server.attach(request);
  request.set_allocation(0.0, 3.0);

  InvariantAuditor::ServerExpectations expect;
  EXPECT_NO_THROW(InvariantAuditor::check_server(server, expect));
}

TEST(InvariantAuditorChecks, DetectsLinkOvercommit) {
  // Two 6 Mb/s streams on a 10 Mb/s link: only reachable when capacity
  // enforcement is off (buffer-aware admission), and then the *allocations*
  // must still fit the physical link.
  Video video = test_video();
  video.view_bandwidth = 6.0;
  Server server(0, 10.0, 1000.0);
  Request a(0, video, 0.0, test_client());
  Request b(1, video, 0.0, test_client());
  a.begin_streaming(0.0, server.id());
  b.begin_streaming(0.0, server.id());
  server.attach(a, /*enforce_capacity=*/false);
  server.attach(b, /*enforce_capacity=*/false);
  a.set_allocation(0.0, 6.0);
  b.set_allocation(0.0, 6.0);

  InvariantAuditor::ServerExpectations expect;
  expect.enforce_capacity = false;  // commitments are allowed to exceed...
  EXPECT_THROW(InvariantAuditor::check_server(server, expect),
               AuditFailure);  // ...but physical allocations are not.

  // With capacity enforcement promised, the commitment itself is the
  // violation even before looking at allocations.
  expect.enforce_capacity = true;
  EXPECT_THROW(InvariantAuditor::check_server(server, expect), AuditFailure);
}

TEST(InvariantAuditorChecks, DetectsMinimumFlowDeficit) {
  Server server(0, 10.0, 1000.0);
  Request request(0, test_video(), 0.0, test_client());
  request.begin_streaming(0.0, server.id());
  server.attach(request);
  request.set_allocation(0.0, 1.0);  // below the 3 Mb/s view rate

  InvariantAuditor::ServerExpectations expect;
  expect.minimum_flow = true;
  EXPECT_THROW(InvariantAuditor::check_server(server, expect), AuditFailure);

  // The same state is legal under a scheduler that does not promise
  // minimum flow (intermittent feeding).
  expect.minimum_flow = false;
  EXPECT_NO_THROW(InvariantAuditor::check_server(server, expect));
}

TEST(InvariantAuditorChecks, DetectsStreamsOnFailedServer) {
  Server server(0, 10.0, 1000.0);
  Request request(0, test_video(), 0.0, test_client());
  request.begin_streaming(0.0, server.id());
  server.attach(request);
  request.set_allocation(0.0, 3.0);
  server.set_available(false);

  InvariantAuditor::ServerExpectations expect;
  EXPECT_THROW(InvariantAuditor::check_server(server, expect), AuditFailure);
}

TEST(InvariantAuditorChecks, DetectsStaleBackPointer) {
  Server host(0, 10.0, 1000.0);
  Server other(1, 10.0, 1000.0);
  Request request(0, test_video(), 0.0, test_client());
  request.begin_streaming(0.0, other.id());  // points at the wrong server
  host.attach(request);
  request.set_allocation(0.0, 3.0);

  EXPECT_THROW(InvariantAuditor::check_request(request, host, 0), AuditFailure);
}

TEST(InvariantAuditorChecks, DetectsActiveIndexMismatch) {
  Server server(0, 10.0, 1000.0);
  Request request(0, test_video(), 0.0, test_client());
  request.begin_streaming(0.0, server.id());
  server.attach(request);
  request.set_allocation(0.0, 3.0);

  EXPECT_THROW(InvariantAuditor::check_request(request, server, /*index=*/5),
               AuditFailure);
}

// --- paranoid engine runs -------------------------------------------------

SimulationConfig paranoid_base(std::uint64_t seed) {
  SimulationConfig config;
  config.system = SystemConfig::small_system();
  config.zipf_theta = 0.271;
  config.client.receive_bandwidth = 30.0;
  config.duration = hours(0.25);
  config.warmup = 0.0;
  config.seed = seed;
  config.paranoid = true;
  return config;
}

TEST(ParanoidMode, GoldenPolicyMatrixPassesTheAuditor) {
  for (const PolicySpec& policy : figure6_policies()) {
    SCOPED_TRACE(policy.label);
    SimulationConfig config = apply_policy(paranoid_base(7), policy);
    VodSimulation simulation(config);
    ASSERT_NO_THROW(simulation.run());
    ASSERT_NE(simulation.auditor(), nullptr);
    EXPECT_GT(simulation.auditor()->events_audited(), 0u);
    EXPECT_GT(simulation.auditor()->checks_run(),
              simulation.auditor()->events_audited());
  }
}

TEST(ParanoidMode, FeatureConfigsPassTheAuditor) {
  // Failure injection with DRM recovery.
  SimulationConfig failure = paranoid_base(11);
  failure.failure.enabled = true;
  failure.failure.mean_time_between_failures = hours(0.05);
  failure.failure.mean_time_to_repair = hours(0.02);
  EXPECT_NO_THROW(VodSimulation(failure).run());

  // Dynamic replication under overload.
  SimulationConfig replication = paranoid_base(13);
  replication.load_factor = 2.0;
  replication.system.avg_copies = 1.0;
  replication.replication.enabled = true;
  replication.replication.rejection_threshold = 1;
  replication.replication.window = 600.0;
  EXPECT_NO_THROW(VodSimulation(replication).run());

  // VCR interactivity (pauses shift deadlines; full buffers go slack).
  SimulationConfig interactivity = paranoid_base(17);
  interactivity.client.staging_fraction = 0.2;
  interactivity.interactivity.enabled = true;
  interactivity.interactivity.pauses_per_hour = 40.0;
  interactivity.interactivity.mean_pause_duration = 30.0;
  EXPECT_NO_THROW(VodSimulation(interactivity).run());

  // Intermittent transmission with staging (no minimum-flow promise).
  SimulationConfig intermittent = paranoid_base(19);
  intermittent.client.staging_fraction = 0.2;
  intermittent.scheduler = SchedulerKind::kIntermittent;
  intermittent.intermittent_safety_cover = 5.0;
  EXPECT_NO_THROW(VodSimulation(intermittent).run());
}

TEST(ParanoidMode, AuditedRunIsBitIdenticalToPlainRun) {
  SimulationConfig config = paranoid_base(23);
  config.client.staging_fraction = 0.2;
  config.admission.migration.enabled = true;

  VodSimulation audited(config);
  audited.run();
  config.paranoid = false;
  VodSimulation plain(config);
  plain.run();

  EXPECT_EQ(audited.metrics().utilization(), plain.metrics().utilization());
  EXPECT_EQ(audited.metrics().transmitted(), plain.metrics().transmitted());
  EXPECT_EQ(audited.metrics().arrivals(), plain.metrics().arrivals());
  EXPECT_EQ(audited.metrics().accepts(), plain.metrics().accepts());
  EXPECT_EQ(audited.metrics().rejects(), plain.metrics().rejects());
  EXPECT_EQ(audited.metrics().migration_steps(), plain.metrics().migration_steps());
  // Unless the environment forces paranoia on (the CI Debug job sets
  // VODSIM_PARANOID=1 for the whole suite), the plain run has no auditor.
  if (env_long("VODSIM_PARANOID", 0) == 0) {
    EXPECT_EQ(plain.auditor(), nullptr);
  }
}

// --- reference oracle -----------------------------------------------------

SimulationConfig oracle_config(std::uint64_t seed) {
  SimulationConfig config;
  config.system.num_servers = 3;
  config.system.server_bandwidth = 15.0;
  config.system.server_storage = 3000.0;
  config.system.video_min_duration = 60.0;
  config.system.video_max_duration = 180.0;
  config.system.num_videos = 12;
  config.system.avg_copies = 1.5;
  config.system.view_bandwidth = 1.5;
  config.zipf_theta = 0.271;
  config.load_factor = 1.1;
  config.duration = 300.0;
  config.warmup = 0.0;
  config.seed = seed;
  return config;
}

void expect_oracle_agreement(const SimulationConfig& config) {
  ASSERT_TRUE(oracle_supports(config));
  const RequestTrace trace = engine_trace(config);
  VodSimulation engine(config, trace);
  engine.run();
  ASSERT_GT(engine.metrics().arrivals(), 0u);
  const OracleResult oracle = run_reference(config, trace);
  EXPECT_EQ(compare_against_engine(engine, oracle), "");
}

TEST(ReferenceOracle, AgreesOnContinuousTransmission) {
  expect_oracle_agreement(oracle_config(1));
}

TEST(ReferenceOracle, AgreesOnStagingAndMigration) {
  SimulationConfig config = oracle_config(2);
  config.client.staging_fraction = 0.2;
  config.client.receive_bandwidth = 3.0;
  config.admission.migration.enabled = true;
  config.admission.migration.max_chain_length = 2;
  expect_oracle_agreement(config);
}

TEST(ReferenceOracle, AgreesOnIntermittentScheduling) {
  SimulationConfig config = oracle_config(3);
  config.client.staging_fraction = 0.2;
  config.scheduler = SchedulerKind::kIntermittent;
  config.intermittent_safety_cover = 3.0;
  expect_oracle_agreement(config);
}

TEST(ReferenceOracle, AgreesOnFailuresAndReplication) {
  SimulationConfig config = oracle_config(4);
  config.failure.enabled = true;
  config.failure.mean_time_between_failures = 200.0;
  config.failure.mean_time_to_repair = 50.0;
  config.replication.enabled = true;
  config.replication.rejection_threshold = 1;
  config.replication.window = 120.0;
  config.load_factor = 1.3;
  expect_oracle_agreement(config);
}

TEST(ReferenceOracle, DeclaresItsExclusions) {
  SimulationConfig interactivity = oracle_config(5);
  interactivity.interactivity.enabled = true;
  EXPECT_FALSE(oracle_supports(interactivity));
  EXPECT_THROW(run_reference(interactivity, engine_trace(interactivity)),
               std::invalid_argument);

  SimulationConfig buffer_aware = oracle_config(6);
  buffer_aware.client.staging_fraction = 0.2;
  buffer_aware.admission.buffer_aware = true;
  EXPECT_FALSE(oracle_supports(buffer_aware));

  EXPECT_TRUE(oracle_supports(oracle_config(7)));
}

TEST(ReferenceOracle, RecordedTraceMatchesGeneratedWorkload) {
  // engine_trace must reproduce the engine's own arrival stream: a run fed
  // the recorded trace is bit-identical to one generating arrivals live.
  const SimulationConfig config = oracle_config(8);
  VodSimulation live(config);
  live.run();
  const RequestTrace trace = engine_trace(config);  // must outlive the engine
  VodSimulation replayed(config, trace);
  replayed.run();
  EXPECT_EQ(live.metrics().arrivals(), replayed.metrics().arrivals());
  EXPECT_EQ(live.metrics().accepts(), replayed.metrics().accepts());
  EXPECT_EQ(live.metrics().utilization(), replayed.metrics().utilization());
  EXPECT_EQ(live.metrics().transmitted(), replayed.metrics().transmitted());
}

// --- fuzzer plumbing ------------------------------------------------------

TEST(Fuzzer, ScenarioGenerationIsDeterministic) {
  Rng a(99), b(99);
  for (int i = 0; i < 20; ++i) {
    const SimulationConfig first = random_scenario(a);
    const SimulationConfig second = random_scenario(b);
    EXPECT_EQ(to_gtest_case(first, "x"), to_gtest_case(second, "x"));
    EXPECT_NO_THROW(first.validate());
  }
}

TEST(Fuzzer, PathologyCorpusPasses) {
  for (const SimulationConfig& config : pathology_corpus()) {
    const FuzzResult result = run_scenario(config);
    EXPECT_TRUE(result.passed) << result.failure;
  }
}

TEST(Fuzzer, ShrinkerPreservesPassingConfigs) {
  // A passing config is returned unchanged (nothing to shrink toward).
  const SimulationConfig config = oracle_config(9);
  const SimulationConfig shrunk = shrink_scenario(config);
  EXPECT_EQ(to_gtest_case(config, "x"), to_gtest_case(shrunk, "x"));
}

TEST(Fuzzer, GtestRenderingIsComplete) {
  Rng rng(7);
  const SimulationConfig config = random_scenario(rng);
  const std::string code = to_gtest_case(config, "Rendered");
  EXPECT_NE(code.find("TEST(FuzzRegression, Rendered)"), std::string::npos);
  EXPECT_NE(code.find("run_scenario"), std::string::npos);
  EXPECT_NE(code.find("config.seed"), std::string::npos);
}

}  // namespace
}  // namespace vodsim
