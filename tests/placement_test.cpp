// Tests for placement policies: copy budgets, storage feasibility,
// popularity proportionality.

#include <gtest/gtest.h>

#include <numeric>

#include "vodsim/placement/bsr.h"
#include "vodsim/placement/even.h"
#include "vodsim/placement/partial_predictive.h"
#include "vodsim/placement/placement.h"
#include "vodsim/placement/predictive.h"
#include "vodsim/workload/catalog.h"
#include "vodsim/workload/zipf.h"

namespace vodsim {
namespace {

VideoCatalog make_catalog(std::size_t n, Seconds duration = 600.0) {
  std::vector<Video> videos;
  for (std::size_t i = 0; i < n; ++i) {
    Video video;
    video.id = static_cast<VideoId>(i);
    video.duration = duration;
    video.view_bandwidth = 3.0;
    videos.push_back(video);
  }
  return VideoCatalog(std::move(videos));
}

std::vector<Server> make_servers(int n, Megabits storage = 1e9) {
  std::vector<Server> servers;
  for (int i = 0; i < n; ++i) servers.emplace_back(i, 100.0, storage);
  return servers;
}

std::vector<double> zipf_popularity(std::size_t n, double theta) {
  return ZipfDistribution(n, theta).probabilities();
}

// --------------------------------------------------------------- helpers

TEST(PlacementDetail, CopyBudgetRounds) {
  EXPECT_EQ(placement_detail::copy_budget(100, 2.2), 220);
  EXPECT_EQ(placement_detail::copy_budget(10, 2.25), 23);  // llround
  EXPECT_EQ(placement_detail::copy_budget(3, 1.0), 3);
}

TEST(PlacementDetail, ProportionalCopiesExactBudgetAndFloor) {
  const std::vector<double> weights = {0.6, 0.25, 0.1, 0.04, 0.01};
  const auto copies = placement_detail::proportional_copies(weights, 20);
  EXPECT_EQ(std::accumulate(copies.begin(), copies.end(), 0), 20);
  for (int c : copies) EXPECT_GE(c, 1);
  // Ordering follows weights.
  EXPECT_GE(copies[0], copies[1]);
  EXPECT_GE(copies[1], copies[2]);
  EXPECT_GE(copies[2], copies[4]);
}

TEST(PlacementDetail, ProportionalCopiesMinimumBudget) {
  const std::vector<double> weights = {0.9, 0.05, 0.05};
  const auto copies = placement_detail::proportional_copies(weights, 3);
  EXPECT_EQ(copies, (std::vector<int>{1, 1, 1}));
}

TEST(PlacementDetail, InstallRespectsDistinctServers) {
  const VideoCatalog catalog = make_catalog(4);
  auto servers = make_servers(3);
  Rng rng(1);
  const std::vector<int> copies = {3, 3, 3, 3};
  const auto result = placement_detail::install_replicas(catalog, copies, servers, rng);
  EXPECT_EQ(result.placed_total, 12);
  EXPECT_EQ(result.shortfall, 0);
  for (const Server& server : servers) EXPECT_EQ(server.replicas().size(), 4u);
}

TEST(PlacementDetail, InstallReportsStorageShortfall) {
  const VideoCatalog catalog = make_catalog(10, 600.0);  // 1800 Mb each
  auto servers = make_servers(2, /*storage=*/4000.0);    // 2 videos per server
  Rng rng(2);
  const std::vector<int> copies(10, 1);
  const auto result = placement_detail::install_replicas(catalog, copies, servers, rng);
  EXPECT_EQ(result.placed_total, 4);
  EXPECT_EQ(result.shortfall, 6);
}

// --------------------------------------------------------------- even

TEST(EvenPlacement, UniformCountsWithRandomSurplus) {
  const VideoCatalog catalog = make_catalog(10);
  auto servers = make_servers(5);
  Rng rng(3);
  EvenPlacement policy;
  const auto result =
      policy.place(catalog, zipf_popularity(10, 0.0), 2.2, servers, rng);
  EXPECT_EQ(result.placed_total, 22);
  int twos = 0;
  int threes = 0;
  for (int c : result.copies) {
    EXPECT_TRUE(c == 2 || c == 3) << c;
    (c == 2 ? twos : threes)++;
  }
  EXPECT_EQ(twos, 8);
  EXPECT_EQ(threes, 2);
}

TEST(EvenPlacement, IgnoresPopularity) {
  const VideoCatalog catalog = make_catalog(20);
  Rng rng_a(7);
  Rng rng_b(7);
  auto servers_a = make_servers(5);
  auto servers_b = make_servers(5);
  EvenPlacement policy;
  const auto with_skew =
      policy.place(catalog, zipf_popularity(20, -1.5), 2.0, servers_a, rng_a);
  const auto with_uniform =
      policy.place(catalog, zipf_popularity(20, 1.0), 2.0, servers_b, rng_b);
  EXPECT_EQ(with_skew.copies, with_uniform.copies);
}

// --------------------------------------------------------------- predictive

TEST(PredictivePlacement, FollowsPopularity) {
  const VideoCatalog catalog = make_catalog(50);
  auto servers = make_servers(10);
  Rng rng(4);
  PredictivePlacement policy;
  const auto popularity = zipf_popularity(50, -0.5);
  const auto result = policy.place(catalog, popularity, 2.2, servers, rng);
  EXPECT_EQ(result.placed_total, 110);
  // The most popular title gets the most copies; every title gets >= 1.
  EXPECT_EQ(*std::max_element(result.copies.begin(), result.copies.end()),
            result.copies[0]);
  for (int c : result.copies) EXPECT_GE(c, 1);
  EXPECT_GT(result.copies[0], result.copies[49]);
}

TEST(PredictivePlacement, CopiesCappedAtServerCount) {
  const VideoCatalog catalog = make_catalog(5);
  auto servers = make_servers(3);
  Rng rng(5);
  PredictivePlacement policy;
  // Extreme skew: proportional share of video 0 far exceeds 3 copies.
  const auto result =
      policy.place(catalog, zipf_popularity(5, -1.5), 3.0, servers, rng);
  for (int c : result.copies) EXPECT_LE(c, 3);
}

// --------------------------------------------------------------- partial

TEST(PartialPredictive, SurplusGoesToPopularHead) {
  const VideoCatalog catalog = make_catalog(10);
  auto servers = make_servers(5);
  Rng rng(6);
  PartialPredictivePlacement policy(/*head_fraction=*/0.2, /*tail_shift=*/0.0);
  const auto result =
      policy.place(catalog, zipf_popularity(10, 0.0), 2.2, servers, rng);
  EXPECT_EQ(result.placed_total, 22);
  // The 2 surplus copies land on the 2 most popular titles.
  EXPECT_EQ(result.copies[0], 3);
  EXPECT_EQ(result.copies[1], 3);
  for (std::size_t i = 2; i < 10; ++i) EXPECT_EQ(result.copies[i], 2);
}

TEST(PartialPredictive, TailShiftMovesBudgetToHead) {
  const VideoCatalog catalog = make_catalog(20);
  auto servers = make_servers(10);
  Rng rng(7);
  PartialPredictivePlacement policy(/*head_fraction=*/0.1, /*tail_shift=*/0.2);
  const auto result =
      policy.place(catalog, zipf_popularity(20, 0.0), 2.0, servers, rng);
  EXPECT_EQ(result.placed_total, 40);  // budget preserved
  for (int c : result.copies) EXPECT_GE(c, 1);
  EXPECT_GT(result.copies[0], 3);           // head boosted
  EXPECT_EQ(result.copies[19], 1);          // tail shrunk to floor
}

// --------------------------------------------------------------- bsr

TEST(BsrPlacement, PlacesFullBudgetAndFloor) {
  const VideoCatalog catalog = make_catalog(30);
  auto servers = make_servers(6);
  Rng rng(8);
  BsrPlacement policy;
  const auto result =
      policy.place(catalog, zipf_popularity(30, 0.0), 2.0, servers, rng);
  EXPECT_EQ(result.placed_total, 60);
  EXPECT_EQ(result.shortfall, 0);
  for (int c : result.copies) EXPECT_GE(c, 1);
}

TEST(BsrPlacement, HotTitlesSpreadAcrossServers) {
  const VideoCatalog catalog = make_catalog(12);
  auto servers = make_servers(4);
  Rng rng(9);
  BsrPlacement policy;
  const auto result =
      policy.place(catalog, zipf_popularity(12, -1.0), 2.0, servers, rng);
  // The hottest title's copies are on distinct servers by construction.
  int holders = 0;
  for (const Server& server : servers) {
    if (server.holds(0)) ++holders;
  }
  EXPECT_EQ(holders, result.copies[0]);
}

// --------------------------------------------------------------- factory

TEST(PlacementFactory, RoundTripNames) {
  for (PlacementKind kind : {PlacementKind::kEven, PlacementKind::kPredictive,
                             PlacementKind::kPartialPredictive, PlacementKind::kBsr}) {
    const auto policy = make_placement(kind);
    EXPECT_EQ(policy->name(), to_string(kind));
    EXPECT_EQ(placement_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(placement_kind_from_string("nope"), std::invalid_argument);
}

// ------------------------------------------------- budget-parity property

class PlacementBudgetParity : public ::testing::TestWithParam<PlacementKind> {};

TEST_P(PlacementBudgetParity, AllPoliciesSpendTheSameBudget) {
  const VideoCatalog catalog = make_catalog(40);
  auto servers = make_servers(8);
  Rng rng(10);
  const auto policy = make_placement(GetParam());
  const auto result =
      policy->place(catalog, zipf_popularity(40, 0.271), 2.2, servers, rng);
  EXPECT_EQ(result.placed_total, placement_detail::copy_budget(40, 2.2));
  EXPECT_EQ(result.shortfall, 0);
  // Directory sanity: every video is somewhere.
  for (int c : result.copies) EXPECT_GE(c, 1);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PlacementBudgetParity,
                         ::testing::Values(PlacementKind::kEven,
                                           PlacementKind::kPredictive,
                                           PlacementKind::kPartialPredictive,
                                           PlacementKind::kBsr),
                         [](const ::testing::TestParamInfo<PlacementKind>& info) {
                           return to_string(info.param);
                         });

}  // namespace
}  // namespace vodsim
