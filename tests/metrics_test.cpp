// Metrics window-boundary semantics. engine_test.cpp covers the broad
// strokes (clipping, ratios); this file pins the exact edge conventions the
// warmup logic depends on: the window is half-open [start, end), events at
// each edge land on the documented side, zero-length and inverted intervals
// contribute nothing, and replication accounting stays separate from (and
// is counted differently than) delivered video.

#include <gtest/gtest.h>

#include "vodsim/engine/metrics.h"

namespace vodsim {
namespace {

constexpr Seconds kStart = 100.0;
constexpr Seconds kEnd = 200.0;
constexpr Mbps kCapacity = 10.0;

TEST(MetricsWindow, CountEventsAreHalfOpenOnTheWindow) {
  Metrics metrics(kStart, kEnd, kCapacity);

  // Exactly at window start: inside.
  metrics.record_arrival(kStart);
  metrics.record_acceptance(kStart, false);
  metrics.record_completion(kStart);
  metrics.record_drop(kStart);
  EXPECT_EQ(metrics.arrivals(), 1u);
  EXPECT_EQ(metrics.accepts(), 1u);
  EXPECT_EQ(metrics.completions(), 1u);
  EXPECT_EQ(metrics.drops(), 1u);

  // Exactly at window end: outside (half-open).
  metrics.record_arrival(kEnd);
  metrics.record_rejection(kEnd);
  metrics.record_migration_chain(kEnd, 3);
  metrics.record_underflow(kEnd, 5.0);
  EXPECT_EQ(metrics.arrivals(), 1u);
  EXPECT_EQ(metrics.rejects(), 0u);
  EXPECT_EQ(metrics.migration_steps(), 0u);
  EXPECT_EQ(metrics.underflow_events(), 0u);

  // Just before the end: inside.
  metrics.record_rejection(kEnd - 1e-9);
  EXPECT_EQ(metrics.rejects(), 1u);
}

TEST(MetricsWindow, TransmissionIntervalsAtTheEdges) {
  Metrics metrics(kStart, kEnd, kCapacity);

  // Ends exactly at window start: zero overlap.
  metrics.record_transmission(50.0, kStart, 4.0);
  EXPECT_EQ(metrics.transmitted(), 0.0);

  // Starts exactly at window end: zero overlap.
  metrics.record_transmission(kEnd, 300.0, 4.0);
  EXPECT_EQ(metrics.transmitted(), 0.0);

  // Straddles the start: only the inside part counts.
  metrics.record_transmission(kStart - 10.0, kStart + 10.0, 4.0);
  EXPECT_DOUBLE_EQ(metrics.transmitted(), 40.0);

  // Straddles the end: only the inside part counts.
  metrics.record_transmission(kEnd - 5.0, kEnd + 5.0, 4.0);
  EXPECT_DOUBLE_EQ(metrics.transmitted(), 60.0);

  // Covers the whole window and beyond: clipped to the window exactly.
  Metrics whole(kStart, kEnd, kCapacity);
  whole.record_transmission(0.0, 1000.0, kCapacity);
  EXPECT_DOUBLE_EQ(whole.transmitted(), kCapacity * (kEnd - kStart));
  EXPECT_DOUBLE_EQ(whole.utilization(), 1.0);
}

TEST(MetricsWindow, DegenerateIntervalsContributeNothing) {
  Metrics metrics(kStart, kEnd, kCapacity);
  metrics.record_transmission(150.0, 150.0, 4.0);  // zero-length
  metrics.record_transmission(160.0, 150.0, 4.0);  // inverted
  metrics.record_transmission(150.0, 160.0, 0.0);  // zero rate
  metrics.record_transmission(150.0, 160.0, -1.0); // negative rate
  EXPECT_EQ(metrics.transmitted(), 0.0);
  EXPECT_EQ(metrics.utilization(), 0.0);
}

TEST(MetricsWindow, ReplicationSeparateFromDelivery) {
  Metrics metrics(kStart, kEnd, kCapacity);

  // Replication traffic is overhead: its megabits are window-clipped like
  // transmission, but never appear in transmitted()/utilization().
  metrics.record_replication(kStart - 10.0, kStart + 20.0, 2.0);
  EXPECT_EQ(metrics.replications(), 1u);
  EXPECT_DOUBLE_EQ(metrics.replication_megabits(), 40.0);
  EXPECT_EQ(metrics.transmitted(), 0.0);
  EXPECT_EQ(metrics.utilization(), 0.0);

  // A copy completing entirely during warmup still *counts* — the replica
  // it created shapes the whole measured window — but moves no in-window
  // megabits.
  metrics.record_replication(10.0, 50.0, 2.0);
  EXPECT_EQ(metrics.replications(), 2u);
  EXPECT_DOUBLE_EQ(metrics.replication_megabits(), 40.0);
}

}  // namespace
}  // namespace vodsim
