// Tests for the cluster model: staging buffer fluid math, request
// lifecycle/advance, server replica & active-set management.

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "vodsim/cluster/client.h"
#include "vodsim/cluster/fluid_lane.h"
#include "vodsim/cluster/request.h"
#include "vodsim/cluster/server.h"
#include "vodsim/cluster/video.h"
#include "vodsim/util/stable_vector.h"

namespace vodsim {
namespace {

Video make_video(VideoId id = 0, Seconds duration = 600.0, Mbps view = 3.0) {
  Video video;
  video.id = id;
  video.duration = duration;
  video.view_bandwidth = view;
  return video;
}

// ---------------------------------------------------------------- staging buffer

TEST(StagingBuffer, FillsAndDrains) {
  StagingBuffer buffer(100.0);
  EXPECT_DOUBLE_EQ(buffer.apply(30.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(buffer.level(), 20.0);
  EXPECT_DOUBLE_EQ(buffer.apply(0.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(buffer.level(), 15.0);
}

TEST(StagingBuffer, ReportsUnderflow) {
  StagingBuffer buffer(100.0);
  buffer.apply(10.0, 0.0);
  const Megabits underflow = buffer.apply(0.0, 25.0);
  EXPECT_DOUBLE_EQ(underflow, 15.0);
  EXPECT_DOUBLE_EQ(buffer.level(), 0.0);  // clamped
}

TEST(StagingBuffer, ClampsAtCapacity) {
  StagingBuffer buffer(50.0);
  buffer.apply(60.0, 0.0);
  EXPECT_DOUBLE_EQ(buffer.level(), 50.0);
  EXPECT_TRUE(buffer.full());
  EXPECT_DOUBLE_EQ(buffer.headroom(), 0.0);
}

TEST(StagingBuffer, FullWithinTolerance) {
  StagingBuffer buffer(50.0);
  buffer.apply(50.0 - 1e-8, 0.0);
  EXPECT_TRUE(buffer.full());
}

TEST(StagingBuffer, PlaybackCover) {
  StagingBuffer buffer(100.0);
  buffer.apply(30.0, 0.0);
  EXPECT_DOUBLE_EQ(buffer.playback_cover(3.0), 10.0);
}

TEST(StagingBuffer, ZeroCapacityAlwaysFull) {
  StagingBuffer buffer(0.0);
  EXPECT_TRUE(buffer.full());
  EXPECT_DOUBLE_EQ(buffer.headroom(), 0.0);
}

TEST(StagingBuffer, TinyUnderflowIgnored) {
  StagingBuffer buffer(10.0);
  buffer.apply(1.0, 0.0);
  EXPECT_DOUBLE_EQ(buffer.apply(0.0, 1.0 + 1e-9), 0.0);  // below tolerance
}

// ---------------------------------------------------------------- request

TEST(Request, InitialState) {
  ClientProfile client{120.0, 30.0};
  Request request(1, make_video(0, 600.0), 100.0, client);
  EXPECT_EQ(request.state(), RequestState::kStreaming);
  EXPECT_EQ(request.server(), kNoServer);
  EXPECT_DOUBLE_EQ(request.remaining(), 1800.0);  // 600 s x 3 Mb/s
  EXPECT_DOUBLE_EQ(request.playback_end(), 700.0);
  EXPECT_DOUBLE_EQ(request.total_size(), 1800.0);
  EXPECT_EQ(request.hops(), 0);
  EXPECT_FALSE(request.finished());
}

TEST(Request, AdvanceAtViewRateKeepsBufferEmpty) {
  ClientProfile client{120.0, 30.0};
  Request request(1, make_video(), 0.0, client);
  request.begin_streaming(0.0, 0);
  request.set_allocation(0.0, 3.0);
  EXPECT_DOUBLE_EQ(request.advance(100.0), 0.0);
  EXPECT_DOUBLE_EQ(request.remaining(), 1800.0 - 300.0);
  EXPECT_DOUBLE_EQ(request.buffer_level(), 0.0);
}

TEST(Request, WorkaheadFillsBuffer) {
  ClientProfile client{120.0, 30.0};
  Request request(1, make_video(), 0.0, client);
  request.begin_streaming(0.0, 0);
  request.set_allocation(0.0, 15.0);
  request.advance(10.0);
  // Sent 150, viewed 30 -> buffer 120 (exactly capacity).
  EXPECT_DOUBLE_EQ(request.buffer_level(), 120.0);
  EXPECT_TRUE(request.buffer_full());
  EXPECT_DOUBLE_EQ(request.remaining(), 1650.0);
}

TEST(Request, ProjectedFinishUsesViewBandwidth) {
  ClientProfile client{120.0, 30.0};
  Request request(1, make_video(), 0.0, client);
  EXPECT_DOUBLE_EQ(request.projected_finish(50.0), 50.0 + 1800.0 / 3.0);
}

TEST(Request, AdvanceStopsConsumingAfterPlaybackEnd) {
  ClientProfile client{10000.0, 1000.0};
  Request request(1, make_video(0, 100.0), 0.0, client);  // 300 Mb total
  request.begin_streaming(0.0, 0);
  request.set_allocation(0.0, 300.0);
  request.advance(1.0);  // all 300 Mb sent in 1 s; viewed 3 Mb
  EXPECT_TRUE(request.finished());
  EXPECT_DOUBLE_EQ(request.buffer_level(), 297.0);
  request.set_allocation(1.0, 0.0);
  request.advance(100.0);  // playback end
  EXPECT_NEAR(request.buffer_level(), 0.0, 1e-9);
  request.advance(200.0);  // beyond playback end: no further consumption
  EXPECT_NEAR(request.buffer_level(), 0.0, 1e-9);
}

TEST(Request, LifecycleToDone) {
  ClientProfile client{0.0, 3.0};
  Request request(1, make_video(), 0.0, client);
  request.begin_streaming(0.0, 2);
  EXPECT_EQ(request.server(), 2);
  request.set_allocation(0.0, 3.0);
  request.advance(600.0);
  EXPECT_TRUE(request.finished());
  request.mark_tx_complete(600.0);
  EXPECT_EQ(request.state(), RequestState::kTxComplete);
  EXPECT_EQ(request.server(), kNoServer);
  request.mark_done(600.0);
  EXPECT_EQ(request.state(), RequestState::kDone);
}

TEST(Request, MigrationIncrementsHops) {
  ClientProfile client{120.0, 30.0};
  Request request(1, make_video(), 0.0, client);
  request.begin_streaming(0.0, 0);
  request.set_allocation(0.0, 3.0);
  request.advance(10.0);
  request.begin_migration(10.0);
  EXPECT_EQ(request.state(), RequestState::kMigrating);
  EXPECT_EQ(request.hops(), 1);
  EXPECT_DOUBLE_EQ(request.allocation(), 0.0);
  request.complete_migration(10.0, 3);
  EXPECT_EQ(request.state(), RequestState::kStreaming);
  EXPECT_EQ(request.server(), 3);
}

TEST(Request, MigrationPauseDrainsBuffer) {
  ClientProfile client{120.0, 30.0};
  Request request(1, make_video(), 0.0, client);
  request.begin_streaming(0.0, 0);
  request.set_allocation(0.0, 9.0);
  request.advance(10.0);  // buffer: (9-3)*10 = 60
  EXPECT_DOUBLE_EQ(request.buffer_level(), 60.0);
  request.begin_migration(10.0);
  EXPECT_DOUBLE_EQ(request.advance(20.0), 0.0);  // drains 30, no underflow
  EXPECT_DOUBLE_EQ(request.buffer_level(), 30.0);
}

TEST(Request, RejectionIsTerminal) {
  ClientProfile client{0.0, 3.0};
  Request request(1, make_video(), 0.0, client);
  request.mark_rejected();
  EXPECT_EQ(request.state(), RequestState::kRejected);
}

// ---------------------------------------------------------------- server

TEST(Server, ReplicaStorageAccounting) {
  Server server(0, 100.0, 5000.0);
  const Video a = make_video(0, 600.0);   // 1800 Mb
  const Video b = make_video(1, 1000.0);  // 3000 Mb
  const Video c = make_video(2, 600.0);   // 1800 Mb: does not fit after a+b
  EXPECT_TRUE(server.add_replica(a));
  EXPECT_TRUE(server.add_replica(b));
  EXPECT_FALSE(server.add_replica(c));
  EXPECT_TRUE(server.holds(0));
  EXPECT_TRUE(server.holds(1));
  EXPECT_FALSE(server.holds(2));
  EXPECT_DOUBLE_EQ(server.storage_used(), 4800.0);
  EXPECT_EQ(server.replicas().size(), 2u);
}

TEST(Server, DuplicateReplicaRejected) {
  Server server(0, 100.0, 100000.0);
  const Video a = make_video(0);
  EXPECT_TRUE(server.add_replica(a));
  EXPECT_FALSE(server.add_replica(a));
  EXPECT_DOUBLE_EQ(server.storage_used(), a.size());
}

TEST(Server, AdmissionArithmetic) {
  Server server(0, 10.0, 1e6);
  ClientProfile client{0.0, 3.0};
  Request r1(1, make_video(0), 0.0, client);
  Request r2(2, make_video(0), 0.0, client);
  Request r3(3, make_video(0), 0.0, client);

  EXPECT_TRUE(server.can_admit(3.0));
  server.attach(r1);
  server.attach(r2);
  server.attach(r3);
  EXPECT_DOUBLE_EQ(server.committed_bandwidth(), 9.0);
  EXPECT_FALSE(server.can_admit(3.0));  // 12 > 10
  EXPECT_DOUBLE_EQ(server.slack(), 1.0);
  EXPECT_EQ(server.active_count(), 3u);
}

TEST(Server, DetachSwapsInConstantTime) {
  Server server(0, 100.0, 1e6);
  ClientProfile client{0.0, 3.0};
  Request r1(1, make_video(0), 0.0, client);
  Request r2(2, make_video(0), 0.0, client);
  Request r3(3, make_video(0), 0.0, client);
  server.attach(r1);
  server.attach(r2);
  server.attach(r3);
  server.detach(r1);  // r3 swaps into slot 0
  EXPECT_EQ(server.active_count(), 2u);
  EXPECT_EQ(server.active_requests()[r3.active_index], &r3);
  EXPECT_EQ(server.active_requests()[r2.active_index], &r2);
  server.detach(r3);
  server.detach(r2);
  EXPECT_EQ(server.active_count(), 0u);
  EXPECT_NEAR(server.committed_bandwidth(), 0.0, 1e-12);
}

TEST(Server, UnavailableRefusesAdmission) {
  Server server(0, 100.0, 1e6);
  EXPECT_TRUE(server.can_admit(3.0));
  server.set_available(false);
  EXPECT_FALSE(server.can_admit(3.0));
  server.set_available(true);
  EXPECT_TRUE(server.can_admit(3.0));
}

TEST(Server, ReservationBlocksAdmission) {
  Server server(0, 10.0, 1e6);
  server.reserve_bandwidth(9.0);
  EXPECT_FALSE(server.can_admit(3.0));
  EXPECT_DOUBLE_EQ(server.schedulable_bandwidth(), 1.0);
  server.release_reservation(9.0);
  EXPECT_TRUE(server.can_admit(3.0));
  EXPECT_DOUBLE_EQ(server.schedulable_bandwidth(), 10.0);
}

TEST(Server, TotalAttachedCounts) {
  Server server(0, 100.0, 1e6);
  ClientProfile client{0.0, 3.0};
  Request r1(1, make_video(0), 0.0, client);
  server.attach(r1);
  server.detach(r1);
  Request r2(2, make_video(0), 0.0, client);
  server.attach(r2);
  EXPECT_EQ(server.total_attached(), 2u);
}

// ---------------------------------------------------------------- fluid lane

// The batched kernel must be BIT-identical per stream to the per-stream
// advance path: both call the same fluid_detail formulas in the same order
// per slot, so exact doubles compare equal — only the *metering sum* is
// grouped differently. Three regimes in one batch: workahead (buffer
// fills), exact-rate (buffer stays empty), starved (buffer empty, drains
// into underflow).
TEST(FluidLane, BatchAdvanceIsBitIdenticalToPerStream) {
  ClientProfile client{120.0, 30.0};
  Server per_stream_server(0, 1000.0, 1e6);
  Server batched_server(1, 1000.0, 1e6);
  const Mbps rates[] = {15.0, 3.0, 1.0};

  Request p1(1, make_video(0), 0.0, client), p2(2, make_video(1), 0.0, client),
      p3(3, make_video(2), 0.0, client);
  Request b1(1, make_video(0), 0.0, client), b2(2, make_video(1), 0.0, client),
      b3(3, make_video(2), 0.0, client);
  Request* per_stream[] = {&p1, &p2, &p3};
  Request* batched[] = {&b1, &b2, &b3};
  for (int i = 0; i < 3; ++i) {
    per_stream[i]->begin_streaming(0.0, 0);
    batched[i]->begin_streaming(0.0, 1);
    per_stream_server.attach(*per_stream[i]);
    batched_server.attach(*batched[i]);
    per_stream[i]->set_allocation(0.0, rates[i]);
    batched[i]->set_allocation(0.0, rates[i]);
  }

  Megabits per_stream_underflow[3];
  for (int i = 0; i < 3; ++i) {
    per_stream_underflow[i] = per_stream[i]->advance(10.0);
  }

  std::vector<Megabits> scratch;
  const FluidLane::BatchResult batch =
      batched_server.lane().advance_batch(10.0, 0.0, 100.0, scratch);
  EXPECT_EQ(batch.advanced, 3u);
  EXPECT_TRUE(batch.any_underflow);

  for (int i = 0; i < 3; ++i) {
    SCOPED_TRACE(i);
    // Exact double equality on purpose: identical formulas, identical order.
    EXPECT_EQ(batched[i]->remaining(), per_stream[i]->remaining());
    EXPECT_EQ(batched[i]->buffer_level(), per_stream[i]->buffer_level());
    EXPECT_EQ(batched[i]->last_update(), per_stream[i]->last_update());
    EXPECT_EQ(scratch[static_cast<std::size_t>(i)], per_stream_underflow[i]);
  }
  // The starved stream (rate 1 vs view 3, empty buffer): 10 in, 30 out.
  EXPECT_DOUBLE_EQ(per_stream_underflow[2], 20.0);
  // Batch metering: every stream live across [0,10] inside the window.
  EXPECT_NEAR(batch.transmitted_in_window, (15.0 + 3.0 + 1.0) * 10.0, 1e-9);
}

TEST(FluidLane, BatchMeteringClipsToWindow) {
  ClientProfile client{0.0, 3.0};
  Server server(0, 1000.0, 1e6);
  Request request(1, make_video(0), 0.0, client);
  request.begin_streaming(0.0, 0);
  server.attach(request);
  request.set_allocation(0.0, 3.0);

  std::vector<Megabits> scratch;
  // Window starts at t=20: the advance over [0,30] must meter only [20,30].
  const FluidLane::BatchResult batch =
      server.lane().advance_batch(30.0, 20.0, 100.0, scratch);
  EXPECT_NEAR(batch.transmitted_in_window, 3.0 * 10.0, 1e-12);
  // And an advance wholly before the window meters nothing... (new stream)
  Request early(2, make_video(1), 0.0, client);
  early.begin_streaming(30.0, 0);
  server.attach(early);
  early.set_allocation(30.0, 3.0);
  const FluidLane::BatchResult clipped =
      server.lane().advance_batch(40.0, 50.0, 100.0, scratch);
  EXPECT_DOUBLE_EQ(clipped.transmitted_in_window, 0.0);
}

TEST(FluidLane, SwapRemoveKeepsSlotsCoherent) {
  ClientProfile client{120.0, 30.0};
  Server server(0, 1000.0, 1e6);
  Request r1(1, make_video(0), 0.0, client), r2(2, make_video(1), 0.0, client),
      r3(3, make_video(2), 0.0, client);
  const Mbps rates[] = {3.0, 6.0, 9.0};
  Request* all[] = {&r1, &r2, &r3};
  for (int i = 0; i < 3; ++i) {
    all[i]->begin_streaming(0.0, 0);
    server.attach(*all[i]);
    all[i]->set_allocation(0.0, rates[i]);
  }
  for (Request* request : all) request->advance(10.0);

  // Detach the middle stream: r3's lane slot swaps into r2's, mirroring the
  // active_ vector swap — indices and values must stay paired.
  server.detach(r2);
  EXPECT_EQ(server.lane().size(), 2u);
  EXPECT_EQ(server.active_requests()[r3.active_index], &r3);
  // The detached request reads its home scalars (copied back on detach).
  EXPECT_DOUBLE_EQ(r2.remaining(), 1800.0 - 60.0);
  EXPECT_DOUBLE_EQ(r2.buffer_level(), 30.0);  // (6-3)*10
  // The survivors still read correct state through their (moved) lane slots.
  EXPECT_DOUBLE_EQ(r1.remaining(), 1800.0 - 30.0);
  EXPECT_DOUBLE_EQ(r3.remaining(), 1800.0 - 90.0);
  EXPECT_DOUBLE_EQ(r3.buffer_level(), 60.0);  // (9-3)*10
  EXPECT_EQ(server.lane().remaining(r3.active_index), r3.remaining());

  // And the survivors keep advancing correctly post-swap.
  r3.advance(20.0);
  EXPECT_DOUBLE_EQ(r3.remaining(), 1800.0 - 180.0);
}

TEST(FluidLane, MutatorsWriteThroughToLane) {
  ClientProfile client{120.0, 30.0};
  Server server(0, 1000.0, 1e6);
  Request request(1, make_video(0), 0.0, client);
  request.begin_streaming(0.0, 0);
  server.attach(request);
  request.set_allocation(0.0, 6.0);
  request.advance(10.0);
  EXPECT_DOUBLE_EQ(request.buffer_level(), 30.0);  // (6-3)*10

  // Pause: transmission keeps filling, playback stops draining — the lane
  // must see the paused flag or the batched advance would keep draining.
  request.pause_viewing(10.0);
  std::vector<Megabits> scratch;
  server.lane().advance_batch(15.0, 0.0, 1e9, scratch);
  EXPECT_DOUBLE_EQ(request.buffer_level(), 60.0);  // +6*5 in, nothing out

  request.resume_viewing(15.0);
  request.set_allocation(15.0, 0.0);
  server.lane().advance_batch(25.0, 0.0, 1e9, scratch);
  EXPECT_DOUBLE_EQ(request.buffer_level(), 30.0);  // -3*10 out, nothing in
}

// The batched sort-key pass must produce exactly the doubles the scalar
// per-candidate loop computes: same division, same add, per slot.
TEST(FluidLane, FillProjectedFinishMatchesScalar) {
  ClientProfile client{120.0, 30.0};
  Server server(0, 1000.0, 1e6);
  Request r1(1, make_video(0, 600.0), 0.0, client),
      r2(2, make_video(1, 1000.0), 0.0, client),
      r3(3, make_video(2, 600.0), 0.0, client);
  const Mbps rates[] = {15.0, 3.0, 1.0};
  Request* all[] = {&r1, &r2, &r3};
  for (int i = 0; i < 3; ++i) {
    all[i]->begin_streaming(0.0, 0);
    server.attach(*all[i]);
    all[i]->set_allocation(0.0, rates[i]);
    all[i]->advance(10.0);
  }

  std::vector<Seconds> keys;
  server.lane().fill_projected_finish(37.5, keys);
  ASSERT_EQ(keys.size(), 3u);
  for (Request* request : all) {
    // Exact double equality on purpose: identical formula, identical inputs.
    EXPECT_EQ(keys[request->active_index], request->projected_finish(37.5));
  }
}

// The batched predicted-event pass must reproduce the engine's scalar
// retiming arithmetic bit for bit, and its gates decision for decision,
// with +inf encoding "no event". Four regimes in one lane: a workahead
// filler (buffer-full kept), a starved drainer with staged data
// (buffer-low kept), a zero-rate stream (tx-complete never), and a
// full-buffer filler (buffer-full suppressed by the fullness gate).
TEST(FluidLane, FillPredictedTimesMatchesScalarGates) {
  constexpr Seconds kNever = std::numeric_limits<Seconds>::infinity();
  ClientProfile client{120.0, 30.0};
  Server server(0, 1000.0, 1e6);
  Request filler(1, make_video(0), 0.0, client),
      drainer(2, make_video(1), 0.0, client),
      stalled(3, make_video(2), 0.0, client),
      brimming(4, make_video(3), 0.0, client);
  Request* all[] = {&filler, &drainer, &stalled, &brimming};
  const Mbps warm_rates[] = {6.0, 9.0, 9.0, 15.0};
  for (int i = 0; i < 4; ++i) {
    all[i]->begin_streaming(0.0, 0);
    server.attach(*all[i]);
    all[i]->set_allocation(0.0, warm_rates[i]);
    all[i]->advance(10.0);  // stage some data; brimming reaches capacity
  }
  ASSERT_TRUE(brimming.buffer_full());
  const Seconds now = 10.0;
  drainer.set_allocation(now, 1.0);  // below the 3.0 view rate: draining
  stalled.set_allocation(now, 0.0);  // starved entirely

  const double safety_cover = 4.0;  // threshold = 12 Mb at view 3.0
  std::vector<Seconds> tx, full, low;
  server.lane().fill_predicted_times(now, safety_cover, tx, full, low);
  ASSERT_EQ(tx.size(), 4u);

  // Scalar replicas of reschedule_predicted_events' arithmetic, computed
  // through the Request accessors. Exact equality on purpose.
  auto scalar_tx = [&](const Request& r) {
    return r.allocation() > 0.0 ? now + r.remaining() / r.allocation() : kNever;
  };
  for (Request* request : all) {
    EXPECT_EQ(tx[request->active_index], scalar_tx(*request));
  }

  {  // filler: surplus 3 > 0, buffer has headroom, fills before tx.
    const Mbps surplus = filler.allocation() - filler.drain_rate(now);
    const Seconds expected = now + filler.buffer_headroom() / surplus;
    ASSERT_LT(expected, scalar_tx(filler));
    EXPECT_EQ(full[filler.active_index], expected);
    EXPECT_EQ(low[filler.active_index], kNever);
  }
  {  // drainer: surplus -2, level 60 above threshold 12 -> low at +24 s.
    const Mbps surplus = drainer.allocation() - drainer.drain_rate(now);
    ASSERT_LT(surplus, 0.0);
    const Megabits threshold = safety_cover * drainer.view_bandwidth();
    const Seconds expected =
        now + (drainer.buffer_level() - threshold) / -surplus;
    EXPECT_EQ(low[drainer.active_index], expected);
    EXPECT_EQ(full[drainer.active_index], kNever);
  }
  {  // stalled: rate 0 -> no tx-complete; still drains toward the threshold.
    EXPECT_EQ(tx[stalled.active_index], kNever);
    const Mbps surplus = 0.0 - stalled.drain_rate(now);
    const Megabits threshold = safety_cover * stalled.view_bandwidth();
    const Seconds expected =
        now + (stalled.buffer_level() - threshold) / -surplus;
    EXPECT_EQ(low[stalled.active_index], expected);
  }
  {  // brimming: surplus 12 > 0 but the buffer is full -> no full event.
    EXPECT_EQ(full[brimming.active_index], kNever);
    EXPECT_EQ(low[brimming.active_index], kNever);
  }
}

// Churn across the arena's hot/cold split: swap_remove must move every
// array — including the cold receive-bandwidth tail — as one unit, and the
// write-through sinks must keep landing in the *moved* slot afterwards.
TEST(FluidLane, ChurnKeepsColdFieldsAndWriteThroughCoherent) {
  ClientProfile fast_client{120.0, 30.0};
  ClientProfile slow_client{120.0, 2.0};  // receive < view: never eligible
  Server server(0, 1000.0, 1e6);
  Request r1(1, make_video(0), 0.0, fast_client),
      r2(2, make_video(1), 0.0, slow_client),
      r3(3, make_video(2), 0.0, fast_client);
  Request* all[] = {&r1, &r2, &r3};
  for (Request* request : all) {
    request->begin_streaming(0.0, 0);
    server.attach(*request);
    request->set_allocation(0.0, 6.0);
    request->advance(10.0);
  }

  server.detach(r1);  // r3's slots (all ten arrays) swap into slot 0
  const FluidLane& lane = server.lane();
  ASSERT_EQ(lane.size(), 2u);
  EXPECT_EQ(lane.receive_bandwidth(r3.active_index), 30.0);
  EXPECT_EQ(lane.receive_bandwidth(r2.active_index), 2.0);

  // Eligibility reads the cold array: only r3 can absorb workahead.
  std::vector<std::size_t> eligible;
  lane.eligible_slots(eligible);
  ASSERT_EQ(eligible.size(), 1u);
  EXPECT_EQ(eligible[0], r3.active_index);

  // Write-through after the swap targets the moved slot: pausing r3 must
  // stop the batched drain of r3's buffer, not r2's.
  r3.pause_viewing(10.0);
  std::vector<Megabits> scratch;
  server.lane().advance_batch(20.0, 0.0, 1e9, scratch);
  EXPECT_DOUBLE_EQ(r3.buffer_level(), 30.0 + 6.0 * 10.0);  // inflow only
  EXPECT_DOUBLE_EQ(r2.buffer_level(), 30.0 + (6.0 - 3.0) * 10.0);
}

// AVX-512 smoke: on hosts with avx512f the ifunc resolver dispatches the
// widest clone of every batch kernel; a lane wider than one zmm register
// must still be bit-identical to the scalar path. Compile coverage of the
// clone is unconditional; runtime coverage skips on older hardware.
TEST(FluidLaneAvx512, WideLaneBatchesMatchScalar) {
#if defined(__x86_64__)
  if (!__builtin_cpu_supports("avx512f")) {
    GTEST_SKIP() << "host lacks avx512f; clone compiled but not dispatchable";
  }
  ClientProfile client{120.0, 30.0};
  Server scalar_server(0, 1000.0, 1e8);
  Server batched_server(1, 1000.0, 1e8);
  constexpr int kStreams = 19;  // 2 full zmm lanes + remainder
  StableVector<Request> scalar_requests, batched_requests;
  for (int i = 0; i < kStreams; ++i) {
    const Mbps rate = 0.5 + 1.25 * static_cast<double>(i % 7);
    scalar_requests.emplace_back(i, make_video(i), 0.0, client);
    batched_requests.emplace_back(i, make_video(i), 0.0, client);
    scalar_requests.back().begin_streaming(0.0, 0);
    batched_requests.back().begin_streaming(0.0, 1);
    scalar_server.attach(scalar_requests.back());
    batched_server.attach(batched_requests.back());
    scalar_requests.back().set_allocation(0.0, rate);
    batched_requests.back().set_allocation(0.0, rate);
  }

  for (Request& request : scalar_requests) request.advance(10.0);
  std::vector<Megabits> scratch;
  batched_server.lane().advance_batch(10.0, 0.0, 1e9, scratch);

  std::vector<Seconds> keys, tx, full, low;
  batched_server.lane().fill_projected_finish(10.0, keys);
  batched_server.lane().fill_predicted_times(10.0, 4.0, tx, full, low);
  for (int i = 0; i < kStreams; ++i) {
    SCOPED_TRACE(i);
    const Request& scalar = scalar_requests[static_cast<std::size_t>(i)];
    const Request& batched = batched_requests[static_cast<std::size_t>(i)];
    EXPECT_EQ(batched.remaining(), scalar.remaining());
    EXPECT_EQ(batched.buffer_level(), scalar.buffer_level());
    EXPECT_EQ(keys[batched.active_index], scalar.projected_finish(10.0));
    EXPECT_EQ(tx[batched.active_index],
              scalar.allocation() > 0.0
                  ? 10.0 + scalar.remaining() / scalar.allocation()
                  : std::numeric_limits<Seconds>::infinity());
  }
#else
  GTEST_SKIP() << "x86-64 only";
#endif
}

// ---------------------------------------------------------------- catalog

TEST(VideoCatalog, MeansComputed) {
  std::vector<Video> videos;
  videos.push_back(make_video(0, 100.0));
  videos.push_back(make_video(1, 300.0));
  const VideoCatalog catalog(std::move(videos));
  EXPECT_DOUBLE_EQ(catalog.mean_duration(), 200.0);
  EXPECT_DOUBLE_EQ(catalog.mean_size(), 600.0);
}

}  // namespace
}  // namespace vodsim
