// Tests for the cluster model: staging buffer fluid math, request
// lifecycle/advance, server replica & active-set management.

#include <gtest/gtest.h>

#include "vodsim/cluster/client.h"
#include "vodsim/cluster/request.h"
#include "vodsim/cluster/server.h"
#include "vodsim/cluster/video.h"

namespace vodsim {
namespace {

Video make_video(VideoId id = 0, Seconds duration = 600.0, Mbps view = 3.0) {
  Video video;
  video.id = id;
  video.duration = duration;
  video.view_bandwidth = view;
  return video;
}

// ---------------------------------------------------------------- staging buffer

TEST(StagingBuffer, FillsAndDrains) {
  StagingBuffer buffer(100.0);
  EXPECT_DOUBLE_EQ(buffer.apply(30.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(buffer.level(), 20.0);
  EXPECT_DOUBLE_EQ(buffer.apply(0.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(buffer.level(), 15.0);
}

TEST(StagingBuffer, ReportsUnderflow) {
  StagingBuffer buffer(100.0);
  buffer.apply(10.0, 0.0);
  const Megabits underflow = buffer.apply(0.0, 25.0);
  EXPECT_DOUBLE_EQ(underflow, 15.0);
  EXPECT_DOUBLE_EQ(buffer.level(), 0.0);  // clamped
}

TEST(StagingBuffer, ClampsAtCapacity) {
  StagingBuffer buffer(50.0);
  buffer.apply(60.0, 0.0);
  EXPECT_DOUBLE_EQ(buffer.level(), 50.0);
  EXPECT_TRUE(buffer.full());
  EXPECT_DOUBLE_EQ(buffer.headroom(), 0.0);
}

TEST(StagingBuffer, FullWithinTolerance) {
  StagingBuffer buffer(50.0);
  buffer.apply(50.0 - 1e-8, 0.0);
  EXPECT_TRUE(buffer.full());
}

TEST(StagingBuffer, PlaybackCover) {
  StagingBuffer buffer(100.0);
  buffer.apply(30.0, 0.0);
  EXPECT_DOUBLE_EQ(buffer.playback_cover(3.0), 10.0);
}

TEST(StagingBuffer, ZeroCapacityAlwaysFull) {
  StagingBuffer buffer(0.0);
  EXPECT_TRUE(buffer.full());
  EXPECT_DOUBLE_EQ(buffer.headroom(), 0.0);
}

TEST(StagingBuffer, TinyUnderflowIgnored) {
  StagingBuffer buffer(10.0);
  buffer.apply(1.0, 0.0);
  EXPECT_DOUBLE_EQ(buffer.apply(0.0, 1.0 + 1e-9), 0.0);  // below tolerance
}

// ---------------------------------------------------------------- request

TEST(Request, InitialState) {
  ClientProfile client{120.0, 30.0};
  Request request(1, make_video(0, 600.0), 100.0, client);
  EXPECT_EQ(request.state(), RequestState::kStreaming);
  EXPECT_EQ(request.server(), kNoServer);
  EXPECT_DOUBLE_EQ(request.remaining(), 1800.0);  // 600 s x 3 Mb/s
  EXPECT_DOUBLE_EQ(request.playback_end(), 700.0);
  EXPECT_DOUBLE_EQ(request.total_size(), 1800.0);
  EXPECT_EQ(request.hops(), 0);
  EXPECT_FALSE(request.finished());
}

TEST(Request, AdvanceAtViewRateKeepsBufferEmpty) {
  ClientProfile client{120.0, 30.0};
  Request request(1, make_video(), 0.0, client);
  request.begin_streaming(0.0, 0);
  request.set_allocation(0.0, 3.0);
  EXPECT_DOUBLE_EQ(request.advance(100.0), 0.0);
  EXPECT_DOUBLE_EQ(request.remaining(), 1800.0 - 300.0);
  EXPECT_DOUBLE_EQ(request.buffer().level(), 0.0);
}

TEST(Request, WorkaheadFillsBuffer) {
  ClientProfile client{120.0, 30.0};
  Request request(1, make_video(), 0.0, client);
  request.begin_streaming(0.0, 0);
  request.set_allocation(0.0, 15.0);
  request.advance(10.0);
  // Sent 150, viewed 30 -> buffer 120 (exactly capacity).
  EXPECT_DOUBLE_EQ(request.buffer().level(), 120.0);
  EXPECT_TRUE(request.buffer().full());
  EXPECT_DOUBLE_EQ(request.remaining(), 1650.0);
}

TEST(Request, ProjectedFinishUsesViewBandwidth) {
  ClientProfile client{120.0, 30.0};
  Request request(1, make_video(), 0.0, client);
  EXPECT_DOUBLE_EQ(request.projected_finish(50.0), 50.0 + 1800.0 / 3.0);
}

TEST(Request, AdvanceStopsConsumingAfterPlaybackEnd) {
  ClientProfile client{10000.0, 1000.0};
  Request request(1, make_video(0, 100.0), 0.0, client);  // 300 Mb total
  request.begin_streaming(0.0, 0);
  request.set_allocation(0.0, 300.0);
  request.advance(1.0);  // all 300 Mb sent in 1 s; viewed 3 Mb
  EXPECT_TRUE(request.finished());
  EXPECT_DOUBLE_EQ(request.buffer().level(), 297.0);
  request.set_allocation(1.0, 0.0);
  request.advance(100.0);  // playback end
  EXPECT_NEAR(request.buffer().level(), 0.0, 1e-9);
  request.advance(200.0);  // beyond playback end: no further consumption
  EXPECT_NEAR(request.buffer().level(), 0.0, 1e-9);
}

TEST(Request, LifecycleToDone) {
  ClientProfile client{0.0, 3.0};
  Request request(1, make_video(), 0.0, client);
  request.begin_streaming(0.0, 2);
  EXPECT_EQ(request.server(), 2);
  request.set_allocation(0.0, 3.0);
  request.advance(600.0);
  EXPECT_TRUE(request.finished());
  request.mark_tx_complete(600.0);
  EXPECT_EQ(request.state(), RequestState::kTxComplete);
  EXPECT_EQ(request.server(), kNoServer);
  request.mark_done(600.0);
  EXPECT_EQ(request.state(), RequestState::kDone);
}

TEST(Request, MigrationIncrementsHops) {
  ClientProfile client{120.0, 30.0};
  Request request(1, make_video(), 0.0, client);
  request.begin_streaming(0.0, 0);
  request.set_allocation(0.0, 3.0);
  request.advance(10.0);
  request.begin_migration(10.0);
  EXPECT_EQ(request.state(), RequestState::kMigrating);
  EXPECT_EQ(request.hops(), 1);
  EXPECT_DOUBLE_EQ(request.allocation(), 0.0);
  request.complete_migration(10.0, 3);
  EXPECT_EQ(request.state(), RequestState::kStreaming);
  EXPECT_EQ(request.server(), 3);
}

TEST(Request, MigrationPauseDrainsBuffer) {
  ClientProfile client{120.0, 30.0};
  Request request(1, make_video(), 0.0, client);
  request.begin_streaming(0.0, 0);
  request.set_allocation(0.0, 9.0);
  request.advance(10.0);  // buffer: (9-3)*10 = 60
  EXPECT_DOUBLE_EQ(request.buffer().level(), 60.0);
  request.begin_migration(10.0);
  EXPECT_DOUBLE_EQ(request.advance(20.0), 0.0);  // drains 30, no underflow
  EXPECT_DOUBLE_EQ(request.buffer().level(), 30.0);
}

TEST(Request, RejectionIsTerminal) {
  ClientProfile client{0.0, 3.0};
  Request request(1, make_video(), 0.0, client);
  request.mark_rejected();
  EXPECT_EQ(request.state(), RequestState::kRejected);
}

// ---------------------------------------------------------------- server

TEST(Server, ReplicaStorageAccounting) {
  Server server(0, 100.0, 5000.0);
  const Video a = make_video(0, 600.0);   // 1800 Mb
  const Video b = make_video(1, 1000.0);  // 3000 Mb
  const Video c = make_video(2, 600.0);   // 1800 Mb: does not fit after a+b
  EXPECT_TRUE(server.add_replica(a));
  EXPECT_TRUE(server.add_replica(b));
  EXPECT_FALSE(server.add_replica(c));
  EXPECT_TRUE(server.holds(0));
  EXPECT_TRUE(server.holds(1));
  EXPECT_FALSE(server.holds(2));
  EXPECT_DOUBLE_EQ(server.storage_used(), 4800.0);
  EXPECT_EQ(server.replicas().size(), 2u);
}

TEST(Server, DuplicateReplicaRejected) {
  Server server(0, 100.0, 100000.0);
  const Video a = make_video(0);
  EXPECT_TRUE(server.add_replica(a));
  EXPECT_FALSE(server.add_replica(a));
  EXPECT_DOUBLE_EQ(server.storage_used(), a.size());
}

TEST(Server, AdmissionArithmetic) {
  Server server(0, 10.0, 1e6);
  ClientProfile client{0.0, 3.0};
  Request r1(1, make_video(0), 0.0, client);
  Request r2(2, make_video(0), 0.0, client);
  Request r3(3, make_video(0), 0.0, client);

  EXPECT_TRUE(server.can_admit(3.0));
  server.attach(r1);
  server.attach(r2);
  server.attach(r3);
  EXPECT_DOUBLE_EQ(server.committed_bandwidth(), 9.0);
  EXPECT_FALSE(server.can_admit(3.0));  // 12 > 10
  EXPECT_DOUBLE_EQ(server.slack(), 1.0);
  EXPECT_EQ(server.active_count(), 3u);
}

TEST(Server, DetachSwapsInConstantTime) {
  Server server(0, 100.0, 1e6);
  ClientProfile client{0.0, 3.0};
  Request r1(1, make_video(0), 0.0, client);
  Request r2(2, make_video(0), 0.0, client);
  Request r3(3, make_video(0), 0.0, client);
  server.attach(r1);
  server.attach(r2);
  server.attach(r3);
  server.detach(r1);  // r3 swaps into slot 0
  EXPECT_EQ(server.active_count(), 2u);
  EXPECT_EQ(server.active_requests()[r3.active_index], &r3);
  EXPECT_EQ(server.active_requests()[r2.active_index], &r2);
  server.detach(r3);
  server.detach(r2);
  EXPECT_EQ(server.active_count(), 0u);
  EXPECT_NEAR(server.committed_bandwidth(), 0.0, 1e-12);
}

TEST(Server, UnavailableRefusesAdmission) {
  Server server(0, 100.0, 1e6);
  EXPECT_TRUE(server.can_admit(3.0));
  server.set_available(false);
  EXPECT_FALSE(server.can_admit(3.0));
  server.set_available(true);
  EXPECT_TRUE(server.can_admit(3.0));
}

TEST(Server, ReservationBlocksAdmission) {
  Server server(0, 10.0, 1e6);
  server.reserve_bandwidth(9.0);
  EXPECT_FALSE(server.can_admit(3.0));
  EXPECT_DOUBLE_EQ(server.schedulable_bandwidth(), 1.0);
  server.release_reservation(9.0);
  EXPECT_TRUE(server.can_admit(3.0));
  EXPECT_DOUBLE_EQ(server.schedulable_bandwidth(), 10.0);
}

TEST(Server, TotalAttachedCounts) {
  Server server(0, 100.0, 1e6);
  ClientProfile client{0.0, 3.0};
  Request r1(1, make_video(0), 0.0, client);
  server.attach(r1);
  server.detach(r1);
  Request r2(2, make_video(0), 0.0, client);
  server.attach(r2);
  EXPECT_EQ(server.total_attached(), 2u);
}

// ---------------------------------------------------------------- catalog

TEST(VideoCatalog, MeansComputed) {
  std::vector<Video> videos;
  videos.push_back(make_video(0, 100.0));
  videos.push_back(make_video(1, 300.0));
  const VideoCatalog catalog(std::move(videos));
  EXPECT_DOUBLE_EQ(catalog.mean_duration(), 200.0);
  EXPECT_DOUBLE_EQ(catalog.mean_size(), 600.0);
}

}  // namespace
}  // namespace vodsim
