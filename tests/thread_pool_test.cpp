// ThreadPool failure-path and lifecycle tests. The basics (tasks run,
// indices cover the range) live in util_test.cpp; this file pins the
// contracts experiments actually lean on: exception propagation out of
// parallel_for picks the first failing index, a throw does not poison the
// pool, the destructor drains every queued task, and concurrent submitters
// cannot lose work.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "vodsim/util/thread_pool.h"

namespace vodsim {
namespace {

/// Distinct type so the tests can prove the *original* exception object
/// crosses the pool boundary, not a translation of it.
struct TrialError : std::runtime_error {
  explicit TrialError(std::size_t index)
      : std::runtime_error("trial " + std::to_string(index) + " failed"),
        index(index) {}
  std::size_t index;
};

TEST(ThreadPoolErrors, ParallelForRethrowsFirstFailingIndex) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.parallel_for(64, [&](std::size_t i) {
      if (i == 10 || i == 40) throw TrialError(i);
      completed.fetch_add(1);
    });
    FAIL() << "parallel_for swallowed the exception";
  } catch (const TrialError& error) {
    // The lowest failing index wins regardless of which strand ran it
    // first or in what order strands finished.
    EXPECT_EQ(error.index, 10u);
  }
  // Every non-throwing task still ran to completion before the rethrow:
  // parallel_for must not abandon in-flight work.
  EXPECT_EQ(completed.load(), 62);
}

TEST(ThreadPoolErrors, ParallelForEmptyRangeIsANoOp) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  // The pool is still healthy afterwards.
  pool.parallel_for(3, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPoolErrors, ParallelForCountBelowWorkerCountCoversEveryIndex) {
  // Fewer indices than workers: surplus strands must find the cursor
  // exhausted and exit; every index runs exactly once.
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolErrors, ParallelForSingleIndexThrowPropagates) {
  // count == 1 runs entirely on the calling thread (no helpers); the
  // exception path must be identical to the pooled one.
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(1, [](std::size_t) { throw TrialError(0); }),
               TrialError);
}

TEST(ThreadPoolErrors, PoolSurvivesATaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8, [](std::size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);

  // The same pool keeps accepting and completing work afterwards.
  std::atomic<int> counter{0};
  pool.parallel_for(100, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 100);

  auto future = pool.submit([&] { counter.fetch_add(1); });
  future.get();
  EXPECT_EQ(counter.load(), 101);
}

TEST(ThreadPoolErrors, SubmitFutureCarriesTaskException) {
  ThreadPool pool(1);
  auto future = pool.submit([] { throw TrialError(7); });
  try {
    future.get();
    FAIL() << "future.get() swallowed the exception";
  } catch (const TrialError& error) {
    EXPECT_EQ(error.index, 7u);
  }
}

TEST(ThreadPoolNesting, NestedParallelForFromWorkerCompletesInline) {
  // A sharded sweep trial nests pool usage: the sweep's parallel_for runs
  // trials on workers, and each trial's sharded engine issues its own
  // parallel_for for shard drains. Before the worker guard this deadlocked
  // whenever every worker blocked joining helper tasks stuck behind the
  // outer tasks themselves. The guard makes nested calls caller-only, so
  // this test both terminates and covers every inner index exactly once.
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 16;
  ThreadPool pool(2);  // fewer workers than outer tasks forces the hazard
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  std::atomic<int> nested_on_worker{0};
  pool.parallel_for(kOuter, [&](std::size_t outer) {
    if (ThreadPool::on_pool_worker()) nested_on_worker.fetch_add(1);
    pool.parallel_for(kInner, [&](std::size_t inner) {
      hits[outer * kInner + inner].fetch_add(1);
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "inner index " << i;
  }
  // The caller strand handles some outer indices on the main thread; the
  // guard must have engaged for at least the worker-run ones.
  EXPECT_GE(nested_on_worker.load(), 1);
}

TEST(ThreadPoolNesting, NestedParallelForKeepsExceptionPolicy) {
  // The caller-only fallback must preserve the parallel_for contract:
  // every index runs, and the lowest failing index's exception wins.
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  try {
    pool.parallel_for(4, [&](std::size_t) {
      pool.parallel_for(16, [&](std::size_t i) {
        if (i == 3 || i == 12) throw TrialError(i);
        completed.fetch_add(1);
      });
    });
    FAIL() << "nested parallel_for swallowed the exception";
  } catch (const TrialError& error) {
    EXPECT_EQ(error.index, 3u);
  }
  // Only the first outer task's exception propagates out of the outer
  // call, but every outer task ran its full inner range (14 survivors
  // per outer iteration).
  EXPECT_EQ(completed.load(), 4 * 14);
}

TEST(ThreadPoolNesting, OnPoolWorkerIsFalseOnCallerThread) {
  ThreadPool pool(1);
  EXPECT_FALSE(ThreadPool::on_pool_worker());
  auto future = pool.submit([] { EXPECT_TRUE(ThreadPool::on_pool_worker()); });
  future.get();
  EXPECT_FALSE(ThreadPool::on_pool_worker());
}

TEST(ThreadPoolLifecycle, DestructorDrainsQueuedTasks) {
  // Queue far more slow-ish tasks than workers, then destroy the pool
  // immediately: shutdown must run every queued task, not abandon the queue.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ran.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolLifecycle, ConcurrentSubmittersLoseNoWork) {
  // Several threads hammer submit() while workers drain; every future must
  // resolve and every task must run exactly once.
  constexpr int kSubmitters = 4;
  constexpr int kTasksEach = 250;
  std::atomic<int> ran{0};
  ThreadPool pool(3);

  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<void>>> futures(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      futures[static_cast<std::size_t>(s)].reserve(kTasksEach);
      for (int i = 0; i < kTasksEach; ++i) {
        futures[static_cast<std::size_t>(s)].push_back(
            pool.submit([&] { ran.fetch_add(1); }));
      }
    });
  }
  for (auto& submitter : submitters) submitter.join();
  for (auto& batch : futures) {
    for (auto& future : batch) future.get();
  }
  EXPECT_EQ(ran.load(), kSubmitters * kTasksEach);
}

}  // namespace
}  // namespace vodsim
