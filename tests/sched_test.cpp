// Tests for the minimum-flow bandwidth schedulers: EFTF correctness,
// baselines, and family-wide invariants (parameterized sweeps).

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "vodsim/sched/continuous.h"
#include "vodsim/sched/eftf.h"
#include "vodsim/sched/finish_order.h"
#include "vodsim/sched/lftf.h"
#include "vodsim/sched/proportional.h"
#include "vodsim/sched/scheduler.h"
#include "vodsim/util/rng.h"

namespace vodsim {
namespace {

constexpr Mbps kView = 3.0;

Video make_video(VideoId id, Seconds duration) {
  Video video;
  video.id = id;
  video.duration = duration;
  video.view_bandwidth = kView;
  return video;
}

/// Owns a set of requests with chosen remaining data / buffer levels.
class Fixture {
 public:
  /// Adds a streaming request with \p remaining Mb left, buffer capacity
  /// \p buffer_cap, current buffer level \p level, receive cap \p receive.
  Request& add(Megabits remaining, Megabits buffer_cap = 1e9,
               Megabits level = 0.0, Mbps receive = 1e9) {
    // For level == 0 the request is simply brand new with exactly
    // `remaining` megabits to go. A nonzero starting buffer level requires
    // replaying a transmission prefix (inflow = prefix, outflow = view*dt,
    // with dt chosen so the leftover equals `level`).
    const Seconds extra = level > 0.0 ? 1000.0 : 0.0;
    const Seconds duration = remaining / kView + extra;
    auto request = std::make_unique<Request>(
        next_id_++, make_video(0, duration), 0.0, ClientProfile{buffer_cap, receive});
    Request& ref = *request;
    ref.begin_streaming(0.0, 0);
    const Megabits prefix = ref.total_size() - remaining;
    if (prefix > 0.0) {
      const Seconds dt = (prefix - level) / kView;
      EXPECT_GT(dt, 0.0) << "level too large for prefix";
      const Mbps rate = prefix / dt;
      EXPECT_LE(rate, receive + 1e-9) << "fixture rate exceeds receive cap";
      ref.set_allocation(0.0, rate);
      ref.advance(dt);
      ref.set_allocation(dt, 0.0);
      now_ = std::max(now_, dt);
    }
    ref.active_index = active_.size();  // normally maintained by Server
    requests_.push_back(std::move(request));
    active_.push_back(&ref);
    return ref;
  }

  /// Advances every request to the common decision time.
  void sync() {
    for (auto& request : requests_) {
      request->advance(now_);
      request->set_allocation(now_, 0.0);
    }
  }

  Seconds now() const { return now_; }
  const std::vector<Request*>& active() const { return active_; }

 private:
  RequestId next_id_ = 1;
  Seconds now_ = 0.0;
  std::vector<std::unique_ptr<Request>> requests_;
  std::vector<Request*> active_;
};

// ---------------------------------------------------------------- EFTF

TEST(Eftf, MinimumFlowToEveryone) {
  Fixture fx;
  fx.add(1000.0);
  fx.add(2000.0);
  fx.sync();
  EftfScheduler scheduler;
  std::vector<Mbps> rates;
  scheduler.allocate(fx.now(), 6.0, fx.active(), rates);  // no slack
  EXPECT_DOUBLE_EQ(rates[0], kView);
  EXPECT_DOUBLE_EQ(rates[1], kView);
}

TEST(Eftf, SlackGoesToEarliestFinisher) {
  Fixture fx;
  fx.add(2000.0, 1e9, 0.0, 30.0);
  Request& shortest = fx.add(100.0, 1e9, 0.0, 30.0);
  fx.add(1500.0, 1e9, 0.0, 30.0);
  fx.sync();
  EftfScheduler scheduler;
  std::vector<Mbps> rates;
  scheduler.allocate(fx.now(), 100.0, fx.active(), rates);
  // shortest gets boosted to its receive cap (27 extra), remaining slack
  // (100 - 9 - 27 = 64) flows to the next-earliest (1500 Mb), capped at 27,
  // rest to the last.
  EXPECT_DOUBLE_EQ(rates[shortest.active_index], 30.0);
  EXPECT_DOUBLE_EQ(rates[2], 30.0);
  EXPECT_DOUBLE_EQ(rates[0], 30.0);
  const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
  EXPECT_LE(total, 100.0 + 1e-9);
}

TEST(Eftf, UnboundedReceiveTakesAllSlack) {
  Fixture fx;
  Request& a = fx.add(100.0);
  fx.add(5000.0);
  fx.sync();
  EftfScheduler scheduler;
  std::vector<Mbps> rates;
  scheduler.allocate(fx.now(), 100.0, fx.active(), rates);
  EXPECT_DOUBLE_EQ(rates[a.active_index], 100.0 - kView);  // all slack + min
  const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
  EXPECT_NEAR(total, 100.0, 1e-9);
}

TEST(Eftf, FullBufferExcludedFromWorkahead) {
  Fixture fx;
  Request& full = fx.add(100.0, 60.0, 60.0, 30.0);  // buffer at capacity
  Request& open = fx.add(5000.0, 1e9, 0.0, 30.0);
  fx.sync();
  EXPECT_TRUE(full.buffer_full());
  EftfScheduler scheduler;
  std::vector<Mbps> rates;
  scheduler.allocate(fx.now(), 100.0, fx.active(), rates);
  EXPECT_DOUBLE_EQ(rates[full.active_index], kView);
  EXPECT_DOUBLE_EQ(rates[open.active_index], 30.0);
}

TEST(Eftf, ReceiveCapAtViewRateExcluded) {
  Fixture fx;
  Request& capped = fx.add(100.0, 1e9, 0.0, kView);  // cannot exceed view rate
  Request& open = fx.add(5000.0, 1e9, 0.0, 30.0);
  fx.sync();
  EftfScheduler scheduler;
  std::vector<Mbps> rates;
  scheduler.allocate(fx.now(), 50.0, fx.active(), rates);
  EXPECT_DOUBLE_EQ(rates[capped.active_index], kView);
  EXPECT_DOUBLE_EQ(rates[open.active_index], 30.0);
}

TEST(Eftf, EmptyActiveSet) {
  EftfScheduler scheduler;
  std::vector<Request*> active;
  std::vector<Mbps> rates;
  scheduler.allocate(0.0, 100.0, active, rates);
  EXPECT_TRUE(rates.empty());
}

// ---------------------------------------------------------------- baselines

TEST(Continuous, NeverExceedsViewRate) {
  Fixture fx;
  fx.add(100.0);
  fx.add(2000.0);
  fx.sync();
  ContinuousScheduler scheduler;
  std::vector<Mbps> rates;
  scheduler.allocate(fx.now(), 1000.0, fx.active(), rates);
  for (Mbps rate : rates) EXPECT_DOUBLE_EQ(rate, kView);
}

TEST(Lftf, SlackGoesToLatestFinisher) {
  Fixture fx;
  Request& shortest = fx.add(100.0, 1e9, 0.0, 30.0);
  Request& longest = fx.add(5000.0, 1e9, 0.0, 30.0);
  fx.sync();
  LftfScheduler scheduler;
  std::vector<Mbps> rates;
  scheduler.allocate(fx.now(), 33.0, fx.active(), rates);  // slack 27
  EXPECT_DOUBLE_EQ(rates[longest.active_index], 30.0);
  EXPECT_DOUBLE_EQ(rates[shortest.active_index], kView);
}

TEST(Proportional, SplitsSlackEvenly) {
  Fixture fx;
  fx.add(1000.0, 1e9, 0.0, 30.0);
  fx.add(2000.0, 1e9, 0.0, 30.0);
  fx.sync();
  ProportionalShareScheduler scheduler;
  std::vector<Mbps> rates;
  scheduler.allocate(fx.now(), 26.0, fx.active(), rates);  // slack 20
  EXPECT_DOUBLE_EQ(rates[0], 13.0);
  EXPECT_DOUBLE_EQ(rates[1], 13.0);
}

TEST(Proportional, WaterFillingRedistributesCappedSurplus) {
  Fixture fx;
  Request& capped = fx.add(1000.0, 1e9, 0.0, 5.0);   // room for only 2 extra
  Request& open = fx.add(2000.0, 1e9, 0.0, 1000.0);
  fx.sync();
  ProportionalShareScheduler scheduler;
  std::vector<Mbps> rates;
  scheduler.allocate(fx.now(), 106.0, fx.active(), rates);  // slack 100
  EXPECT_DOUBLE_EQ(rates[capped.active_index], 5.0);
  EXPECT_NEAR(rates[open.active_index], 3.0 + 98.0, 1e-9);
  EXPECT_NEAR(std::accumulate(rates.begin(), rates.end(), 0.0), 106.0, 1e-9);
}

// ---------------------------------------------------------------- factory

TEST(SchedulerFactory, RoundTripNames) {
  for (SchedulerKind kind :
       {SchedulerKind::kEftf, SchedulerKind::kContinuous,
        SchedulerKind::kProportional, SchedulerKind::kLftf}) {
    const auto scheduler = make_scheduler(kind);
    EXPECT_EQ(scheduler->name(), to_string(kind));
    EXPECT_EQ(scheduler_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(scheduler_kind_from_string("nope"), std::invalid_argument);
}

// ------------------------------------------------- family-wide invariants

struct SchedulerInvariantCase {
  SchedulerKind kind;
  std::uint64_t seed;
};

class SchedulerInvariants : public ::testing::TestWithParam<SchedulerInvariantCase> {};

TEST_P(SchedulerInvariants, RandomInstancesRespectContracts) {
  const auto param = GetParam();
  const auto scheduler = make_scheduler(param.kind);
  Rng rng(param.seed);

  for (int instance = 0; instance < 50; ++instance) {
    Fixture fx;
    const int n = 1 + static_cast<int>(rng.uniform_int(12));
    for (int i = 0; i < n; ++i) {
      const Megabits remaining = rng.uniform(10.0, 5000.0);
      const Megabits cap = rng.uniform() < 0.3 ? 0.0 : rng.uniform(10.0, 500.0);
      const Megabits level = 0.0;
      const Mbps receive = rng.uniform() < 0.3
                               ? kView
                               : rng.uniform(5.0, 50.0);
      fx.add(remaining, cap, level, receive);
    }
    fx.sync();
    const Mbps capacity = kView * n + rng.uniform(0.0, 100.0);
    std::vector<Mbps> rates;
    scheduler->allocate(fx.now(), capacity, fx.active(), rates);

    ASSERT_EQ(rates.size(), fx.active().size());
    double total = 0.0;
    for (std::size_t i = 0; i < rates.size(); ++i) {
      const Request& request = *fx.active()[i];
      EXPECT_GE(rates[i], request.view_bandwidth() - 1e-9)
          << scheduler->name() << " violated minimum flow";
      EXPECT_LE(rates[i], request.receive_bandwidth() + 1e-9)
          << scheduler->name() << " exceeded receive cap";
      if (request.buffer_full()) {
        EXPECT_DOUBLE_EQ(rates[i], request.view_bandwidth())
            << scheduler->name() << " sent workahead into a full buffer";
      }
      total += rates[i];
    }
    EXPECT_LE(total, capacity + 1e-6)
        << scheduler->name() << " oversubscribed the link";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerInvariants,
    ::testing::Values(SchedulerInvariantCase{SchedulerKind::kEftf, 101},
                      SchedulerInvariantCase{SchedulerKind::kEftf, 102},
                      SchedulerInvariantCase{SchedulerKind::kContinuous, 103},
                      SchedulerInvariantCase{SchedulerKind::kProportional, 104},
                      SchedulerInvariantCase{SchedulerKind::kProportional, 105},
                      SchedulerInvariantCase{SchedulerKind::kLftf, 106}),
    [](const ::testing::TestParamInfo<SchedulerInvariantCase>& info) {
      return to_string(info.param.kind) + "_seed" +
             std::to_string(info.param.seed);
    });

// ---------------------------------------- incremental-order equivalence

struct CacheEquivalenceCase {
  SchedulerKind kind;
  std::uint64_t seed;
};

class SchedCacheEquivalence
    : public ::testing::TestWithParam<CacheEquivalenceCase> {};

// The per-server SchedCache must be a pure accelerator: under arbitrary
// churn (arrivals, departures, buffers filling, time advancing) a warm
// cache produces bit-identical rates to the cache-less full-sort path.
// Doubles are compared with EXPECT_EQ on purpose — one ulp of drift in any
// grant breaks the engine's determinism contract.
TEST_P(SchedCacheEquivalence, WarmCacheIsBitIdenticalUnderChurn) {
  const auto param = GetParam();
  const auto scheduler = make_scheduler(param.kind);
  Rng rng(param.seed);

  Fixture fx;
  std::vector<Request*> active;  // our own churnable view, like a Server's
  auto append = [&](Request& request) {
    request.active_index = active.size();
    active.push_back(&request);
  };
  for (int i = 0; i < 10; ++i) {
    append(fx.add(rng.uniform(500.0, 5000.0), rng.uniform(50.0, 400.0), 0.0,
                  rng.uniform(5.0, 40.0)));
  }

  SchedCache cache;  // persists across rounds, like ServerRecomputeState
  AllocationScratch cached_scratch;
  AllocationScratch fresh_scratch;
  std::vector<Mbps> cached_rates;
  std::vector<Mbps> fresh_rates;
  Seconds now = 0.0;
  bool cache_warmed = false;

  for (int round = 0; round < 40; ++round) {
    now += rng.uniform(0.1, 5.0);
    for (Request* request : active) request->advance(now);

    // Churn: like Server::detach, departures swap-with-last and fix the
    // moved request's active_index — exactly the invalidation pattern the
    // cache validates against.
    if (active.size() > 2 && rng.uniform() < 0.3) {
      const std::size_t victim = rng.uniform_int(active.size());
      active[victim] = active.back();
      active[victim]->active_index = victim;
      active.pop_back();
    }
    if (rng.uniform() < 0.3) {
      append(fx.add(rng.uniform(500.0, 5000.0), rng.uniform(50.0, 400.0), 0.0,
                    rng.uniform(5.0, 40.0)));
      active.back()->advance(now);
    }

    const Mbps capacity =
        kView * static_cast<double>(active.size()) + rng.uniform(5.0, 80.0);
    // Fresh path first, cached second: for the intermittent scheduler the
    // first call may settle the urgency latch, but latch transitions are
    // idempotent at fixed buffer state, so the second call sees the same
    // memberships (the engine's recompute memo relies on the same property).
    scheduler->allocate(now, capacity, active, fresh_rates, fresh_scratch);
    scheduler->allocate(now, capacity, active, cached_rates, cached_scratch,
                        &cache);

    ASSERT_EQ(cached_rates.size(), fresh_rates.size());
    for (std::size_t i = 0; i < cached_rates.size(); ++i) {
      ASSERT_EQ(cached_rates[i], fresh_rates[i])
          << scheduler->name() << " round " << round << " request "
          << active[i]->id() << ": cached path diverged";
    }
    cache_warmed = cache_warmed || !cache.grant_order.empty();

    for (std::size_t i = 0; i < active.size(); ++i) {
      active[i]->set_allocation(now, cached_rates[i]);
    }
  }
  // The comparison must not be vacuous for the finish-time schedulers: the
  // cache actually held an order. Continuous and proportional have no grant
  // order and must leave the cache untouched.
  const bool uses_cache = param.kind == SchedulerKind::kEftf ||
                          param.kind == SchedulerKind::kLftf ||
                          param.kind == SchedulerKind::kIntermittent;
  EXPECT_EQ(cache_warmed, uses_cache) << scheduler->name();
}

INSTANTIATE_TEST_SUITE_P(
    FinishTimeSchedulers, SchedCacheEquivalence,
    ::testing::Values(CacheEquivalenceCase{SchedulerKind::kEftf, 201},
                      CacheEquivalenceCase{SchedulerKind::kEftf, 202},
                      CacheEquivalenceCase{SchedulerKind::kLftf, 203},
                      CacheEquivalenceCase{SchedulerKind::kLftf, 204},
                      CacheEquivalenceCase{SchedulerKind::kIntermittent, 205},
                      CacheEquivalenceCase{SchedulerKind::kIntermittent, 206},
                      CacheEquivalenceCase{SchedulerKind::kProportional, 207},
                      CacheEquivalenceCase{SchedulerKind::kContinuous, 208}),
    [](const ::testing::TestParamInfo<CacheEquivalenceCase>& info) {
      return to_string(info.param.kind) + "_seed" +
             std::to_string(info.param.seed);
    });

// EFTF is work-conserving: it leaves slack unused only when every client is
// buffer-full or receive-capped.
TEST(Eftf, WorkConservation) {
  Rng rng(7);
  EftfScheduler scheduler;
  for (int instance = 0; instance < 50; ++instance) {
    Fixture fx;
    const int n = 1 + static_cast<int>(rng.uniform_int(8));
    for (int i = 0; i < n; ++i) {
      fx.add(rng.uniform(100.0, 3000.0), rng.uniform(50.0, 400.0), 0.0,
             rng.uniform(5.0, 40.0));
    }
    fx.sync();
    const Mbps capacity = kView * n + rng.uniform(1.0, 50.0);
    std::vector<Mbps> rates;
    scheduler.allocate(fx.now(), capacity, fx.active(), rates);
    const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
    if (total < capacity - 1e-6) {
      for (std::size_t i = 0; i < rates.size(); ++i) {
        const Request& request = *fx.active()[i];
        const bool saturated = request.buffer_full() ||
                               rates[i] >= request.receive_bandwidth() - 1e-9;
        EXPECT_TRUE(saturated) << "slack left while request " << i
                               << " could absorb more";
      }
    }
  }
}

}  // namespace
}  // namespace vodsim
