// Failure-domain topology tests: the server → rack → zone tree, the
// domain-scoped fault schedule phases (rack outages, zone brownouts,
// partitions), partition engine transitions under paranoid audit,
// domain-spread placement anti-affinity, domain-aware repair
// re-replication, and the auditor's reachability invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "vodsim/check/invariant_auditor.h"
#include "vodsim/cluster/topology.h"
#include "vodsim/engine/config.h"
#include "vodsim/engine/vod_simulation.h"
#include "vodsim/fault/schedule.h"
#include "vodsim/placement/domain_spread.h"
#include "vodsim/placement/even.h"
#include "vodsim/workload/catalog.h"
#include "vodsim/workload/zipf.h"

namespace vodsim {
namespace {

std::size_t count_events(const TraceRecorder& trace, TraceEventType type,
                         ServerId server = kNoServer) {
  std::size_t n = 0;
  for (const TraceEvent& event : trace.snapshot()) {
    if (event.type != type) continue;
    if (server != kNoServer && event.server != server) continue;
    ++n;
  }
  return n;
}

// ------------------------------------------------------------ the tree

TEST(TopologyMapping, DisabledConfigYieldsTrivialTree) {
  TopologyConfig config;  // enabled = false
  config.racks = 1;
  config.zones = 1;
  Topology topology(config, 6);
  EXPECT_FALSE(topology.enabled());
  EXPECT_EQ(topology.racks(), 1);
  EXPECT_EQ(topology.zones(), 1);
  for (ServerId s = 0; s < 6; ++s) {
    EXPECT_EQ(topology.rack_of(s), 0);
    EXPECT_EQ(topology.zone_of(s), 0);
  }
  EXPECT_EQ(topology.rack_first(0), 0);
  EXPECT_EQ(topology.rack_end(0), 6);
}

TEST(TopologyMapping, BlockFormulaIsContiguousAndNearEven) {
  TopologyConfig config;
  config.enabled = true;
  config.racks = 3;
  config.zones = 2;
  Topology topology(config, 8);  // 8 servers over 3 racks: sizes {2,3,3}

  EXPECT_TRUE(topology.enabled());
  EXPECT_EQ(topology.num_servers(), 8);

  // Racks cover [r*N/R, (r+1)*N/R): contiguous, exhaustive, near-even.
  int covered = 0;
  int min_size = 8, max_size = 0;
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(topology.rack_first(r), covered);
    const int size = topology.rack_size(r);
    EXPECT_GT(size, 0);
    min_size = std::min(min_size, size);
    max_size = std::max(max_size, size);
    for (ServerId s = topology.rack_first(r); s < topology.rack_end(r); ++s) {
      EXPECT_EQ(topology.rack_of(s), r);
      EXPECT_EQ(topology.zone_of(s), topology.zone_of_rack(r));
    }
    covered += size;
  }
  EXPECT_EQ(covered, 8);
  EXPECT_LE(max_size - min_size, 1);

  // Zones partition the racks with the same block formula
  // (zone_of_rack(r) = r*zones/racks): racks 0,1 → zone 0, rack 2 → zone 1.
  EXPECT_EQ(topology.zone_of_rack(0), 0);
  EXPECT_EQ(topology.zone_of_rack(1), 0);
  EXPECT_EQ(topology.zone_of_rack(2), 1);
}

TEST(TopologyMapping, OneRackPerServerIsIdentity) {
  TopologyConfig config;
  config.enabled = true;
  config.racks = 5;
  config.zones = 5;
  Topology topology(config, 5);
  for (ServerId s = 0; s < 5; ++s) {
    EXPECT_EQ(topology.rack_of(s), s);
    EXPECT_EQ(topology.zone_of(s), s);
    EXPECT_EQ(topology.rack_size(s), 1);
  }
}

// ----------------------------------------------- domain schedule phases

/// Failure config whose legacy phases draw nothing before any practical
/// horizon, so the schedule is purely the domain phases under test.
FailureConfig domain_only_failure() {
  FailureConfig config;
  config.enabled = true;
  config.mean_time_between_failures = hours(1e9);
  config.mean_time_to_repair = hours(1);
  return config;
}

Topology test_tree(int num_servers, int racks, int zones) {
  TopologyConfig config;
  config.enabled = true;
  config.racks = racks;
  config.zones = zones;
  return Topology(config, num_servers);
}

TEST(DomainSchedule, RackOutageTakesWholeRacksDownTogether) {
  FailureConfig config = domain_only_failure();
  config.domains.rack_outage.enabled = true;
  config.domains.rack_outage.mean_time_between = 400.0;
  config.domains.rack_outage.mean_duration = 60.0;
  const Topology topology = test_tree(6, 3, 1);
  Rng rng(7);
  const auto schedule = generate_fault_schedule(config, topology, 4000.0, rng);
  ASSERT_FALSE(schedule.empty());

  // Group transitions by time: every (time, kind) cohort must be exactly
  // one rack's server block, never a partial rack.
  std::map<std::pair<Seconds, FaultTransitionKind>, std::set<ServerId>> cohorts;
  for (const FaultTransition& t : schedule) {
    ASSERT_TRUE(t.kind == FaultTransitionKind::kDown ||
                t.kind == FaultTransitionKind::kUp);
    cohorts[{t.time, t.kind}].insert(t.server);
  }
  for (const auto& [key, servers] : cohorts) {
    const int rack = topology.rack_of(*servers.begin());
    EXPECT_EQ(static_cast<int>(servers.size()), topology.rack_size(rack))
        << "cohort at t=" << key.first << " is not a whole rack";
    for (ServerId s : servers) EXPECT_EQ(topology.rack_of(s), rack);
  }
}

TEST(DomainSchedule, ZoneBrownoutCarriesFactorAcrossTheZone) {
  FailureConfig config = domain_only_failure();
  config.domains.zone_brownout.enabled = true;
  config.domains.zone_brownout.mean_time_between = 300.0;
  config.domains.zone_brownout.mean_duration = 50.0;
  config.domains.zone_brownout.capacity_factor = 0.4;
  const Topology topology = test_tree(8, 4, 2);
  Rng rng(11);
  const auto schedule = generate_fault_schedule(config, topology, 3000.0, rng);
  ASSERT_FALSE(schedule.empty());

  std::map<Seconds, std::set<ServerId>> begins;
  for (const FaultTransition& t : schedule) {
    ASSERT_TRUE(t.kind == FaultTransitionKind::kBrownoutBegin ||
                t.kind == FaultTransitionKind::kBrownoutEnd);
    if (t.kind == FaultTransitionKind::kBrownoutBegin) {
      EXPECT_DOUBLE_EQ(t.capacity_factor, 0.4);
      begins[t.time].insert(t.server);
    }
  }
  ASSERT_FALSE(begins.empty());
  // Every begin cohort is one whole zone (here: 2 racks = 4 servers).
  for (const auto& [time, servers] : begins) {
    const int zone = topology.zone_of(*servers.begin());
    std::size_t zone_size = 0;
    for (ServerId s = 0; s < topology.num_servers(); ++s) {
      if (topology.zone_of(s) == zone) ++zone_size;
    }
    EXPECT_EQ(servers.size(), zone_size)
        << "brownout cohort at t=" << time << " is not a whole zone";
  }
}

TEST(DomainSchedule, PartitionsPairBeginEndPerRack) {
  FailureConfig config = domain_only_failure();
  config.domains.partition.enabled = true;
  config.domains.partition.mean_time_between = 300.0;
  config.domains.partition.mean_duration = 40.0;
  const Topology topology = test_tree(6, 2, 1);
  Rng rng(3);
  const auto schedule = generate_fault_schedule(config, topology, 3000.0, rng);
  ASSERT_FALSE(schedule.empty());

  // Per server, transitions alternate Begin < End < Begin < ... strictly.
  std::map<ServerId, std::vector<FaultTransition>> by_server;
  for (const FaultTransition& t : schedule) {
    ASSERT_TRUE(t.kind == FaultTransitionKind::kPartitionBegin ||
                t.kind == FaultTransitionKind::kPartitionEnd);
    by_server[t.server].push_back(t);
  }
  for (const auto& [server, transitions] : by_server) {
    for (std::size_t i = 0; i < transitions.size(); ++i) {
      const FaultTransitionKind expected =
          i % 2 == 0 ? FaultTransitionKind::kPartitionBegin
                     : FaultTransitionKind::kPartitionEnd;
      EXPECT_EQ(transitions[i].kind, expected);
      if (i > 0) {
        EXPECT_GT(transitions[i].time, transitions[i - 1].time);
      }
    }
  }
  // And the whole rack partitions together.
  std::map<Seconds, std::set<ServerId>> begins;
  for (const FaultTransition& t : schedule) {
    if (t.kind == FaultTransitionKind::kPartitionBegin) begins[t.time].insert(t.server);
  }
  for (const auto& [time, servers] : begins) {
    const int rack = topology.rack_of(*servers.begin());
    EXPECT_EQ(static_cast<int>(servers.size()), topology.rack_size(rack));
  }
}

TEST(DomainSchedule, LegacyScheduleUnchangedWhenDomainsOff) {
  // Enabling topology without any domain fault must not perturb the legacy
  // draw sequence — the bit-exactness contract behind the hexfloat goldens.
  FailureConfig config;
  config.enabled = true;
  config.mean_time_between_failures = hours(2);
  config.mean_time_to_repair = hours(1);
  config.brownout.enabled = true;
  config.correlated.enabled = true;
  config.correlated.group_size = 2;

  Rng legacy_rng(42);
  const auto legacy = generate_fault_schedule(config, 6, hours(50), legacy_rng);

  Rng domain_rng(42);
  const Topology topology = test_tree(6, 3, 2);
  const auto with_topology =
      generate_fault_schedule(config, topology, hours(50), domain_rng);

  ASSERT_EQ(legacy.size(), with_topology.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].time, with_topology[i].time);
    EXPECT_EQ(legacy[i].server, with_topology[i].server);
    EXPECT_EQ(legacy[i].kind, with_topology[i].kind);
    EXPECT_EQ(legacy[i].capacity_factor, with_topology[i].capacity_factor);
  }
}

// -------------------------------------------- partition engine behaviour

/// Small loaded world for scripted-partition engine tests (mirrors
/// fault_test.cpp's scripted_world; long videos span the fault window).
SimulationConfig partition_world(double avg_copies) {
  SimulationConfig config;
  config.system.name = "topology-test";
  config.system.num_servers = 4;
  config.system.server_bandwidth = 15.0;
  config.system.server_storage = gigabytes(5);
  config.system.video_min_duration = 600.0;
  config.system.video_max_duration = 900.0;
  config.system.num_videos = 12;
  config.system.avg_copies = avg_copies;
  config.system.view_bandwidth = 3.0;
  config.client.staging_fraction = 0.2;
  config.client.receive_bandwidth = 30.0;
  config.topology.enabled = true;
  config.topology.racks = 2;
  config.topology.zones = 2;
  config.load_factor = 1.0;
  config.duration = 1200.0;
  config.warmup = 0.0;
  config.seed = 9;
  config.paranoid = true;
  config.trace.enabled = true;
  return config;
}

TEST(PartitionTransitions, ShedsVictimsAndHealsUnderParanoidAudit) {
  SimulationConfig config = partition_world(2.5);
  config.load_factor = 0.7;  // headroom so victims can migrate off
  config.scripted_faults = {
      {300.0, 0, FaultTransitionKind::kPartitionBegin, 1.0},
      {700.0, 0, FaultTransitionKind::kPartitionEnd, 1.0},
  };
  VodSimulation simulation(config);  // paranoid: reachability audited
  const Metrics& metrics = simulation.run();

  EXPECT_EQ(metrics.partitions(), 1u);
  EXPECT_EQ(metrics.partition_heals(), 1u);
  EXPECT_NEAR(metrics.partition_time().mean(), 400.0, 1e-6);
  const TraceRecorder* trace = simulation.trace();
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(count_events(*trace, TraceEventType::kPartitionBegin, 0), 1u);
  EXPECT_EQ(count_events(*trace, TraceEventType::kPartitionEnd, 0), 1u);
  // The server stayed *up* the whole time: a partition is not a crash.
  EXPECT_EQ(count_events(*trace, TraceEventType::kServerDown, 0), 0u);
  EXPECT_TRUE(simulation.servers()[0].available());
  EXPECT_TRUE(simulation.servers()[0].reachable());
  // Victims were recovered to replica holders or dropped, never stranded.
  const std::size_t recovered =
      count_events(*trace, TraceEventType::kStreamRecovered);
  EXPECT_GT(recovered, 0u);
  EXPECT_EQ(count_events(*trace, TraceEventType::kStreamDropped), metrics.drops());
}

TEST(PartitionTransitions, DuplicateTransitionsAreIdempotent) {
  SimulationConfig config = partition_world(2.5);
  config.scripted_faults = {
      {300.0, 0, FaultTransitionKind::kPartitionBegin, 1.0},
      {350.0, 0, FaultTransitionKind::kPartitionBegin, 1.0},  // duplicate
      {700.0, 0, FaultTransitionKind::kPartitionEnd, 1.0},
      {750.0, 0, FaultTransitionKind::kPartitionEnd, 1.0},  // duplicate
  };
  VodSimulation simulation(config);
  const Metrics& metrics = simulation.run();

  EXPECT_EQ(metrics.partitions(), 1u);
  EXPECT_EQ(metrics.partition_heals(), 1u);
  const TraceRecorder* trace = simulation.trace();
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(count_events(*trace, TraceEventType::kPartitionBegin, 0), 1u);
  EXPECT_EQ(count_events(*trace, TraceEventType::kPartitionEnd, 0), 1u);
  EXPECT_TRUE(simulation.servers()[0].reachable());
}

TEST(PartitionTransitions, HealForceDrainsTheRetryQueue) {
  // Single-copy world with rack 0 (servers 0,1) partitioned away: victims
  // have no feasible migration target, so they park; the heal's forced
  // retry drain must re-admit them.
  SimulationConfig config = partition_world(1.0);
  config.load_factor = 1.3;  // both partitioned servers carry streams
  config.failure.retry.enabled = true;
  config.failure.retry.max_queue = 64;
  config.failure.retry.backoff_base = 1e6;  // backoff alone would never fire
  config.failure.retry.backoff_cap = 1e7;
  config.scripted_faults = {
      {300.0, 0, FaultTransitionKind::kPartitionBegin, 1.0},
      {300.0, 1, FaultTransitionKind::kPartitionBegin, 1.0},
      {500.0, 0, FaultTransitionKind::kPartitionEnd, 1.0},
      {500.0, 1, FaultTransitionKind::kPartitionEnd, 1.0},
  };
  VodSimulation simulation(config);
  const Metrics& metrics = simulation.run();

  // Some enqueued entries are parked orphans (request >= 0), not just
  // rejected arrivals.
  const TraceRecorder* trace = simulation.trace();
  ASSERT_NE(trace, nullptr);
  std::size_t parked = 0;
  for (const TraceEvent& event : trace->snapshot()) {
    if (event.type == TraceEventType::kRetryEnqueued && event.request >= 0) {
      ++parked;
    }
  }
  EXPECT_GT(parked, 0u);
  EXPECT_GT(metrics.retry_enqueued(), 0u);
  // With a ~week-long backoff, any readmission proves the heal force-drain.
  EXPECT_GT(metrics.readmissions(), 0u);
}

// --------------------------------------------- domain-spread anti-affinity

VideoCatalog spread_catalog(std::size_t n) {
  std::vector<Video> videos;
  for (std::size_t i = 0; i < n; ++i) {
    Video video;
    video.id = static_cast<VideoId>(i);
    video.duration = 600.0;
    video.view_bandwidth = 3.0;
    videos.push_back(video);
  }
  return VideoCatalog(std::move(videos));
}

std::vector<Server> spread_servers(int n) {
  std::vector<Server> servers;
  for (int i = 0; i < n; ++i) servers.emplace_back(i, 100.0, 1e9);
  return servers;
}

TEST(DomainSpread, MultiCopyTitlesNeverConcentrateInOneRack) {
  const VideoCatalog catalog = spread_catalog(10);
  auto servers = spread_servers(6);
  const Topology topology = test_tree(6, 3, 1);
  const auto popularity = ZipfDistribution(10, 0.7).probabilities();
  Rng rng(13);
  DomainSpreadPlacement policy(topology);
  const PlacementResult result =
      policy.place(catalog, popularity, /*avg_copies=*/2.0, servers, rng);

  EXPECT_EQ(result.shortfall, 0);
  for (VideoId v = 0; v < 10; ++v) {
    if (result.copies_of(v) < 2) continue;
    std::set<int> racks;
    for (const Server& server : servers) {
      if (server.holds(v)) racks.insert(topology.rack_of(server.id()));
    }
    EXPECT_GE(racks.size(), 2u)
        << "video " << v << " has " << result.copies_of(v)
        << " copies all in one rack";
  }
}

TEST(DomainSpread, UsesEvenCopyCounts) {
  // Same storage budget and popularity-obliviousness as Even: per-title
  // copy counts differ by at most one and sum to the same budget.
  const VideoCatalog catalog = spread_catalog(9);
  auto servers = spread_servers(6);
  const Topology topology = test_tree(6, 3, 1);
  const auto popularity = ZipfDistribution(9, 0.7).probabilities();
  Rng rng(17);
  DomainSpreadPlacement policy(topology);
  const PlacementResult result =
      policy.place(catalog, popularity, /*avg_copies=*/2.5, servers, rng);

  int total = 0, min_copies = 1 << 30, max_copies = 0;
  for (VideoId v = 0; v < 9; ++v) {
    total += result.copies_of(v);
    min_copies = std::min(min_copies, result.copies_of(v));
    max_copies = std::max(max_copies, result.copies_of(v));
  }
  EXPECT_EQ(total, placement_detail::copy_budget(9, 2.5));
  EXPECT_LE(max_copies - min_copies, 1);
}

// --------------------------------------------------- domain-aware repair

TEST(RepairReplication, RepairCopiesLandOutsideTheDeadRack) {
  // Rack 0 (servers 0,1) dies for most of the run with every title at one
  // copy; repair re-replication must place every recovery copy on the
  // surviving rack's servers.
  SimulationConfig config = partition_world(1.0);
  config.placement.kind = PlacementKind::kDomainSpread;
  config.failure.repair.enabled = true;
  config.failure.repair.down_threshold = 50.0;
  config.replication.enabled = true;
  config.replication.rejection_threshold = 1000000;  // only repair triggers
  config.replication.transfer_bandwidth = 6.0;  // fits the 15 Mb/s links
  config.scripted_faults = {
      {200.0, 0, FaultTransitionKind::kDown, 1.0},
      {200.0, 1, FaultTransitionKind::kDown, 1.0},
      {1100.0, 0, FaultTransitionKind::kUp, 1.0},
      {1100.0, 1, FaultTransitionKind::kUp, 1.0},
  };
  VodSimulation simulation(config);
  const Metrics& metrics = simulation.run();

  const TraceRecorder* trace = simulation.trace();
  ASSERT_NE(trace, nullptr);
  std::size_t planned = 0;
  for (const TraceEvent& event : trace->snapshot()) {
    if (event.type != TraceEventType::kRepairPlanned) continue;
    ++planned;
    // Destination must be in the surviving rack (servers 2,3).
    EXPECT_GE(event.server, 2);
  }
  EXPECT_GT(planned, 0u);
  EXPECT_GT(metrics.repairs(), 0u);
}

// --------------------------------------------- auditor reachability checks

Video audit_video() {
  Video video;
  video.id = 0;
  video.duration = 100.0;
  video.view_bandwidth = 3.0;
  return video;
}

ClientProfile audit_client() {
  ClientProfile client;
  client.buffer_capacity = 10.0;
  client.receive_bandwidth = 30.0;
  return client;
}

TEST(AuditorReachability, UnreachableServerHostingStreamsTrips) {
  Server server(0, 10.0, 1000.0);
  Request request(0, audit_video(), 0.0, audit_client());
  request.begin_streaming(0.0, server.id());
  server.attach(request);
  request.set_allocation(0.0, 3.0);

  InvariantAuditor::ServerExpectations expect;
  EXPECT_NO_THROW(InvariantAuditor::check_server(server, expect));

  // Partition the server: up, but unreachable — hosting a stream (and
  // holding a bandwidth grant) is now an invariant violation.
  server.set_reachable(false);
  EXPECT_TRUE(server.available());
  EXPECT_FALSE(server.serviceable());
  EXPECT_THROW(InvariantAuditor::check_server(server, expect), AuditFailure);
}

TEST(AuditorReachability, IdleUnreachableServerPasses) {
  Server server(0, 10.0, 1000.0);
  server.set_reachable(false);
  InvariantAuditor::ServerExpectations expect;
  EXPECT_NO_THROW(InvariantAuditor::check_server(server, expect));
}

}  // namespace
}  // namespace vodsim
