#!/usr/bin/env python3
"""Unit tests for tools/bench_diff.py and tools/validate_trace.py.

Run directly or via ctest (registered as `tools_py`). Stdlib only; the
tools are exercised as subprocesses, exactly as CI invokes them, so exit
codes and stderr contracts are part of what is tested.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         os.pardir, "tools")
BENCH_DIFF = os.path.join(TOOLS_DIR, "bench_diff.py")
VALIDATE_TRACE = os.path.join(TOOLS_DIR, "validate_trace.py")


def run_tool(script, *args):
    return subprocess.run([sys.executable, script, *args],
                          capture_output=True, text=True)


def bench_json(path, benchmarks):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"benchmarks": benchmarks}, handle)


class BenchDiffTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.before = os.path.join(self.dir.name, "before.json")
        self.after = os.path.join(self.dir.name, "after.json")

    def tearDown(self):
        self.dir.cleanup()

    def test_reports_speedup_and_geomean(self):
        bench_json(self.before, [
            {"name": "BM_A", "items_per_second": 100.0},
            {"name": "BM_B", "real_time": 20.0},
        ])
        bench_json(self.after, [
            {"name": "BM_A", "items_per_second": 200.0},
            {"name": "BM_B", "real_time": 10.0},
        ])
        result = run_tool(BENCH_DIFF, self.before, self.after)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("2.00x", result.stdout)
        self.assertIn("geometric-mean speedup over 2", result.stdout)

    def test_missing_and_renamed_benchmarks_are_not_an_error(self):
        bench_json(self.before, [
            {"name": "BM_Old", "items_per_second": 100.0},
            {"name": "BM_Common", "items_per_second": 50.0},
        ])
        bench_json(self.after, [
            {"name": "BM_New", "items_per_second": 100.0},
            {"name": "BM_Common", "items_per_second": 50.0},
        ])
        result = run_tool(BENCH_DIFF, self.before, self.after)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("BM_Old", result.stdout)
        self.assertIn("BM_New", result.stdout)

    def test_nameless_records_are_skipped_not_a_crash(self):
        # Regression: records lacking both run_name and name used to raise
        # KeyError inside load_benchmarks.
        bench_json(self.before, [
            {"items_per_second": 1.0},                      # no name at all
            {"name": "", "items_per_second": 2.0},          # empty name
            {"name": "BM_Real", "items_per_second": 100.0},
        ])
        bench_json(self.after, [
            {"name": "BM_Real", "items_per_second": 150.0},
        ])
        result = run_tool(BENCH_DIFF, self.before, self.after)
        self.assertEqual(result.returncode, 0,
                         "nameless record crashed bench_diff: " + result.stderr)
        self.assertIn("BM_Real", result.stdout)

    def test_median_aggregate_preferred_over_repetitions(self):
        bench_json(self.before, [
            {"name": "BM_X/repeats:3", "run_name": "BM_X",
             "run_type": "iteration", "items_per_second": 90.0},
            {"name": "BM_X/repeats:3_median", "run_name": "BM_X",
             "run_type": "aggregate", "aggregate_name": "median",
             "items_per_second": 100.0},
            {"name": "BM_X/repeats:3_stddev", "run_name": "BM_X",
             "run_type": "aggregate", "aggregate_name": "stddev",
             "items_per_second": 5.0},
        ])
        bench_json(self.after, [
            {"name": "BM_X", "items_per_second": 100.0},
        ])
        result = run_tool(BENCH_DIFF, self.before, self.after)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("1.00x", result.stdout)  # median 100 vs 100, not 90 or 5

    def test_threshold_flags_regressions(self):
        bench_json(self.before, [{"name": "BM_A", "items_per_second": 100.0}])
        bench_json(self.after, [{"name": "BM_A", "items_per_second": 50.0}])
        result = run_tool(BENCH_DIFF, self.before, self.after,
                          "--threshold", "10")
        self.assertEqual(result.returncode, 1)
        self.assertIn("REGRESSION", result.stdout)
        # Within threshold: clean exit.
        bench_json(self.after, [{"name": "BM_A", "items_per_second": 95.0}])
        result = run_tool(BENCH_DIFF, self.before, self.after,
                          "--threshold", "10")
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_filter_restricts_comparison(self):
        bench_json(self.before, [
            {"name": "BM_FluidKeyBatch/300", "items_per_second": 100.0},
            {"name": "BM_EndToEnd", "items_per_second": 100.0},
        ])
        bench_json(self.after, [
            {"name": "BM_FluidKeyBatch/300", "items_per_second": 300.0},
            {"name": "BM_EndToEnd", "items_per_second": 50.0},
        ])
        result = run_tool(BENCH_DIFF, self.before, self.after,
                          "--filter", "BM_Fluid")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("BM_FluidKeyBatch/300", result.stdout)
        self.assertNotIn("BM_EndToEnd", result.stdout)
        self.assertIn("3.00x", result.stdout)
        # The filtered-out regression must not trip the threshold either.
        result = run_tool(BENCH_DIFF, self.before, self.after,
                          "--filter", "BM_Fluid", "--threshold", "10")
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_snapshot_format_diffs_across_prs(self):
        # bench/BENCH_prN.json shape: "benchmarks" is a dict of hand-measured
        # rows. Kernel rows are ns (time/op); end-to-end rows are events/sec
        # (throughput). Speedup must stay oriented so > 1.0 means better.
        with open(self.before, "w", encoding="utf-8") as handle:
            json.dump({"benchmarks": {
                "BM_FluidAdvanceBatch/streams:300": {
                    "unit": "ns per advance", "exact": 2000, "fast": 1000},
                "end_to_end": {
                    "unit": "simulator events/sec", "exact": 100.0,
                    "fast": None},
            }}, handle)
        with open(self.after, "w", encoding="utf-8") as handle:
            json.dump({"benchmarks": {
                "BM_FluidAdvanceBatch/streams:300": {
                    "unit": "ns per advance", "exact": 1000, "fast": 500},
                "end_to_end": {
                    "unit": "simulator events/sec", "exact": 200.0,
                    "fast": 300.0},
            }}, handle)
        result = run_tool(BENCH_DIFF, self.before, self.after,
                          "--filter", "BM_Fluid")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("BM_FluidAdvanceBatch/streams:300[exact]", result.stdout)
        self.assertIn("BM_FluidAdvanceBatch/streams:300[fast]", result.stdout)
        self.assertNotIn("end_to_end", result.stdout)
        self.assertIn("2.00x", result.stdout)  # halved time = 2x speedup

    def test_markdown_table(self):
        bench_json(self.before, [{"name": "BM_A", "items_per_second": 1e6}])
        bench_json(self.after, [{"name": "BM_A", "items_per_second": 2e6}])
        result = run_tool(BENCH_DIFF, self.before, self.after, "--markdown")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("| benchmark | metric | before | after | speedup |",
                      result.stdout)
        self.assertIn("| BM_A |", result.stdout)


class ValidateTraceTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.dir.cleanup()

    def path(self, name):
        return os.path.join(self.dir.name, name)

    def write(self, name, text):
        with open(self.path(name), "w", encoding="utf-8") as handle:
            handle.write(text)
        return self.path(name)

    def test_valid_chrome_trace_passes(self):
        trace = self.write("t.json", json.dumps({"traceEvents": [
            {"ph": "b", "name": "stream", "ts": 0, "cat": "admission",
             "id": "1", "pid": 1, "tid": 1},
            {"ph": "e", "name": "stream", "ts": 5, "cat": "admission",
             "id": "1", "pid": 1, "tid": 1},
            {"ph": "C", "name": "load", "ts": 3, "pid": 1, "tid": 1,
             "args": {"mbps": 12.5}},
        ]}))
        result = run_tool(VALIDATE_TRACE, "--chrome", trace)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("all artifacts ok", result.stdout)

    def test_unpaired_async_event_fails(self):
        trace = self.write("t.json", json.dumps({"traceEvents": [
            {"ph": "b", "name": "stream", "ts": 0, "cat": "admission",
             "id": "1", "pid": 1, "tid": 1},
        ]}))
        result = run_tool(VALIDATE_TRACE, "--chrome", trace)
        self.assertEqual(result.returncode, 1)
        self.assertIn("FAIL", result.stderr)

    def jsonl_lines(self):
        events = [
            {"seq": 1, "t": 0.0, "type": "arrival", "cat": "admission",
             "server": 0, "request": 1, "video": 2, "a": 0.0, "b": 0.0},
            {"seq": 2, "t": 1.5, "type": "admit", "cat": "admission",
             "server": 0, "request": 1, "video": 2, "a": 0.0, "b": 0.0},
        ]
        header = {"schema": "vodsim-trace-v1", "events": len(events)}
        return [json.dumps(header)] + [json.dumps(e) for e in events]

    def test_valid_jsonl_passes(self):
        trace = self.write("t.jsonl", "\n".join(self.jsonl_lines()) + "\n")
        result = run_tool(VALIDATE_TRACE, "--jsonl", trace)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_jsonl_bad_schema_and_bad_seq_fail(self):
        lines = self.jsonl_lines()
        bad_schema = self.write("s.jsonl", "\n".join(
            [json.dumps({"schema": "nope", "events": 2})] + lines[1:]) + "\n")
        result = run_tool(VALIDATE_TRACE, "--jsonl", bad_schema)
        self.assertEqual(result.returncode, 1)
        self.assertIn("vodsim-trace-v1", result.stderr)

        swapped = self.write("q.jsonl",
                             "\n".join([lines[0], lines[2], lines[1]]) + "\n")
        result = run_tool(VALIDATE_TRACE, "--jsonl", swapped)
        self.assertEqual(result.returncode, 1)
        self.assertIn("FAIL", result.stderr)

    def probe_rows(self):
        header = ("time,server,committed_mbps,reserved_mbps,active_streams,"
                  "mean_buffer_fill,pending_events,capacity_factor,retry_queue,"
                  "reachable")
        return [header,
                "0.0,0,12.0,0.0,4,0.5,7,1.0,0,1.0",
                "60.0,0,15.0,3.0,5,0.55,8,1.0,0,1.0"]

    def test_valid_probes_pass(self):
        probes = self.write("p.csv", "\n".join(self.probe_rows()) + "\n")
        result = run_tool(VALIDATE_TRACE, "--probes", probes)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_probe_header_and_time_order_enforced(self):
        rows = self.probe_rows()
        bad_header = self.write("h.csv",
                                "\n".join(["when,who"] + rows[1:]) + "\n")
        result = run_tool(VALIDATE_TRACE, "--probes", bad_header)
        self.assertEqual(result.returncode, 1)

        back_in_time = self.write("b.csv",
                                  "\n".join([rows[0], rows[2], rows[1]]) + "\n")
        result = run_tool(VALIDATE_TRACE, "--probes", back_in_time)
        self.assertEqual(result.returncode, 1)
        self.assertIn("time went backwards", result.stderr)

    def test_nothing_to_validate_is_an_error(self):
        result = run_tool(VALIDATE_TRACE)
        self.assertNotEqual(result.returncode, 0)


if __name__ == "__main__":
    unittest.main()
