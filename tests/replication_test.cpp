// Tests for dynamic replication: trigger logic, source/destination
// selection, concurrency caps, and end-to-end engine behavior.

#include <gtest/gtest.h>

#include "vodsim/engine/vod_simulation.h"
#include "vodsim/replication/replication.h"

namespace vodsim {
namespace {

constexpr Mbps kView = 3.0;

VideoCatalog tiny_catalog(std::size_t n, Seconds duration = 600.0) {
  std::vector<Video> videos;
  for (std::size_t i = 0; i < n; ++i) {
    Video video;
    video.id = static_cast<VideoId>(i);
    video.duration = duration;
    video.view_bandwidth = kView;
    videos.push_back(video);
  }
  return VideoCatalog(std::move(videos));
}

ReplicationConfig config_on(int threshold = 3) {
  ReplicationConfig config;
  config.enabled = true;
  config.rejection_threshold = threshold;
  config.window = 100.0;
  config.transfer_bandwidth = 10.0;
  config.max_concurrent = 2;
  return config;
}

struct TinyWorld {
  VideoCatalog catalog = tiny_catalog(3);
  std::vector<Server> servers;
  ReplicaDirectory directory;

  TinyWorld() {
    servers.emplace_back(0, 100.0, 1e7);
    servers.emplace_back(1, 100.0, 1e7);
    servers.emplace_back(2, 100.0, 1e7);
    EXPECT_TRUE(servers[0].add_replica(catalog[0]));
    EXPECT_TRUE(servers[1].add_replica(catalog[1]));
    EXPECT_TRUE(servers[2].add_replica(catalog[2]));
    directory = ReplicaDirectory(catalog.size(), servers);
  }
};

TEST(Replication, DisabledNeverTriggers) {
  TinyWorld world;
  ReplicationManager manager{ReplicationConfig{}};
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(manager
                     .on_rejection(0, static_cast<Seconds>(i), world.catalog,
                                   world.servers, world.directory)
                     .has_value());
  }
}

TEST(Replication, TriggersAtThresholdWithinWindow) {
  TinyWorld world;
  ReplicationManager manager(config_on(3));
  EXPECT_FALSE(manager.on_rejection(0, 1.0, world.catalog, world.servers,
                                    world.directory));
  EXPECT_FALSE(manager.on_rejection(0, 2.0, world.catalog, world.servers,
                                    world.directory));
  const auto job = manager.on_rejection(0, 3.0, world.catalog, world.servers,
                                        world.directory);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->video, 0);
  EXPECT_EQ(job->source, 0);  // the only holder
  EXPECT_NE(job->destination, 0);
  EXPECT_DOUBLE_EQ(job->transfer_time, 1800.0 / 10.0);
}

TEST(Replication, WindowExpiryResetsCount) {
  TinyWorld world;
  ReplicationManager manager(config_on(3));
  EXPECT_FALSE(manager.on_rejection(0, 1.0, world.catalog, world.servers,
                                    world.directory));
  EXPECT_FALSE(manager.on_rejection(0, 2.0, world.catalog, world.servers,
                                    world.directory));
  // Third rejection far outside the window: the first two have expired.
  EXPECT_FALSE(manager.on_rejection(0, 500.0, world.catalog, world.servers,
                                    world.directory));
}

TEST(Replication, CountsArePerVideo) {
  TinyWorld world;
  ReplicationManager manager(config_on(2));
  EXPECT_FALSE(manager.on_rejection(0, 1.0, world.catalog, world.servers,
                                    world.directory));
  EXPECT_FALSE(manager.on_rejection(1, 2.0, world.catalog, world.servers,
                                    world.directory));
  // Video 0 again: two rejections of video 0 within the window -> trigger.
  EXPECT_TRUE(manager.on_rejection(0, 3.0, world.catalog, world.servers,
                                   world.directory));
}

TEST(Replication, ConcurrencyCapAndDuplicateSuppression) {
  TinyWorld world;
  ReplicationConfig config = config_on(1);
  config.max_concurrent = 1;
  ReplicationManager manager(config);
  const auto first = manager.on_rejection(0, 1.0, world.catalog, world.servers,
                                          world.directory);
  ASSERT_TRUE(first.has_value());
  manager.on_job_started();
  // Same video again: suppressed (already copying). Different video: blocked
  // by the concurrency cap.
  EXPECT_FALSE(manager.on_rejection(0, 2.0, world.catalog, world.servers,
                                    world.directory));
  EXPECT_FALSE(manager.on_rejection(1, 3.0, world.catalog, world.servers,
                                    world.directory));
  manager.on_job_finished(0);
  EXPECT_EQ(manager.in_flight(), 0);
  EXPECT_TRUE(manager.on_rejection(1, 4.0, world.catalog, world.servers,
                                   world.directory));
}

TEST(Replication, MaxTotalCapsLifetimeCopies) {
  TinyWorld world;
  ReplicationConfig config = config_on(1);
  config.max_total = 1;
  ReplicationManager manager(config);
  ASSERT_TRUE(manager.on_rejection(0, 1.0, world.catalog, world.servers,
                                   world.directory));
  manager.on_job_started();
  manager.on_job_finished(0);
  EXPECT_FALSE(manager.on_rejection(1, 2.0, world.catalog, world.servers,
                                    world.directory));
}

TEST(Replication, NeedsStorageAtDestination) {
  VideoCatalog catalog = tiny_catalog(2);
  std::vector<Server> servers;
  servers.emplace_back(0, 100.0, 1e7);
  servers.emplace_back(1, 100.0, 100.0);  // too small for a 1800 Mb object
  ASSERT_TRUE(servers[0].add_replica(catalog[0]));
  const ReplicaDirectory directory(catalog.size(), servers);
  ReplicationManager manager(config_on(1));
  EXPECT_FALSE(manager.on_rejection(0, 1.0, catalog, servers, directory));
}

TEST(Replication, SaturatedSourceFallsBackToTertiary) {
  VideoCatalog catalog = tiny_catalog(2);
  std::vector<Server> servers;
  servers.emplace_back(0, 12.0, 1e7);
  servers.emplace_back(1, 100.0, 1e7);
  ASSERT_TRUE(servers[0].add_replica(catalog[0]));
  servers[0].reserve_bandwidth(5.0);  // slack 7 < transfer 10: no server source
  const ReplicaDirectory directory(catalog.size(), servers);

  ReplicationManager manager(config_on(1));
  const auto job = manager.on_rejection(0, 1.0, catalog, servers, directory);
  ASSERT_TRUE(job.has_value());
  EXPECT_TRUE(job->from_tertiary());
  EXPECT_EQ(job->destination, 1);
}

TEST(Replication, NoTertiaryMeansSlackRequiredAtSource) {
  VideoCatalog catalog = tiny_catalog(2);
  std::vector<Server> servers;
  servers.emplace_back(0, 12.0, 1e7);
  servers.emplace_back(1, 100.0, 1e7);
  ASSERT_TRUE(servers[0].add_replica(catalog[0]));
  servers[0].reserve_bandwidth(5.0);
  const ReplicaDirectory directory(catalog.size(), servers);

  ReplicationConfig config = config_on(1);
  config.allow_tertiary_source = false;
  ReplicationManager manager(config);
  EXPECT_FALSE(manager.on_rejection(0, 1.0, catalog, servers, directory));
}

TEST(Replication, DirectoryAddHolderIdempotent) {
  TinyWorld world;
  world.directory.add_holder(0, 2);
  world.directory.add_holder(0, 2);
  EXPECT_EQ(world.directory.holders(0), (std::vector<ServerId>{0, 2}));
}

// --------------------------------------------------------- end to end

TEST(Replication, EngineCreatesReplicasUnderSkew) {
  SimulationConfig config;
  config.system = SystemConfig::small_system();
  config.zipf_theta = -1.5;  // extreme skew: even placement starves the head
  config.duration = hours(20);
  config.warmup = hours(2);
  config.seed = 5;
  config.replication.enabled = true;
  config.replication.rejection_threshold = 3;
  config.replication.window = 1800.0;
  config.replication.transfer_bandwidth = 20.0;
  config.replication.max_concurrent = 2;

  VodSimulation simulation(config);
  const Metrics& metrics = simulation.run();
  EXPECT_GT(metrics.replications(), 0u);
  // The hottest title gained holders beyond its placed copies.
  EXPECT_GT(simulation.directory().holders(0).size(),
            static_cast<std::size_t>(simulation.placement_result().copies_of(0)));
  EXPECT_LE(metrics.utilization(), 1.0 + 1e-9);
  EXPECT_EQ(simulation.continuity_violations(), 0u);
}

TEST(Replication, ImprovesUtilizationUnderSkew) {
  SimulationConfig off;
  off.system = SystemConfig::small_system();
  off.zipf_theta = -1.5;
  off.duration = hours(20);
  off.warmup = hours(2);
  off.seed = 6;

  SimulationConfig on = off;
  on.replication.enabled = true;
  on.replication.rejection_threshold = 3;
  on.replication.window = 1800.0;
  on.replication.transfer_bandwidth = 20.0;
  on.replication.max_concurrent = 2;

  VodSimulation without(off);
  VodSimulation with(on);
  const double u_without = without.run().utilization();
  const double u_with = with.run().utilization();
  EXPECT_GT(u_with, u_without + 0.02);
}

}  // namespace
}  // namespace vodsim
