// Golden-determinism regression: same seed => bit-identical results.
//
// The allocation-free hot path (slab event queue, scratch-buffer schedulers,
// dirty-epoch recompute memo) is only acceptable because it provably does not
// perturb simulation output. This test pins that property: a fig7-style
// policy-matrix trial must produce bit-identical TrialResult fields when run
// twice in-process, and when run through the multi-threaded ExperimentRunner
// (scheduling order across the pool must not leak into per-trial results).
//
// Comparisons use exact equality on doubles on purpose — "close enough" would
// silently absorb the very regressions this guards against (reordered FP
// accumulation, skipped recomputes that matter, event-order drift).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "vodsim/engine/experiment.h"
#include "vodsim/engine/policy_matrix.h"
#include "vodsim/engine/vod_simulation.h"

namespace vodsim {
namespace {

/// Small fig7-style config: small system, paper client settings, short
/// horizon. Kept small so the full matrix stays fast under ctest.
SimulationConfig golden_config(const PolicySpec& policy, std::uint64_t seed) {
  SimulationConfig config;
  config.system = SystemConfig::small_system();
  config.zipf_theta = 0.271;
  config.client.receive_bandwidth = 30.0;
  config.duration = hours(0.25);
  config.warmup = 0.0;
  config.seed = seed;
  return apply_policy(std::move(config), policy);
}

TrialResult run_once(const SimulationConfig& config) {
  VodSimulation simulation(config);
  simulation.run();
  return TrialResult::from(simulation);
}

void expect_bit_identical(const TrialResult& a, const TrialResult& b) {
  // Exact compares, including the doubles — see file comment.
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.rejection_ratio, b.rejection_ratio);
  EXPECT_EQ(a.migrations_per_arrival, b.migrations_per_arrival);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.accepts, b.accepts);
  EXPECT_EQ(a.rejects, b.rejects);
  EXPECT_EQ(a.migration_steps, b.migration_steps);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.underflow_events, b.underflow_events);
  EXPECT_EQ(a.continuity_violations, b.continuity_violations);
}

TEST(GoldenDeterminism, RepeatedRunsAreBitIdentical) {
  for (const PolicySpec& policy : figure6_policies()) {
    const SimulationConfig config = golden_config(policy, 7);
    const TrialResult first = run_once(config);
    const TrialResult second = run_once(config);
    SCOPED_TRACE(policy.label);
    ASSERT_GT(first.arrivals, 0u);  // the trial actually exercised the engine
    expect_bit_identical(first, second);
  }
}

TEST(GoldenDeterminism, ThreadedRunnerMatchesDirectRuns) {
  // Two trials through a 2-thread pool must equal the same trials run
  // directly, trial by trial: worker scheduling cannot affect results.
  const PolicySpec policy = figure6_policies().front();
  const std::uint64_t master_seed = 42;
  constexpr int kTrials = 2;

  std::vector<TrialResult> direct;
  for (int trial = 0; trial < kTrials; ++trial) {
    SimulationConfig config =
        golden_config(policy, ExperimentRunner::derive_seed(master_seed, trial));
    direct.push_back(run_once(config));
  }

  ExperimentRunner runner(2);
  const ExperimentPoint point =
      runner.run_point(golden_config(policy, 0), kTrials, master_seed);
  ASSERT_EQ(point.trials.size(), static_cast<std::size_t>(kTrials));
  for (int trial = 0; trial < kTrials; ++trial) {
    SCOPED_TRACE(trial);
    expect_bit_identical(point.trials[static_cast<std::size_t>(trial)],
                         direct[static_cast<std::size_t>(trial)]);
  }
}

// --- feature-config golden runs ------------------------------------------
// The base matrix above exercises the paper's eight policies; these configs
// pin bit-exactness on the extension subsystems, each asserting the feature
// actually fired so the comparison is not vacuous.

TEST(GoldenDeterminism, FailureInjectionIsBitIdentical) {
  SimulationConfig config = golden_config(figure6_policies().front(), 11);
  config.failure.enabled = true;
  config.failure.mean_time_between_failures = hours(0.05);
  config.failure.mean_time_to_repair = hours(0.02);

  VodSimulation first(config);
  first.run();
  ASSERT_FALSE(first.failure_timeline().empty());  // failures actually fired

  const TrialResult a = TrialResult::from(first);
  const TrialResult b = run_once(config);
  expect_bit_identical(a, b);
}

TEST(GoldenDeterminism, DynamicReplicationIsBitIdentical) {
  // Overload a single-copy catalog so rejections trigger replication.
  SimulationConfig config = golden_config(figure6_policies()[2], 13);
  config.load_factor = 2.0;
  config.system.avg_copies = 1.0;
  config.replication.enabled = true;
  config.replication.rejection_threshold = 1;
  config.replication.window = 600.0;

  VodSimulation first(config);
  first.run();
  ASSERT_GT(first.metrics().replications(), 0u);  // copies actually made

  const TrialResult a = TrialResult::from(first);
  const TrialResult b = run_once(config);
  expect_bit_identical(a, b);
  EXPECT_EQ(first.metrics().replications(), [&] {
    VodSimulation again(config);
    again.run();
    return again.metrics().replications();
  }());
}

TEST(GoldenDeterminism, InteractivityIsBitIdentical) {
  SimulationConfig config = golden_config(figure6_policies()[2], 17);
  config.interactivity.enabled = true;
  config.interactivity.pauses_per_hour = 40.0;
  config.interactivity.mean_pause_duration = 30.0;

  VodSimulation first(config);
  first.run();
  ASSERT_GT(first.pauses_started(), 0u);  // pauses actually fired

  const TrialResult a = TrialResult::from(first);
  const TrialResult b = run_once(config);
  expect_bit_identical(a, b);
}

TEST(GoldenDeterminism, ParanoidRunIsBitIdentical) {
  // The auditor observes only: attaching it cannot perturb a single bit of
  // the result (the audit hooks run outside the fluid arithmetic).
  const SimulationConfig plain = golden_config(figure6_policies().front(), 7);
  SimulationConfig paranoid = plain;
  paranoid.paranoid = true;
  expect_bit_identical(run_once(plain), run_once(paranoid));
}

TEST(GoldenDeterminism, TracedRunIsBitIdentical) {
  // The trace recorder and probe samplers observe only: they read state on
  // the way past, schedule no simulator events and touch no RNG, so turning
  // them on — alone or together with the auditor — cannot perturb a bit.
  // Use a policy with migration enabled so the admission/migration emission
  // sites actually run.
  const SimulationConfig plain = golden_config(figure6_policies()[2], 7);

  SimulationConfig traced = plain;
  traced.trace.enabled = true;
  traced.probe.enabled = true;
  traced.probe.period = 30.0;

  SimulationConfig everything = traced;
  everything.paranoid = true;

  const TrialResult base = run_once(plain);

  VodSimulation traced_sim(traced);
  traced_sim.run();
  ASSERT_NE(traced_sim.trace(), nullptr);
  ASSERT_GT(traced_sim.trace()->emitted(), 0u);  // tracing actually fired
  ASSERT_NE(traced_sim.probes(), nullptr);
  ASSERT_GT(traced_sim.probes()->rows().size(), 0u);
  expect_bit_identical(base, TrialResult::from(traced_sim));

  VodSimulation everything_sim(everything);
  everything_sim.run();
  ASSERT_NE(everything_sim.auditor(), nullptr);
  expect_bit_identical(base, TrialResult::from(everything_sim));

  // Category filtering only mutes emission sites; it cannot change results
  // either.
  SimulationConfig filtered = plain;
  filtered.trace.enabled = true;
  filtered.trace.categories = kTraceAdmission | kTraceMigration;
  expect_bit_identical(base, run_once(filtered));
}

TEST(GoldenDeterminism, DistinctSeedsDiverge) {
  // Sanity check that the comparisons above are not vacuous: different
  // seeds must actually change the outcome.
  const PolicySpec policy = figure6_policies().front();
  const TrialResult a = run_once(golden_config(policy, 7));
  const TrialResult b = run_once(golden_config(policy, 8));
  EXPECT_NE(a.arrivals, b.arrivals);
}

}  // namespace
}  // namespace vodsim
