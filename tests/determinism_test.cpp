// Golden-determinism regression: same seed => bit-identical results.
//
// The allocation-free hot path (slab event queue, scratch-buffer schedulers,
// dirty-epoch recompute memo) is only acceptable because it provably does not
// perturb simulation output. This test pins that property: a fig7-style
// policy-matrix trial must produce bit-identical TrialResult fields when run
// twice in-process, and when run through the multi-threaded ExperimentRunner
// (scheduling order across the pool must not leak into per-trial results).
//
// Comparisons use exact equality on doubles on purpose — "close enough" would
// silently absorb the very regressions this guards against (reordered FP
// accumulation, skipped recomputes that matter, event-order drift).

#include <gtest/gtest.h>

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "vodsim/engine/experiment.h"
#include "vodsim/engine/policy_matrix.h"
#include "vodsim/engine/sweep_context.h"
#include "vodsim/engine/vod_simulation.h"

namespace vodsim {
namespace {

/// Small fig7-style config: small system, paper client settings, short
/// horizon. Kept small so the full matrix stays fast under ctest.
SimulationConfig golden_config(const PolicySpec& policy, std::uint64_t seed) {
  SimulationConfig config;
  config.system = SystemConfig::small_system();
  config.zipf_theta = 0.271;
  config.client.receive_bandwidth = 30.0;
  config.duration = hours(0.25);
  config.warmup = 0.0;
  config.seed = seed;
  return apply_policy(std::move(config), policy);
}

TrialResult run_once(const SimulationConfig& config) {
  VodSimulation simulation(config);
  simulation.run();
  return TrialResult::from(simulation);
}

void expect_bit_identical(const TrialResult& a, const TrialResult& b) {
  // Exact compares, including the doubles — see file comment.
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.rejection_ratio, b.rejection_ratio);
  EXPECT_EQ(a.migrations_per_arrival, b.migrations_per_arrival);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.accepts, b.accepts);
  EXPECT_EQ(a.rejects, b.rejects);
  EXPECT_EQ(a.migration_steps, b.migration_steps);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.underflow_events, b.underflow_events);
  EXPECT_EQ(a.continuity_violations, b.continuity_violations);
}

TEST(GoldenDeterminism, RepeatedRunsAreBitIdentical) {
  for (const PolicySpec& policy : figure6_policies()) {
    const SimulationConfig config = golden_config(policy, 7);
    const TrialResult first = run_once(config);
    const TrialResult second = run_once(config);
    SCOPED_TRACE(policy.label);
    ASSERT_GT(first.arrivals, 0u);  // the trial actually exercised the engine
    expect_bit_identical(first, second);
  }
}

TEST(GoldenDeterminism, ThreadedRunnerMatchesDirectRuns) {
  // Two trials through a 2-thread pool must equal the same trials run
  // directly, trial by trial: worker scheduling cannot affect results.
  const PolicySpec policy = figure6_policies().front();
  const std::uint64_t master_seed = 42;
  constexpr int kTrials = 2;

  std::vector<TrialResult> direct;
  for (int trial = 0; trial < kTrials; ++trial) {
    SimulationConfig config =
        golden_config(policy, ExperimentRunner::derive_seed(master_seed, trial));
    direct.push_back(run_once(config));
  }

  ExperimentRunner runner(2);
  const ExperimentPoint point =
      runner.run_point(golden_config(policy, 0), kTrials, master_seed);
  ASSERT_EQ(point.trials.size(), static_cast<std::size_t>(kTrials));
  for (int trial = 0; trial < kTrials; ++trial) {
    SCOPED_TRACE(trial);
    expect_bit_identical(point.trials[static_cast<std::size_t>(trial)],
                         direct[static_cast<std::size_t>(trial)]);
  }
}

// --- feature-config golden runs ------------------------------------------
// The base matrix above exercises the paper's eight policies; these configs
// pin bit-exactness on the extension subsystems, each asserting the feature
// actually fired so the comparison is not vacuous.

TEST(GoldenDeterminism, FailureInjectionIsBitIdentical) {
  SimulationConfig config = golden_config(figure6_policies().front(), 11);
  config.failure.enabled = true;
  config.failure.mean_time_between_failures = hours(0.05);
  config.failure.mean_time_to_repair = hours(0.02);

  VodSimulation first(config);
  first.run();
  ASSERT_FALSE(first.failure_timeline().empty());  // failures actually fired

  const TrialResult a = TrialResult::from(first);
  const TrialResult b = run_once(config);
  expect_bit_identical(a, b);
}

TEST(GoldenDeterminism, DynamicReplicationIsBitIdentical) {
  // Overload a single-copy catalog so rejections trigger replication.
  SimulationConfig config = golden_config(figure6_policies()[2], 13);
  config.load_factor = 2.0;
  config.system.avg_copies = 1.0;
  config.replication.enabled = true;
  config.replication.rejection_threshold = 1;
  config.replication.window = 600.0;

  VodSimulation first(config);
  first.run();
  ASSERT_GT(first.metrics().replications(), 0u);  // copies actually made

  const TrialResult a = TrialResult::from(first);
  const TrialResult b = run_once(config);
  expect_bit_identical(a, b);
  EXPECT_EQ(first.metrics().replications(), [&] {
    VodSimulation again(config);
    again.run();
    return again.metrics().replications();
  }());
}

TEST(GoldenDeterminism, InteractivityIsBitIdentical) {
  SimulationConfig config = golden_config(figure6_policies()[2], 17);
  config.interactivity.enabled = true;
  config.interactivity.pauses_per_hour = 40.0;
  config.interactivity.mean_pause_duration = 30.0;

  VodSimulation first(config);
  first.run();
  ASSERT_GT(first.pauses_started(), 0u);  // pauses actually fired

  const TrialResult a = TrialResult::from(first);
  const TrialResult b = run_once(config);
  expect_bit_identical(a, b);
}

TEST(GoldenDeterminism, ParanoidRunIsBitIdentical) {
  // The auditor observes only: attaching it cannot perturb a single bit of
  // the result (the audit hooks run outside the fluid arithmetic).
  const SimulationConfig plain = golden_config(figure6_policies().front(), 7);
  SimulationConfig paranoid = plain;
  paranoid.paranoid = true;
  expect_bit_identical(run_once(plain), run_once(paranoid));
}

// --- fast-math dual-exactness contract -----------------------------------
// Exact mode is pinned bit-for-bit by the hexfloat goldens below; fast mode
// promises (a) reproducibility — same config + build => same bits — and
// (b) agreement with exact mode: identical discrete counters, fluid
// aggregates within the reference-oracle tolerance. These two tests pin the
// contract per mode; check_fuzz_test.cpp enforces (b) across the whole
// randomized feature cross-product.

TEST(GoldenDeterminism, FastMathIsReproducible) {
  for (const PolicySpec& policy : figure6_policies()) {
    SimulationConfig config = golden_config(policy, 7);
    config.fast_math = true;
    const TrialResult first = run_once(config);
    const TrialResult second = run_once(config);
    SCOPED_TRACE(policy.label);
    ASSERT_GT(first.arrivals, 0u);
    expect_bit_identical(first, second);
  }
}

TEST(GoldenDeterminism, FastMathAgreesWithExactMode) {
  for (const PolicySpec& policy : figure6_policies()) {
    const SimulationConfig exact_config = golden_config(policy, 7);
    SimulationConfig fast_config = exact_config;
    fast_config.fast_math = true;

    const TrialResult exact = run_once(exact_config);
    const TrialResult fast = run_once(fast_config);
    SCOPED_TRACE(policy.label);

    // Per-stream trajectories run the identical formulas, so every discrete
    // decision coincides exactly.
    EXPECT_EQ(exact.arrivals, fast.arrivals);
    EXPECT_EQ(exact.accepts, fast.accepts);
    EXPECT_EQ(exact.rejects, fast.rejects);
    EXPECT_EQ(exact.migration_steps, fast.migration_steps);
    EXPECT_EQ(exact.drops, fast.drops);
    EXPECT_EQ(exact.underflow_events, fast.underflow_events);
    EXPECT_EQ(exact.continuity_violations, fast.continuity_violations);

    // The metering summation is regrouped (one per-batch sum instead of one
    // call per stream), so fluid aggregates may drift at ulp scale — bounded
    // by the oracle's relative tolerance, never more.
    EXPECT_NEAR(exact.utilization, fast.utilization,
                1e-9 + 1e-9 * std::abs(exact.utilization));
    EXPECT_NEAR(exact.rejection_ratio, fast.rejection_ratio,
                1e-9 + 1e-9 * std::abs(exact.rejection_ratio));
    EXPECT_NEAR(exact.migrations_per_arrival, fast.migrations_per_arrival,
                1e-9 + 1e-9 * std::abs(exact.migrations_per_arrival));
  }
}

// --- sharded determinism contract ----------------------------------------
// The sharded engine's promise is weaker than bit-identity with the
// single-queue run (the shard/single differential in check_fuzz_test.cpp
// pins that agreement, counters exact / fluid within tolerance) but strict
// on its own terms: for a FIXED shard count, the result is bit-identical at
// ANY worker thread count, and across repeat runs. Each shard drains its
// window serially whatever the pool width, the coordinator steps alone, and
// metrics merge in shard-index order — thread count only changes who runs a
// drain, never what it computes or the order results are combined.

TEST(GoldenDeterminism, ShardedIsReproducibleAcrossThreadCounts) {
  for (const PolicySpec& policy :
       {figure6_policies().front(), figure6_policies()[2],
        figure6_policies()[3]}) {
    SimulationConfig config = golden_config(policy, 7);
    config.shards = 4;

    config.shard_threads = 1;
    const TrialResult serial = run_once(config);
    SCOPED_TRACE(policy.label);
    ASSERT_GT(serial.arrivals, 0u);

    config.shard_threads = 2;
    expect_bit_identical(serial, run_once(config));

    config.shard_threads = 8;  // more workers than shards: some sit idle
    expect_bit_identical(serial, run_once(config));
    expect_bit_identical(serial, run_once(config));  // and repeat-run stable
  }
}

TEST(GoldenDeterminism, ShardedRunsDefaultToFastMath) {
  // PR 9 policy: sharding already opts out of bit-identity with the
  // single-queue run, so sharded runs take the batched engine unless the
  // user explicitly opts back out; single-queue runs stay exact unless
  // fast-math is explicitly requested (the hexfloat goldens depend on it).
  SimulationConfig config = golden_config(figure6_policies().front(), 7);
  EXPECT_FALSE(VodSimulation(config).fast_math_enabled());

  config.shards = 4;
  EXPECT_TRUE(VodSimulation(config).fast_math_enabled());

  config.exact_math = true;
  EXPECT_FALSE(VodSimulation(config).fast_math_enabled());

  config.exact_math = false;
  config.shards = 1;
  config.fast_math = true;
  EXPECT_TRUE(VodSimulation(config).fast_math_enabled());
}

TEST(GoldenDeterminism, ShardedArenaMatchesSingleArenaExactly) {
  // The request arena's pool split is pure storage: with exact_math opting
  // the sharded run out of the fast-math default, the only remaining
  // difference from the single-queue run is shard scheduling — so counters
  // must match exactly and fluid aggregates within merge-order tolerance,
  // same contract the fuzzer's shard differential enforces.
  for (const PolicySpec& policy :
       {figure6_policies().front(), figure6_policies()[3]}) {
    SCOPED_TRACE(policy.label);
    SimulationConfig config = golden_config(policy, 17);
    const TrialResult single = run_once(config);
    ASSERT_GT(single.arrivals, 0u);

    config.shards = 4;
    config.shard_threads = 2;
    config.exact_math = true;
    const TrialResult sharded = run_once(config);

    EXPECT_EQ(single.arrivals, sharded.arrivals);
    EXPECT_EQ(single.accepts, sharded.accepts);
    EXPECT_EQ(single.rejects, sharded.rejects);
    EXPECT_EQ(single.migration_steps, sharded.migration_steps);
    EXPECT_EQ(single.drops, sharded.drops);
    EXPECT_EQ(single.underflow_events, sharded.underflow_events);
    EXPECT_EQ(single.continuity_violations, sharded.continuity_violations);
    EXPECT_NEAR(single.utilization, sharded.utilization,
                1e-9 + 1e-9 * std::abs(single.utilization));
    EXPECT_NEAR(single.rejection_ratio, sharded.rejection_ratio,
                1e-9 + 1e-9 * std::abs(single.rejection_ratio));
  }
}

TEST(GoldenDeterminism, TracedRunIsBitIdentical) {
  // The trace recorder and probe samplers observe only: they read state on
  // the way past, schedule no simulator events and touch no RNG, so turning
  // them on — alone or together with the auditor — cannot perturb a bit.
  // Use a policy with migration enabled so the admission/migration emission
  // sites actually run.
  const SimulationConfig plain = golden_config(figure6_policies()[2], 7);

  SimulationConfig traced = plain;
  traced.trace.enabled = true;
  traced.probe.enabled = true;
  traced.probe.period = 30.0;

  SimulationConfig everything = traced;
  everything.paranoid = true;

  const TrialResult base = run_once(plain);

  VodSimulation traced_sim(traced);
  traced_sim.run();
  ASSERT_NE(traced_sim.trace(), nullptr);
  ASSERT_GT(traced_sim.trace()->emitted(), 0u);  // tracing actually fired
  ASSERT_NE(traced_sim.probes(), nullptr);
  ASSERT_GT(traced_sim.probes()->rows().size(), 0u);
  expect_bit_identical(base, TrialResult::from(traced_sim));

  VodSimulation everything_sim(everything);
  everything_sim.run();
  ASSERT_NE(everything_sim.auditor(), nullptr);
  expect_bit_identical(base, TrialResult::from(everything_sim));

  // Category filtering only mutes emission sites; it cannot change results
  // either.
  SimulationConfig filtered = plain;
  filtered.trace.enabled = true;
  filtered.trace.categories = kTraceAdmission | kTraceMigration;
  expect_bit_identical(base, run_once(filtered));
}

TEST(GoldenDeterminism, SweepContextTrialsMatchPlainConstruction) {
  // Every (config x trial) cell built from a shared SweepContext must be
  // bit-identical to the same cell built standalone — the context memoizes
  // world construction, it must not perturb it. The config set is chosen to
  // exercise every memoized path: two placement kinds, a drifting
  // popularity model, and the partial-predictive policy.
  std::vector<SimulationConfig> configs;
  configs.push_back(golden_config(figure6_policies().front(), 0));
  SimulationConfig predictive = golden_config(figure6_policies().front(), 0);
  predictive.placement.kind = PlacementKind::kPredictive;
  configs.push_back(predictive);
  SimulationConfig drifting = golden_config(figure6_policies().front(), 0);
  drifting.drift.enabled = true;
  drifting.drift.period = hours(0.05);
  drifting.drift.step = 10;
  configs.push_back(drifting);
  SimulationConfig partial = golden_config(figure6_policies().front(), 0);
  partial.placement.kind = PlacementKind::kPartialPredictive;
  configs.push_back(partial);

  constexpr int kTrials = 2;
  const std::uint64_t master_seed = 42;
  SweepContext context;
  context.prepare(configs, kTrials, master_seed);

  // Deduplication actually happened: all four configs share one catalog per
  // trial seed; popularity is static-vs-drifting; placements are one per
  // (kind, popularity, trial seed) — even, predictive, drifting-even,
  // partial, times two trials.
  EXPECT_EQ(context.catalog_count(), static_cast<std::size_t>(kTrials));
  EXPECT_EQ(context.popularity_count(), 2u);
  EXPECT_EQ(context.placement_count(), 4u * kTrials);

  for (const SimulationConfig& base : configs) {
    for (int trial = 0; trial < kTrials; ++trial) {
      SimulationConfig config = base;
      config.seed = ExperimentRunner::derive_seed(master_seed, trial);
      SCOPED_TRACE(std::to_string(config.seed));
      const TrialResult plain = run_once(config);
      VodSimulation shared_world(config, &context);
      shared_world.run();
      ASSERT_GT(plain.arrivals, 0u);
      expect_bit_identical(plain, TrialResult::from(shared_world));
    }
  }

  // A config the context has never seen must still run (lookup miss →
  // local construction), bit-identically.
  SimulationConfig unseen = golden_config(figure6_policies().front(), 12345);
  VodSimulation fallback(unseen, &context);
  fallback.run();
  expect_bit_identical(run_once(unseen), TrialResult::from(fallback));
}

TEST(GoldenDeterminism, DistinctSeedsDiverge) {
  // Sanity check that the comparisons above are not vacuous: different
  // seeds must actually change the outcome.
  const PolicySpec policy = figure6_policies().front();
  const TrialResult a = run_once(golden_config(policy, 7));
  const TrialResult b = run_once(golden_config(policy, 8));
  EXPECT_NE(a.arrivals, b.arrivals);
}

// --- pinned hexfloat goldens ----------------------------------------------
// The tests above prove run-vs-run stability *within* one build; they cannot
// catch a change that perturbs every run the same way (a reordered FP
// accumulation, a comparator rewrite, an event retimed through a different
// code path). The table in determinism_goldens.inc pins the absolute output
// of a 29-config matrix — every figure-6 policy at two seeds, all five
// schedulers, and the feature subsystems (failure, replication,
// interactivity, drift, partial placement, heterogeneity) — as exact
// hexfloat renderings captured before the incremental-recompute work landed.
// Any bit of drift in any config fails the diff.
//
// To regenerate after an *intentional* output change, run this binary with
// VODSIM_UPDATE_GOLDENS=/path/to/determinism_goldens.inc and commit the
// rewritten table (the test still compares, so an update run on an
// unchanged build passes).

struct GoldenEntry {
  const char* label;
  const char* expected;
};

constexpr GoldenEntry kGoldenMatrix[] = {
#include "determinism_goldens.inc"
};

/// Renders every TrialResult field exactly: doubles as hexfloats ("%a" is
/// lossless — two doubles render equal iff they are the same bits, modulo
/// -0.0/+0.0 which cannot arise from these non-negative ratios), counters
/// in decimal.
std::string render_result(const TrialResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%a %a %a %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
                " %" PRIu64 " %" PRIu64 " %" PRIu64,
                r.utilization, r.rejection_ratio, r.migrations_per_arrival,
                r.arrivals, r.accepts, r.rejects, r.migration_steps, r.drops,
                r.underflow_events, r.continuity_violations);
  return buf;
}

/// The 29 pinned configurations, in table order. Labels are part of the
/// golden data: a reordering or a silently dropped config fails the match.
std::vector<std::pair<std::string, SimulationConfig>> golden_matrix() {
  std::vector<std::pair<std::string, SimulationConfig>> out;

  // 16 configs: the full figure-6 policy matrix at two seeds (EFTF).
  for (const std::uint64_t seed : {std::uint64_t{7}, std::uint64_t{9}}) {
    for (const PolicySpec& policy : figure6_policies()) {
      out.emplace_back(policy.label + "/seed" + std::to_string(seed),
                       golden_config(policy, seed));
    }
  }

  // 5 configs: every scheduler on the staged+migration policy (P4), which
  // exercises receive caps, staging buffers and migration interplay.
  for (const SchedulerKind kind :
       {SchedulerKind::kEftf, SchedulerKind::kContinuous,
        SchedulerKind::kProportional, SchedulerKind::kLftf,
        SchedulerKind::kIntermittent}) {
    SimulationConfig config = golden_config(figure6_policies()[3], 11);
    config.scheduler = kind;
    out.emplace_back("sched-" + to_string(kind) + "/seed11",
                     std::move(config));
  }

  // 8 configs: one per extension subsystem / config axis.
  {
    SimulationConfig config = golden_config(figure6_policies().front(), 11);
    config.failure.enabled = true;
    config.failure.mean_time_between_failures = hours(0.05);
    config.failure.mean_time_to_repair = hours(0.02);
    out.emplace_back("failure/seed11", std::move(config));
  }
  {
    SimulationConfig config = golden_config(figure6_policies()[2], 13);
    config.load_factor = 2.0;
    config.system.avg_copies = 1.0;
    config.replication.enabled = true;
    config.replication.rejection_threshold = 1;
    config.replication.window = 600.0;
    out.emplace_back("replication/seed13", std::move(config));
  }
  {
    SimulationConfig config = golden_config(figure6_policies()[2], 17);
    config.interactivity.enabled = true;
    config.interactivity.pauses_per_hour = 40.0;
    config.interactivity.mean_pause_duration = 30.0;
    out.emplace_back("interactivity/seed17", std::move(config));
  }
  {
    SimulationConfig config = golden_config(figure6_policies()[3], 17);
    config.scheduler = SchedulerKind::kIntermittent;
    config.interactivity.enabled = true;
    config.interactivity.pauses_per_hour = 40.0;
    config.interactivity.mean_pause_duration = 30.0;
    out.emplace_back("intermittent-interactivity/seed17", std::move(config));
  }
  {
    SimulationConfig config = golden_config(figure6_policies()[2], 19);
    config.drift.enabled = true;
    config.drift.period = hours(0.05);
    config.drift.step = 10;
    out.emplace_back("drift/seed19", std::move(config));
  }
  {
    SimulationConfig config = golden_config(figure6_policies()[2], 23);
    config.placement.kind = PlacementKind::kPartialPredictive;
    out.emplace_back("partial-predictive/seed23", std::move(config));
  }
  {
    SimulationConfig config = golden_config(figure6_policies()[6], 29);
    config.system.bandwidth_profile = {0.5, 0.75, 1.0, 1.25, 1.5};
    config.system.storage_profile = {1.5, 1.25, 1.0, 0.75, 0.5};
    out.emplace_back("heterogeneous/seed29", std::move(config));
  }
  {
    SimulationConfig config = golden_config(figure6_policies()[1], 31);
    config.scheduler = SchedulerKind::kProportional;
    config.load_factor = 1.5;
    out.emplace_back("proportional-overload/seed31", std::move(config));
  }

  return out;
}

TEST(GoldenDeterminism, MatrixMatchesPinnedHexfloatGoldens) {
  const auto matrix = golden_matrix();
  std::vector<std::string> rendered;
  rendered.reserve(matrix.size());
  for (const auto& [label, config] : matrix) {
    SCOPED_TRACE(label);
    rendered.push_back(render_result(run_once(config)));
  }

  if (const char* path = std::getenv("VODSIM_UPDATE_GOLDENS")) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot open " << path;
    out << "// Generated by determinism_test with VODSIM_UPDATE_GOLDENS.\n"
        << "// One entry per golden_matrix() config, same order. Doubles are\n"
        << "// hexfloats (printf %a): exact, locale-free, portable across\n"
        << "// correctly-rounded libms.\n";
    for (std::size_t i = 0; i < matrix.size(); ++i) {
      out << "{\"" << matrix[i].first << "\", \"" << rendered[i] << "\"},\n";
    }
    ASSERT_TRUE(out.good());
  }

  constexpr std::size_t kPinned =
      sizeof(kGoldenMatrix) / sizeof(kGoldenMatrix[0]);
  ASSERT_EQ(matrix.size(), kPinned)
      << "config matrix and golden table drifted apart";
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    SCOPED_TRACE(matrix[i].first);
    EXPECT_STREQ(kGoldenMatrix[i].label, matrix[i].first.c_str());
    EXPECT_STREQ(kGoldenMatrix[i].expected, rendered[i].c_str());
  }
}

TEST(GoldenDeterminism, ObserversMatchPinnedGoldensPerScheduler) {
  // One config per scheduler, re-run with the auditor and the tracer+probes
  // attached: the observers must reproduce the *pinned* output, not merely
  // agree with a plain run from the same build.
  const auto matrix = golden_matrix();
  for (std::size_t i = 16; i < 21; ++i) {  // the five sched-*/seed11 rows
    ASSERT_LT(i, sizeof(kGoldenMatrix) / sizeof(kGoldenMatrix[0]));
    SCOPED_TRACE(matrix[i].first);

    SimulationConfig paranoid = matrix[i].second;
    paranoid.paranoid = true;
    EXPECT_STREQ(kGoldenMatrix[i].expected,
                 render_result(run_once(paranoid)).c_str());

    SimulationConfig traced = matrix[i].second;
    traced.trace.enabled = true;
    traced.probe.enabled = true;
    traced.probe.period = 30.0;
    EXPECT_STREQ(kGoldenMatrix[i].expected,
                 render_result(run_once(traced)).c_str());
  }
}

TEST(GoldenDeterminism, ShardsOneMatchesPinnedHexfloatGoldens) {
  // shards = 1 is not "sharded mode with one shard": it takes the literal
  // pre-sharding code path (single event queue, root metrics, no shard
  // structures built), so the full golden matrix must re-render bit-for-bit
  // with the field set explicitly. Guards against the single-shard path
  // ever being rerouted through the coordinator/window machinery.
  const auto matrix = golden_matrix();
  constexpr std::size_t kPinned =
      sizeof(kGoldenMatrix) / sizeof(kGoldenMatrix[0]);
  ASSERT_EQ(matrix.size(), kPinned);
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    SCOPED_TRACE(matrix[i].first);
    SimulationConfig config = matrix[i].second;
    config.shards = 1;
    config.shard_threads = 4;  // must be inert when shards == 1
    EXPECT_STREQ(kGoldenMatrix[i].expected,
                 render_result(run_once(config)).c_str());
  }
}

}  // namespace
}  // namespace vodsim
