// Tests for admission control: assignment policies, the replica directory,
// dynamic request migration plans, and the controller's decision logic.

#include <gtest/gtest.h>

#include <memory>

#include "vodsim/admission/assignment.h"
#include "vodsim/admission/controller.h"
#include "vodsim/admission/migration.h"

namespace vodsim {
namespace {

constexpr Mbps kView = 3.0;

Video make_video(VideoId id, Seconds duration = 600.0) {
  Video video;
  video.id = id;
  video.duration = duration;
  video.view_bandwidth = kView;
  return video;
}

/// A small world builder: servers with chosen capacities, replicas, and
/// attached streaming requests.
class World {
 public:
  explicit World(std::vector<Mbps> capacities) {
    for (std::size_t i = 0; i < capacities.size(); ++i) {
      servers_.emplace_back(static_cast<ServerId>(i), capacities[i], 1e12);
    }
  }

  void replicate(VideoId video, std::initializer_list<ServerId> holders) {
    while (videos_.size() <= static_cast<std::size_t>(video)) {
      videos_.push_back(make_video(static_cast<VideoId>(videos_.size())));
    }
    for (ServerId s : holders) {
      ASSERT_TRUE(servers_[static_cast<std::size_t>(s)].add_replica(
          videos_[static_cast<std::size_t>(video)]));
    }
  }

  Request& stream(VideoId video, ServerId server, int hops = 0,
                  Megabits buffer_level = 0.0, Megabits buffer_cap = 1e9) {
    auto request = std::make_unique<Request>(
        next_id_++, videos_[static_cast<std::size_t>(video)], 0.0,
        ClientProfile{buffer_cap, 1e9});
    Request& ref = *request;
    ref.begin_streaming(0.0, server);
    if (buffer_level > 0.0) {
      // Pump the buffer up with a fast prefix.
      const Seconds dt = 1.0;
      ref.set_allocation(0.0, buffer_level + kView);
      ref.advance(dt);
      ref.set_allocation(dt, 0.0);
    }
    for (int h = 0; h < hops; ++h) {
      ref.begin_migration(ref.last_update());
      ref.complete_migration(ref.last_update(), server);
    }
    servers_[static_cast<std::size_t>(server)].attach(ref);
    requests_.push_back(std::move(request));
    return ref;
  }

  ReplicaDirectory directory() const {
    return ReplicaDirectory(videos_.size(), servers_);
  }

  std::vector<Server>& servers() { return servers_; }

 private:
  RequestId next_id_ = 1;
  std::vector<Server> servers_;
  std::vector<Video> videos_;
  std::vector<std::unique_ptr<Request>> requests_;
};

// --------------------------------------------------------------- directory

TEST(ReplicaDirectory, MapsVideosToHolders) {
  World world({100.0, 100.0, 100.0});
  world.replicate(0, {0, 2});
  world.replicate(1, {1});
  const ReplicaDirectory directory = world.directory();
  EXPECT_EQ(directory.holders(0), (std::vector<ServerId>{0, 2}));
  EXPECT_EQ(directory.holders(1), (std::vector<ServerId>{1}));
  EXPECT_EQ(directory.orphan_count(), 0u);
}

TEST(ReplicaDirectory, CountsOrphans) {
  World world({100.0});
  world.replicate(0, {0});
  world.replicate(1, {});
  const ReplicaDirectory directory = world.directory();
  EXPECT_EQ(directory.orphan_count(), 1u);
}

// --------------------------------------------------------------- assignment

TEST(Assignment, LeastLoadedPicksFewestActive) {
  World world({100.0, 100.0, 100.0});
  world.replicate(0, {0, 1, 2});
  world.stream(0, 0);
  world.stream(0, 0);
  world.stream(0, 1);
  Rng rng(1);
  const ServerId chosen = pick_server(AssignmentKind::kLeastLoaded, {0, 1, 2},
                                      world.servers(), rng);
  EXPECT_EQ(chosen, 2);
}

TEST(Assignment, LeastLoadedTieBreaksByLowestId) {
  World world({100.0, 100.0});
  world.replicate(0, {0, 1});
  Rng rng(1);
  EXPECT_EQ(pick_server(AssignmentKind::kLeastLoaded, {1, 0}, world.servers(), rng), 0);
}

TEST(Assignment, MostLoadedPicksBusiest) {
  World world({100.0, 100.0});
  world.replicate(0, {0, 1});
  world.stream(0, 1);
  Rng rng(1);
  EXPECT_EQ(pick_server(AssignmentKind::kMostLoaded, {0, 1}, world.servers(), rng), 1);
}

TEST(Assignment, FirstFitPicksLowestId) {
  World world({100.0, 100.0, 100.0});
  Rng rng(1);
  EXPECT_EQ(pick_server(AssignmentKind::kFirstFit, {2, 1}, world.servers(), rng), 1);
}

TEST(Assignment, RandomStaysInCandidates) {
  World world({100.0, 100.0, 100.0});
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const ServerId s =
        pick_server(AssignmentKind::kRandom, {0, 2}, world.servers(), rng);
    EXPECT_TRUE(s == 0 || s == 2);
  }
}

TEST(Assignment, EmptyCandidatesGivesNoServer) {
  World world({100.0});
  Rng rng(1);
  EXPECT_EQ(pick_server(AssignmentKind::kLeastLoaded, {}, world.servers(), rng),
            kNoServer);
}

TEST(Assignment, NameRoundTrip) {
  for (AssignmentKind kind : {AssignmentKind::kLeastLoaded, AssignmentKind::kRandom,
                              AssignmentKind::kFirstFit, AssignmentKind::kMostLoaded}) {
    EXPECT_EQ(assignment_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(assignment_kind_from_string("bogus"), std::invalid_argument);
}

// --------------------------------------------------------------- migration

MigrationConfig migration_on(int chain = 1, int hops = 1) {
  MigrationConfig config;
  config.enabled = true;
  config.max_chain_length = chain;
  config.max_hops_per_request = hops;
  return config;
}

TEST(Migration, FindsSingleHopChain) {
  // Server 0 holds videos 0 and 1, capacity for exactly 1 stream and is
  // full with a request for video 1; server 1 also holds video 1 with room.
  // An arrival for video 0 (only on server 0) should trigger: migrate the
  // video-1 stream 0 -> 1, admit on 0.
  World world({kView, kView});
  world.replicate(0, {0});
  world.replicate(1, {0, 1});
  Request& victim = world.stream(1, 0);

  const ReplicaDirectory directory = world.directory();
  const auto plan = find_migration_plan(0, kView, migration_on(), world.servers(),
                                        directory.all());
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->admit_on, 0);
  ASSERT_EQ(plan->steps.size(), 1u);
  EXPECT_EQ(plan->steps[0].request, &victim);
  EXPECT_EQ(plan->steps[0].from, 0);
  EXPECT_EQ(plan->steps[0].to, 1);
}

TEST(Migration, DisabledFindsNothing) {
  World world({kView, kView});
  world.replicate(0, {0});
  world.replicate(1, {0, 1});
  world.stream(1, 0);
  MigrationConfig off;
  const ReplicaDirectory directory = world.directory();
  EXPECT_FALSE(find_migration_plan(0, kView, off, world.servers(), directory.all())
                   .has_value());
}

TEST(Migration, RespectsHopsLimit) {
  World world({kView, kView});
  world.replicate(0, {0});
  world.replicate(1, {0, 1});
  world.stream(1, 0, /*hops=*/1);  // already migrated once
  const ReplicaDirectory directory = world.directory();
  EXPECT_FALSE(find_migration_plan(0, kView, migration_on(1, 1), world.servers(),
                                   directory.all())
                   .has_value());
  // Unlimited hops (-1) allows it.
  EXPECT_TRUE(find_migration_plan(0, kView, migration_on(1, -1), world.servers(),
                                  directory.all())
                  .has_value());
}

TEST(Migration, VictimNeedsAnotherHolder) {
  // The only active stream's video exists nowhere else: no plan.
  World world({kView, kView});
  world.replicate(0, {0});
  world.replicate(1, {0});  // video 1 only on server 0
  world.stream(1, 0);
  const ReplicaDirectory directory = world.directory();
  EXPECT_FALSE(find_migration_plan(0, kView, migration_on(), world.servers(),
                                   directory.all())
                   .has_value());
}

TEST(Migration, TargetMustHaveRoom) {
  World world({kView, kView});
  world.replicate(0, {0});
  world.replicate(1, {0, 1});
  world.stream(1, 0);
  world.stream(1, 1);  // target full too
  const ReplicaDirectory directory = world.directory();
  EXPECT_FALSE(find_migration_plan(0, kView, migration_on(1), world.servers(),
                                   directory.all())
                   .has_value());
}

TEST(Migration, ChainLengthTwoFreesTransitively) {
  // s0 full with video-1 stream (video 1 also on s1).
  // s1 full with video-2 stream (video 2 also on s2). s2 empty.
  // Chain: video-2 stream s1->s2, then video-1 stream s0->s1, admit on s0.
  World world({kView, kView, kView});
  world.replicate(0, {0});
  world.replicate(1, {0, 1});
  world.replicate(2, {1, 2});
  Request& first = world.stream(1, 0);
  Request& second = world.stream(2, 1);
  const ReplicaDirectory directory = world.directory();

  EXPECT_FALSE(find_migration_plan(0, kView, migration_on(1, -1), world.servers(),
                                   directory.all())
                   .has_value());

  const auto plan = find_migration_plan(0, kView, migration_on(2, -1),
                                        world.servers(), directory.all());
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->admit_on, 0);
  ASSERT_EQ(plan->steps.size(), 2u);
  // Execution order: deepest first.
  EXPECT_EQ(plan->steps[0].request, &second);
  EXPECT_EQ(plan->steps[0].from, 1);
  EXPECT_EQ(plan->steps[0].to, 2);
  EXPECT_EQ(plan->steps[1].request, &first);
  EXPECT_EQ(plan->steps[1].from, 0);
  EXPECT_EQ(plan->steps[1].to, 1);
}

TEST(Migration, CyclicSearchNeverMovesARequestTwice) {
  // Regression: a deep search can revisit the server it is freeing (s0 ->
  // s1 -> s0). The revisit must not select the same victim again; here the
  // only "chain" would move r1 twice, so the search must fail cleanly.
  World world({kView, kView});
  world.replicate(0, {0});
  world.replicate(1, {0, 1});
  world.replicate(2, {1, 0});
  Request& r1 = world.stream(1, 0);
  Request& r2 = world.stream(2, 1);
  (void)r1;
  (void)r2;
  const ReplicaDirectory directory = world.directory();
  const auto plan = find_migration_plan(0, kView, migration_on(3, -1),
                                        world.servers(), directory.all());
  EXPECT_FALSE(plan.has_value());
}

TEST(Migration, SearchBudgetBoundsWork) {
  // With a zero budget nothing can be examined, so even a trivially
  // feasible migration is not found — the knob really is a hard bound.
  World world({kView, kView});
  world.replicate(0, {0});
  world.replicate(1, {0, 1});
  world.stream(1, 0);
  const ReplicaDirectory directory = world.directory();
  MigrationConfig config = migration_on();
  config.max_search_nodes = 0;
  EXPECT_FALSE(
      find_migration_plan(0, kView, config, world.servers(), directory.all())
          .has_value());
  config.max_search_nodes = 1024;
  EXPECT_TRUE(
      find_migration_plan(0, kView, config, world.servers(), directory.all())
          .has_value());
}

TEST(Migration, SwitchLatencyRequiresBufferCover) {
  World world({kView, kView});
  world.replicate(0, {0});
  world.replicate(1, {0, 1});
  world.stream(1, 0, 0, /*buffer_level=*/kView * 2.0);  // 2 s of cover
  const ReplicaDirectory directory = world.directory();

  MigrationConfig config = migration_on();
  config.switch_latency = 5.0;  // needs 5 s of cover: ineligible
  EXPECT_FALSE(
      find_migration_plan(0, kView, config, world.servers(), directory.all())
          .has_value());
  config.switch_latency = 1.0;  // 1 s: eligible
  EXPECT_TRUE(
      find_migration_plan(0, kView, config, world.servers(), directory.all())
          .has_value());
}

TEST(Migration, VictimStrategyOrdersCandidates) {
  // Two victims on s0 with different remaining; both can go to s1.
  World world({2.0 * kView, 2.0 * kView});
  world.replicate(0, {0});
  world.replicate(1, {0, 1});
  world.replicate(2, {0, 1});
  Request& long_one = world.stream(1, 0);  // 600 s video, full remaining
  Request& short_one = world.stream(2, 0);
  short_one.set_allocation(0.0, 30.0);
  short_one.advance(50.0);  // mostly transmitted
  short_one.set_allocation(50.0, 0.0);

  const ReplicaDirectory directory = world.directory();
  // Need to free one slot on s0 for an arrival of video 0 (only on s0, s0
  // has 2 slots both busy).
  MigrationConfig config = migration_on();
  config.victim = VictimStrategy::kLeastRemaining;
  auto plan = find_migration_plan(0, kView, config, world.servers(), directory.all());
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->steps[0].request, &short_one);

  config.victim = VictimStrategy::kMostRemaining;
  plan = find_migration_plan(0, kView, config, world.servers(), directory.all());
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->steps[0].request, &long_one);
}

TEST(Migration, VictimStrategyNameRoundTrip) {
  for (VictimStrategy strategy :
       {VictimStrategy::kFirstFit, VictimStrategy::kLeastRemaining,
        VictimStrategy::kMostRemaining, VictimStrategy::kMostBuffered}) {
    EXPECT_EQ(victim_strategy_from_string(to_string(strategy)), strategy);
  }
  EXPECT_THROW(victim_strategy_from_string("bogus"), std::invalid_argument);
}

TEST(Migration, UnavailableTargetSkipped) {
  World world({kView, kView});
  world.replicate(0, {0});
  world.replicate(1, {0, 1});
  world.stream(1, 0);
  world.servers()[1].set_available(false);
  const ReplicaDirectory directory = world.directory();
  EXPECT_FALSE(find_migration_plan(0, kView, migration_on(), world.servers(),
                                   directory.all())
                   .has_value());
}

// --------------------------------------------------------------- controller

TEST(Controller, DirectAssignmentPreferred) {
  World world({100.0, 100.0});
  world.replicate(0, {0, 1});
  world.stream(0, 0);
  const ReplicaDirectory directory = world.directory();
  AdmissionConfig config;
  AdmissionController controller(config, directory);
  Rng rng(1);
  const auto decision = controller.decide(0.0, 0, kView, world.servers(), rng);
  EXPECT_TRUE(decision.accepted);
  EXPECT_EQ(decision.server, 1);  // least loaded
  EXPECT_FALSE(decision.used_migration());
}

TEST(Controller, RejectsWhenFullWithoutMigration) {
  World world({kView});
  world.replicate(0, {0});
  world.stream(0, 0);
  const ReplicaDirectory directory = world.directory();
  AdmissionController controller(AdmissionConfig{}, directory);
  Rng rng(1);
  const auto decision = controller.decide(0.0, 0, kView, world.servers(), rng);
  EXPECT_FALSE(decision.accepted);
  EXPECT_EQ(decision.server, kNoServer);
}

TEST(Controller, UsesMigrationWhenEnabled) {
  World world({kView, kView});
  world.replicate(0, {0});
  world.replicate(1, {0, 1});
  world.stream(1, 0);
  const ReplicaDirectory directory = world.directory();
  AdmissionConfig config;
  config.migration = migration_on();
  AdmissionController controller(config, directory);
  Rng rng(1);
  const auto decision = controller.decide(0.0, 0, kView, world.servers(), rng);
  EXPECT_TRUE(decision.accepted);
  EXPECT_TRUE(decision.used_migration());
  EXPECT_EQ(decision.server, 0);
  EXPECT_EQ(decision.migrations.size(), 1u);
}

TEST(Controller, RejectsVideoWithNoReplica) {
  World world({100.0});
  world.replicate(0, {0});
  world.replicate(1, {});  // orphan
  const ReplicaDirectory directory = world.directory();
  AdmissionController controller(AdmissionConfig{}, directory);
  Rng rng(1);
  EXPECT_FALSE(controller.decide(0.0, 1, kView, world.servers(), rng).accepted);
}

}  // namespace
}  // namespace vodsim
