// End-to-end simulation tests: determinism, conservation and continuity
// invariants (parameterized sweeps), analytical cross-validation against
// Erlang-B, and the paper's qualitative dominance relations.

#include <gtest/gtest.h>

#include <cmath>

#include "vodsim/analysis/svbr.h"
#include "vodsim/engine/vod_simulation.h"
#include "vodsim/stats/accumulator.h"
#include "vodsim/workload/request_generator.h"
#include "vodsim/workload/trace.h"

namespace vodsim {
namespace {

/// Fast config: the paper's small system at a short horizon.
SimulationConfig fast_config(double theta = 0.271, std::uint64_t seed = 1) {
  SimulationConfig config;
  config.system = SystemConfig::small_system();
  config.zipf_theta = theta;
  config.duration = hours(20);
  config.warmup = hours(2);
  config.seed = seed;
  return config;
}

double run_utilization(const SimulationConfig& config) {
  VodSimulation simulation(config);
  return simulation.run().utilization();
}

// --------------------------------------------------------------- determinism

TEST(Simulation, DeterministicFromSeed) {
  const SimulationConfig config = fast_config();
  VodSimulation a(config);
  VodSimulation b(config);
  a.run();
  b.run();
  EXPECT_DOUBLE_EQ(a.metrics().utilization(), b.metrics().utilization());
  EXPECT_EQ(a.metrics().arrivals(), b.metrics().arrivals());
  EXPECT_EQ(a.metrics().rejects(), b.metrics().rejects());
  EXPECT_EQ(a.metrics().migration_steps(), b.metrics().migration_steps());
  EXPECT_EQ(a.simulator().executed_count(), b.simulator().executed_count());
}

TEST(Simulation, DifferentSeedsDiffer) {
  SimulationConfig config = fast_config();
  const double u1 = run_utilization(config);
  config.seed = 2;
  const double u2 = run_utilization(config);
  EXPECT_NE(u1, u2);
}

// --------------------------------------------------------------- invariants

struct InvariantCase {
  double theta;
  double staging;
  bool migration;
  std::uint64_t seed;
};

class SimulationInvariants : public ::testing::TestWithParam<InvariantCase> {};

TEST_P(SimulationInvariants, HoldEndToEnd) {
  const InvariantCase param = GetParam();
  SimulationConfig config = fast_config(param.theta, param.seed);
  config.client.staging_fraction = param.staging;
  config.client.receive_bandwidth = 30.0;
  config.admission.migration.enabled = param.migration;
  config.admission.migration.max_hops_per_request = 1;

  VodSimulation simulation(config);
  const Metrics& metrics = simulation.run();

  // Utilization is a fraction of achievable bandwidth.
  EXPECT_GE(metrics.utilization(), 0.0);
  EXPECT_LE(metrics.utilization(), 1.0 + 1e-9);

  // Every windowed arrival was either accepted or rejected.
  EXPECT_EQ(metrics.accepts() + metrics.rejects(), metrics.arrivals());

  // Minimum-flow + instantaneous switching: playback never starves.
  EXPECT_EQ(simulation.continuity_violations(), 0u);
  EXPECT_EQ(metrics.underflow_events(), 0u);

  // Per-request audit.
  const Seconds horizon = config.duration;
  for (const Request& request : simulation.requests()) {
    // Hops respect the configured limit.
    if (param.migration) {
      EXPECT_LE(request.hops(), 1);
    } else {
      EXPECT_EQ(request.hops(), 0);
    }
    // Buffers stay within capacity.
    EXPECT_GE(request.buffer_level(), 0.0);
    EXPECT_LE(request.buffer_level(),
              request.buffer_capacity() + StagingBuffer::kLevelTolerance);
    // Completed requests received all of their data (bit conservation);
    // only horizon truncation leaves data in flight.
    if (request.state() == RequestState::kDone &&
        request.playback_end() <= horizon) {
      EXPECT_LE(request.remaining(), Request::kRemainingTolerance)
          << "request " << request.id() << " finished playback without data";
    }
  }

  // Server accounting is consistent at the end of the run.
  for (const Server& server : simulation.servers()) {
    double committed = 0.0;
    for (const Request* request : server.active_requests()) {
      EXPECT_EQ(request->state(), RequestState::kStreaming);
      EXPECT_EQ(request->server(), server.id());
      committed += request->view_bandwidth();
    }
    EXPECT_NEAR(server.committed_bandwidth(), committed, 1e-6);
    EXPECT_LE(committed, server.bandwidth() + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimulationInvariants,
    ::testing::Values(InvariantCase{1.0, 0.0, false, 11},
                      InvariantCase{1.0, 0.2, true, 12},
                      InvariantCase{0.271, 0.0, false, 13},
                      InvariantCase{0.271, 0.02, false, 14},
                      InvariantCase{0.271, 0.2, true, 15},
                      InvariantCase{0.0, 0.2, false, 16},
                      InvariantCase{0.0, 1.0, true, 17},
                      InvariantCase{-0.5, 0.2, true, 18},
                      InvariantCase{-1.5, 0.0, true, 19},
                      InvariantCase{-1.5, 1.0, false, 20}),
    [](const ::testing::TestParamInfo<InvariantCase>& info) {
      const InvariantCase& param = info.param;
      std::string name = "theta";
      name += param.theta < 0 ? "m" : "";
      name += std::to_string(static_cast<int>(std::fabs(param.theta) * 100));
      name += "_stage" + std::to_string(static_cast<int>(param.staging * 100));
      name += param.migration ? "_mig" : "_nomig";
      name += "_s" + std::to_string(param.seed);
      return name;
    });

TEST(Simulation, OccupancyConsistentWithUtilization) {
  // Without workahead every active stream transmits at exactly b_view, so
  // utilization == mean_active * b_view / server_bandwidth.
  SimulationConfig config = fast_config(1.0, 41);
  VodSimulation simulation(config);
  const Metrics& metrics = simulation.run();
  const auto occupancy = simulation.occupancy();
  const double implied = occupancy.mean_active * config.system.view_bandwidth /
                         config.system.server_bandwidth;
  EXPECT_NEAR(implied, metrics.utilization(), 0.01);
  EXPECT_GE(occupancy.max_server_mean, occupancy.min_server_mean);
  // Uniform demand + least-loaded assignment: servers stay well balanced.
  EXPECT_LT(occupancy.imbalance, 0.3);
}

// ------------------------------------------------- analytical cross-check

TEST(Simulation, SingleServerMatchesErlangB) {
  // One server, SVBR = 10, no staging, no migration, every video on the
  // server: an M/G/c/c loss system. The paper validates its simulator the
  // same way (full version, [5]).
  SimulationConfig config;
  config.system.name = "erlang";
  config.system.num_servers = 1;
  config.system.server_bandwidth = 30.0;  // c = 10 streams
  config.system.server_storage = gigabytes(1000);
  config.system.num_videos = 20;
  config.system.avg_copies = 1.0;
  config.system.video_min_duration = minutes(10);
  config.system.video_max_duration = minutes(30);
  config.zipf_theta = 1.0;
  config.duration = hours(400);
  config.warmup = hours(20);

  Accumulator observed;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    config.seed = seed;
    observed.add(run_utilization(config));
  }
  const double expected = analytical_utilization(10, 1.0);
  EXPECT_NEAR(observed.mean(), expected, 0.02);
}

TEST(Simulation, HalfLoadIsHalfUtilization) {
  SimulationConfig config = fast_config(1.0);
  config.load_factor = 0.5;
  const double u = run_utilization(config);
  EXPECT_NEAR(u, 0.5, 0.05);
}

TEST(Simulation, OverloadRejectsButSaturates) {
  SimulationConfig config = fast_config(1.0);
  config.load_factor = 1.5;
  config.client.staging_fraction = 0.2;
  config.client.receive_bandwidth = 30.0;
  VodSimulation simulation(config);
  const Metrics& metrics = simulation.run();
  EXPECT_GT(metrics.utilization(), 0.9);
  EXPECT_LE(metrics.utilization(), 1.0 + 1e-9);
  EXPECT_GT(metrics.rejection_ratio(), 0.2);
}

// ------------------------------------------------- qualitative dominance

TEST(Simulation, ZeroStagingEqualsContinuousScheduler) {
  // With no client buffers EFTF degenerates to continuous transmission —
  // bit-for-bit, not just statistically.
  SimulationConfig eftf = fast_config(0.271, 3);
  eftf.client.staging_fraction = 0.0;
  SimulationConfig continuous = eftf;
  continuous.scheduler = SchedulerKind::kContinuous;
  EXPECT_DOUBLE_EQ(run_utilization(eftf), run_utilization(continuous));
}

TEST(Simulation, MigrationNeverHurts) {
  for (std::uint64_t seed : {21, 22, 23}) {
    SimulationConfig off = fast_config(0.271, seed);
    SimulationConfig on = off;
    on.admission.migration.enabled = true;
    on.admission.migration.max_hops_per_request = 1;
    EXPECT_GE(run_utilization(on), run_utilization(off) - 0.01)
        << "seed " << seed;
  }
}

TEST(Simulation, StagingImprovesSmallSystem) {
  SimulationConfig none = fast_config(0.5, 31);
  none.client.receive_bandwidth = 30.0;
  SimulationConfig staged = none;
  staged.client.staging_fraction = 0.2;
  EXPECT_GT(run_utilization(staged), run_utilization(none) + 0.01);
}

TEST(Simulation, MoreStagingNeverHurtsMuch) {
  SimulationConfig base = fast_config(0.5, 32);
  base.client.receive_bandwidth = 30.0;
  double previous = 0.0;
  for (double fraction : {0.0, 0.02, 0.2, 1.0}) {
    base.client.staging_fraction = fraction;
    const double u = run_utilization(base);
    EXPECT_GE(u, previous - 0.01) << "fraction " << fraction;
    previous = u;
  }
}

TEST(Simulation, EftfBeatsLftf) {
  SimulationConfig eftf = fast_config(0.5, 33);
  eftf.client.staging_fraction = 0.2;
  eftf.client.receive_bandwidth = 30.0;
  SimulationConfig lftf = eftf;
  lftf.scheduler = SchedulerKind::kLftf;
  EXPECT_GE(run_utilization(eftf), run_utilization(lftf) - 0.005);
}

TEST(Simulation, PredictiveBeatsEvenUnderExtremeSkew) {
  SimulationConfig even = fast_config(-1.5, 34);
  SimulationConfig predictive = even;
  predictive.placement.kind = PlacementKind::kPredictive;
  EXPECT_GT(run_utilization(predictive), run_utilization(even) + 0.05);
}

TEST(Simulation, UnlimitedHopsAtLeastAsGoodAsOne) {
  SimulationConfig one = fast_config(0.0, 35);
  one.admission.migration.enabled = true;
  one.admission.migration.max_hops_per_request = 1;
  SimulationConfig unlimited = one;
  unlimited.admission.migration.max_hops_per_request = -1;
  EXPECT_GE(run_utilization(unlimited), run_utilization(one) - 0.01);
}

TEST(Simulation, DeepMigrationChainsNeverOvercommit) {
  // Regression: chain >= 2 search may revisit a server (migration cycles);
  // a request must never be planned to move twice, or a server ends up
  // over-committed and utilization exceeds 1.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    SimulationConfig config = fast_config(0.0, seed);
    config.client.staging_fraction = 0.2;
    config.client.receive_bandwidth = 30.0;
    config.admission.migration.enabled = true;
    config.admission.migration.max_chain_length = 3;
    config.admission.migration.max_hops_per_request = 1;
    VodSimulation simulation(config);
    const Metrics& metrics = simulation.run();
    EXPECT_LE(metrics.utilization(), 1.0 + 1e-9) << "seed " << seed;
    for (const Server& server : simulation.servers()) {
      EXPECT_LE(server.committed_bandwidth(), server.bandwidth() + 1e-6);
    }
  }
}

// ------------------------------------------------- switch latency

TEST(Simulation, SwitchLatencyWithCoverIsSafe) {
  SimulationConfig config = fast_config(0.271, 36);
  config.client.staging_fraction = 0.2;
  config.client.receive_bandwidth = 30.0;
  config.admission.migration.enabled = true;
  config.admission.migration.switch_latency = 5.0;
  VodSimulation simulation(config);
  const Metrics& metrics = simulation.run();
  // Victims are only chosen when their buffer covers the pause, so no
  // continuity violations even with a 5-second outage per migration.
  EXPECT_EQ(simulation.continuity_violations(), 0u);
  EXPECT_GT(metrics.migration_steps(), 0u);
}

// ------------------------------------------------- failure injection

TEST(Simulation, FailuresDropStreamsWithoutRecovery) {
  SimulationConfig config = fast_config(0.5, 37);
  config.failure.enabled = true;
  config.failure.mean_time_between_failures = hours(10);
  config.failure.mean_time_to_repair = hours(1);
  config.failure.recover_via_migration = false;
  VodSimulation simulation(config);
  const Metrics& metrics = simulation.run();
  EXPECT_GT(metrics.drops(), 0u);
}

TEST(Simulation, MigrationRecoveryReducesDrops) {
  SimulationConfig config = fast_config(0.5, 38);
  config.client.staging_fraction = 0.2;
  config.client.receive_bandwidth = 30.0;
  config.failure.enabled = true;
  config.failure.mean_time_between_failures = hours(10);
  config.failure.mean_time_to_repair = hours(1);

  config.failure.recover_via_migration = false;
  VodSimulation no_recovery(config);
  const std::uint64_t drops_without = no_recovery.run().drops();

  config.failure.recover_via_migration = true;
  VodSimulation with_recovery(config);
  const std::uint64_t drops_with = with_recovery.run().drops();

  EXPECT_LT(drops_with, drops_without);
}

// ------------------------------------------------- heterogeneity & drift

TEST(Simulation, HeterogeneousProfilesRun) {
  SimulationConfig config = fast_config(0.271, 39);
  config.system.bandwidth_profile = {0.5, 0.75, 1.0, 1.25, 1.5};
  config.system.storage_profile = {1.5, 1.25, 1.0, 0.75, 0.5};
  config.admission.migration.enabled = true;
  VodSimulation simulation(config);
  const Metrics& metrics = simulation.run();
  EXPECT_GT(metrics.utilization(), 0.5);
  EXPECT_EQ(simulation.continuity_violations(), 0u);
}

TEST(Simulation, DriftRunsAndEvenPlacementIsOblivious) {
  SimulationConfig config = fast_config(0.0, 40);
  config.drift.enabled = true;
  config.drift.period = hours(4);
  config.drift.step = 30;
  config.admission.migration.enabled = true;
  config.client.staging_fraction = 0.2;
  config.client.receive_bandwidth = 30.0;

  const double with_drift = run_utilization(config);
  config.drift.enabled = false;
  const double without_drift = run_utilization(config);
  // Even placement does not care which titles are hot — drift barely moves
  // the needle.
  EXPECT_NEAR(with_drift, without_drift, 0.05);
}

// ------------------------------------------------- trace replay

TEST(Simulation, TraceReplayIsDeterministic) {
  StaticZipfPopularity popularity(300, 0.271);
  SimulationConfig config = fast_config();
  RequestGenerator generator(PoissonProcess(config.arrival_rate()), popularity, 99);
  const RequestTrace trace = RequestTrace::record_until(generator, config.duration);

  VodSimulation a(config, trace);
  VodSimulation b(config, trace);
  a.run();
  b.run();
  EXPECT_DOUBLE_EQ(a.metrics().utilization(), b.metrics().utilization());
  EXPECT_EQ(a.metrics().arrivals(), b.metrics().arrivals());
}

TEST(Simulation, TraceReplayPairsPolicies) {
  StaticZipfPopularity popularity(300, 0.271);
  SimulationConfig config = fast_config();
  RequestGenerator generator(PoissonProcess(config.arrival_rate()), popularity, 98);
  const RequestTrace trace = RequestTrace::record_until(generator, config.duration);

  VodSimulation plain(config, trace);
  const std::uint64_t arrivals_plain = plain.run().arrivals();

  SimulationConfig with_migration = config;
  with_migration.admission.migration.enabled = true;
  VodSimulation migrated(with_migration, trace);
  const std::uint64_t arrivals_migrated = migrated.run().arrivals();

  // Identical arrival streams: the policies see exactly the same demand.
  EXPECT_EQ(arrivals_plain, arrivals_migrated);
}

}  // namespace
}  // namespace vodsim
