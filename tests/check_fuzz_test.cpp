// Bounded fuzzing under ctest: the pathology corpus plus a fixed batch of
// random scenarios, every one run through the engine with the invariant
// auditor attached and — where supported — diffed against the reference
// oracle. The seed is pinned so the batch is reproducible; use the
// standalone `vodsim_fuzz` tool for open-ended exploration.

#include <gtest/gtest.h>

#include <cstdlib>

#include "vodsim/check/fuzzer.h"
#include "vodsim/util/rng.h"

namespace vodsim {
namespace {

TEST(ScenarioFuzz, CorpusAndRandomBatchPass) {
  int oracle_checked = 0;
  int fast_checked = 0;
  int shard_checked = 0;

  for (const SimulationConfig& config : pathology_corpus()) {
    const FuzzResult result = run_scenario(config);
    if (result.oracle_checked) ++oracle_checked;
    if (result.fast_checked) ++fast_checked;
    if (result.shard_checked) ++shard_checked;
    ASSERT_TRUE(result.passed)
        << "corpus seed=" << config.seed << ": " << result.failure
        << "\n"
        << to_gtest_case(shrink_scenario(config), "ShrunkCorpusReproducer");
  }

  const int corpus_size = static_cast<int>(pathology_corpus().size());

  constexpr int kScenarios = 250;
  Rng rng(42);
  for (int i = 0; i < kScenarios; ++i) {
    const SimulationConfig config = random_scenario(rng);
    const FuzzResult result = run_scenario(config);
    if (result.oracle_checked) ++oracle_checked;
    if (result.fast_checked) ++fast_checked;
    if (result.shard_checked) ++shard_checked;
    ASSERT_TRUE(result.passed)
        << "scenario " << i << " seed=" << config.seed << ": " << result.failure
        << "\n"
        << to_gtest_case(shrink_scenario(config), "ShrunkReproducer");
  }

  // The oracle's exclusions (interactivity, buffer-aware admission, retry/
  // repair/brownout fault extensions, and failure-domain topology) must
  // not hollow out the differential side of the batch: a solid plurality
  // of scenarios stays within its scope. (Every scenario still goes
  // through the fast/exact and sharded/single differentials below.)
  EXPECT_GE(oracle_checked, 2 * kScenarios / 5);

  // The fast/exact and sharded/single differentials have no exclusions:
  // every passing scenario must have been re-run in fast_math mode AND on
  // the sharded engine, and diffed against the single-queue baseline.
  EXPECT_EQ(fast_checked, corpus_size + kScenarios);
  EXPECT_EQ(shard_checked, corpus_size + kScenarios);
}

// Chaos configs (crashes + brownouts + retry + repair + correlated groups)
// go through the same dual-mode differential: the batched kernel must agree
// with the exact engine through shed/drop/readmission churn, not just
// steady-state streaming.
TEST(ScenarioFuzz, ChaosBatchPassesBothModes) {
  constexpr int kScenarios = 25;
  Rng rng(777);
  for (int i = 0; i < kScenarios; ++i) {
    const SimulationConfig config = random_fault_scenario(rng);
    const FuzzResult result = run_scenario(config);
    ASSERT_TRUE(result.passed)
        << "chaos scenario " << i << " seed=" << config.seed << ": "
        << result.failure;
    EXPECT_TRUE(result.fast_checked) << "chaos scenario " << i;
    EXPECT_TRUE(result.shard_checked) << "chaos scenario " << i;
  }
}

// Negative control for the dual-exactness harness: seed a batching bug
// (VODSIM_TEST_FAST_MATH_BUG scales the batch metering by 0.999 — biased
// low so the auditor's "metered <= physical flow" check stays quiet and the
// *differential* is what must catch it) and require the fast/exact diff to
// fire. A harness that cannot see a 0.1% metering error is not a harness.
TEST(ScenarioFuzz, DifferentialCatchesSeededBatchingBug) {
  ASSERT_EQ(setenv("VODSIM_TEST_FAST_MATH_BUG", "1", 1), 0);
  const FuzzResult result = run_scenario(pathology_corpus().front());
  ASSERT_EQ(unsetenv("VODSIM_TEST_FAST_MATH_BUG"), 0);

  ASSERT_FALSE(result.passed)
      << "seeded fast-math metering bug was not detected";
  EXPECT_NE(result.failure.find("fast/exact mismatch"), std::string::npos)
      << "unexpected failure channel: " << result.failure;
  EXPECT_NE(result.failure.find("transmitted"), std::string::npos)
      << "diff should implicate the transmission meter: " << result.failure;

  // And the harness recovers: the same scenario passes with the bug unset.
  EXPECT_TRUE(run_scenario(pathology_corpus().front()).passed);
}

// Negative control for the sharded/single differential: seed a cross-mode
// aggregation bug (VODSIM_TEST_SHARD_BUG scales the shard-metrics merge by
// 0.999 — biased low, invisible to the single-mode auditor because it only
// exists in the sharded leg) and require the shard/single diff to fire.
// Uses corpus entry 12 (cross-shard migration chains, shards = 4) so the
// seeded bug lands on a run with real cross-shard traffic.
TEST(ScenarioFuzz, DifferentialCatchesSeededShardMergeBug) {
  const std::vector<SimulationConfig> corpus = pathology_corpus();
  SimulationConfig sharded;
  bool found = false;
  for (const SimulationConfig& config : corpus) {
    if (config.shards > 1) {
      sharded = config;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << "corpus must seed at least one sharded pathology";

  ASSERT_EQ(setenv("VODSIM_TEST_SHARD_BUG", "1", 1), 0);
  const FuzzResult result = run_scenario(sharded);
  ASSERT_EQ(unsetenv("VODSIM_TEST_SHARD_BUG"), 0);

  ASSERT_FALSE(result.passed)
      << "seeded shard-merge aggregation bug was not detected";
  EXPECT_NE(result.failure.find("shard/single mismatch"), std::string::npos)
      << "unexpected failure channel: " << result.failure;
  EXPECT_NE(result.failure.find("transmitted"), std::string::npos)
      << "diff should implicate the merged transmission integral: "
      << result.failure;

  // And the harness recovers: the same scenario passes with the bug unset.
  EXPECT_TRUE(run_scenario(sharded).passed);
}

// Regression: the shrinker's num_servers-halving transform used to clamp
// only the shard count, so a shrunk chaos reproducer could declare a
// correlated group (or a topology tree) referencing servers beyond its own
// num_servers — the emitted gtest case then failed validation or, worse,
// described faults on servers that do not exist. clamp_to_servers is the
// extracted fix; every server-indexed knob must come back in range and the
// clamped config must validate.
TEST(ScenarioShrink, HalvingClampsServerIndexedKnobs) {
  SimulationConfig config;
  config.system.num_servers = 8;
  config.shards = 8;
  config.topology.enabled = true;
  config.topology.racks = 8;
  config.topology.zones = 6;
  config.failure.enabled = true;
  config.failure.correlated.enabled = true;
  config.failure.correlated.group_size = 6;
  config.validate();  // sane before the shrink

  // What the halving transform does to the world size…
  config.system.num_servers = 2;
  // …must be followed by the clamp, or the knobs dangle past the cluster.
  clamp_to_servers(config);

  EXPECT_LE(config.shards, config.system.num_servers);
  EXPECT_LE(config.failure.correlated.group_size, config.system.num_servers);
  EXPECT_LE(config.topology.racks, config.system.num_servers);
  EXPECT_LE(config.topology.zones, config.topology.racks);
  EXPECT_NO_THROW(config.validate());
}

}  // namespace
}  // namespace vodsim
