// Bounded fuzzing under ctest: the pathology corpus plus a fixed batch of
// random scenarios, every one run through the engine with the invariant
// auditor attached and — where supported — diffed against the reference
// oracle. The seed is pinned so the batch is reproducible; use the
// standalone `vodsim_fuzz` tool for open-ended exploration.

#include <gtest/gtest.h>

#include "vodsim/check/fuzzer.h"
#include "vodsim/util/rng.h"

namespace vodsim {
namespace {

TEST(ScenarioFuzz, CorpusAndRandomBatchPass) {
  int oracle_checked = 0;

  for (const SimulationConfig& config : pathology_corpus()) {
    const FuzzResult result = run_scenario(config);
    if (result.oracle_checked) ++oracle_checked;
    ASSERT_TRUE(result.passed)
        << "corpus seed=" << config.seed << ": " << result.failure
        << "\n"
        << to_gtest_case(shrink_scenario(config), "ShrunkCorpusReproducer");
  }

  constexpr int kScenarios = 250;
  Rng rng(42);
  for (int i = 0; i < kScenarios; ++i) {
    const SimulationConfig config = random_scenario(rng);
    const FuzzResult result = run_scenario(config);
    if (result.oracle_checked) ++oracle_checked;
    ASSERT_TRUE(result.passed)
        << "scenario " << i << " seed=" << config.seed << ": " << result.failure
        << "\n"
        << to_gtest_case(shrink_scenario(config), "ShrunkReproducer");
  }

  // The oracle's exclusions (interactivity, buffer-aware admission) must
  // not hollow out the differential side of the batch: the majority of
  // scenarios stay within its scope.
  EXPECT_GE(oracle_checked, kScenarios / 2);
}

}  // namespace
}  // namespace vodsim
