// Cross-module integration tests: the event queue under reschedule churn,
// and full-engine runs with every extension enabled simultaneously.

#include <gtest/gtest.h>

#include "vodsim/des/event_queue.h"
#include "vodsim/engine/experiment.h"
#include "vodsim/engine/vod_simulation.h"

namespace vodsim {
namespace {

// ---------------------------------------------------------- queue compaction

TEST(EventQueueCompaction, MemoryBoundedUnderRescheduleChurn) {
  // The engine's worst-case pattern: schedule a far-future predicted event,
  // cancel it, schedule a new one — millions of times. With lazy deletion
  // alone the heap would hold every dead entry; compaction must keep it
  // proportional to the live count.
  EventQueue queue;
  EventId pending = kInvalidEventId;
  for (int i = 0; i < 2000000; ++i) {
    queue.cancel(pending);
    pending = queue.schedule(1e9 + i, [](Seconds) {});
  }
  // One live event; the heap may keep a small constant of slack.
  EXPECT_EQ(queue.size(), 1u);
  auto [time, fn] = queue.pop();
  EXPECT_GE(time, 1e9);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueCompaction, PreservesOrderAcrossCompactions) {
  EventQueue queue;
  // Interleave keepers with churn that forces compaction.
  std::vector<EventId> churn;
  for (int i = 0; i < 100; ++i) {
    queue.schedule(static_cast<double>(i), [](Seconds) {});
    for (int j = 0; j < 200; ++j) {
      churn.push_back(queue.schedule(1e6 + j, [](Seconds) {}));
    }
    for (EventId id : churn) queue.cancel(id);
    churn.clear();
  }
  Seconds last = -1.0;
  int fired = 0;
  while (!queue.empty()) {
    auto [time, fn] = queue.pop();
    EXPECT_GE(time, last);
    last = time;
    ++fired;
  }
  EXPECT_EQ(fired, 100);
}

// ---------------------------------------------------------- kitchen sink

/// Every subsystem at once: staging + migration (with switch latency) +
/// replication + failures + drift + interactivity on a heterogeneous
/// cluster. The run must complete, conserve accounting identities, and
/// stay within physical bounds.
TEST(Integration, AllExtensionsTogether) {
  SimulationConfig config;
  config.system = SystemConfig::small_system();
  config.system.bandwidth_profile = {0.8, 0.9, 1.0, 1.1, 1.2};
  config.system.storage_profile = {1.2, 1.1, 1.0, 0.9, 0.8};
  config.zipf_theta = 0.0;
  config.duration = hours(12);
  config.warmup = hours(1);
  config.seed = 77;
  config.client.staging_fraction = 0.2;
  config.client.receive_bandwidth = 30.0;
  config.placement.kind = PlacementKind::kPartialPredictive;
  config.admission.migration.enabled = true;
  config.admission.migration.max_hops_per_request = 2;
  config.admission.migration.switch_latency = 2.0;
  config.replication.enabled = true;
  config.replication.rejection_threshold = 4;
  config.replication.window = 1800.0;
  config.failure.enabled = true;
  config.failure.mean_time_between_failures = hours(30);
  config.failure.mean_time_to_repair = hours(0.5);
  config.drift.enabled = true;
  config.drift.period = hours(3);
  config.drift.step = 30;
  config.interactivity.enabled = true;
  config.interactivity.pauses_per_hour = 2.0;
  config.interactivity.mean_pause_duration = 120.0;

  VodSimulation simulation(config);
  const Metrics& metrics = simulation.run();

  EXPECT_GT(metrics.arrivals(), 1000u);
  EXPECT_EQ(metrics.accepts() + metrics.rejects(), metrics.arrivals());
  EXPECT_GT(metrics.utilization(), 0.5);
  EXPECT_LE(metrics.utilization(), 1.0 + 1e-9);

  for (const Server& server : simulation.servers()) {
    EXPECT_LE(server.committed_bandwidth(), server.bandwidth() + 1e-6);
    EXPECT_LE(server.storage_used(), server.storage_capacity() + 1e-6);
  }
  for (const Request& request : simulation.requests()) {
    EXPECT_GE(request.buffer_level(), 0.0);
    EXPECT_LE(request.buffer_level(),
              request.buffer_capacity() + StagingBuffer::kLevelTolerance);
    EXPECT_LE(request.hops(), 3);  // 2 admission hops + possibly 1 recovery
  }

  const auto occupancy = simulation.occupancy();
  EXPECT_GT(occupancy.mean_active, 0.0);
  EXPECT_LE(occupancy.min_server_mean, occupancy.max_server_mean);
}

TEST(Integration, AllExtensionsDeterministic) {
  SimulationConfig config;
  config.system = SystemConfig::small_system();
  config.zipf_theta = 0.0;
  config.duration = hours(6);
  config.warmup = hours(1);
  config.seed = 78;
  config.client.staging_fraction = 0.2;
  config.client.receive_bandwidth = 30.0;
  config.admission.migration.enabled = true;
  config.replication.enabled = true;
  config.failure.enabled = true;
  config.failure.mean_time_between_failures = hours(20);
  config.failure.mean_time_to_repair = hours(0.5);
  config.drift.enabled = true;
  config.drift.period = hours(2);
  config.drift.step = 20;
  config.interactivity.enabled = true;

  VodSimulation a(config);
  VodSimulation b(config);
  a.run();
  b.run();
  EXPECT_DOUBLE_EQ(a.metrics().utilization(), b.metrics().utilization());
  EXPECT_EQ(a.metrics().drops(), b.metrics().drops());
  EXPECT_EQ(a.metrics().replications(), b.metrics().replications());
  EXPECT_EQ(a.pauses_started(), b.pauses_started());
  EXPECT_EQ(a.simulator().executed_count(), b.simulator().executed_count());
}

TEST(Integration, SchedulersComposeWithInteractivity) {
  for (SchedulerKind kind :
       {SchedulerKind::kEftf, SchedulerKind::kProportional,
        SchedulerKind::kIntermittent}) {
    SimulationConfig config;
    config.system = SystemConfig::small_system();
    config.zipf_theta = 0.271;
    config.duration = hours(8);
    config.warmup = hours(1);
    config.seed = 79;
    config.client.staging_fraction = 0.2;
    config.client.receive_bandwidth = 30.0;
    config.scheduler = kind;
    config.interactivity.enabled = true;
    config.interactivity.pauses_per_hour = 4.0;
    config.interactivity.mean_pause_duration = 180.0;
    VodSimulation simulation(config);
    const Metrics& metrics = simulation.run();
    EXPECT_GT(metrics.utilization(), 0.7) << to_string(kind);
    EXPECT_EQ(simulation.continuity_violations(), 0u) << to_string(kind);
  }
}

TEST(Integration, PairedSweepAcrossAllPolicies) {
  // One sweep covering all four placements under identical arrivals.
  std::vector<SimulationConfig> configs;
  for (PlacementKind kind : {PlacementKind::kEven, PlacementKind::kPartialPredictive,
                             PlacementKind::kPredictive, PlacementKind::kBsr}) {
    SimulationConfig config;
    config.system = SystemConfig::small_system();
    config.zipf_theta = -0.5;
    config.duration = hours(8);
    config.warmup = hours(1);
    config.placement.kind = kind;
    config.client.staging_fraction = 0.2;
    config.client.receive_bandwidth = 30.0;
    config.admission.migration.enabled = true;
    configs.push_back(config);
  }
  ExperimentRunner runner(2);
  const auto points = runner.run_sweep(configs, 2, 99);
  ASSERT_EQ(points.size(), 4u);
  for (const auto& point : points) {
    EXPECT_EQ(point.trials[0].arrivals, points[0].trials[0].arrivals)
        << "paired seeds must give identical arrival streams";
  }
  // Popularity-aware placements beat even at theta = -0.5.
  EXPECT_GT(points[2].utilization.mean(), points[0].utilization.mean());
  EXPECT_GT(points[1].utilization.mean(), points[0].utilization.mean());
}

}  // namespace
}  // namespace vodsim
